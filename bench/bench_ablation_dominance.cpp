// Ablation: dominance ordering (Section 3 / Figure 3-2) vs naive arrival
// ordering.  The regime where they differ: a slow input arrives first and a
// fast input follows within the crossover window.  Naive ordering picks the
// slow first-arriver as the reference; dominance ordering correctly picks
// the fast one.

#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "model/dominance.hpp"

using namespace prox;
using benchutil::ps;
using model::InputEvent;
using wave::Edge;

int main() {
  std::printf("=== Ablation: dominance ordering vs arrival ordering ===\n");
  const auto& cg = benchutil::nand3Model();
  model::GateSimulator sim(cg.gate);

  model::ProximityOptions domOpts;
  model::ProximityOptions arrOpts;
  arrOpts.orderByDominance = false;
  const auto calcDom = cg.calculator(domOpts);
  const auto calcArr = cg.calculator(arrOpts);

  // Slow a first, fast b a little later -- sweep the separation through the
  // crossover (Figure 3-2's scenario).
  const double tauA = 2000e-12;
  const double tauB = 100e-12;
  const InputEvent a{0, Edge::Falling, 0.0, tauA};
  const double crossover =
      model::dominanceCrossover(a, {1, Edge::Falling, 0.0, tauB}, *cg.singles);
  std::printf("\nslow a (tau=%.0f ps) at t=0, fast b (tau=%.0f ps) at t=s; "
              "crossover at s=%.1f ps\n",
              ps(tauA), ps(tauB), ps(crossover));
  std::printf("  %8s %6s | %14s | %14s %8s | %14s %8s\n", "s [ps]", "dom",
              "t_out sim [ps]", "dominance [ps]", "err%", "arrival [ps]",
              "err%");

  std::vector<double> errDom, errArr;
  for (double s = 20e-12; s <= crossover * 1.4; s += crossover * 0.1) {
    std::vector<InputEvent> evs{a, {1, Edge::Falling, s, tauB}};
    const auto full = sim.simulate(evs, 0);
    if (!full.outputRefTime) continue;
    const auto rd = calcDom.compute(evs);
    const auto ra = calcArr.compute(evs);
    const double ed = (rd.outputRefTime - *full.outputRefTime) / *full.delay * 100.0;
    const double ea = (ra.outputRefTime - *full.outputRefTime) / *full.delay * 100.0;
    errDom.push_back(std::fabs(ed));
    errArr.push_back(std::fabs(ea));
    std::printf("  %8.1f %6c | %14.1f | %14.1f %+8.2f | %14.1f %+8.2f\n",
                ps(s), static_cast<char>('a' + rd.dominantPin),
                ps(*full.outputRefTime), ps(rd.outputRefTime), ed,
                ps(ra.outputRefTime), ea);
  }

  // Random three-input mix for aggregate numbers.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-300e-12, 300e-12);
  for (int cfg = 0; cfg < 40; ++cfg) {
    const Edge e = cfg % 2 == 0 ? Edge::Rising : Edge::Falling;
    std::vector<InputEvent> evs{{0, e, 0.0, tauDist(rng)},
                                {1, e, sepDist(rng), tauDist(rng)},
                                {2, e, sepDist(rng), tauDist(rng)}};
    const auto full = sim.simulate(evs, 0);
    if (!full.outputRefTime || *full.delay <= 0.0) continue;
    const auto rd = calcDom.compute(evs);
    const auto ra = calcArr.compute(evs);
    errDom.push_back(std::fabs(rd.outputRefTime - *full.outputRefTime) /
                     *full.delay * 100.0);
    errArr.push_back(std::fabs(ra.outputRefTime - *full.outputRefTime) /
                     *full.delay * 100.0);
  }

  double sumDom = 0.0;
  double sumArr = 0.0;
  for (double e : errDom) sumDom += e;
  for (double e : errArr) sumArr += e;
  std::printf("\nAggregate over %zu configurations: mean |error| dominance = "
              "%.2f%%, arrival = %.2f%%\n",
              errDom.size(), sumDom / errDom.size(), sumArr / errArr.size());
  return 0;
}
