// Throughput comparison (google-benchmark): what the macromodel buys.
// A full transistor-level transient of the NAND3 costs milliseconds; the
// characterized proximity model answers the same query in sub-microsecond
// time -- the reason macromodels exist for timing analysis.
//
// Unless the caller passes its own --benchmark_out, results are written to
// BENCH_perf.json (google-benchmark's JSON schema) in the working directory,
// and the observability registry is dumped to BENCH_perf_stats.json -- the
// machine-readable perf trajectory that future changes diff against.
// PROX_BENCH_OUT_DIR overrides the output directory.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/collapse.hpp"
#include "bench_util.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

namespace {

std::vector<InputEvent> workloadEvents(int i) {
  // A small rotating set of queries so caches don't trivialize the model runs.
  const double taus[4] = {150e-12, 400e-12, 800e-12, 1500e-12};
  const double seps[4] = {-120e-12, -30e-12, 40e-12, 160e-12};
  const Edge e = i % 2 == 0 ? Edge::Rising : Edge::Falling;
  return {{0, e, 0.0, taus[i % 4]},
          {1, e, seps[i % 4], taus[(i + 1) % 4]},
          {2, e, seps[(i + 2) % 4], taus[(i + 2) % 4]}};
}

void BM_FullTransientSimulation(benchmark::State& state) {
  model::GateSimulator sim(benchutil::nand3Model().gate);
  int i = 0;
  for (auto _ : state) {
    const auto o = sim.simulate(workloadEvents(i++), 0);
    benchmark::DoNotOptimize(o.delay);
  }
}
BENCHMARK(BM_FullTransientSimulation)->Unit(benchmark::kMillisecond);

void BM_ProximityModelTabulated(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto calc = cg.calculator();
  int i = 0;
  for (auto _ : state) {
    const auto r = calc.compute(workloadEvents(i++));
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ProximityModelTabulated)->Unit(benchmark::kMicrosecond);

void BM_ClassicSingleInputModel(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto calc = cg.calculator();
  int i = 0;
  for (auto _ : state) {
    const auto r = calc.computeClassic(workloadEvents(i++));
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ClassicSingleInputModel)->Unit(benchmark::kMicrosecond);

void BM_CollapsedInverterBaseline(benchmark::State& state) {
  baseline::CollapsedInverterModel collapse(benchutil::nand3Model().gate);
  int i = 0;
  for (auto _ : state) {
    const auto r = collapse.compute(workloadEvents(i++), 0);
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_CollapsedInverterBaseline)->Unit(benchmark::kMillisecond);

void BM_SingleInputTableLookup(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto& m = cg.singles->at(0, Edge::Rising);
  double tau = 100e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.delay(tau));
    tau = tau < 2000e-12 ? tau + 1e-12 : 100e-12;
  }
}
BENCHMARK(BM_SingleInputTableLookup);

void BM_DualTableInterpolation(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  model::DualQuery q;
  q.refPin = 0;
  q.otherPin = 1;
  q.edge = Edge::Rising;
  q.tauRef = 300e-12;
  q.tauOther = 500e-12;
  q.sep = 50e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cg.dual->delayRatio(q));
    q.sep = q.sep < 200e-12 ? q.sep + 1e-12 : -200e-12;
  }
}
BENCHMARK(BM_DualTableInterpolation);

}  // namespace

int main(int argc, char** argv) {
  std::string outDir;
  if (const char* dir = std::getenv("PROX_BENCH_OUT_DIR")) {
    outDir = std::string(dir) + "/";
  }

  bool callerProvidedOut = false;
  bool statsOff = false;
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    // --stats=off: runtime-disable the observability registry, for measuring
    // instrumentation overhead against an identical binary.
    if (i > 0 && std::strcmp(argv[i], "--stats=off") == 0) {
      statsOff = true;
      continue;
    }
    if (i > 0 && std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      callerProvidedOut = true;
    }
    args.push_back(argv[i]);
  }
  if (statsOff) prox::obs::setEnabled(false);

  // benchmark::Initialize consumes recognized flags from argv, so the
  // injected defaults must live in a mutable argv copy.
  if (!callerProvidedOut) {
    args.push_back("--benchmark_out=" + outDir + "BENCH_perf.json");
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argvAug;
  argvAug.reserve(args.size());
  for (std::string& a : args) argvAug.push_back(a.data());
  int argcAug = static_cast<int>(argvAug.size());

  benchmark::Initialize(&argcAug, argvAug.data());
  if (benchmark::ReportUnrecognizedArguments(argcAug, argvAug.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!callerProvidedOut) {
    prox::obs::writeJsonFile(outDir + "BENCH_perf_stats.json");
  }
  return 0;
}
