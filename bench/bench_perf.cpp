// Throughput comparison (google-benchmark): what the macromodel buys.
// A full transistor-level transient of the NAND3 costs milliseconds; the
// characterized proximity model answers the same query in sub-microsecond
// time -- the reason macromodels exist for timing analysis.
//
// Unless the caller passes its own --benchmark_out, results are written to
// BENCH_perf.json (google-benchmark's JSON schema) in the working directory,
// and the observability registry is dumped to BENCH_perf_stats.json -- the
// machine-readable perf trajectory that future changes diff against.
// PROX_BENCH_OUT_DIR overrides the output directory.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baseline/collapse.hpp"
#include "bench_util.hpp"
#include "cells/fixture.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "spice/newton.hpp"
#include "spice/op.hpp"
#include "sta/blif.hpp"
#include "sta/synth.hpp"
#include "sta/timing_graph.hpp"
#include "support/durable_io.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

namespace {

std::vector<InputEvent> workloadEvents(int i) {
  // A small rotating set of queries so caches don't trivialize the model runs.
  const double taus[4] = {150e-12, 400e-12, 800e-12, 1500e-12};
  const double seps[4] = {-120e-12, -30e-12, 40e-12, 160e-12};
  const Edge e = i % 2 == 0 ? Edge::Rising : Edge::Falling;
  return {{0, e, 0.0, taus[i % 4]},
          {1, e, seps[i % 4], taus[(i + 1) % 4]},
          {2, e, seps[(i + 2) % 4], taus[(i + 2) % 4]}};
}

void BM_FullTransientSimulation(benchmark::State& state) {
  model::GateSimulator sim(benchutil::nand3Model().gate);
  int i = 0;
  for (auto _ : state) {
    const auto o = sim.simulate(workloadEvents(i++), 0);
    benchmark::DoNotOptimize(o.delay);
  }
}
BENCHMARK(BM_FullTransientSimulation)->Unit(benchmark::kMillisecond);

void BM_ProximityModelTabulated(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto calc = cg.calculator();
  int i = 0;
  for (auto _ : state) {
    const auto r = calc.compute(workloadEvents(i++));
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ProximityModelTabulated)->Unit(benchmark::kMicrosecond);

void BM_ClassicSingleInputModel(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto calc = cg.calculator();
  int i = 0;
  for (auto _ : state) {
    const auto r = calc.computeClassic(workloadEvents(i++));
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ClassicSingleInputModel)->Unit(benchmark::kMicrosecond);

void BM_CollapsedInverterBaseline(benchmark::State& state) {
  baseline::CollapsedInverterModel collapse(benchutil::nand3Model().gate);
  int i = 0;
  for (auto _ : state) {
    const auto r = collapse.compute(workloadEvents(i++), 0);
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_CollapsedInverterBaseline)->Unit(benchmark::kMillisecond);

void BM_SingleInputTableLookup(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto& m = cg.singles->at(0, Edge::Rising);
  double tau = 100e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.delay(tau));
    tau = tau < 2000e-12 ? tau + 1e-12 : 100e-12;
  }
}
BENCHMARK(BM_SingleInputTableLookup);

// -- thread scaling ----------------------------------------------------------
// The parallel sweep engine's wall-time at 1/2/8 workers.  Results are
// bit-identical at every thread count (determinism_test proves it); these
// series record what the parallelism buys on the host.  UseRealTime because
// the work happens on pool threads, not the benchmark thread.

characterize::CharacterizationConfig sweepConfig(int threads) {
  characterize::CharacterizationConfig c;
  c.tauGrid = {100e-12, 600e-12};
  c.dualTauIndices = {0, 1};
  c.vGrid = {0.3, 1.0, 3.0};
  c.wGrid = {-1.0, 0.0, 0.5, 1.0};
  c.vGridTransition = {0.3, 1.0, 3.0};
  c.wGridTransition = {-1.0, 0.0, 1.0, 3.0};
  c.vtcStep = 0.05;
  c.threads = threads;
  return c;
}

cells::CellSpec nand2Spec() {
  cells::CellSpec s;
  s.type = cells::GateType::Nand;
  s.fanin = 2;
  return s;
}

void BM_CharacterizationSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto cfg = sweepConfig(threads);
  model::GateSimulator sim(model::makeGate(nand2Spec(), cfg.vtcStep));
  const auto singles =
      model::SingleInputModelSet::characterizeAll(sim, cfg.tauGrid);
  for (auto _ : state) {
    model::DualTable dt;
    model::DualTable tt;
    characterize::buildDualTables(sim, singles, 0, 1, Edge::Rising, cfg, &dt,
                                  &tt, nullptr);
    benchmark::DoNotOptimize(dt.ratio.data());
    benchmark::DoNotOptimize(tt.ratio.data());
  }
}
BENCHMARK(BM_CharacterizationSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Levelized STA over a wide fanout cone: 32 sibling arcs per level give the
// pool something to chew on; threads = 1 is the legacy serial path.
const characterize::CharacterizedGate& coarseNand2() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeGate(nand2Spec(), sweepConfig(1));
  return g;
}

void BM_StaLevelizedRun(benchmark::State& state) {
  const auto& cell = coarseNand2();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  constexpr int kWidth = 32;
  for (int i = 0; i < kWidth; ++i) {
    nl.addInstance("u" + std::to_string(i), cell, {"a", "b"},
                   "n" + std::to_string(i));
  }
  for (int i = 0; i < kWidth; i += 2) {
    nl.addInstance("v" + std::to_string(i), cell,
                   {"n" + std::to_string(i), "n" + std::to_string(i + 1)},
                   "m" + std::to_string(i));
  }
  sta::DelayCalcOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity, opt);
    ta.setInputArrival("a", {0.0, 250e-12, Edge::Rising});
    ta.setInputArrival("b", {40e-12, 400e-12, Edge::Rising});
    ta.run();
    benchmark::DoNotOptimize(ta.arrival("m0"));
  }
}
BENCHMARK(BM_StaLevelizedRun)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// -- netlist-scale STA -------------------------------------------------------
// A 100k-gate synthetic circuit (100 layers x 1000 gates) over the analytic
// cell library: the arena-backed graph at a size where storage layout and
// levelization cost actually show.  BM_StaLargeBuild times graph
// construction (string interning + CSR assembly); BM_StaLargeCircuit times
// levelize + the full proximity delay calculation on the pre-built graph,
// with the thread-scaling series on the same netlist.

sta::SynthSpec largeCircuitSpec() {
  sta::SynthSpec spec;
  spec.seed = 7;
  spec.depth = 100;
  spec.width = 1000;  // 100000 gates
  spec.primaryInputs = 1000;
  spec.maxFanin = 3;
  return spec;
}

const sta::GateLibrary& largeCircuitLibrary() {
  static const sta::GateLibrary lib = sta::analyticLibrary();
  return lib;
}

const sta::Netlist& largeCircuitNetlist() {
  static const sta::Netlist nl = [] {
    sta::Netlist built;
    sta::buildNetlist(largeCircuitSpec(), largeCircuitLibrary(), &built);
    return built;
  }();
  return nl;
}

void BM_StaLargeBuild(benchmark::State& state) {
  const sta::SynthSpec spec = largeCircuitSpec();
  for (auto _ : state) {
    sta::Netlist nl;
    sta::buildNetlist(spec, largeCircuitLibrary(), &nl);
    benchmark::DoNotOptimize(nl.nodeCount());
  }
}
BENCHMARK(BM_StaLargeBuild)->Unit(benchmark::kMillisecond);

void BM_StaLargeCircuit(benchmark::State& state) {
  const sta::SynthSpec spec = largeCircuitSpec();
  const sta::Netlist& nl = largeCircuitNetlist();
  // Resolve stimulus nets to ids once: the benchmark measures the analysis,
  // not 1000 hash lookups per iteration.
  std::vector<std::pair<sta::NetId, sta::Arrival>> stimulus;
  for (const auto& [net, arr] : sta::synthInputArrivals(spec)) {
    stimulus.emplace_back(nl.findNet(net), arr);
  }
  sta::DelayCalcOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity, opt);
    for (const auto& [net, arr] : stimulus) ta.setInputArrival(net, arr);
    ta.run();
    benchmark::DoNotOptimize(ta.degradedArcs());
  }
}
BENCHMARK(BM_StaLargeCircuit)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// -- solver micro-benchmarks -------------------------------------------------
// The layers of one Newton iteration on the NAND3 cell fixture (the same
// circuit BM_FullTransientSimulation integrates), isolated: stamp assembly,
// full LU factorization, numeric-only refactorization, and a complete Newton
// solve through the reusable workspace.  BM_NewtonSolve is the CI perf-smoke
// regression gate (bench/check_perf_regression.py).

struct SolverFixture {
  cells::CellFixture fix{benchutil::nand3Spec()};
  spice::NewtonWorkspace ws;
  linalg::Vector x;

  SolverFixture() {
    fix.setAllNonControlling();
    spice::Circuit& ckt = fix.circuit();
    ckt.finalize();
    ws.bind(ckt);
    const auto sol = spice::operatingPoint(ckt, {}, nullptr, ws);
    x = sol ? *sol
            : linalg::Vector(static_cast<std::size_t>(ckt.unknownCount()), 0.0);
  }

  /// Stamps the DC system at iterate @p xi into the workspace matrix/RHS.
  void stamp(const linalg::Vector& xi) {
    spice::Circuit& ckt = fix.circuit();
    ws.g.setZero();
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);
    const spice::StampArgs args{ws.g, ws.rhs, xi, 0.0, 0.0, false, true, 1.0};
    for (const auto& dev : ckt.devices()) dev->stamp(args);
    for (const std::size_t slot : ws.diagSlots) ws.g.at(slot) += 1e-12;
  }
};

SolverFixture& solverFixture() {
  static SolverFixture f;
  return f;
}

void BM_StampAssembly(benchmark::State& state) {
  SolverFixture& f = solverFixture();
  for (auto _ : state) {
    f.stamp(f.x);
    benchmark::DoNotOptimize(f.ws.g.data());
  }
}
BENCHMARK(BM_StampAssembly);

void BM_LuFactor(benchmark::State& state) {
  SolverFixture& f = solverFixture();
  f.stamp(f.x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ws.lu.factor(f.ws.g));
  }
}
BENCHMARK(BM_LuFactor);

void BM_LuRefactor(benchmark::State& state) {
  SolverFixture& f = solverFixture();
  f.stamp(f.x);
  f.ws.lu.factor(f.ws.g);  // freeze pivot order + structure
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ws.lu.refactor(f.ws.g));
  }
}
BENCHMARK(BM_LuRefactor);

void BM_NewtonSolve(benchmark::State& state) {
  SolverFixture& f = solverFixture();
  spice::StampContext sc;
  linalg::Vector xWork;
  for (auto _ : state) {
    xWork.assign(f.x.begin(), f.x.end());
    f.ws.invalidateFactor();  // measure real refactor + solve work
    const auto st = spice::solveNewton(f.fix.circuit(), xWork, sc, {}, f.ws);
    benchmark::DoNotOptimize(st.converged);
  }
}
BENCHMARK(BM_NewtonSolve);

void BM_DualTableInterpolation(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  model::DualQuery q;
  q.refPin = 0;
  q.otherPin = 1;
  q.edge = Edge::Rising;
  q.tauRef = 300e-12;
  q.tauOther = 500e-12;
  q.sep = 50e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cg.dual->delayRatio(q));
    q.sep = q.sep < 200e-12 ? q.sep + 1e-12 : -200e-12;
  }
}
BENCHMARK(BM_DualTableInterpolation);

// Bulk dual-table throughput: one evaluateMany() over a fixed mixed batch
// of delay/transition queries vs the equivalent scalar loop over the same
// queries.  The pair gates the tentpole's >= 4x batched-lookup target in
// perf_baseline.json (the batch entry carries its own threshold; the scalar
// loop documents the denominator).
std::vector<model::DualQuery> dualBatchQueries() {
  std::vector<model::DualQuery> qs(4096);
  std::uint64_t s = 0x00beefu;
  auto rnd = [&s]() {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  auto unit = [&rnd]() {
    return static_cast<double>(rnd() >> 11) * 0x1.0p-53;
  };
  for (model::DualQuery& q : qs) {
    q.refPin = 0;
    q.otherPin = 1 + static_cast<int>(rnd() % 2);
    q.edge = Edge::Rising;
    q.kind = (rnd() & 1) != 0 ? model::DualKind::Delay
                              : model::DualKind::Transition;
    // In-window separations so every lane reaches the trilinear blend (the
    // shortcut and missing-table lanes are covered by determinism_test).
    q.tauRef = 100e-12 + 600e-12 * unit();
    q.tauOther = 100e-12 + 600e-12 * unit();
    q.sep = -150e-12 + 200e-12 * unit();
  }
  return qs;
}

void BM_DualLookupBatch(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto qs = dualBatchQueries();
  std::vector<model::DualResult> rs(qs.size());
  for (auto _ : state) {
    cg.dual->evaluateMany(qs, rs);
    benchmark::DoNotOptimize(rs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(qs.size()));
}
BENCHMARK(BM_DualLookupBatch)->Unit(benchmark::kMicrosecond);

void BM_DualLookupScalarLoop(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto qs = dualBatchQueries();
  for (auto _ : state) {
    double acc = 0.0;
    for (const model::DualQuery& q : qs) {
      acc += q.kind == model::DualKind::Delay ? cg.dual->delayRatio(q)
                                              : cg.dual->transitionRatio(q);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(qs.size()));
}
BENCHMARK(BM_DualLookupScalarLoop)->Unit(benchmark::kMicrosecond);

// Provenance stamps for the perf trajectory: the commit this binary was
// built from (configure-time git rev-parse, "unknown" outside a checkout)
// and the wall-clock moment the run happened, so BENCH_perf.json /
// BENCH_perf_stats.json files from different PRs are distinguishable.
const char* buildGitSha() {
#ifdef PROX_GIT_SHA
  return PROX_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string isoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  const bool optimizedBuild = true;
#else
  const bool optimizedBuild = false;
#endif
  if (!optimizedBuild) {
    std::fprintf(stderr,
                 "*** WARNING: bench_perf was built WITHOUT optimization "
                 "(no NDEBUG -- configure with CMAKE_BUILD_TYPE=Release); "
                 "timings below are NOT comparable to release numbers ***\n");
  }

  std::string outDir;
  if (const char* dir = std::getenv("PROX_BENCH_OUT_DIR")) {
    outDir = std::string(dir) + "/";
  }

  bool callerProvidedOut = false;
  bool statsOff = false;
  std::string tracePath;
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    // --stats=off: runtime-disable the observability registry, for measuring
    // instrumentation overhead against an identical binary.
    if (i > 0 && std::strcmp(argv[i], "--stats=off") == 0) {
      statsOff = true;
      continue;
    }
    // --trace=FILE: record the whole benchmark run into a Chrome trace.
    if (i > 0 && std::strncmp(argv[i], "--trace=", 8) == 0) {
      tracePath = argv[i] + 8;
      if (tracePath.empty()) {
        std::fprintf(stderr, "bench_perf: --trace= requires a file name\n");
        return 1;
      }
      continue;
    }
    // --threads N / --threads=N: process-wide default worker count (the
    // explicit Arg(1)/Arg(2)/Arg(8) scaling series are unaffected).
    if (i > 0 && std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      prox::par::setDefaultThreadCount(std::atoi(argv[++i]));
      continue;
    }
    if (i > 0 && std::strncmp(argv[i], "--threads=", 10) == 0) {
      prox::par::setDefaultThreadCount(std::atoi(argv[i] + 10));
      continue;
    }
    if (i > 0 && std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      callerProvidedOut = true;
    }
    args.push_back(argv[i]);
  }
  if (statsOff) prox::obs::setEnabled(false);

  std::unique_ptr<prox::obs::trace::TraceSession> traceSession;
  if (!tracePath.empty()) {
    traceSession = std::make_unique<prox::obs::trace::TraceSession>();
  }

  // benchmark::Initialize consumes recognized flags from argv, so the
  // injected defaults must live in a mutable argv copy.
  if (!callerProvidedOut) {
    args.push_back("--benchmark_out=" + outDir + "BENCH_perf.json");
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argvAug;
  argvAug.reserve(args.size());
  for (std::string& a : args) argvAug.push_back(a.data());
  int argcAug = static_cast<int>(argvAug.size());

  const std::string runTimestamp = isoTimestampUtc();
  benchmark::Initialize(&argcAug, argvAug.data());
  if (benchmark::ReportUnrecognizedArguments(argcAug, argvAug.data())) {
    return 1;
  }
  // Stamp BENCH_perf.json's context block: google-benchmark copies custom
  // context verbatim into the JSON output, so the trajectory tooling can key
  // runs by commit without consulting the stats file.
  benchmark::AddCustomContext("git_sha", buildGitSha());
  benchmark::AddCustomContext("run_timestamp", runTimestamp);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Always write the registry dump, even with a caller-chosen benchmark_out:
  // the build_type tag is what lets downstream tooling reject debug timings.
  obs::Report report = obs::snapshot();
  report.buildType = optimizedBuild ? "release" : "debug";
  report.gitSha = buildGitSha();
  report.runTimestamp = runTimestamp;
  try {
    // Atomic commit, so downstream tooling never parses a torn dump.
    prox::support::writeFileAtomic(
        outDir + "BENCH_perf_stats.json",
        [&](std::ostream& os) { obs::writeJson(report, os); });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf: stats dump failed: %s\n", e.what());
  }
  if (traceSession != nullptr) {
    try {
      prox::support::writeFileAtomic(tracePath, [&](std::ostream& os) {
        traceSession->exportJson(os);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_perf: trace dump failed: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
