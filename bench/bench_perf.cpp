// Throughput comparison (google-benchmark): what the macromodel buys.
// A full transistor-level transient of the NAND3 costs milliseconds; the
// characterized proximity model answers the same query in sub-microsecond
// time -- the reason macromodels exist for timing analysis.

#include <benchmark/benchmark.h>

#include "baseline/collapse.hpp"
#include "bench_util.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

namespace {

std::vector<InputEvent> workloadEvents(int i) {
  // A small rotating set of queries so caches don't trivialize the model runs.
  const double taus[4] = {150e-12, 400e-12, 800e-12, 1500e-12};
  const double seps[4] = {-120e-12, -30e-12, 40e-12, 160e-12};
  const Edge e = i % 2 == 0 ? Edge::Rising : Edge::Falling;
  return {{0, e, 0.0, taus[i % 4]},
          {1, e, seps[i % 4], taus[(i + 1) % 4]},
          {2, e, seps[(i + 2) % 4], taus[(i + 2) % 4]}};
}

void BM_FullTransientSimulation(benchmark::State& state) {
  model::GateSimulator sim(benchutil::nand3Model().gate);
  int i = 0;
  for (auto _ : state) {
    const auto o = sim.simulate(workloadEvents(i++), 0);
    benchmark::DoNotOptimize(o.delay);
  }
}
BENCHMARK(BM_FullTransientSimulation)->Unit(benchmark::kMillisecond);

void BM_ProximityModelTabulated(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto calc = cg.calculator();
  int i = 0;
  for (auto _ : state) {
    const auto r = calc.compute(workloadEvents(i++));
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ProximityModelTabulated)->Unit(benchmark::kMicrosecond);

void BM_ClassicSingleInputModel(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto calc = cg.calculator();
  int i = 0;
  for (auto _ : state) {
    const auto r = calc.computeClassic(workloadEvents(i++));
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ClassicSingleInputModel)->Unit(benchmark::kMicrosecond);

void BM_CollapsedInverterBaseline(benchmark::State& state) {
  baseline::CollapsedInverterModel collapse(benchutil::nand3Model().gate);
  int i = 0;
  for (auto _ : state) {
    const auto r = collapse.compute(workloadEvents(i++), 0);
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_CollapsedInverterBaseline)->Unit(benchmark::kMillisecond);

void BM_SingleInputTableLookup(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  const auto& m = cg.singles->at(0, Edge::Rising);
  double tau = 100e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.delay(tau));
    tau = tau < 2000e-12 ? tau + 1e-12 : 100e-12;
  }
}
BENCHMARK(BM_SingleInputTableLookup);

void BM_DualTableInterpolation(benchmark::State& state) {
  const auto& cg = benchutil::nand3Model();
  model::DualQuery q;
  q.refPin = 0;
  q.otherPin = 1;
  q.edge = Edge::Rising;
  q.tauRef = 300e-12;
  q.tauOther = 500e-12;
  q.sep = 50e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cg.dual->delayRatio(q));
    q.sep = q.sep < 200e-12 ? q.sep + 1e-12 : -200e-12;
  }
}
BENCHMARK(BM_DualTableInterpolation);

}  // namespace

BENCHMARK_MAIN();
