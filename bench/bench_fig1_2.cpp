// Figure 1-2 reproduction: variation of NAND3 delay and output transition
// time as a function of the temporal separation between transitions on
// inputs a and b (input c stable at Vdd).
//   (a) delay,            falling inputs (a slow 500 ps, b fast 100 ps)
//   (b) output rise time,  falling inputs
//   (c) delay,            rising inputs (both 500 ps)
//   (d) output fall time,  rising inputs
// Delay is measured with respect to the *dominant* input (the paper's
// reference-input convention): earliest standalone crossing for the falling
// pair (parallel PMOS), latest for the rising pair (series NMOS).
// Expected shape: falling pair -> delay and rise time increase with
// separation as the parallel reinforcement fades toward the a-alone plateau;
// rising pair -> delay and fall time decrease with separation toward the
// late input's single-input value.

#include <cstdio>

#include "bench_util.hpp"
#include "model/gate_sim.hpp"

using namespace prox;
using benchutil::ps;
using model::InputEvent;
using wave::Edge;

namespace {

void sweep(const char* title, Edge edge, double tauA, double tauB) {
  model::GateSimulator sim(benchutil::nand3Gate());
  // Single-input delays for the dominance prediction.
  const auto oa = sim.simulateSingle({0, edge, 0.0, tauA});
  const auto ob = sim.simulateSingle({1, edge, 0.0, tauB});
  if (!oa.delay || !ob.delay) return;
  const double dA = *oa.delay;
  const double dB = *ob.delay;
  const bool latestFirst = edge == Edge::Rising;  // series stack on a NAND

  std::printf("\n%s\n  (tau_a=%.0f ps on pin a, tau_b=%.0f ps on pin b; "
              "Delta_a=%.1f ps, Delta_b=%.1f ps)\n",
              title, ps(tauA), ps(tauB), ps(dA), ps(dB));
  std::printf("  %10s %9s %12s %16s\n", "s_ab [ps]", "dominant", "delay [ps]",
              "transition [ps]");
  for (double s = -600e-12; s <= 600.1e-12; s += 100e-12) {
    const InputEvent a{0, edge, 0.0, tauA};
    const InputEvent b{1, edge, s, tauB};
    // Predicted standalone crossings: a at dA, b at s + dB.
    const bool bDominates = latestFirst ? (s + dB > dA) : (s + dB < dA);
    const std::size_t refIdx = bDominates ? 1 : 0;
    const auto o = sim.simulate({a, b}, refIdx);
    if (!o.delay || !o.transitionTime) {
      std::printf("  %10.0f %9c %12s %16s\n", ps(s), bDominates ? 'b' : 'a',
                  "-", "-");
      continue;
    }
    std::printf("  %10.0f %9c %12.1f %16.1f\n", ps(s), bDominates ? 'b' : 'a',
                ps(*o.delay), ps(*o.transitionTime));
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 1-2: proximity effect on NAND3 delay and output "
              "transition time ===\n");
  std::printf("Gate: NAND3, c stable at Vdd; thresholds vil=%.3f V vih=%.3f V\n",
              benchutil::nand3Gate().thresholds.vil,
              benchutil::nand3Gate().thresholds.vih);

  sweep("(a)+(b) falling inputs: delay and output RISE time vs separation",
        Edge::Falling, 500e-12, 100e-12);
  sweep("(c)+(d) rising inputs: delay and output FALL time vs separation",
        Edge::Rising, 500e-12, 500e-12);

  std::printf(
      "\nShape check (paper): falling pair -> delay/rise time increase with "
      "s_ab;\n                     rising pair  -> delay/fall time decrease "
      "with s_ab.\n");
  return 0;
}
