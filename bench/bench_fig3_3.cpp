// Figure 3-3 reproduction: proximity effect on NAND3 delay with falling
// inputs.  Fall time of a fixed at 500 ps; fall time of b at 100/500/1000 ps;
// separation s_ab swept from -(Delta_b + tau_b) to +(Delta_a + tau_a).
// Delay is measured with respect to the *dominant* input, so the curve shows
// the paper's discontinuity where the dominant input changes (marked for the
// 1000 ps series, as in the paper).

#include <cstdio>

#include "bench_util.hpp"
#include "model/dominance.hpp"

using namespace prox;
using benchutil::ps;
using model::InputEvent;
using wave::Edge;

int main() {
  std::printf("=== Figure 3-3: proximity effect on delay (falling inputs, "
              "c at Vdd) ===\n");
  const auto& cg = benchutil::nand3Model();
  model::GateSimulator sim(cg.gate);

  const double tauA = 500e-12;
  const auto& mA = cg.singles->at(0, Edge::Falling);
  const double dA = mA.delay(tauA);
  const double tA = mA.transition(tauA);

  for (double tauB : {100e-12, 500e-12, 1000e-12}) {
    const auto& mB = cg.singles->at(1, Edge::Falling);
    const double dB = mB.delay(tauB);
    const double tB = mB.transition(tauB);
    const double crossover = dA - dB;  // dominance flips here (Section 3)

    std::printf("\nfall(b) = %.0f ps   [sweep %.0f .. %.0f ps; dominance "
                "crossover at s_ab = %.1f ps]\n",
                ps(tauB), ps(-(dB + tB)), ps(dA + tA), ps(crossover));
    std::printf("  %10s %10s %14s %16s\n", "s_ab [ps]", "dominant",
                "delay_sim [ps]", "delay_model [ps]");

    const double lo = -(dB + tB);
    const double hi = dA + tA;
    const int steps = 24;
    for (int i = 0; i <= steps; ++i) {
      const double s = lo + (hi - lo) * i / steps;
      std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, tauA},
                                  {1, Edge::Falling, s, tauB}};
      // Model: the full ProximityDelay result (reference = dominant input).
      const auto r = cg.calculator().compute(evs);
      // Simulation: measure with respect to the same dominant input.
      const std::size_t refIdx = r.dominantPin == 0 ? 0 : 1;
      const auto o = sim.simulate(evs, refIdx);
      if (!o.delay) continue;
      std::printf("  %10.1f %10c %14.1f %16.1f\n", ps(s),
                  static_cast<char>('a' + r.dominantPin), ps(*o.delay),
                  ps(r.delay));
    }
  }
  std::printf("\nShape check (paper): delay rises with s_ab in the dominant-a "
              "regime; a\ndiscontinuity appears at the crossover because the "
              "delay reference changes.\n");
  return 0;
}
