#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    check_perf_regression.py BASELINE.json CURRENT.json \
        [--benchmark BM_NewtonSolve] [--threshold 1.25]

Both files are google-benchmark ``--benchmark_out_format=json`` outputs.  For
each watched benchmark the *median* (falling back to the plain entry when the
run had no repetitions) CPU time is compared; the check fails when

    current > baseline * threshold

i.e. the default threshold of 1.25 allows up to a 25% slowdown before CI goes
red.  Medians are used because single-repetition means on shared CI runners
are too noisy to gate on.

Exit status: 0 on pass, 1 on regression, 2 on malformed/missing input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_times(path: str) -> dict[str, float]:
    """Maps benchmark base name -> cpu_time in ns (median preferred)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)

    plain: dict[str, float] = {}
    median: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        cpu = bench.get("cpu_time")
        if cpu is None:
            continue
        if bench.get("aggregate_name") == "median" or name.endswith("_median"):
            median[name.removesuffix("_median")] = float(cpu)
        elif "aggregate_name" not in bench:
            plain[name] = float(cpu)
    # Median wins when present; plain single-run entries fill the gaps.
    return {**plain, **median}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="benchmark to gate on (repeatable; default: BM_NewtonSolve)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="allowed current/baseline ratio before failing (default 1.25)",
    )
    args = ap.parse_args()
    watched = args.benchmark or ["BM_NewtonSolve"]

    base = load_times(args.baseline)
    cur = load_times(args.current)

    failed = False
    for name in watched:
        if name not in base:
            print(f"error: {name} missing from baseline", file=sys.stderr)
            return 2
        if name not in cur:
            print(f"error: {name} missing from current run", file=sys.stderr)
            return 2
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        verdict = "OK" if ratio <= args.threshold else "REGRESSION"
        print(
            f"{name}: baseline {base[name]:.1f} ns, current {cur[name]:.1f} ns, "
            f"ratio {ratio:.3f} (limit {args.threshold:.2f}) -> {verdict}"
        )
        if ratio > args.threshold:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
