#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    check_perf_regression.py BASELINE.json CURRENT.json \
        [--benchmark BM_NewtonSolve] [--threshold 1.25]

Both files are google-benchmark ``--benchmark_out_format=json`` outputs.  For
each watched benchmark the *median* (falling back to the plain entry when the
run had no repetitions) time is compared; the check fails when

    current > baseline * threshold

i.e. a threshold of 1.25 allows up to a 25% slowdown before CI goes red.
Medians are used because single-repetition means on shared CI runners are too
noisy to gate on.

Which benchmarks to watch, and with what threshold, normally comes from a
``gate`` section in the baseline file itself so that widening the gate is a
one-file change:

    "gate": {
      "BM_NewtonSolve": {"threshold": 1.25, "metric": "cpu_time"},
      "BM_CharacterizationSweep/1/real_time":
          {"threshold": 1.35, "metric": "real_time"},
      ...
    }

``metric`` selects which google-benchmark time to compare: ``cpu_time`` for
single-threaded work, ``real_time`` for benchmarks that fan work out to pool
threads (their cpu_time only measures the issuing thread).  Passing
``--benchmark`` overrides the gate section entirely and uses the global
``--threshold`` / cpu_time, preserving the original CLI contract.

Debug builds are rejected outright (exit 2), not merely warned about: a
baseline or current run timed without optimization silently poisons every
future comparison.  Two markers are consulted:

* the ``BENCH_perf_stats.json`` sidecar that bench_perf writes next to its
  benchmark JSON -- its ``build_type`` field reflects how *this project's*
  library was compiled (NDEBUG => "release");
* the baseline's ``context.library_build_type``.  google-benchmark stamps its
  own library's build there, which is useless for gating, so the regeneration
  procedure overwrites it from the sidecar; a baseline still carrying
  ``"debug"`` is either debug-timed or was never normalized, and is rejected
  either way.

Exit status: 0 on pass, 1 on regression, 2 on malformed/missing/debug input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_doc(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def reject_debug_builds(base_doc: dict, current_path: str) -> None:
    """Hard-fails (exit 2) when either side of the comparison is debug-timed."""
    lib = base_doc.get("context", {}).get("library_build_type")
    if lib == "debug":
        print(
            "error: baseline reports context.library_build_type \"debug\" -- "
            "debug timings cannot serve as a baseline; regenerate it from a "
            "Release run (and normalize the field from the bench_perf "
            "sidecar)",
            file=sys.stderr,
        )
        sys.exit(2)
    sidecar = os.path.join(
        os.path.dirname(os.path.abspath(current_path)), "BENCH_perf_stats.json"
    )
    if os.path.exists(sidecar):
        if load_doc(sidecar).get("build_type") == "debug":
            print(
                f"error: {sidecar} reports build_type \"debug\" -- the "
                "current run was timed without optimization; rerun bench_perf "
                "from a Release build",
                file=sys.stderr,
            )
            sys.exit(2)


def load_times(doc: dict) -> dict[str, dict]:
    """Maps benchmark base name -> {metric: time, "unit": str} (median
    preferred).  Times stay in the benchmark's own time_unit; the comparison
    is a ratio, so only baseline/current unit agreement matters (checked)."""
    plain: dict[str, dict] = {}
    median: dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        entry = {
            metric: float(bench[metric])
            for metric in ("cpu_time", "real_time")
            if bench.get(metric) is not None
        }
        if not entry:
            continue
        entry["unit"] = bench.get("time_unit", "ns")
        if bench.get("aggregate_name") == "median" or name.endswith("_median"):
            median[name.removesuffix("_median")] = entry
        elif "aggregate_name" not in bench:
            plain[name] = entry
    # Median wins when present; plain single-run entries fill the gaps.
    return {**plain, **median}


def gate_spec(doc: dict, args: argparse.Namespace) -> dict[str, dict]:
    """Watched benchmark -> {"threshold": float, "metric": str}."""
    if args.benchmark:
        return {
            name: {"threshold": args.threshold, "metric": "cpu_time"}
            for name in args.benchmark
        }
    gate = doc.get("gate")
    if isinstance(gate, dict) and gate:
        spec: dict[str, dict] = {}
        for name, entry in gate.items():
            if isinstance(entry, dict):
                spec[name] = {
                    "threshold": float(entry.get("threshold", args.threshold)),
                    "metric": str(entry.get("metric", "cpu_time")),
                }
            else:  # bare number = threshold, cpu_time metric
                spec[name] = {"threshold": float(entry), "metric": "cpu_time"}
        return spec
    return {"BM_NewtonSolve": {"threshold": args.threshold,
                               "metric": "cpu_time"}}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="benchmark to gate on (repeatable; overrides the baseline's "
        "gate section; default: the gate section, else BM_NewtonSolve)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="allowed current/baseline ratio before failing when no "
        "per-benchmark threshold applies (default 1.25)",
    )
    args = ap.parse_args()

    base_doc = load_doc(args.baseline)
    reject_debug_builds(base_doc, args.current)
    base = load_times(base_doc)
    cur = load_times(load_doc(args.current))
    watched = gate_spec(base_doc, args)

    failed = False
    for name, spec in watched.items():
        metric = spec["metric"]
        threshold = spec["threshold"]
        if name not in base or metric not in base[name]:
            print(f"error: {name} ({metric}) missing from baseline",
                  file=sys.stderr)
            return 2
        if name not in cur or metric not in cur[name]:
            print(f"error: {name} ({metric}) missing from current run",
                  file=sys.stderr)
            return 2
        unit = base[name]["unit"]
        if cur[name]["unit"] != unit:
            print(
                f"error: {name} time_unit mismatch: baseline {unit}, "
                f"current {cur[name]['unit']}",
                file=sys.stderr,
            )
            return 2
        b = base[name][metric]
        c = cur[name][metric]
        ratio = c / b if b > 0 else float("inf")
        verdict = "OK" if ratio <= threshold else "REGRESSION"
        print(
            f"{name}: baseline {b:.1f} {unit}, current {c:.1f} {unit} "
            f"[{metric}], ratio {ratio:.3f} (limit {threshold:.2f}) "
            f"-> {verdict}"
        )
        if ratio > threshold:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
