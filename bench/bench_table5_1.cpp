// Table 5-1 + Figure 5-1 reproduction: experimental validation of Algorithm
// ProximityDelay on the Figure 1-1 NAND3.
//
// Methodology (Section 5): 100 random input configurations; fall times of
// the three inputs drawn from [50 ps, 2000 ps]; separations s_ab and s_ac
// drawn from [-500 ps, +500 ps]; piecewise-linear inputs; delay and output
// rise time computed by the algorithm and compared against the full
// transistor-level simulation.  The paper used HSPICE as the dual-input
// macromodel; we report that oracle mode *and* the deployable tabulated
// mode side by side.
//
// Paper's numbers for reference:   delay           rise time
//   mean error                      1.4 %           -1.33 %
//   std-dev                         2.46 %           4.82 %
//   max / min                       8.54 / -6.94 %  11.51 / -13.15 %

#include <cstdio>
#include <random>

#include "bench_util.hpp"

using namespace prox;
using benchutil::ErrorStats;
using model::InputEvent;
using wave::Edge;

namespace {

void printStatsRow(const char* name, const ErrorStats& s) {
  std::printf("  %-12s %8.2f %8.2f %8.2f %8.2f\n", name, s.mean, s.stddev,
              s.maxv, s.minv);
}

}  // namespace

int main() {
  std::printf("=== Table 5-1 / Figure 5-1: model vs circuit simulation, "
              "100 random NAND3 configurations ===\n");
  const auto& cg = benchutil::nand3Model();
  model::GateSimulator sim(cg.gate);

  // Oracle dual-input macromodel (the paper's validation setup) with its own
  // correction characterization.
  model::OracleDualInputModel oracle(sim, *cg.singles);
  const auto oracleCorr =
      characterize::characterizeStepCorrection(sim, *cg.singles, oracle, 50e-12);
  const model::ProximityCalculator calcOracle(cg.gate.spec.type, *cg.singles,
                                              oracle, oracleCorr);
  const model::ProximityCalculator calcTable = cg.calculator();

  std::mt19937 rng(1996);  // the year, for luck
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-500e-12, 500e-12);

  std::vector<double> dErrOracle, tErrOracle, dErrTable, tErrTable;
  int attempted = 0;
  const int target = 100;
  while (static_cast<int>(dErrOracle.size()) < target && attempted < 3 * target) {
    ++attempted;
    std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, tauDist(rng)},
                                {1, Edge::Falling, sepDist(rng), tauDist(rng)},
                                {2, Edge::Falling, sepDist(rng), tauDist(rng)}};
    const auto full = sim.simulate(evs, 0);
    if (!full.outputRefTime || !full.transitionTime || *full.delay <= 0.0) {
      continue;
    }
    const auto ro = calcOracle.compute(evs);
    const auto rt = calcTable.compute(evs);
    // Compare absolute output crossing times (reference-independent), scaled
    // by the simulated delay as in the paper's percentage convention.
    dErrOracle.push_back((ro.outputRefTime - *full.outputRefTime) /
                         *full.delay * 100.0);
    dErrTable.push_back((rt.outputRefTime - *full.outputRefTime) /
                        *full.delay * 100.0);
    tErrOracle.push_back((ro.transitionTime - *full.transitionTime) /
                         *full.transitionTime * 100.0);
    tErrTable.push_back((rt.transitionTime - *full.transitionTime) /
                        *full.transitionTime * 100.0);
  }

  std::printf("\n%zu configurations evaluated (%d attempted)\n",
              dErrOracle.size(), attempted);
  std::printf("\nTable 5-1 (errors in %%)\n");
  std::printf("  %-12s %8s %8s %8s %8s\n", "quantity", "mean", "std-dev",
              "max", "min");
  std::printf("  -- oracle dual-input macromodel (paper's Section 5 setup) --\n");
  printStatsRow("delay", benchutil::computeStats(dErrOracle));
  printStatsRow("rise time", benchutil::computeStats(tErrOracle));
  std::printf("  -- tabulated dual-input macromodel (deployable tables) --\n");
  printStatsRow("delay", benchutil::computeStats(dErrTable));
  printStatsRow("rise time", benchutil::computeStats(tErrTable));

  benchutil::printHistogram(dErrOracle, 2.0,
                            "Figure 5-1(a): delay error distribution (oracle)");
  benchutil::printHistogram(tErrOracle, 2.0,
                            "Figure 5-1(b): rise-time error distribution (oracle)");
  std::printf("\nPaper reference: delay mean 1.4%%, sigma 2.46%%, max 8.54%%, "
              "min -6.94%%;\n                rise time mean -1.33%%, sigma "
              "4.82%%, max 11.51%%, min -13.15%%.\n");
  std::printf("Total transistor-level simulations run: %ld\n",
              sim.simulationCount());
  return 0;
}
