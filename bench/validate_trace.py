#!/usr/bin/env python3
"""Validate an exported Chrome-trace JSON file (and optionally a stats
report) from the observability layer.

Usage:
    validate_trace.py TRACE.json [--require-span NAME]... \
        [--require-counter NAME]... [--require-thread-name] \
        [--stats STATS.json [--require-histogram NAME]...]

Checks that the trace is loadable by Perfetto / chrome://tracing consumers:
a JSON object with a ``traceEvents`` array whose entries carry the mandatory
Chrome trace-event fields, plus (optionally) that specific spans, counter
tracks, named threads and stats-report histograms actually showed up -- the
CI proof that the instrumentation is wired through the layers, not just that
the exporter emits syntactically valid JSON.

Exit status: 0 on pass, 1 on a failed check, 2 on unreadable input.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

KNOWN_PHASES = {"X", "B", "E", "b", "e", "n", "C", "i", "I", "M", "s", "t",
                "f"}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def validate_trace(doc: dict, args: argparse.Namespace) -> None:
    if not isinstance(doc, dict):
        fail("trace root is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing, not an array, or empty")
    if not isinstance(doc.get("droppedEvents"), int):
        fail("droppedEvents missing or not an integer")

    span_names: set[str] = set()
    counter_names: set[str] = set()
    thread_names: set[str] = set()
    last_ts = -1.0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        name = ev.get("name")
        if ph not in KNOWN_PHASES:
            fail(f"traceEvents[{i}] has unknown phase {ph!r}")
        if not isinstance(name, str) or not name:
            fail(f"traceEvents[{i}] has no name")
        if not isinstance(ev.get("pid"), int):
            fail(f"traceEvents[{i}] ({name}) has no integer pid")
        if not isinstance(ev.get("tid"), int):
            fail(f"traceEvents[{i}] ({name}) has no integer tid")
        if ph == "M":
            if name == "thread_name":
                thread_names.add(ev.get("args", {}).get("name", ""))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"traceEvents[{i}] ({name}) has no numeric ts")
        if ts < last_ts:
            fail(f"traceEvents[{i}] ({name}) breaks timestamp ordering")
        last_ts = ts
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                fail(f"complete event {name} has no numeric dur")
            span_names.add(name)
        elif ph == "C":
            if "value" not in ev.get("args", {}):
                fail(f"counter event {name} has no args.value")
            counter_names.add(name)

    for want in args.require_span or []:
        if want not in span_names:
            fail(f"required span {want!r} absent (saw: {sorted(span_names)})")
    for want in args.require_counter or []:
        if want not in counter_names:
            fail(f"required counter track {want!r} absent "
                 f"(saw: {sorted(counter_names)})")
    if args.require_thread_name and not any(thread_names):
        fail("no named threads in the trace")
    print(f"trace OK: {len(events)} events, {len(span_names)} span names, "
          f"{len(counter_names)} counter tracks, "
          f"{len(thread_names)} named threads, "
          f"{doc['droppedEvents']} dropped")


def validate_stats(doc: dict, args: argparse.Namespace) -> None:
    version = doc.get("schema_version")
    if version not in (2, 3, 4):
        fail(f"stats schema_version is {version!r}, expected 2, 3 or 4")
    if version >= 4:
        # v4 provenance stamps: both fields, when present, must be non-empty
        # strings, and run_timestamp must look like ISO-8601 UTC.  bench_perf
        # always writes them; hand-rolled v4 files may omit them.
        for key in ("git_sha", "run_timestamp"):
            if key in doc and (not isinstance(doc[key], str) or not doc[key]):
                fail(f"stats {key} must be a non-empty string")
        ts = doc.get("run_timestamp")
        if ts is not None and not re.fullmatch(
                r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", ts):
            fail(f"stats run_timestamp {ts!r} is not ISO-8601 UTC "
                 f"(YYYY-MM-DDTHH:MM:SSZ)")
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail("stats report has no histograms section")
    for want in args.require_histogram or []:
        h = hists.get(want)
        if not isinstance(h, dict):
            fail(f"required histogram {want!r} absent "
                 f"(saw: {sorted(hists)})")
        for key in ("count", "sum", "min", "max", "p50", "p90", "p99",
                    "buckets"):
            if key not in h:
                fail(f"histogram {want!r} missing field {key!r}")
        if h["count"] <= 0:
            fail(f"histogram {want!r} recorded no samples")
    print(f"stats OK: schema v{version}, {len(hists)} histograms")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--require-span", action="append", default=None,
                    help="complete-event name that must appear (repeatable)")
    ap.add_argument("--require-counter", action="append", default=None,
                    help="counter track that must appear (repeatable)")
    ap.add_argument("--require-thread-name", action="store_true",
                    help="require at least one thread_name metadata record")
    ap.add_argument("--stats", default=None,
                    help="also validate this stats report (schema v2)")
    ap.add_argument("--require-histogram", action="append", default=None,
                    help="histogram that must appear in --stats (repeatable)")
    args = ap.parse_args()

    validate_trace(load(args.trace), args)
    if args.stats:
        validate_stats(load(args.stats), args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
