// Figure 6-1(b) reproduction: inertial delay as a proximity effect.
// NAND3 with c at Vdd; input a falls (tau = 500 ps), input b rises
// (tau = 100/500/1000 ps).  The magnitude of the minimum output voltage is
// plotted against the separation; the output has "completed a transition"
// only once that magnitude falls below V_il.  The separation where the curve
// crosses V_il is the minimum valid separation -- the gate's inertial delay.

#include <cstdio>

#include "bench_util.hpp"
#include "model/glitch.hpp"

using namespace prox;
using benchutil::ps;

int main() {
  std::printf("=== Figure 6-1(b): output glitch magnitude vs separation "
              "(a falls, b rises, c at Vdd) ===\n");
  model::GateSimulator sim(benchutil::nand3Gate());
  const double vil = sim.thresholds().vil;
  const double tauFall = 500e-12;

  std::printf("V_il threshold (dotted line in the paper) = %.3f V\n", vil);

  for (double tauRise : {100e-12, 500e-12, 1000e-12}) {
    std::vector<double> seps;
    for (double s = -700e-12; s <= 900.1e-12; s += 100e-12) seps.push_back(s);
    const auto gm = model::GlitchModel::characterize(sim, /*fallPin=*/0,
                                                     tauFall, /*risePin=*/1,
                                                     tauRise, seps);
    std::printf("\nrise(b) = %.0f ps   [s = t(fall a) - t(rise b)]\n",
                ps(tauRise));
    std::printf("  %10s %14s %10s\n", "s [ps]", "min Vout [V]", "completed");
    for (std::size_t i = 0; i < gm.separations().size(); ++i) {
      std::printf("  %10.0f %14.3f %10s\n", ps(gm.separations()[i]),
                  gm.voltages()[i],
                  gm.voltages()[i] <= vil ? "yes" : "no");
    }
    if (const auto sMin = gm.minimumValidSeparation(vil)) {
      std::printf("  -> minimum valid separation (inertial delay): %.1f ps\n",
                  ps(*sMin));
    } else {
      std::printf("  -> no completion within the characterized range\n");
    }
  }
  std::printf("\nShape check (paper): when b rises long before a falls the "
              "output completes its\nfalling transition; as the two move "
              "closer the falling a blocks it, and the\nminimum voltage rises "
              "back toward Vdd.\n");
  return 0;
}
