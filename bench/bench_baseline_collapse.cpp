// Baseline comparison: the series-parallel collapsed-inverter method of
// references [8]/[13] against this paper's compositional proximity model,
// both judged against the full transistor-level simulation on the Table 5-1
// workload.  The paper's claim: "the results are more accurate than
// previously published methods ... which rely on the reduction of the gate
// to an equivalent inverter."

#include <cstdio>
#include <random>

#include "baseline/collapse.hpp"
#include "bench_util.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

namespace {

void printStatsRow(const char* name, const benchutil::ErrorStats& s) {
  std::printf("  %-22s %8.2f %8.2f %8.2f %8.2f\n", name, s.mean, s.stddev,
              s.maxv, s.minv);
}

}  // namespace

int main() {
  std::printf("=== Baseline: collapsed-inverter [8]/[13] vs compositional "
              "proximity model ===\n");
  std::printf("Workload: 50 random NAND3 configurations (Table 5-1 "
              "distribution).\n");
  const auto& cg = benchutil::nand3Model();
  model::GateSimulator sim(cg.gate);
  baseline::CollapsedInverterModel collapse(cg.gate);
  const auto calc = cg.calculator();

  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-500e-12, 500e-12);

  std::vector<double> errProx, errColl, tErrProx, tErrColl;
  for (int cfg = 0; cfg < 50; ++cfg) {
    const Edge e = cfg % 2 == 0 ? Edge::Rising : Edge::Falling;
    std::vector<InputEvent> evs{{0, e, 0.0, tauDist(rng)},
                                {1, e, sepDist(rng), tauDist(rng)},
                                {2, e, sepDist(rng), tauDist(rng)}};
    const auto full = sim.simulate(evs, 0);
    if (!full.outputRefTime || !full.transitionTime || *full.delay <= 0.0) {
      continue;
    }
    const auto rp = calc.compute(evs);
    const auto rc = collapse.compute(evs, 0);
    if (!rc.outputRefTime || !rc.transitionTime) continue;
    errProx.push_back((rp.outputRefTime - *full.outputRefTime) / *full.delay *
                      100.0);
    errColl.push_back((*rc.outputRefTime - *full.outputRefTime) / *full.delay *
                      100.0);
    tErrProx.push_back((rp.transitionTime - *full.transitionTime) /
                       *full.transitionTime * 100.0);
    tErrColl.push_back((*rc.transitionTime - *full.transitionTime) /
                       *full.transitionTime * 100.0);
  }

  std::printf("\nOutput-crossing errors vs full simulation (%%), %zu configs\n",
              errProx.size());
  std::printf("  %-22s %8s %8s %8s %8s\n", "method", "mean", "std-dev", "max",
              "min");
  printStatsRow("proximity (this work)", benchutil::computeStats(errProx));
  printStatsRow("collapsed inverter", benchutil::computeStats(errColl));
  std::printf("\nOutput transition-time errors (%%)\n");
  printStatsRow("proximity (this work)", benchutil::computeStats(tErrProx));
  printStatsRow("collapsed inverter", benchutil::computeStats(tErrColl));

  double sp = 0.0;
  double sc = 0.0;
  for (double e : errProx) sp += std::fabs(e);
  for (double e : errColl) sc += std::fabs(e);
  std::printf("\n  mean |delay error|: proximity %.2f%%  vs  collapse %.2f%%\n",
              sp / errProx.size(), sc / errColl.size());
  return 0;
}
