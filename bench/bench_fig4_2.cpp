// Figure 4-2 reproduction: storage complexity of the modeling options for an
// n-input gate.
//   1. Full model:          n functions of 2n-1 arguments
//   2. Pairwise dual model: n single-input + (n^2 - n) dual-input macromodels
//   3. This paper:          n single-input + n dual-input macromodels
//      (x2 for output transition time)
// Counts are converted to table entries with a k-point grid per argument
// (k = 5 here, the paper's observation that 2n-1-dimensional tables "would
// make them impractical" shows up immediately).  The measured bytes of the
// actual characterized NAND3 package are printed alongside.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace prox;

int main() {
  std::printf("=== Figure 4-2: storage complexity of the modeling options ===\n");
  const int k = 5;  // grid points per table dimension

  std::printf("\n  %3s | %22s | %22s | %22s\n", "n", "full model entries",
              "n^2 dual-model entries", "2n compositional entries");
  std::printf("  ----+------------------------+------------------------+------"
              "------------------\n");
  for (int n = 2; n <= 8; ++n) {
    // Full model: n functions of (2n-1) arguments.
    const double full = n * std::pow(k, 2 * n - 1);
    // Pairwise: n single (1-arg) + (n^2-n) dual (3-arg) macromodels.
    const double pairwise = n * k + (static_cast<double>(n) * n - n) * std::pow(k, 3);
    // Compositional (this paper): n single + n dual.
    const double comp = n * k + static_cast<double>(n) * std::pow(k, 3);
    std::printf("  %3d | %22.3g | %22.3g | %22.3g\n", n, full, pairwise, comp);
  }

  const auto& cg = benchutil::nand3Model();
  std::size_t singleBytes = 0;
  for (int pin = 0; pin < cg.pinCount(); ++pin) {
    for (wave::Edge e : {wave::Edge::Rising, wave::Edge::Falling}) {
      singleBytes += cg.singles->at(pin, e).table().size() *
                     sizeof(model::SingleInputModel::Sample);
    }
  }
  std::printf("\nMeasured NAND3 package (delay + transition, both edges):\n");
  std::printf("  single-input tables: %zu bytes\n", singleBytes);
  std::printf("  dual-input tables:   %zu bytes\n", cg.dual->totalBytes());
  std::printf("  total:               %zu bytes  (scales as 2n macromodels "
              "per quantity, not n^2)\n",
              singleBytes + cg.dual->totalBytes());
  std::printf(
      "\nNote: the 2n footprint relies on every partner of a reference pin "
      "behaving\nalike, which holds for single-stack NAND/NOR.  Complex "
      "(AOI/OAI) gates fall\nback to the paper's option 2(a) -- the n^2-n "
      "pair matrix -- because a series-\nbranch partner slows the output "
      "where a parallel-branch partner speeds it up\n(see DESIGN.md section "
      "4b and bench_complex_gate).\n");
  return 0;
}
