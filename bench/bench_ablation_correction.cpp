// Ablation: the Section 4 corrective term.  The paper's two failure modes --
// simultaneous inputs with identical transition times, and a late-arriving
// dominant input -- are exercised with near-simultaneous random
// configurations; error statistics are reported with the corrective term
// enabled and disabled.

#include <cstdio>
#include <random>

#include "bench_util.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

namespace {

void printStatsRow(const char* name, const benchutil::ErrorStats& s) {
  std::printf("  %-14s %8.2f %8.2f %8.2f %8.2f\n", name, s.mean, s.stddev,
              s.maxv, s.minv);
}

}  // namespace

int main() {
  std::printf("=== Ablation: Section 4 corrective term on/off ===\n");
  std::printf("Workload: 60 random NAND3 configurations with separations in "
              "[-50, +50] ps\n(the near-simultaneous regime the correction "
              "targets), fall times 50..2000 ps.\n");
  const auto& cg = benchutil::nand3Model();
  model::GateSimulator sim(cg.gate);

  model::ProximityOptions withCorr;
  model::ProximityOptions noCorr;
  noCorr.applyCorrection = false;
  const auto calcOn = cg.calculator(withCorr);
  const auto calcOff = cg.calculator(noCorr);

  std::mt19937 rng(424242);
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-50e-12, 50e-12);

  std::vector<double> errOn, errOff;
  // Include the worst case the paper names: identical simultaneous steps.
  std::vector<std::vector<InputEvent>> workload;
  for (Edge e : {Edge::Rising, Edge::Falling}) {
    workload.push_back({{0, e, 0.0, 50e-12},
                        {1, e, 0.0, 50e-12},
                        {2, e, 0.0, 50e-12}});
  }
  for (int cfg = 0; cfg < 58; ++cfg) {
    const Edge e = cfg % 2 == 0 ? Edge::Rising : Edge::Falling;
    workload.push_back({{0, e, 0.0, tauDist(rng)},
                        {1, e, sepDist(rng), tauDist(rng)},
                        {2, e, sepDist(rng), tauDist(rng)}});
  }

  for (const auto& evs : workload) {
    const auto full = sim.simulate(evs, 0);
    if (!full.outputRefTime || *full.delay <= 0.0) continue;
    const auto on = calcOn.compute(evs);
    const auto off = calcOff.compute(evs);
    errOn.push_back((on.outputRefTime - *full.outputRefTime) / *full.delay *
                    100.0);
    errOff.push_back((off.outputRefTime - *full.outputRefTime) / *full.delay *
                     100.0);
  }

  std::printf("\nDelay errors vs full simulation (%%), %zu configurations\n",
              errOn.size());
  std::printf("  %-14s %8s %8s %8s %8s\n", "variant", "mean", "std-dev", "max",
              "min");
  printStatsRow("corrected", benchutil::computeStats(errOn));
  printStatsRow("uncorrected", benchutil::computeStats(errOff));

  double absOn = 0.0;
  double absOff = 0.0;
  for (double e : errOn) absOn += std::fabs(e);
  for (double e : errOff) absOff += std::fabs(e);
  std::printf("\n  mean |error|: corrected %.2f%%  vs  uncorrected %.2f%%\n",
              absOn / errOn.size(), absOff / errOff.size());

  // Second ablation: transition-time ratio composition (DESIGN.md 4b):
  // multiplicative (default) vs the literal additive analog of eq (4.5).
  std::printf("\n--- transition-time composition: multiplicative vs additive "
              "---\n");
  model::ProximityOptions addOpts;
  addOpts.transitionComposition = model::TransitionComposition::Additive;
  const auto calcAdd = cg.calculator(addOpts);
  const auto calcMul = cg.calculator();

  std::mt19937 rng2(777);
  std::uniform_real_distribution<double> tau2(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sep2(-500e-12, 500e-12);
  std::vector<double> tMul, tAdd;
  for (int cfg = 0; cfg < 50; ++cfg) {
    std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, tau2(rng2)},
                                {1, Edge::Falling, sep2(rng2), tau2(rng2)},
                                {2, Edge::Falling, sep2(rng2), tau2(rng2)}};
    const auto full = sim.simulate(evs, 0);
    if (!full.transitionTime) continue;
    tMul.push_back((calcMul.compute(evs).transitionTime - *full.transitionTime) /
                   *full.transitionTime * 100.0);
    tAdd.push_back((calcAdd.compute(evs).transitionTime - *full.transitionTime) /
                   *full.transitionTime * 100.0);
  }
  const auto sm = benchutil::computeStats(tMul);
  const auto sa = benchutil::computeStats(tAdd);
  std::printf("  rise-time errors over %zu configs:\n", tMul.size());
  std::printf("  multiplicative: mean %+.2f%%, std-dev %.2f%%, min %+.2f%%\n",
              sm.mean, sm.stddev, sm.minv);
  std::printf("  additive:       mean %+.2f%%, std-dev %.2f%%, min %+.2f%%\n",
              sa.mean, sa.stddev, sa.minv);
  std::printf("  (additive double-counts large parallel-path speedups; "
              "multiplicative is the default)\n");
  return 0;
}
