// Fan-in generality: Section 4's algorithm claims to handle any number of
// inputs by repeated dual-input composition.  The paper validates n = 3
// (Table 5-1); this bench runs the same randomized validation for NAND2,
// NAND3 and NAND4 so the error trend with fan-in is visible.  The expected
// shape: errors grow mildly with n (more composition steps, deeper stacks),
// staying in the single-digit band.

#include <cstdio>
#include <random>

#include "bench_util.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

int main() {
  std::printf("=== Fan-in sweep: randomized validation for NAND2/3/4 ===\n");
  std::printf("Per gate: characterize, then 40 random configurations "
              "(taus 50..2000 ps,\nseparations +/-500 ps, mixed directions), "
              "errors vs full simulation.\n");

  for (int fanin : {2, 3, 4}) {
    cells::CellSpec spec = benchutil::nand3Spec();
    spec.fanin = fanin;
    const auto cg = characterize::characterizeGate(spec);
    model::GateSimulator sim(cg.gate);
    const auto calc = cg.calculator();

    std::mt19937 rng(1000 + static_cast<unsigned>(fanin));
    std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
    std::uniform_real_distribution<double> sepDist(-500e-12, 500e-12);

    std::vector<double> dErr, tErr;
    for (int cfg = 0; cfg < 40; ++cfg) {
      const Edge e = cfg % 2 == 0 ? Edge::Rising : Edge::Falling;
      std::vector<InputEvent> evs;
      for (int p = 0; p < fanin; ++p) {
        evs.push_back({p, e, p == 0 ? 0.0 : sepDist(rng), tauDist(rng)});
      }
      const auto full = sim.simulate(evs, 0);
      if (!full.outputRefTime || !full.transitionTime || *full.delay <= 0.0) {
        continue;
      }
      const auto r = calc.compute(evs);
      dErr.push_back((r.outputRefTime - *full.outputRefTime) / *full.delay *
                     100.0);
      tErr.push_back((r.transitionTime - *full.transitionTime) /
                     *full.transitionTime * 100.0);
    }
    const auto ds = benchutil::computeStats(dErr);
    const auto ts = benchutil::computeStats(tErr);
    std::printf("\nNAND%d (%zu configs):\n", fanin, dErr.size());
    std::printf("  delay:      mean %+6.2f%%  std-dev %5.2f%%  max %+6.2f%%  "
                "min %+6.2f%%\n",
                ds.mean, ds.stddev, ds.maxv, ds.minv);
    std::printf("  transition: mean %+6.2f%%  std-dev %5.2f%%  max %+6.2f%%  "
                "min %+6.2f%%\n",
                ts.mean, ts.stddev, ts.maxv, ts.minv);
  }
  std::printf("\nShape check: single-digit mean/std-dev at every fan-in; the "
              "dual-input\ncomposition does not blow up as n grows.\n");
  return 0;
}
