// Section 2 robustness experiment: why the min-V_il / max-V_ih rule matters.
// Measure the single-input delay of the NAND3 (input c, closest to ground,
// switching alone with increasingly slow ramps) under three threshold
// policies:
//   A. Vdd/2 for input and output,
//   B. thresholds taken from the all-inputs-switching VTC (the "wrong" curve
//      for this event -- its V_il exceeds this input's V_m),
//   C. the paper's rule (min V_il, max V_ih over all VTCs).
// Policy B produces *negative* delays once the ramp is slow enough; policy C
// never does.

#include <cstdio>

#include "bench_util.hpp"
#include "model/gate_sim.hpp"
#include "vtc/thresholds.hpp"

using namespace prox;
using benchutil::ps;
using wave::Edge;

namespace {

// Measures delay of a rising ramp on `pin` (others non-controlling) with the
// given measurement thresholds, by direct simulation.
std::optional<double> delayWith(cells::CellFixture& fix, int pin, double tau,
                                const wave::Thresholds& th, double vdd) {
  fix.setAllNonControlling();
  const double t0 = 0.3e-9;
  fix.setInput(pin, wave::risingRamp(t0, tau, vdd));
  const auto out = fix.runOutput(t0 + tau + 4e-9);
  const auto in = wave::risingRamp(t0, tau, vdd);
  return wave::propagationDelay(in, Edge::Rising, out, Edge::Falling, th);
}

}  // namespace

int main() {
  std::printf("=== Section 2: threshold choice vs delay sign (NAND3, input c "
              "switching alone) ===\n");
  const auto rep = vtc::chooseThresholds(benchutil::nand3Spec());
  const double vdd = benchutil::nand3Spec().tech.vdd;

  // Policy B: the all-switching curve (the last subset in the family).
  const auto& allCurve = rep.curves.back().points;
  const wave::Thresholds polA{vdd / 2.0, vdd / 2.0};
  const wave::Thresholds polB{allCurve.vil, allCurve.vih};
  const wave::Thresholds polC = rep.chosen;

  std::printf("\n  policy A (Vdd/2):        vil=vih=%.3f V\n", vdd / 2.0);
  std::printf("  policy B (all-switch VTC): vil=%.3f vih=%.3f V\n", polB.vil,
              polB.vih);
  std::printf("  policy C (paper's rule):   vil=%.3f vih=%.3f V\n", polC.vil,
              polC.vih);
  std::printf("  V_m of the c-alone VTC:    %.3f V  (policy B's V_il exceeds "
              "it -> trouble)\n",
              rep.curves[3].points.vm);  // subset {c} is mask 0b100 -> index 3

  cells::CellFixture fix(benchutil::nand3Spec());
  std::printf("\n  %10s %14s %14s %14s\n", "tau [ps]", "A: Vdd/2 [ps]",
              "B: all-VTC [ps]", "C: paper [ps]");
  bool bWentNegative = false;
  bool cStayedPositive = true;
  for (double tau : {200e-12, 500e-12, 1000e-12, 2000e-12, 5000e-12, 10e-9,
                     20e-9}) {
    const auto dA = delayWith(fix, 2, tau, polA, vdd);
    const auto dB = delayWith(fix, 2, tau, polB, vdd);
    const auto dC = delayWith(fix, 2, tau, polC, vdd);
    std::printf("  %10.0f %14.1f %14.1f %14.1f\n", ps(tau),
                dA ? ps(*dA) : -1.0, dB ? ps(*dB) : -1.0, dC ? ps(*dC) : -1.0);
    if (dB && *dB < 0.0) bWentNegative = true;
    if (dC && *dC <= 0.0) cStayedPositive = false;
  }
  std::printf("\n  policy B produced negative delays: %s\n",
              bWentNegative ? "YES (as the paper predicts)" : "no");
  std::printf("  policy C stayed strictly positive: %s\n",
              cStayedPositive ? "YES (the Section 2 guarantee)" : "NO");
  return 0;
}
