#pragma once
// Shared helpers for the reproduction benches: the paper's NAND3 setup,
// cached characterization, and error statistics.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "characterize/characterize.hpp"

namespace prox::benchutil {

/// The experiment gate: the Figure 1-1 three-input NAND.
inline cells::CellSpec nand3Spec() {
  cells::CellSpec s;
  s.type = cells::GateType::Nand;
  s.fanin = 3;
  return s;
}

/// Characterized NAND3 with the production config (built once per binary).
inline const characterize::CharacterizedGate& nand3Model() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeGate(nand3Spec());
  return g;
}

/// Section 2 gate (thresholds only) for benches that only simulate.
inline const model::Gate& nand3Gate() {
  static const model::Gate g = model::makeGate(nand3Spec());
  return g;
}

struct ErrorStats {
  double mean = 0.0;
  double stddev = 0.0;
  double maxv = 0.0;
  double minv = 0.0;
  std::size_t n = 0;
};

inline ErrorStats computeStats(const std::vector<double>& errors) {
  ErrorStats s;
  s.n = errors.size();
  if (errors.empty()) return s;
  s.maxv = errors[0];
  s.minv = errors[0];
  for (double e : errors) {
    s.mean += e;
    s.maxv = std::max(s.maxv, e);
    s.minv = std::min(s.minv, e);
  }
  s.mean /= static_cast<double>(errors.size());
  for (double e : errors) s.stddev += (e - s.mean) * (e - s.mean);
  s.stddev = std::sqrt(s.stddev / static_cast<double>(errors.size()));
  return s;
}

/// ASCII histogram in the style of Figure 5-1 (one row per bin).
inline void printHistogram(const std::vector<double>& errors, double binWidth,
                           const std::string& title) {
  if (errors.empty()) return;
  const double lo = *std::min_element(errors.begin(), errors.end());
  const double hi = *std::max_element(errors.begin(), errors.end());
  const int firstBin = static_cast<int>(std::floor(lo / binWidth));
  const int lastBin = static_cast<int>(std::floor(hi / binWidth));
  std::printf("\n%s (bin width %.1f%%)\n", title.c_str(), binWidth);
  for (int b = firstBin; b <= lastBin; ++b) {
    int count = 0;
    for (double e : errors) {
      if (e >= b * binWidth && e < (b + 1) * binWidth) ++count;
    }
    std::printf("  [%6.1f, %6.1f) %3d ", b * binWidth, (b + 1) * binWidth,
                count);
    for (int i = 0; i < count; ++i) std::printf("#");
    std::printf("\n");
  }
}

inline double ps(double seconds) { return seconds * 1e12; }

}  // namespace prox::benchutil
