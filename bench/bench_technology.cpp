// Extension experiment: technology independence.  The paper closes with
// "an added advantage of our method is that it is not limited to CMOS
// technology alone" and plans to apply it to CGaAs; here the entire flow
// (thresholds + proximity curves) is re-run on a second simulated process
// -- a 3.3 V alpha-power-law (velocity-saturated) technology -- and the
// *normalized* proximity curves are compared with the 5 V level-1 process.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "vtc/thresholds.hpp"

using namespace prox;
using benchutil::ps;
using model::InputEvent;
using wave::Edge;

namespace {

struct TechCase {
  const char* name;
  cells::CellSpec spec;
};

void runCase(const TechCase& tc) {
  std::printf("\n--- %s (Vdd = %.1f V) ---\n", tc.name, tc.spec.tech.vdd);
  const auto rep = vtc::chooseThresholds(tc.spec, 0.02);
  std::printf("thresholds: V_il = %.3f V (%.2f Vdd), V_ih = %.3f V (%.2f Vdd)\n",
              rep.chosen.vil, rep.chosen.vil / tc.spec.tech.vdd,
              rep.chosen.vih, rep.chosen.vih / tc.spec.tech.vdd);

  model::Gate gate{tc.spec, std::nullopt, rep.chosen};
  model::GateSimulator sim(gate);

  // Falling pair: delay vs separation, normalized to the isolated-input
  // delay so the two technologies' curves are directly comparable.
  const double tauA = 300e-12;
  const double tauB = 100e-12;
  const auto alone = sim.simulateSingle({0, Edge::Falling, 0.0, tauA});
  if (!alone.delay) return;
  std::printf("falling pair (tau_a=%.0f ps, tau_b=%.0f ps); Delta_alone = "
              "%.1f ps\n",
              ps(tauA), ps(tauB), ps(*alone.delay));
  std::printf("  %10s %12s %18s\n", "s_ab [ps]", "delay [ps]",
              "delay / Delta_alone");
  for (double s = -300e-12; s <= 450.1e-12; s += 150e-12) {
    const auto o = sim.simulate({{0, Edge::Falling, 0.0, tauA},
                                 {1, Edge::Falling, s, tauB}}, 0);
    if (!o.delay) continue;
    std::printf("  %10.0f %12.1f %18.3f\n", ps(s), ps(*o.delay),
                *o.delay / *alone.delay);
  }
}

}  // namespace

int main() {
  std::printf("=== Extension: proximity across technologies ===\n");

  TechCase generic{"generic 5 V, level-1 square law", benchutil::nand3Spec()};

  cells::CellSpec sub;
  sub.type = cells::GateType::Nand;
  sub.fanin = 3;
  sub.tech = cells::Technology::submicron3v();
  sub.wn = 3e-6;
  sub.wp = 4e-6;
  sub.loadCap = 60e-15;
  TechCase submicron{"submicron 3.3 V, alpha-power law", sub};

  runCase(generic);
  runCase(submicron);

  std::printf("\nShape check: both technologies show the same normalized "
              "curve -- deep speedup\nfor overlapping transitions, recovering "
              "to 1.0 as the second input leaves the\nproximity window.  The "
              "model never referenced level-1 specifics.\n");
  return 0;
}
