// Extension experiment: the paper's methodology on a complex gate (AOI21,
// out = !((a.b)+c)).  The paper develops its model on NAND/NOR but nothing
// in the recipe is NAND-specific; this bench shows the same phenomena on a
// series-parallel gate:
//   * the per-subset VTC family and the min-V_il/max-V_ih rule (Section 2),
//   * proximity speed-up on the parallel pullup branch (falling a, b),
//   * proximity slow-down on the series pulldown branch (rising a, b).

#include <algorithm>
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "cells/complex_fixture.hpp"
#include "vtc/complex.hpp"
#include "waveform/pwl.hpp"

using namespace prox;

namespace {

std::string subsetName(const std::vector<int>& pins) {
  std::string s;
  for (int p : pins) s += static_cast<char>('a' + p);
  return s;
}

}  // namespace

int main() {
  const auto spec = cells::aoi21();
  std::printf("=== Extension: proximity on a complex gate ===\n");
  std::printf("AOI21: pulldown f = %s, pullup (dual) = %s\n",
              spec.pulldown.toString().c_str(),
              spec.pulldown.dual().toString().c_str());

  // Section 2 on the complex gate.
  const auto rep = vtc::chooseComplexThresholds(spec, 0.02);
  std::printf("\nVTC family (%zu sensitizable subsets, %zu skipped):\n",
              rep.curves.size(), rep.skippedSubsets.size());
  std::printf("  %-8s %-12s %8s %8s %8s\n", "subset", "stable", "V_il",
              "V_ih", "V_m");
  for (const auto& c : rep.curves) {
    std::string stable;
    for (int p = 0; p < spec.pinCount(); ++p) {
      const bool switching =
          std::find(c.curve.switchingInputs.begin(),
                    c.curve.switchingInputs.end(),
                    p) != c.curve.switchingInputs.end();
      stable += switching ? '-' : (c.stableLevels[p] ? '1' : '0');
    }
    std::printf("  %-8s %-12s %8.3f %8.3f %8.3f\n",
                subsetName(c.curve.switchingInputs).c_str(), stable.c_str(),
                c.curve.points.vil, c.curve.points.vih, c.curve.points.vm);
  }
  std::printf("chosen: V_il = %.3f V, V_ih = %.3f V\n", rep.chosen.vil,
              rep.chosen.vih);

  // Proximity sweeps measured at the chosen thresholds.
  const double vdd = spec.tech.vdd;
  cells::ComplexCellFixture fix(spec);

  std::printf("\nFalling a (tau 400 ps) + falling b (tau 150 ps), c = 0: "
              "output RISES via the\nparallel (a+b) pullup branch -- "
              "proximity speeds it up.\n");
  std::printf("  %10s %14s\n", "s_ab [ps]", "t_cross [ps]");
  for (double s = -400e-12; s <= 800.1e-12; s += 200e-12) {
    fix.setLevels({true, true, false});
    fix.setInput(0, wave::fallingRamp(1e-9, 400e-12, vdd));
    fix.setInput(1, wave::fallingRamp(1e-9 + s, 150e-12, vdd));
    const auto out = fix.runOutput(6e-9);
    const auto t = out.lastCrossing(rep.chosen.vih, wave::Edge::Rising);
    std::printf("  %10.0f %14.1f\n", s * 1e12, t ? (*t - 1e-9) * 1e12 : -1.0);
  }

  std::printf("\nRising a (tau 400 ps) + rising b (tau 400 ps), c = 0: output "
              "FALLS via the\nseries (a.b) pulldown branch -- proximity slows "
              "it down.\n");
  std::printf("  %10s %14s\n", "s_ab [ps]", "t_cross [ps]");
  for (double s = -400e-12; s <= 800.1e-12; s += 200e-12) {
    fix.setLevels({false, false, false});
    fix.setInput(0, wave::risingRamp(1e-9, 400e-12, vdd));
    fix.setInput(1, wave::risingRamp(1e-9 + s, 400e-12, vdd));
    const auto out = fix.runOutput(6e-9);
    const auto t = out.lastCrossing(rep.chosen.vil, wave::Edge::Falling);
    std::printf("  %10.0f %14.1f\n", s * 1e12, t ? (*t - 1e-9) * 1e12 : -1.0);
  }

  // Table 5-1-style validation of the characterized proximity model on the
  // complex gate (per-pair dual tables, structural dominance sense).
  std::printf("\nValidation: characterized model vs full simulation, 50 "
              "random configurations\n(taus 50..2000 ps, separations +/-400 "
              "ps, random sensitizable subsets)...\n");
  const auto cg = characterize::characterizeComplexGate(spec);
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();

  std::mt19937 rng(21);
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-400e-12, 400e-12);
  std::vector<double> errs;
  int attempted = 0;
  while (static_cast<int>(errs.size()) < 50 && attempted < 150) {
    ++attempted;
    const wave::Edge e =
        attempted % 2 == 0 ? wave::Edge::Rising : wave::Edge::Falling;
    // Random subset of >= 2 pins.
    std::vector<int> pins;
    for (int p = 0; p < 3; ++p) {
      if (rng() % 2 == 0) pins.push_back(p);
    }
    if (pins.size() < 2) pins = {0, 1};
    if (!spec.sensitizingAssignment(pins)) continue;
    std::vector<model::InputEvent> evs;
    for (std::size_t i = 0; i < pins.size(); ++i) {
      evs.push_back({pins[i], e, i == 0 ? 0.0 : sepDist(rng), tauDist(rng)});
    }
    const auto full = sim.simulate(evs, 0);
    if (!full.outputRefTime || *full.delay <= 0.0) continue;
    const auto r = calc.compute(evs);
    errs.push_back((r.outputRefTime - *full.outputRefTime) / *full.delay *
                   100.0);
  }
  const auto stats = benchutil::computeStats(errs);
  std::printf("delay errors over %zu configs: mean %+.2f%%, std-dev %.2f%%, "
              "max %+.2f%%, min %+.2f%%\n",
              errs.size(), stats.mean, stats.stddev, stats.maxv, stats.minv);
  std::printf("(same single-digit error band as the NAND3 reproduction: the "
              "method carries to\ncomplex gates once the dual tables are "
              "per-pair -- see DESIGN.md)\n");
  return 0;
}
