// Figure 2-1 reproduction: the family of 2^3 - 1 = 7 voltage transfer
// curves of the NAND3 and the per-curve switching thresholds (the table in
// Figure 2-1(c)), plus the Section 2 min-V_il / max-V_ih choice.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "vtc/thresholds.hpp"

using namespace prox;

namespace {

std::string subsetName(const std::vector<int>& pins) {
  std::string s;
  for (int p : pins) s += static_cast<char>('a' + p);
  return s;
}

}  // namespace

int main() {
  std::printf("=== Figure 2-1: VTC family and threshold table for NAND3 ===\n");
  const auto rep = vtc::chooseThresholds(benchutil::nand3Spec());

  std::printf("\n(c) switching thresholds per VTC (inputs a=top of stack, "
              "c=closest to ground):\n");
  std::printf("  %-10s %8s %8s %8s\n", "switching", "V_il", "V_ih", "V_m");
  for (const auto& c : rep.curves) {
    std::printf("  %-10s %8.3f %8.3f %8.3f\n",
                subsetName(c.switchingInputs).c_str(), c.points.vil,
                c.points.vih, c.points.vm);
  }
  std::printf("\nSection 2 choice: V_il = %.3f V (from subset %s), V_ih = %.3f"
              " V (from subset %s)\n",
              rep.chosen.vil,
              subsetName(rep.curves[rep.vilCurveIndex].switchingInputs).c_str(),
              rep.chosen.vih,
              subsetName(rep.curves[rep.vihCurveIndex].switchingInputs).c_str());
  std::printf("Invariant: V_il < V_m < V_ih for the V_m of every curve -> "
              "delay always positive.\n");

  // (b) the curves themselves, decimated for terminal display.
  std::printf("\n(b) VTC family, Vout [V] sampled every 0.5 V of Vin:\n");
  std::printf("  %6s", "Vin");
  for (const auto& c : rep.curves) {
    std::printf(" %8s", subsetName(c.switchingInputs).c_str());
  }
  std::printf("\n");
  for (double vin = 0.0; vin <= 5.001; vin += 0.5) {
    std::printf("  %6.2f", vin);
    for (const auto& c : rep.curves) std::printf(" %8.3f", c.curve.value(vin));
    std::printf("\n");
  }
  return 0;
}
