// Corner-sweep fleet driver: characterize the demo cell at every corner of
// a PVT corner set, one supervised worker process per corner, and assemble
// the results into a multi-corner model bundle.
//
//   $ ./characterize_corners --quick --out corners.proxbundle
//   $ ./characterize_corners --quick --corners my.corners --shards 4
//   $ ./characterize_corners --quick --resume        # replay every shard's
//                                                    # journal byte-identically
//
// Supervision (see DESIGN.md section 12): each worker journals through the
// checkpoint layer; a worker that crashes, hangs (heartbeat silence), blows
// its deadline, exits nonzero, or writes an invalid artifact is retried
// with exponential backoff and --resume, and lands in quarantine after
// --max-retries failures.  Quarantined corners are recorded -- with exit
// code and last diagnostic -- in the fleet report JSON and as explicit
// holes in the bundle manifest, which sta_path / netlist_sim then serve
// under an explicit degrade-or-reject policy.
//
// --inject drives the failure ladder deterministically for tests/CI:
//   --inject=crash@1      shard 1's first attempt dies by SIGKILL mid-sweep
//   --inject=crash@1*2    ...its first two attempts
//   --inject=hang@0       shard 0's first attempt stops producing output
//   --inject=corrupt@2    shard 2's first attempt corrupts its artifact
//
// Exit codes: 0 all corners characterized; 1 some corners quarantined (the
// bundle and report are still written); 2 usage; 6 cancelled (SIGINT /
// SIGTERM / --timeout).

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cells/corner.hpp"
#include "characterize/checkpoint.hpp"
#include "characterize/serialize.hpp"
#include "fleet/bundle.hpp"
#include "fleet/orchestrator.hpp"
#include "obs/report.hpp"
#include "par/pool.hpp"
#include "support/cancel.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"
#include "support/journal.hpp"

using namespace prox;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--corners FILE] [--out BUNDLE] [--workdir DIR]\n"
      "          [--shards N] [--max-retries N] [--retry-backoff SECS]\n"
      "          [--deadline SECS] [--heartbeat-timeout SECS]\n"
      "          [--resume] [--quick] [--threads N] [--fsync-every N]\n"
      "          [--progress SECS] [--timeout SECS] [--report FILE]\n"
      "          [--inject SPEC[,SPEC...]] [--stats FILE] [--quiet]\n"
      "  SPEC: (crash|hang|corrupt)@SHARD[*COUNT]\n",
      argv0);
  return 2;
}

const char* flagValue(const char* flag, char** argv, int argc, int* i) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, n) != 0) return nullptr;
  if (argv[*i][n] == '=') return argv[*i] + n + 1;
  if (argv[*i][n] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parseHex64(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

/// Worker-facing corner encoding: exact double bit patterns, so the worker
/// fingerprints precisely the technology the supervisor intended.
std::string encodeCorner(const cells::Corner& c) {
  return c.name + ':' + hex64(support::doubleToBits(c.vddScale)) + ':' +
         hex64(support::doubleToBits(c.vtShift)) + ':' +
         hex64(support::doubleToBits(c.kpScale)) + ':' +
         hex64(support::doubleToBits(c.gammaScale));
}

bool decodeCorner(const std::string& s, cells::Corner* out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t colon = s.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
  std::uint64_t vdd, vt, kp, gamma;
  if (parts.size() != 5 || parts[0].empty() || !parseHex64(parts[1], &vdd) ||
      !parseHex64(parts[2], &vt) || !parseHex64(parts[3], &kp) ||
      !parseHex64(parts[4], &gamma)) {
    return false;
  }
  out->name = parts[0];
  out->vddScale = support::bitsFromDouble(vdd);
  out->vtShift = support::bitsFromDouble(vt);
  out->kpScale = support::bitsFromDouble(kp);
  out->gammaScale = support::bitsFromDouble(gamma);
  return true;
}

/// The demo cell at @p corner: the same NAND3 characterize_cell ships, with
/// the corner folded into its technology.
cells::CellSpec cellAtCorner(const cells::Corner& corner) {
  cells::CellSpec spec;
  spec.type = cells::GateType::Nand;
  spec.fanin = 3;
  spec.wn = 6e-6;
  spec.wp = 8e-6;
  spec.loadCap = 100e-15;
  spec.tech = cells::applyCorner(cells::Technology::generic5v(), corner);
  return spec;
}

characterize::CharacterizationConfig sweepConfig(bool quick, int threads,
                                                 double progressSecs) {
  characterize::CharacterizationConfig cfg;
  cfg.tauGrid = {50e-12,  100e-12, 200e-12,  400e-12, 700e-12,
                 1100e-12, 1600e-12, 2200e-12};
  cfg.dualTauIndices = {0, 2, 4, 6, 7};
  if (quick) {
    cfg.tauGrid = {50e-12, 200e-12, 700e-12, 2200e-12};
    cfg.dualTauIndices = {0, 1, 2, 3};
    cfg.vGrid = {0.1, 0.3, 1.0, 3.0, 8.0};
    cfg.wGrid = {-2.0, -1.0, -0.5, 0.0, 0.3, 0.6, 1.0};
    cfg.vGridTransition = {0.1, 0.3, 1.0, 3.0, 12.0};
    cfg.wGridTransition = {-2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 6.0};
    cfg.vtcStep = 0.02;
  }
  cfg.threads = threads;
  cfg.progressIntervalSeconds = progressSecs;
  return cfg;
}

std::string artifactPath(const std::string& workdir,
                         const std::string& corner) {
  return workdir + "/corner-" + corner + ".prox";
}

std::string journalPath(const std::string& workdir,
                        const std::string& corner) {
  return workdir + "/shard-" + corner + ".ckpt";
}

bool fileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Loads + CRC-checks the artifact; used both for --resume skip detection
/// and post-exit validation of every finished shard.
bool artifactValid(const std::string& path, std::string* reason) {
  try {
    (void)characterize::loadGateModelFile(path);
    return true;
  } catch (const std::exception& e) {
    if (reason != nullptr) *reason = e.what();
    return false;
  }
}

// --- worker mode ------------------------------------------------------------

/// One shard: characterize one corner with a journal, write the artifact
/// atomically.  Runs in its own process under the orchestrator (but is a
/// plain exit-coded program, so it can also be run by hand for debugging).
int runWorker(const cells::Corner& corner, const std::string& workdir,
              bool quick, int threads, int fsyncEveryN, bool resume,
              double progressSecs, double timeoutSecs, long long crashAt,
              bool faultHang, bool faultCorrupt) {
  support::CancelToken cancelToken;
  if (timeoutSecs > 0.0) cancelToken.setTimeout(timeoutSecs);
  support::SignalCancelScope signalScope(&cancelToken);
  support::CancelScope mainScope(&cancelToken);

  const cells::CellSpec spec = cellAtCorner(corner);
  characterize::CharacterizationConfig cfg =
      sweepConfig(quick, threads, progressSecs);
  cfg.cancel = &cancelToken;

  support::Journal::Options journalOptions;
  if (fsyncEveryN >= 1) journalOptions.fsyncEveryN = fsyncEveryN;
  const std::string fingerprint = characterize::configFingerprint(spec, cfg);
  characterize::CheckpointSession checkpoint(journalPath(workdir, corner.name),
                                             fingerprint, resume,
                                             journalOptions);
  cfg.checkpoint = &checkpoint;
  if (resume && checkpoint.loadedRecords() > 0) {
    std::printf("[worker %s] resuming: %zu journaled results\n",
                corner.name.c_str(), checkpoint.loadedRecords());
  }

  if (crashAt >= 0) {
    support::FaultPlan::arm({.site = "par.task",
                             .kind = support::FaultKind::ProcessCrash,
                             .taskIndex = crashAt});
  } else if (faultHang) {
    support::FaultPlan::arm({.site = "fleet.worker.hang",
                             .kind = support::FaultKind::WorkerHang});
  } else if (faultCorrupt) {
    support::FaultPlan::arm({.site = "fleet.worker.artifact",
                             .kind = support::FaultKind::CorruptArtifact});
  }

  if (PROX_FAULT_POINT("fleet.worker.hang", WorkerHang)) {
    // Injected hang: alive but silent and unresponsive to cooperative
    // cancellation, so the supervisor's heartbeat -> SIGTERM -> SIGKILL
    // ladder is what ends this process.
    while (true) ::usleep(100 * 1000);
  }

  std::printf("[worker %s] characterizing (vdd x%g, vt %+g V, kp x%g, "
              "gamma x%g)\n",
              corner.name.c_str(), corner.vddScale, corner.vtShift,
              corner.kpScale, corner.gammaScale);

  characterize::CharacterizedGate gate;
  try {
    gate = characterize::characterizeGate(spec, cfg);
  } catch (const support::DiagnosticError& e) {
    checkpoint.flush();
    std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
    const support::StatusCode code = e.code();
    if (code == support::StatusCode::Cancelled ||
        code == support::StatusCode::DeadlineExceeded) {
      return 6;
    }
    if (code == support::StatusCode::ResourceExhausted) return 7;
    return 1;
  }
  checkpoint.flush();

  const std::string outPath = artifactPath(workdir, corner.name);
  characterize::saveGateModel(gate, outPath);

  if (PROX_FAULT_POINT("fleet.worker.artifact", CorruptArtifact)) {
    // Injected artifact damage *after* the atomic commit: the classic
    // "exit 0 but the output is garbage" failure the validate step exists
    // to catch.
    std::FILE* f = std::fopen(outPath.c_str(), "r+b");
    if (f != nullptr) {
      std::fseek(f, -16, SEEK_END);
      std::fputc('X', f);
      std::fclose(f);
    }
    std::printf("[worker %s] fault injection: corrupted %s\n",
                corner.name.c_str(), outPath.c_str());
  }

  std::printf("[worker %s] wrote %s (%zu replayed)\n", corner.name.c_str(),
              outPath.c_str(), checkpoint.replayCount());
  return 0;
}

// --- supervisor mode --------------------------------------------------------

struct InjectSpec {
  std::string kind;  // crash | hang | corrupt
  std::size_t shard = 0;
  int count = 1;
};

bool parseInject(const std::string& text, std::vector<InjectSpec>* out) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string spec = text.substr(start, comma - start);
    start = comma + 1;
    const std::size_t at = spec.find('@');
    if (at == std::string::npos) return false;
    InjectSpec is;
    is.kind = spec.substr(0, at);
    if (is.kind != "crash" && is.kind != "hang" && is.kind != "corrupt") {
      return false;
    }
    std::string rest = spec.substr(at + 1);
    const std::size_t star = rest.find('*');
    if (star != std::string::npos) {
      is.count = std::atoi(rest.c_str() + star + 1);
      if (is.count < 1) return false;
      rest.resize(star);
    }
    if (rest.empty()) return false;
    for (char c : rest) {
      if (c < '0' || c > '9') return false;
    }
    is.shard = static_cast<std::size_t>(std::atoll(rest.c_str()));
    out->push_back(std::move(is));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cornersPath;
  std::string outPath = "corners.proxbundle";
  std::string workdir;
  std::string reportPath;
  std::string statsPath;
  std::string workerCorner;
  std::string injectText;
  int shards = 2;
  int maxRetries = 2;
  int threads = 1;
  int fsyncEveryN = 0;
  double retryBackoff = 0.25;
  double deadlineSecs = 0.0;
  double heartbeatSecs = 0.0;
  double progressSecs = 0.0;
  double timeoutSecs = 0.0;
  long long crashAt = -1;
  bool resume = false;
  bool quick = false;
  bool quiet = false;
  bool faultHang = false;
  bool faultCorrupt = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = flagValue("--corners", argv, argc, &i)) != nullptr) {
      cornersPath = v;
    } else if ((v = flagValue("--out", argv, argc, &i)) != nullptr) {
      outPath = v;
    } else if ((v = flagValue("--workdir", argv, argc, &i)) != nullptr) {
      workdir = v;
    } else if ((v = flagValue("--report", argv, argc, &i)) != nullptr) {
      reportPath = v;
    } else if ((v = flagValue("--stats", argv, argc, &i)) != nullptr) {
      statsPath = v;
    } else if ((v = flagValue("--shards", argv, argc, &i)) != nullptr) {
      shards = std::atoi(v);
      if (shards < 1) return usage(argv[0]);
    } else if ((v = flagValue("--max-retries", argv, argc, &i)) != nullptr) {
      maxRetries = std::atoi(v);
      if (maxRetries < 0) return usage(argv[0]);
    } else if ((v = flagValue("--retry-backoff", argv, argc, &i)) != nullptr) {
      retryBackoff = std::atof(v);
      if (retryBackoff < 0.0) return usage(argv[0]);
    } else if ((v = flagValue("--deadline", argv, argc, &i)) != nullptr) {
      deadlineSecs = std::atof(v);
    } else if ((v = flagValue("--heartbeat-timeout", argv, argc, &i)) !=
               nullptr) {
      heartbeatSecs = std::atof(v);
    } else if ((v = flagValue("--threads", argv, argc, &i)) != nullptr) {
      threads = std::atoi(v);
      if (threads < 0) return usage(argv[0]);
    } else if ((v = flagValue("--fsync-every", argv, argc, &i)) != nullptr) {
      fsyncEveryN = std::atoi(v);
      if (fsyncEveryN < 1) return usage(argv[0]);
    } else if ((v = flagValue("--progress", argv, argc, &i)) != nullptr) {
      progressSecs = std::atof(v);
    } else if ((v = flagValue("--timeout", argv, argc, &i)) != nullptr) {
      timeoutSecs = std::atof(v);
    } else if ((v = flagValue("--inject", argv, argc, &i)) != nullptr) {
      injectText = v;
    } else if ((v = flagValue("--worker-corner", argv, argc, &i)) != nullptr) {
      workerCorner = v;
    } else if ((v = flagValue("--crash-at", argv, argc, &i)) != nullptr) {
      crashAt = std::atoll(v);
    } else if (std::strcmp(argv[i], "--fault-hang") == 0) {
      faultHang = true;
    } else if (std::strcmp(argv[i], "--fault-corrupt") == 0) {
      faultCorrupt = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (workdir.empty()) workdir = outPath + ".work";
  if (reportPath.empty()) reportPath = outPath + ".fleet.json";

  // Worker mode: this process IS one shard.
  if (!workerCorner.empty()) {
    cells::Corner corner;
    if (!decodeCorner(workerCorner, &corner)) {
      std::fprintf(stderr, "%s: bad --worker-corner encoding\n", argv[0]);
      return 2;
    }
    try {
      return runWorker(corner, workdir, quick, threads, fsyncEveryN, resume,
                       progressSecs, timeoutSecs, crashAt, faultHang,
                       faultCorrupt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 1;
    }
  }

  // Supervisor mode.
  std::vector<InjectSpec> injects;
  if (!injectText.empty() && !parseInject(injectText, &injects)) {
    std::fprintf(stderr, "%s: bad --inject spec \"%s\"\n", argv[0],
                 injectText.c_str());
    return 2;
  }

  support::CancelToken cancelToken;
  if (timeoutSecs > 0.0) cancelToken.setTimeout(timeoutSecs);
  support::SignalCancelScope signalScope(&cancelToken);

  try {
    const std::vector<cells::Corner> corners =
        cornersPath.empty() ? cells::defaultCorners()
                            : cells::loadCornersFile(cornersPath);

    if (::mkdir(workdir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "%s: cannot create workdir %s\n", argv[0],
                   workdir.c_str());
      return 1;
    }

    // Fleet-level resume: a corner whose artifact already loads cleanly is
    // done (skipped entirely); one with a journal resumes from it.
    std::vector<bool> alreadyDone(corners.size(), false);
    std::vector<fleet::ShardSpec> specs;
    std::vector<std::size_t> shardCorner;  // spec index -> corner index
    for (std::size_t i = 0; i < corners.size(); ++i) {
      const cells::Corner& corner = corners[i];
      const std::string artifact = artifactPath(workdir, corner.name);
      if (resume && fileExists(artifact) && artifactValid(artifact, nullptr)) {
        alreadyDone[i] = true;
        continue;
      }
      fleet::ShardSpec spec;
      spec.name = corner.name;
      const bool hasJournal =
          resume && fileExists(journalPath(workdir, corner.name));
      spec.resumesFromJournal = hasJournal;
      const std::string self = argv[0];
      const std::size_t shardIndex = specs.size();
      spec.command = [=, &injects](int attempt) {
        std::vector<std::string> cmd{
            self, "--worker-corner=" + encodeCorner(corner),
            "--workdir=" + workdir, "--threads=" + std::to_string(threads)};
        if (quick) cmd.push_back("--quick");
        if (fsyncEveryN >= 1) {
          cmd.push_back("--fsync-every=" + std::to_string(fsyncEveryN));
        }
        if (progressSecs > 0.0) {
          cmd.push_back("--progress=" + std::to_string(progressSecs));
        }
        // Any attempt after the first -- and the first attempt over a prior
        // run's journal -- replays instead of restarting.
        if (attempt > 0 || hasJournal) cmd.push_back("--resume");
        for (const InjectSpec& is : injects) {
          if (is.shard != shardIndex || attempt >= is.count) continue;
          if (is.kind == "crash") cmd.push_back("--crash-at=2");
          else if (is.kind == "hang") cmd.push_back("--fault-hang");
          else cmd.push_back("--fault-corrupt");
        }
        return cmd;
      };
      spec.validateArtifact = [artifact](std::string* reason) {
        return artifactValid(artifact, reason);
      };
      specs.push_back(std::move(spec));
      shardCorner.push_back(i);
    }

    fleet::FleetOptions options;
    options.maxParallel = shards;
    options.maxRetries = maxRetries;
    options.backoffBaseSeconds = retryBackoff;
    options.shardDeadlineSeconds = deadlineSecs;
    options.heartbeatTimeoutSeconds = heartbeatSecs;
    options.cancel = &cancelToken;
    options.echoWorkerOutput = !quiet;

    if (!quiet) {
      std::printf("fleet: %zu corner%s (%zu already done), up to %d worker%s"
                  ", max %d retr%s\n",
                  corners.size(), corners.size() == 1 ? "" : "s",
                  static_cast<std::size_t>(
                      std::count(alreadyDone.begin(), alreadyDone.end(), true)),
                  shards, shards == 1 ? "" : "s", maxRetries,
                  maxRetries == 1 ? "y" : "ies");
    }

    fleet::FleetReport report = fleet::runFleet(specs, options);

    // Merge the skipped (already-done) corners into the report so --resume
    // runs document the whole fleet, not just the relaunched slice.
    std::vector<fleet::ShardResult> merged;
    std::size_t ri = 0;
    for (std::size_t i = 0; i < corners.size(); ++i) {
      if (alreadyDone[i]) {
        fleet::ShardResult s;
        s.name = corners[i].name;
        s.state = fleet::ShardState::Done;
        s.attempts = 0;
        s.lastExitCode = 0;
        s.resumedFromJournal = true;
        merged.push_back(std::move(s));
      } else {
        merged.push_back(std::move(report.shards[ri++]));
      }
    }
    report.shards = std::move(merged);

    support::writeFileAtomic(reportPath, [&](std::ostream& os) {
      report.writeJson(os);
    });

    // Bundle assembly: every corner appears in the manifest; only the
    // characterized ones carry sections.
    std::vector<fleet::BundleWriteEntry> entries;
    for (std::size_t i = 0; i < corners.size(); ++i) {
      fleet::BundleWriteEntry e;
      e.corner = corners[i];
      const fleet::ShardResult& s = report.shards[i];
      if (s.state == fleet::ShardState::Done) {
        e.status = fleet::BundleCornerStatus::Ok;
        e.proxPath = artifactPath(workdir, corners[i].name);
      } else if (s.state == fleet::ShardState::Quarantined) {
        e.status = fleet::BundleCornerStatus::Quarantined;
        e.reason = "attempts=" + std::to_string(s.attempts) +
                   (s.lastSignal != 0
                        ? ",signal=" + std::to_string(s.lastSignal)
                        : ",exit=" + std::to_string(s.lastExitCode));
      } else {
        e.status = fleet::BundleCornerStatus::Missing;
        e.reason = fleet::shardStateName(s.state);
      }
      entries.push_back(std::move(e));
    }
    fleet::writeBundle(outPath, entries);

    const std::size_t quarantined =
        report.countIn(fleet::ShardState::Quarantined);
    if (!quiet) {
      for (const fleet::ShardResult& s : report.shards) {
        std::printf("  %-12s %-11s attempts=%d%s%s\n", s.name.c_str(),
                    fleet::shardStateName(s.state), s.attempts,
                    s.state == fleet::ShardState::Quarantined
                        ? (" exit=" + std::to_string(s.lastExitCode) +
                           " signal=" + std::to_string(s.lastSignal))
                              .c_str()
                        : "",
                    s.lastDiagnostic.empty()
                        ? ""
                        : ("  [" + s.lastDiagnostic + "]").c_str());
      }
      std::printf("wrote %s (%zu ok, %zu quarantined), report %s\n",
                  outPath.c_str(), report.countIn(fleet::ShardState::Done),
                  quarantined, reportPath.c_str());
    }

    if (!statsPath.empty()) {
      support::writeFileAtomic(statsPath,
                               [](std::ostream& os) { obs::writeJson(os); });
    }
    return quarantined == 0 && report.allDone() ? 0 : 1;
  } catch (const support::DiagnosticError& e) {
    std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
    if (!statsPath.empty()) {
      try {
        support::writeFileAtomic(statsPath,
                                 [](std::ostream& os) { obs::writeJson(os); });
      } catch (const std::exception&) {
      }
    }
    const support::StatusCode code = e.code();
    if (code == support::StatusCode::Cancelled ||
        code == support::StatusCode::DeadlineExceeded) {
      return 6;
    }
    if (code == support::StatusCode::ResourceExhausted) return 7;
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
