// Quickstart: characterize a NAND2 and ask the proximity model for delays.
//
//   $ ./quickstart
//
// Walks through the full public-API flow:
//   1. describe the cell (technology, sizing, load),
//   2. characterize it (thresholds + macromodel tables; this runs the
//      built-in transistor-level simulator for a few seconds),
//   3. query delay and output transition time for single- and multi-input
//      switching scenarios,
//   4. cross-check one query against a full transistor-level simulation.

#include <cstdio>

#include "characterize/characterize.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

int main() {
  // 1. Describe the cell: a NAND2 in the generic 5 V process, 100 fF load.
  cells::CellSpec spec;
  spec.type = cells::GateType::Nand;
  spec.fanin = 2;
  spec.tech = cells::Technology::generic5v();
  spec.loadCap = 100e-15;

  // 2. Characterize: VTC family -> Section 2 thresholds; tau sweeps ->
  //    single-input tables; (tau, tau, separation) sweeps -> dual tables.
  std::printf("characterizing %s ...\n",
              cells::gateTypeName(spec.type, spec.fanin).c_str());
  const auto gate = characterize::characterizeGate(spec);
  std::printf("  thresholds: V_il = %.3f V, V_ih = %.3f V\n",
              gate.gate.thresholds.vil, gate.gate.thresholds.vih);

  // 3a. Single-input query: input 0 rising with a 300 ps ramp.
  const auto calc = gate.calculator();
  const InputEvent a{/*pin=*/0, Edge::Rising, /*tRef=*/0.0, /*tau=*/300e-12};
  const auto single = calc.compute({a});
  std::printf("\ninput a alone (tau 300 ps):\n"
              "  delay %.1f ps, output transition %.1f ps\n",
              single.delay * 1e12, single.transitionTime * 1e12);

  // 3b. Both inputs rising 50 ps apart: the series stack conducts late and
  //     the delay *grows* relative to the single-input case.
  const InputEvent b{/*pin=*/1, Edge::Rising, /*tRef=*/50e-12, /*tau=*/200e-12};
  const auto both = calc.compute({a, b});
  std::printf("inputs a and b rising 50 ps apart:\n"
              "  delay %.1f ps (dominant input: pin %d, %zu inputs folded)\n",
              both.delay * 1e12, both.dominantPin, both.processedPins.size());

  // 3c. Both inputs falling together: parallel PMOS paths make the output
  //     *faster* than either input alone.
  const InputEvent af{0, Edge::Falling, 0.0, 300e-12};
  const InputEvent bf{1, Edge::Falling, 0.0, 200e-12};
  const auto fall = calc.compute({af, bf});
  std::printf("inputs a and b falling together:\n"
              "  delay %.1f ps vs %.1f ps for the dominant input alone\n",
              fall.delay * 1e12,
              gate.singles->at(fall.dominantPin, Edge::Falling)
                      .delay(fall.dominantPin == 0 ? 300e-12 : 200e-12) *
                  1e12);

  // 4. Cross-check against the transistor-level simulator.
  model::GateSimulator sim(gate.gate);
  const auto full = sim.simulate({a, b}, 0);
  if (full.outputRefTime) {
    std::printf("\ncross-check (full simulation of a+b rising):\n"
                "  model output crossing %.1f ps, simulation %.1f ps "
                "(error %.2f%%)\n",
                both.outputRefTime * 1e12, *full.outputRefTime * 1e12,
                (both.outputRefTime - *full.outputRefTime) / *full.delay * 100.0);
  }
  return 0;
}
