// Deterministic synthetic-circuit generator CLI: emits a layered random
// BLIF netlist of INV/NAND/NOR cells fully determined by its parameters.
// The same flags always produce byte-identical output, at any thread count,
// on any platform -- the spec is the circuit (see sta/synth.hpp).
//
// Typical use, piped straight into the STA front end:
//   gen_circuit --seed=7 --depth=30 --width=64 | sta_path --blif=-
//
// Exit codes: 0 ok, 1 I/O error, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sta/synth.hpp"

using namespace prox;

namespace {

bool parseU32(const char* text, std::uint32_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || v > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parseU64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed=N] [--depth=N] [--width=N] [--inputs=N]\n"
      "       [--max-fanin=N] [--max-fanout=N] [--mix=NAND:NOR:INV]\n"
      "       [--model=NAME] [--out=FILE]\n"
      "Emits a deterministic synthetic BLIF circuit (depth x width layered\n"
      "INV/NAND/NOR gates) to stdout or FILE.  Equal flags always emit\n"
      "byte-identical BLIF.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sta::SynthSpec spec;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool ok = true;
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      ok = parseU64(arg + 7, &spec.seed);
    } else if (std::strncmp(arg, "--depth=", 8) == 0) {
      ok = parseU32(arg + 8, &spec.depth);
    } else if (std::strncmp(arg, "--width=", 8) == 0) {
      ok = parseU32(arg + 8, &spec.width);
    } else if (std::strncmp(arg, "--inputs=", 9) == 0) {
      ok = parseU32(arg + 9, &spec.primaryInputs);
    } else if (std::strncmp(arg, "--max-fanin=", 12) == 0) {
      ok = parseU32(arg + 12, &spec.maxFanin);
    } else if (std::strncmp(arg, "--max-fanout=", 13) == 0) {
      ok = parseU32(arg + 13, &spec.maxFanout);
    } else if (std::strncmp(arg, "--mix=", 6) == 0) {
      unsigned nand = 0, nor = 0, inv = 0;
      char tail = '\0';
      if (std::sscanf(arg + 6, "%u:%u:%u%c", &nand, &nor, &inv, &tail) != 3) {
        ok = false;
      } else {
        spec.nandWeight = nand;
        spec.norWeight = nor;
        spec.invWeight = inv;
      }
    } else if (std::strncmp(arg, "--model=", 8) == 0) {
      spec.modelName = arg + 8;
      ok = !spec.modelName.empty();
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      outPath = arg + 6;
      ok = !outPath.empty();
    } else {
      return usage(argv[0]);
    }
    if (!ok) {
      std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], arg);
      return 2;
    }
  }

  try {
    sta::validateSynthSpec(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  if (outPath.empty()) {
    sta::generateBlif(spec, std::cout);
    std::cout.flush();
    return std::cout ? 0 : 1;
  }
  std::ofstream os(outPath);
  if (!os) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv[0], outPath.c_str());
    return 1;
  }
  sta::generateBlif(spec, os);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "%s: write failed: %s\n", argv[0], outPath.c_str());
    return 1;
  }
  return 0;
}
