// Deck-driven example: the paper's original workflow was HSPICE decks with
// piecewise-linear inputs.  This example runs the same kind of deck through
// the built-in simulator: the Figure 1-1 NAND3 written as a SPICE netlist,
// with falling ramps on inputs a and b and c tied to Vdd, and measures the
// proximity effect directly off the waveforms.

#include <cstdio>
#include <string>

#include "spice/netlist.hpp"
#include "spice/tran.hpp"
#include "waveform/measure.hpp"

using namespace prox;

namespace {

// The Figure 1-1 NAND3 with a parameterized separation between a and b.
std::string nand3Deck(double sepPs) {
  const double aStart = 1000.0;            // ps
  const double bStart = aStart + sepPs;    // ps
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
* Figure 1-1: three-input NAND, c tied to Vdd
.model nm NMOS KP=60u VTO=0.8 LAMBDA=0.02 GAMMA=0.4 PHI=0.65
.model pm PMOS KP=25u VTO=-0.9 LAMBDA=0.04 GAMMA=0.45 PHI=0.65
Vdd vdd 0 5
* pulldown stack (a nearest the output)
M1 out a n1 0 nm W=6u L=0.8u
M2 n1  b n2 0 nm W=6u L=0.8u
M3 n2  c 0  0 nm W=6u L=0.8u
* parallel pullup bank
M4 out a vdd vdd pm W=8u L=0.8u
M5 out b vdd vdd pm W=8u L=0.8u
M6 out c vdd vdd pm W=8u L=0.8u
Cl out 0 100f
* junction parasitics on the stack's internal nodes
Cn1 n1 0 3f
Cn2 n2 0 3f
* stimulus: a falls slowly, b falls fast, c stays high
Va a 0 PWL(0 5 %.1fp 5 %.1fp 0)
Vb b 0 PWL(0 5 %.1fp 5 %.1fp 0)
Vc c 0 5
.end
)",
                aStart, aStart + 500.0, bStart, bStart + 100.0);
  return buf;
}

}  // namespace

int main() {
  std::printf("deck-driven proximity measurement (NAND3, a falls 500 ps, "
              "b falls 100 ps)\n\n");
  // Thresholds from the paper's Section 2 rule for this cell (precomputed by
  // bench_fig2_1; hard-coded here to keep the example self-contained).
  const wave::Thresholds th{1.720, 3.681};

  std::printf("%12s %16s %14s\n", "s_ab [ps]", "out crossing [ps]",
              "rise time [ps]");
  for (double sep : {-400.0, -200.0, 0.0, 200.0, 400.0}) {
    auto nl = spice::parseNetlist(nand3Deck(sep));
    spice::TranOptions opt;
    opt.tstop = 6e-9;
    const auto res = spice::transient(nl.circuit, opt);
    const auto out = res.node("out");
    const auto t = wave::outputRefTime(out, wave::Edge::Rising, th);
    const auto tt = wave::transitionTime(out, wave::Edge::Rising, th);
    std::printf("%12.0f %16.1f %14.1f\n", sep,
                t ? (*t - 1e-9) * 1e12 : -1.0, tt ? *tt * 1e12 : -1.0);
  }
  std::printf("\nClose/overlapping falling inputs open two parallel PMOS "
              "paths: the output\ncrossing moves earlier and the rise "
              "sharpens -- Figure 1-2(a,b) straight from\na SPICE deck.\n");
  return 0;
}
