// Deck-driven example: the paper's original workflow was HSPICE decks with
// piecewise-linear inputs.  This example runs the same kind of deck through
// the built-in simulator: the Figure 1-1 NAND3 written as a SPICE netlist,
// with falling ramps on inputs a and b and c tied to Vdd, and measures the
// proximity effect directly off the waveforms.
//
// With --stats the example additionally pushes a coarsely characterized
// NAND2 through a three-stage STA netlist so the run exercises every layer
// of the stack, then dumps the observability registry as JSON (to stdout,
// or to the file given as --stats=FILE): Newton iterations, transient step
// accounting, proximity-window statistics, characterization table points,
// and STA arc evaluations in one machine-readable report.
//
// With --strict the full-stack stage additionally treats every absorbed
// fault -- characterization points that had to be healed, STA arcs that fell
// back to a degraded delay model -- as a hard error: each event is printed
// to stderr and the process exits non-zero, with the exit code encoding the
// worst severity seen (3 = warning-level events promoted, 4 = error,
// 5 = fatal).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "characterize/characterize.hpp"
#include "fleet/bundle.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "spice/netlist.hpp"
#include "spice/tran.hpp"
#include "sta/timing_graph.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/durable_io.hpp"
#include "waveform/measure.hpp"

using namespace prox;

namespace {

// The Figure 1-1 NAND3 with a parameterized separation between a and b.
std::string nand3Deck(double sepPs) {
  const double aStart = 1000.0;            // ps
  const double bStart = aStart + sepPs;    // ps
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
* Figure 1-1: three-input NAND, c tied to Vdd
.model nm NMOS KP=60u VTO=0.8 LAMBDA=0.02 GAMMA=0.4 PHI=0.65
.model pm PMOS KP=25u VTO=-0.9 LAMBDA=0.04 GAMMA=0.45 PHI=0.65
Vdd vdd 0 5
* pulldown stack (a nearest the output)
M1 out a n1 0 nm W=6u L=0.8u
M2 n1  b n2 0 nm W=6u L=0.8u
M3 n2  c 0  0 nm W=6u L=0.8u
* parallel pullup bank
M4 out a vdd vdd pm W=8u L=0.8u
M5 out b vdd vdd pm W=8u L=0.8u
M6 out c vdd vdd pm W=8u L=0.8u
Cl out 0 100f
* junction parasitics on the stack's internal nodes
Cn1 n1 0 3f
Cn2 n2 0 3f
* stimulus: a falls slowly, b falls fast, c stays high
Va a 0 PWL(0 5 %.1fp 5 %.1fp 0)
Vb b 0 PWL(0 5 %.1fp 5 %.1fp 0)
Vc c 0 5
.end
)",
                aStart, aStart + 500.0, bStart, bStart + 100.0);
  return buf;
}

// A deliberately coarse characterization config: every structural stage of
// the flow runs (singles, dual tables, step correction) at a fraction of the
// production grid density, so the --stats pass stays quick.
characterize::CharacterizationConfig coarseConfig() {
  characterize::CharacterizationConfig c;
  c.tauGrid = {100e-12, 600e-12};
  c.dualTauIndices = {0, 1};
  c.vGrid = {0.3, 1.0, 3.0};
  c.wGrid = {-1.0, 0.0, 0.5, 1.0};
  c.vGridTransition = {0.3, 1.0, 3.0};
  c.wGridTransition = {-1.0, 0.0, 1.0, 3.0};
  c.vtcStep = 0.05;
  return c;
}

// Exit code for --strict: warning-level absorbed faults are promoted to a
// distinct non-zero code so scripts can tell "healed but completed" (3) from
// genuine errors (4) and fatal states (5).
int severityExitCode(support::Severity s) {
  switch (s) {
    case support::Severity::Info: return 0;
    case support::Severity::Warning: return 3;
    case support::Severity::Error: return 4;
    case support::Severity::Fatal: return 5;
  }
  return 4;
}

// Exercises characterization, the proximity model and the STA so the stats
// report covers the full stack, not just the raw deck simulation.  In strict
// mode, any healed characterization point or degraded STA arc is reported on
// stderr and reflected in the returned exit code.
int runFullStackStage(bool strict, int threads, support::CancelToken* cancel,
                      const std::string& bundlePath,
                      const std::string& cornerName,
                      fleet::MissingCornerPolicy cornerPolicy) {
  // CharacterizedGate is move-only, so the stage works through a pointer:
  // either into the loaded bundle or at a locally characterized model.
  fleet::Bundle bundle;
  std::optional<characterize::CharacterizedGate> localCell;
  const characterize::CharacterizedGate* cellPtr = nullptr;
  if (!bundlePath.empty()) {
    // Serve the gate model from a fleet-assembled multi-corner bundle
    // instead of characterizing in-process; a corner the fleet quarantined
    // is handled by the explicit degrade-or-reject policy.
    bundle = fleet::loadBundleFile(bundlePath);
    support::DiagnosticLog degradeLog;
    const fleet::CornerSelection sel =
        fleet::selectCorner(bundle, cornerName, cornerPolicy, &degradeLog);
    std::printf("\nbundle %s: timing a three-stage path at corner '%s'%s\n",
                bundlePath.c_str(), sel.entry->corner.name.c_str(),
                sel.degraded ? " (nearest-corner fallback)" : "");
    for (const auto& d : degradeLog.entries()) {
      std::printf("  %s\n", d.toString().c_str());
    }
    cellPtr = &*sel.entry->gate;
  } else {
    std::printf("\n%s: characterizing a coarse NAND2 and timing a "
                "three-stage path ...\n", strict ? "--strict" : "--stats");
    cells::CellSpec spec;
    spec.type = cells::GateType::Nand;
    spec.fanin = 2;
    auto cfg = coarseConfig();
    cfg.threads = threads;
    cfg.cancel = cancel;
    localCell = characterize::characterizeGate(spec, cfg);
    cellPtr = &*localCell;
  }
  const characterize::CharacterizedGate& cell = *cellPtr;

  sta::Netlist nl;
  for (const char* pi : {"a", "b", "c", "s"}) nl.addPrimaryInput(pi);
  // Pad stages up to the served cell's fanin with stable side inputs, so a
  // bundle gate of any width drops into the same chain.
  std::vector<std::string> pads;
  for (int p = 0; p + 2 < cell.pinCount(); ++p) {
    pads.push_back("p" + std::to_string(p));
    nl.addPrimaryInput(pads.back());
  }
  auto stageInputs = [&](const std::string& first, const std::string& second) {
    std::vector<std::string> v{first};
    if (cell.pinCount() >= 2) v.push_back(second);
    for (const std::string& pad : pads) v.push_back(pad);
    return v;
  };
  nl.addInstance("u1", cell, stageInputs("a", "b"), "y1");
  nl.addInstance("u2", cell, stageInputs("y1", "s"), "y2");
  nl.addInstance("u3", cell, stageInputs("y2", "c"), "y3");

  sta::DelayCalcOptions staOpt;
  staOpt.threads = threads;
  staOpt.cancel = cancel;
  sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity, staOpt);
  ta.setInputArrival("a", {0.0, 250e-12, wave::Edge::Rising});
  ta.setInputArrival("b", {40e-12, 400e-12, wave::Edge::Rising});
  ta.setInputArrival("c", {600e-12, 300e-12, wave::Edge::Rising});
  ta.run();
  if (const auto out = ta.arrival("y3")) {
    std::printf("  proximity arrival at y3: %.1f ps\n", out->time * 1e12);
  }

  if (!strict) return 0;
  support::Severity worst = support::Severity::Info;
  if (!cell.diagnostics.empty()) {
    std::fprintf(stderr,
                 "--strict: characterization absorbed %zu fault(s):\n",
                 cell.diagnostics.size());
    for (const auto& d : cell.diagnostics.entries()) {
      std::fprintf(stderr, "  %s\n", d.toString().c_str());
    }
    worst = std::max(worst, cell.diagnostics.worstSeverity());
  }
  if (ta.degradedArcs() > 0) {
    std::fprintf(stderr,
                 "--strict: %zu STA arc(s) fell back to a degraded delay "
                 "model\n",
                 ta.degradedArcs());
    worst = std::max(worst, support::Severity::Warning);
  }
  return severityExitCode(worst);
}

}  // namespace

int main(int argc, char** argv) {
  bool stats = false;
  bool strict = false;
  std::string statsPath;
  std::string tracePath;
  std::string bundlePath;
  std::string cornerName = "tt";
  fleet::MissingCornerPolicy cornerPolicy = fleet::MissingCornerPolicy::Reject;
  int threads = 0;  // 0 = par::defaultThreadCount() (PROX_THREADS or cores)
  double timeoutSecs = 0.0;
  support::ResourceBudget budget;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
      stats = true;
      statsPath = argv[i] + 8;
      if (statsPath.empty()) {
        std::fprintf(stderr, "%s: --stats= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      tracePath = argv[i] + 8;
      if (tracePath.empty()) {
        std::fprintf(stderr, "%s: --trace= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strncmp(argv[i], "--bundle=", 9) == 0) {
      bundlePath = argv[i] + 9;
      if (bundlePath.empty()) {
        std::fprintf(stderr, "%s: --bundle= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--corner=", 9) == 0) {
      cornerName = argv[i] + 9;
      if (cornerName.empty()) {
        std::fprintf(stderr, "%s: --corner= requires a corner name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--corner-policy=", 16) == 0) {
      const std::string v = argv[i] + 16;
      if (v == "reject") {
        cornerPolicy = fleet::MissingCornerPolicy::Reject;
      } else if (v == "degrade") {
        cornerPolicy = fleet::MissingCornerPolicy::Degrade;
      } else {
        std::fprintf(stderr, "%s: --corner-policy expects reject|degrade\n",
                     argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      timeoutSecs = std::atof(argv[i] + 10);
      if (timeoutSecs <= 0.0) {
        std::fprintf(stderr, "%s: --timeout expects SECS > 0\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-memory=", 13) == 0) {
      const long mb = std::atol(argv[i] + 13);
      if (mb <= 0) {
        std::fprintf(stderr, "%s: --max-memory expects MB > 0\n", argv[0]);
        return 2;
      }
      budget.maxRssBytes = static_cast<std::size_t>(mb) << 20;
    } else if (std::strncmp(argv[i], "--max-nodes=", 12) == 0) {
      const long n = std::atol(argv[i] + 12);
      if (n <= 0) {
        std::fprintf(stderr, "%s: --max-nodes expects N > 0\n", argv[0]);
        return 2;
      }
      budget.maxNodes = static_cast<std::size_t>(n);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--stats[=FILE]] [--trace=FILE] [--strict] "
                   "[--threads N] [--timeout=SECS] [--max-memory=MB] "
                   "[--max-nodes=N]\n"
                   "       [--bundle=FILE] [--corner=NAME] "
                   "[--corner-policy=reject|degrade]\n",
                   argv[0]);
      return 2;
    }
    if (threads < 0) {
      std::fprintf(stderr, "%s: --threads expects N >= 0\n", argv[0]);
      return 2;
    }
  }

  // Ctrl-C / SIGTERM / the --timeout watchdog unwind through the engine's
  // typed cancellation path instead of killing the process mid-write.
  support::CancelToken cancelToken;
  if (timeoutSecs > 0.0) cancelToken.setTimeout(timeoutSecs);
  support::SignalCancelScope signalScope(&cancelToken);
  support::CancelScope mainScope(&cancelToken);

  // Resource governance: node/memory ceilings turn runaway decks into a
  // typed failure with exit code 7 (see support/budget.hpp).
  budget.cancel = &cancelToken;
  support::BudgetTracker budgetTracker(budget);
  support::BudgetScope budgetScope(&budgetTracker);

  std::unique_ptr<obs::trace::TraceSession> traceSession;
  if (!tracePath.empty()) {
    traceSession = std::make_unique<obs::trace::TraceSession>();
  }

  std::printf("deck-driven proximity measurement (NAND3, a falls 500 ps, "
              "b falls 100 ps)\n\n");
  // Thresholds from the paper's Section 2 rule for this cell (precomputed by
  // bench_fig2_1; hard-coded here to keep the example self-contained).
  const wave::Thresholds th{1.720, 3.681};

  int rc = 0;
  try {
    std::printf("%12s %16s %14s\n", "s_ab [ps]", "out crossing [ps]",
                "rise time [ps]");
    for (double sep : {-400.0, -200.0, 0.0, 200.0, 400.0}) {
      auto nl = spice::parseNetlist(nand3Deck(sep));
      spice::TranOptions opt;
      opt.tstop = 6e-9;
      const auto res = spice::transient(nl.circuit, opt);
      const auto out = res.node("out");
      const auto t = wave::outputRefTime(out, wave::Edge::Rising, th);
      const auto tt = wave::transitionTime(out, wave::Edge::Rising, th);
      std::printf("%12.0f %16.1f %14.1f\n", sep,
                  t ? (*t - 1e-9) * 1e12 : -1.0, tt ? *tt * 1e12 : -1.0);
    }
    std::printf("\nClose/overlapping falling inputs open two parallel PMOS "
                "paths: the output\ncrossing moves earlier and the rise "
                "sharpens -- Figure 1-2(a,b) straight from\na SPICE deck.\n");

    if (stats || strict || !bundlePath.empty()) {
      rc = runFullStackStage(strict, threads, &cancelToken, bundlePath,
                             cornerName, cornerPolicy);
    }
  } catch (const support::DiagnosticError& e) {
    std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
    // Best-effort stats on the unwind path so budget post-mortems (the
    // support.budget.* counters) are visible in the report.
    if (stats && !statsPath.empty()) {
      try {
        support::writeFileAtomic(statsPath,
                                 [](std::ostream& os) { obs::writeJson(os); });
        std::printf("stats report written to %s\n", statsPath.c_str());
      } catch (const std::exception&) {
      }
    }
    if (e.code() == support::StatusCode::Cancelled ||
        e.code() == support::StatusCode::DeadlineExceeded) {
      return 6;
    }
    if (e.code() == support::StatusCode::ResourceExhausted) return 7;
    if (e.code() == support::StatusCode::StructuralError) return 8;
    return 1;
  }
  if (stats) {
    if (statsPath.empty()) {
      std::printf("\n");
      obs::writeJson(std::cout);
    } else {
      try {
        // Atomic commit: a stats consumer polling the file never reads a
        // torn JSON document, and a crash mid-dump leaves any previous
        // report intact.
        support::writeFileAtomic(statsPath,
                                 [](std::ostream& os) { obs::writeJson(os); });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
      std::printf("\nstats report written to %s\n", statsPath.c_str());
    }
  }
  if (traceSession != nullptr) {
    try {
      support::writeFileAtomic(tracePath, [&](std::ostream& os) {
        traceSession->exportJson(os);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                tracePath.c_str());
  }
  return rc;
}
