// Library-characterization example: run the full offline flow for a cell
// and write the deployable ".prox" model package, then reload it and verify
// the round trip -- the workflow a cell-library team would script.
//
//   $ ./characterize_cell            # writes nand3.prox to the current dir
//   $ ./characterize_cell --threads 8   # parallel sweeps (same tables,
//                                       # bit for bit; see DESIGN.md)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "characterize/serialize.hpp"
#include "par/pool.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

int main(int argc, char** argv) {
  int threads = 0;  // 0 = par::defaultThreadCount() (PROX_THREADS or cores)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      return 2;
    }
    if (threads < 0) {
      std::fprintf(stderr, "%s: --threads expects N >= 0\n", argv[0]);
      return 2;
    }
  }

  cells::CellSpec spec;
  spec.type = cells::GateType::Nand;
  spec.fanin = 3;
  spec.wn = 6e-6;
  spec.wp = 8e-6;
  spec.loadCap = 100e-15;

  // Denser grids than the default: this is the offline step, so spend the
  // simulation budget here.
  characterize::CharacterizationConfig cfg;
  cfg.tauGrid = {50e-12,  100e-12, 200e-12,  400e-12, 700e-12,
                 1100e-12, 1600e-12, 2200e-12};
  cfg.dualTauIndices = {0, 2, 4, 6, 7};
  cfg.threads = threads;

  const int resolved = threads == 0 ? par::defaultThreadCount() : threads;
  std::printf("characterizing %s on %d thread%s (this runs a few thousand "
              "transistor-level transients)...\n",
              cells::gateTypeName(spec.type, spec.fanin).c_str(), resolved,
              resolved == 1 ? "" : "s");
  const auto gate = characterize::characterizeGate(spec, cfg);

  std::printf("  thresholds: V_il = %.3f V, V_ih = %.3f V\n",
              gate.gate.thresholds.vil, gate.gate.thresholds.vih);
  for (int pin = 0; pin < gate.pinCount(); ++pin) {
    const auto& m = gate.singles->at(pin, Edge::Rising);
    std::printf("  pin %d rising:  Delta(100ps) = %.1f ps, Delta(2000ps) = "
                "%.1f ps\n",
                pin, m.delay(100e-12) * 1e12, m.delay(2000e-12) * 1e12);
  }
  std::printf("  dual-input tables: %zu bytes total\n", gate.dual->totalBytes());
  std::printf("  simultaneous-step corrections (rising): ");
  for (double c : gate.correction.delayErrorRising) {
    std::printf("%+.1f ps ", c * 1e12);
  }
  std::printf("\n");

  const std::string path = "nand3.prox";
  characterize::saveGateModel(gate, path);
  std::printf("\nwrote %s\n", path.c_str());

  // Reload and verify a query agrees bit-for-bit.
  const auto loaded = characterize::loadGateModelFile(path);
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                              {1, Edge::Rising, 40e-12, 500e-12},
                              {2, Edge::Rising, -60e-12, 150e-12}};
  const auto r1 = gate.calculator().compute(evs);
  const auto r2 = loaded.calculator().compute(evs);
  std::printf("round-trip check: delay %.3f ps (in-memory) vs %.3f ps "
              "(reloaded) -> %s\n",
              r1.delay * 1e12, r2.delay * 1e12,
              r1.delay == r2.delay ? "identical" : "MISMATCH");
  return 0;
}
