// Library-characterization example: run the full offline flow for a cell
// and write the deployable ".prox" model package, then reload it and verify
// the round trip -- the workflow a cell-library team would script.
//
//   $ ./characterize_cell                       # writes nand3.prox
//   $ ./characterize_cell --threads 8           # parallel sweeps (same
//                                               # tables, bit for bit)
//   $ ./characterize_cell --checkpoint=run.ckpt # journal results as they land
//   $ ./characterize_cell --checkpoint=run.ckpt --resume
//                                               # replay journaled points,
//                                               # recompute only the rest
//   $ ./characterize_cell --timeout=30          # watchdog: exit 6 with a
//                                               # partial-but-valid checkpoint
//
// Ctrl-C (SIGINT) / SIGTERM flush the checkpoint journal and exit with the
// typed cancelled code (6); a later --resume continues where the run died.
// --crash-at=N kills the process (real SIGKILL, no flushing) when parallel
// task N starts -- the deterministic stand-in for an operator's `kill -9`
// used by the CI kill-resume job.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "characterize/checkpoint.hpp"
#include "characterize/serialize.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--out FILE] [--checkpoint FILE]\n"
               "          [--resume] [--timeout SECS] [--quick]\n"
               "          [--fsync-every N] [--crash-at INDEX]\n"
               "          [--stats FILE] [--trace FILE]\n"
               "          [--progress SECS] [--max-memory MB] "
               "[--max-nodes N]\n",
               argv0);
  return 2;
}

/// "--flag value" / "--flag=value" extraction; advances @p i for the
/// two-token form.  Returns nullptr when @p arg is not @p flag.
const char* flagValue(const char* flag, char** argv, int argc, int* i) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, n) != 0) return nullptr;
  if (argv[*i][n] == '=') return argv[*i] + n + 1;
  if (argv[*i][n] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;  // 0 = par::defaultThreadCount() (PROX_THREADS or cores)
  std::string outPath = "nand3.prox";
  std::string checkpointPath;
  std::string statsPath;
  std::string tracePath;
  bool resume = false;
  bool quick = false;
  double timeoutSecs = 0.0;
  double progressSecs = 0.0;
  long long crashAt = -1;
  support::Journal::Options journalOptions;
  support::ResourceBudget budget;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = flagValue("--threads", argv, argc, &i)) != nullptr) {
      threads = std::atoi(v);
      if (threads < 0) {
        std::fprintf(stderr, "%s: --threads expects N >= 0\n", argv[0]);
        return 2;
      }
    } else if ((v = flagValue("--out", argv, argc, &i)) != nullptr) {
      outPath = v;
    } else if ((v = flagValue("--checkpoint", argv, argc, &i)) != nullptr) {
      checkpointPath = v;
    } else if ((v = flagValue("--timeout", argv, argc, &i)) != nullptr) {
      timeoutSecs = std::atof(v);
      if (timeoutSecs <= 0.0) {
        std::fprintf(stderr, "%s: --timeout expects SECS > 0\n", argv[0]);
        return 2;
      }
    } else if ((v = flagValue("--crash-at", argv, argc, &i)) != nullptr) {
      crashAt = std::atoll(v);
    } else if ((v = flagValue("--fsync-every", argv, argc, &i)) != nullptr) {
      journalOptions.fsyncEveryN = std::atoi(v);
      if (journalOptions.fsyncEveryN < 1) {
        std::fprintf(stderr, "%s: --fsync-every expects N >= 1\n", argv[0]);
        return 2;
      }
    } else if ((v = flagValue("--stats", argv, argc, &i)) != nullptr) {
      statsPath = v;
    } else if ((v = flagValue("--trace", argv, argc, &i)) != nullptr) {
      tracePath = v;
    } else if ((v = flagValue("--progress", argv, argc, &i)) != nullptr) {
      progressSecs = std::atof(v);
      if (progressSecs <= 0.0) {
        std::fprintf(stderr, "%s: --progress expects SECS > 0\n", argv[0]);
        return 2;
      }
    } else if ((v = flagValue("--max-memory", argv, argc, &i)) != nullptr) {
      const long mb = std::atol(v);
      if (mb <= 0) {
        std::fprintf(stderr, "%s: --max-memory expects MB > 0\n", argv[0]);
        return 2;
      }
      budget.maxRssBytes = static_cast<std::size_t>(mb) << 20;
    } else if ((v = flagValue("--max-nodes", argv, argc, &i)) != nullptr) {
      const long n = std::atol(v);
      if (n <= 0) {
        std::fprintf(stderr, "%s: --max-nodes expects N > 0\n", argv[0]);
        return 2;
      }
      budget.maxNodes = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (resume && checkpointPath.empty()) {
    std::fprintf(stderr, "%s: --resume requires --checkpoint FILE\n", argv[0]);
    return 2;
  }

  cells::CellSpec spec;
  spec.type = cells::GateType::Nand;
  spec.fanin = 3;
  spec.wn = 6e-6;
  spec.wp = 8e-6;
  spec.loadCap = 100e-15;

  // Denser grids than the default: this is the offline step, so spend the
  // simulation budget here.  --quick shrinks the grids for CI exercises of
  // the crash/resume machinery, where sweep breadth is not the point.
  characterize::CharacterizationConfig cfg;
  cfg.tauGrid = {50e-12,  100e-12, 200e-12,  400e-12, 700e-12,
                 1100e-12, 1600e-12, 2200e-12};
  cfg.dualTauIndices = {0, 2, 4, 6, 7};
  if (quick) {
    cfg.tauGrid = {50e-12, 200e-12, 700e-12, 2200e-12};
    cfg.dualTauIndices = {0, 1, 2, 3};
    cfg.vGrid = {0.1, 0.3, 1.0, 3.0, 8.0};
    cfg.wGrid = {-2.0, -1.0, -0.5, 0.0, 0.3, 0.6, 1.0};
    cfg.vGridTransition = {0.1, 0.3, 1.0, 3.0, 12.0};
    cfg.wGridTransition = {-2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 6.0};
    cfg.vtcStep = 0.02;
  }
  cfg.threads = threads;
  cfg.progressIntervalSeconds = progressSecs;

  // Recording window across the whole characterization; the JSON is written
  // atomically after the flow finishes (a crash mid-run leaves no file).
  std::unique_ptr<obs::trace::TraceSession> traceSession;
  if (!tracePath.empty()) {
    traceSession = std::make_unique<obs::trace::TraceSession>();
  }

  support::CancelToken cancelToken;
  if (timeoutSecs > 0.0) cancelToken.setTimeout(timeoutSecs);
  support::SignalCancelScope signalScope(&cancelToken);
  // Installed on the main thread too, so serial (threads=1) engine loops
  // poll the same token parallel workers get from ParallelOptions::cancel.
  support::CancelScope mainScope(&cancelToken);
  cfg.cancel = &cancelToken;

  // Resource governance: deadline rides the cancel token; memory/table
  // ceilings trip typed ResourceExhausted failures mapped to exit code 7.
  budget.cancel = &cancelToken;
  support::BudgetTracker budgetTracker(budget);
  support::BudgetScope budgetScope(&budgetTracker);

  std::unique_ptr<characterize::CheckpointSession> checkpoint;
  if (!checkpointPath.empty()) {
    const std::string fingerprint = characterize::configFingerprint(spec, cfg);
    checkpoint = std::make_unique<characterize::CheckpointSession>(
        checkpointPath, fingerprint, resume, journalOptions);
    cfg.checkpoint = checkpoint.get();
    if (resume) {
      std::printf("resuming from %s: %zu journaled result%s\n",
                  checkpointPath.c_str(), checkpoint->loadedRecords(),
                  checkpoint->loadedRecords() == 1 ? "" : "s");
    }
  }

  if (crashAt >= 0) {
    support::FaultPlan::arm({.site = "par.task",
                             .kind = support::FaultKind::ProcessCrash,
                             .taskIndex = crashAt});
  }

  const int resolved = threads == 0 ? par::defaultThreadCount() : threads;
  std::printf("characterizing %s on %d thread%s (this runs a few thousand "
              "transistor-level transients)...\n",
              cells::gateTypeName(spec.type, spec.fanin).c_str(), resolved,
              resolved == 1 ? "" : "s");

  characterize::CharacterizedGate gate;
  try {
    gate = characterize::characterizeGate(spec, cfg);
  } catch (const support::DiagnosticError& e) {
    // Pin whatever the journal holds before reporting: the checkpoint must
    // be partial-but-valid no matter why the flow unwound.
    if (checkpoint) checkpoint->flush();
    std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
    // Best-effort stats on the unwind path: budget/cancellation post-mortems
    // (the support.budget.* counters especially) belong in the report.
    if (!statsPath.empty()) {
      try {
        support::writeFileAtomic(statsPath,
                                 [](std::ostream& os) { obs::writeJson(os); });
        std::printf("stats report written to %s\n", statsPath.c_str());
      } catch (const std::exception&) {
      }
    }
    const support::StatusCode code = e.code();
    if (code == support::StatusCode::Cancelled ||
        code == support::StatusCode::DeadlineExceeded) {
      if (checkpoint) {
        std::fprintf(stderr,
                     "checkpoint %s is valid; rerun with --resume to "
                     "continue\n",
                     checkpointPath.c_str());
      }
      return 6;
    }
    if (code == support::StatusCode::ResourceExhausted) return 7;
    return 1;
  }

  if (checkpoint != nullptr) {
    checkpoint->flush();
    std::printf("  checkpoint: %zu replayed, journal %s\n",
                checkpoint->replayCount(), checkpointPath.c_str());
  }

  std::printf("  thresholds: V_il = %.3f V, V_ih = %.3f V\n",
              gate.gate.thresholds.vil, gate.gate.thresholds.vih);
  for (int pin = 0; pin < gate.pinCount(); ++pin) {
    const auto& m = gate.singles->at(pin, Edge::Rising);
    std::printf("  pin %d rising:  Delta(100ps) = %.1f ps, Delta(2000ps) = "
                "%.1f ps\n",
                pin, m.delay(100e-12) * 1e12, m.delay(2000e-12) * 1e12);
  }
  std::printf("  dual-input tables: %zu bytes total\n", gate.dual->totalBytes());
  std::printf("  simultaneous-step corrections (rising): ");
  for (double c : gate.correction.delayErrorRising) {
    std::printf("%+.1f ps ", c * 1e12);
  }
  std::printf("\n");

  characterize::saveGateModel(gate, outPath);
  std::printf("\nwrote %s\n", outPath.c_str());

  // Reload and verify a query agrees bit-for-bit.
  const auto loaded = characterize::loadGateModelFile(outPath);
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                              {1, Edge::Rising, 40e-12, 500e-12},
                              {2, Edge::Rising, -60e-12, 150e-12}};
  const auto r1 = gate.calculator().compute(evs);
  const auto r2 = loaded.calculator().compute(evs);
  std::printf("round-trip check: delay %.3f ps (in-memory) vs %.3f ps "
              "(reloaded) -> %s\n",
              r1.delay * 1e12, r2.delay * 1e12,
              r1.delay == r2.delay ? "identical" : "MISMATCH");

  try {
    if (!statsPath.empty()) {
      // Atomic commit: readers (and the crash-at CI job) see the previous
      // report or the complete new one, never a torn file.
      support::writeFileAtomic(statsPath,
                               [](std::ostream& os) { obs::writeJson(os); });
      std::printf("stats report written to %s\n", statsPath.c_str());
    }
    if (traceSession != nullptr) {
      support::writeFileAtomic(tracePath, [&](std::ostream& os) {
        traceSession->exportJson(os);
      });
      std::printf("trace written to %s (open in ui.perfetto.dev or "
                  "chrome://tracing)\n",
                  tracePath.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return r1.delay == r2.delay ? 0 : 1;
}
