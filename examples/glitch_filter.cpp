// Inertial-delay example (Section 6): will an input pulse propagate through
// a NAND3, or is it filtered?
//
// A rising-then-falling pair on two different inputs of a NAND is the
// classic hazard scenario: if the enabling rise and the blocking fall are
// too close, the output only glitches partially and the event must be
// filtered by a timing simulator.  The paper shows the minimum separation
// for a *valid* output transition falls out of the proximity machinery; this
// example computes that separation and then checks a few pulses against it.

#include <cstdio>

#include "model/glitch.hpp"
#include "model/gate_sim.hpp"

using namespace prox;
using model::InputEvent;
using wave::Edge;

int main() {
  cells::CellSpec spec;
  spec.type = cells::GateType::Nand;
  spec.fanin = 3;
  std::printf("extracting thresholds for NAND3 ...\n");
  const model::Gate gate = model::makeGate(spec);
  model::GateSimulator sim(gate);

  const double tauRise = 150e-12;  // enabling transition on input b
  const double tauFall = 400e-12;  // blocking transition on input a

  // Characterize the minimum-voltage macromodel over a separation grid.
  std::vector<double> seps;
  for (double s = -400e-12; s <= 1000.1e-12; s += 100e-12) seps.push_back(s);
  const auto gm = model::GlitchModel::characterize(sim, /*fallPin=*/0, tauFall,
                                                   /*risePin=*/1, tauRise, seps);

  const double vil = gate.thresholds.vil;
  const auto sMin = gm.minimumValidSeparation(vil);
  if (!sMin) {
    std::printf("no valid-transition boundary in the characterized range\n");
    return 1;
  }
  std::printf("gate inertial delay for this transition pair: %.1f ps\n"
              "(separations below this leave the output glitch above V_il = "
              "%.2f V)\n\n",
              *sMin * 1e12, vil);

  // Check candidate pulses: rise on b at t=0, fall on a after `width`.
  std::printf("%12s %16s %12s %14s\n", "width [ps]", "model Vmin [V]",
              "propagates?", "sim Vmin [V]");
  model::GlitchAnalyzer analyzer(sim);
  for (double width : {100e-12, 250e-12, 400e-12, 600e-12, 900e-12}) {
    const double vModel = gm.extremeVoltage(width);
    const bool pass = width >= *sMin;
    // Cross-check with a fresh simulation.
    const auto g = analyzer.analyze({0, Edge::Falling, width, tauFall},
                                    {1, Edge::Rising, 0.0, tauRise});
    std::printf("%12.0f %16.3f %12s %14.3f%s\n", width * 1e12, vModel,
                pass ? "yes" : "FILTERED", g.extremeVoltage,
                g.completed == pass ? "" : "  (<- disagrees)");
  }
  std::printf("\nA timing simulator using this model suppresses output events "
              "whose enabling\nwindow is narrower than the inertial delay -- "
              "Section 6's central point.\n");
  return 0;
}
