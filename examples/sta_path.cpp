// STA example: proximity-aware vs classic timing on a small combinational
// block, judged against a flat transistor-level simulation of the whole
// netlist -- the downstream application the paper motivates.
//
// Circuit (all NAND2; s1/s2 are stable side inputs):
//
//   a ---+
//        |u1>--- y1 ---+
//   b ---+             |u2>--- y2 ---+
//   s1 ----------------+             |u3>--- out
//   c -------------------------------+
//
// Inputs arrive in a tight burst, so gates see multiple switching inputs in
// close temporal proximity; classic pin-to-pin STA mis-times the stages.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "characterize/characterize.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sta/flat_sim.hpp"
#include "support/cancel.hpp"
#include "support/durable_io.hpp"

using namespace prox;
using sta::Arrival;
using sta::DelayMode;
using wave::Edge;

int main(int argc, char** argv) {
  bool stats = false;
  std::string statsPath;
  std::string tracePath;
  double timeoutSecs = 0.0;
  int threads = 0;  // 0 = par::defaultThreadCount() (PROX_THREADS or cores)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
      stats = true;
      statsPath = argv[i] + 8;
      if (statsPath.empty()) {
        std::fprintf(stderr, "%s: --stats= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      tracePath = argv[i] + 8;
      if (tracePath.empty()) {
        std::fprintf(stderr, "%s: --trace= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      timeoutSecs = std::atof(argv[i] + 10);
      if (timeoutSecs <= 0.0) {
        std::fprintf(stderr, "%s: --timeout expects SECS > 0\n", argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--stats[=FILE]] [--trace=FILE] [--threads N] "
                   "[--timeout=SECS]\n",
                   argv[0]);
      return 2;
    }
    if (threads < 0) {
      std::fprintf(stderr, "%s: --threads expects N >= 0\n", argv[0]);
      return 2;
    }
  }

  // Ctrl-C / SIGTERM / the --timeout watchdog unwind through the typed
  // cancellation path (exit code 6) instead of dying mid-write.
  support::CancelToken cancelToken;
  if (timeoutSecs > 0.0) cancelToken.setTimeout(timeoutSecs);
  support::SignalCancelScope signalScope(&cancelToken);
  support::CancelScope mainScope(&cancelToken);

  // The recording window spans the whole run (characterization, both STA
  // passes, the flat reference sim); the JSON lands atomically at the end.
  std::unique_ptr<obs::trace::TraceSession> traceSession;
  if (!tracePath.empty()) {
    traceSession = std::make_unique<obs::trace::TraceSession>();
  }

  cells::CellSpec spec;
  spec.type = cells::GateType::Nand;
  spec.fanin = 2;
  std::printf("characterizing NAND2 cell ...\n");
  characterize::CharacterizationConfig cfg;
  cfg.threads = threads;
  cfg.cancel = &cancelToken;
  try {
    const auto cell = characterize::characterizeGate(spec, cfg);

    sta::Netlist nl;
    for (const char* pi : {"a", "b", "c", "s1"}) nl.addPrimaryInput(pi);
    nl.addInstance("u1", cell, {"a", "b"}, "y1");
    nl.addInstance("u2", cell, {"y1", "s1"}, "y2");
    nl.addInstance("u3", cell, {"y2", "c"}, "y3");

    const std::unordered_map<std::string, Arrival> arrivals{
        {"a", {0.0, 250e-12, Edge::Rising}},
        {"b", {40e-12, 400e-12, Edge::Rising}},
        {"c", {600e-12, 300e-12, Edge::Rising}},
    };

    auto analyze = [&](DelayMode mode) {
      sta::DelayCalcOptions opt;
      opt.threads = threads;
      opt.cancel = &cancelToken;
      sta::TimingAnalyzer ta(nl, mode, opt);
      for (const auto& [net, arr] : arrivals) ta.setInputArrival(net, arr);
      ta.run();
      return ta;
    };
    const auto classic = analyze(DelayMode::Classic);
    const auto proximity = analyze(DelayMode::Proximity);
    if (proximity.degradedArcs() + classic.degradedArcs() > 0) {
      std::printf("note: %zu arc(s) used a degraded delay model (missing or "
                  "unusable tables); see sta.delay_calc.degraded_arcs in "
                  "--stats\n",
                  proximity.degradedArcs() + classic.degradedArcs());
    }

    std::printf("running the flat transistor-level reference simulation ...\n");
    const auto flat = sta::simulateFlat(nl, arrivals);

    std::printf("\n%-5s | %13s | %16s | %16s\n", "net", "flat sim [ps]",
                "proximity [ps]", "classic [ps]");
    for (const char* net : {"y1", "y2", "y3"}) {
      const auto it = flat.arrivals.find(net);
      const auto p = proximity.arrival(net);
      const auto cl = classic.arrival(net);
      if (it == flat.arrivals.end() || !p || !cl) continue;
      const Arrival& f = it->second;
      std::printf("%-5s | %13.1f | %8.1f (%+5.1f) | %8.1f (%+5.1f)\n", net,
                  f.time * 1e12, p->time * 1e12, (p->time - f.time) * 1e12,
                  cl->time * 1e12, (cl->time - f.time) * 1e12);
    }
    std::printf("\n(parenthesized: error vs the flat simulation; the proximity "
                "mode stays closer\nat every stage, and the classic error "
                "compounds along the path)\n");
  } catch (const support::DiagnosticError& e) {
    std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
    if (e.code() == support::StatusCode::Cancelled ||
        e.code() == support::StatusCode::DeadlineExceeded) {
      return 6;
    }
    return 1;
  }

  if (stats) {
    if (statsPath.empty()) {
      std::printf("\n");
      obs::writeJson(std::cout);
    } else {
      try {
        // Atomic commit: never a torn JSON report under a reader or crash.
        support::writeFileAtomic(statsPath,
                                 [](std::ostream& os) { obs::writeJson(os); });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
      std::printf("\nstats report written to %s\n", statsPath.c_str());
    }
  }
  if (traceSession != nullptr) {
    try {
      support::writeFileAtomic(tracePath, [&](std::ostream& os) {
        traceSession->exportJson(os);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                tracePath.c_str());
  }
  return 0;
}
