// STA example: proximity-aware vs classic timing on a small combinational
// block, judged against a flat transistor-level simulation of the whole
// netlist -- the downstream application the paper motivates.
//
// Circuit (all NAND2; s1/s2 are stable side inputs):
//
//   a ---+
//        |u1>--- y1 ---+
//   b ---+             |u2>--- y2 ---+
//   s1 ----------------+             |u3>--- out
//   c -------------------------------+
//
// Inputs arrive in a tight burst, so gates see multiple switching inputs in
// close temporal proximity; classic pin-to-pin STA mis-times the stages.
//
// The tool doubles as the structural-validation demo: --graph builds a
// deliberately defective variant (cyclic, multidriven, dangling, selfloop)
// and --structural selects the degradation ladder.  Exit codes: 0 ok,
// 1 error, 2 usage, 6 cancelled/timeout, 7 resource budget exceeded,
// 8 structural reject.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "characterize/characterize.hpp"
#include "fleet/bundle.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sta/blif.hpp"
#include "sta/flat_sim.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/durable_io.hpp"

using namespace prox;
using sta::Arrival;
using sta::DelayMode;
using wave::Edge;

namespace {

int exitCodeFor(const support::DiagnosticError& e) {
  switch (e.code()) {
    case support::StatusCode::Cancelled:
    case support::StatusCode::DeadlineExceeded:
      return 6;
    case support::StatusCode::ResourceExhausted:
      return 7;
    case support::StatusCode::StructuralError:
      return 8;
    default:
      return 1;
  }
}

/// BLIF mode: reads a circuit (file or "-" = stdin), runs proximity and
/// classic STA with a uniform input stimulus, and prints the critical path.
void runBlifFlow(const std::string& path, const std::string& libKind,
                 int threads, support::CancelToken* cancel,
                 sta::StructuralPolicy structural) {
  sta::GateLibrary library = sta::analyticLibrary();
  if (libKind == "characterized") {
    // Transistor-level characterization per (type, fanin) the input demands.
    // Slow but real; the analytic default answers instantly at any scale.
    library.setFactory([threads, cancel](cells::GateType type, int fanin)
                           -> std::optional<characterize::CharacterizedGate> {
      const bool inverter = type == cells::GateType::Inverter;
      if (fanin < 1 || fanin > 8 || inverter != (fanin == 1)) {
        return std::nullopt;
      }
      cells::CellSpec spec;
      spec.type = type;
      spec.fanin = fanin;
      std::printf("characterizing %s ...\n",
                  cells::gateTypeName(type, fanin).c_str());
      characterize::CharacterizationConfig cfg;
      cfg.threads = threads;
      cfg.cancel = cancel;
      return characterize::characterizeGate(spec, cfg);
    });
  }

  sta::Netlist nl;
  const sta::BlifSummary summary = sta::readBlifFile(path, library, &nl);
  std::printf("model '%s': %zu gates, %zu inputs, %zu outputs",
              summary.modelName.c_str(), summary.gates, summary.inputs.size(),
              summary.outputs.size());
  if (summary.latches != 0) std::printf(", %zu latch cuts", summary.latches);
  if (summary.constants != 0) std::printf(", %zu constants", summary.constants);
  std::printf("\n");

  sta::DelayCalcOptions opt;
  opt.threads = threads;
  opt.cancel = cancel;
  opt.structural = structural;
  auto analyze = [&](DelayMode mode) {
    sta::TimingAnalyzer ta(nl, mode, opt);
    for (const std::string& net : summary.inputs) {
      ta.setInputArrival(net, Arrival{0.0, 200e-12, Edge::Rising});
    }
    ta.run();
    return ta;
  };
  const auto proximity = analyze(DelayMode::Proximity);
  const auto classic = analyze(DelayMode::Classic);

  const auto schedule = nl.levelize(structural);
  std::printf("%zu levels deep", schedule.levelCount());
  if (proximity.degradedArcs() != 0) {
    std::printf(", %zu degraded arc(s)", proximity.degradedArcs());
  }
  std::printf("\n");
  for (const auto& issue : proximity.structuralIssues()) {
    std::printf("structural %s: %s\n", sta::structuralKindName(issue.kind),
                issue.message.c_str());
  }

  // Latest-arriving declared output under the proximity model.
  sta::NetId worst;
  for (const std::string& net : summary.outputs) {
    const sta::NetId id = nl.findNet(net);
    const auto a = proximity.arrival(id);
    if (!a) continue;
    if (!worst.valid() || a->time > proximity.arrival(worst)->time) {
      worst = id;
    }
  }
  if (!worst.valid()) {
    std::printf("no declared output switches under this stimulus\n");
    return;
  }

  // Walk the worst path backwards: at each gate, follow the input whose
  // arrival is latest.  Bounded by the node count so a degraded (formerly
  // cyclic) graph cannot loop the walk.
  std::vector<sta::NetId> pathNets{worst};
  sta::NetId cur = worst;
  for (std::size_t hop = 0; hop < nl.nodeCount(); ++hop) {
    const sta::NodeId driver = nl.netDriver(cur);
    if (!driver.valid()) break;  // reached a primary input
    sta::NetId latest;
    for (const sta::NetId in : nl.nodeInputs(driver)) {
      const auto a = proximity.arrival(in);
      if (!a) continue;
      if (!latest.valid() || a->time > proximity.arrival(latest)->time) {
        latest = in;
      }
    }
    if (!latest.valid()) break;  // no switching input (loop-break estimate)
    pathNets.push_back(latest);
    cur = latest;
  }
  std::reverse(pathNets.begin(), pathNets.end());

  std::printf("critical path (%zu stages):", pathNets.size() - 1);
  const std::size_t kMaxPrinted = 12;
  for (std::size_t i = 0; i < pathNets.size(); ++i) {
    if (pathNets.size() > kMaxPrinted && i == kMaxPrinted / 2) {
      std::printf(" ... ->");
      i = pathNets.size() - kMaxPrinted / 2 - 1;
      continue;
    }
    std::printf(" %s%s", nl.netName(pathNets[i]).c_str(),
                i + 1 == pathNets.size() ? "" : " ->");
  }
  std::printf("\n");
  const auto pArr = proximity.arrival(worst);
  const auto cArr = classic.arrival(worst);
  std::printf("critical arrival on %s: %.1f ps proximity",
              nl.netName(worst).c_str(), pArr->time * 1e12);
  if (cArr) {
    std::printf(", %.1f ps classic (delta %+.1f ps)", cArr->time * 1e12,
                (pArr->time - cArr->time) * 1e12);
  }
  std::printf("\n");
}

/// Bundle mode: serve a model from a fleet-assembled multi-corner bundle
/// (see fleet/bundle.hpp) and time the three-stage demo chain with it.  The
/// interesting part is the hole handling: a corner the fleet quarantined is
/// served under an explicit policy -- reject (exit 8) or degrade to the
/// nearest characterized corner with a counted, logged substitution --
/// mirroring the --structural ladder.
void runBundleFlow(const std::string& bundlePath, const std::string& cornerName,
                   fleet::MissingCornerPolicy policy, int threads,
                   support::CancelToken* cancel) {
  const fleet::Bundle bundle = fleet::loadBundleFile(bundlePath);
  std::printf("bundle %s: %zu corner(s), %zu characterized\n",
              bundlePath.c_str(), bundle.entries.size(), bundle.okCount());
  for (const fleet::BundleEntry& e : bundle.entries) {
    std::printf("  %-12s %-11s%s%s\n", e.corner.name.c_str(),
                fleet::bundleCornerStatusName(e.status),
                e.reason.empty() ? "" : "  ", e.reason.c_str());
  }

  support::DiagnosticLog degradeLog;
  const fleet::CornerSelection sel =
      fleet::selectCorner(bundle, cornerName, policy, &degradeLog);
  if (sel.degraded) {
    std::printf("corner '%s' has no model; degraded to nearest characterized "
                "corner '%s' (see fleet.bundle.nearest_fallbacks in --stats)\n",
                sel.requested.c_str(), sel.entry->corner.name.c_str());
    for (const auto& d : degradeLog.entries()) {
      std::printf("  %s\n", d.toString().c_str());
    }
  } else {
    std::printf("serving corner '%s'\n", sel.entry->corner.name.c_str());
  }
  const characterize::CharacterizedGate& cell = *sel.entry->gate;
  const int fanin = cell.pinCount();

  // The familiar three-stage chain, sized to the bundle cell's fanin: extra
  // pins ride on stable pad inputs, exactly like s1 in the demo circuit.
  sta::Netlist nl;
  for (const char* pi : {"a", "b", "c", "s1"}) nl.addPrimaryInput(pi);
  std::vector<std::string> pads;
  for (int p = 0; p + 2 < fanin; ++p) {
    pads.push_back("p" + std::to_string(p));
    nl.addPrimaryInput(pads.back());
  }
  auto stageInputs = [&](const std::string& first, const std::string& second) {
    std::vector<std::string> v{first};
    if (fanin >= 2) v.push_back(second);
    for (const std::string& pad : pads) v.push_back(pad);
    return v;
  };
  nl.addInstance("u1", cell, stageInputs("a", "b"), "y1");
  nl.addInstance("u2", cell, stageInputs("y1", "s1"), "y2");
  nl.addInstance("u3", cell, stageInputs("y2", "c"), "y3");

  sta::DelayCalcOptions opt;
  opt.threads = threads;
  opt.cancel = cancel;
  auto analyze = [&](DelayMode mode) {
    sta::TimingAnalyzer ta(nl, mode, opt);
    ta.setInputArrival("a", {0.0, 250e-12, Edge::Rising});
    ta.setInputArrival("b", {40e-12, 400e-12, Edge::Rising});
    ta.setInputArrival("c", {600e-12, 300e-12, Edge::Rising});
    ta.run();
    return ta;
  };
  const auto proximity = analyze(DelayMode::Proximity);
  const auto classic = analyze(DelayMode::Classic);
  std::printf("\n%-5s | %16s | %16s\n", "net", "proximity [ps]", "classic [ps]");
  for (const char* net : {"y1", "y2", "y3"}) {
    const auto p = proximity.arrival(net);
    const auto cl = classic.arrival(net);
    if (!p || !cl) continue;
    std::printf("%-5s | %16.1f | %16.1f\n", net, p->time * 1e12,
                cl->time * 1e12);
  }
  if (proximity.degradedArcs() + classic.degradedArcs() > 0) {
    std::printf("note: %zu arc(s) used a degraded delay model\n",
                proximity.degradedArcs() + classic.degradedArcs());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool stats = false;
  std::string statsPath;
  std::string tracePath;
  std::string graph = "clean";
  double timeoutSecs = 0.0;
  int threads = 0;  // 0 = par::defaultThreadCount() (PROX_THREADS or cores)
  sta::StructuralPolicy structural = sta::StructuralPolicy::Reject;
  std::string blifPath;
  std::string libKind = "analytic";
  std::string bundlePath;
  std::string cornerName = "tt";
  fleet::MissingCornerPolicy cornerPolicy = fleet::MissingCornerPolicy::Reject;
  support::ResourceBudget budget;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
      stats = true;
      statsPath = argv[i] + 8;
      if (statsPath.empty()) {
        std::fprintf(stderr, "%s: --stats= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      tracePath = argv[i] + 8;
      if (tracePath.empty()) {
        std::fprintf(stderr, "%s: --trace= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      timeoutSecs = std::atof(argv[i] + 10);
      if (timeoutSecs <= 0.0) {
        std::fprintf(stderr, "%s: --timeout expects SECS > 0\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-memory=", 13) == 0) {
      const long mb = std::atol(argv[i] + 13);
      if (mb <= 0) {
        std::fprintf(stderr, "%s: --max-memory expects MB > 0\n", argv[0]);
        return 2;
      }
      budget.maxRssBytes = static_cast<std::size_t>(mb) << 20;
    } else if (std::strncmp(argv[i], "--max-nodes=", 12) == 0) {
      const long n = std::atol(argv[i] + 12);
      if (n <= 0) {
        std::fprintf(stderr, "%s: --max-nodes expects N > 0\n", argv[0]);
        return 2;
      }
      budget.maxNodes = static_cast<std::size_t>(n);
    } else if (std::strncmp(argv[i], "--graph=", 8) == 0) {
      graph = argv[i] + 8;
      if (graph != "clean" && graph != "cyclic" && graph != "multidriven" &&
          graph != "dangling" && graph != "selfloop") {
        std::fprintf(stderr,
                     "%s: --graph expects "
                     "clean|cyclic|multidriven|dangling|selfloop\n",
                     argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--blif=", 7) == 0) {
      blifPath = argv[i] + 7;
      if (blifPath.empty()) {
        std::fprintf(stderr, "%s: --blif= requires a file name or -\n",
                     argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--blif") == 0 && i + 1 < argc) {
      blifPath = argv[++i];
    } else if (std::strncmp(argv[i], "--bundle=", 9) == 0) {
      bundlePath = argv[i] + 9;
      if (bundlePath.empty()) {
        std::fprintf(stderr, "%s: --bundle= requires a file name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--corner=", 9) == 0) {
      cornerName = argv[i] + 9;
      if (cornerName.empty()) {
        std::fprintf(stderr, "%s: --corner= requires a corner name\n", argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--corner-policy=", 16) == 0) {
      const std::string v = argv[i] + 16;
      if (v == "reject") {
        cornerPolicy = fleet::MissingCornerPolicy::Reject;
      } else if (v == "degrade") {
        cornerPolicy = fleet::MissingCornerPolicy::Degrade;
      } else {
        std::fprintf(stderr, "%s: --corner-policy expects reject|degrade\n",
                     argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--lib=", 6) == 0) {
      libKind = argv[i] + 6;
      if (libKind != "analytic" && libKind != "characterized") {
        std::fprintf(stderr, "%s: --lib expects analytic|characterized\n",
                     argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--structural=", 13) == 0) {
      const std::string v = argv[i] + 13;
      if (v == "reject") {
        structural = sta::StructuralPolicy::Reject;
      } else if (v == "degrade") {
        structural = sta::StructuralPolicy::Degrade;
      } else {
        std::fprintf(stderr, "%s: --structural expects reject|degrade\n",
                     argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--stats[=FILE]] [--trace=FILE] [--threads N] "
                   "[--timeout=SECS] [--max-memory=MB] [--max-nodes=N]\n"
                   "       [--graph=clean|cyclic|multidriven|dangling|"
                   "selfloop] [--structural=reject|degrade]\n"
                   "       [--blif=FILE|-] [--lib=analytic|characterized]\n"
                   "       [--bundle=FILE] [--corner=NAME] "
                   "[--corner-policy=reject|degrade]\n",
                   argv[0]);
      return 2;
    }
    if (threads < 0) {
      std::fprintf(stderr, "%s: --threads expects N >= 0\n", argv[0]);
      return 2;
    }
  }

  // Ctrl-C / SIGTERM / the --timeout watchdog unwind through the typed
  // cancellation path (exit code 6) instead of dying mid-write.
  support::CancelToken cancelToken;
  if (timeoutSecs > 0.0) cancelToken.setTimeout(timeoutSecs);
  support::SignalCancelScope signalScope(&cancelToken);
  support::CancelScope mainScope(&cancelToken);

  // Resource governance: the deadline rides the cancel token; memory and
  // node ceilings are enforced wherever work is charged (exit code 7).
  budget.cancel = &cancelToken;
  support::BudgetTracker budgetTracker(budget);
  support::BudgetScope budgetScope(&budgetTracker);

  // The recording window spans the whole run (characterization, both STA
  // passes, the flat reference sim); the JSON lands atomically at the end.
  std::unique_ptr<obs::trace::TraceSession> traceSession;
  if (!tracePath.empty()) {
    traceSession = std::make_unique<obs::trace::TraceSession>();
  }

  int exitCode = 0;
  if (!bundlePath.empty()) {
    // Fleet-bundle mode: serve a characterized corner (or a policy-governed
    // substitute) from a multi-corner bundle and time the demo chain.
    try {
      runBundleFlow(bundlePath, cornerName, cornerPolicy, threads,
                    &cancelToken);
    } catch (const support::DiagnosticError& e) {
      std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
      exitCode = exitCodeFor(e);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      exitCode = 1;
    }
  } else if (!blifPath.empty()) {
    // Netlist-scale frontend: parse BLIF, run both STA modes, report the
    // critical path.  Shares the cancellation/budget/stats/trace machinery
    // with the demo path below.
    try {
      runBlifFlow(blifPath, libKind, threads, &cancelToken, structural);
    } catch (const support::DiagnosticError& e) {
      std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
      exitCode = exitCodeFor(e);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      exitCode = 1;
    }
  } else {
    cells::CellSpec spec;
    spec.type = cells::GateType::Nand;
    spec.fanin = 2;
    std::printf("characterizing NAND2 cell ...\n");
    characterize::CharacterizationConfig cfg;
    cfg.threads = threads;
    cfg.cancel = &cancelToken;
    try {
      const auto cell = characterize::characterizeGate(spec, cfg);

      sta::Netlist nl;
      for (const char* pi : {"a", "b", "c", "s1"}) nl.addPrimaryInput(pi);
      if (graph == "cyclic") {
        // u1 consumes u3's output: u1 -> u2 -> u3 -> u1.
        nl.addInstance("u1", cell, {"a", "y3"}, "y1");
        nl.addInstance("u2", cell, {"y1", "s1"}, "y2");
        nl.addInstance("u3", cell, {"y2", "c"}, "y3");
      } else if (graph == "selfloop") {
        nl.addInstance("u1", cell, {"a", "y1"}, "y1");
        nl.addInstance("u2", cell, {"y1", "s1"}, "y2");
        nl.addInstance("u3", cell, {"y2", "c"}, "y3");
      } else if (graph == "dangling") {
        nl.addInstance("u1", cell, {"a", "b"}, "y1");
        nl.addInstance("u2", cell, {"y1", "floating"}, "y2");
        nl.addInstance("u3", cell, {"y2", "c"}, "y3");
      } else if (graph == "multidriven") {
        nl.addInstance("u1", cell, {"a", "b"}, "y1");
        nl.addInstance("u2", cell, {"y1", "s1"}, "y2");
        // Lenient construction: the conflicting driver is a property of the
        // (untrusted) input, recorded for validation rather than thrown.
        nl.addInstanceLenient("u2b", cell, {"c", "s1"}, "y2");
        nl.addInstance("u3", cell, {"y2", "c"}, "y3");
      } else {
        nl.addInstance("u1", cell, {"a", "b"}, "y1");
        nl.addInstance("u2", cell, {"y1", "s1"}, "y2");
        nl.addInstance("u3", cell, {"y2", "c"}, "y3");
      }

      const std::unordered_map<std::string, Arrival> arrivals{
          {"a", {0.0, 250e-12, Edge::Rising}},
          {"b", {40e-12, 400e-12, Edge::Rising}},
          {"c", {600e-12, 300e-12, Edge::Rising}},
      };

      auto analyze = [&](DelayMode mode) {
        sta::DelayCalcOptions opt;
        opt.threads = threads;
        opt.cancel = &cancelToken;
        opt.structural = structural;
        sta::TimingAnalyzer ta(nl, mode, opt);
        for (const auto& [net, arr] : arrivals) {
          ta.setInputArrival(net, arr);
        }
        ta.run();
        return ta;
      };

      if (graph != "clean") {
        // Structural demo path: validate, then run under the selected policy.
        std::printf("validating deliberately defective graph '%s' ...\n",
                    graph.c_str());
        const auto proximity = analyze(DelayMode::Proximity);
        for (const auto& issue : proximity.structuralIssues()) {
          std::printf("structural %s: %s\n", sta::structuralKindName(issue.kind),
                      issue.message.c_str());
        }
        std::printf("%zu arc(s) degraded:", proximity.degradedArcs());
        for (const auto& name : proximity.degradedArcNames()) {
          std::printf(" %s", name.c_str());
        }
        std::printf("\n");
        for (const char* net : {"y1", "y2", "y3"}) {
          const auto p = proximity.arrival(net);
          if (p) std::printf("%-5s arrives at %.1f ps\n", net, p->time * 1e12);
        }
      } else {
        const auto classic = analyze(DelayMode::Classic);
        const auto proximity = analyze(DelayMode::Proximity);
        if (proximity.degradedArcs() + classic.degradedArcs() > 0) {
          std::printf(
              "note: %zu arc(s) used a degraded delay model (missing or "
              "unusable tables); see sta.delay_calc.degraded_arcs in "
              "--stats\n",
              proximity.degradedArcs() + classic.degradedArcs());
        }

        std::printf(
            "running the flat transistor-level reference simulation ...\n");
        const auto flat = sta::simulateFlat(nl, arrivals);

        std::printf("\n%-5s | %13s | %16s | %16s\n", "net", "flat sim [ps]",
                    "proximity [ps]", "classic [ps]");
        for (const char* net : {"y1", "y2", "y3"}) {
          const auto it = flat.arrivals.find(net);
          const auto p = proximity.arrival(net);
          const auto cl = classic.arrival(net);
          if (it == flat.arrivals.end() || !p || !cl) continue;
          const Arrival& f = it->second;
          std::printf("%-5s | %13.1f | %8.1f (%+5.1f) | %8.1f (%+5.1f)\n", net,
                      f.time * 1e12, p->time * 1e12, (p->time - f.time) * 1e12,
                      cl->time * 1e12, (cl->time - f.time) * 1e12);
        }
        std::printf(
            "\n(parenthesized: error vs the flat simulation; the proximity "
            "mode stays closer\nat every stage, and the classic error "
            "compounds along the path)\n");
      }
    } catch (const support::DiagnosticError& e) {
      std::fprintf(stderr, "%s\n", e.diagnostic().toString().c_str());
      // Fall through so --stats still lands: the budget/structural counters
      // are most interesting precisely when the run was cut short.
      exitCode = exitCodeFor(e);
    }
  }

  if (stats) {
    if (statsPath.empty()) {
      std::printf("\n");
      obs::writeJson(std::cout);
    } else {
      try {
        // Atomic commit: never a torn JSON report under a reader or crash.
        support::writeFileAtomic(statsPath,
                                 [](std::ostream& os) { obs::writeJson(os); });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
      std::printf("\nstats report written to %s\n", statsPath.c_str());
    }
  }
  if (traceSession != nullptr) {
    try {
      support::writeFileAtomic(tracePath, [&](std::ostream& os) {
        traceSession->exportJson(os);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                tracePath.c_str());
  }
  return exitCode;
}
