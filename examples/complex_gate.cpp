// Complex-gate example: apply the paper's threshold rule and observe
// proximity effects on an AOI21 built from a user-defined series-parallel
// pull network -- the generalization beyond NAND/NOR.

#include <cstdio>

#include "cells/complex_fixture.hpp"
#include "vtc/complex.hpp"
#include "waveform/pwl.hpp"

using namespace prox;

int main() {
  // Describe the gate by its pulldown conduction function:
  //   f = (a AND b) OR c   ->   out = !((a.b)+c)   (an AOI21)
  // The PMOS pullup is derived automatically as the structural dual.
  cells::ComplexCellSpec spec;
  spec.pulldown = cells::PullExpr::parallel(
      {cells::PullExpr::series(
           {cells::PullExpr::input(0), cells::PullExpr::input(1)}),
       cells::PullExpr::input(2)});
  std::printf("gate: out = !%s   (pullup: %s)\n",
              spec.pulldown.toString().c_str(),
              spec.pulldown.dual().toString().c_str());

  // Logic check straight from the expression.
  std::printf("truth table (a b c -> out): ");
  for (unsigned m = 0; m < 8; ++m) {
    std::vector<bool> in{bool(m & 1u), bool(m & 2u), bool(m & 4u)};
    std::printf("%d", spec.outputFor(in) ? 1 : 0);
  }
  std::printf("\n");

  // Section 2 thresholds over every sensitizable subset.
  std::printf("\nextracting VTC family...\n");
  const auto rep = vtc::chooseComplexThresholds(spec, 0.02);
  std::printf("  %zu VTCs; chosen V_il = %.3f V, V_ih = %.3f V\n",
              rep.curves.size(), rep.chosen.vil, rep.chosen.vih);

  // Proximity on the parallel pullup branch: a and b fall together vs apart.
  cells::ComplexCellFixture fix(spec);
  const double vdd = spec.tech.vdd;
  std::printf("\nfalling a+b with c=0 (parallel pullup paths):\n");
  for (double s : {0.0, 400e-12, 800e-12}) {
    fix.setLevels({true, true, false});
    fix.setInput(0, wave::fallingRamp(1e-9, 400e-12, vdd));
    fix.setInput(1, wave::fallingRamp(1e-9 + s, 150e-12, vdd));
    const auto out = fix.runOutput(6e-9);
    const auto t = out.lastCrossing(rep.chosen.vih, wave::Edge::Rising);
    std::printf("  separation %4.0f ps -> output crossing at %.1f ps\n",
                s * 1e12, t ? (*t - 1e-9) * 1e12 : -1.0);
  }
  std::printf("close transitions arrive earlier: the proximity effect on a "
              "complex gate.\n");
  return 0;
}
