// Unit tests for the parallel execution layer (src/par/): thread-pool
// lifecycle, parallelFor coverage and slot placement, exception capture and
// re-raise semantics, the nested-submit deadlock guard, and the TaskScope
// marker that keys fault plans by task index.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "par/parallel_for.hpp"
#include "par/pool.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/fault_injection.hpp"

namespace {

using namespace prox;
using par::ParallelOptions;
using par::ThreadPool;

// -- pool lifecycle ----------------------------------------------------------

TEST(ThreadPool, ConstructAndDestructCleanly) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
}

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool tiny(0);
  EXPECT_EQ(tiny.threadCount(), 1);
  ThreadPool huge(par::kMaxThreads + 100);
  EXPECT_EQ(huge.threadCount(), par::kMaxThreads);
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(2);
  pool.ensureWorkers(6);
  EXPECT_EQ(pool.threadCount(), 6);
  pool.ensureWorkers(3);
  EXPECT_EQ(pool.threadCount(), 6);
  pool.ensureWorkers(par::kMaxThreads + 5);
  EXPECT_EQ(pool.threadCount(), par::kMaxThreads);
}

TEST(ThreadPool, DestructorRunsEveryOutstandingTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool must not drop queued tasks
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, SubmittedTasksRunOnWorkerThreads) {
  std::atomic<bool> onWorker{false};
  std::atomic<bool> done{false};
  EXPECT_FALSE(ThreadPool::onWorkerThread());
  {
    ThreadPool pool(2);
    pool.submit([&] {
      onWorker.store(ThreadPool::onWorkerThread());
      done.store(true);
    });
    while (!done.load()) std::this_thread::yield();
  }
  EXPECT_TRUE(onWorker.load());
  EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ThreadPool, GlobalPoolGrowsOnDemand) {
  ThreadPool& a = ThreadPool::global(2);
  const int before = a.threadCount();
  ThreadPool& b = ThreadPool::global(before + 1);
  EXPECT_EQ(&a, &b);
  EXPECT_GE(b.threadCount(), before + 1);
}

// -- default thread count ----------------------------------------------------

TEST(DefaultThreadCount, OverrideWinsAndResets) {
  const int natural = par::defaultThreadCount();
  EXPECT_GE(natural, 1);
  par::setDefaultThreadCount(7);
  EXPECT_EQ(par::defaultThreadCount(), 7);
  par::setDefaultThreadCount(par::kMaxThreads + 50);
  EXPECT_EQ(par::defaultThreadCount(), par::kMaxThreads);
  par::setDefaultThreadCount(0);  // remove the override
  EXPECT_EQ(par::defaultThreadCount(), natural);
}

// -- parallelFor coverage ----------------------------------------------------

void checkCoversEveryIndexOnce(int threads, std::size_t n) {
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  par::parallelFor(
      n, [&](std::size_t i) { hits[i].fetch_add(1); },
      {.threads = threads});
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  for (int threads : {1, 4}) {
    bool invoked = false;
    par::parallelFor(
        0, [&](std::size_t) { invoked = true; }, {.threads = threads});
    EXPECT_FALSE(invoked);
  }
}

TEST(ParallelFor, SingleItemRunsInline) {
  std::size_t seen = 99;
  bool onWorker = true;
  par::parallelFor(
      1,
      [&](std::size_t i) {
        seen = i;
        onWorker = ThreadPool::onWorkerThread();
      },
      {.threads = 8});
  EXPECT_EQ(seen, 0u);
  EXPECT_FALSE(onWorker);  // n == 1 short-circuits to the calling thread
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  checkCoversEveryIndexOnce(1, 257);
  checkCoversEveryIndexOnce(2, 257);
  checkCoversEveryIndexOnce(8, 257);  // items >> threads
  checkCoversEveryIndexOnce(8, 3);    // threads > items
}

TEST(ParallelFor, ChunkedGrabsStillCoverEverything) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  par::parallelFor(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
      {.threads = 4, .chunk = 7});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SlotPlacementMatchesSerial) {
  const std::size_t n = 512;
  std::vector<double> serial(n), parallel(n);
  auto body = [](std::size_t i) { return std::sqrt(static_cast<double>(i)); };
  par::parallelFor(
      n, [&](std::size_t i) { serial[i] = body(i); }, {.threads = 1});
  par::parallelFor(
      n, [&](std::size_t i) { parallel[i] = body(i); }, {.threads = 8});
  EXPECT_EQ(serial, parallel);  // bit-identical, not just approximately
}

// -- exception propagation ---------------------------------------------------

TEST(ParallelFor, PreservesOriginalExceptionType) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        par::parallelFor(
            10,
            [](std::size_t i) {
              if (i == 5) throw std::invalid_argument("boom");
            },
            {.threads = threads}),
        std::invalid_argument);
  }
}

TEST(ParallelFor, LowestIndexFailureWins) {
  for (int threads : {1, 8}) {
    try {
      par::parallelFor(
          64,
          [](std::size_t i) {
            if (i % 2 == 1) throw std::runtime_error("task " +
                                                     std::to_string(i));
          },
          {.threads = threads});
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

TEST(ParallelForCollect, FailuresSortedWithDiagnostics) {
  auto failures = par::parallelForCollect(
      20,
      [](std::size_t i) {
        if (i == 13 || i == 4 || i == 17) {
          throw std::runtime_error("bad point");
        }
      },
      {.threads = 4});
  ASSERT_EQ(failures.size(), 3u);
  EXPECT_EQ(failures[0].index, 4u);
  EXPECT_EQ(failures[1].index, 13u);
  EXPECT_EQ(failures[2].index, 17u);
  EXPECT_NE(failures[0].diagnostic.message.find("bad point"),
            std::string::npos);
  EXPECT_NE(failures[0].diagnostic.message.find("(task 4)"),
            std::string::npos);
  EXPECT_TRUE(failures[0].exception != nullptr);
}

TEST(ParallelForCollect, DiagnosticErrorPayloadSurvives) {
  auto failures = par::parallelForCollect(
      3,
      [](std::size_t i) {
        if (i == 2) {
          throw support::DiagnosticError(
              support::makeDiagnostic(support::StatusCode::SimulationFailed,
                                      "injected")
                  .withSite("par_test.site")
                  .withPin(1));
        }
      },
      {.threads = 2});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].diagnostic.code, support::StatusCode::SimulationFailed);
  EXPECT_EQ(failures[0].diagnostic.site, "par_test.site");
  EXPECT_EQ(failures[0].diagnostic.pin, 1);
}

TEST(ParallelForCollect, FailFastSerialStopsAtFirstFailure) {
  std::vector<int> ran(10, 0);
  auto failures = par::parallelForCollect(
      10,
      [&](std::size_t i) {
        ran[i] = 1;
        if (i == 3) throw std::runtime_error("stop here");
      },
      {.threads = 1, .failFast = true});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 3u);
  // Serial fail-fast matches a plain loop: nothing after the throw runs.
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 4);
}

TEST(ParallelForCollect, FailFastParallelStillReportsLowestFailure) {
  auto failures = par::parallelForCollect(
      100,
      [&](std::size_t i) {
        if (i >= 10) throw std::runtime_error("late failure");
      },
      {.threads = 4, .failFast = true});
  ASSERT_FALSE(failures.empty());
  EXPECT_GE(failures[0].index, 10u);
}

// -- cooperative cancellation ------------------------------------------------

TEST(ParallelFor, CancelMidLoopThrowsTypedErrorAndPoolSurvives) {
  for (int threads : {1, 8}) {
    support::CancelToken token;
    std::atomic<int> started{0};
    try {
      par::parallelFor(
          500,
          [&](std::size_t) {
            if (started.fetch_add(1) == 20) token.cancel();
            support::pollCancellation("par_test.body");
          },
          {.threads = threads, .cancel = &token});
      FAIL() << "expected DiagnosticError, threads " << threads;
    } catch (const support::DiagnosticError& e) {
      // Cancellation outranks the collected task failures, and it is
      // reported only after in-flight tasks drained.
      EXPECT_EQ(e.code(), support::StatusCode::Cancelled);
      EXPECT_EQ(e.diagnostic().site, "par.parallel_for");
    }
    EXPECT_LT(started.load(), 500) << "threads " << threads;
    // The pool survived the cancelled loop: the next one covers everything.
    checkCoversEveryIndexOnce(threads, 100);
  }
}

TEST(ParallelFor, PreTrippedTokenRunsNoTasksSerially) {
  support::CancelToken token;
  token.cancel();
  int ran = 0;
  EXPECT_THROW(par::parallelFor(
                   50, [&](std::size_t) { ++ran; },
                   {.threads = 1, .cancel = &token}),
               support::DiagnosticError);
  EXPECT_EQ(ran, 0);
}

TEST(ParallelFor, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  support::CancelToken token;
  token.setTimeout(0.0);
  try {
    par::parallelFor(
        100, [](std::size_t) {}, {.threads = 4, .cancel = &token});
    FAIL() << "expected DiagnosticError";
  } catch (const support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::DeadlineExceeded);
  }
}

TEST(ParallelFor, TasksObserveTheTokenThroughTheThreadLocalScope) {
  support::CancelToken token;
  std::atomic<int> visible{0};
  par::parallelFor(
      64,
      [&](std::size_t) {
        if (support::currentCancelToken() == &token) visible.fetch_add(1);
      },
      {.threads = 4, .cancel = &token});
  EXPECT_EQ(visible.load(), 64);
}

TEST(ThreadPool, DestructorDrainsTasksThatObserveATrippedToken) {
  // Regression guard for the drain-on-destroy contract under cancellation:
  // queued tasks that immediately hit a tripped token must still all run
  // (absorbing the typed error at the task boundary), and the destructor
  // must join cleanly rather than deadlocking on the queue.
  support::CancelToken token;
  token.cancel();
  std::atomic<int> drained{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] {
        support::CancelScope scope(&token);
        try {
          support::pollCancellation("par_test.drain");
        } catch (const support::DiagnosticError&) {
        }
        drained.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(drained.load(), 64);
}

// -- nested parallelism guard ------------------------------------------------

TEST(ParallelFor, NestedCallFromWorkerRunsInlineWithoutDeadlock) {
  std::atomic<int> innerTotal{0};
  par::parallelFor(
      8,
      [&](std::size_t) {
        // A second level of parallelFor from (possibly) a pool worker: must
        // complete inline rather than submitting to the already-busy pool.
        par::parallelFor(
            16,
            [&](std::size_t) {
              innerTotal.fetch_add(1, std::memory_order_relaxed);
            },
            {.threads = 8});
      },
      {.threads = 4});
  EXPECT_EQ(innerTotal.load(), 8 * 16);
}

TEST(ThreadPool, NestedParallelForInsideSubmittedTaskCompletes) {
  std::atomic<int> total{0};
  std::atomic<bool> done{false};
  {
    ThreadPool pool(2);
    pool.submit([&] {
      par::parallelFor(
          32, [&](std::size_t) { total.fetch_add(1); }, {.threads = 8});
      done.store(true);
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!done.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }
  EXPECT_TRUE(done.load());
  EXPECT_EQ(total.load(), 32);
}

// -- TaskScope ---------------------------------------------------------------

TEST(TaskScope, DefaultsToMinusOneAndNests) {
  using support::TaskScope;
  EXPECT_EQ(TaskScope::current(), -1);
  {
    TaskScope outer(5);
    EXPECT_EQ(TaskScope::current(), 5);
    {
      TaskScope inner(9);
      EXPECT_EQ(TaskScope::current(), 9);
    }
    EXPECT_EQ(TaskScope::current(), 5);
  }
  EXPECT_EQ(TaskScope::current(), -1);
}

TEST(TaskScope, ParallelForTagsEveryIndexAtAnyThreadCount) {
  for (int threads : {1, 4}) {
    std::vector<long long> seen(50, -2);
    par::parallelFor(
        seen.size(),
        [&](std::size_t i) { seen[i] = support::TaskScope::current(); },
        {.threads = threads});
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], static_cast<long long>(i));
    }
  }
}

#if PROX_ENABLE_FAULT_INJECTION
TEST(TaskScope, TaskKeyedFaultPlanFiresOnlyInItsTask) {
  using support::FaultKind;
  using support::FaultPlan;
  using support::FaultSpec;
  for (int threads : {1, 4}) {
    FaultSpec spec;
    spec.site = "par_test.point";
    spec.kind = FaultKind::SimulationFailure;
    spec.triggerHit = 1;
    spec.count = 1;
    spec.taskIndex = 11;
    FaultPlan::Scope scope(spec);
    std::vector<int> fired(30, 0);
    par::parallelFor(
        fired.size(),
        [&](std::size_t i) {
          if (PROX_FAULT_POINT("par_test.point", SimulationFailure)) {
            fired[i] = 1;
          }
        },
        {.threads = threads});
    for (std::size_t i = 0; i < fired.size(); ++i) {
      EXPECT_EQ(fired[i], i == 11 ? 1 : 0) << "threads " << threads;
    }
    EXPECT_EQ(FaultPlan::fired(), 1u);
  }
}
#endif

}  // namespace
