// Corner-sweep fleet tests: the corner parser's trust-boundary contract,
// the multi-corner bundle round trip (including deliberate corruption), the
// degrade-or-reject corner selection policy, the orchestrator's full failure
// ladder driven by stub /bin/sh workers, and -- under fault injection -- the
// real characterize_corners tool: kill-mid-corner --resume byte-identity,
// corrupt-journal-tail recovery, and 3-strikes quarantine.
//
// Also here: the SIGTERM signal contract (satellite of the same PR).  The
// first SIGTERM/SIGINT must take the graceful path (cancel the token, flush,
// exit 6) even when a --timeout deadline latched the token first; only a
// *second* signal escalates to the default disposition.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cells/corner.hpp"
#include "characterize/serialize.hpp"
#include "fleet/bundle.hpp"
#include "fleet/orchestrator.hpp"
#include "obs/report.hpp"
#include "obs/registry.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/journal.hpp"
#include "test_util.hpp"

namespace {

namespace fs = std::filesystem;
using namespace prox;
using support::DiagnosticError;
using support::StatusCode;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("prox_fleet_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

StatusCode codeOf(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const DiagnosticError& e) {
    return e.code();
  }
  return StatusCode::Ok;
}

// -- corners file parser -----------------------------------------------------

const char* kGoodCorners =
    "proxcorners 1\n"
    "# comment line\n"
    "corner tt vdd 1.0 vt 0.0 kp 1.0 gamma 1.0\n"
    "\n"
    "corner ss vdd 0.9 vt 0.1 kp 0.85 gamma 1.1\n";

TEST(CornerParser, ParsesNamedCorners) {
  const auto corners = cells::parseCornersFile(kGoodCorners, "<test>");
  ASSERT_EQ(corners.size(), 2u);
  EXPECT_EQ(corners[0].name, "tt");
  EXPECT_EQ(corners[0].vddScale, 1.0);
  EXPECT_EQ(corners[1].name, "ss");
  EXPECT_EQ(corners[1].vtShift, 0.1);
  EXPECT_EQ(corners[1].kpScale, 0.85);
  EXPECT_EQ(corners[1].gammaScale, 1.1);
}

TEST(CornerParser, RejectsMalformedInput) {
  // Wrong magic.
  EXPECT_EQ(codeOf([] {
              cells::parseCornersFile("corners 1\ncorner tt vdd 1 vt 0 kp 1 "
                                      "gamma 1\n",
                                      "<t>");
            }),
            StatusCode::ParseError);
  // Duplicate name.
  EXPECT_EQ(codeOf([] {
              cells::parseCornersFile(
                  "proxcorners 1\n"
                  "corner tt vdd 1 vt 0 kp 1 gamma 1\n"
                  "corner tt vdd 1 vt 0 kp 1 gamma 1\n",
                  "<t>");
            }),
            StatusCode::ParseError);
  // Out-of-range scale (vdd x100 is not a corner, it is a typo).
  EXPECT_EQ(codeOf([] {
              cells::parseCornersFile(
                  "proxcorners 1\ncorner tt vdd 100 vt 0 kp 1 gamma 1\n",
                  "<t>");
            }),
            StatusCode::ParseError);
  // Name with a path separator -- corners name files in the work dir.
  EXPECT_EQ(codeOf([] {
              cells::parseCornersFile(
                  "proxcorners 1\ncorner ../evil vdd 1 vt 0 kp 1 gamma 1\n",
                  "<t>");
            }),
            StatusCode::ParseError);
  // Empty set.
  EXPECT_EQ(codeOf([] { cells::parseCornersFile("proxcorners 1\n", "<t>"); }),
            StatusCode::ParseError);
}

TEST(CornerParser, DefaultCornersAreValidAndStartNominal) {
  const auto corners = cells::defaultCorners();
  ASSERT_GE(corners.size(), 3u);
  EXPECT_EQ(corners[0].name, "tt");
  EXPECT_EQ(corners[0].vddScale, 1.0);
  EXPECT_EQ(corners[0].vtShift, 0.0);
}

TEST(CornerParser, ApplyCornerShiftsThresholdMagnitude) {
  const cells::Technology base = cells::Technology::generic5v();
  cells::Corner slow;
  slow.name = "slow";
  slow.vddScale = 0.9;
  slow.vtShift = 0.1;
  slow.kpScale = 0.8;
  slow.gammaScale = 1.2;
  const cells::Technology t = cells::applyCorner(base, slow);
  EXPECT_DOUBLE_EQ(t.vdd, base.vdd * 0.9);
  // vtShift moves the *magnitude* on both devices: NMOS up, PMOS (negative
  // vt0) down.
  EXPECT_DOUBLE_EQ(t.nmos.vt0, base.nmos.vt0 + 0.1);
  EXPECT_DOUBLE_EQ(t.pmos.vt0, base.pmos.vt0 - 0.1);
  EXPECT_DOUBLE_EQ(t.nmos.kp, base.nmos.kp * 0.8);
  EXPECT_DOUBLE_EQ(t.pmos.gamma, base.pmos.gamma * 1.2);
}

TEST(CornerParser, DistanceIsZeroOnSelfAndSymmetric) {
  const auto corners = cells::defaultCorners();
  EXPECT_EQ(cells::cornerDistance(corners[0], corners[0]), 0.0);
  EXPECT_DOUBLE_EQ(cells::cornerDistance(corners[0], corners[1]),
                   cells::cornerDistance(corners[1], corners[0]));
  EXPECT_GT(cells::cornerDistance(corners[0], corners[1]), 0.0);
}

// -- bundle round trip and corner selection ----------------------------------

/// Writes a three-corner bundle: tt (ok, the cached NAND2 model),
/// bad (quarantined), gone (missing).
std::string writeTestBundle(const TempDir& dir) {
  const std::string prox = dir.file("tt.prox");
  characterize::saveGateModel(testutil::nand2Model(), prox);

  std::vector<fleet::BundleWriteEntry> entries;
  fleet::BundleWriteEntry ok;
  ok.corner.name = "tt";
  ok.status = fleet::BundleCornerStatus::Ok;
  ok.proxPath = prox;
  entries.push_back(ok);

  fleet::BundleWriteEntry bad;
  bad.corner.name = "bad";
  bad.corner.vtShift = 0.1;
  bad.status = fleet::BundleCornerStatus::Quarantined;
  bad.reason = "attempts=3,signal=9";
  entries.push_back(bad);

  fleet::BundleWriteEntry gone;
  gone.corner.name = "gone";
  gone.corner.vddScale = 1.1;
  gone.status = fleet::BundleCornerStatus::Missing;
  entries.push_back(gone);

  const std::string path = dir.file("test.proxbundle");
  fleet::writeBundle(path, entries);
  return path;
}

TEST(Bundle, RoundTripsStatusReasonAndModel) {
  TempDir dir;
  const std::string path = writeTestBundle(dir);
  const fleet::Bundle bundle = fleet::loadBundleFile(path);
  ASSERT_EQ(bundle.entries.size(), 3u);
  EXPECT_EQ(bundle.okCount(), 1u);

  const fleet::BundleEntry* tt = bundle.find("tt");
  ASSERT_NE(tt, nullptr);
  EXPECT_EQ(tt->status, fleet::BundleCornerStatus::Ok);
  ASSERT_TRUE(tt->gate.has_value());
  EXPECT_EQ(tt->gate->pinCount(), 2);

  const fleet::BundleEntry* bad = bundle.find("bad");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->status, fleet::BundleCornerStatus::Quarantined);
  EXPECT_EQ(bad->reason, "attempts=3,signal=9");
  EXPECT_FALSE(bad->gate.has_value());
  EXPECT_EQ(bad->corner.vtShift, 0.1);

  EXPECT_EQ(bundle.find("gone")->status, fleet::BundleCornerStatus::Missing);
  EXPECT_EQ(bundle.find("nope"), nullptr);
}

TEST(Bundle, EmbeddedModelMatchesSourceArtifactByteForByte) {
  TempDir dir;
  const std::string path = writeTestBundle(dir);
  const fleet::Bundle bundle = fleet::loadBundleFile(path);
  // Re-serializing the embedded model reproduces the worker artifact
  // exactly: the bundle is a container, not a re-encoding.
  std::ostringstream os;
  characterize::saveGateModel(*bundle.find("tt")->gate, os);
  EXPECT_EQ(os.str(), slurp(dir.file("tt.prox")));
}

TEST(Bundle, SelectServesCharacterizedCornerUnderBothPolicies) {
  TempDir dir;
  const fleet::Bundle bundle = fleet::loadBundleFile(writeTestBundle(dir));
  for (const auto policy : {fleet::MissingCornerPolicy::Reject,
                            fleet::MissingCornerPolicy::Degrade}) {
    const fleet::CornerSelection sel =
        fleet::selectCorner(bundle, "tt", policy);
    EXPECT_FALSE(sel.degraded);
    EXPECT_EQ(sel.entry->corner.name, "tt");
  }
}

TEST(Bundle, RejectPolicyTurnsHoleIntoStructuralError) {
  TempDir dir;
  const fleet::Bundle bundle = fleet::loadBundleFile(writeTestBundle(dir));
  EXPECT_EQ(codeOf([&] {
              fleet::selectCorner(bundle, "bad",
                                  fleet::MissingCornerPolicy::Reject);
            }),
            StatusCode::StructuralError);
  EXPECT_EQ(codeOf([&] {
              fleet::selectCorner(bundle, "gone",
                                  fleet::MissingCornerPolicy::Reject);
            }),
            StatusCode::StructuralError);
}

TEST(Bundle, DegradePolicyServesNearestAndCountsTheFallback) {
  TempDir dir;
  const fleet::Bundle bundle = fleet::loadBundleFile(writeTestBundle(dir));
  obs::counter("fleet.bundle.nearest_fallbacks").reset();
  support::DiagnosticLog log;
  const fleet::CornerSelection sel = fleet::selectCorner(
      bundle, "bad", fleet::MissingCornerPolicy::Degrade, &log);
  EXPECT_TRUE(sel.degraded);
  EXPECT_EQ(sel.requested, "bad");
  EXPECT_EQ(sel.entry->corner.name, "tt");  // the only characterized corner
  ASSERT_TRUE(sel.entry->gate.has_value());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].severity, support::Severity::Warning);
  EXPECT_EQ(obs::snapshot().counterValue("fleet.bundle.nearest_fallbacks"),
            1u);
}

TEST(Bundle, UnknownCornerIsAlwaysStructuralError) {
  TempDir dir;
  const fleet::Bundle bundle = fleet::loadBundleFile(writeTestBundle(dir));
  for (const auto policy : {fleet::MissingCornerPolicy::Reject,
                            fleet::MissingCornerPolicy::Degrade}) {
    EXPECT_EQ(codeOf([&] { fleet::selectCorner(bundle, "nope", policy); }),
              StatusCode::StructuralError);
  }
}

TEST(Bundle, AllHolesBundleCannotDegrade) {
  TempDir dir;
  std::vector<fleet::BundleWriteEntry> entries;
  fleet::BundleWriteEntry bad;
  bad.corner.name = "bad";
  bad.status = fleet::BundleCornerStatus::Quarantined;
  entries.push_back(bad);
  const std::string path = dir.file("holes.proxbundle");
  fleet::writeBundle(path, entries);
  const fleet::Bundle bundle = fleet::loadBundleFile(path);
  EXPECT_EQ(codeOf([&] {
              fleet::selectCorner(bundle, "bad",
                                  fleet::MissingCornerPolicy::Degrade);
            }),
            StatusCode::StructuralError);
}

TEST(Bundle, CorruptionIsRejectedNotServed) {
  TempDir dir;
  const std::string path = writeTestBundle(dir);
  const std::string good = slurp(path);

  // A flipped byte inside an embedded section trips the section CRC.
  std::string flipped = good;
  flipped[flipped.size() - 20] ^= 0x40;
  EXPECT_EQ(codeOf([&] { fleet::parseBundle(flipped, "<t>"); }),
            StatusCode::ParseError);

  // A tampered manifest line trips the line CRC.
  std::string tampered = good;
  const std::size_t pos = tampered.find(" ok ");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 4, " OK ");
  EXPECT_EQ(codeOf([&] { fleet::parseBundle(tampered, "<t>"); }),
            StatusCode::ParseError);

  // Truncation: the declared section length no longer fits.
  EXPECT_EQ(codeOf([&] {
              fleet::parseBundle(good.substr(0, good.size() - 100), "<t>");
            }),
            StatusCode::ParseError);

  // Trailing garbage after the last declared section.
  EXPECT_EQ(codeOf([&] { fleet::parseBundle(good + "extra", "<t>"); }),
            StatusCode::ParseError);

  // The original still parses (the mutations above were the problem).
  EXPECT_NO_THROW(fleet::parseBundle(good, "<t>"));
}

// -- orchestrator: failure ladder with stub workers --------------------------

fleet::FleetOptions fastOptions() {
  fleet::FleetOptions o;
  o.maxParallel = 4;
  o.maxRetries = 2;
  o.backoffBaseSeconds = 0.02;
  o.backoffMaxSeconds = 0.1;
  o.echoWorkerOutput = false;
  return o;
}

fleet::ShardSpec shellShard(const std::string& name,
                            const std::string& script) {
  fleet::ShardSpec s;
  s.name = name;
  s.command = [script](int) {
    return std::vector<std::string>{"/bin/sh", "-c", script};
  };
  return s;
}

TEST(Orchestrator, BackoffDoublesFromBaseAndCaps) {
  fleet::FleetOptions o;
  o.backoffBaseSeconds = 0.25;
  o.backoffMaxSeconds = 8.0;
  EXPECT_DOUBLE_EQ(fleet::retryBackoffSeconds(1, o), 0.25);
  EXPECT_DOUBLE_EQ(fleet::retryBackoffSeconds(2, o), 0.5);
  EXPECT_DOUBLE_EQ(fleet::retryBackoffSeconds(3, o), 1.0);
  EXPECT_DOUBLE_EQ(fleet::retryBackoffSeconds(4, o), 2.0);
  EXPECT_DOUBLE_EQ(fleet::retryBackoffSeconds(10, o), 8.0);  // capped
}

TEST(Orchestrator, HappyPathRunsEveryShardOnce) {
  TempDir dir;
  std::vector<fleet::ShardSpec> shards;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "s" + std::to_string(i);
    shards.push_back(
        shellShard(name, "echo working; touch " + dir.file(name)));
  }
  const fleet::FleetReport report = fleet::runFleet(shards, fastOptions());
  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_TRUE(report.allDone());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(report.shards[i].state, fleet::ShardState::Done);
    EXPECT_EQ(report.shards[i].attempts, 1);
    EXPECT_EQ(report.shards[i].lastExitCode, 0);
    EXPECT_FALSE(report.shards[i].resumedFromJournal);
    EXPECT_TRUE(fs::exists(dir.file("s" + std::to_string(i))));
  }
}

TEST(Orchestrator, FailingAttemptIsRetriedThenSucceeds) {
  TempDir dir;
  // First attempt plants a marker and fails; the retry sees it and succeeds.
  const std::string marker = dir.file("marker");
  std::vector<fleet::ShardSpec> shards{shellShard(
      "flaky", "if [ -e " + marker + " ]; then exit 0; fi; touch " + marker +
                   "; echo transient failure; exit 3")};
  const fleet::FleetReport report = fleet::runFleet(shards, fastOptions());
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].state, fleet::ShardState::Done);
  EXPECT_EQ(report.shards[0].attempts, 2);
  EXPECT_EQ(report.shards[0].lastExitCode, 0);
  EXPECT_TRUE(report.shards[0].resumedFromJournal);  // retries replay
}

TEST(Orchestrator, ThreeStrikesQuarantinesWithExitCodeAndDiagnostic) {
  obs::counter("fleet.shard.quarantined").reset();
  obs::counter("fleet.shard.retries").reset();
  std::vector<fleet::ShardSpec> shards{
      shellShard("doomed", "echo the-actual-reason; exit 3")};
  const fleet::FleetReport report = fleet::runFleet(shards, fastOptions());
  ASSERT_EQ(report.shards.size(), 1u);
  const fleet::ShardResult& s = report.shards[0];
  EXPECT_EQ(s.state, fleet::ShardState::Quarantined);
  EXPECT_EQ(s.attempts, 3);  // 1 try + maxRetries=2
  EXPECT_EQ(s.lastExitCode, 3);
  EXPECT_EQ(s.lastSignal, 0);
  // The machine-readable record carries the worker's own last line.
  EXPECT_NE(s.lastDiagnostic.find("the-actual-reason"), std::string::npos);
  EXPECT_FALSE(report.allDone());
  EXPECT_EQ(report.countIn(fleet::ShardState::Quarantined), 1u);
  EXPECT_EQ(obs::snapshot().counterValue("fleet.shard.quarantined"), 1u);
  EXPECT_EQ(obs::snapshot().counterValue("fleet.shard.retries"), 2u);
}

TEST(Orchestrator, SignaledWorkerIsRecordedBySignalNumber) {
  auto options = fastOptions();
  options.maxRetries = 0;
  std::vector<fleet::ShardSpec> shards{
      shellShard("killed", "kill -9 $$")};
  const fleet::FleetReport report = fleet::runFleet(shards, options);
  const fleet::ShardResult& s = report.shards[0];
  EXPECT_EQ(s.state, fleet::ShardState::Quarantined);
  EXPECT_EQ(s.lastExitCode, -1);
  EXPECT_EQ(s.lastSignal, SIGKILL);
}

TEST(Orchestrator, ZeroExitWithInvalidArtifactIsRetriedNotTrusted) {
  TempDir dir;
  obs::counter("fleet.shard.invalid_artifacts").reset();
  // The worker always "succeeds"; validation fails until the marker exists
  // (planted by the second attempt).
  const std::string marker = dir.file("artifact");
  fleet::ShardSpec shard = shellShard(
      "liar", "if [ -e " + marker + ".tmp ]; then mv " + marker + ".tmp " +
                  marker + "; fi; touch " + marker + ".tmp; exit 0");
  shard.validateArtifact = [marker](std::string* reason) {
    if (fs::exists(marker)) return true;
    if (reason != nullptr) *reason = "artifact not written";
    return false;
  };
  const fleet::FleetReport report =
      fleet::runFleet({shard}, fastOptions());
  const fleet::ShardResult& s = report.shards[0];
  EXPECT_EQ(s.state, fleet::ShardState::Done);
  EXPECT_EQ(s.attempts, 2);
  EXPECT_GE(obs::snapshot().counterValue("fleet.shard.invalid_artifacts"), 1u);
}

TEST(Orchestrator, DeadlineOverrunIsKilledAndDiagnosed) {
  auto options = fastOptions();
  options.maxRetries = 0;
  options.shardDeadlineSeconds = 0.2;
  options.killGraceSeconds = 0.2;
  std::vector<fleet::ShardSpec> shards{shellShard("slow", "sleep 30")};
  const fleet::FleetReport report = fleet::runFleet(shards, options);
  const fleet::ShardResult& s = report.shards[0];
  EXPECT_EQ(s.state, fleet::ShardState::Quarantined);
  EXPECT_NE(s.lastDiagnostic.find("killed by supervisor (deadline)"),
            std::string::npos);
  EXPECT_NE(s.lastSignal, 0);  // sh dies on SIGTERM (or SIGKILL escalation)
}

TEST(Orchestrator, HeartbeatSilenceIsKilledEvenBeforeDeadline) {
  auto options = fastOptions();
  options.maxRetries = 0;
  options.shardDeadlineSeconds = 60.0;  // far away: heartbeat must fire first
  options.heartbeatTimeoutSeconds = 0.25;
  options.killGraceSeconds = 0.2;
  std::vector<fleet::ShardSpec> shards{
      shellShard("silent", "echo one heartbeat; sleep 30")};
  const fleet::FleetReport report = fleet::runFleet(shards, options);
  const fleet::ShardResult& s = report.shards[0];
  EXPECT_EQ(s.state, fleet::ShardState::Quarantined);
  EXPECT_NE(s.lastDiagnostic.find("killed by supervisor (heartbeat)"),
            std::string::npos);
}

TEST(Orchestrator, CancellationTerminatesWorkersAndThrowsTyped) {
  support::CancelToken token;
  token.setTimeout(0.25);
  auto options = fastOptions();
  options.cancel = &token;
  options.killGraceSeconds = 0.2;
  std::vector<fleet::ShardSpec> shards{shellShard("longhaul", "sleep 30"),
                                       shellShard("quickone", "exit 0")};
  const StatusCode code =
      codeOf([&] { fleet::runFleet(shards, options); });
  EXPECT_TRUE(code == StatusCode::Cancelled ||
              code == StatusCode::DeadlineExceeded)
      << "got " << static_cast<int>(code);
}

TEST(Orchestrator, ReportJsonCarriesTheMachineReadableFacts) {
  std::vector<fleet::ShardSpec> shards{
      shellShard("ok", "exit 0"),
      shellShard("doomed", "echo 'boom \"quoted\"'; exit 7")};
  const fleet::FleetReport report = fleet::runFleet(shards, fastOptions());
  std::ostringstream os;
  report.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"ok\", \"state\": \"done\""),
            std::string::npos);
  EXPECT_NE(json.find("\"state\": \"quarantined\""), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\": 7"), std::string::npos);
  EXPECT_NE(json.find("boom \\\"quoted\\\""), std::string::npos)
      << json;  // quotes escaped, not emitted raw
}

// -- SIGTERM signal contract (SignalCancelScope) -----------------------------

// The first SIGTERM must take the graceful path even when the --timeout
// deadline already latched the cancel token -- the historical bug: the
// handler tested cancelRequested() (true once a deadline latches) and
// escalated the *first* signal to the default disposition, so a timed-out
// run died by signal instead of flushing its checkpoint and exiting 6.
TEST(SignalContract, FirstSigtermAfterDeadlineLatchIsGraceful) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: latch the deadline, then deliver SIGTERM.  With the fix the
    // handler records the signal and returns; we observe it and exit 6.
    support::CancelToken token;
    support::SignalCancelScope scope(&token);
    token.setTimeout(1e-6);
    while (!token.cancelRequested()) ::usleep(1000);
    ::raise(SIGTERM);
    ::_exit(token.signalNumber() == SIGTERM ? 6 : 99);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died by signal "
                                 << (WIFSIGNALED(status) ? WTERMSIG(status)
                                                         : 0);
  EXPECT_EQ(WEXITSTATUS(status), 6);
}

TEST(SignalContract, SecondSigtermEscalatesToDefaultDisposition) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    support::CancelToken token;
    support::SignalCancelScope scope(&token);
    ::raise(SIGTERM);  // first: recorded on the token, handler returns
    if (token.signalNumber() != SIGTERM) ::_exit(99);
    ::raise(SIGTERM);  // second: escalates -- default disposition kills us
    ::_exit(98);       // unreachable when escalation works
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGTERM);
}

// -- end-to-end: the real characterize_corners tool --------------------------

// These run the actual fleet binary (quick grids, one corner) under the
// deterministic fault plan: SIGKILL mid-sweep, corrupt journal tails,
// 3-strikes quarantine, and --resume byte-identity.  Gated on fault
// injection being compiled in (the default).
#if PROX_ENABLE_FAULT_INJECTION && defined(PROX_FLEET_TOOL)

int runTool(const std::string& args) {
  const std::string cmd =
      std::string(PROX_FLEET_TOOL) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const char* kOneCorner =
    "proxcorners 1\ncorner tt vdd 1.0 vt 0.0 kp 1.0 gamma 1.0\n";

std::string writeOneCorner(const TempDir& dir) {
  const std::string path = dir.file("one.corners");
  std::ofstream(path) << kOneCorner;
  return path;
}

std::string fleetArgs(const TempDir& dir, const std::string& corners,
                      const std::string& bundle) {
  return "--quick --threads 1 --corners " + corners + " --out " +
         dir.file(bundle) + " --retry-backoff 0.02 --quiet";
}

TEST(FleetEndToEnd, KilledWorkerRetriesToByteIdenticalBundle) {
  TempDir dir;
  const std::string corners = writeOneCorner(dir);
  // Reference: uninterrupted run.
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "ref.proxbundle")), 0);
  // Crash the first attempt mid-sweep (real SIGKILL); the retry resumes the
  // journal and must converge on the same bytes.
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "crash.proxbundle") +
                    " --inject=crash@0"),
            0);
  EXPECT_EQ(slurp(dir.file("crash.proxbundle")),
            slurp(dir.file("ref.proxbundle")));
}

TEST(FleetEndToEnd, ThreeStrikesQuarantineThenResumeHealsByteIdentically) {
  TempDir dir;
  const std::string corners = writeOneCorner(dir);
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "ref.proxbundle")), 0);

  // Crash every allowed attempt: the shard must land in quarantine (exit 1)
  // with the crash recorded in the report and a manifest hole in the bundle.
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "q.proxbundle") +
                    " --inject=crash@0*3"),
            1);
  const std::string report = slurp(dir.file("q.proxbundle.fleet.json"));
  EXPECT_NE(report.find("\"state\": \"quarantined\""), std::string::npos);
  EXPECT_NE(report.find("\"attempts\": 3"), std::string::npos);
  EXPECT_NE(report.find("\"signal\": 9"), std::string::npos);
  const std::string bundleText = slurp(dir.file("q.proxbundle"));
  EXPECT_NE(bundleText.find(" quarantined "), std::string::npos);

  // --resume replays the journal from the crashed attempts and completes
  // the corner; the healed bundle is byte-identical to the uninterrupted
  // reference.
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "q.proxbundle") + " --resume"),
            0);
  EXPECT_EQ(slurp(dir.file("q.proxbundle")), slurp(dir.file("ref.proxbundle")));
}

TEST(FleetEndToEnd, CorruptJournalTailIsRetriedNotWedged) {
  TempDir dir;
  const std::string corners = writeOneCorner(dir);
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "ref.proxbundle")), 0);

  // Leave a journal behind by quarantining, then damage its tail the way a
  // power cut would (partial append).
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "c.proxbundle") +
                    " --inject=crash@0*3"),
            1);
  const std::string journal = dir.file("c.proxbundle.work/shard-tt.ckpt");
  ASSERT_TRUE(fs::exists(journal));
  {
    std::ofstream os(journal, std::ios::binary | std::ios::app);
    os << "p dual 00";  // torn record: no CRC, no newline framing
  }

  // --resume must tolerate the torn tail (drop it, replay the valid prefix)
  // and still converge byte-identically -- not wedge, not start over.
  ASSERT_EQ(runTool(fleetArgs(dir, corners, "c.proxbundle") + " --resume"),
            0);
  EXPECT_EQ(slurp(dir.file("c.proxbundle")), slurp(dir.file("ref.proxbundle")));
}

#endif  // PROX_ENABLE_FAULT_INJECTION && PROX_FLEET_TOOL

}  // namespace
