// Fault-injection proof of the fault-tolerance layer: deterministic faults
// forced at named sites exercise every rung of the Newton recovery ladder,
// the transient BE fallback and typed timestep underflow, characterization
// hole healing, and the STA degraded-arc ladder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "characterize/characterize.hpp"
#include "model/dual_input.hpp"
#include "model/gate_sim.hpp"
#include "obs/registry.hpp"
#include "spice/capacitor.hpp"
#include "spice/resistor.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"
#include "sta/timing_graph.hpp"
#include "support/diagnostic.hpp"
#include "support/fault_injection.hpp"
#include "test_util.hpp"

#if !PROX_ENABLE_FAULT_INJECTION

// The whole binary is about injected faults; report a visible skip when the
// build has the injection hooks compiled out.
TEST(FaultInjection, DISABLED_RequiresFaultInjectionBuild) {}

#else

namespace {

using namespace prox;
using spice::Circuit;
using spice::kGround;
using support::DiagnosticError;
using support::FaultKind;
using support::FaultPlan;
using support::Severity;
using support::StatusCode;
using wave::Edge;

std::uint64_t counterValue(const char* name) {
  return obs::counter(name).value();
}

// A well-conditioned divider: every solve succeeds unless a fault is forced.
struct Divider {
  Circuit ckt;
  spice::NodeId a;
  Divider() {
    a = ckt.node("a");
    ckt.add<spice::VoltageSource>("v", a, kGround, 5.0);
    ckt.add<spice::Resistor>("r", a, kGround, 1e3);
    ckt.finalize();
  }
};

// An RC low-pass driven by a 1 ns ramp: plenty of healthy transient steps to
// inject failures into.
struct RcRamp {
  Circuit ckt;
  spice::NodeId out;
  RcRamp() {
    const spice::NodeId in = ckt.node("in");
    out = ckt.node("out");
    ckt.add<spice::VoltageSource>("vin", in, kGround,
                                  wave::Waveform({{0.0, 0.0}, {1e-9, 5.0}}));
    ckt.add<spice::Resistor>("r", in, out, 1e3);
    ckt.add<spice::Capacitor>("c", out, kGround, 1e-12);
    ckt.finalize();
  }
};

TEST(FaultInjectionNewton, InjectedNonConvergenceIsTyped) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  FaultPlan::Scope scope({"spice.newton", FaultKind::NewtonNonConverge, 1, 1});
  const auto st = spice::solveNewton(d.ckt, x, spice::StampContext{}, {});
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.code(), StatusCode::NewtonNonConverge);
  EXPECT_EQ(FaultPlan::fired(), 1u);
}

TEST(FaultInjectionNewton, InjectedNanResidualFlagsNonFinite) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  FaultPlan::Scope scope(
      {"spice.newton.residual", FaultKind::NanResidual, 1, 1});
  const auto st = spice::solveNewton(d.ckt, x, spice::StampContext{}, {});
  EXPECT_FALSE(st.converged);
  EXPECT_TRUE(st.nonFinite);
  EXPECT_EQ(st.code(), StatusCode::NonFiniteSolution);
}

TEST(FaultInjectionNewton, InjectedSingularLuFlagsSingular) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  FaultPlan::Scope scope({"linalg.lu.factor", FaultKind::SingularLu, 1, 1});
  const auto st = spice::solveNewton(d.ckt, x, spice::StampContext{}, {});
  EXPECT_FALSE(st.converged);
  EXPECT_TRUE(st.singular);
  EXPECT_EQ(st.code(), StatusCode::SingularMatrix);
}

TEST(FaultInjectionNewton, DampingRungRecovers) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  const auto recovered = counterValue("spice.newton.recovery.damping_recovered");
  // Exactly one failure: the plain solve consumes it, the damping retry is
  // clean and must converge.
  FaultPlan::Scope scope({"spice.newton", FaultKind::NewtonNonConverge, 1, 1});
  const auto out =
      spice::solveNewtonRecover(d.ckt, x, spice::StampContext{}, {});
  EXPECT_TRUE(out.status.converged);
  EXPECT_EQ(out.rung, spice::RecoveryRung::Damping);
  EXPECT_NEAR(d.ckt.nodeVoltage(x, d.a), 5.0, 1e-6);
  EXPECT_EQ(counterValue("spice.newton.recovery.damping_recovered") - recovered,
            1u);
}

TEST(FaultInjectionNewton, GminRampRungRecovers) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  const auto recovered = counterValue("spice.newton.recovery.gmin_recovered");
  // Two failures take out the plain solve and the damping rung; the gmin
  // ramp must finish the job.
  FaultPlan::Scope scope({"spice.newton", FaultKind::NewtonNonConverge, 1, 2});
  const auto out =
      spice::solveNewtonRecover(d.ckt, x, spice::StampContext{}, {});
  EXPECT_TRUE(out.status.converged);
  EXPECT_EQ(out.rung, spice::RecoveryRung::GminRamp);
  EXPECT_NEAR(d.ckt.nodeVoltage(x, d.a), 5.0, 1e-6);
  EXPECT_EQ(counterValue("spice.newton.recovery.gmin_recovered") - recovered,
            1u);
}

TEST(FaultInjectionNewton, SingularLuRecoveredByLadder) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  FaultPlan::Scope scope({"linalg.lu.factor", FaultKind::SingularLu, 1, 1});
  const auto out =
      spice::solveNewtonRecover(d.ckt, x, spice::StampContext{}, {});
  EXPECT_TRUE(out.status.converged);
  EXPECT_NE(out.rung, spice::RecoveryRung::Plain);
}

TEST(FaultInjectionNewton, ExhaustedLadderRestoresEntryIterate) {
  Divider d;
  linalg::Vector x(d.ckt.unknownCount(), 0.0);
  const auto exhausted = counterValue("spice.newton.recovery.exhausted");
  // Every rung fails: the ladder must give up and hand back the iterate it
  // was called with instead of a half-converged vector.
  FaultPlan::Scope scope(
      {"spice.newton", FaultKind::NewtonNonConverge, 1, 1000000});
  const auto out =
      spice::solveNewtonRecover(d.ckt, x, spice::StampContext{}, {});
  EXPECT_FALSE(out.status.converged);
  EXPECT_EQ(counterValue("spice.newton.recovery.exhausted") - exhausted, 1u);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FaultInjectionTran, StepHalvingAbsorbsInjectedBurst) {
  RcRamp rc;
  spice::TranOptions opt;
  opt.tstop = 4e-9;
  // Skip the initial operating point (hit 1) and fail three step solves in a
  // row: routine halving must absorb the burst without the ladder.
  FaultPlan::Scope scope({"spice.newton", FaultKind::NewtonNonConverge, 2, 3});
  const auto res = spice::transient(rc.ckt, opt);
  EXPECT_EQ(FaultPlan::fired(), 3u);
  EXPECT_NEAR(res.node(rc.out).value(4e-9), 5.0, 0.2);
}

TEST(FaultInjectionTran, BeFallbackThenTypedUnderflow) {
  RcRamp rc;
  spice::TranOptions opt;
  opt.tstop = 1e-9;
  opt.hmin = 1e-14;
  const auto fallbacks = counterValue("spice.tran.recovery.be_fallbacks");
  // Unbounded failures: halving collapses the step, the ladder fails, the
  // BE-only restart fails too, and the run must die with a *typed* underflow.
  FaultPlan::Scope scope(
      {"spice.newton", FaultKind::NewtonNonConverge, 2, 1000000});
  try {
    spice::transient(rc.ckt, opt);
    FAIL() << "expected timestep underflow";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::TimestepUnderflow);
    EXPECT_NE(std::string(e.what()).find("underflow"), std::string::npos);
  }
  EXPECT_EQ(counterValue("spice.tran.recovery.be_fallbacks") - fallbacks, 1u);
}

TEST(FaultInjectionTran, InitialOpFailureIsTyped) {
  RcRamp rc;
  spice::TranOptions opt;
  opt.tstop = 1e-9;
  FaultPlan::Scope scope(
      {"spice.newton", FaultKind::NewtonNonConverge, 1, 1000000});
  try {
    spice::transient(rc.ckt, opt);
    FAIL() << "expected initial OP failure";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::InitialOpFailed);
  }
}

// A deliberately tiny characterization grid (mirrors the examples' coarse
// config) so the healing tests stay fast.
characterize::CharacterizationConfig tinyConfig() {
  characterize::CharacterizationConfig c;
  c.tauGrid = {100e-12, 600e-12};
  c.dualTauIndices = {0, 1};
  c.vGrid = {0.3, 1.0, 3.0};
  c.wGrid = {-1.0, 0.0, 0.5, 1.0};
  c.vGridTransition = {0.3, 1.0, 3.0};
  c.wGridTransition = {-1.0, 0.0, 1.0, 3.0};
  c.vtcStep = 0.05;
  return c;
}

TEST(FaultInjectionCharacterize, HealsInjectedPointFailure) {
  const auto cfg = tinyConfig();
  model::GateSimulator sim(model::makeGate(testutil::nandSpec(2), cfg.vtcStep));
  const auto singles =
      model::SingleInputModelSet::characterizeAll(sim, cfg.tauGrid);
  model::DualTable dt;
  model::DualTable tt;
  support::DiagnosticLog log;
  const auto healed = counterValue("characterize.points_healed");
  const auto failed = counterValue("characterize.points_failed");
  {
    // The third sweep point fails on both its first attempt and its retry
    // (count = 2), so it must be left as a hole and healed after the sweep.
    FaultPlan::Scope scope(
        {"model.gate_sim.simulate", FaultKind::SimulationFailure, 3, 2});
    characterize::buildDualTables(sim, singles, 0, 1, Edge::Rising, cfg, &dt,
                                  &tt, &log);
  }
  EXPECT_EQ(dt.healedCount() + tt.healedCount(), 1u);
  EXPECT_EQ(counterValue("characterize.points_healed") - healed, 1u);
  EXPECT_EQ(counterValue("characterize.points_failed") - failed, 1u);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.worstSeverity(), Severity::Warning);
  EXPECT_EQ(log.entries().front().pin, 0);
  for (const double r : dt.ratio) EXPECT_TRUE(std::isfinite(r));
  for (const double r : tt.ratio) EXPECT_TRUE(std::isfinite(r));

  // The healed value must stay close to what a clean sweep would have
  // produced: locate the healed point and re-evaluate it with the oracle.
  const auto& mRef = singles.at(0, Edge::Rising);
  const model::DualTable& t = dt.healedCount() > 0 ? dt : tt;
  const bool inDelay = dt.healedCount() > 0;
  for (std::size_t iu = 0; iu < t.u.size(); ++iu) {
    for (std::size_t iv = 0; iv < t.v.size(); ++iv) {
      for (std::size_t iw = 0; iw < t.w.size(); ++iw) {
        if (!t.isHealed(iu, iv, iw)) continue;
        const double tauRef = iu == 0 ? cfg.tauGrid[0] : cfg.tauGrid[1];
        const double norm =
            inDelay ? mRef.delay(tauRef) : mRef.transition(tauRef);
        model::DualQuery q;
        q.refPin = 0;
        q.otherPin = 1;
        q.edge = Edge::Rising;
        q.tauRef = tauRef;
        q.tauOther = std::clamp(t.v[iv] * norm, 1e-12, 50e-9);
        q.sep = t.w[iw] * norm;
        model::OracleDualInputModel oracle(sim, singles);
        const double expected =
            inDelay ? oracle.delayRatio(q) : oracle.transitionRatio(q);
        EXPECT_NEAR(t.at(iu, iv, iw), expected, 0.1 * std::fabs(expected));
      }
    }
  }
}

TEST(FaultInjectionCharacterize, CharacterizeGateCompletesAndLogs) {
  // Hit 12 lands inside the first dual-table sweep (the 8 single-input
  // characterization transients come first); with the retry also failing the
  // full flow must absorb the fault, heal the hole, and log it.
  FaultPlan::Scope scope(
      {"model.gate_sim.simulate", FaultKind::SimulationFailure, 12, 2});
  const auto cell =
      characterize::characterizeGate(testutil::nandSpec(2), tinyConfig());
  EXPECT_FALSE(cell.diagnostics.empty());
  EXPECT_EQ(cell.diagnostics.worstSeverity(), Severity::Warning);
  std::size_t healed = 0;
  for (int pin : {0, 1}) {
    for (const Edge e : {Edge::Rising, Edge::Falling}) {
      healed += cell.dual->delayTable(pin, e).healedCount();
      healed += cell.dual->transitionTable(pin, e).healedCount();
    }
  }
  EXPECT_EQ(healed, 1u);
}

// Cached cells for the STA degraded-mode tests (characterizing singles costs
// a handful of transients; do it once).
const characterize::CharacterizedGate& cellWithoutDuals() {
  static const auto* cell = [] {
    auto* c = new characterize::CharacterizedGate();
    c->gate = model::makeGate(testutil::nandSpec(2), 0.05);
    model::GateSimulator sim(c->gate);
    c->singles = std::make_unique<model::SingleInputModelSet>(
        model::SingleInputModelSet::characterizeAll(sim,
                                                    {100e-12, 600e-12}));
    c->dual = std::make_unique<model::TabulatedDualInputModel>(*c->singles);
    return c;
  }();
  return *cell;
}

// A table whose grids sit far away from any realistic normalized query, so
// every lookup clamps with a large distance (the values are the identity
// ratio, keeping the clamped answer benign).
model::DualTable farTable() {
  model::DualTable t;
  t.u = {1000.0, 2000.0};
  t.v = {1000.0, 2000.0};
  t.w = {1000.0, 2000.0};
  t.ratio.assign(8, 1.0);
  return t;
}

const characterize::CharacterizedGate& cellWithFarTables() {
  static const auto* cell = [] {
    auto* c = new characterize::CharacterizedGate();
    c->gate = model::makeGate(testutil::nandSpec(2), 0.05);
    model::GateSimulator sim(c->gate);
    c->singles = std::make_unique<model::SingleInputModelSet>(
        model::SingleInputModelSet::characterizeAll(sim,
                                                    {100e-12, 600e-12}));
    c->dual = std::make_unique<model::TabulatedDualInputModel>(*c->singles);
    for (int pin : {0, 1}) {
      for (const Edge e : {Edge::Rising, Edge::Falling}) {
        c->dual->setDelayTable(pin, e, farTable());
        c->dual->setTransitionTable(pin, e, farTable());
      }
    }
    return c;
  }();
  return *cell;
}

// Two switching inputs in close proximity: forces dual-table lookups (wide
// separations short-circuit to ratio 1 without touching the tables).
void setCloseArrivals(sta::TimingAnalyzer& ta) {
  ta.setInputArrival("a", {0.0, 100e-12, Edge::Rising});
  ta.setInputArrival("b", {20e-12, 100e-12, Edge::Rising});
}

sta::Netlist oneGateNetlist(const characterize::CharacterizedGate& cell) {
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y");
  return nl;
}

TEST(StaDegraded, MissingDualTablesFallBackToSingleInput) {
  const auto nl = oneGateNetlist(cellWithoutDuals());
  sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity);
  setCloseArrivals(ta);
  const auto degraded = counterValue("sta.delay_calc.degraded_arcs");
  const auto single = counterValue("sta.delay_calc.single_input_fallbacks");
  ta.run();
  EXPECT_EQ(ta.degradedArcs(), 1u);
  EXPECT_EQ(counterValue("sta.delay_calc.degraded_arcs") - degraded, 1u);
  EXPECT_EQ(counterValue("sta.delay_calc.single_input_fallbacks") - single,
            1u);
  const auto y = ta.arrival("y");
  ASSERT_TRUE(y.has_value());
  EXPECT_EQ(y->edge, Edge::Falling);
  EXPECT_GT(y->time, 0.0);
}

TEST(StaDegraded, StrictOptionsRethrowTyped) {
  const auto nl = oneGateNetlist(cellWithoutDuals());
  sta::DelayCalcOptions strict;
  strict.allowDegraded = false;
  sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity, strict);
  setCloseArrivals(ta);
  try {
    ta.run();
    FAIL() << "expected missing-table failure";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::TableMissing);
  }
}

TEST(StaDegraded, DistrustedClampDegradesArc) {
  const auto nl = oneGateNetlist(cellWithFarTables());
  // Default options tolerate any clamp: the arc completes at full quality.
  sta::TimingAnalyzer tolerant(nl, sta::DelayMode::Proximity);
  setCloseArrivals(tolerant);
  const auto clamped = counterValue("sta.delay_calc.clamped_arcs");
  tolerant.run();
  EXPECT_EQ(tolerant.degradedArcs(), 0u);
  EXPECT_GE(counterValue("sta.delay_calc.clamped_arcs") - clamped, 1u);

  // A tight clamp budget rejects the extrapolated lookup and degrades.
  sta::DelayCalcOptions picky;
  picky.maxClampDistance = 0.5;
  sta::TimingAnalyzer strict(nl, sta::DelayMode::Proximity, picky);
  setCloseArrivals(strict);
  strict.run();
  EXPECT_EQ(strict.degradedArcs(), 1u);
  EXPECT_TRUE(strict.arrival("y").has_value());
}

TEST(DualModel, MissingTableThrowsTypedAndClampStatsTrack) {
  model::DualQuery q;
  q.refPin = 0;
  q.otherPin = 1;
  q.edge = Edge::Rising;
  q.tauRef = 100e-12;
  q.tauOther = 100e-12;
  q.sep = 0.0;  // inside the proximity window, so the table IS consulted

  const auto missing = counterValue("model.dual.missing_tables");
  try {
    cellWithoutDuals().dual->delayRatio(q);
    FAIL() << "expected missing-table failure";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::TableMissing);
    EXPECT_EQ(e.diagnostic().pin, 0);
  }
  EXPECT_EQ(counterValue("model.dual.missing_tables") - missing, 1u);

  const auto& far = cellWithFarTables();
  far.dual->resetClampStats();
  const auto clamps = counterValue("model.dual.clamped_lookups");
  const double r = far.dual->delayRatio(q);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(far.dual->lastClampDistance(), 0.5);
  EXPECT_EQ(far.dual->clampStats().lookups, 1u);
  EXPECT_EQ(far.dual->clampStats().clamped, 1u);
  EXPECT_GT(far.dual->clampStats().maxDistance, 0.5);
  EXPECT_EQ(counterValue("model.dual.clamped_lookups") - clamps, 1u);
}

}  // namespace

#endif  // PROX_ENABLE_FAULT_INJECTION
