#pragma once
// Shared helpers for the test suite: reduced characterization configs (to
// keep test runtime low) and per-binary cached characterized gates.

#include "characterize/characterize.hpp"

namespace prox::testutil {

/// A characterization config with coarser grids than the production default;
/// accuracy is lower but every structural property still holds.
inline characterize::CharacterizationConfig fastConfig() {
  characterize::CharacterizationConfig c;
  c.tauGrid = {50e-12, 200e-12, 700e-12, 2200e-12};
  c.dualTauIndices = {0, 1, 2, 3};
  c.vGrid = {0.1, 0.3, 1.0, 3.0, 8.0};
  c.wGrid = {-2.0, -1.0, -0.5, 0.0, 0.3, 0.6, 1.0};
  c.vGridTransition = {0.1, 0.3, 1.0, 3.0, 12.0};
  c.wGridTransition = {-2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 6.0};
  c.vtcStep = 0.02;
  return c;
}

inline cells::CellSpec nandSpec(int fanin) {
  cells::CellSpec s;
  s.type = cells::GateType::Nand;
  s.fanin = fanin;
  return s;
}

inline cells::CellSpec norSpec(int fanin) {
  cells::CellSpec s;
  s.type = cells::GateType::Nor;
  s.fanin = fanin;
  return s;
}

inline cells::CellSpec invSpec() {
  cells::CellSpec s;
  s.type = cells::GateType::Inverter;
  s.fanin = 1;
  return s;
}

/// Cached characterized NAND2 (fast config).  Characterized once per binary.
inline const characterize::CharacterizedGate& nand2Model() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeGate(nandSpec(2), fastConfig());
  return g;
}

/// Cached characterized NAND3 (fast config).
inline const characterize::CharacterizedGate& nand3Model() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeGate(nandSpec(3), fastConfig());
  return g;
}

/// Cached Section 2 gate (thresholds only, no tables) for the NAND3.
inline const model::Gate& nand3Gate() {
  static const model::Gate g = model::makeGate(nandSpec(3), 0.02);
  return g;
}

inline const model::Gate& nand2Gate() {
  static const model::Gate g = model::makeGate(nandSpec(2), 0.02);
  return g;
}

}  // namespace prox::testutil
