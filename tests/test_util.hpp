#pragma once
// Shared helpers for the test suite: reduced characterization configs (to
// keep test runtime low), per-binary cached characterized gates, and
// single-evaluation tolerance assertions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "characterize/characterize.hpp"

namespace prox::testutil {

/// PROX_THREADS as an int when set to a positive value, else @p fallback.
/// Test configs thread this through so the ThreadSanitizer CI job can force
/// the parallel sweep path (PROX_THREADS=8) while the default tier-1 run
/// keeps the serial legacy path.
inline int envThreads(int fallback = 1) {
  const char* env = std::getenv("PROX_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  const int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

/// A characterization config with coarser grids than the production default;
/// accuracy is lower but every structural property still holds.
inline characterize::CharacterizationConfig fastConfig() {
  characterize::CharacterizationConfig c;
  c.tauGrid = {50e-12, 200e-12, 700e-12, 2200e-12};
  c.dualTauIndices = {0, 1, 2, 3};
  c.vGrid = {0.1, 0.3, 1.0, 3.0, 8.0};
  c.wGrid = {-2.0, -1.0, -0.5, 0.0, 0.3, 0.6, 1.0};
  c.vGridTransition = {0.1, 0.3, 1.0, 3.0, 12.0};
  c.wGridTransition = {-2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 6.0};
  c.vtcStep = 0.02;
  c.threads = envThreads(1);
  return c;
}

inline cells::CellSpec nandSpec(int fanin) {
  cells::CellSpec s;
  s.type = cells::GateType::Nand;
  s.fanin = fanin;
  return s;
}

inline cells::CellSpec norSpec(int fanin) {
  cells::CellSpec s;
  s.type = cells::GateType::Nor;
  s.fanin = fanin;
  return s;
}

inline cells::CellSpec invSpec() {
  cells::CellSpec s;
  s.type = cells::GateType::Inverter;
  s.fanin = 1;
  return s;
}

/// Cached characterized NAND2 (fast config).  Characterized once per binary.
inline const characterize::CharacterizedGate& nand2Model() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeGate(nandSpec(2), fastConfig());
  return g;
}

/// Cached characterized NAND3 (fast config).
inline const characterize::CharacterizedGate& nand3Model() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeGate(nandSpec(3), fastConfig());
  return g;
}

/// Cached Section 2 gate (thresholds only, no tables) for the NAND3.
inline const model::Gate& nand3Gate() {
  static const model::Gate g = model::makeGate(nandSpec(3), 0.02);
  return g;
}

inline const model::Gate& nand2Gate() {
  static const model::Gate g = model::makeGate(nandSpec(2), 0.02);
  return g;
}

// ---------------------------------------------------------------------------
// Tolerance assertions.  These are predicate-formatters driven through
// gtest's {EXPECT,ASSERT}_PRED_FORMAT3, so every argument expression is
// evaluated exactly once (the macro binds each to a parameter before the
// formatter runs) -- safe for arguments with side effects such as
// `nextSample()` or counter increments, unlike naive `#define NEAR(a,b,t)
// EXPECT_LE(std::fabs((a)-(b)), (t))` helpers that re-expand the text.
// NaN/Inf differences always fail.  See test_util_test.cpp for the
// self-test.

/// |actual - expected| <= tol.
inline ::testing::AssertionResult AbsNear(const char* actualExpr,
                                          const char* expectedExpr,
                                          const char* tolExpr, double actual,
                                          double expected, double tol) {
  const double diff = std::fabs(actual - expected);
  if (std::isfinite(diff) && diff <= tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << actualExpr << " = " << actual << " vs " << expectedExpr << " = "
         << expected << ": |difference| = " << diff << " exceeds " << tolExpr
         << " = " << tol;
}

/// |actual - expected| <= tol * max(|expected|, DBL_MIN-guard).  The guard
/// makes an exact-zero expectation behave like an absolute comparison
/// against tol instead of demanding bit equality.
inline ::testing::AssertionResult RelNear(const char* actualExpr,
                                          const char* expectedExpr,
                                          const char* tolExpr, double actual,
                                          double expected, double tol) {
  const double diff = std::fabs(actual - expected);
  const double scale = std::max(std::fabs(expected), 1.0e-300);
  if (std::isfinite(diff) && diff <= tol * scale) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << actualExpr << " = " << actual << " vs " << expectedExpr << " = "
         << expected << ": relative difference = " << diff / scale
         << " exceeds " << tolExpr << " = " << tol;
}

}  // namespace prox::testutil

/// Single-evaluation |actual - expected| <= tol assertions.
#define PROX_EXPECT_ABS_NEAR(actual, expected, tol) \
  EXPECT_PRED_FORMAT3(::prox::testutil::AbsNear, actual, expected, tol)
#define PROX_ASSERT_ABS_NEAR(actual, expected, tol) \
  ASSERT_PRED_FORMAT3(::prox::testutil::AbsNear, actual, expected, tol)

/// Single-evaluation relative-tolerance assertions.
#define PROX_EXPECT_REL_NEAR(actual, expected, tol) \
  EXPECT_PRED_FORMAT3(::prox::testutil::RelNear, actual, expected, tol)
#define PROX_ASSERT_REL_NEAR(actual, expected, tol) \
  ASSERT_PRED_FORMAT3(::prox::testutil::RelNear, actual, expected, tol)
