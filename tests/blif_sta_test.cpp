// Golden end-to-end BLIF -> STA check: a checked-in 30-gate benchmark
// (tests/data/golden30.blif, 5 layers x 6 gates) analyzed in both delay
// modes against hand-verified arrivals.
//
// Verification strategy:
//   * Outputs o0 and o4 are pure 5-stage inverter chains (from inputs a
//     and d).  The test recomputes their arrival by explicit single-input
//     table composition -- independent of the STA engine's gate-evaluation
//     and levelization machinery -- and requires an exact match in BOTH
//     modes (a single switching pin leaves nothing for proximity to do).
//   * The multi-input outputs (NAND/NOR stacks with close arrivals) are
//     pinned to golden constants for each mode, and proximity must differ
//     from classic exactly where the paper predicts: everywhere at least
//     one gate on the path saw temporally proximate transitions.
//
// The analytic gate library is built from exactly-representable rational
// constants (no libm), so these doubles are reproducible across toolchains
// and the tolerances below can be attosecond-tight.

#include <gtest/gtest.h>

#include <string>

#include "sta/blif.hpp"
#include "sta/timing_graph.hpp"

namespace {

using namespace prox;
using sta::DelayMode;
using wave::Edge;

constexpr double kTau0 = 200e-12;  // primary-input transition time

const sta::GateLibrary& library() {
  static const sta::GateLibrary lib = sta::analyticLibrary();
  return lib;
}

std::string goldenPath() {
  return std::string(PROX_TEST_DATA_DIR) + "/golden30.blif";
}

sta::TimingAnalyzer analyze(const sta::Netlist& nl, DelayMode mode) {
  sta::TimingAnalyzer ta(nl, mode);
  ta.setInputArrival("a", {0.0, kTau0, Edge::Rising});
  ta.setInputArrival("b", {20e-12, kTau0, Edge::Rising});
  ta.setInputArrival("c", {40e-12, kTau0, Edge::Rising});
  ta.setInputArrival("d", {60e-12, kTau0, Edge::Rising});
  ta.run();
  return ta;
}

/// Arrival of a k-stage inverter chain whose input rises at @p t0, by
/// direct composition of the characterized single-input tables.
sta::Arrival inverterChain(double t0, int stages) {
  const auto* inv = library().find(cells::GateType::Inverter, 1);
  EXPECT_NE(inv, nullptr);
  sta::Arrival a{t0, kTau0, Edge::Rising};
  for (int i = 0; i < stages; ++i) {
    const auto& m = inv->singles->at(0, a.edge);
    a = {a.time + m.delay(a.slope), m.transition(a.slope),
         a.edge == Edge::Rising ? Edge::Falling : Edge::Rising};
  }
  return a;
}

class BlifStaGolden : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    netlist_ = new sta::Netlist;
    const auto summary = sta::readBlifFile(goldenPath(), library(), netlist_);
    ASSERT_EQ(summary.modelName, "golden30");
    ASSERT_EQ(summary.gates, 30u);
    ASSERT_EQ(summary.inputs.size(), 4u);
    ASSERT_EQ(summary.outputs.size(), 6u);
  }
  static void TearDownTestSuite() {
    delete netlist_;
    netlist_ = nullptr;
  }
  static sta::Netlist* netlist_;
};

sta::Netlist* BlifStaGolden::netlist_ = nullptr;

TEST_F(BlifStaGolden, StructureLevelizesToFiveLayers) {
  EXPECT_TRUE(netlist_->validate().empty());
  const auto res = netlist_->levelize(sta::StructuralPolicy::Reject);
  EXPECT_EQ(res.levelCount(), 5u);
  EXPECT_EQ(res.order.size(), 30u);
}

TEST_F(BlifStaGolden, InverterChainsMatchHandComposition) {
  // o0: a -> x0 -> y0 -> z0 -> w0 -> o0.  o4: the same chain from d.
  const sta::Arrival expectA = inverterChain(0.0, 5);
  const sta::Arrival expectD = inverterChain(60e-12, 5);
  EXPECT_EQ(expectA.edge, Edge::Falling);  // odd number of inversions
  // The chains differ only by the 60 ps input stagger.
  EXPECT_DOUBLE_EQ(expectD.time - expectA.time, 60e-12);
  EXPECT_DOUBLE_EQ(expectD.slope, expectA.slope);

  for (DelayMode mode : {DelayMode::Proximity, DelayMode::Classic}) {
    const auto ta = analyze(*netlist_, mode);
    const auto o0 = ta.arrival("o0");
    const auto o4 = ta.arrival("o4");
    ASSERT_TRUE(o0 && o4);
    EXPECT_DOUBLE_EQ(o0->time, expectA.time);
    EXPECT_DOUBLE_EQ(o0->slope, expectA.slope);
    EXPECT_EQ(o0->edge, expectA.edge);
    EXPECT_DOUBLE_EQ(o4->time, expectD.time);
    EXPECT_DOUBLE_EQ(o4->slope, expectD.slope);
  }
}

TEST_F(BlifStaGolden, ProximityArrivalsMatchGolden) {
  const auto ta = analyze(*netlist_, DelayMode::Proximity);
  struct Expect {
    const char* net;
    double time, slope;
  };
  const Expect golden[] = {
      {"o0", 5.970785647630692e-10, 1.1832688376307487e-10},
      {"o1", 1.4088389386325905e-09, 3.1652704089757202e-10},
      {"o2", 8.9992617119783561e-10, 2.5781407092108133e-10},
      {"o3", 1.3632745306210709e-09, 3.1770863949922622e-10},
      {"o4", 6.570785647630692e-10, 1.1832688376307487e-10},
      {"o5", 7.2525749898049986e-10, 2.1406458948570155e-10},
  };
  for (const auto& e : golden) {
    const auto a = ta.arrival(e.net);
    ASSERT_TRUE(a.has_value()) << e.net;
    EXPECT_NEAR(a->time, e.time, 1e-18) << e.net;
    EXPECT_NEAR(a->slope, e.slope, 1e-18) << e.net;
    EXPECT_EQ(a->edge, Edge::Falling) << e.net;  // 5 inverting layers
  }
}

TEST_F(BlifStaGolden, ClassicArrivalsMatchGolden) {
  const auto ta = analyze(*netlist_, DelayMode::Classic);
  struct Expect {
    const char* net;
    double time, slope;
  };
  const Expect golden[] = {
      {"o0", 5.970785647630692e-10, 1.1832688376307487e-10},
      {"o1", 1.3139482814153325e-09, 2.5780788515294259e-10},
      {"o2", 8.9358935238793489e-10, 2.3247790220193562e-10},
      {"o3", 1.261002061178442e-09, 2.4202603520825508e-10},
      {"o4", 6.570785647630692e-10, 1.1832688376307487e-10},
      {"o5", 7.2525749898049986e-10, 1.9782265269896012e-10},
  };
  for (const auto& e : golden) {
    const auto a = ta.arrival(e.net);
    ASSERT_TRUE(a.has_value()) << e.net;
    EXPECT_NEAR(a->time, e.time, 1e-18) << e.net;
    EXPECT_NEAR(a->slope, e.slope, 1e-18) << e.net;
    EXPECT_EQ(a->edge, Edge::Falling) << e.net;
  }
}

TEST_F(BlifStaGolden, ProximityDisagreesWithClassicOnStackedPaths) {
  const auto prox = analyze(*netlist_, DelayMode::Proximity);
  const auto classic = analyze(*netlist_, DelayMode::Classic);
  // Multi-input paths with close arrivals: the modes must disagree.  The
  // NAND-heavy paths (o1, o3) see series-stack slowdown, so proximity is
  // later than classic.
  for (const char* net : {"o1", "o2", "o3"}) {
    const auto p = prox.arrival(net);
    const auto c = classic.arrival(net);
    ASSERT_TRUE(p && c) << net;
    EXPECT_NE(p->time, c->time) << net;
  }
  EXPECT_GT(prox.arrival("o1")->time, classic.arrival("o1")->time);
  EXPECT_GT(prox.arrival("o3")->time, classic.arrival("o3")->time);
  // o5's final NOR sees its inputs far apart (delay window closed), but the
  // wider transition window still reshapes the slope.
  EXPECT_DOUBLE_EQ(prox.arrival("o5")->time, classic.arrival("o5")->time);
  EXPECT_GT(prox.arrival("o5")->slope, classic.arrival("o5")->slope);
}

}  // namespace
