// Technology-independence tests: the whole flow (thresholds, proximity
// physics, characterization round trips) re-runs unchanged on the 3.3 V
// alpha-power-law process -- the paper's "not limited to [one] technology"
// claim and its CGaAs future-work direction, exercised with a second
// simulated process.

#include <gtest/gtest.h>

#include <sstream>

#include "characterize/serialize.hpp"
#include "spice/netlist.hpp"
#include "spice/op.hpp"
#include "test_util.hpp"
#include "vtc/thresholds.hpp"

namespace {

using namespace prox;
using wave::Edge;

cells::CellSpec submicronNand(int fanin) {
  cells::CellSpec s;
  s.type = cells::GateType::Nand;
  s.fanin = fanin;
  s.tech = cells::Technology::submicron3v();
  s.wn = 3e-6;
  s.wp = 4e-6;
  s.loadCap = 60e-15;
  return s;
}

TEST(Submicron, TechnologyShape) {
  const auto t = cells::Technology::submicron3v();
  EXPECT_DOUBLE_EQ(t.vdd, 3.3);
  EXPECT_EQ(t.nmos.equation, spice::MosEquation::AlphaPower);
  EXPECT_EQ(t.pmos.equation, spice::MosEquation::AlphaPower);
  EXPECT_LT(t.nmos.alpha, 2.0);  // velocity saturated
}

TEST(Submicron, Nand2TruthTable) {
  const auto spec = submicronNand(2);
  for (unsigned mask = 0; mask < 4; ++mask) {
    spice::Circuit ckt;
    const auto nets = cells::buildCell(ckt, spec, "x0");
    for (int k = 0; k < 2; ++k) {
      ckt.add<spice::VoltageSource>("vin" + std::to_string(k), nets.inputs[k],
                                    spice::kGround,
                                    (mask >> k) & 1u ? 3.3 : 0.0);
    }
    const auto x = spice::operatingPoint(ckt);
    ASSERT_TRUE(x.has_value()) << "mask " << mask;
    const double vout = ckt.nodeVoltage(*x, nets.out);
    if (mask == 3u) {
      EXPECT_LT(vout, 0.05);
    } else {
      EXPECT_GT(vout, 3.25);
    }
  }
}

TEST(Submicron, ThresholdRuleHolds) {
  const auto rep = vtc::chooseThresholds(submicronNand(3), 0.02);
  EXPECT_EQ(rep.curves.size(), 7u);
  for (const auto& c : rep.curves) {
    EXPECT_LT(rep.chosen.vil, c.points.vm);
    EXPECT_GT(rep.chosen.vih, c.points.vm);
  }
  // Scaled sensibly inside the 3.3 V swing.
  EXPECT_GT(rep.chosen.vil, 0.3);
  EXPECT_LT(rep.chosen.vih, 3.2);
}

TEST(Submicron, ProximityDirectionalPhysics) {
  // Falling pair speeds the output up, rising pair slows it down -- the
  // Figure 1-2 signs survive the device-equation change.
  const auto gate = model::makeGate(submicronNand(2), 0.02);
  model::GateSimulator sim(gate);

  const auto fallClose = sim.simulate({{0, Edge::Falling, 0.0, 300e-12},
                                       {1, Edge::Falling, 0.0, 100e-12}}, 0);
  const auto fallAlone = sim.simulateSingle({0, Edge::Falling, 0.0, 300e-12});
  ASSERT_TRUE(fallClose.delay && fallAlone.delay);
  EXPECT_LT(*fallClose.delay, *fallAlone.delay);

  const auto riseClose = sim.simulate({{0, Edge::Rising, 0.0, 300e-12},
                                       {1, Edge::Rising, 0.0, 300e-12}}, 0);
  const auto riseAlone = sim.simulateSingle({0, Edge::Rising, 0.0, 300e-12});
  ASSERT_TRUE(riseClose.delay && riseAlone.delay);
  EXPECT_GT(*riseClose.delay, *riseAlone.delay);
}

TEST(Submicron, CharacterizeAndQuery) {
  characterize::CharacterizationConfig cfg = testutil::fastConfig();
  const auto cg = characterize::characterizeGate(submicronNand(2), cfg);
  const auto calc = cg.calculator();
  const auto r = calc.compute({{0, Edge::Rising, 0.0, 200e-12},
                               {1, Edge::Rising, 30e-12, 150e-12}});
  EXPECT_GT(r.delay, 0.0);
  EXPECT_GT(r.transitionTime, 0.0);

  // Serialization round trip preserves the alpha-power parameters.
  std::stringstream ss;
  characterize::saveGateModel(cg, ss);
  const auto loaded = characterize::loadGateModel(ss);
  EXPECT_EQ(loaded.gate.spec.tech.nmos.equation, spice::MosEquation::AlphaPower);
  EXPECT_DOUBLE_EQ(loaded.gate.spec.tech.nmos.alpha,
                   cg.gate.spec.tech.nmos.alpha);
  const auto r2 = loaded.calculator().compute({{0, Edge::Rising, 0.0, 200e-12},
                                               {1, Edge::Rising, 30e-12, 150e-12}});
  EXPECT_DOUBLE_EQ(r.delay, r2.delay);
}

TEST(Submicron, NetlistLevel14Model) {
  const auto nl = spice::parseNetlist(R"(
.model an NMOS LEVEL=14 ALPHA=1.3 PC=55u PV=0.9 VTO=0.55
M1 d g 0 0 an W=2u L=0.35u
V1 d 0 3.3
V2 g 0 3.3
)");
  const auto* m = nl.findAs<spice::Mosfet>("m1");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->params().equation, spice::MosEquation::AlphaPower);
  EXPECT_DOUBLE_EQ(m->params().alpha, 1.3);
  spice::Circuit& ckt = const_cast<spice::Circuit&>(nl.circuit);
  const auto x = spice::operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_GT(m->drainCurrent(ckt, *x), 1e-5);
}

TEST(Submicron, NetlistRejectsUnknownLevel) {
  EXPECT_THROW(spice::parseNetlist(".model bad NMOS LEVEL=7\n"),
               std::runtime_error);
}

}  // namespace
