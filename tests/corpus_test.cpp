// Replays every seed in tests/corpus/ through its parser, asserting the
// ingestion contract the fuzz harnesses enforce: each input either parses
// successfully or throws support::DiagnosticError.  Anything else -- a
// foreign exception type, a crash, a sanitizer report (this test runs in
// the ASan/UBSan CI job) -- is a contract violation.  Known-good seeds
// (valid.journal, minimal_v1/v3.prox, report_v2.json, nand3.sp) must load;
// known-bad seeds must be rejected with the expected typed code.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cells/corner.hpp"
#include "characterize/serialize.hpp"
#include "fleet/bundle.hpp"
#include "obs/report.hpp"
#include "spice/netlist.hpp"
#include "sta/blif.hpp"
#include "support/diagnostic.hpp"
#include "support/journal.hpp"

namespace fs = std::filesystem;
using prox::support::DiagnosticError;

namespace {

std::string readAll(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "cannot open corpus file " << p;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::vector<fs::path> corpusFiles(const char* subdir) {
  const fs::path dir = fs::path(PROX_CORPUS_DIR) / subdir;
  EXPECT_TRUE(fs::is_directory(dir)) << "missing corpus dir " << dir;
  std::vector<fs::path> files;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << "empty corpus dir " << dir;
  return files;
}

/// Runs @p parse on every file of @p subdir; success and DiagnosticError
/// both satisfy the contract, any other exception fails the test.  Returns
/// the set of file names that parsed cleanly (for accept/reject spot
/// checks).
std::vector<std::string> replayAll(
    const char* subdir, const std::function<void(const std::string&)>& parse) {
  std::vector<std::string> accepted;
  for (const fs::path& p : corpusFiles(subdir)) {
    const std::string bytes = readAll(p);
    try {
      parse(bytes);
      accepted.push_back(p.filename().string());
    } catch (const DiagnosticError&) {
      // Typed rejection: within contract.
    } catch (const std::exception& e) {
      ADD_FAILURE() << p << " escaped with foreign exception type: "
                    << e.what();
    }
  }
  return accepted;
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

TEST(CorpusTest, SpiceSeedsHonorContract) {
  const auto accepted = replayAll("spice", [](const std::string& bytes) {
    prox::spice::parseNetlist(bytes);
  });
  EXPECT_TRUE(contains(accepted, "nand3.sp"));
  EXPECT_FALSE(contains(accepted, "overflow_suffix.sp"));
  EXPECT_FALSE(contains(accepted, "underflow_suffix.sp"));
}

TEST(CorpusTest, ProxSeedsHonorContract) {
  const auto accepted = replayAll("prox", [](const std::string& bytes) {
    std::istringstream is(bytes);
    prox::characterize::loadGateModel(is);
  });
  EXPECT_TRUE(contains(accepted, "minimal_v1.prox"));
  EXPECT_TRUE(contains(accepted, "minimal_v3.prox"));
  EXPECT_FALSE(contains(accepted, "bitflip_v3.prox"));  // CRC must catch it
  EXPECT_FALSE(contains(accepted, "huge_row_count.prox"));
  EXPECT_FALSE(contains(accepted, "huge_fanin.prox"));
  EXPECT_FALSE(contains(accepted, "overlong_token.prox"));
}

TEST(CorpusTest, JournalSeedsHonorContract) {
  const auto accepted = replayAll("journal", [](const std::string& bytes) {
    std::istringstream is(bytes);
    prox::support::Journal::loadStream(is, "<corpus>");
  });
  EXPECT_TRUE(contains(accepted, "valid.journal"));
  // Tail damage loads by design (crash contract) -- the point of the
  // huge_count seed is that the bogus length is rejected by arithmetic, not
  // honoured by the allocator; ASan would flag the multi-GB resize.
  EXPECT_TRUE(contains(accepted, "huge_count.journal"));
  EXPECT_FALSE(contains(accepted, "bad_header.journal"));
}

TEST(CorpusTest, JournalHugeCountDropsRecordAsTornTail) {
  std::istringstream is(
      readAll(fs::path(PROX_CORPUS_DIR) / "journal" / "huge_count.journal"));
  const auto contents = prox::support::Journal::loadStream(is, "<corpus>");
  ASSERT_TRUE(contents.has_value());
  EXPECT_TRUE(contents->truncatedTail);
  EXPECT_TRUE(contents->records.empty());
}

TEST(CorpusTest, BlifSeedsHonorContract) {
  static const prox::sta::GateLibrary lib = prox::sta::analyticLibrary();
  const auto accepted = replayAll("blif", [](const std::string& bytes) {
    prox::sta::Netlist nl;
    prox::sta::readBlifString(bytes, lib, &nl);
  });
  EXPECT_TRUE(contains(accepted, "mini_bench.blif"));
  EXPECT_FALSE(contains(accepted, "truncated_card.blif"));
  EXPECT_FALSE(contains(accepted, "unterminated_names.blif"));
  EXPECT_FALSE(contains(accepted, "duplicate_model.blif"));
  EXPECT_FALSE(contains(accepted, "huge_fanin.blif"));
  EXPECT_FALSE(contains(accepted, "nonascii_junk.blif"));
}

TEST(CorpusTest, CornersSeedsHonorContract) {
  const auto accepted = replayAll("corners", [](const std::string& bytes) {
    prox::cells::parseCornersFile(bytes, "<corpus>");
  });
  EXPECT_TRUE(contains(accepted, "default.corners"));
  EXPECT_FALSE(contains(accepted, "bad_magic.corners"));
  EXPECT_FALSE(contains(accepted, "huge_scale.corners"));
  EXPECT_FALSE(contains(accepted, "dup_name.corners"));
}

TEST(CorpusTest, BundleSeedsHonorContract) {
  const auto accepted = replayAll("bundle", [](const std::string& bytes) {
    prox::fleet::parseBundle(bytes, "<corpus>");
  });
  // A bundle of nothing but holes is valid -- quarantine is data, not error.
  EXPECT_TRUE(contains(accepted, "holes_only.proxbundle"));
  EXPECT_FALSE(contains(accepted, "tampered_line.proxbundle"));
  EXPECT_FALSE(contains(accepted, "truncated.proxbundle"));
  // The bogus corner count must be rejected by arithmetic, not allocated.
  EXPECT_FALSE(contains(accepted, "huge_count.proxbundle"));
}

TEST(CorpusTest, JsonSeedsHonorContract) {
  const auto accepted = replayAll("json", [](const std::string& bytes) {
    prox::obs::parseJson(bytes);
  });
  EXPECT_TRUE(contains(accepted, "report_v2.json"));
  EXPECT_TRUE(contains(accepted, "report_v1.json"));
  EXPECT_FALSE(contains(accepted, "deep_nesting.json"));
  EXPECT_FALSE(contains(accepted, "huge_exponent.json"));
  EXPECT_FALSE(contains(accepted, "bad_unicode_escape.json"));
}
