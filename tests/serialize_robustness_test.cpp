// Robustness corpus for the .prox serialization: a synthetic package is
// saved once and then corrupted by string surgery -- truncation, non-finite
// entries, non-ascending grids, bad pull-network expressions, unknown
// section tags -- asserting that every corruption dies with a *typed*
// ParseError diagnostic carrying the offending source line, never a silent
// mis-load.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "characterize/serialize.hpp"
#include "obs/registry.hpp"
#include "support/diagnostic.hpp"

namespace {

using namespace prox;
using support::DiagnosticError;
using support::StatusCode;
using wave::Edge;

// All literal values are exactly representable in binary so the
// setprecision(17) text they serialize to is predictable ("1.5", "0.625"),
// making the find/replace surgery below unambiguous.
model::DualTable syntheticTable() {
  model::DualTable t;
  t.u = {1.5, 2.5};
  t.v = {0.5, 1.5};
  t.w = {-1.0, 1.0};
  t.ratio = {0.5, 0.625, 0.75, 0.875, 1.0, 1.125, 1.25, 1.375};
  return t;
}

characterize::CharacterizedGate syntheticCell() {
  characterize::CharacterizedGate g;
  g.gate.spec.type = cells::GateType::Inverter;
  g.gate.spec.fanin = 1;
  g.gate.thresholds = {1.5, 3.5};
  g.singles = std::make_unique<model::SingleInputModelSet>();
  for (const Edge e : {Edge::Rising, Edge::Falling}) {
    std::vector<model::SingleInputModel::Sample> table = {
        {100e-12, 150e-12, 200e-12}, {600e-12, 300e-12, 500e-12}};
    g.singles->set(
        model::SingleInputModel(0, e, std::move(table), 100e-15, 1.0, 5.0));
  }
  g.dual = std::make_unique<model::TabulatedDualInputModel>(*g.singles);
  for (const Edge e : {Edge::Rising, Edge::Falling}) {
    g.dual->setDelayTable(0, e, syntheticTable());
    g.dual->setTransitionTable(0, e, syntheticTable());
  }
  return g;
}

const std::string& baselineText() {
  static const std::string* text = [] {
    std::ostringstream os;
    characterize::saveGateModel(syntheticCell(), os);
    return new std::string(os.str());
  }();
  return *text;
}

// First-occurrence replacement; the test fails loudly when the pattern is
// not found (e.g. after a format change) instead of silently testing nothing.
std::string replaced(const std::string& from, const std::string& to) {
  std::string text = baselineText();
  const auto pos = text.find(from);
  if (pos == std::string::npos) {
    ADD_FAILURE() << "surgery pattern not found: " << from;
    return text;
  }
  return text.replace(pos, from.size(), to);
}

// 1-based line number where @p pattern starts inside @p text.
int lineOf(const std::string& text, const std::string& pattern) {
  const auto pos = text.find(pattern);
  if (pos == std::string::npos) return -1;
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + pos, '\n'));
}

support::Diagnostic loadExpectingParseError(const std::string& text) {
  std::istringstream is(text);
  try {
    characterize::loadGateModel(is);
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::ParseError);
    EXPECT_EQ(e.diagnostic().site, "characterize.serialize");
    return e.diagnostic();
  }
  ADD_FAILURE() << "expected a typed parse error";
  return {};
}

TEST(SerializeRobustness, RoundTripPreservesEverything) {
  std::istringstream is(baselineText());
  const auto g = characterize::loadGateModel(is);
  EXPECT_EQ(g.gate.spec.type, cells::GateType::Inverter);
  EXPECT_DOUBLE_EQ(g.gate.thresholds.vil, 1.5);
  EXPECT_DOUBLE_EQ(g.gate.thresholds.vih, 3.5);
  const auto& t = g.dual->delayTable(0, Edge::Rising);
  EXPECT_EQ(t.u, syntheticTable().u);
  EXPECT_EQ(t.ratio, syntheticTable().ratio);
  EXPECT_EQ(t.healedCount(), 0u);
  EXPECT_DOUBLE_EQ(g.singles->at(0, Edge::Rising).delay(100e-12), 150e-12);
}

TEST(SerializeRobustness, HealedMarksSurviveTheRoundTrip) {
  auto g = syntheticCell();
  auto t = syntheticTable();
  t.markHealed(1, 0, 1);
  g.dual->setDelayTable(0, Edge::Rising, t);
  std::ostringstream os;
  characterize::saveGateModel(g, os);
  EXPECT_NE(os.str().find("healed 1"), std::string::npos);

  std::istringstream is(os.str());
  const auto back = characterize::loadGateModel(is);
  const auto& dt = back.dual->delayTable(0, Edge::Rising);
  EXPECT_EQ(dt.healedCount(), 1u);
  EXPECT_TRUE(dt.isHealed(1, 0, 1));
  EXPECT_FALSE(dt.isHealed(0, 0, 0));
  // The other tables were written without a healed section.
  EXPECT_EQ(back.dual->transitionTable(0, Edge::Rising).healedCount(), 0u);
}

// Renders the baseline as a pre-checksum legacy file: version token dropped
// to @p version and the trailing "crc32 <hex>" line removed.
std::string legacyText(const char* version) {
  std::string text =
      replaced("proxdelay-model 3", std::string("proxdelay-model ") + version);
  const auto pos = text.find("crc32 ");
  if (pos == std::string::npos) {
    ADD_FAILURE() << "no crc32 line in baseline";
    return text;
  }
  return text.erase(pos);
}

TEST(SerializeRobustness, VersionOneFilesStillLoad) {
  std::istringstream is(legacyText("1"));
  const auto g = characterize::loadGateModel(is);
  EXPECT_EQ(g.dual->delayTable(0, Edge::Falling).ratio, syntheticTable().ratio);
}

TEST(SerializeRobustness, VersionTwoFilesWithoutChecksumStillLoad) {
  std::istringstream is(legacyText("2"));
  const auto g = characterize::loadGateModel(is);
  EXPECT_EQ(g.dual->delayTable(0, Edge::Rising).ratio, syntheticTable().ratio);
}

TEST(SerializeRobustness, UnknownVersionIsRejectedOnLineOne) {
  const auto d =
      loadExpectingParseError(replaced("proxdelay-model 3", "proxdelay-model 99"));
  EXPECT_NE(d.message.find("bad header"), std::string::npos);
  EXPECT_EQ(d.line, 1);
}

TEST(SerializeRobustness, CorruptedValueFailsTheChecksum) {
  // "0.625" -> "0.635" parses cleanly (finite, in-range, right count), so
  // only the token-stream CRC can catch this single-digit bit rot.
  const auto d = loadExpectingParseError(replaced("0.625", "0.635"));
  EXPECT_NE(d.message.find("crc32 mismatch"), std::string::npos);
}

TEST(SerializeRobustness, MissingChecksumOnVersionThreeIsRejected) {
  std::string text = baselineText();
  const auto pos = text.find("crc32 ");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos);
  const auto d = loadExpectingParseError(text);
  EXPECT_NE(d.message.find("crc32"), std::string::npos);
}

TEST(SerializeRobustness, ChecksumIsWhitespaceLayoutInsensitive) {
  // The CRC covers the token stream, not raw bytes: collapsing every newline
  // to a space preserves the tokens, so the file still loads and verifies.
  std::string text = baselineText();
  std::replace(text.begin(), text.end(), '\n', ' ');
  std::istringstream is(text);
  const auto g = characterize::loadGateModel(is);
  EXPECT_EQ(g.dual->delayTable(0, Edge::Rising).ratio, syntheticTable().ratio);
}

TEST(SerializeRobustness, ChecksumMismatchesAreCounted) {
  const auto before =
      obs::counter("characterize.serialize.crc_mismatches").value();
  loadExpectingParseError(replaced("1.125", "1.135"));
  EXPECT_EQ(
      obs::counter("characterize.serialize.crc_mismatches").value() - before,
      1u);
}

TEST(SerializeRobustness, TruncatedFileIsATypedParseError) {
  const std::string& full = baselineText();
  const auto d = loadExpectingParseError(full.substr(0, full.size() / 2));
  EXPECT_GT(d.line, 1);
}

TEST(SerializeRobustness, NanThresholdIsRejected) {
  const std::string text = replaced("thresholds 1.5", "thresholds nan");
  const auto d = loadExpectingParseError(text);
  EXPECT_NE(d.message.find("non-finite"), std::string::npos);
  EXPECT_EQ(d.line, lineOf(text, "thresholds nan"));
}

TEST(SerializeRobustness, NanTableEntryIsRejected) {
  const auto d = loadExpectingParseError(replaced("0.875", "nan"));
  EXPECT_NE(d.message.find("non-finite"), std::string::npos);
  EXPECT_NE(d.message.find("ratio"), std::string::npos);
}

TEST(SerializeRobustness, NonAscendingGridIsRejected) {
  const std::string text = replaced("2 1.5 2.5", "2 2.5 1.5");
  const auto d = loadExpectingParseError(text);
  EXPECT_NE(d.message.find("not strictly ascending"), std::string::npos);
  EXPECT_EQ(d.line, lineOf(text, "2 2.5 1.5"));
}

TEST(SerializeRobustness, HealedIndexOutOfRangeIsRejected) {
  auto g = syntheticCell();
  auto t = syntheticTable();
  t.markHealed(0, 0, 0);
  g.dual->setDelayTable(0, Edge::Rising, t);
  std::ostringstream os;
  characterize::saveGateModel(g, os);
  std::string text = os.str();
  const auto pos = text.find("healed 1 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 10, "healed 1 8");  // one past the 8-entry table
  loadExpectingParseError(text);
}

TEST(SerializeRobustness, BadPullNetworkTokenIsRejected) {
  const std::string text =
      replaced("gate INV 1\n", "gate COMPLEX 2\npullnet a!b\n");
  const auto d = loadExpectingParseError(text);
  EXPECT_NE(d.message.find("pullnet"), std::string::npos);
}

TEST(SerializeRobustness, UnknownSectionTagIsRejected) {
  const std::string text = replaced("correction", "corruption");
  const auto d = loadExpectingParseError(text);
  EXPECT_NE(d.message.find("corruption"), std::string::npos);
  EXPECT_EQ(d.line, lineOf(text, "corruption"));
}

TEST(SerializeRobustness, DuplicateSingleSectionIsRejected) {
  // Turning "single 0 F" into a second "single 0 R" makes the key collide;
  // duplicate detection fires while parsing, before the CRC trailer.
  const auto d = loadExpectingParseError(replaced("single 0 F", "single 0 R"));
  EXPECT_NE(d.message.find("duplicate section 'single 0 R'"),
            std::string::npos);
}

TEST(SerializeRobustness, DuplicateDualSectionIsRejected) {
  const auto d =
      loadExpectingParseError(replaced("dualdelay 0 F", "dualdelay 0 R"));
  EXPECT_NE(d.message.find("duplicate section"), std::string::npos);
}

TEST(SerializeRobustness, OutOfRangePinIsRejected) {
  const auto d = loadExpectingParseError(replaced("single 0 R", "single 5 R"));
  EXPECT_NE(d.message.find("pin 5 outside [0, 1)"), std::string::npos);
}

TEST(SerializeRobustness, HugeGridCountIsACapRejection) {
  // A 200-byte header declaring a billion-point axis must be refused by
  // arithmetic on the declared count, not honoured by the allocator.
  const auto before =
      obs::counter("characterize.serialize.cap_rejections").value();
  const auto d =
      loadExpectingParseError(replaced("2 1.5 2.5", "999999999 1.5 2.5"));
  EXPECT_NE(d.message.find("exceeds ceiling"), std::string::npos);
  EXPECT_EQ(
      obs::counter("characterize.serialize.cap_rejections").value() - before,
      1u);
}

TEST(SerializeRobustness, NegativeCountIsRejected) {
  const auto d = loadExpectingParseError(replaced("2 1.5 2.5", "-2 1.5 2.5"));
  EXPECT_NE(d.message.find("negative count"), std::string::npos);
}

TEST(SerializeRobustness, MissingFileIsATypedIoError) {
  try {
    characterize::loadGateModelFile("/nonexistent/model.prox");
    FAIL() << "expected IoError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::IoError);
  }
}

TEST(SerializeRobustness, ParseErrorsAreCounted) {
  const auto before =
      obs::counter("characterize.serialize.parse_errors").value();
  loadExpectingParseError(replaced("correction", "corruption"));
  EXPECT_EQ(obs::counter("characterize.serialize.parse_errors").value() -
                before,
            1u);
}

}  // namespace
