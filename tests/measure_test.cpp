// Tests for the paper's measurement conventions (Section 2/3): delay,
// transition time and separation against explicit thresholds.

#include <gtest/gtest.h>

#include "waveform/measure.hpp"
#include "waveform/pwl.hpp"

namespace {

using prox::wave::Edge;
using prox::wave::Thresholds;
using prox::wave::Waveform;

const Thresholds kTh{1.0, 4.0};  // vil = 1 V, vih = 4 V, vdd = 5 V

TEST(Measure, InputRefTimeRisingUsesVil) {
  // 0 -> 5 V ramp over 1 s starting at t = 0: crosses 1 V at t = 0.2.
  const Waveform in = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const auto t = prox::wave::inputRefTime(in, Edge::Rising, kTh);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.2, 1e-12);
}

TEST(Measure, InputRefTimeFallingUsesVih) {
  // 5 -> 0 V ramp over 1 s: crosses 4 V at t = 0.2.
  const Waveform in = prox::wave::fallingRamp(0.0, 1.0, 5.0);
  const auto t = prox::wave::inputRefTime(in, Edge::Falling, kTh);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.2, 1e-12);
}

TEST(Measure, OutputRefTimeRisingUsesVih) {
  const Waveform out = prox::wave::risingRamp(2.0, 1.0, 5.0);
  const auto t = prox::wave::outputRefTime(out, Edge::Rising, kTh);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2.8, 1e-12);
}

TEST(Measure, OutputRefTimeFallingUsesVil) {
  const Waveform out = prox::wave::fallingRamp(2.0, 1.0, 5.0);
  const auto t = prox::wave::outputRefTime(out, Edge::Falling, kTh);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2.8, 1e-12);
}

TEST(Measure, OutputRefTimeTakesLastCommittedCrossing) {
  // Output dips below vil, recovers, then falls for good: the delay of
  // interest anchors on the final crossing.
  Waveform out;
  out.append(0.0, 5.0);
  out.append(1.0, 0.5);  // partial glitch below vil
  out.append(2.0, 5.0);  // recovery
  out.append(4.0, 0.0);  // committed transition
  const auto t = prox::wave::outputRefTime(out, Edge::Falling, kTh);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 2.0);
}

TEST(Measure, PropagationDelayRisingInputFallingOutput) {
  const Waveform in = prox::wave::risingRamp(0.0, 1.0, 5.0);   // ref at 0.2
  const Waveform out = prox::wave::fallingRamp(1.0, 1.0, 5.0); // ref at 1.8
  const auto d = prox::wave::propagationDelay(in, Edge::Rising, out,
                                              Edge::Falling, kTh);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 1.6, 1e-12);
}

TEST(Measure, PropagationDelayMissingCrossingIsNullopt) {
  const Waveform in = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const Waveform flat = prox::wave::constant(5.0);
  EXPECT_FALSE(prox::wave::propagationDelay(in, Edge::Rising, flat,
                                            Edge::Falling, kTh)
                   .has_value());
  EXPECT_FALSE(prox::wave::propagationDelay(flat, Edge::Rising, in,
                                            Edge::Rising, kTh)
                   .has_value());
}

TEST(Measure, TransitionTimeBetweenThresholds) {
  // Full-swing rise over 1 s: vil at 0.2, vih at 0.8 -> transition 0.6.
  const Waveform out = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const auto tt = prox::wave::transitionTime(out, Edge::Rising, kTh);
  ASSERT_TRUE(tt.has_value());
  EXPECT_NEAR(*tt, 0.6, 1e-12);
}

TEST(Measure, TransitionTimeOnLastExcursion) {
  // Two falling excursions; transition time must bracket the final one.
  Waveform out;
  out.append(0.0, 5.0);
  out.append(1.0, 0.0);
  out.append(2.0, 5.0);
  out.append(4.0, 0.0);  // final fall, half the slope of the first
  const auto tt = prox::wave::transitionTime(out, Edge::Falling, kTh);
  ASSERT_TRUE(tt.has_value());
  EXPECT_NEAR(*tt, 0.6 * 2.0, 1e-9);
}

TEST(Measure, SeparationSignConvention) {
  const Waveform a = prox::wave::risingRamp(0.0, 1.0, 5.0);  // ref 0.2
  const Waveform b = prox::wave::risingRamp(1.0, 1.0, 5.0);  // ref 1.2
  const auto sAb = prox::wave::separation(a, Edge::Rising, b, Edge::Rising, kTh);
  const auto sBa = prox::wave::separation(b, Edge::Rising, a, Edge::Rising, kTh);
  ASSERT_TRUE(sAb.has_value());
  EXPECT_NEAR(*sAb, 1.0, 1e-12);
  EXPECT_NEAR(*sBa, -1.0, 1e-12);
}

TEST(Measure, SeparationMixedEdges) {
  // Falling a (ref at vih) vs rising b (ref at vil).
  const Waveform a = prox::wave::fallingRamp(0.0, 1.0, 5.0);  // ref 0.2
  const Waveform b = prox::wave::risingRamp(0.5, 1.0, 5.0);   // ref 0.7
  const auto s = prox::wave::separation(a, Edge::Falling, b, Edge::Rising, kTh);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 0.5, 1e-12);
}

}  // namespace
