// Sparse MNA solver cross-checks: SparsityPattern slot resolution, and
// SparseLu factor/refactor/solve verified against the retained dense
// LuFactorization oracle on random SPD-ish matrices and MNA-shaped systems
// (zero-diagonal auxiliary rows, gmin ladders, stale-pivot refactors).
// Also pins the allocation-freedom contract of the Newton hot path: after a
// workspace is bound, repeated solves never allocate (spice.solve.allocs).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "spice/capacitor.hpp"
#include "spice/mosfet.hpp"
#include "spice/newton.hpp"
#include "spice/op.hpp"
#include "spice/resistor.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"

namespace {

using namespace prox;
using linalg::Matrix;
using linalg::SparseLu;
using linalg::SparseMatrix;
using linalg::SparsityPattern;
using linalg::Vector;

// Deterministic xorshift64* generator: the cross-check matrices must be
// identical on every run and platform.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t nextU64() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dull;
  }
  /// Uniform in [-1, 1).
  double next() {
    return static_cast<double>(nextU64() >> 11) * (2.0 / 9007199254740992.0) -
           1.0;
  }
};

/// Builds a pattern + values from a dense matrix, declaring exactly the
/// nonzero positions (plus the diagonal, as Circuit::finalize does).
void fromDense(const Matrix& d, SparsityPattern& p, SparseMatrix& a) {
  const std::size_t n = d.rows();
  p.reset(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (d(r, c) != 0.0 || r == c) p.addEntry(r, c);
    }
  }
  p.finalize();
  a.bind(p);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (d(r, c) != 0.0) a.add(r, c, d(r, c));
    }
  }
}

void expectSolvesMatchDense(const Matrix& d, SparseLu& lu, const Vector& rhs,
                            double tol) {
  linalg::LuFactorization dense;
  ASSERT_TRUE(dense.factor(d));
  const Vector want = dense.solve(rhs);
  Vector got = rhs;
  lu.solveInPlace(got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "x[" << i << "]";
  }
}

/// Random sparse diagonally-dominant ("SPD-ish") matrix: off-diagonal
/// density ~30%, diagonal dominating its row sum.
Matrix randomSpdish(std::size_t n, Rng& rng) {
  Matrix d(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double rowSum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      if ((rng.nextU64() % 10) < 3) {
        d(r, c) = rng.next();
        rowSum += std::fabs(d(r, c));
      }
    }
    d(r, r) = rowSum + 1.0 + std::fabs(rng.next());
  }
  return d;
}

/// MNA-shaped system: nv voltage rows (diagonally dominant conductances)
/// plus na auxiliary branch rows with +-1 incidence entries and a
/// structurally ZERO diagonal -- the shape that forces partial pivoting.
Matrix randomMna(std::size_t nv, std::size_t na, Rng& rng) {
  const std::size_t n = nv + na;
  Matrix d(n, n);
  for (std::size_t r = 0; r < nv; ++r) {
    double rowSum = 0.0;
    for (std::size_t c = 0; c < nv; ++c) {
      if (r == c) continue;
      if ((rng.nextU64() % 10) < 4) {
        const double g = -(0.1 + std::fabs(rng.next()));
        d(r, c) = g;
        rowSum += std::fabs(g);
      }
    }
    d(r, r) = rowSum + 0.5 + std::fabs(rng.next());
  }
  for (std::size_t k = 0; k < na; ++k) {
    const std::size_t row = nv + k;
    // Distinct node per branch: two sources on one node would make two
    // identical aux rows -- a genuinely singular system.
    const std::size_t node = k % nv;
    d(row, node) = 1.0;
    d(node, row) = 1.0;  // branch current into the node's KCL row
  }
  return d;
}

Vector randomRhs(std::size_t n, Rng& rng) {
  Vector b(n);
  for (double& v : b) v = rng.next();
  return b;
}

TEST(SparsityPattern, SlotsResolveAndDeduplicate) {
  SparsityPattern p;
  p.reset(3);
  p.addEntry(0, 0);
  p.addEntry(0, 2);
  p.addEntry(0, 2);  // duplicate coalesces
  p.addEntry(2, 1);
  p.finalize();

  EXPECT_EQ(p.entryCount(), 3u);
  EXPECT_NE(p.slot(0, 0), SparsityPattern::npos);
  EXPECT_NE(p.slot(0, 2), SparsityPattern::npos);
  EXPECT_NE(p.slot(2, 1), SparsityPattern::npos);
  EXPECT_EQ(p.slot(1, 1), SparsityPattern::npos);  // never declared
  EXPECT_EQ(p.slot(0, 1), SparsityPattern::npos);

  SparseMatrix a(p);
  a.at(p.slot(0, 2)) = 7.0;
  EXPECT_EQ(a.value(0, 2), 7.0);
  EXPECT_EQ(a.value(1, 0), 0.0);  // structural zero reads as 0
}

TEST(SparseLu, FactorSolveMatchesDenseOnRandomSpdish) {
  Rng rng;
  for (const std::size_t n : {3u, 8u, 17u, 32u}) {
    const Matrix d = randomSpdish(n, rng);
    SparsityPattern p;
    SparseMatrix a;
    fromDense(d, p, a);

    SparseLu lu;
    lu.analyze(p);
    ASSERT_TRUE(lu.factor(a)) << "n=" << n;
    expectSolvesMatchDense(d, lu, randomRhs(n, rng), 1e-9);
  }
}

TEST(SparseLu, FactorSolveMatchesDenseOnMnaShapes) {
  Rng rng;
  for (const std::size_t nv : {4u, 10u, 24u}) {
    const std::size_t na = nv / 3 + 1;
    const Matrix d = randomMna(nv, na, rng);
    SparsityPattern p;
    SparseMatrix a;
    fromDense(d, p, a);

    SparseLu lu;
    lu.analyze(p);
    ASSERT_TRUE(lu.factor(a)) << "nv=" << nv;
    expectSolvesMatchDense(d, lu, randomRhs(nv + na, rng), 1e-9);
  }
}

TEST(SparseLu, RefactorMatchesDenseAfterValueChange) {
  // Same pattern, new values (a Newton iteration): refactor() must agree
  // with a dense factorization of the *new* values.
  Rng rng;
  const std::size_t nv = 12;
  const std::size_t na = 4;
  const Matrix d1 = randomMna(nv, na, rng);
  SparsityPattern p;
  SparseMatrix a;
  fromDense(d1, p, a);

  SparseLu lu;
  lu.analyze(p);
  ASSERT_TRUE(lu.factor(a));

  // Perturb every structural value (keeping diagonal dominance so the
  // frozen pivot order stays numerically fine).
  Matrix d2 = d1;
  for (std::size_t r = 0; r < nv + na; ++r) {
    for (std::size_t c = 0; c < nv + na; ++c) {
      if (d1(r, c) != 0.0) {
        d2(r, c) = d1(r, c) * (1.0 + 0.05 * rng.next());
        a.at(p.slot(r, c)) = d2(r, c);
      }
    }
  }
  ASSERT_TRUE(lu.refactor(a));
  expectSolvesMatchDense(d2, lu, randomRhs(nv + na, rng), 1e-9);
}

TEST(SparseLu, RefactorBeforeFactorReportsFailure) {
  SparsityPattern p;
  SparseMatrix a;
  Matrix d(2, 2);
  d(0, 0) = 2.0;
  d(1, 1) = 3.0;
  fromDense(d, p, a);
  SparseLu lu;
  lu.analyze(p);
  EXPECT_FALSE(lu.refactor(a));  // no frozen structure yet
  EXPECT_FALSE(lu.valid());
}

TEST(SparseLu, SingularMatrixRejected) {
  // Two identical rows: numerically singular at the second pivot.
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(0, 1) = 2.0;
  d(1, 0) = 1.0;
  d(1, 1) = 2.0;
  d(2, 2) = 1.0;
  SparsityPattern p;
  SparseMatrix a;
  fromDense(d, p, a);
  SparseLu lu;
  lu.analyze(p);
  EXPECT_FALSE(lu.factor(a));
  EXPECT_FALSE(lu.valid());
}

TEST(SparseLu, StalePivotRefactorFallsBackToFactor) {
  // Values for which the frozen pivot order is fine...
  Matrix d1(2, 2);
  d1(0, 0) = 4.0;
  d1(0, 1) = 1.0;
  d1(1, 0) = 1.0;
  d1(1, 1) = 3.0;
  SparsityPattern p;
  SparseMatrix a;
  fromDense(d1, p, a);
  SparseLu lu;
  lu.analyze(p);
  ASSERT_TRUE(lu.factor(a));

  // ...then values that zero the frozen (0, 0) pivot while staying
  // nonsingular.  refactor() must refuse; a fresh factor() (new pivoting)
  // must succeed and match the dense oracle -- the exact ladder solveNewton
  // climbs.
  Matrix d2(2, 2);
  d2(0, 1) = 1.0;
  d2(1, 0) = 1.0;
  d2(1, 1) = 1.0;
  a.setZero();
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 1.0);
  EXPECT_FALSE(lu.refactor(a));
  ASSERT_TRUE(lu.factor(a));
  expectSolvesMatchDense(d2, lu, Vector{1.0, 2.0}, 1e-12);
}

TEST(SparseLu, GminLadderRefactorsTrackDense) {
  // The recovery ladder's gmin ramp re-solves the same pattern with shunt
  // conductances spanning nine orders of magnitude.  Every rung must stay a
  // pure refactor (frozen pivots survive) and agree with the dense oracle.
  Rng rng;
  const std::size_t nv = 10;
  const std::size_t na = 3;
  const Matrix base = randomMna(nv, na, rng);
  SparsityPattern p;
  SparseMatrix a;
  fromDense(base, p, a);
  SparseLu lu;
  lu.analyze(p);
  ASSERT_TRUE(lu.factor(a));

  const Vector rhs = randomRhs(nv + na, rng);
  for (double gmin = 1e-3; gmin >= 1e-12; gmin *= 0.1) {
    Matrix d = base;
    a.setZero();
    for (std::size_t r = 0; r < nv + na; ++r) {
      for (std::size_t c = 0; c < nv + na; ++c) {
        if (base(r, c) != 0.0) a.add(r, c, base(r, c));
      }
    }
    for (std::size_t i = 0; i < nv; ++i) {
      d(i, i) += gmin;
      a.add(i, i, gmin);
    }
    if (!lu.refactor(a)) ASSERT_TRUE(lu.factor(a)) << "gmin=" << gmin;
    expectSolvesMatchDense(d, lu, rhs, 1e-9);
  }
}

TEST(SparseLu, NumericPhasesNeverAllocate) {
  Rng rng;
  const Matrix d = randomMna(16, 5, rng);
  SparsityPattern p;
  SparseMatrix a;
  fromDense(d, p, a);
  SparseLu lu;
  lu.analyze(p);
  ASSERT_TRUE(lu.factor(a));

  const std::uint64_t allocsAfterFirstFactor = lu.allocCount();
  Vector b = randomRhs(21, rng);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(lu.refactor(a));
    Vector& x = b;
    lu.solveInPlace(x);
    ASSERT_TRUE(lu.factor(a));
    lu.solveInPlace(x);
    for (double& v : x) v = std::tanh(v);  // keep values bounded
  }
  EXPECT_EQ(lu.allocCount(), allocsAfterFirstFactor);
}

// -- Newton workspace: the spice-level allocation-freedom contract ----------

spice::Circuit& inverterCircuit(spice::Circuit& ckt) {
  using namespace spice;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("vvdd", vdd, kGround, 3.3);
  ckt.add<VoltageSource>("vin", in, kGround, 1.1);
  MosfetParams nmos;
  nmos.nmos = true;
  MosfetParams pmos;
  pmos.nmos = false;
  pmos.vt0 = -0.8;
  ckt.add<Mosfet>("mp", out, in, vdd, vdd, pmos);
  ckt.add<Mosfet>("mn", out, in, kGround, kGround, nmos);
  ckt.add<Capacitor>("cl", out, kGround, 50e-15);
  ckt.add<Resistor>("rl", out, kGround, 1e8);
  return ckt;
}

TEST(NewtonWorkspace, SteadyStateSolvesAreAllocationFree) {
  using namespace spice;
  Circuit ckt;
  inverterCircuit(ckt);
  ckt.finalize();

  NewtonWorkspace ws;
  ws.bind(ckt);
  StampContext sc;
  linalg::Vector x;

  // Warm-up: first solve may grow nothing further (bind allocated it all),
  // but give the path one pass before pinning the counter.
  ASSERT_TRUE(solveNewton(ckt, x, sc, {}, ws).converged);

  const auto before = obs::snapshot().counterValue("spice.solve.allocs");
  const std::uint64_t luBefore = ws.lu.allocCount();
  for (int i = 0; i < 25; ++i) {
    linalg::Vector& xi = x;
    xi[0] += 1e-5;  // nudge so iterations do real work
    ASSERT_TRUE(solveNewton(ckt, xi, sc, {}, ws).converged);
  }
  const auto after = obs::snapshot().counterValue("spice.solve.allocs");
  EXPECT_EQ(after, before) << "Newton solves allocated after warm-up";
  EXPECT_EQ(ws.lu.allocCount(), luBefore);
}

TEST(NewtonWorkspace, JacobianReuseEngagesAndStaysCorrect) {
  using namespace spice;
  Circuit ckt;
  inverterCircuit(ckt);
  ckt.finalize();

  NewtonWorkspace ws;
  ws.bind(ckt);
  StampContext sc;
  linalg::Vector x;
  ASSERT_TRUE(solveNewton(ckt, x, sc, {}, ws).converged);
  const linalg::Vector xRef = x;

  // Re-solving from the converged point must hit the reuse fast path...
  const auto reusedBefore =
      obs::snapshot().counterValue("spice.refactor.reused");
  ASSERT_TRUE(solveNewton(ckt, x, sc, {}, ws).converged);
  const auto reusedAfter = obs::snapshot().counterValue("spice.refactor.reused");
  if (obs::enabled()) EXPECT_GT(reusedAfter, reusedBefore);

  // ...and land on the same solution to within Newton tolerance (the chord
  // step solves with a frozen Jacobian, so agreement is to vAbsTol, not
  // bit-exact).
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], xRef[i], 1e-5) << "x[" << i << "]";
  }

  // A solve with jacobianReuseTol = 0 must not reuse.
  NewtonOptions noReuse;
  noReuse.jacobianReuseTol = 0.0;
  const auto reusedBefore2 =
      obs::snapshot().counterValue("spice.refactor.reused");
  ASSERT_TRUE(solveNewton(ckt, x, sc, noReuse, ws).converged);
  EXPECT_EQ(obs::snapshot().counterValue("spice.refactor.reused"),
            reusedBefore2);
}

TEST(NewtonWorkspace, TransientRunMatchesConvenienceOverloads) {
  // The workspace-threaded transient (tran.cpp) against per-call-workspace
  // solves must be bit-identical: the workspace only changes where buffers
  // live, never the arithmetic.
  using namespace spice;
  Circuit ckt;
  inverterCircuit(ckt);
  ckt.finalize();

  NewtonWorkspace ws;
  StampContext sc;
  linalg::Vector xShared;
  linalg::Vector xLocal;
  ASSERT_TRUE(solveNewton(ckt, xShared, sc, {}, ws).converged);
  ASSERT_TRUE(solveNewton(ckt, xLocal, sc, {}).converged);
  ASSERT_EQ(xShared.size(), xLocal.size());
  for (std::size_t i = 0; i < xShared.size(); ++i) {
    EXPECT_EQ(xShared[i], xLocal[i]) << "x[" << i << "]";
  }
}

}  // namespace
