// SPICE-deck parser tests: numbers, cards, models, errors, and a full deck
// that simulates correctly.

#include <gtest/gtest.h>

#include "spice/netlist.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"

namespace {

using namespace prox::spice;

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("42"), 42.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1e-9"), 1e-9);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3g"), 3e9);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1t"), 1e12);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("7n"), 7e-9);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("100p"), 100e-12);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("50f"), 50e-15);
}

TEST(SpiceNumber, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1K"), 1e3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2MEG"), 2e6);
}

TEST(SpiceNumber, Malformed) {
  EXPECT_THROW(parseSpiceNumber(""), prox::support::DiagnosticError);
  EXPECT_THROW(parseSpiceNumber("abc"), prox::support::DiagnosticError);
  EXPECT_THROW(parseSpiceNumber("1x"), prox::support::DiagnosticError);
  // The typed diagnostic carries the parse-error code and surfaces the
  // underlying conversion failure instead of swallowing it.
  try {
    parseSpiceNumber("abc");
    FAIL() << "expected DiagnosticError";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), prox::support::StatusCode::ParseError);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(SpiceNumber, OverflowAndUnderflowAreTypedErrorsNotSilentValues) {
  // The mantissa and the suffix can each be in range while their product is
  // not; stod+multiply would yield inf / 0.0 silently.
  try {
    parseSpiceNumber("1e308k");
    FAIL() << "expected overflow rejection";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), prox::support::StatusCode::ParseError);
    EXPECT_NE(std::string(e.what()).find("overflows to infinity"),
              std::string::npos);
  }
  // A subnormal mantissa dies in stod's own range check before the suffix
  // even applies -- still a typed ParseError, never a silent 0.0.
  try {
    parseSpiceNumber("1e-310f");
    FAIL() << "expected underflow rejection";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), prox::support::StatusCode::ParseError);
  }
  // Out-of-range before the suffix even applies (stod throws out_of_range):
  // still a typed ParseError, never a foreign exception.
  EXPECT_THROW(parseSpiceNumber("1e999"), prox::support::DiagnosticError);
  // A true zero mantissa is not an underflow.
  EXPECT_DOUBLE_EQ(parseSpiceNumber("0f"), 0.0);
}

TEST(SpiceNumber, RejectionCarriesDeckLineContext) {
  try {
    parseNetlist("* bad deck\nR1 a 0 1e308k\n.end\n");
    FAIL() << "expected DiagnosticError";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), prox::support::StatusCode::ParseError);
    EXPECT_EQ(e.diagnostic().line, 2);
    EXPECT_NE(std::string(e.what()).find("1e308k"), std::string::npos);
  }
}

TEST(Netlist, OversizedStatementIsAResourceRejection) {
  // One statement with 70k tokens trips the per-statement token cap.
  std::string deck = "* cap\nVPWL n 0 pwl(";
  for (int i = 0; i < 70000 / 2; ++i) deck += " 1 2";
  deck += ")\n.end\n";
  try {
    parseNetlist(deck);
    FAIL() << "expected DiagnosticError";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), prox::support::StatusCode::ResourceExhausted);
  }
}

TEST(Netlist, DeviceCountChargesTheActiveNodeBudget) {
  prox::support::ResourceBudget budget;
  budget.maxNodes = 2;
  prox::support::BudgetTracker tracker(budget);
  prox::support::BudgetScope scope(&tracker);
  try {
    parseNetlist("* three devices\nR1 a b 1k\nR2 b c 1k\nR3 c 0 1k\n.end\n");
    FAIL() << "expected DiagnosticError(ResourceExhausted)";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.code(), prox::support::StatusCode::ResourceExhausted);
    EXPECT_NE(std::string(e.what()).find("nodes"), std::string::npos);
  }
}

TEST(Netlist, ResistorDividerDeck) {
  const auto nl = parseNetlist(R"(
* simple divider
V1 in 0 6
R1 in mid 1k
R2 mid 0 2k
.end
)");
  Circuit& ckt = const_cast<Circuit&>(nl.circuit);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(ckt.nodeVoltage(*x, *ckt.findNode("mid")), 4.0, 1e-6);
}

TEST(Netlist, ContinuationLines) {
  const auto nl = parseNetlist(
      "V1 in 0 PWL(0 0\n+ 1n 5)\nR1 in 0 1k\n");
  const auto* v = nl.findAs<VoltageSource>("v1");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->valueAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v->valueAt(1e-9), 5.0);
}

TEST(Netlist, DcKeywordSource) {
  const auto nl = parseNetlist("V1 a 0 DC 3.3\nR1 a 0 1k\n");
  const auto* v = nl.findAs<VoltageSource>("v1");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->valueAt(123.0), 3.3);
}

TEST(Netlist, MosfetWithModelAndOverrides) {
  const auto nl = parseNetlist(R"(
.model mynmos NMOS KP=60u VTO=0.8 LAMBDA=0.02 GAMMA=0.4 PHI=0.65 W=4u L=0.8u
M1 d g 0 0 mynmos W=8u
V1 d 0 5
V2 g 0 5
)");
  const auto* m = nl.findAs<Mosfet>("m1");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->params().w, 8e-6);      // instance override
  EXPECT_DOUBLE_EQ(m->params().l, 0.8e-6);    // model default
  EXPECT_DOUBLE_EQ(m->params().vt0, 0.8);
  EXPECT_TRUE(m->params().nmos);
}

TEST(Netlist, ModelAfterInstanceIsAccepted) {
  // HSPICE accepts .model anywhere in the deck.
  const auto nl = parseNetlist(R"(
M1 d g 0 0 nm
.model nm NMOS KP=50u
V1 d 0 5
V2 g 0 5
)");
  const auto* m = nl.findAs<Mosfet>("m1");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->params().kp, 50e-6);
}

TEST(Netlist, PmosModelDefaults) {
  const auto nl = parseNetlist(R"(
.model pm PMOS VTO=-0.9
M1 d g s b pm
)");
  const auto* m = nl.findAs<Mosfet>("m1");
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(m->params().nmos);
  EXPECT_DOUBLE_EQ(m->params().vt0, -0.9);
}

TEST(Netlist, FullCmosInverterDeckTransient) {
  auto nl = parseNetlist(R"(
* CMOS inverter
.model nm NMOS KP=60u VTO=0.8 LAMBDA=0.02
.model pm PMOS KP=25u VTO=-0.9 LAMBDA=0.04
Vdd vdd 0 5
Vin in 0 PWL(0 0 0.5n 0 1n 5)
M1 out in 0 0 nm W=4u L=0.8u
M2 out in vdd vdd pm W=8u L=0.8u
Cl out 0 100f
)");
  TranOptions opt;
  opt.tstop = 4e-9;
  const auto res = transient(nl.circuit, opt);
  const auto out = res.node(*nl.circuit.findNode("out"));
  EXPECT_NEAR(out.value(0.0), 5.0, 0.05);
  EXPECT_NEAR(out.value(4e-9), 0.0, 0.05);
}

TEST(Netlist, CurrentSourceCard) {
  const auto nl = parseNetlist(R"(
I1 0 out 1m
R1 out 0 1k
)");
  Circuit& ckt = const_cast<Circuit&>(nl.circuit);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(ckt.nodeVoltage(*x, *ckt.findNode("out")), 1.0, 1e-6);
}

TEST(Netlist, CurrentSourcePwl) {
  const auto nl = parseNetlist("I1 0 a PWL(0 0 1n 2m)\nR1 a 0 1k\n");
  ASSERT_NE(nl.find("i1"), nullptr);
}

TEST(NetlistErrors, UnknownElement) {
  EXPECT_THROW(parseNetlist("Q1 a b c\n"), std::runtime_error);
}

TEST(NetlistErrors, UnknownControlCard) {
  EXPECT_THROW(parseNetlist(".tran 1n 10n\n"), std::runtime_error);
}

TEST(NetlistErrors, UnknownModelReference) {
  EXPECT_THROW(parseNetlist("M1 d g 0 0 nosuch\n"), std::runtime_error);
}

TEST(NetlistErrors, DuplicateDeviceName) {
  EXPECT_THROW(parseNetlist("R1 a 0 1k\nR1 b 0 2k\n"), std::runtime_error);
}

TEST(NetlistErrors, MalformedPwl) {
  EXPECT_THROW(parseNetlist("V1 a 0 PWL(0 0 1n)\n"), std::runtime_error);
}

TEST(NetlistErrors, ContinuationWithoutCard) {
  EXPECT_THROW(parseNetlist("+ R1 a 0 1k\n"), std::runtime_error);
}

TEST(NetlistErrors, BadResistorArity) {
  EXPECT_THROW(parseNetlist("R1 a 0\n"), std::runtime_error);
}

TEST(NetlistErrors, MessageCarriesLineNumber) {
  try {
    parseNetlist("R1 a 0 1k\nQ2 x y z\n");
    FAIL() << "expected throw";
  } catch (const prox::support::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().line, 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
