// Single-input macromodel tests: characterization, interpolation quality,
// the monotone-delay property of the Section 2 thresholds, and the
// dimensional-analysis normalized form.

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

TEST(SingleInput, TableAccessorsAndValidation) {
  EXPECT_THROW(model::SingleInputModel(0, Edge::Rising, {}, 1e-13, 1e-4, 5.0),
               std::invalid_argument);
  std::vector<model::SingleInputModel::Sample> bad{{2e-10, 1e-10, 1e-10},
                                                   {1e-10, 1e-10, 1e-10}};
  EXPECT_THROW(model::SingleInputModel(0, Edge::Rising, std::move(bad), 1e-13,
                                       1e-4, 5.0),
               std::invalid_argument);
}

TEST(SingleInput, InterpolationHitsGridPointsExactly) {
  std::vector<model::SingleInputModel::Sample> t{{1e-10, 3e-10, 2e-10},
                                                 {4e-10, 5e-10, 3e-10}};
  model::SingleInputModel m(0, Edge::Rising, std::move(t), 1e-13, 1e-4, 5.0);
  EXPECT_DOUBLE_EQ(m.delay(1e-10), 3e-10);
  EXPECT_DOUBLE_EQ(m.delay(4e-10), 5e-10);
  EXPECT_DOUBLE_EQ(m.transition(1e-10), 2e-10);
  // Midpoint is the average for a 2-point table.
  EXPECT_DOUBLE_EQ(m.delay(2.5e-10), 4e-10);
}

TEST(SingleInput, LinearExtrapolationBeyondGrid) {
  std::vector<model::SingleInputModel::Sample> t{{1e-10, 3e-10, 2e-10},
                                                 {2e-10, 4e-10, 3e-10}};
  model::SingleInputModel m(0, Edge::Rising, std::move(t), 1e-13, 1e-4, 5.0);
  EXPECT_DOUBLE_EQ(m.delay(3e-10), 5e-10);   // slope 1 continues
  EXPECT_DOUBLE_EQ(m.delay(0.5e-10), 2.5e-10);
}

TEST(SingleInput, NormalizedCoordinateDefinition) {
  std::vector<model::SingleInputModel::Sample> t{{1e-10, 3e-10, 2e-10}};
  model::SingleInputModel m(0, Edge::Rising, std::move(t), 100e-15, 150e-6, 5.0);
  // x = CL / (K Vdd tau) = 1e-13 / (150e-6 * 5 * 1e-10).
  EXPECT_NEAR(m.normalizedX(1e-10), 1e-13 / (150e-6 * 5.0 * 1e-10), 1e-12);
}

TEST(SingleInputCharacterized, DelayMonotoneInTau) {
  // The Section 2 threshold choice guarantees monotonically increasing delay
  // with input transition time; verify on the characterized NAND2.
  const auto& cg = testutil::nand2Model();
  for (int pin = 0; pin < 2; ++pin) {
    for (Edge e : {Edge::Rising, Edge::Falling}) {
      const auto& m = cg.singles->at(pin, e);
      double prev = 0.0;
      for (const auto& row : m.table()) {
        EXPECT_GT(row.delay, prev) << "pin=" << pin;
        EXPECT_GT(row.delay, 0.0);
        EXPECT_GT(row.transition, 0.0);
        prev = row.delay;
      }
    }
  }
}

TEST(SingleInputCharacterized, InterpolationMatchesFreshSimulation) {
  // Query between grid points and compare with a direct simulation.
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  const double tau = 400e-12;  // between the 200 ps and 700 ps grid points
  const auto o = sim.simulateSingle({0, Edge::Rising, 0.0, tau});
  ASSERT_TRUE(o.delay.has_value());
  const double predicted = cg.singles->at(0, Edge::Rising).delay(tau);
  EXPECT_NEAR(predicted, *o.delay, 0.08 * *o.delay);  // coarse grid: 8%
}

TEST(SingleInputCharacterized, StackPositionOrdersFastSlopeDelays) {
  // With fast inputs, the transistor nearest the output (pin 0) must wait
  // for the whole stack below it to discharge: its delay exceeds the bottom
  // pin's.  (With very slow inputs the ordering can invert; the fast-slope
  // case is the structural one.)
  const auto& cg = testutil::nand3Model();
  const double d0 = cg.singles->at(0, Edge::Rising).delay(50e-12);
  const double d2 = cg.singles->at(2, Edge::Rising).delay(50e-12);
  EXPECT_NE(d0, d2);
}

TEST(SingleInputModelSet, MissingModelThrows) {
  model::SingleInputModelSet set;
  EXPECT_FALSE(set.has(0, Edge::Rising));
  EXPECT_THROW(set.at(0, Edge::Rising), std::out_of_range);
}

TEST(SingleInputModelSet, SetAndRetrieve) {
  model::SingleInputModelSet set;
  std::vector<model::SingleInputModel::Sample> t{{1e-10, 3e-10, 2e-10}};
  set.set(model::SingleInputModel(1, Edge::Falling, std::move(t), 1e-13, 1e-4,
                                  5.0));
  EXPECT_TRUE(set.has(1, Edge::Falling));
  EXPECT_FALSE(set.has(1, Edge::Rising));
  EXPECT_EQ(set.at(1, Edge::Falling).pin(), 1);
}

}  // namespace
