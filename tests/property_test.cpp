// Parameterized property sweeps across fan-in, direction, slope and
// separation: the paper's structural guarantees hold over whole grids, not
// just spot values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>

#include "sta/synth.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

// Shared per-fanin characterized models (fast config), built once.
const characterize::CharacterizedGate& gateForFanin(int n) {
  static std::map<int, characterize::CharacterizedGate> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache
             .emplace(n, characterize::characterizeGate(testutil::nandSpec(n),
                                                        testutil::fastConfig()))
             .first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Positivity: delay > 0 for every (fanin, edge, tau) combination -- the
// Section 2 guarantee, exercised through the full algorithm.
struct PositivityCase {
  int fanin;
  int edgeIdx;  // 0 = rising, 1 = falling
  double tau;
};

class DelayPositivity : public ::testing::TestWithParam<PositivityCase> {};

TEST_P(DelayPositivity, DelayAndTransitionPositive) {
  const auto& p = GetParam();
  const auto& cg = gateForFanin(p.fanin);
  const auto calc = cg.calculator();
  const Edge e = p.edgeIdx == 0 ? Edge::Rising : Edge::Falling;
  std::vector<InputEvent> evs;
  for (int pin = 0; pin < p.fanin; ++pin) {
    evs.push_back({pin, e, pin * 30e-12, p.tau});
  }
  const auto r = calc.compute(evs);
  EXPECT_GT(r.delay, 0.0);
  EXPECT_GT(r.transitionTime, 0.0);
}

std::vector<PositivityCase> positivityCases() {
  std::vector<PositivityCase> cases;
  for (int fanin : {2, 3}) {
    for (int e : {0, 1}) {
      for (double tau : {50e-12, 400e-12, 2200e-12, 6000e-12}) {
        cases.push_back({fanin, e, tau});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, DelayPositivity,
                         ::testing::ValuesIn(positivityCases()));

// ---------------------------------------------------------------------------
// Window property: as separation grows past the proximity window the
// computed delay reverts exactly to the single-input value.
class WindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(WindowSweep, DelayRevertsOutsideWindow) {
  // Falling pair: earliest-first sense with the paper's window semantics.
  const double tau = GetParam();
  const auto& cg = gateForFanin(2);
  const auto calc = cg.calculator();
  const auto& m = cg.singles->at(0, Edge::Falling);
  const double d1 = m.delay(tau);
  const double t1 = m.transition(tau);
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, tau},
                              {1, Edge::Falling, d1 + t1 + 50e-12, tau}};
  const auto r = calc.compute(evs);
  EXPECT_DOUBLE_EQ(r.delay, d1);
  EXPECT_DOUBLE_EQ(r.transitionTime, t1);
}

INSTANTIATE_TEST_SUITE_P(Taus, WindowSweep,
                         ::testing::Values(100e-12, 300e-12, 700e-12,
                                           1500e-12));

// ---------------------------------------------------------------------------
// Monotone proximity trend for falling pairs: as the second falling input
// moves away (larger separation), the speedup weakens monotonically (delay
// non-decreasing), matching Figure 1-2(a)'s shape.
class FallingTrend : public ::testing::TestWithParam<double> {};

TEST_P(FallingTrend, SpeedupWeakensWithSeparation) {
  const double tauB = GetParam();
  const auto& cg = gateForFanin(2);
  const auto calc = cg.calculator();
  const InputEvent a{0, Edge::Falling, 0.0, 500e-12};
  double prev = -1e9;
  int violations = 0;
  for (double s = 0.0; s <= 400e-12; s += 50e-12) {
    std::vector<InputEvent> evs{a, {1, Edge::Falling, s, tauB}};
    const auto r = calc.compute(evs);
    if (r.dominantPin != 0) continue;  // skip pre-crossover regime
    if (r.delay < prev - 2e-12) ++violations;  // tolerate interpolation noise
    prev = r.delay;
  }
  EXPECT_LE(violations, 1);
}

INSTANTIATE_TEST_SUITE_P(TauB, FallingTrend,
                         ::testing::Values(100e-12, 500e-12, 1000e-12));

// ---------------------------------------------------------------------------
// Single-input simulation: delay grows with load capacitance (the C_L
// dependence dimensional analysis folds into the normalized coordinate).
class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, DelayGrowsWithLoad) {
  const double tau = GetParam();
  double prev = 0.0;
  for (double cl : {50e-15, 100e-15, 200e-15}) {
    cells::CellSpec spec = testutil::nandSpec(2);
    spec.loadCap = cl;
    // Reuse the NAND2 thresholds (thresholds are load-independent).
    model::Gate g{spec, std::nullopt, gateForFanin(2).gate.thresholds};
    model::GateSimulator sim(g);
    const auto o = sim.simulateSingle({0, Edge::Rising, 0.0, tau});
    ASSERT_TRUE(o.delay.has_value());
    EXPECT_GT(*o.delay, prev);
    prev = *o.delay;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, LoadSweep, ::testing::Values(100e-12, 600e-12));

// ---------------------------------------------------------------------------
// Dominance ordering is a permutation and its head minimizes the predicted
// crossing, for random event sets.
class DominancePermutation : public ::testing::TestWithParam<int> {};

TEST_P(DominancePermutation, HeadMinimizesPredictedCrossing) {
  const int seed = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-400e-12, 400e-12);
  const auto& cg = gateForFanin(3);

  std::vector<InputEvent> evs;
  for (int p = 0; p < 3; ++p) {
    evs.push_back({p, Edge::Rising, sepDist(rng), tauDist(rng)});
  }
  for (auto sense : {model::DominanceSense::EarliestFirst,
                     model::DominanceSense::LatestFirst}) {
    const auto order = model::dominanceOrder(evs, *cg.singles, sense);
    ASSERT_EQ(order.size(), 3u);
    std::vector<bool> seen(3, false);
    for (std::size_t i : order) seen[i] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);

    const double head = model::predictedCrossing(evs[order[0]], *cg.singles);
    for (std::size_t i = 0; i < 3; ++i) {
      const double ci = model::predictedCrossing(evs[i], *cg.singles);
      if (sense == model::DominanceSense::EarliestFirst) {
        EXPECT_LE(head, ci + 1e-18);
      } else {
        EXPECT_GE(head, ci - 1e-18);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominancePermutation,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Dominance re-ranking is invariant under input permutation: shuffling the
// order the events are *presented* in must not change which pin dominates,
// the pin-by-pin ranking, or the computed delay/transition.  (Ties are
// measure-zero with continuous random taus/separations.)
class DominanceShuffleInvariance : public ::testing::TestWithParam<int> {};

TEST_P(DominanceShuffleInvariance, RankingAndResultSurvivePermutation) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-400e-12, 400e-12);
  const auto& cg = gateForFanin(3);
  const auto calc = cg.calculator();

  std::vector<InputEvent> evs;
  for (int p = 0; p < 3; ++p) {
    evs.push_back({p, Edge::Rising, sepDist(rng), tauDist(rng)});
  }

  // Rankings as pin sequences (order entries index into evs, so they only
  // compare across permutations after mapping back to pins).
  auto pinRanking = [&](const std::vector<InputEvent>& events,
                        model::DominanceSense sense) {
    std::vector<int> pins;
    for (std::size_t i : model::dominanceOrder(events, *cg.singles, sense)) {
      pins.push_back(events[i].pin);
    }
    return pins;
  };

  const auto earliestBefore =
      pinRanking(evs, model::DominanceSense::EarliestFirst);
  const auto latestBefore = pinRanking(evs, model::DominanceSense::LatestFirst);
  const auto resultBefore = calc.compute(evs);

  std::vector<InputEvent> shuffled = evs;
  for (int round = 0; round < 4; ++round) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_EQ(pinRanking(shuffled, model::DominanceSense::EarliestFirst),
              earliestBefore);
    EXPECT_EQ(pinRanking(shuffled, model::DominanceSense::LatestFirst),
              latestBefore);
    const auto r = calc.compute(shuffled);
    EXPECT_DOUBLE_EQ(r.delay, resultBefore.delay);
    EXPECT_DOUBLE_EQ(r.transitionTime, resultBefore.transitionTime);
    EXPECT_EQ(r.dominantPin, resultBefore.dominantPin);
    EXPECT_DOUBLE_EQ(r.outputRefTime, resultBefore.outputRefTime);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceShuffleInvariance,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Window-drop invariance: an input whose separation lands beyond the
// proximity window (s > Delta^(i-1), and beyond the transition window too)
// contributes a ratio of exactly 1, so *removing* it from the event set must
// leave ProximityDelay's output bit-for-bit unchanged.
class WindowDropInvariance : public ::testing::TestWithParam<double> {};

TEST_P(WindowDropInvariance, FarInputDropsOut) {
  const double tau = GetParam();
  const auto& cg = gateForFanin(3);
  const auto calc = cg.calculator();

  // A separation beyond every pin's delay *and* transition window at this
  // tau (the transition window Delta^(1) + tau^(1) is the wider of the two).
  double far = 0.0;
  for (int pin = 0; pin < 3; ++pin) {
    const auto& m = cg.singles->at(pin, Edge::Falling);
    far = std::max(far, m.delay(tau) + m.transition(tau));
  }
  far += 30e-12 + 200e-12;  // latest close event + margin

  const std::vector<InputEvent> close{{0, Edge::Falling, 0.0, tau},
                                      {1, Edge::Falling, 30e-12, tau}};
  std::vector<InputEvent> withFar = close;
  withFar.push_back({2, Edge::Falling, far, tau});

  const auto rClose = calc.compute(close);
  const auto rFar = calc.compute(withFar);
  EXPECT_DOUBLE_EQ(rFar.delay, rClose.delay);
  EXPECT_DOUBLE_EQ(rFar.transitionTime, rClose.transitionTime);
  EXPECT_EQ(rFar.dominantPin, rClose.dominantPin);
}

INSTANTIATE_TEST_SUITE_P(Taus, WindowDropInvariance,
                         ::testing::Values(100e-12, 400e-12, 1200e-12));

// ---------------------------------------------------------------------------
// Synthetic-circuit generator properties, over a sampled grid of specs:
// the determinism contract (equal spec -> byte-identical BLIF), the
// structural guarantees (acyclic, exactly `depth` levels, fanin/fanout
// bounds respected), and a clean validate() report.
sta::SynthSpec specCase(std::uint64_t seed, std::uint32_t depth,
                        std::uint32_t width, std::uint32_t inputs,
                        std::uint32_t maxFanin, std::uint32_t maxFanout) {
  sta::SynthSpec s;
  s.seed = seed;
  s.depth = depth;
  s.width = width;
  s.primaryInputs = inputs;
  s.maxFanin = maxFanin;
  s.maxFanout = maxFanout;
  return s;
}

std::vector<sta::SynthSpec> synthGrid() {
  return {
      specCase(1, 1, 1, 1, 1, 0),        // degenerate: one inverter
      specCase(7, 3, 5, 4, 2, 0),        // small, unbounded fanout
      specCase(7, 3, 5, 4, 2, 4),        // same shape, fanout-capped
      specCase(42, 6, 16, 10, 3, 0),     // mid-size random wiring
      specCase(42, 6, 16, 16, 3, 3),     // tight fanout bound (16*3/16)
      specCase(1234, 10, 32, 24, 4, 8),  // deeper, wider
  };
}

class SynthProperties : public ::testing::TestWithParam<sta::SynthSpec> {};

TEST_P(SynthProperties, SameSpecEmitsByteIdenticalBlif) {
  const auto& spec = GetParam();
  const std::string first = sta::generateBlifString(spec);
  const std::string second = sta::generateBlifString(spec);
  EXPECT_EQ(first, second);
  // A different seed must actually change the circuit (wiring or mix) --
  // unless the spec is so degenerate there is only one possible circuit.
  if (spec.gateCount() > 1 && spec.maxFanin > 1) {
    sta::SynthSpec other = spec;
    other.seed += 1;
    EXPECT_NE(sta::generateBlifString(other), first);
  }
}

TEST_P(SynthProperties, StructureHonorsSpecBounds) {
  const auto& spec = GetParam();
  for (std::uint64_t g = 0; g < spec.gateCount(); ++g) {
    const auto gate = sta::synthGateAt(spec, g);
    ASSERT_GE(gate.sources.size(), 1u);
    ASSERT_LE(gate.sources.size(), spec.maxFanin);
    if (gate.type == cells::GateType::Inverter) {
      EXPECT_EQ(gate.sources.size(), 1u);
    } else {
      EXPECT_GE(gate.sources.size(), 2u);
    }
    // Sources are distinct and index the previous layer (or the PIs).
    const std::uint32_t layer = static_cast<std::uint32_t>(g / spec.width);
    const std::uint32_t sourceCount =
        layer == 0 ? spec.primaryInputs : spec.width;
    std::vector<std::uint32_t> sorted = gate.sources;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    for (std::uint32_t s : gate.sources) EXPECT_LT(s, sourceCount);
  }
}

TEST_P(SynthProperties, FanoutCapIsRespected) {
  const auto& spec = GetParam();
  if (spec.maxFanout == 0) return;
  // Tally consumers per source net, layer by layer.
  for (std::uint32_t layer = 0; layer < spec.depth; ++layer) {
    const std::uint32_t sourceCount =
        layer == 0 ? spec.primaryInputs : spec.width;
    std::vector<std::uint32_t> consumers(sourceCount, 0);
    for (std::uint32_t pos = 0; pos < spec.width; ++pos) {
      const auto gate = sta::synthGateAt(
          spec, static_cast<std::uint64_t>(layer) * spec.width + pos);
      for (std::uint32_t s : gate.sources) ++consumers[s];
    }
    for (std::uint32_t c : consumers) EXPECT_LE(c, spec.maxFanout);
  }
}

TEST_P(SynthProperties, BuildsAcyclicNetlistThatLevelizesToDepth) {
  const auto& spec = GetParam();
  static const sta::GateLibrary lib = sta::analyticLibrary();
  sta::Netlist nl;
  const auto outputs = sta::buildNetlist(spec, lib, &nl);
  EXPECT_EQ(outputs.size(), spec.width);
  EXPECT_EQ(nl.nodeCount(), spec.gateCount());
  EXPECT_TRUE(nl.validate().empty());
  const auto res = nl.levelize(sta::StructuralPolicy::Reject);
  EXPECT_EQ(res.levelCount(), spec.depth);
  EXPECT_EQ(res.order.size(), spec.gateCount());
}

TEST_P(SynthProperties, BlifRoundTripMatchesDirectBuild) {
  const auto& spec = GetParam();
  static const sta::GateLibrary lib = sta::analyticLibrary();
  sta::Netlist direct;
  sta::buildNetlist(spec, lib, &direct);
  sta::Netlist parsed;
  const auto summary =
      sta::readBlifString(sta::generateBlifString(spec), lib, &parsed);
  EXPECT_EQ(summary.modelName, spec.modelName);
  EXPECT_EQ(summary.gates, spec.gateCount());
  ASSERT_EQ(parsed.nodeCount(), direct.nodeCount());
  ASSERT_EQ(parsed.netCount(), direct.netCount());
  for (std::uint32_t i = 0; i < direct.nodeCount(); ++i) {
    const sta::NodeId node{i};
    EXPECT_EQ(parsed.nodeName(node), direct.nodeName(node));
    EXPECT_EQ(&parsed.nodeCell(node), &direct.nodeCell(node));
    const auto a = parsed.nodeInputs(node);
    const auto b = direct.nodeInputs(node);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
      EXPECT_EQ(parsed.netName(a[p]), direct.netName(b[p]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SynthProperties,
                         ::testing::ValuesIn(synthGrid()));

}  // namespace
