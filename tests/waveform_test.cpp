// Unit tests for the PWL waveform container and builders.

#include <gtest/gtest.h>

#include "waveform/pwl.hpp"
#include "waveform/waveform.hpp"

namespace {

using prox::wave::Edge;
using prox::wave::Waveform;

TEST(Waveform, AppendEnforcesMonotoneTime) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 2.0);
  EXPECT_THROW(w.append(0.5, 0.0), std::invalid_argument);
}

TEST(Waveform, AppendCollapsesDuplicateTimes) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(0.0, 3.0);  // replaces the value, no new sample
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.0);
}

TEST(Waveform, ConstructorRejectsUnsortedSamples) {
  EXPECT_THROW(Waveform({{1.0, 0.0}, {0.5, 1.0}}), std::invalid_argument);
}

TEST(Waveform, ValueInterpolatesLinearly) {
  Waveform w({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.0), 2.0);
}

TEST(Waveform, ValueClampsOutsideRange) {
  Waveform w({{1.0, 2.0}, {2.0, 5.0}});
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(10.0), 5.0);
}

TEST(Waveform, EmptyValueThrows) {
  Waveform w;
  EXPECT_THROW(w.value(0.0), std::runtime_error);
  EXPECT_THROW(w.startTime(), std::runtime_error);
  EXPECT_THROW(w.minValue(), std::runtime_error);
}

TEST(Waveform, RisingCrossingInterpolated) {
  Waveform w({{0.0, 0.0}, {1.0, 4.0}});
  const auto t = w.crossing(1.0, Edge::Rising);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.25);
}

TEST(Waveform, FallingCrossingInterpolated) {
  Waveform w({{0.0, 4.0}, {2.0, 0.0}});
  const auto t = w.crossing(1.0, Edge::Falling);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 1.5);
}

TEST(Waveform, CrossingDirectionality) {
  // Rising then falling triangle; each direction finds its own crossing.
  Waveform w({{0.0, 0.0}, {1.0, 2.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(*w.crossing(1.0, Edge::Rising), 0.5);
  EXPECT_DOUBLE_EQ(*w.crossing(1.0, Edge::Falling), 1.5);
}

TEST(Waveform, CrossingFromOffset) {
  Waveform w({{0.0, 0.0}, {1.0, 2.0}, {2.0, 0.0}, {3.0, 2.0}});
  const auto t = w.crossing(1.0, Edge::Rising, 1.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 2.5);
}

TEST(Waveform, NoCrossingReturnsNullopt) {
  Waveform w({{0.0, 0.0}, {1.0, 0.5}});
  EXPECT_FALSE(w.crossing(1.0, Edge::Rising).has_value());
}

TEST(Waveform, AllAndLastCrossings) {
  Waveform w({{0.0, 0.0}, {1.0, 2.0}, {2.0, 0.0}, {3.0, 2.0}});
  const auto all = w.allCrossings(1.0, Edge::Rising);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 0.5);
  EXPECT_DOUBLE_EQ(all[1], 2.5);
  EXPECT_DOUBLE_EQ(*w.lastCrossing(1.0, Edge::Rising), 2.5);
}

TEST(Waveform, MinMaxOverWindow) {
  Waveform w({{0.0, 0.0}, {1.0, 4.0}, {2.0, -2.0}, {3.0, 1.0}});
  EXPECT_DOUBLE_EQ(w.minValue(), -2.0);
  EXPECT_DOUBLE_EQ(w.maxValue(), 4.0);
  // Restricted window excludes the global extrema.
  EXPECT_DOUBLE_EQ(w.maxValue(2.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(w.minValue(0.0, 1.0), 0.0);
}

TEST(Waveform, ShiftedMovesTimeAxisOnly) {
  Waveform w({{0.0, 1.0}, {1.0, 2.0}});
  const Waveform s = w.shifted(0.5);
  EXPECT_DOUBLE_EQ(s.startTime(), 0.5);
  EXPECT_DOUBLE_EQ(s.value(1.5), 2.0);
}

TEST(Pwl, RampEndpointsAndMidpoint) {
  const Waveform w = prox::wave::ramp(1.0, 2.0, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(3.0), 4.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), 4.0);
}

TEST(Pwl, ZeroTauBecomesNearStep) {
  const Waveform w = prox::wave::ramp(1.0, 0.0, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(w.value(0.999999), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.000001), 5.0);
}

TEST(Pwl, NegativeTauThrows) {
  EXPECT_THROW(prox::wave::ramp(0.0, -1.0, 0.0, 1.0), std::invalid_argument);
}

TEST(Pwl, RisingAndFallingRails) {
  const Waveform r = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const Waveform f = prox::wave::fallingRamp(0.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(r.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(r.value(2.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(2.0), 0.0);
}

TEST(Pwl, ConstantHoldsEverywhere) {
  const Waveform c = prox::wave::constant(3.3);
  EXPECT_DOUBLE_EQ(c.value(-100.0), 3.3);
  EXPECT_DOUBLE_EQ(c.value(100.0), 3.3);
}

TEST(Pwl, PulseShape) {
  const Waveform p = prox::wave::pulse(1.0, 0.5, 2.0, 0.5, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(p.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.value(2.0), 5.0);   // on the plateau
  EXPECT_DOUBLE_EQ(p.value(10.0), 0.0);  // back to base
}

TEST(EdgeHelpers, Opposite) {
  EXPECT_EQ(prox::wave::opposite(Edge::Rising), Edge::Falling);
  EXPECT_EQ(prox::wave::opposite(Edge::Falling), Edge::Rising);
}

}  // namespace
