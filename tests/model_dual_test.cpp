// Dual-input proximity macromodel tests: the physics the paper's Figure 1-2
// reports (parallel reinforcement speeds the output up, series stacks slow
// it down), window limits, and table interpolation.

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using namespace prox;
using model::DualQuery;
using wave::Edge;

DualQuery query(int ref, int other, Edge e, double tauRef, double tauOther,
                double sep) {
  DualQuery q;
  q.refPin = ref;
  q.otherPin = other;
  q.edge = e;
  q.tauRef = tauRef;
  q.tauOther = tauOther;
  q.sep = sep;
  return q;
}

TEST(OracleDual, FallingPairSpeedsOutputUp) {
  // Figure 1-2(a): two falling inputs on a NAND turn on parallel PMOS paths;
  // close proximity reduces the delay -> ratio < 1.
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  model::OracleDualInputModel oracle(sim, *cg.singles);
  const double r = oracle.delayRatio(
      query(0, 1, Edge::Falling, 500e-12, 100e-12, 0.0));
  EXPECT_LT(r, 0.98);
  EXPECT_GT(r, 0.2);
}

TEST(OracleDual, RisingPairSlowsOutputDown) {
  // Figure 1-2(c): two rising inputs drive the series stack together; the
  // delay at zero separation exceeds the single-input delay -> ratio > 1.
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  model::OracleDualInputModel oracle(sim, *cg.singles);
  const double r = oracle.delayRatio(
      query(0, 1, Edge::Rising, 500e-12, 500e-12, 0.0));
  EXPECT_GT(r, 1.02);
}

TEST(OracleDual, RatioApproachesOneOutsideWindow) {
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  model::OracleDualInputModel oracle(sim, *cg.singles);
  const double d1 = cg.singles->at(0, Edge::Falling).delay(500e-12);
  // Separation well beyond Delta^(1): the other input is blocked.
  const double r = oracle.delayRatio(
      query(0, 1, Edge::Falling, 500e-12, 100e-12, d1 + 2e-9));
  EXPECT_NEAR(r, 1.0, 0.03);
}

TEST(OracleDual, CachingReturnsIdenticalValues) {
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  model::OracleDualInputModel oracle(sim, *cg.singles);
  const DualQuery q = query(0, 1, Edge::Falling, 300e-12, 300e-12, 50e-12);
  const double r1 = oracle.delayRatio(q);
  const long simsAfterFirst = sim.simulationCount();
  const double r2 = oracle.delayRatio(q);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(sim.simulationCount(), simsAfterFirst);  // cache hit, no new sim
}

TEST(DualTable, TrilinearInterpolationExactAtNodes) {
  model::DualTable t;
  t.u = {0.0, 1.0};
  t.v = {0.0, 1.0};
  t.w = {0.0, 1.0};
  t.ratio.assign(8, 0.0);
  // ratio = u + 2v + 4w at the corners -> trilinear reproduces it exactly.
  for (std::size_t iu = 0; iu < 2; ++iu) {
    for (std::size_t iv = 0; iv < 2; ++iv) {
      for (std::size_t iw = 0; iw < 2; ++iw) {
        t.at(iu, iv, iw) = static_cast<double>(iu) + 2.0 * static_cast<double>(iv) +
                           4.0 * static_cast<double>(iw);
      }
    }
  }
  EXPECT_DOUBLE_EQ(t.interpolate(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.interpolate(1.0, 1.0, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(t.interpolate(0.5, 0.5, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(t.interpolate(0.25, 0.75, 0.5), 0.25 + 1.5 + 2.0);
}

TEST(DualTable, ClampsOutsideGrid) {
  model::DualTable t;
  t.u = {0.0, 1.0};
  t.v = {0.0, 1.0};
  t.w = {0.0, 1.0};
  t.ratio.assign(8, 2.0);
  EXPECT_DOUBLE_EQ(t.interpolate(-5.0, 0.5, 9.0), 2.0);
}

TEST(DualTable, BytesAccountsForAxesAndValues) {
  model::DualTable t;
  t.u = {0.0, 1.0};
  t.v = {0.0, 1.0, 2.0};
  t.w = {0.0};
  t.ratio.assign(6, 1.0);
  EXPECT_EQ(t.bytes(), sizeof(double) * (2 + 3 + 1 + 6));
}

TEST(TabulatedDual, AgreesWithOracleInsideGrid) {
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  model::OracleDualInputModel oracle(sim, *cg.singles);
  // A query near the middle of the characterized region.
  const DualQuery q = query(0, 1, Edge::Falling, 400e-12, 300e-12, 60e-12);
  const double rOracle = oracle.delayRatio(q);
  const double rTable = cg.dual->delayRatio(q);
  EXPECT_NEAR(rTable, rOracle, 0.12);  // fast-config grid tolerance
}

TEST(TabulatedDual, ReturnsOneBeyondDelayWindow) {
  const auto& cg = testutil::nand2Model();
  const double d1 = cg.singles->at(0, Edge::Rising).delay(200e-12);
  EXPECT_DOUBLE_EQ(
      cg.dual->delayRatio(query(0, 1, Edge::Rising, 200e-12, 200e-12, d1 * 1.01)),
      1.0);
}

TEST(TabulatedDual, ReturnsOneBeyondTransitionWindow) {
  const auto& cg = testutil::nand2Model();
  const auto& m = cg.singles->at(0, Edge::Rising);
  const double edge = m.delay(200e-12) + m.transition(200e-12);
  EXPECT_DOUBLE_EQ(cg.dual->transitionRatio(
                       query(0, 1, Edge::Rising, 200e-12, 200e-12, edge * 1.01)),
                   1.0);
}

TEST(TabulatedDual, HasTablesForEveryPinAndEdge) {
  const auto& cg = testutil::nand2Model();
  for (int pin = 0; pin < 2; ++pin) {
    for (Edge e : {Edge::Rising, Edge::Falling}) {
      EXPECT_TRUE(cg.dual->hasTables(pin, e));
      EXPECT_FALSE(cg.dual->delayTable(pin, e).ratio.empty());
    }
  }
  EXPECT_GT(cg.dual->totalBytes(), 0u);
}

TEST(TabulatedDual, DelayRatioDirectionalPhysics) {
  // Table-based model preserves the Figure 1-2 signs at zero separation.
  const auto& cg = testutil::nand2Model();
  const double rFall =
      cg.dual->delayRatio(query(0, 1, Edge::Falling, 500e-12, 100e-12, 0.0));
  const double rRise =
      cg.dual->delayRatio(query(0, 1, Edge::Rising, 500e-12, 500e-12, 0.0));
  EXPECT_LT(rFall, 1.0);
  EXPECT_GT(rRise, 1.0);
}

}  // namespace
