// Section 6 tests: glitch magnitude vs separation and the inertial-delay
// (minimum valid separation) computation.

#include <gtest/gtest.h>

#include <cmath>

#include "model/glitch.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

TEST(Glitch, RequiresOppositeEdges) {
  model::GateSimulator sim(testutil::nand2Gate());
  model::GlitchAnalyzer an(sim);
  InputEvent rise{1, Edge::Rising, 0.0, 100e-12};
  InputEvent fall{0, Edge::Falling, 0.0, 500e-12};
  EXPECT_THROW(an.analyze(rise, fall), std::invalid_argument);  // swapped
}

TEST(Glitch, EarlyRiseCompletesTransition) {
  // b rises long before a falls: the output completes its fall.
  model::GateSimulator sim(testutil::nand2Gate());
  model::GlitchAnalyzer an(sim);
  InputEvent rise{1, Edge::Rising, 0.0, 100e-12};
  InputEvent fall{0, Edge::Falling, 2e-9, 500e-12};
  const auto g = an.analyze(fall, rise);
  EXPECT_TRUE(g.completed);
  EXPECT_LT(g.extremeVoltage, sim.thresholds().vil);
}

TEST(Glitch, EarlyFallBlocksTransition) {
  // a falls long before b rises: the pulldown path never conducts.
  model::GateSimulator sim(testutil::nand2Gate());
  model::GlitchAnalyzer an(sim);
  InputEvent fall{0, Edge::Falling, -2e-9, 500e-12};
  InputEvent rise{1, Edge::Rising, 0.0, 100e-12};
  const auto g = an.analyze(fall, rise);
  EXPECT_FALSE(g.completed);
  EXPECT_GT(g.extremeVoltage, 4.0);  // barely disturbed
}

TEST(Glitch, MagnitudeMonotoneInSeparation) {
  // Figure 6-1(b): the glitch deepens as the blocking input arrives later.
  model::GateSimulator sim(testutil::nand2Gate());
  const std::vector<double> seps{-400e-12, -200e-12, 0.0, 200e-12, 400e-12};
  const auto m = model::GlitchModel::characterize(sim, 0, 500e-12, 1, 100e-12,
                                                  seps);
  const auto& v = m.voltages();
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[i], v[i - 1] + 0.05) << "separation index " << i;
  }
}

TEST(Glitch, MinimumValidSeparationBracketsThreshold) {
  model::GateSimulator sim(testutil::nand2Gate());
  std::vector<double> seps;
  for (double s = -600e-12; s <= 800e-12; s += 100e-12) seps.push_back(s);
  const auto m = model::GlitchModel::characterize(sim, 0, 500e-12, 1, 100e-12,
                                                  seps);
  const double vil = sim.thresholds().vil;
  const auto sMin = m.minimumValidSeparation(vil);
  ASSERT_TRUE(sMin.has_value());
  // At the returned separation the interpolated curve hits vil.
  EXPECT_NEAR(m.extremeVoltage(*sMin), vil, 0.05);
  // Slightly earlier blocking (smaller s) leaves the glitch shallower.
  EXPECT_GT(m.extremeVoltage(*sMin - 200e-12), vil);
  EXPECT_LT(m.extremeVoltage(*sMin + 200e-12), vil);
}

TEST(Glitch, FasterRiseDeepensGlitch) {
  // With the enabling input faster, the stack conducts harder before the
  // block arrives -- deeper glitch at the same separation.
  model::GateSimulator sim(testutil::nand2Gate());
  model::GlitchAnalyzer an(sim);
  InputEvent fall{0, Edge::Falling, 0.0, 500e-12};
  const auto fast = an.analyze(fall, {1, Edge::Rising, 0.0, 100e-12});
  const auto slow = an.analyze(fall, {1, Edge::Rising, 0.0, 1000e-12});
  EXPECT_LT(fast.extremeVoltage, slow.extremeVoltage);
}

TEST(Glitch, CharacterizeValidatesGrid) {
  model::GateSimulator sim(testutil::nand2Gate());
  EXPECT_THROW(model::GlitchModel::characterize(sim, 0, 500e-12, 1, 100e-12,
                                                {0.0}),
               std::invalid_argument);
  EXPECT_THROW(model::GlitchModel::characterize(sim, 0, 500e-12, 1, 100e-12,
                                                {1e-10, -1e-10}),
               std::invalid_argument);
}

TEST(Glitch, UncharacterizedModelThrows) {
  model::GlitchModel m;
  EXPECT_THROW(m.extremeVoltage(0.0), std::runtime_error);
  EXPECT_THROW(m.minimumValidSeparation(1.0), std::runtime_error);
}

TEST(GlitchSurface, BilinearAndInertialDelayVsSlope) {
  model::GateSimulator sim(testutil::nand2Gate());
  std::vector<double> taus{100e-12, 500e-12, 1000e-12};
  std::vector<double> seps;
  for (double s = -600e-12; s <= 900.1e-12; s += 150e-12) seps.push_back(s);
  const auto surf = model::GlitchSurface::characterize(sim, 0, 500e-12, 1,
                                                       taus, seps);
  const double vil = sim.thresholds().vil;

  // Per-slope inertial delays exist and grow with the enabling slope
  // (Figure 6-1's family ordering).
  const auto s100 = surf.minimumValidSeparation(100e-12, vil);
  const auto s1000 = surf.minimumValidSeparation(1000e-12, vil);
  ASSERT_TRUE(s100 && s1000);
  EXPECT_LT(*s100, *s1000);

  // The surface agrees with a fresh 1-D characterization along a grid row.
  const auto row = model::GlitchModel::characterize(sim, 0, 500e-12, 1,
                                                    500e-12, seps);
  for (double s : {-300e-12, 0.0, 300e-12}) {
    EXPECT_NEAR(surf.extremeVoltage(500e-12, s), row.extremeVoltage(s), 1e-9);
  }

  // Interpolated slope between grid rows stays between its neighbours.
  const double mid = surf.extremeVoltage(300e-12, 0.0);
  const double lo = surf.extremeVoltage(100e-12, 0.0);
  const double hi = surf.extremeVoltage(500e-12, 0.0);
  EXPECT_GE(mid, std::min(lo, hi) - 1e-9);
  EXPECT_LE(mid, std::max(lo, hi) + 1e-9);
}

TEST(GlitchSurface, ValidatesGrids) {
  model::GateSimulator sim(testutil::nand2Gate());
  EXPECT_THROW(model::GlitchSurface::characterize(sim, 0, 1e-10, 1, {},
                                                  {0.0, 1e-10}),
               std::invalid_argument);
  EXPECT_THROW(model::GlitchSurface::characterize(sim, 0, 1e-10, 1, {1e-10},
                                                  {1e-10, 0.0}),
               std::invalid_argument);
  model::GlitchSurface empty;
  EXPECT_THROW(empty.extremeVoltage(1e-10, 0.0), std::runtime_error);
}

TEST(Glitch, NorGateRisingGlitch) {
  // Mirror scenario on a NOR2: falling input enables the pullup, rising
  // input blocks it; the glitch is positive-going.
  model::Gate g = model::makeGate(testutil::norSpec(2), 0.02);
  model::GateSimulator sim(g);
  model::GlitchAnalyzer an(sim);
  // fall at +s enables late; rise at 0 blocks: choose fall well before rise.
  InputEvent fall{0, Edge::Falling, -2e-9, 500e-12};
  InputEvent rise{1, Edge::Rising, 0.0, 100e-12};
  const auto completed = an.analyze(fall, rise);
  EXPECT_TRUE(completed.completed);
  EXPECT_GT(completed.extremeVoltage, g.thresholds.vih);

  InputEvent fallLate{0, Edge::Falling, 2e-9, 500e-12};
  InputEvent riseEarly{1, Edge::Rising, 0.0, 100e-12};
  const auto blocked = an.analyze(fallLate, riseEarly);
  EXPECT_FALSE(blocked.completed);
}

}  // namespace
