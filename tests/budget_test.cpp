// Unit tests for resource governance (support/budget.hpp): BudgetTracker
// limit enforcement, thread-local BudgetScope installation, the free charge
// helpers, and the obs counters that make budget exhaustion visible in
// --stats.

#include <gtest/gtest.h>

#include <functional>

#include "obs/registry.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"

namespace {

using namespace prox::support;

Diagnostic expectExhausted(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::ResourceExhausted);
    return e.diagnostic();
  }
  ADD_FAILURE() << "expected DiagnosticError(ResourceExhausted)";
  return {};
}

TEST(Budget, UnlimitedByDefault) {
  BudgetTracker t(ResourceBudget{});
  t.chargeNodes(1u << 20, "test");
  t.chargeTables(1u << 20, "test");
  t.chargeRecords(1u << 20, "test");
  t.checkRss("test");
  EXPECT_EQ(t.nodes(), 1u << 20);
}

TEST(Budget, NodeLimitThrowsTypedErrorAndCountsIt) {
  const auto before = prox::obs::counter("support.budget.exceeded").value();
  ResourceBudget b;
  b.maxNodes = 3;
  BudgetTracker t(b);
  t.chargeNodes(3, "test.site");
  const auto d = expectExhausted([&] { t.chargeNodes(1, "test.site"); });
  EXPECT_EQ(d.site, "test.site");
  EXPECT_NE(d.message.find("nodes"), std::string::npos);
  EXPECT_GE(prox::obs::counter("support.budget.exceeded").value(), before + 1);
}

TEST(Budget, TableAndRecordLimitsAreIndependent) {
  ResourceBudget b;
  b.maxTables = 2;
  b.maxRecords = 5;
  BudgetTracker t(b);
  t.chargeTables(2, "test");
  t.chargeRecords(5, "test");
  expectExhausted([&] { t.chargeTables(1, "test"); });
  expectExhausted([&] { t.chargeRecords(1, "test"); });
  // An unlimited axis stays unlimited.
  t.chargeNodes(1000, "test");
}

TEST(Budget, RssCeilingTripsAgainstRealUsage) {
  ASSERT_GT(currentRssBytes(), 0u) << "statm unavailable on this platform";
  ResourceBudget b;
  b.maxRssBytes = 1;  // far below any real process footprint
  BudgetTracker t(b);
  const auto d = expectExhausted([&] { t.checkRss("test.rss"); });
  EXPECT_NE(d.message.find("resident memory"), std::string::npos);
}

TEST(Budget, GenerousRssCeilingPasses) {
  ResourceBudget b;
  b.maxRssBytes = ~std::size_t{0};
  BudgetTracker t(b);
  for (int i = 0; i < 64; ++i) t.checkRss("test");  // crosses sample strides
}

TEST(Budget, ScopeInstallsAndRestoresThreadLocally) {
  EXPECT_EQ(currentBudget(), nullptr);
  ResourceBudget b;
  b.maxNodes = 1;
  BudgetTracker t(b);
  {
    BudgetScope scope(&t);
    EXPECT_EQ(currentBudget(), &t);
    budgetChargeNodes(1, "test");
    expectExhausted([] { budgetChargeNodes(1, "test"); });
    {
      BudgetScope nullScope(nullptr);  // null install keeps the outer budget
      EXPECT_EQ(currentBudget(), &t);
    }
    EXPECT_EQ(currentBudget(), &t);
  }
  EXPECT_EQ(currentBudget(), nullptr);
  // With no scope installed every helper is a no-op.
  budgetChargeNodes(1u << 30, "test");
  budgetChargeTables(1u << 30, "test");
  budgetChargeRecords(1u << 30, "test");
  budgetCheckRss("test");
}

TEST(Budget, ChargesAccumulateAcrossCalls) {
  ResourceBudget b;
  b.maxRecords = 10;
  BudgetTracker t(b);
  for (int i = 0; i < 10; ++i) t.chargeRecords(1, "test");
  EXPECT_EQ(t.records(), 10u);
  expectExhausted([&] { t.chargeRecords(1, "test"); });
}

}  // namespace
