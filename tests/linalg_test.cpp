// Unit tests for the dense matrix and LU solver.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace {

using prox::linalg::LuFactorization;
using prox::linalg::Matrix;
using prox::linalg::Vector;

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, SetZeroClearsWithoutResize) {
  Matrix m(2, 2);
  m(0, 0) = 5.0;
  m(1, 1) = -3.0;
  m.setZero();
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(1, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
}

TEST(Matrix, MultiplyMatchesManualComputation) {
  Matrix m(2, 3);
  m(0, 0) = 1.0; m(0, 1) = 2.0; m(0, 2) = 3.0;
  m(1, 0) = 4.0; m(1, 1) = 5.0; m(1, 2) = 6.0;
  const Vector x{1.0, -1.0, 2.0};
  const Vector y = m.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 - 2.0 + 6.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0 - 5.0 + 12.0);
}

TEST(Matrix, MultiplySizeMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, MaxAbsFindsLargestMagnitude) {
  Matrix m(2, 2);
  m(0, 1) = -7.5;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.maxAbs(), 7.5);
}

TEST(VectorOps, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(prox::linalg::norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(prox::linalg::normInf(v), 4.0);
}

TEST(VectorOps, SubtractSizeMismatchThrows) {
  EXPECT_THROW(prox::linalg::subtract(Vector{1.0}, Vector{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Lu, SolvesKnown2x2System) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const Vector x = prox::linalg::solve(a, Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the leading diagonal forces a row exchange.
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const Vector x = prox::linalg::solve(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;  // rank 1
  LuFactorization lu;
  EXPECT_FALSE(lu.factor(a));
  EXPECT_THROW(prox::linalg::solve(a, Vector{1.0, 1.0}), std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  LuFactorization lu;
  EXPECT_THROW(lu.factor(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 3.0; a(0, 1) = 1.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(a));
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
}

TEST(Lu, ReusableForMultipleRhs) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(a));
  const Vector x1 = lu.solve(Vector{5.0, 4.0});
  const Vector x2 = lu.solve(Vector{9.0, 7.0});
  EXPECT_NEAR(4.0 * x1[0] + x1[1], 5.0, 1e-12);
  EXPECT_NEAR(4.0 * x2[0] + x2[1], 9.0, 1e-12);
}

TEST(Lu, SolveBeforeFactorThrows) {
  LuFactorization lu;
  EXPECT_THROW(lu.solve(Vector{1.0}), std::runtime_error);
}

TEST(Lu, RhsSizeMismatchThrows) {
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(Matrix::identity(3)));
  EXPECT_THROW(lu.solve(Vector{1.0, 2.0}), std::invalid_argument);
}

// Property-style sweep: random diagonally dominant systems of varying size
// solve to residuals near machine precision.
class LuRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSweep, ResidualIsTiny) {
  const int n = GetParam();
  std::mt19937 rng(42 + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);

  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double rowSum = 0.0;
    for (int c = 0; c < n; ++c) {
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = dist(rng);
      rowSum += std::fabs(a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)));
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) +=
        rowSum + 1.0;  // strict dominance (the +1 keeps n=1 nonsingular)
  }
  Vector b(static_cast<std::size_t>(n));
  for (double& x : b) x = dist(rng);

  const Vector x = prox::linalg::solve(a, b);
  const Vector r = prox::linalg::subtract(a.multiply(x), b);
  EXPECT_LT(prox::linalg::normInf(r), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
