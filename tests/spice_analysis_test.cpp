// Analysis-level tests: operating point (with continuation fallbacks),
// DC sweep, and transient on CMOS circuits.

#include <gtest/gtest.h>

#include <cmath>

#include "cells/cell.hpp"
#include "spice/dcsweep.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"
#include "waveform/pwl.hpp"

namespace {

using namespace prox::spice;
using prox::cells::buildCell;
using prox::cells::CellSpec;
using prox::cells::GateType;

CellSpec inverterSpec() {
  CellSpec s;
  s.type = GateType::Inverter;
  s.fanin = 1;
  return s;
}

TEST(Op, InverterLogicLevels) {
  for (double vin : {0.0, 5.0}) {
    Circuit ckt;
    const auto nets = buildCell(ckt, inverterSpec(), "x0");
    ckt.add<VoltageSource>("vin", nets.inputs[0], kGround, vin);
    const auto x = operatingPoint(ckt);
    ASSERT_TRUE(x.has_value());
    const double vout = ckt.nodeVoltage(*x, nets.out);
    if (vin == 0.0) {
      EXPECT_NEAR(vout, 5.0, 0.01);
    } else {
      EXPECT_NEAR(vout, 0.0, 0.01);
    }
  }
}

TEST(Op, Nand3TruthTable) {
  CellSpec spec;
  spec.type = GateType::Nand;
  spec.fanin = 3;
  for (unsigned mask = 0; mask < 8; ++mask) {
    Circuit ckt;
    const auto nets = buildCell(ckt, spec, "x0");
    for (int k = 0; k < 3; ++k) {
      ckt.add<VoltageSource>("vin" + std::to_string(k), nets.inputs[k], kGround,
                             (mask >> k) & 1u ? 5.0 : 0.0);
    }
    const auto x = operatingPoint(ckt);
    ASSERT_TRUE(x.has_value()) << "mask=" << mask;
    const double vout = ckt.nodeVoltage(*x, nets.out);
    if (mask == 7u) {
      EXPECT_LT(vout, 0.05) << "mask=" << mask;  // all high -> out low
    } else {
      EXPECT_GT(vout, 4.9) << "mask=" << mask;
    }
  }
}

TEST(Op, Nor2TruthTable) {
  CellSpec spec;
  spec.type = GateType::Nor;
  spec.fanin = 2;
  for (unsigned mask = 0; mask < 4; ++mask) {
    Circuit ckt;
    const auto nets = buildCell(ckt, spec, "x0");
    for (int k = 0; k < 2; ++k) {
      ckt.add<VoltageSource>("vin" + std::to_string(k), nets.inputs[k], kGround,
                             (mask >> k) & 1u ? 5.0 : 0.0);
    }
    const auto x = operatingPoint(ckt);
    ASSERT_TRUE(x.has_value()) << "mask=" << mask;
    const double vout = ckt.nodeVoltage(*x, nets.out);
    if (mask == 0u) {
      EXPECT_GT(vout, 4.9) << "mask=" << mask;  // all low -> out high
    } else {
      EXPECT_LT(vout, 0.05) << "mask=" << mask;
    }
  }
}

TEST(Op, SeedAcceleratesConvergence) {
  Circuit ckt;
  const auto nets = buildCell(ckt, inverterSpec(), "x0");
  ckt.add<VoltageSource>("vin", nets.inputs[0], kGround, 2.5);
  const auto x1 = operatingPoint(ckt);
  ASSERT_TRUE(x1.has_value());
  // Re-solving from the solution must converge to the same point.
  const auto x2 = operatingPoint(ckt, {}, &*x1);
  ASSERT_TRUE(x2.has_value());
  EXPECT_NEAR(ckt.nodeVoltage(*x1, nets.out), ckt.nodeVoltage(*x2, nets.out),
              1e-6);
}

TEST(DcSweep, InverterVtcIsMonotoneFalling) {
  Circuit ckt;
  const auto nets = buildCell(ckt, inverterSpec(), "x0");
  auto& vin = ckt.add<VoltageSource>("vin", nets.inputs[0], kGround, 0.0);
  const auto sweep = dcSweep(ckt, vin, 0.0, 5.0, 0.05);
  ASSERT_EQ(sweep.sweepValues.size(), 101u);
  const auto curve = sweep.nodeCurve(ckt, nets.out);
  EXPECT_NEAR(curve.value(0.0), 5.0, 0.01);
  EXPECT_NEAR(curve.value(5.0), 0.0, 0.01);
  for (std::size_t i = 1; i < curve.samples().size(); ++i) {
    EXPECT_LE(curve.samples()[i].v, curve.samples()[i - 1].v + 1e-6);
  }
}

TEST(DcSweep, DescendingSweepMatchesAscending) {
  Circuit ckt;
  const auto nets = buildCell(ckt, inverterSpec(), "x0");
  auto& vin = ckt.add<VoltageSource>("vin", nets.inputs[0], kGround, 0.0);
  const auto up = dcSweep(ckt, vin, 0.0, 5.0, 0.5);
  const auto down = dcSweep(ckt, vin, 5.0, 0.0, 0.5);
  ASSERT_EQ(up.sweepValues.size(), down.sweepValues.size());
  // CMOS VTC has no hysteresis: both directions agree.
  for (std::size_t i = 0; i < up.sweepValues.size(); ++i) {
    const std::size_t j = up.sweepValues.size() - 1 - i;
    EXPECT_NEAR(ckt.nodeVoltage(up.solutions[i], nets.out),
                ckt.nodeVoltage(down.solutions[j], nets.out), 1e-4);
  }
}

TEST(DcSweep, RejectsNonPositiveStep) {
  Circuit ckt;
  auto& v = ckt.add<VoltageSource>("v", ckt.node("a"), kGround, 0.0);
  EXPECT_THROW(dcSweep(ckt, v, 0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Tran, InverterSwitchingBothDirections) {
  Circuit ckt;
  const auto nets = buildCell(ckt, inverterSpec(), "x0");
  ckt.add<VoltageSource>("vin", nets.inputs[0], kGround,
                         prox::wave::risingRamp(0.5e-9, 0.3e-9, 5.0));
  TranOptions opt;
  opt.tstop = 4e-9;
  const auto res = transient(ckt, opt);
  const auto out = res.node(nets.out);
  EXPECT_NEAR(out.value(0.0), 5.0, 0.05);
  EXPECT_NEAR(out.value(4e-9), 0.0, 0.05);
  // Output crosses 2.5 V exactly once, falling.
  EXPECT_EQ(out.allCrossings(2.5, prox::wave::Edge::Falling).size(), 1u);
}

TEST(Tran, OutputDelayPositiveAndOrdered) {
  // Faster input slope -> earlier output crossing.
  double tCross[2] = {0, 0};
  const double taus[2] = {0.2e-9, 1.0e-9};
  for (int i = 0; i < 2; ++i) {
    Circuit ckt;
    const auto nets = buildCell(ckt, inverterSpec(), "x0");
    ckt.add<VoltageSource>("vin", nets.inputs[0], kGround,
                           prox::wave::risingRamp(0.5e-9, taus[i], 5.0));
    TranOptions opt;
    opt.tstop = 6e-9;
    const auto out = transient(ckt, opt).node(nets.out);
    const auto t = out.crossing(2.5, prox::wave::Edge::Falling);
    ASSERT_TRUE(t.has_value());
    tCross[i] = *t;
  }
  EXPECT_LT(tCross[0], tCross[1]);
}

TEST(Tran, FloatingStackNodesDoNotUnderflowTimestep) {
  // A capacitor-free series stack: when both transistors turn off the
  // internal node floats and re-equilibrates through gmin in one memoryless
  // jump.  The stepper must accept that jump instead of chasing it to a
  // timestep underflow (regression test for the dv-limiter).
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId out = ckt.node("out");
  const NodeId mid = ckt.node("mid");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("vdd", vdd, kGround, 5.0);
  MosfetParams nP;  // defaults: NMOS level-1
  ckt.add<Mosfet>("m1", out, a, mid, kGround, nP);
  ckt.add<Mosfet>("m2", mid, b, kGround, kGround, nP);
  MosfetParams pP;
  pP.nmos = false;
  pP.vt0 = -0.9;
  pP.kp = 25e-6;
  ckt.add<Mosfet>("m3", out, a, vdd, vdd, pP);
  ckt.add<Mosfet>("m4", out, b, vdd, vdd, pP);
  ckt.add<Capacitor>("cl", out, kGround, 100e-15);
  // Both inputs fall: the stack shuts off and `mid` floats.
  ckt.add<VoltageSource>("va", a, kGround,
                         prox::wave::fallingRamp(1e-9, 0.5e-9, 5.0));
  ckt.add<VoltageSource>("vb", b, kGround,
                         prox::wave::fallingRamp(1.2e-9, 0.1e-9, 5.0));
  TranOptions opt;
  opt.tstop = 5e-9;
  const auto res = transient(ckt, opt);  // must not throw
  EXPECT_NEAR(res.node(out).value(5e-9), 5.0, 0.05);
}

TEST(Tran, EnergyConservationSanity) {
  // After a full output swing the load capacitor ends at the rails: check
  // final voltages rather than mid-transition details.
  Circuit ckt;
  CellSpec spec = inverterSpec();
  spec.loadCap = 200e-15;
  const auto nets = buildCell(ckt, spec, "x0");
  ckt.add<VoltageSource>("vin", nets.inputs[0], kGround,
                         prox::wave::fallingRamp(0.5e-9, 0.5e-9, 5.0));
  TranOptions opt;
  opt.tstop = 6e-9;
  const auto out = transient(ckt, opt).node(nets.out);
  EXPECT_NEAR(out.value(0.0), 0.0, 0.05);
  EXPECT_NEAR(out.value(6e-9), 5.0, 0.05);
}

}  // namespace
