// The full proximity-model stack on complex gates: characterization,
// dominance-sense selection per switching subnetwork, delay prediction vs
// simulation, and serialization round trips -- the paper's "comprehensive
// delay model for multi-input gates" future-work direction.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "characterize/serialize.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

const characterize::CharacterizedGate& aoi21Model() {
  static const characterize::CharacterizedGate g =
      characterize::characterizeComplexGate(cells::aoi21(),
                                            testutil::fastConfig());
  return g;
}

TEST(ComplexModel, PackageComplete) {
  const auto& cg = aoi21Model();
  EXPECT_EQ(cg.pinCount(), 3);
  ASSERT_TRUE(cg.gate.complex.has_value());
  EXPECT_EQ(cg.gate.spec.type, cells::GateType::Complex);
  for (int pin = 0; pin < 3; ++pin) {
    for (Edge e : {Edge::Rising, Edge::Falling}) {
      EXPECT_TRUE(cg.singles->has(pin, e));
      EXPECT_TRUE(cg.dual->hasTables(pin, e));
    }
  }
}

TEST(ComplexModel, DominanceSenseFollowsSubnetworkStructure) {
  const auto spec = cells::aoi21();
  // Rising {a, b}: the a.b series branch needs both -> latest first.
  EXPECT_EQ(model::complexDominanceSense(spec, {0, 1}, Edge::Rising),
            model::DominanceSense::LatestFirst);
  // Falling {a, b} (sensitized with c = 0): either falling pin breaks the
  // series pulldown / opens the parallel pullup -> earliest first.
  EXPECT_EQ(model::complexDominanceSense(spec, {0, 1}, Edge::Falling),
            model::DominanceSense::EarliestFirst);
  // Rising {a, c} (sensitized with b = 1): a alone pulls down through a.b,
  // c alone pulls down directly -> parallel race, earliest first.
  EXPECT_EQ(model::complexDominanceSense(spec, {0, 2}, Edge::Rising),
            model::DominanceSense::EarliestFirst);
}

TEST(ComplexModel, SimulatorRejectsUnsensitizableSubset) {
  // OAI21 pulldown (a+b).c: subset {a,b} rising with c low never conducts...
  // c low cannot happen: sensitization requires c = 1, which exists, so use
  // a genuinely dead case: on AOI21 there is none -- every subset
  // sensitizes.  Construct f = a.b.c and ask for subset {a} with b forced
  // low... sensitization search would pick b = c = 1, which works.  The
  // rejection path therefore needs a subset whose complement cannot enable
  // it: f = a.(b+b) is inexpressible; instead verify the throw with an
  // out-of-range pin, and sensitization success everywhere on AOI21.
  const auto& cg = aoi21Model();
  model::GateSimulator sim(cg.gate);
  EXPECT_THROW(sim.simulate({{9, Edge::Rising, 0.0, 1e-10}}, 0),
               std::invalid_argument);
}

TEST(ComplexModel, SingleInputDelaysPositiveAndMonotone) {
  const auto& cg = aoi21Model();
  for (int pin = 0; pin < 3; ++pin) {
    for (Edge e : {Edge::Rising, Edge::Falling}) {
      const auto& m = cg.singles->at(pin, e);
      double prev = 0.0;
      for (const auto& row : m.table()) {
        EXPECT_GT(row.delay, prev);
        prev = row.delay;
      }
    }
  }
}

TEST(ComplexModel, PredictionTracksSimulationSeriesBranch) {
  // Rising a+b (series subnetwork, latest-first): sweep separation and
  // compare the calculator against full simulation.
  const auto& cg = aoi21Model();
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();
  for (double s : {-150e-12, 0.0, 150e-12}) {
    std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                                {1, Edge::Rising, s, 200e-12}};
    const auto full = sim.simulate(evs, 0);
    ASSERT_TRUE(full.outputRefTime.has_value()) << "s=" << s;
    const auto r = calc.compute(evs);
    EXPECT_NEAR(r.outputRefTime, *full.outputRefTime, 0.18 * *full.delay)
        << "s=" << s;
  }
}

TEST(ComplexModel, PredictionTracksSimulationParallelBranch) {
  // Rising a+c (parallel subnetworks, earliest-first).
  const auto& cg = aoi21Model();
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();
  for (double s : {-150e-12, 0.0, 150e-12}) {
    std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                                {2, Edge::Rising, s, 200e-12}};
    const auto full = sim.simulate(evs, 0);
    ASSERT_TRUE(full.outputRefTime.has_value()) << "s=" << s;
    const auto r = calc.compute(evs);
    EXPECT_NEAR(r.outputRefTime, *full.outputRefTime, 0.18 * *full.delay)
        << "s=" << s;
  }
}

TEST(ComplexModel, FallingPairSpeedsOutputUp) {
  const auto& cg = aoi21Model();
  const auto calc = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 400e-12},
                              {1, Edge::Falling, 0.0, 150e-12}};
  const auto r = calc.compute(evs);
  const double alone = cg.singles->at(r.dominantPin, Edge::Falling)
                           .delay(r.dominantPin == 0 ? 400e-12 : 150e-12);
  EXPECT_LT(r.delay, alone);
}

TEST(ComplexModel, SerializationRoundTrip) {
  const auto& cg = aoi21Model();
  std::stringstream ss;
  characterize::saveGateModel(cg, ss);
  const auto loaded = characterize::loadGateModel(ss);
  ASSERT_TRUE(loaded.gate.complex.has_value());
  EXPECT_EQ(loaded.gate.complex->pulldown.toString(),
            cg.gate.complex->pulldown.toString());

  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                              {1, Edge::Rising, 40e-12, 200e-12}};
  const auto r1 = cg.calculator().compute(evs);
  const auto r2 = loaded.calculator().compute(evs);
  EXPECT_DOUBLE_EQ(r1.delay, r2.delay);
  EXPECT_EQ(r1.dominantPin, r2.dominantPin);
}

TEST(ComplexModel, PullExprParseRoundTrip) {
  for (const char* text : {"((a.b)+c)", "((a+b).c)", "((a.b)+(c.d))",
                           "a", "(a+b+c)", "((a.b.c)+d)"}) {
    const auto e = cells::PullExpr::parse(text);
    EXPECT_EQ(e.toString(), text);
  }
  // Unparenthesized with precedence: '.' binds tighter than '+'.
  const auto e = cells::PullExpr::parse("a.b+c");
  EXPECT_EQ(e.toString(), "((a.b)+c)");
}

TEST(ComplexModel, PullExprParseErrors) {
  EXPECT_THROW(cells::PullExpr::parse(""), std::invalid_argument);
  EXPECT_THROW(cells::PullExpr::parse("(a.b"), std::invalid_argument);
  EXPECT_THROW(cells::PullExpr::parse("a.b)"), std::invalid_argument);
  EXPECT_THROW(cells::PullExpr::parse("a..b"), std::invalid_argument);
  EXPECT_THROW(cells::PullExpr::parse("1+2"), std::invalid_argument);
}

}  // namespace
