// Tests for pointwise min/max waveform combination (exactness including
// segment-crossing points).

#include <gtest/gtest.h>

#include "waveform/combine.hpp"
#include "waveform/pwl.hpp"

namespace {

using prox::wave::Waveform;

TEST(Combine, MinOfCrossingRamps) {
  // Two ramps crossing at t = 1: min follows the later-rising one after the
  // crossing... actually the *smaller* one: before t=1 ramp b (starting
  // later) is smaller; the crossing is a breakpoint of the result.
  const Waveform a = prox::wave::risingRamp(0.0, 2.0, 4.0);  // slope 2
  Waveform b;
  b.append(0.0, -1.0);
  b.append(2.0, 7.0);  // slope 4, crosses a at t = 1 (value 2)
  const Waveform m = prox::wave::pointwiseMin({a, b});
  EXPECT_DOUBLE_EQ(m.value(0.0), -1.0);
  EXPECT_DOUBLE_EQ(m.value(0.5), 1.0);   // b
  EXPECT_DOUBLE_EQ(m.value(1.0), 2.0);   // crossing, exact breakpoint
  EXPECT_DOUBLE_EQ(m.value(1.5), 3.0);   // a
  EXPECT_DOUBLE_EQ(m.value(3.0), 4.0);   // a clamps at 4, b at 7
}

TEST(Combine, MaxIsMirrorOfMin) {
  const Waveform a = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const Waveform b = prox::wave::risingRamp(0.5, 1.0, 5.0);
  const Waveform mn = prox::wave::pointwiseMin({a, b});
  const Waveform mx = prox::wave::pointwiseMax({a, b});
  for (double t : {0.0, 0.25, 0.75, 1.2, 2.0}) {
    EXPECT_DOUBLE_EQ(mn.value(t), std::min(a.value(t), b.value(t)));
    EXPECT_DOUBLE_EQ(mx.value(t), std::max(a.value(t), b.value(t)));
  }
}

TEST(Combine, MinOfIdenticalWaveformsIsIdentity) {
  const Waveform a = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const Waveform m = prox::wave::pointwiseMin({a, a, a});
  for (double t : {-1.0, 0.3, 0.9, 2.0}) {
    EXPECT_DOUBLE_EQ(m.value(t), a.value(t));
  }
}

TEST(Combine, ConstantDominatesWhenLowest) {
  const Waveform a = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const Waveform c = prox::wave::constant(2.0);
  const Waveform m = prox::wave::pointwiseMin({a, c});
  EXPECT_DOUBLE_EQ(m.value(0.0), 0.0);   // ramp below 2 early
  EXPECT_DOUBLE_EQ(m.value(1.0), 2.0);   // clamped by the constant later
  EXPECT_DOUBLE_EQ(m.value(10.0), 2.0);
}

TEST(Combine, ThreeWayMinTracksLowest) {
  const Waveform a = prox::wave::risingRamp(0.0, 1.0, 5.0);
  const Waveform b = prox::wave::risingRamp(0.4, 1.0, 5.0);
  const Waveform c = prox::wave::risingRamp(0.8, 1.0, 5.0);
  const Waveform m = prox::wave::pointwiseMin({a, b, c});
  for (double t : {0.1, 0.5, 0.9, 1.3, 2.5}) {
    EXPECT_DOUBLE_EQ(m.value(t),
                     std::min({a.value(t), b.value(t), c.value(t)}));
  }
}

TEST(Combine, EmptyInputsThrow) {
  EXPECT_THROW(prox::wave::pointwiseMin({}), std::invalid_argument);
  EXPECT_THROW(prox::wave::pointwiseMin({Waveform{}}), std::invalid_argument);
}

}  // namespace
