// Tests for series-parallel pull networks and complex (AOI/OAI) gates.

#include <gtest/gtest.h>

#include "cells/complex_fixture.hpp"
#include "cells/pull_network.hpp"
#include "spice/op.hpp"
#include "vtc/complex.hpp"
#include "waveform/pwl.hpp"

namespace {

using namespace prox;
using cells::PullExpr;

TEST(PullExpr, ConstructionAndAccessors) {
  const PullExpr e = PullExpr::parallel(
      {PullExpr::series({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::input(2)});
  EXPECT_EQ(e.kind(), PullExpr::Kind::Parallel);
  EXPECT_EQ(e.maxPin(), 2);
  EXPECT_EQ(e.transistorCount(), 3);
  EXPECT_EQ(e.toString(), "((a.b)+c)");
}

TEST(PullExpr, ValidatesArguments) {
  EXPECT_THROW(PullExpr::input(-1), std::invalid_argument);
  EXPECT_THROW(PullExpr::series({}), std::invalid_argument);
  EXPECT_THROW(PullExpr::parallel({}), std::invalid_argument);
}

TEST(PullExpr, DualSwapsSeriesAndParallel) {
  const PullExpr e = PullExpr::parallel(
      {PullExpr::series({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::input(2)});
  const PullExpr d = e.dual();
  EXPECT_EQ(d.toString(), "((a+b).c)");
  // Dual of dual is the original.
  EXPECT_EQ(d.dual().toString(), e.toString());
}

TEST(PullExpr, ConductionMatchesBooleanFunction) {
  // f = (a AND b) OR c over all 8 assignments.
  const PullExpr e = PullExpr::parallel(
      {PullExpr::series({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::input(2)});
  for (unsigned m = 0; m < 8; ++m) {
    const bool a = m & 1u;
    const bool b = m & 2u;
    const bool c = m & 4u;
    EXPECT_EQ(e.conducts({a, b, c}), (a && b) || c) << "mask " << m;
  }
}

TEST(PullExpr, DeMorganDualityOfConduction) {
  // For any series-parallel f: dual(f)(NOT x) == NOT f(x) -- this is what
  // makes the PMOS network the complement of the NMOS network.
  const PullExpr f = PullExpr::series(
      {PullExpr::parallel({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::input(2)});
  const PullExpr g = f.dual();
  for (unsigned m = 0; m < 8; ++m) {
    std::vector<bool> x{bool(m & 1u), bool(m & 2u), bool(m & 4u)};
    std::vector<bool> nx{!x[0], !x[1], !x[2]};
    EXPECT_EQ(g.conducts(nx), !f.conducts(x)) << "mask " << m;
  }
}

TEST(ComplexSpec, SensitizingAssignmentAoi21) {
  const auto spec = cells::aoi21();
  // Pin a needs b = 1 and c = 0.
  const auto s = spec.sensitizingAssignment({0});
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE((*s)[1]);
  EXPECT_FALSE((*s)[2]);
  // Pin c needs a AND b == 0 (any such assignment).
  const auto sc = spec.sensitizingAssignment({2});
  ASSERT_TRUE(sc.has_value());
  EXPECT_FALSE((*sc)[0] && (*sc)[1]);
}

TEST(ComplexSpec, UnsensitizableSubsetReturnsNullopt) {
  // f = a + a' -- not expressible here, so use a case where a subset cannot
  // toggle: f = a (1 input); subset {0} is sensitizable, nothing else to
  // test negatively -- instead craft f = (a+b): subset {a} with b high can't
  // toggle, but b low can, so it IS sensitizable.  A genuinely dead subset
  // needs a constant function, which series-parallel leaves can't produce;
  // assert sensitizability for every subset of AOI22 instead.
  const auto spec = cells::aoi22();
  for (unsigned m = 1; m < 16; ++m) {
    std::vector<int> subset;
    for (int k = 0; k < 4; ++k) {
      if ((m >> k) & 1u) subset.push_back(k);
    }
    EXPECT_TRUE(spec.sensitizingAssignment(subset).has_value()) << "mask " << m;
  }
}

TEST(ComplexSpec, PinOutOfRangeThrows) {
  const auto spec = cells::aoi21();
  EXPECT_THROW(spec.sensitizingAssignment({7}), std::invalid_argument);
}

void checkTruthTable(const cells::ComplexCellSpec& spec) {
  const int n = spec.pinCount();
  for (unsigned m = 0; m < (1u << n); ++m) {
    spice::Circuit ckt;
    const auto nets = cells::buildComplexCell(ckt, spec, "x0");
    std::vector<bool> levels;
    for (int k = 0; k < n; ++k) {
      const bool high = (m >> k) & 1u;
      levels.push_back(high);
      ckt.add<spice::VoltageSource>("vin" + std::to_string(k), nets.inputs[k],
                                    spice::kGround,
                                    high ? spec.tech.vdd : 0.0);
    }
    const auto x = spice::operatingPoint(ckt);
    ASSERT_TRUE(x.has_value()) << "mask " << m;
    const double vout = ckt.nodeVoltage(*x, nets.out);
    if (spec.outputFor(levels)) {
      EXPECT_GT(vout, spec.tech.vdd - 0.1) << "mask " << m;
    } else {
      EXPECT_LT(vout, 0.1) << "mask " << m;
    }
  }
}

TEST(ComplexCell, Aoi21TruthTable) { checkTruthTable(cells::aoi21()); }
TEST(ComplexCell, Oai21TruthTable) { checkTruthTable(cells::oai21()); }
TEST(ComplexCell, Aoi22TruthTable) { checkTruthTable(cells::aoi22()); }

TEST(ComplexCell, TransistorCountsAndInternals) {
  spice::Circuit ckt;
  const auto spec = cells::aoi22();
  const auto nets = cells::buildComplexCell(ckt, spec, "u0");
  EXPECT_EQ(nets.inputs.size(), 4u);
  // 4 NMOS + 4 PMOS, each series pair contributing one internal node.
  EXPECT_EQ(nets.internals.size(), 1u + 1u + 1u);  // pd: 2 pairs, pu: 1 chain? structural
  EXPECT_NE(nets.vddSource, nullptr);
  EXPECT_NE(nets.load, nullptr);
}

TEST(ComplexFixture, Aoi21SwitchesViaCPath) {
  // a=b=0 (AND branch off); c rising pulls the output low.
  cells::ComplexCellFixture fix(cells::aoi21());
  fix.setLevels({false, false, false});
  fix.setInput(2, wave::risingRamp(0.5e-9, 300e-12, 5.0));
  const auto out = fix.runOutput(4e-9);
  EXPECT_NEAR(out.value(0.0), 5.0, 0.05);
  EXPECT_NEAR(out.value(4e-9), 0.0, 0.05);
}

TEST(ComplexFixture, Aoi21ProximityOnParallelPullup) {
  // With c = 0 the pullup is (a||b) in series with the c PMOS.  Falling a
  // and b open parallel paths: close transitions give a faster output rise
  // than separated ones (the Figure 1-2(a) effect on a complex gate).
  cells::ComplexCellFixture fix(cells::aoi21());
  const double vdd = 5.0;
  auto crossing = [&](double sep) {
    fix.setLevels({true, true, false});
    fix.setInput(0, wave::fallingRamp(0.8e-9, 400e-12, vdd));
    fix.setInput(1, wave::fallingRamp(0.8e-9 + sep, 150e-12, vdd));
    const auto out = fix.runOutput(6e-9);
    const auto t = out.lastCrossing(vdd / 2.0, wave::Edge::Rising);
    EXPECT_TRUE(t.has_value());
    return t.value_or(0.0);
  };
  const double tClose = crossing(0.0);
  const double tFar = crossing(800e-12);
  EXPECT_LT(tClose, tFar - 20e-12);
}

TEST(ComplexVtc, Aoi21FamilyAndThresholdRule) {
  const auto rep = vtc::chooseComplexThresholds(cells::aoi21(), 0.02);
  EXPECT_EQ(rep.curves.size() + rep.skippedSubsets.size(), 7u);
  EXPECT_TRUE(rep.skippedSubsets.empty());  // every AOI21 subset sensitizable
  for (const auto& c : rep.curves) {
    EXPECT_LT(rep.chosen.vil, c.curve.points.vm);
    EXPECT_GT(rep.chosen.vih, c.curve.points.vm);
  }
}

TEST(ComplexVtc, NonSensitizingAssignmentThrows) {
  // Subset {a} with c held HIGH: the output is stuck low.
  const auto spec = cells::aoi21();
  std::vector<bool> stable{false, true, true};  // c = 1 kills the toggle
  EXPECT_THROW(vtc::extractComplexVtc(spec, {0}, stable, 0.05),
               std::runtime_error);
}

TEST(ComplexVtc, ValidatesArguments) {
  const auto spec = cells::aoi21();
  EXPECT_THROW(vtc::extractComplexVtc(spec, {}, {false, true, false}, 0.05),
               std::invalid_argument);
  EXPECT_THROW(vtc::extractComplexVtc(spec, {0}, {false}, 0.05),
               std::invalid_argument);
}

}  // namespace
