// VTC extraction and Section 2 threshold-rule tests.

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"
#include "vtc/thresholds.hpp"

namespace {

using namespace prox;
using testutil::invSpec;
using testutil::nandSpec;
using testutil::norSpec;

TEST(AnalyzeVtc, SyntheticInverterCurve) {
  // Synthetic smooth falling curve: vout = vdd / (1 + exp(k (vin - vm))).
  const double vdd = 5.0;
  const double vm = 2.5;
  const double k = 4.0;
  wave::Waveform curve;
  for (double v = 0.0; v <= 5.0001; v += 0.01) {
    curve.append(v, vdd / (1.0 + std::exp(k * (v - vm))));
  }
  const auto pts = vtc::analyzeVtc(curve);
  // At vin = 2.5 the logistic gives vdd/2 = 2.5 exactly, so vm = 2.5.
  EXPECT_NEAR(pts.vm, 2.5, 0.01);
  EXPECT_LT(pts.vil, pts.vm);
  EXPECT_GT(pts.vih, pts.vm);
  // Logistic symmetry: unity-gain points sit symmetrically around vm = 2.5.
  EXPECT_NEAR((pts.vil + pts.vih) / 2.0, vm, 0.02);
}

TEST(AnalyzeVtc, RejectsShortCurve) {
  wave::Waveform w({{0.0, 5.0}, {5.0, 0.0}});
  EXPECT_THROW(vtc::analyzeVtc(w), std::runtime_error);
}

TEST(AnalyzeVtc, RejectsShallowCurve) {
  // Slope never reaches -1: no unity-gain region.
  wave::Waveform w;
  for (double v = 0.0; v <= 5.0001; v += 0.1) w.append(v, 5.0 - 0.5 * v);
  EXPECT_THROW(vtc::analyzeVtc(w), std::runtime_error);
}

TEST(ExtractVtc, InverterOrdering) {
  const auto c = vtc::extractVtc(invSpec(), {0}, 0.02);
  EXPECT_LT(c.points.vil, c.points.vm);
  EXPECT_LT(c.points.vm, c.points.vih);
  EXPECT_GT(c.points.vil, 0.0);
  EXPECT_LT(c.points.vih, 5.0);
}

TEST(ExtractVtc, RejectsBadSubset) {
  EXPECT_THROW(vtc::extractVtc(nandSpec(2), {}, 0.02), std::invalid_argument);
  EXPECT_THROW(vtc::extractVtc(nandSpec(2), {5}, 0.02), std::invalid_argument);
}

TEST(ExtractAllVtcs, CountIsTwoToTheNMinusOne) {
  const auto curves = vtc::extractAllVtcs(nandSpec(2), 0.02);
  EXPECT_EQ(curves.size(), 3u);  // 2^2 - 1
}

TEST(Thresholds, Nand3FamilyStructure) {
  // The paper's Section 2 claims, verified on our NAND3:
  //  * the minimum V_il comes from a single-input curve (the input closest
  //    to ground in the stack),
  //  * the maximum V_ih comes from the all-inputs-switching curve.
  const auto rep = vtc::chooseThresholds(nandSpec(3), 0.02);
  ASSERT_EQ(rep.curves.size(), 7u);

  const auto& vilCurve = rep.curves[rep.vilCurveIndex];
  EXPECT_EQ(vilCurve.switchingInputs.size(), 1u);
  EXPECT_EQ(vilCurve.switchingInputs[0], 2);  // bottom of the stack

  const auto& vihCurve = rep.curves[rep.vihCurveIndex];
  EXPECT_EQ(vihCurve.switchingInputs.size(), 3u);  // all switching
}

TEST(Thresholds, RuleGuaranteesVilBelowEveryVmBelowVih) {
  // The invariant that makes every delay positive (Section 2).
  const auto rep = vtc::chooseThresholds(nandSpec(3), 0.02);
  for (const auto& c : rep.curves) {
    EXPECT_LT(rep.chosen.vil, c.points.vm);
    EXPECT_GT(rep.chosen.vih, c.points.vm);
  }
}

TEST(Thresholds, NorFamilyMirrored) {
  // For a NOR, V_il comes from the all-switching curve and V_ih from a
  // single-input curve (Section 2).
  const auto rep = vtc::chooseThresholds(norSpec(2), 0.02);
  ASSERT_EQ(rep.curves.size(), 3u);
  const auto& vilCurve = rep.curves[rep.vilCurveIndex];
  const auto& vihCurve = rep.curves[rep.vihCurveIndex];
  EXPECT_EQ(vilCurve.switchingInputs.size(), 2u);
  EXPECT_EQ(vihCurve.switchingInputs.size(), 1u);
  for (const auto& c : rep.curves) {
    EXPECT_LT(rep.chosen.vil, c.points.vm);
    EXPECT_GT(rep.chosen.vih, c.points.vm);
  }
}

TEST(Thresholds, EmptyCurveListThrows) {
  EXPECT_THROW(vtc::chooseThresholds(std::vector<vtc::VtcCurve>{}),
               std::invalid_argument);
}

// Property sweep: the min-Vil/max-Vih rule holds for every fan-in.
class ThresholdFaninSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdFaninSweep, InvariantAcrossFanin) {
  const auto rep = vtc::chooseThresholds(nandSpec(GetParam()), 0.025);
  EXPECT_EQ(rep.curves.size(), (1u << GetParam()) - 1);
  for (const auto& c : rep.curves) {
    EXPECT_LE(rep.chosen.vil, c.points.vil + 1e-12);
    EXPECT_GE(rep.chosen.vih, c.points.vih - 1e-12);
    EXPECT_LT(rep.chosen.vil, c.points.vm);
    EXPECT_GT(rep.chosen.vih, c.points.vm);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanins, ThresholdFaninSweep, ::testing::Values(2, 3, 4));

}  // namespace
