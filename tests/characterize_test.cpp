// Characterization-flow and serialization tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "characterize/serialize.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using wave::Edge;

TEST(Characterize, PackageIsComplete) {
  const auto& cg = testutil::nand2Model();
  EXPECT_EQ(cg.pinCount(), 2);
  EXPECT_GT(cg.gate.thresholds.vih, cg.gate.thresholds.vil);
  for (int pin = 0; pin < 2; ++pin) {
    for (Edge e : {Edge::Rising, Edge::Falling}) {
      EXPECT_TRUE(cg.singles->has(pin, e));
      EXPECT_TRUE(cg.dual->hasTables(pin, e));
    }
  }
  // NAND2: corrections characterized for k = 2 in both directions.
  EXPECT_EQ(cg.correction.delayErrorRising.size(), 1u);
  EXPECT_EQ(cg.correction.delayErrorFalling.size(), 1u);
}

TEST(Characterize, DualTableAxesSortedAndSized) {
  const auto& cg = testutil::nand2Model();
  const auto cfg = testutil::fastConfig();
  const auto& t = cg.dual->delayTable(0, Edge::Rising);
  EXPECT_EQ(t.u.size(), cfg.dualTauIndices.size());
  EXPECT_EQ(t.v.size(), cfg.vGrid.size());
  EXPECT_EQ(t.w.size(), cfg.wGrid.size());
  EXPECT_EQ(t.ratio.size(), t.u.size() * t.v.size() * t.w.size());
  EXPECT_TRUE(std::is_sorted(t.u.begin(), t.u.end()));
}

TEST(Characterize, DelayRatioAtWindowEdgeNearOne) {
  // The last w grid point sits at the window boundary s = Delta^(1), where
  // the other input can no longer affect the delay.
  const auto& cg = testutil::nand2Model();
  const auto& t = cg.dual->delayTable(0, Edge::Falling);
  const std::size_t lastW = t.w.size() - 1;
  ASSERT_DOUBLE_EQ(t.w[lastW], 1.0);
  for (std::size_t iu = 0; iu < t.u.size(); ++iu) {
    for (std::size_t iv = 0; iv < t.v.size(); ++iv) {
      EXPECT_NEAR(t.at(iu, iv, lastW), 1.0, 0.15)
          << "iu=" << iu << " iv=" << iv;
    }
  }
}

TEST(Characterize, InverterGetsIdentityDualTables) {
  characterize::CharacterizationConfig cfg = testutil::fastConfig();
  const auto cg = characterize::characterizeGate(testutil::invSpec(), cfg);
  EXPECT_EQ(cg.pinCount(), 1);
  EXPECT_TRUE(cg.dual->hasTables(0, Edge::Rising));
  EXPECT_DOUBLE_EQ(cg.dual->delayTable(0, Edge::Rising).ratio[0], 1.0);
  // No multi-input correction possible.
  EXPECT_TRUE(cg.correction.empty());
}

TEST(Characterize, BadDualTauIndexThrows) {
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  characterize::CharacterizationConfig cfg = testutil::fastConfig();
  cfg.dualTauIndices = {99};
  model::DualTable dt;
  model::DualTable tt;
  EXPECT_THROW(characterize::buildDualTables(sim, *cg.singles, 0, 1,
                                             Edge::Rising, cfg, &dt, &tt),
               std::invalid_argument);
  EXPECT_THROW(characterize::buildDualTables(sim, *cg.singles, 0, 1,
                                             Edge::Rising, cfg, nullptr, &tt),
               std::invalid_argument);
}

TEST(Serialize, RoundTripPreservesQueries) {
  const auto& cg = testutil::nand2Model();
  std::stringstream ss;
  characterize::saveGateModel(cg, ss);
  const auto loaded = characterize::loadGateModel(ss);

  EXPECT_EQ(loaded.gate.spec.fanin, cg.gate.spec.fanin);
  EXPECT_DOUBLE_EQ(loaded.gate.thresholds.vil, cg.gate.thresholds.vil);
  EXPECT_DOUBLE_EQ(loaded.gate.thresholds.vih, cg.gate.thresholds.vih);

  // Identical answers for single, dual and full-algorithm queries.
  for (double tau : {100e-12, 432e-12, 1500e-12}) {
    EXPECT_DOUBLE_EQ(loaded.singles->at(0, Edge::Rising).delay(tau),
                     cg.singles->at(0, Edge::Rising).delay(tau));
    EXPECT_DOUBLE_EQ(loaded.singles->at(1, Edge::Falling).transition(tau),
                     cg.singles->at(1, Edge::Falling).transition(tau));
  }
  model::DualQuery q;
  q.refPin = 0;
  q.otherPin = 1;
  q.edge = Edge::Falling;
  q.tauRef = 300e-12;
  q.tauOther = 200e-12;
  q.sep = 40e-12;
  EXPECT_DOUBLE_EQ(loaded.dual->delayRatio(q), cg.dual->delayRatio(q));
  EXPECT_DOUBLE_EQ(loaded.dual->transitionRatio(q), cg.dual->transitionRatio(q));

  std::vector<model::InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                                     {1, Edge::Rising, 50e-12, 200e-12}};
  const auto r1 = cg.calculator().compute(evs);
  const auto r2 = loaded.calculator().compute(evs);
  EXPECT_DOUBLE_EQ(r1.delay, r2.delay);
  EXPECT_DOUBLE_EQ(r1.transitionTime, r2.transitionTime);
}

TEST(Serialize, FileRoundTrip) {
  const auto& cg = testutil::nand2Model();
  const std::string path = ::testing::TempDir() + "/nand2.prox";
  characterize::saveGateModel(cg, path);
  const auto loaded = characterize::loadGateModelFile(path);
  EXPECT_EQ(loaded.gate.spec.type, cells::GateType::Nand);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCorruptHeader) {
  std::stringstream ss("not-a-model 1\n");
  EXPECT_THROW(characterize::loadGateModel(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  const auto& cg = testutil::nand2Model();
  std::stringstream ss;
  characterize::saveGateModel(cg, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(characterize::loadGateModel(cut), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(characterize::loadGateModelFile("/nonexistent/foo.prox"),
               std::runtime_error);
}

TEST(StepCorrectionCharacterize, SimulationMinusModelSign) {
  // Rerun the correction characterization explicitly and verify it equals
  // simulation minus uncorrected model for the simultaneous-step case.
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  const auto corr = characterize::characterizeStepCorrection(
      sim, *cg.singles, *cg.dual, testutil::fastConfig().stepTau);

  model::ProximityOptions raw;
  raw.applyCorrection = false;
  const model::ProximityCalculator calc(cg.gate.spec.type, *cg.singles,
                                        *cg.dual, {}, raw);
  std::vector<model::InputEvent> evs{
      {0, Edge::Rising, 0.0, testutil::fastConfig().stepTau},
      {1, Edge::Rising, 0.0, testutil::fastConfig().stepTau}};
  const auto actual = sim.simulate(evs, 0);
  ASSERT_TRUE(actual.delay.has_value());
  const auto modeled = calc.compute(evs);
  EXPECT_NEAR(corr.delayErrorRising[0], *actual.delay - modeled.delay, 1e-15);
}

}  // namespace
