// Structural netlist validation: cycle detection with the offending path
// named, multi-driver and dangling-net checks, and the
// DelayCalcOptions::structural degradation ladder exercised end-to-end
// through TimingAnalyzer at both settings (Reject throws a typed
// StructuralError; Degrade completes with the defect tallied in
// structuralIssues()/degradedArcNames()).

#include <gtest/gtest.h>

#include <algorithm>

#include "sta/timing_graph.hpp"
#include "support/diagnostic.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using sta::DelayMode;
using sta::Netlist;
using sta::StructuralIssue;
using sta::StructuralPolicy;
using support::DiagnosticError;
using support::StatusCode;
using wave::Edge;

using Kind = StructuralIssue::Kind;

// u1 -> u2 -> u3 -> u1 ring, plus a clean u0 so degraded runs still have
// something valid to analyze.
Netlist cyclicNetlist() {
  const auto& cell = testutil::nand2Model();
  Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u0", cell, {"a", "b"}, "y0");
  nl.addInstance("u1", cell, {"a", "y3"}, "y1");
  nl.addInstance("u2", cell, {"y1", "b"}, "y2");
  nl.addInstance("u3", cell, {"y2", "a"}, "y3");
  return nl;
}

const StructuralIssue* findIssue(const std::vector<StructuralIssue>& issues,
                                 Kind kind) {
  const auto it = std::find_if(issues.begin(), issues.end(),
                               [&](const auto& i) { return i.kind == kind; });
  return it == issues.end() ? nullptr : &*it;
}

TEST(StructuralValidation, CleanNetlistHasNoIssues) {
  const auto& cell = testutil::nand2Model();
  Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y1");
  nl.addInstance("u2", cell, {"y1", "b"}, "y2");
  EXPECT_TRUE(nl.validate().empty());
  const auto res = nl.levelize(StructuralPolicy::Reject);
  ASSERT_EQ(res.levelCount(), 2u);
  EXPECT_TRUE(res.issues.empty());
  EXPECT_TRUE(res.degradedInstances.empty());
}

TEST(StructuralValidation, CycleIsNamedInPathOrder) {
  const auto issues = cyclicNetlist().validate();
  const auto* cycle = findIssue(issues, Kind::Cycle);
  ASSERT_NE(cycle, nullptr);
  // Signal-flow order: u2 drives u3 drives u1 drives u2.
  EXPECT_NE(cycle->message.find("u2 -> u3 -> u1 -> u2"), std::string::npos)
      << cycle->message;
  EXPECT_EQ(cycle->instances,
            (std::vector<std::string>{"u2", "u3", "u1"}));
}

TEST(StructuralValidation, RejectPolicyThrowsTypedStructuralError) {
  try {
    cyclicNetlist().levelize(StructuralPolicy::Reject);
    FAIL() << "expected DiagnosticError(StructuralError)";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::StructuralError);
    EXPECT_EQ(e.diagnostic().site, "sta.netlist");
    EXPECT_NE(e.diagnostic().message.find("combinational cycle"),
              std::string::npos);
  }
}

TEST(StructuralValidation, DegradeBreaksLoopAtLowestNumberedMember) {
  const auto res = cyclicNetlist().levelize(StructuralPolicy::Degrade);
  // Every instance placed exactly once -- levelization terminated.
  EXPECT_EQ(res.order.size(), 4u);
  ASSERT_FALSE(res.degradedInstances.empty());
  // u1 is the lowest-numbered cycle member, so the break lands there.
  EXPECT_EQ(res.degradedInstances.front(), "u1");
  EXPECT_NE(findIssue(res.issues, Kind::Cycle), nullptr);
}

TEST(StructuralValidation, SelfLoopIsItsOwnKind) {
  const auto& cell = testutil::nand2Model();
  Netlist nl;
  nl.addPrimaryInput("a");
  nl.addInstance("u1", cell, {"a", "y1"}, "y1");
  const auto issues = nl.validate();
  const auto* loop = findIssue(issues, Kind::SelfLoop);
  ASSERT_NE(loop, nullptr);
  EXPECT_NE(loop->message.find("u1 -> u1"), std::string::npos);
  EXPECT_THROW(nl.levelize(StructuralPolicy::Reject), DiagnosticError);
}

TEST(StructuralValidation, LenientMultiDriverIsReportedNotThrown) {
  const auto& cell = testutil::nand2Model();
  Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y");
  nl.addInstanceLenient("u2", cell, {"b", "a"}, "y");  // second driver of y
  const auto issues = nl.validate();
  const auto* md = findIssue(issues, Kind::MultiDriver);
  ASSERT_NE(md, nullptr);
  EXPECT_NE(md->message.find("multiply driven"), std::string::npos);
  EXPECT_NE(md->message.find("y"), std::string::npos);
  // Reject still refuses the graph; strict addInstance still throws.
  EXPECT_THROW(nl.levelize(StructuralPolicy::Reject), DiagnosticError);
  EXPECT_THROW(nl.addInstance("u3", cell, {"a", "b"}, "y"),
               std::invalid_argument);
}

TEST(StructuralValidation, DanglingInputIsNamed) {
  const auto& cell = testutil::nand2Model();
  Netlist nl;
  nl.addPrimaryInput("a");
  nl.addInstance("u1", cell, {"a", "floating"}, "y1");
  const auto issues = nl.validate();
  const auto* d = findIssue(issues, Kind::DanglingInput);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("floating"), std::string::npos);
  EXPECT_EQ(d->instances, std::vector<std::string>{"u1"});
  // Degrade treats the dangling net as no-event and still levelizes.
  const auto res = nl.levelize(StructuralPolicy::Degrade);
  ASSERT_EQ(res.levelCount(), 1u);
  EXPECT_EQ(res.degradedInstances, std::vector<std::string>{"u1"});
}

TEST(StructuralValidation, KindNamesAreStable) {
  EXPECT_STREQ(sta::structuralKindName(Kind::Cycle), "cycle");
  EXPECT_STREQ(sta::structuralKindName(Kind::SelfLoop), "self-loop");
  EXPECT_STREQ(sta::structuralKindName(Kind::MultiDriver), "multi-driver");
  EXPECT_STREQ(sta::structuralKindName(Kind::DanglingInput),
               "dangling-input");
}

// --- degradation ladder through the analyzer --------------------------------

TEST(StructuralLadder, AnalyzerRejectsDefectiveGraphByDefault) {
  const Netlist nl = cyclicNetlist();
  sta::TimingAnalyzer ta(nl, DelayMode::Proximity);  // default: Reject
  ta.setInputArrival("a", {0.0, 300e-12, Edge::Rising});
  EXPECT_THROW(ta.run(), DiagnosticError);
}

TEST(StructuralLadder, AnalyzerDegradeCompletesAndTalliesTheDamage) {
  const Netlist nl = cyclicNetlist();
  sta::DelayCalcOptions opts;
  opts.structural = StructuralPolicy::Degrade;
  sta::TimingAnalyzer ta(nl, DelayMode::Proximity, opts);
  // One switching input only: the broken loop must not manufacture
  // mixed-direction events at any gate.
  ta.setInputArrival("a", {0.0, 300e-12, Edge::Rising});
  ta.run();

  // The clean side of the graph still produced real analysis.
  EXPECT_TRUE(ta.arrival("y0").has_value());
  // The loop-break is visible in all three reporting channels.
  EXPECT_GE(ta.degradedArcs(), 1u);
  const auto& names = ta.degradedArcNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "u1"), names.end());
  EXPECT_NE(findIssue(ta.structuralIssues(), Kind::Cycle), nullptr);
}

TEST(StructuralLadder, DegradeOnCleanGraphReportsNothing) {
  const auto& cell = testutil::nand2Model();
  Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y1");
  sta::DelayCalcOptions opts;
  opts.structural = StructuralPolicy::Degrade;
  sta::TimingAnalyzer ta(nl, DelayMode::Proximity, opts);
  ta.setInputArrival("a", {0.0, 300e-12, Edge::Rising});
  ta.run();
  EXPECT_TRUE(ta.structuralIssues().empty());
  EXPECT_TRUE(ta.degradedArcNames().empty());
  EXPECT_EQ(ta.degradedArcs(), 0u);
}

}  // namespace
