// Flat transistor-level netlist simulation vs the STA: the end-to-end
// validation the paper's model exists to enable.

#include <gtest/gtest.h>

#include <cmath>

#include "sta/flat_sim.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using sta::Arrival;
using sta::DelayMode;
using wave::Edge;

struct Chain {
  sta::Netlist nl;
  std::unordered_map<std::string, Arrival> arrivals;
};

Chain buildChain() {
  const auto& cell = testutil::nand2Model();
  Chain c;
  for (const char* pi : {"a", "b", "s1"}) c.nl.addPrimaryInput(pi);
  c.nl.addInstance("u1", cell, {"a", "b"}, "y1");
  c.nl.addInstance("u2", cell, {"y1", "s1"}, "y2");
  c.arrivals = {{"a", {0.0, 250e-12, Edge::Rising}},
                {"b", {40e-12, 350e-12, Edge::Rising}}};
  return c;
}

TEST(FlatSim, ProducesArrivalsAndWaveforms) {
  Chain c = buildChain();
  const auto flat = sta::simulateFlat(c.nl, c.arrivals);
  ASSERT_TRUE(flat.arrivals.count("y1"));
  ASSERT_TRUE(flat.arrivals.count("y2"));
  EXPECT_TRUE(flat.waves.count("a"));
  EXPECT_TRUE(flat.waves.count("y2"));
  EXPECT_EQ(flat.arrivals.at("y1").edge, Edge::Falling);
  EXPECT_EQ(flat.arrivals.at("y2").edge, Edge::Rising);
  EXPECT_GT(flat.arrivals.at("y2").time, flat.arrivals.at("y1").time);
}

TEST(FlatSim, ProximityStaTracksFlatSimBetterThanClassic) {
  Chain c = buildChain();
  const auto flat = sta::simulateFlat(c.nl, c.arrivals);

  auto staError = [&](DelayMode mode) {
    sta::TimingAnalyzer ta(c.nl, mode);
    for (const auto& [net, arr] : c.arrivals) ta.setInputArrival(net, arr);
    ta.run();
    double err = 0.0;
    for (const char* net : {"y1", "y2"}) {
      const auto a = ta.arrival(net);
      EXPECT_TRUE(a.has_value());
      err += std::fabs(a->time - flat.arrivals.at(net).time);
    }
    return err;
  };

  const double errProx = staError(DelayMode::Proximity);
  const double errClassic = staError(DelayMode::Classic);
  EXPECT_LT(errProx, errClassic);
  // Absolute agreement: the characterization load differs from the real
  // fanout load, so allow a generous per-net band.
  EXPECT_LT(errProx / 2.0, 60e-12);
}

TEST(FlatSim, StablePrimaryInputHeldNonControlling) {
  Chain c = buildChain();
  const auto flat = sta::simulateFlat(c.nl, c.arrivals);
  // s1 has no arrival: it must sit at Vdd (NAND non-controlling) throughout.
  ASSERT_TRUE(flat.waves.count("s1"));
  EXPECT_GT(flat.waves.at("s1").minValue(), 4.9);
}

TEST(FlatSim, NetsThatNeverSwitchHaveNoArrival) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y");
  // No arrivals at all: output stays put.
  const auto flat = sta::simulateFlat(nl, {});
  EXPECT_EQ(flat.arrivals.count("y"), 0u);
}

TEST(FlatSim, FanoutOfTwoLoadsTheDriver) {
  // y1 drives two gates: the measured y1 transition is slower than in the
  // single-fanout chain (physical loading the flat sim captures).
  const auto& cell = testutil::nand2Model();

  Chain single = buildChain();
  const auto flatSingle = sta::simulateFlat(single.nl, single.arrivals);

  sta::Netlist nl2;
  for (const char* pi : {"a", "b", "s1", "s2"}) nl2.addPrimaryInput(pi);
  nl2.addInstance("u1", cell, {"a", "b"}, "y1");
  nl2.addInstance("u2", cell, {"y1", "s1"}, "y2");
  nl2.addInstance("u3", cell, {"y1", "s2"}, "y3");
  const auto flatDouble = sta::simulateFlat(nl2, single.arrivals);

  ASSERT_TRUE(flatSingle.arrivals.count("y1"));
  ASSERT_TRUE(flatDouble.arrivals.count("y1"));
  EXPECT_GT(flatDouble.arrivals.at("y1").slope,
            flatSingle.arrivals.at("y1").slope);
}

}  // namespace
