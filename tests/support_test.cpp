// Unit tests for the fault-tolerance support layer: typed diagnostics,
// Status/DiagnosticLog, the deterministic fault-injection plan, and the
// DualTable clamp-distance reporting the STA degraded mode relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "model/dual_input.hpp"
#include "support/diagnostic.hpp"
#include "support/fault_injection.hpp"

namespace {

using namespace prox;
using support::Diagnostic;
using support::DiagnosticError;
using support::DiagnosticLog;
using support::FaultKind;
using support::FaultPlan;
using support::FaultSpec;
using support::Severity;
using support::Status;
using support::StatusCode;

TEST(Diagnostic, CodeAndSeverityNames) {
  EXPECT_STREQ(support::statusCodeName(StatusCode::Ok), "ok");
  EXPECT_STREQ(support::statusCodeName(StatusCode::SingularMatrix),
               "singular-matrix");
  EXPECT_STREQ(support::statusCodeName(StatusCode::NewtonNonConverge),
               "newton-nonconverge");
  EXPECT_STREQ(support::statusCodeName(StatusCode::TimestepUnderflow),
               "timestep-underflow");
  EXPECT_STREQ(support::statusCodeName(StatusCode::TableOutOfRange),
               "table-out-of-range");
  EXPECT_STREQ(support::statusCodeName(StatusCode::TableMissing),
               "table-missing");
  EXPECT_STREQ(support::statusCodeName(StatusCode::ParseError), "parse-error");
  EXPECT_STREQ(support::severityName(Severity::Warning), "warning");
  EXPECT_STREQ(support::severityName(Severity::Error), "error");
}

TEST(Diagnostic, ToStringCarriesContext) {
  const Diagnostic d =
      support::makeDiagnostic(StatusCode::NewtonNonConverge, "no convergence")
          .withSite("spice.newton")
          .withGate("u42")
          .withPin(1)
          .withLine(7)
          .withSweepPoint(100e-12, -50e-12);
  const std::string s = d.toString();
  EXPECT_NE(s.find("spice.newton"), std::string::npos);
  EXPECT_NE(s.find("no convergence"), std::string::npos);
  EXPECT_NE(s.find("newton-nonconverge"), std::string::npos);
  EXPECT_NE(s.find("u42"), std::string::npos);
  EXPECT_NE(s.find("line 7"), std::string::npos);
  EXPECT_FALSE(d.ok());
}

TEST(Diagnostic, ErrorIsRuntimeErrorWithTypedCode) {
  const DiagnosticError e(
      support::makeDiagnostic(StatusCode::TableMissing, "no table")
          .withPin(2));
  const std::runtime_error& base = e;  // legacy catch sites keep working
  EXPECT_NE(std::string(base.what()).find("no table"), std::string::npos);
  EXPECT_EQ(e.code(), StatusCode::TableMissing);
  EXPECT_EQ(e.severity(), Severity::Error);
  EXPECT_EQ(e.diagnostic().pin, 2);
}

TEST(Diagnostic, StatusDefaultsToSuccess) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  const Status bad = Status::failure(StatusCode::IoError, "cannot open");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::IoError);
  EXPECT_NE(bad.toString().find("cannot open"), std::string::npos);
}

TEST(Diagnostic, LogTracksWorstSeverity) {
  DiagnosticLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.worstSeverity(), Severity::Info);
  log.record(support::makeDiagnostic(StatusCode::SimulationFailed, "a")
                 .withSeverity(Severity::Warning));
  EXPECT_EQ(log.worstSeverity(), Severity::Warning);
  log.record(support::makeDiagnostic(StatusCode::Internal, "b"));
  EXPECT_EQ(log.worstSeverity(), Severity::Error);
  EXPECT_EQ(log.size(), 2u);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.worstSeverity(), Severity::Info);
}

#if PROX_ENABLE_FAULT_INJECTION

TEST(FaultPlan, FiresOnlyInsideWindow) {
  FaultPlan::Scope scope({"test.site", FaultKind::SingularLu, 2, 2});
  EXPECT_TRUE(FaultPlan::armed());
  EXPECT_FALSE(PROX_FAULT_POINT("test.site", SingularLu));  // hit 1
  EXPECT_TRUE(PROX_FAULT_POINT("test.site", SingularLu));   // hit 2
  EXPECT_TRUE(PROX_FAULT_POINT("test.site", SingularLu));   // hit 3
  EXPECT_FALSE(PROX_FAULT_POINT("test.site", SingularLu));  // hit 4
  EXPECT_EQ(FaultPlan::hits(), 4u);
  EXPECT_EQ(FaultPlan::fired(), 2u);
}

TEST(FaultPlan, SiteAndKindMustBothMatch) {
  FaultPlan::Scope scope({"test.site", FaultKind::NanResidual, 1, 100});
  EXPECT_FALSE(PROX_FAULT_POINT("other.site", NanResidual));
  EXPECT_FALSE(PROX_FAULT_POINT("test.site", SingularLu));
  EXPECT_EQ(FaultPlan::hits(), 0u);
  EXPECT_TRUE(PROX_FAULT_POINT("test.site", NanResidual));
  EXPECT_EQ(FaultPlan::hits(), 1u);
  EXPECT_EQ(FaultPlan::fired(), 1u);
}

TEST(FaultPlan, DisarmedNeverFires) {
  FaultPlan::disarm();
  EXPECT_FALSE(FaultPlan::armed());
  EXPECT_FALSE(PROX_FAULT_POINT("test.site", SingularLu));
}

#endif  // PROX_ENABLE_FAULT_INJECTION

model::DualTable tinyTable() {
  model::DualTable t;
  t.u = {1.0, 2.0};
  t.v = {0.5, 1.5};
  t.w = {-1.0, 1.0};
  t.ratio.assign(8, 1.0);
  // Make the surface non-constant so interpolation is observable.
  t.at(1, 1, 1) = 2.0;
  return t;
}

TEST(DualTable, InGridQueryReportsZeroClampDistance) {
  const model::DualTable t = tinyTable();
  double dist = -1.0;
  t.interpolate(1.5, 1.0, 0.0, &dist);
  EXPECT_DOUBLE_EQ(dist, 0.0);
}

TEST(DualTable, OutOfGridQueryClampsAndReportsDistance) {
  const model::DualTable t = tinyTable();
  double dist = 0.0;
  // u overshoots by 1.0 beyond a span of 1.0 -> relative distance 1.0.
  const double r = t.interpolate(3.0, 1.0, 0.0, &dist);
  EXPECT_DOUBLE_EQ(dist, 1.0);
  EXPECT_TRUE(std::isfinite(r));
  // The clamped answer equals the boundary value.
  EXPECT_DOUBLE_EQ(r, t.interpolate(2.0, 1.0, 0.0));
  // The largest per-axis overshoot wins.
  t.interpolate(3.0, 1.0, 5.0, &dist);
  EXPECT_DOUBLE_EQ(dist, 2.0);
}

TEST(DualTable, HealedMarksRoundTripThroughAccessors) {
  model::DualTable t = tinyTable();
  EXPECT_EQ(t.healedCount(), 0u);
  EXPECT_FALSE(t.isHealed(0, 1, 1));
  t.markHealed(0, 1, 1);
  EXPECT_TRUE(t.isHealed(0, 1, 1));
  EXPECT_FALSE(t.isHealed(0, 0, 0));
  EXPECT_EQ(t.healedCount(), 1u);
}

}  // namespace
