// STA-layer tests: netlist structure, topological ordering, delay-calc
// semantics, and classic-vs-proximity propagation.

#include <gtest/gtest.h>

#include "sta/timing_graph.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using sta::Arrival;
using sta::DelayMode;
using wave::Edge;

TEST(Netlist, RejectsDuplicateInstanceNames) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y");
  EXPECT_THROW(nl.addInstance("u1", cell, {"a", "b"}, "z"),
               std::invalid_argument);
}

TEST(Netlist, RejectsMultipleDrivers) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y");
  EXPECT_THROW(nl.addInstance("u2", cell, {"a", "b"}, "y"),
               std::invalid_argument);
  EXPECT_THROW(nl.addPrimaryInput("y"), std::invalid_argument);
}

TEST(Netlist, RejectsPinCountMismatch) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  EXPECT_THROW(nl.addInstance("u1", cell, {"a"}, "y"), std::invalid_argument);
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  // Add the consumer first to make the sort do real work.
  nl.addInstance("u2", cell, {"y1", "b"}, "y2");
  nl.addInstance("u1", cell, {"a", "b"}, "y1");
  const auto order = nl.topologicalOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(nl.nodeName(order[0]), "u1");
  EXPECT_EQ(nl.nodeName(order[1]), "u2");
}

TEST(Netlist, DetectsUndrivenInput) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addInstance("u1", cell, {"a", "floating"}, "y");
  EXPECT_THROW(nl.topologicalOrder(), std::runtime_error);
}

TEST(Netlist, DetectsCycle) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addInstance("u1", cell, {"a", "y2"}, "y1");
  nl.addInstance("u2", cell, {"a", "y1"}, "y2");
  EXPECT_THROW(nl.topologicalOrder(), std::runtime_error);
}

TEST(DelayCalc, NoSwitchingPinsYieldsNoOutput) {
  const auto& cell = testutil::nand2Model();
  const auto out =
      sta::evaluateGate(cell, {std::nullopt, std::nullopt}, DelayMode::Classic);
  EXPECT_FALSE(out.has_value());
}

TEST(DelayCalc, SingleSwitchingPinPropagates) {
  const auto& cell = testutil::nand2Model();
  Arrival a{1e-9, 300e-12, Edge::Rising};
  const auto out =
      sta::evaluateGate(cell, {a, std::nullopt}, DelayMode::Classic);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->edge, Edge::Falling);  // NAND inverts
  EXPECT_NEAR(out->time,
              1e-9 + cell.singles->at(0, Edge::Rising).delay(300e-12), 1e-15);
  EXPECT_GT(out->slope, 0.0);
}

TEST(DelayCalc, MixedDirectionsThrow) {
  const auto& cell = testutil::nand2Model();
  Arrival r{0.0, 300e-12, Edge::Rising};
  Arrival f{0.0, 300e-12, Edge::Falling};
  EXPECT_THROW(sta::evaluateGate(cell, {r, f}, DelayMode::Classic),
               std::invalid_argument);
}

TEST(DelayCalc, ProximityDiffersFromClassicWhenClose) {
  const auto& cell = testutil::nand2Model();
  Arrival a{0.0, 500e-12, Edge::Falling};
  Arrival b{20e-12, 100e-12, Edge::Falling};
  const auto classic = sta::evaluateGate(cell, {a, b}, DelayMode::Classic);
  const auto prox = sta::evaluateGate(cell, {a, b}, DelayMode::Proximity);
  ASSERT_TRUE(classic && prox);
  EXPECT_NE(classic->time, prox->time);
  // Falling pair: parallel pullup reinforcement makes proximity earlier.
  EXPECT_LT(prox->time, classic->time);
}

TEST(Analyzer, PropagatesThroughTwoLevels) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addPrimaryInput("c");
  nl.addInstance("u1", cell, {"a", "b"}, "y1");   // falls
  nl.addInstance("u2", cell, {"y1", "c"}, "y2");  // c stable: y2 rises

  sta::TimingAnalyzer ta(nl, DelayMode::Proximity);
  ta.setInputArrival("a", {0.0, 300e-12, Edge::Rising});
  ta.setInputArrival("b", {50e-12, 300e-12, Edge::Rising});
  ta.run();

  const auto y1 = ta.arrival("y1");
  ASSERT_TRUE(y1.has_value());
  EXPECT_EQ(y1->edge, Edge::Falling);
  const auto y2 = ta.arrival("y2");
  ASSERT_TRUE(y2.has_value());
  EXPECT_EQ(y2->edge, Edge::Rising);
  EXPECT_GT(y2->time, y1->time);
  // c never switches.
  EXPECT_FALSE(ta.arrival("c").has_value());
}

TEST(Analyzer, RejectsArrivalOnNonPrimaryInput) {
  const auto& cell = testutil::nand2Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", cell, {"a", "b"}, "y");
  sta::TimingAnalyzer ta(nl, DelayMode::Classic);
  EXPECT_THROW(ta.setInputArrival("y", {0.0, 1e-10, Edge::Rising}),
               std::invalid_argument);
}

TEST(Analyzer, MixedCellTypesPropagate) {
  // A NAND2 feeding a NOR2: the falling NAND output is a non-controlling
  // transition for the NOR (its stable side input sits at 0), so the NOR
  // output rises -- two different dominance senses in one path.
  const auto& nand = testutil::nand2Model();
  static const characterize::CharacterizedGate nor =
      characterize::characterizeGate(testutil::norSpec(2),
                                     testutil::fastConfig());
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addPrimaryInput("s");
  nl.addInstance("u1", nand, {"a", "b"}, "y1");   // rising a,b -> y1 falls
  nl.addInstance("u2", nor, {"y1", "s"}, "y2");   // falling y1 -> y2 rises

  sta::TimingAnalyzer ta(nl, DelayMode::Proximity);
  ta.setInputArrival("a", {0.0, 250e-12, Edge::Rising});
  ta.setInputArrival("b", {30e-12, 250e-12, Edge::Rising});
  ta.run();
  const auto y1 = ta.arrival("y1");
  const auto y2 = ta.arrival("y2");
  ASSERT_TRUE(y1 && y2);
  EXPECT_EQ(y1->edge, Edge::Falling);
  EXPECT_EQ(y2->edge, Edge::Rising);
  EXPECT_GT(y2->time, y1->time);
}

TEST(Analyzer, ClassicVsProximityEndToEnd) {
  // A NAND3 with three near-simultaneous rising inputs: the proximity path
  // reports a *later* output (series stack slowdown) than classic STA.
  const auto& cell = testutil::nand3Model();
  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addPrimaryInput("c");
  nl.addInstance("u1", cell, {"a", "b", "c"}, "y");

  auto analyze = [&](DelayMode mode) {
    sta::TimingAnalyzer ta(nl, mode);
    ta.setInputArrival("a", {0.0, 200e-12, Edge::Rising});
    ta.setInputArrival("b", {10e-12, 200e-12, Edge::Rising});
    ta.setInputArrival("c", {20e-12, 200e-12, Edge::Rising});
    ta.run();
    return ta.arrival("y");
  };
  const auto classic = analyze(DelayMode::Classic);
  const auto prox = analyze(DelayMode::Proximity);
  ASSERT_TRUE(classic && prox);
  EXPECT_GT(prox->time, classic->time);
}

}  // namespace
