// Unit tests for the bounded-ingestion primitives (support/bounded.hpp):
// size-capped stream/line reading, input-size-derived allocation budgets,
// and the overflow-checked whole-token conversions every parser uses.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "support/bounded.hpp"
#include "support/diagnostic.hpp"

namespace {

using namespace prox::support;

constexpr const char* kSite = "test.bounded";

template <typename Fn>
Diagnostic expectTyped(StatusCode code, Fn&& fn) {
  try {
    fn();
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), code);
    return e.diagnostic();
  }
  ADD_FAILURE() << "expected DiagnosticError(" << statusCodeName(code) << ")";
  return {};
}

// --- readStreamBounded / readFileBounded ------------------------------------

TEST(BoundedReader, ReadsWholeStreamUnderCap) {
  std::istringstream is("hello\nworld\n");
  EXPECT_EQ(readStreamBounded(is, 1024, kSite), "hello\nworld\n");
}

TEST(BoundedReader, RejectsOversizedStreamBeforeBufferingIt) {
  std::istringstream is(std::string(4096, 'x'));
  const auto d = expectTyped(StatusCode::ResourceExhausted,
                             [&] { readStreamBounded(is, 100, kSite); });
  EXPECT_NE(d.message.find("reader cap"), std::string::npos);
  EXPECT_EQ(d.site, kSite);
}

TEST(BoundedReader, MissingFileIsATypedIoError) {
  expectTyped(StatusCode::IoError,
              [] { readFileBounded("/nonexistent/x.bin", 100, kSite); });
}

// --- getlineBounded ---------------------------------------------------------

TEST(BoundedReader, GetlineSplitsAtNewlines) {
  std::istringstream is("one\ntwo");
  BoundedLine line;
  ASSERT_TRUE(getlineBounded(is, 100, &line));
  EXPECT_EQ(line.text, "one");
  EXPECT_TRUE(line.sawNewline);
  EXPECT_FALSE(line.overlong);
  ASSERT_TRUE(getlineBounded(is, 100, &line));
  EXPECT_EQ(line.text, "two");
  EXPECT_FALSE(line.sawNewline);  // torn tail: EOF ended the line
  EXPECT_FALSE(getlineBounded(is, 100, &line));
}

TEST(BoundedReader, GetlineCapsOverlongLinesAndResynchronizes) {
  std::istringstream is(std::string(50, 'a') + "\nnext\n");
  BoundedLine line;
  ASSERT_TRUE(getlineBounded(is, 8, &line));
  EXPECT_EQ(line.text.size(), 8u);  // capped, remainder drained unbuffered
  EXPECT_TRUE(line.overlong);
  EXPECT_TRUE(line.sawNewline);
  ASSERT_TRUE(getlineBounded(is, 8, &line));
  EXPECT_EQ(line.text, "next");  // scanning resumed at the record boundary
  EXPECT_FALSE(line.overlong);
}

TEST(BoundedReader, GetlineHandlesEmptyLines) {
  std::istringstream is("\n\n");
  BoundedLine line;
  ASSERT_TRUE(getlineBounded(is, 8, &line));
  EXPECT_TRUE(line.text.empty());
  EXPECT_TRUE(line.sawNewline);
  ASSERT_TRUE(getlineBounded(is, 8, &line));
  EXPECT_FALSE(getlineBounded(is, 8, &line));
}

// --- AllocationBudget -------------------------------------------------------

TEST(BoundedReader, BudgetCapScalesWithInputSize) {
  ReaderLimits limits;
  limits.allocFactor = 4;
  limits.allocFloor = 100;
  AllocationBudget b(kSite, 1000, limits);
  EXPECT_EQ(b.cap(), 4u * 1000u + 100u);
  b.charge(4000, "payload");
  EXPECT_EQ(b.charged(), 4000u);
  const auto d = expectTyped(StatusCode::ResourceExhausted,
                             [&] { b.charge(101, "payload", 7); });
  EXPECT_NE(d.message.find("allocation budget exceeded"), std::string::npos);
  EXPECT_EQ(d.line, 7);
}

TEST(BoundedReader, BudgetChargeItemsRejectsMultiplicationOverflow) {
  AllocationBudget b(kSite, 1 << 20);
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  const auto d = expectTyped(StatusCode::ResourceExhausted,
                             [&] { b.chargeItems(huge, 16, "table"); });
  EXPECT_NE(d.message.find("overflow"), std::string::npos);
}

TEST(BoundedReader, BudgetCapSaturatesOnHugeInputSize) {
  AllocationBudget b(kSite, std::numeric_limits<std::size_t>::max() / 2);
  EXPECT_EQ(b.cap(), std::numeric_limits<std::size_t>::max());
}

// --- parseDoubleChecked / parseFiniteDoubleChecked --------------------------

TEST(BoundedReader, ParsesPlainAndScientificDoubles) {
  EXPECT_DOUBLE_EQ(parseDoubleChecked("1.5", kSite, "x"), 1.5);
  EXPECT_DOUBLE_EQ(parseDoubleChecked("-2e-12", kSite, "x"), -2e-12);
  EXPECT_DOUBLE_EQ(parseDoubleChecked("0", kSite, "x"), 0.0);
}

TEST(BoundedReader, RejectsPartialAndEmptyNumberTokens) {
  expectTyped(StatusCode::ParseError,
              [] { parseDoubleChecked("1.5abc", kSite, "x"); });
  expectTyped(StatusCode::ParseError,
              [] { parseDoubleChecked("", kSite, "x"); });
  expectTyped(StatusCode::ParseError,
              [] { parseDoubleChecked("--3", kSite, "x"); });
}

TEST(BoundedReader, RejectsOverflowAndUnderflowInsteadOfClamping) {
  // strtod would silently return +inf / 0.0 here; the checked parser must
  // refuse to round-trip either.
  const auto d = expectTyped(StatusCode::ParseError, [] {
    parseDoubleChecked("1e999", kSite, "x", 3);
  });
  EXPECT_NE(d.message.find("out of range"), std::string::npos);
  EXPECT_EQ(d.line, 3);
  expectTyped(StatusCode::ParseError,
              [] { parseDoubleChecked("1e-999", kSite, "x"); });
}

TEST(BoundedReader, RejectsNanAndOversizedTokens) {
  expectTyped(StatusCode::ParseError,
              [] { parseDoubleChecked("nan", kSite, "x"); });
  expectTyped(StatusCode::ParseError, [] {
    parseDoubleChecked(std::string(600, '1'), kSite, "x");
  });
}

TEST(BoundedReader, FiniteVariantRejectsInfinity) {
  const auto d = expectTyped(StatusCode::ParseError, [] {
    parseFiniteDoubleChecked("inf", kSite, "threshold");
  });
  EXPECT_NE(d.message.find("non-finite"), std::string::npos);
}

// --- parseIntChecked / parseCountChecked ------------------------------------

TEST(BoundedReader, ParsesIntegersWholeTokenOnly) {
  EXPECT_EQ(parseIntChecked("42", kSite, "n"), 42);
  EXPECT_EQ(parseIntChecked("-7", kSite, "n"), -7);
  expectTyped(StatusCode::ParseError,
              [] { parseIntChecked("42x", kSite, "n"); });
  expectTyped(StatusCode::ParseError,
              [] { parseIntChecked("4.2", kSite, "n"); });
}

TEST(BoundedReader, IntRangeIsEnforced) {
  EXPECT_EQ(parseIntChecked("10", kSite, "n", -1, 0, 10), 10);
  expectTyped(StatusCode::ParseError,
              [] { parseIntChecked("11", kSite, "n", -1, 0, 10); });
  // Wider than long long: strtoll saturates with ERANGE -> typed rejection.
  expectTyped(StatusCode::ParseError, [] {
    parseIntChecked("99999999999999999999999999", kSite, "n");
  });
}

TEST(BoundedReader, CountRejectsNegativeAndOverCap) {
  EXPECT_EQ(parseCountChecked("4096", 4096, kSite, "rows"), 4096u);
  expectTyped(StatusCode::ParseError,
              [] { parseCountChecked("-1", 4096, kSite, "rows"); });
  const auto d = expectTyped(StatusCode::ParseError, [] {
    parseCountChecked("4097", 4096, kSite, "rows", 12);
  });
  EXPECT_EQ(d.line, 12);
}

// --- fail helpers -----------------------------------------------------------

TEST(BoundedReader, FailHelpersCarrySiteLineAndCode) {
  const auto p = expectTyped(StatusCode::ParseError,
                             [] { failParse(kSite, "bad thing", 9); });
  EXPECT_EQ(p.site, kSite);
  EXPECT_EQ(p.line, 9);
  const auto r = expectTyped(StatusCode::ResourceExhausted,
                             [] { failResource(kSite, "too big"); });
  EXPECT_EQ(r.site, kSite);
}

}  // namespace
