// Tests for dominance ordering and Algorithm ProximityDelay (Figure 4-1).

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

TEST(Dominance, FallingInputsEarliestCrossingWins) {
  const auto& cg = testutil::nand2Model();
  // Falling NAND inputs engage the parallel PMOS bank: earliest wins.
  ASSERT_EQ(model::dominanceSense(cells::GateType::Nand, Edge::Falling),
            model::DominanceSense::EarliestFirst);
  std::vector<InputEvent> evs{{0, Edge::Falling, 100e-12, 200e-12},
                              {1, Edge::Falling, 0.0, 200e-12}};
  const auto order = model::dominanceOrder(
      evs, *cg.singles, model::DominanceSense::EarliestFirst);
  EXPECT_EQ(order[0], 1u);
}

TEST(Dominance, RisingInputsLatestCrossingWins) {
  const auto& cg = testutil::nand2Model();
  // Rising NAND inputs complete the series stack: the output waits for the
  // last input, so the latest predicted crossing dominates.
  ASSERT_EQ(model::dominanceSense(cells::GateType::Nand, Edge::Rising),
            model::DominanceSense::LatestFirst);
  std::vector<InputEvent> evs{{0, Edge::Rising, 100e-12, 200e-12},
                              {1, Edge::Rising, 0.0, 200e-12}};
  const auto order = model::dominanceOrder(evs, *cg.singles,
                                           model::DominanceSense::LatestFirst);
  EXPECT_EQ(order[0], 0u);
}

TEST(Dominance, NorSensesMirrorNand) {
  EXPECT_EQ(model::dominanceSense(cells::GateType::Nor, Edge::Rising),
            model::DominanceSense::EarliestFirst);
  EXPECT_EQ(model::dominanceSense(cells::GateType::Nor, Edge::Falling),
            model::DominanceSense::LatestFirst);
}

TEST(Dominance, FasterLateInputCanDominate) {
  // Figure 3-2: a slow input arriving first loses to a fast one arriving a
  // little later, because the fast one's standalone output crossing is
  // earlier.
  const auto& cg = testutil::nand2Model();
  const double dSlow = cg.singles->at(0, Edge::Falling).delay(2000e-12);
  const double dFast = cg.singles->at(1, Edge::Falling).delay(50e-12);
  ASSERT_GT(dSlow, dFast);
  const double sep = 0.5 * (dSlow - dFast);  // less than the crossover
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 2000e-12},
                              {1, Edge::Falling, sep, 50e-12}};
  const auto order = model::dominanceOrder(evs, *cg.singles);
  EXPECT_EQ(order[0], 1u) << "fast input must dominate inside the crossover";
}

TEST(Dominance, CrossoverMatchesDelayDifference) {
  const auto& cg = testutil::nand2Model();
  InputEvent a{0, Edge::Falling, 0.0, 2000e-12};
  InputEvent b{1, Edge::Falling, 0.0, 50e-12};
  const double sc = model::dominanceCrossover(a, b, *cg.singles);
  EXPECT_NEAR(sc,
              cg.singles->at(0, Edge::Falling).delay(2000e-12) -
                  cg.singles->at(1, Edge::Falling).delay(50e-12),
              1e-18);
  // Just beyond the crossover, a dominates again.
  b.tRef = sc * 1.01;
  const auto order =
      model::dominanceOrder({a, b}, *cg.singles);
  EXPECT_EQ(order[0], 0u);
}

TEST(Proximity, SingleEventReducesToSingleInputModel) {
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  const InputEvent ev{0, Edge::Rising, 1e-9, 300e-12};
  const auto r = calc.compute({ev});
  EXPECT_DOUBLE_EQ(r.delay, cg.singles->at(0, Edge::Rising).delay(300e-12));
  EXPECT_DOUBLE_EQ(r.outputRefTime, ev.tRef + r.delay);
  EXPECT_EQ(r.dominantPin, 0);
  EXPECT_EQ(r.processedPins.size(), 1u);
}

TEST(Proximity, FarSeparationLeavesDelayUntouched) {
  // Falling pair (earliest-first sense): once the second input trails past
  // the transition window, the delay is exactly the single-input value.
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  const double d1 = cg.singles->at(0, Edge::Falling).delay(300e-12);
  const double t1 = cg.singles->at(0, Edge::Falling).transition(300e-12);
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 300e-12},
                              {1, Edge::Falling, d1 + t1 + 1e-9, 300e-12}};
  const auto r = calc.compute(evs);
  EXPECT_DOUBLE_EQ(r.delay, d1);
  EXPECT_EQ(r.processedPins.size(), 1u);
  EXPECT_TRUE(r.transitionOnlyPins.empty());
}

TEST(Proximity, RisingFarSeparationTracksLateInput) {
  // Rising pair (latest-first sense): a NAND output cannot fall until the
  // last input rises, so for well-separated rising inputs the output
  // crossing tracks the LATE input -- the case the direction-aware
  // dominance exists for.  Verified against a full simulation.
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();
  const double sep = 1.5e-9;
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                              {1, Edge::Rising, sep, 300e-12}};
  const auto r = calc.compute(evs);
  EXPECT_EQ(r.dominantPin, 1);
  const auto full = sim.simulate(evs, 0);
  ASSERT_TRUE(full.outputRefTime.has_value());
  EXPECT_NEAR(r.outputRefTime, *full.outputRefTime,
              0.15 * (*full.outputRefTime));
}

TEST(Proximity, TransitionOnlyWindowBetweenDelayAndTransitionEdges) {
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  const double d1 = cg.singles->at(0, Edge::Falling).delay(300e-12);
  const double t1 = cg.singles->at(0, Edge::Falling).transition(300e-12);
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 300e-12},
                              {1, Edge::Falling, d1 + 0.3 * t1, 300e-12}};
  const auto r = calc.compute(evs);
  EXPECT_DOUBLE_EQ(r.delay, d1);  // outside the delay window
  ASSERT_EQ(r.transitionOnlyPins.size(), 1u);
  EXPECT_EQ(r.transitionOnlyPins[0], 1);
}

TEST(Proximity, CloseFallingPairIsFasterThanSingle) {
  // Figure 1-2(a) through the algorithm: proximity reduces delay.
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 500e-12},
                              {1, Edge::Falling, 0.0, 100e-12}};
  const auto r = calc.compute(evs);
  const double dDominantAlone =
      cg.singles->at(r.dominantPin, Edge::Falling)
          .delay(r.dominantPin == 0 ? 500e-12 : 100e-12);
  EXPECT_LT(r.delay, dDominantAlone);
  EXPECT_EQ(r.processedPins.size(), 2u);
}

TEST(Proximity, CloseRisingPairIsSlowerThanSingle) {
  const auto& cg = testutil::nand2Model();
  model::ProximityOptions opts;
  opts.applyCorrection = false;  // isolate the dual-model contribution
  const auto calc = cg.calculator(opts);
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 500e-12},
                              {1, Edge::Rising, 0.0, 500e-12}};
  const auto r = calc.compute(evs);
  const double dAlone =
      cg.singles->at(r.dominantPin, Edge::Rising).delay(500e-12);
  EXPECT_GT(r.delay, dAlone);
}

TEST(Proximity, DelayAlwaysPositiveEvenForExtremeSlopes) {
  // The Section 2 guarantee carried through the algorithm.
  const auto& cg = testutil::nand3Model();
  const auto calc = cg.calculator();
  for (double tau : {50e-12, 2200e-12, 5000e-12}) {
    for (double sep : {-1e-9, -100e-12, 0.0, 100e-12, 1e-9}) {
      std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, tau},
                                  {1, Edge::Rising, sep, 300e-12},
                                  {2, Edge::Rising, -sep, tau}};
      const auto r = calc.compute(evs);
      EXPECT_GT(r.delay, 0.0) << "tau=" << tau << " sep=" << sep;
      EXPECT_GT(r.transitionTime, 0.0);
    }
  }
}

TEST(Proximity, MixedDirectionsThrow) {
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                              {1, Edge::Falling, 0.0, 300e-12}};
  EXPECT_THROW(calc.compute(evs), std::invalid_argument);
}

TEST(Proximity, EmptyEventsThrow) {
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  EXPECT_THROW(calc.compute({}), std::invalid_argument);
  EXPECT_THROW(calc.computeClassic({}), std::invalid_argument);
}

TEST(Proximity, CorrectionAppliedOnlyWhenMultipleProcessed) {
  const auto& cg = testutil::nand3Model();
  const auto calc = cg.calculator();
  // Single event: no correction possible.
  const auto r1 = calc.compute({{0, Edge::Rising, 0.0, 200e-12}});
  EXPECT_EQ(r1.correctionApplied, 0.0);
  // Simultaneous events: correction active (full weight).
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 200e-12},
                              {1, Edge::Rising, 0.0, 200e-12},
                              {2, Edge::Rising, 0.0, 200e-12}};
  const auto r3 = calc.compute(evs);
  if (!cg.correction.empty()) {
    EXPECT_NE(r3.correctionApplied, 0.0);
  }
}

TEST(Proximity, CorrectionFadesWithSeparation) {
  const auto& cg = testutil::nand3Model();
  const auto calc = cg.calculator();
  auto runWithSep = [&](double s) {
    std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 200e-12},
                                {1, Edge::Rising, s, 200e-12}};
    return calc.compute(evs).correctionApplied;
  };
  const double c0 = std::fabs(runWithSep(0.0));
  const double cMid = std::fabs(runWithSep(100e-12));
  EXPECT_GE(c0 + 1e-18, cMid);  // weight decays with positive separation
}

TEST(Proximity, ClassicIgnoresProximity) {
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 500e-12},
                              {1, Edge::Falling, 10e-12, 100e-12}};
  const auto classic = calc.computeClassic(evs);
  const auto prox = calc.compute(evs);
  EXPECT_DOUBLE_EQ(
      classic.delay,
      cg.singles->at(classic.dominantPin, Edge::Falling)
          .delay(classic.dominantPin == 0 ? 500e-12 : 100e-12));
  EXPECT_NE(classic.delay, prox.delay);
}

TEST(Proximity, AgainstFullSimulationSanity) {
  // One end-to-end accuracy spot-check (detailed statistics live in the
  // integration test and the Table 5-1 bench).
  const auto& cg = testutil::nand2Model();
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 400e-12},
                              {1, Edge::Rising, 100e-12, 700e-12}};
  const auto full = sim.simulate(evs, 0);
  ASSERT_TRUE(full.outputRefTime.has_value());
  const auto r = calc.compute(evs);
  EXPECT_NEAR(r.outputRefTime, *full.outputRefTime,
              0.15 * *full.delay);  // coarse-grid package
}

TEST(Proximity, AdditiveCompositionOptionChangesTransitionOnly) {
  // The ablation knob: additive vs multiplicative transition composition
  // must differ on multi-input folds but leave the delay untouched.
  const auto& cg = testutil::nand3Model();
  model::ProximityOptions add;
  add.transitionComposition = model::TransitionComposition::Additive;
  const auto calcAdd = cg.calculator(add);
  const auto calcMul = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 500e-12},
                              {1, Edge::Falling, 20e-12, 100e-12},
                              {2, Edge::Falling, -30e-12, 300e-12}};
  const auto ra = calcAdd.compute(evs);
  const auto rm = calcMul.compute(evs);
  EXPECT_DOUBLE_EQ(ra.delay, rm.delay);
  EXPECT_NE(ra.transitionTime, rm.transitionTime);
}

TEST(StepCorrection, LookupSaturatesAtTableEnd) {
  model::StepCorrection c;
  c.delayErrorRising = {1e-12, 2e-12};
  EXPECT_DOUBLE_EQ(c.delayFor(2, Edge::Rising), 1e-12);
  EXPECT_DOUBLE_EQ(c.delayFor(3, Edge::Rising), 2e-12);
  EXPECT_DOUBLE_EQ(c.delayFor(9, Edge::Rising), 2e-12);  // clamped
  EXPECT_DOUBLE_EQ(c.delayFor(1, Edge::Rising), 0.0);
  EXPECT_DOUBLE_EQ(c.delayFor(3, Edge::Falling), 0.0);  // no falling table
}

}  // namespace
