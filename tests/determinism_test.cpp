// Golden determinism harness for the parallel characterization and STA
// engine (DESIGN.md "Parallel execution & determinism contract"): every
// characterized artifact -- dual ratio tables, healed marks, single-input
// samples, corrective terms, diagnostics -- and every STA arrival time must
// be *bit-identical* across thread counts {1, 2, 8} and across repeated
// runs, including while a fault plan is actively injecting failures.
//
// All comparisons below use exact `==` on doubles on purpose: "close" would
// hide scheduling-dependent reduction orders, which is precisely the bug
// class this harness exists to catch.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "characterize/characterize.hpp"
#include "model/dual_input.hpp"
#include "model/single_input.hpp"
#include "simd/dispatch.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sta/blif.hpp"
#include "sta/synth.hpp"
#include "sta/timing_graph.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using wave::Edge;

// A deliberately small grid: determinism is a structural property and does
// not need dense tables, and this binary characterizes the same gate many
// times over.
characterize::CharacterizationConfig smallConfig(int threads) {
  characterize::CharacterizationConfig c;
  c.tauGrid = {100e-12, 400e-12, 1000e-12};
  c.dualTauIndices = {0, 1, 2};
  c.vGrid = {0.3, 1.0, 3.0};
  c.wGrid = {-1.0, -0.5, 0.0, 0.5, 1.0};
  c.vGridTransition = {0.3, 1.0, 3.0};
  c.wGridTransition = {-1.0, 0.0, 1.0, 3.0};
  c.vtcStep = 0.05;
  c.threads = threads;
  return c;
}

void expectTableIdentical(const model::DualTable& a, const model::DualTable& b,
                          const char* what) {
  EXPECT_EQ(a.u, b.u) << what;
  EXPECT_EQ(a.v, b.v) << what;
  EXPECT_EQ(a.w, b.w) << what;
  ASSERT_EQ(a.ratio.size(), b.ratio.size()) << what;
  for (std::size_t i = 0; i < a.ratio.size(); ++i) {
    EXPECT_EQ(a.ratio[i], b.ratio[i]) << what << " ratio[" << i << "]";
  }
  EXPECT_EQ(a.healed, b.healed) << what << " healed marks";
}

void expectCellsIdentical(const characterize::CharacterizedGate& a,
                          const characterize::CharacterizedGate& b) {
  ASSERT_EQ(a.pinCount(), b.pinCount());
  for (int pin = 0; pin < a.pinCount(); ++pin) {
    for (const Edge e : {Edge::Rising, Edge::Falling}) {
      // Single-input macromodels: every sample field, bit for bit.
      const auto& sa = a.singles->at(pin, e);
      const auto& sb = b.singles->at(pin, e);
      ASSERT_EQ(sa.table().size(), sb.table().size());
      for (std::size_t i = 0; i < sa.table().size(); ++i) {
        EXPECT_EQ(sa.table()[i].tau, sb.table()[i].tau);
        EXPECT_EQ(sa.table()[i].delay, sb.table()[i].delay);
        EXPECT_EQ(sa.table()[i].transition, sb.table()[i].transition);
      }
      EXPECT_EQ(sa.loadCap(), sb.loadCap());
      EXPECT_EQ(sa.strengthK(), sb.strengthK());
      EXPECT_EQ(sa.vdd(), sb.vdd());

      expectTableIdentical(a.dual->delayTable(pin, e),
                           b.dual->delayTable(pin, e), "delay table");
      expectTableIdentical(a.dual->transitionTable(pin, e),
                           b.dual->transitionTable(pin, e),
                           "transition table");
    }
  }
  EXPECT_EQ(a.correction.delayErrorRising, b.correction.delayErrorRising);
  EXPECT_EQ(a.correction.delayErrorFalling, b.correction.delayErrorFalling);
  EXPECT_EQ(a.correction.transitionErrorRising,
            b.correction.transitionErrorRising);
  EXPECT_EQ(a.correction.transitionErrorFalling,
            b.correction.transitionErrorFalling);

  // Diagnostics must agree in count, order, and rendered content (the merge
  // happens in enumeration order, never completion order).
  ASSERT_EQ(a.diagnostics.entries().size(), b.diagnostics.entries().size());
  for (std::size_t i = 0; i < a.diagnostics.entries().size(); ++i) {
    EXPECT_EQ(a.diagnostics.entries()[i].toString(),
              b.diagnostics.entries()[i].toString());
  }
}

// Clean (no fault plan) characterizations, cached per thread count: the
// comparisons below all reference these.
const characterize::CharacterizedGate& cleanCell(int threads) {
  static auto* cache = new std::map<int, characterize::CharacterizedGate>();
  auto it = cache->find(threads);
  if (it == cache->end()) {
    it = cache
             ->emplace(threads, characterize::characterizeGate(
                                    testutil::nandSpec(2),
                                    smallConfig(threads)))
             .first;
  }
  return it->second;
}

TEST(CharacterizationDeterminism, TwoThreadsMatchesSerial) {
  expectCellsIdentical(cleanCell(1), cleanCell(2));
}

TEST(CharacterizationDeterminism, EightThreadsMatchesSerial) {
  expectCellsIdentical(cleanCell(1), cleanCell(8));
}

TEST(CharacterizationDeterminism, RepeatedParallelRunsMatch) {
  const auto rerun = characterize::characterizeGate(testutil::nandSpec(2),
                                                    smallConfig(8));
  expectCellsIdentical(cleanCell(8), rerun);
}

TEST(CharacterizationDeterminism, CleanRunsLogNothingAtAnyThreadCount) {
  EXPECT_TRUE(cleanCell(1).diagnostics.empty());
  EXPECT_TRUE(cleanCell(2).diagnostics.empty());
  EXPECT_TRUE(cleanCell(8).diagnostics.empty());
}

// The sparse MNA pipeline (pattern-cached stamping, symbolic/numeric-split
// LU, same-Jacobian reuse) is now the only transient solve path; this test
// both proves the sparse machinery actually ran underneath a full
// characterization and pins its thread-count invariance at {1, 8}.  The
// fast-path reuse heuristic in particular must not make results depend on
// solve *history* in any thread-visible way: each task owns its circuit and
// workspace, so serial and 8-way runs see identical iteration sequences.
TEST(CharacterizationDeterminism, SparseSolvePathBitIdenticalAtOneAndEight) {
  const auto before = obs::snapshot();
  const auto serial = characterize::characterizeGate(testutil::nandSpec(2),
                                                     smallConfig(1));
  const auto eight = characterize::characterizeGate(testutil::nandSpec(2),
                                                    smallConfig(8));
  expectCellsIdentical(serial, eight);

  if (obs::enabled()) {
    const auto after = obs::snapshot();
    // Both the full-factor and the refactor numeric phases must have fired:
    // characterization transient solves run through SparseLu, not the dense
    // fallback.
    EXPECT_GT(after.counterValue("linalg.sparse.factorizations"),
              before.counterValue("linalg.sparse.factorizations"));
    EXPECT_GT(after.counterValue("linalg.sparse.refactorizations"),
              before.counterValue("linalg.sparse.refactorizations"));
  }
}

// Tracing is purely observational: recording spans, heartbeat counters and
// per-point events while a TraceSession is active must not perturb a single
// bit of the characterized artifact, at any thread count.  This is the
// observability layer's core contract (DESIGN.md), pinned here with the same
// exact-== comparisons as the rest of the harness.
TEST(CharacterizationDeterminism, TracingOnDoesNotChangeResults) {
  for (const int threads : {1, 8}) {
    obs::trace::TraceSession session;
    const auto traced = characterize::characterizeGate(testutil::nandSpec(2),
                                                       smallConfig(threads));
    session.stop();
    expectCellsIdentical(cleanCell(1), traced);
#if PROX_ENABLE_STATS
    // The session must actually have observed the run, or this test proves
    // nothing: the per-point spans land in the exported JSON.  (With stats
    // compiled out the span macros are empty and the trace is, too.)
    EXPECT_NE(session.exportJson().find("char.point"), std::string::npos)
        << "threads=" << threads;
#endif
  }
}

#if PROX_ENABLE_FAULT_INJECTION
// With a task-keyed fault plan armed, the *same* sweep point fails (and
// heals) no matter how many workers race through the sweep: spec.taskIndex
// addresses "parallel task 7", which parallelFor pins to loop index 7 at
// every thread count.  count = 2 also kills the retry, forcing the healing
// path.
characterize::CharacterizedGate faultedCell(int threads) {
  support::FaultSpec spec;
  spec.site = "model.gate_sim.simulate";
  spec.kind = support::FaultKind::SimulationFailure;
  spec.triggerHit = 1;
  spec.count = 2;
  spec.taskIndex = 7;
  support::FaultPlan::Scope scope(spec);
  return characterize::characterizeGate(testutil::nandSpec(2),
                                        smallConfig(threads));
}

TEST(FaultedCharacterizationDeterminism, SameHoleHealsAtEveryThreadCount) {
  const auto serial = faultedCell(1);
  const auto two = faultedCell(2);
  const auto eight = faultedCell(8);

  // The plan must actually have bitten: at least one healed point and a
  // Warning-severity log entry.
  std::size_t healed = 0;
  for (int pin = 0; pin < serial.pinCount(); ++pin) {
    for (const Edge e : {Edge::Rising, Edge::Falling}) {
      healed += serial.dual->delayTable(pin, e).healedCount();
      healed += serial.dual->transitionTable(pin, e).healedCount();
    }
  }
  EXPECT_GE(healed, 1u);
  EXPECT_FALSE(serial.diagnostics.empty());

  expectCellsIdentical(serial, two);
  expectCellsIdentical(serial, eight);
}

TEST(FaultedCharacterizationDeterminism, RepeatedFaultedRunsMatch) {
  expectCellsIdentical(faultedCell(8), faultedCell(8));
}
#endif  // PROX_ENABLE_FAULT_INJECTION

// -- STA ---------------------------------------------------------------------

// Three levels, with a two-arc level in the middle of the fan-in cone so the
// parallel evaluator actually has sibling arcs to race: all switching inputs
// of any one gate share a direction (NANDs invert level by level).
struct StaRun {
  std::vector<sta::Arrival> arrivals;
  std::size_t degraded = 0;
};

StaRun runSta(const characterize::CharacterizedGate& cell, int threads) {
  sta::Netlist nl;
  for (const char* pi : {"a", "b", "c", "d"}) nl.addPrimaryInput(pi);
  nl.addInstance("u1", cell, {"a", "b"}, "n1");
  nl.addInstance("u2", cell, {"c", "d"}, "n2");
  nl.addInstance("u3", cell, {"n1", "n2"}, "m1");
  nl.addInstance("u4", cell, {"n2", "n1"}, "m2");
  nl.addInstance("u5", cell, {"m1", "m2"}, "out");

  sta::DelayCalcOptions opt;
  opt.threads = threads;
  sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity, opt);
  // Close arrivals on every pair: forces dual-table proximity lookups
  // instead of the wide-separation short-circuit.
  ta.setInputArrival("a", {0.0, 120e-12, Edge::Rising});
  ta.setInputArrival("b", {30e-12, 150e-12, Edge::Rising});
  ta.setInputArrival("c", {10e-12, 100e-12, Edge::Rising});
  ta.setInputArrival("d", {25e-12, 180e-12, Edge::Rising});
  ta.run();

  StaRun out;
  for (const char* net : {"n1", "n2", "m1", "m2", "out"}) {
    const auto arr = ta.arrival(net);
    EXPECT_TRUE(arr.has_value()) << net;
    out.arrivals.push_back(arr.value_or(sta::Arrival{}));
  }
  out.degraded = ta.degradedArcs();
  return out;
}

void expectRunsIdentical(const StaRun& a, const StaRun& b) {
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].time, b.arrivals[i].time) << "net " << i;
    EXPECT_EQ(a.arrivals[i].slope, b.arrivals[i].slope) << "net " << i;
    EXPECT_EQ(a.arrivals[i].edge, b.arrivals[i].edge) << "net " << i;
  }
  EXPECT_EQ(a.degraded, b.degraded);
}

TEST(StaDeterminism, ArrivalsBitIdenticalAcrossThreadCounts) {
  const auto& cell = cleanCell(1);
  const StaRun serial = runSta(cell, 1);
  expectRunsIdentical(serial, runSta(cell, 2));
  expectRunsIdentical(serial, runSta(cell, 8));
}

TEST(StaDeterminism, RepeatedParallelRunsMatch) {
  const auto& cell = cleanCell(1);
  expectRunsIdentical(runSta(cell, 8), runSta(cell, 8));
}

TEST(StaDeterminism, ParallelCellDrivesIdenticalSta) {
  // End to end: a cell characterized in parallel must drive the exact same
  // timing analysis as one characterized serially.
  expectRunsIdentical(runSta(cleanCell(1), 1), runSta(cleanCell(8), 8));
}

TEST(StaDeterminism, TracingOnDoesNotChangeArrivals) {
  const auto& cell = cleanCell(1);
  const StaRun untraced = runSta(cell, 1);
  for (const int threads : {1, 8}) {
    obs::trace::TraceSession session;
    const StaRun traced = runSta(cell, threads);
    session.stop();
    expectRunsIdentical(untraced, traced);
#if PROX_ENABLE_STATS
    EXPECT_NE(session.exportJson().find("sta.level"), std::string::npos)
        << "threads=" << threads;
#endif
  }
}

// -- Large-circuit STA determinism -------------------------------------------
//
// A 10k-gate synthetic circuit (50 layers x 200 gates, analytic cell
// library) with its arrivals reduced to a single CRC-32 in fixed
// layer-major net order.  The reference values below were captured against
// the pre-arena string-keyed netlist implementation, so they pin three
// contracts at once: thread-count invariance, run-to-run stability, and
// bit-identical results across the flat-arena storage refactor.  The
// analytic library is built from exactly-representable rational constants
// (no libm), which is what makes a cross-toolchain pinned checksum sound.

constexpr std::uint32_t kLargeProximityChecksum = 0xDB0EAFA7u;
constexpr std::uint32_t kLargeClassicChecksum = 0x67FB8952u;

sta::SynthSpec largeSpec() {
  sta::SynthSpec spec;
  spec.seed = 2026;
  spec.depth = 50;
  spec.width = 200;  // 10000 gates
  spec.primaryInputs = 200;
  spec.maxFanin = 3;
  return spec;
}

const sta::GateLibrary& largeLibrary() {
  static const sta::GateLibrary lib = sta::analyticLibrary();
  return lib;
}

/// CRC-32 over (time, slope, edge) of every internal net in layer-major
/// order -- the reduction is order-fixed, so any scheduling-dependent bit
/// anywhere in the graph changes the digest.
std::uint32_t arrivalChecksum(const sta::SynthSpec& spec,
                              const sta::TimingAnalyzer& ta) {
  std::uint32_t crc = support::kCrc32Init;
  for (std::uint32_t layer = 0; layer < spec.depth; ++layer) {
    for (std::uint32_t pos = 0; pos < spec.width; ++pos) {
      const std::string net =
          "n" + std::to_string(layer) + "_" + std::to_string(pos);
      const auto a = ta.arrival(net);
      EXPECT_TRUE(a.has_value()) << net;
      if (!a) continue;
      crc = support::crc32Update(crc, &a->time, sizeof(a->time));
      crc = support::crc32Update(crc, &a->slope, sizeof(a->slope));
      const int e = static_cast<int>(a->edge);
      crc = support::crc32Update(crc, &e, sizeof(e));
    }
  }
  return support::crc32Final(crc);
}

std::uint32_t largeChecksum(bool viaBlif, int threads, sta::DelayMode mode) {
  const sta::SynthSpec spec = largeSpec();
  sta::Netlist nl;
  if (viaBlif) {
    sta::readBlifString(sta::generateBlifString(spec), largeLibrary(), &nl);
  } else {
    sta::buildNetlist(spec, largeLibrary(), &nl);
  }
  sta::DelayCalcOptions opt;
  opt.threads = threads;
  sta::TimingAnalyzer ta(nl, mode, opt);
  for (const auto& [net, arr] : sta::synthInputArrivals(spec)) {
    ta.setInputArrival(net, arr);
  }
  ta.run();
  EXPECT_EQ(ta.degradedArcs(), 0u);
  return arrivalChecksum(spec, ta);
}

TEST(LargeStaDeterminism, ProximityChecksumPinnedAcrossThreadCounts) {
  EXPECT_EQ(largeChecksum(false, 1, sta::DelayMode::Proximity),
            kLargeProximityChecksum);
  EXPECT_EQ(largeChecksum(false, 2, sta::DelayMode::Proximity),
            kLargeProximityChecksum);
  EXPECT_EQ(largeChecksum(false, 8, sta::DelayMode::Proximity),
            kLargeProximityChecksum);
}

TEST(LargeStaDeterminism, ClassicChecksumPinnedAcrossThreadCounts) {
  EXPECT_EQ(largeChecksum(false, 1, sta::DelayMode::Classic),
            kLargeClassicChecksum);
  EXPECT_EQ(largeChecksum(false, 8, sta::DelayMode::Classic),
            kLargeClassicChecksum);
}

TEST(LargeStaDeterminism, RepeatedParallelRunsMatch) {
  EXPECT_EQ(largeChecksum(false, 8, sta::DelayMode::Proximity),
            largeChecksum(false, 8, sta::DelayMode::Proximity));
}

TEST(LargeStaDeterminism, BlifRoundTripMatchesDirectBuild) {
  // Generate -> emit BLIF -> re-parse -> analyze must land on the same
  // digest as building the netlist directly: the text format carries the
  // complete circuit identity.
  EXPECT_EQ(largeChecksum(true, 2, sta::DelayMode::Proximity),
            kLargeProximityChecksum);
}

// --- batched dual-table lookups vs the scalar entry points ------------------
//
// Property: evaluateMany() must be bit-identical to N scalar delayRatio()/
// transitionRatio() calls -- values AND clamp distances -- for arbitrary
// query mixes (in-grid, clamped, window shortcuts, missing tables), on every
// SIMD dispatch path.  Queries the scalar path answers with a throw must
// come back as Status::MissingTable.

/// Deterministic 64-bit generator (splitmix64): no std random machinery, so
/// the query set is identical on every platform and run.
std::uint64_t nextRand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double randUnit(std::uint64_t& state) {
  return static_cast<double>(nextRand(state) >> 11) * 0x1.0p-53;
}

model::DualTable syntheticDualTable(std::uint64_t seed, double lo, double hi) {
  model::DualTable t;
  t.u = {0.2, 0.6, 1.0, 1.8};
  t.v = {0.1, 0.9, 2.0};
  t.w = {-0.5, 0.0, 0.4, 1.0};
  t.ratio.resize(t.u.size() * t.v.size() * t.w.size());
  for (double& r : t.ratio) r = lo + (hi - lo) * randUnit(seed);
  return t;
}

struct BatchedFixture {
  model::SingleInputModelSet singles;
  std::unique_ptr<model::TabulatedDualInputModel> model;

  BatchedFixture() {
    // Pins 0..2 get single-input models on both edges; pin 3 has none at
    // all, so queries referencing it exercise the missing-single lane.
    for (int pin = 0; pin <= 2; ++pin) {
      for (const Edge e : {Edge::Rising, Edge::Falling}) {
        std::vector<model::SingleInputModel::Sample> table;
        for (double tau : {50e-12, 150e-12, 300e-12, 600e-12}) {
          const double skew = pin * 7e-12 + (e == Edge::Rising ? 0.0 : 3e-12);
          table.push_back({tau, 0.6 * tau + 80e-12 + skew,
                           0.9 * tau + 40e-12 + skew});
        }
        singles.set(model::SingleInputModel(pin, e, std::move(table), 20e-15,
                                            1e-4, 3.3));
      }
    }
    model = std::make_unique<model::TabulatedDualInputModel>(singles);
    // Reference pins 0 and 1 get per-reference tables on both edges; pin 2
    // has singles but no dual tables (missing-dual lane).  One pair table
    // checks the pair-before-reference precedence.
    std::uint64_t seed = 0x5eed;
    for (int pin = 0; pin <= 1; ++pin) {
      for (const Edge e : {Edge::Rising, Edge::Falling}) {
        model->setDelayTable(pin, e,
                             syntheticDualTable(nextRand(seed), 0.6, 1.4));
        model->setTransitionTable(pin, e,
                                  syntheticDualTable(nextRand(seed), 0.7, 1.3));
      }
    }
    model->setPairDelayTable(0, 1, Edge::Rising,
                             syntheticDualTable(nextRand(seed), 0.4, 0.9));
    model->setPairTransitionTable(0, 1, Edge::Rising,
                                  syntheticDualTable(nextRand(seed), 1.1, 1.6));
  }

  std::vector<model::DualQuery> randomQueries(std::size_t n) const {
    std::vector<model::DualQuery> qs(n);
    std::uint64_t seed = 0xfeedface;
    for (model::DualQuery& q : qs) {
      q.refPin = static_cast<int>(nextRand(seed) % 4);  // 3 = missing single
      q.otherPin = (q.refPin + 1 + static_cast<int>(nextRand(seed) % 3)) % 4;
      q.edge = (nextRand(seed) & 1) != 0 ? Edge::Rising : Edge::Falling;
      q.kind = (nextRand(seed) & 1) != 0 ? model::DualKind::Delay
                                         : model::DualKind::Transition;
      // tauRef spans well past the grids on both sides (clamped lanes);
      // sep spans negative through beyond-window (shortcut lanes).
      q.tauRef = 1e-12 + 2e-9 * randUnit(seed);
      q.tauOther = 1e-12 + 2e-9 * randUnit(seed);
      q.sep = -1e-9 + 2.5e-9 * randUnit(seed);
    }
    return qs;
  }
};

void expectBatchMatchesScalar(const BatchedFixture& fx,
                              const std::vector<model::DualQuery>& qs) {
  std::vector<model::DualResult> batch(qs.size());
  fx.model->evaluateMany(qs, batch);
  std::size_t missing = 0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    double scalar = 0.0;
    bool threw = false;
    try {
      scalar = qs[i].kind == model::DualKind::Delay
                   ? fx.model->delayRatio(qs[i])
                   : fx.model->transitionRatio(qs[i]);
    } catch (const std::exception&) {
      threw = true;
    }
    if (threw) {
      ++missing;
      EXPECT_EQ(batch[i].status, model::DualResult::Status::MissingTable)
          << "lane " << i;
      continue;
    }
    ASSERT_EQ(batch[i].status, model::DualResult::Status::Ok) << "lane " << i;
    // Exact `==` on doubles, deliberately: the batched path promises the
    // same bits, not "close".
    EXPECT_EQ(batch[i].value, scalar) << "lane " << i;
    EXPECT_EQ(batch[i].clampDistance, fx.model->lastClampDistance())
        << "lane " << i;
  }
  // The query mix must actually exercise the missing-table lane.
  EXPECT_GT(missing, 0u);
}

TEST(BatchedDualDeterminism, EvaluateManyMatchesScalarBitForBit) {
  const BatchedFixture fx;
  expectBatchMatchesScalar(fx, fx.randomQueries(512));
}

TEST(BatchedDualDeterminism, EvaluateManyMatchesScalarOnForcedScalarPath) {
  // Forcing the dispatcher onto the portable kernel must not change a bit;
  // together with the test above this pins SIMD == scalar == batched.  The
  // CI matrix re-runs the whole suite under PROX_SIMD=off, which exercises
  // the same guarantee through the environment override.
  const BatchedFixture fx;
  const auto qs = fx.randomQueries(512);

  std::vector<model::DualResult> native(qs.size());
  fx.model->evaluateMany(qs, native);

  simd::forcePath(simd::Path::Scalar);
  expectBatchMatchesScalar(fx, qs);
  std::vector<model::DualResult> forced(qs.size());
  fx.model->evaluateMany(qs, forced);
  simd::resetPath();

  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(native[i].value, forced[i].value) << "lane " << i;
    EXPECT_EQ(native[i].clampDistance, forced[i].clampDistance) << "lane " << i;
    EXPECT_EQ(native[i].status, forced[i].status) << "lane " << i;
  }
}

TEST(BatchedDualDeterminism, EvaluateManyHandlesEdgeLanes) {
  // Clamp-edge and degenerate lanes, pinned explicitly: exact grid nodes,
  // exact grid edges, far outside the grid, zero/negative separation, and
  // the window shortcut.
  const BatchedFixture fx;
  std::vector<model::DualQuery> qs;
  const model::DualTable& t = fx.model->delayTable(0, Edge::Rising);
  const auto& m = fx.singles.at(0, Edge::Rising);
  for (double uNorm : {t.u.front(), t.u.back(), 3.0, 1e-3}) {
    for (double wNorm : {t.w.front(), t.w.back(), -2.0, 5.0}) {
      model::DualQuery q;
      q.refPin = 0;
      q.otherPin = 1;
      q.edge = Edge::Rising;
      q.kind = model::DualKind::Delay;
      // Invert the normalization so the scaled coordinates land exactly on
      // the chosen grid values: u = tauRef / d1(tauRef) is solved by probing.
      q.tauRef = 200e-12;
      const double d1 = m.delay(q.tauRef);
      q.tauRef = uNorm * d1;  // approximate landing; still deterministic
      q.tauOther = 150e-12;
      q.sep = wNorm * m.delay(q.tauRef);
      qs.push_back(q);
    }
  }
  std::vector<model::DualResult> batch(qs.size());
  fx.model->evaluateMany(qs, batch);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const double scalar = fx.model->delayRatio(qs[i]);
    EXPECT_EQ(batch[i].status, model::DualResult::Status::Ok) << "lane " << i;
    EXPECT_EQ(batch[i].value, scalar) << "lane " << i;
    EXPECT_EQ(batch[i].clampDistance, fx.model->lastClampDistance())
        << "lane " << i;
  }
}

}  // namespace
