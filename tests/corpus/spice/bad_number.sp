R1 a 0 nonsense
