M1 out a n1 0
