* Figure 1-1: three-input NAND, c tied to Vdd
.model nm NMOS KP=60u VTO=0.8 LAMBDA=0.02 GAMMA=0.4 PHI=0.65
.model pm PMOS KP=25u VTO=-0.9 LAMBDA=0.04 GAMMA=0.45 PHI=0.65
Vdd vdd 0 5
M1 out a n1 0 nm W=6u L=0.8u
M2 n1  b n2 0 nm W=6u L=0.8u
M3 n2  c 0  0 nm W=6u L=0.8u
M4 out a vdd vdd pm W=8u L=0.8u
M5 out b vdd vdd pm W=8u L=0.8u
M6 out c vdd vdd pm W=8u L=0.8u
Cl out 0 100f
Va a 0 PWL(0 5 1000p 5 1500p 0)
Vb b 0 PWL(0 5 1100p 5 1200p 0)
Vc c 0 5
.end
