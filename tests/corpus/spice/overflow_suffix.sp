R1 a 0 1e308k
