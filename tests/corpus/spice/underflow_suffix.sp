C1 a 0 1e-310f
