+ R1 a 0 1k
