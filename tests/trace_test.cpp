// Tests for the tracing layer (obs/trace.hpp): span nesting, ring-buffer
// wraparound, cross-thread merge ordering, exported-JSON validity (checked
// through the library's own JSON parser), session lifecycle, and the
// histogram round trip through the schema-v2 stats report.
//
// Each test owns at most one TraceSession at a time (a second concurrent
// session throws by contract), and sessions are destroyed before the test
// returns so tests stay independent.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace obs = prox::obs;
namespace trace = prox::obs::trace;

namespace {

// Parses an exported trace and returns the traceEvents array, checking the
// envelope shape on the way (valid JSON, displayTimeUnit, droppedEvents).
// EXPECT (not ASSERT) throughout: gtest fatal assertions need a void return.
std::vector<obs::json::Value> parseTrace(const std::string& text,
                                         obs::json::Value* root) {
  *root = obs::json::parse(text);
  EXPECT_TRUE(root->is(obs::json::Value::Kind::Object));
  const obs::json::Value* unit = root->find("displayTimeUnit");
  EXPECT_NE(unit, nullptr) << "missing displayTimeUnit";
  if (unit != nullptr) {
    EXPECT_EQ(unit->str, "ms");
  }
  const obs::json::Value* dropped = root->find("droppedEvents");
  EXPECT_NE(dropped, nullptr) << "missing droppedEvents";
  if (dropped != nullptr) {
    EXPECT_TRUE(dropped->is(obs::json::Value::Kind::Number));
  }
  const obs::json::Value* events = root->find("traceEvents");
  EXPECT_NE(events, nullptr) << "missing traceEvents";
  if (events == nullptr || !events->is(obs::json::Value::Kind::Array)) {
    return {};
  }
  return events->array;
}

std::string eventName(const obs::json::Value& e) {
  const obs::json::Value* n = e.find("name");
  return n != nullptr ? n->str : std::string();
}

std::string eventPhase(const obs::json::Value& e) {
  const obs::json::Value* ph = e.find("ph");
  return ph != nullptr ? ph->str : std::string();
}

double numberField(const obs::json::Value& e, const char* key) {
  const obs::json::Value* v = e.find(key);
  EXPECT_NE(v, nullptr) << "missing field " << key;
  if (v == nullptr) return 0.0;
  EXPECT_TRUE(v->is(obs::json::Value::Kind::Number)) << key;
  return v->number;
}

// First event with the given name, or null.
const obs::json::Value* findEvent(const std::vector<obs::json::Value>& events,
                                  const std::string& name) {
  for (const auto& e : events) {
    if (eventName(e) == name) return &e;
  }
  return nullptr;
}

void spinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

TEST(TraceTest, SpanNestingInExportedJson) {
  trace::TraceSession session;
  {
    // The Span class itself works in every build flavor (only the macros
    // compile out), so this test needs no PROX_ENABLE_STATS gate.
    trace::Span outer("trace_test.outer");
    spinFor(std::chrono::microseconds(200));
    {
      trace::Span inner("trace_test.inner", "k", 7);
      spinFor(std::chrono::microseconds(200));
    }
    spinFor(std::chrono::microseconds(200));
  }

  obs::json::Value root;
  const auto events = parseTrace(session.exportJson(), &root);
  const obs::json::Value* outer = findEvent(events, "trace_test.outer");
  const obs::json::Value* inner = findEvent(events, "trace_test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(eventPhase(*outer), "X");
  EXPECT_EQ(eventPhase(*inner), "X");

  // The child's [ts, ts+dur) interval nests strictly inside the parent's.
  const double outerTs = numberField(*outer, "ts");
  const double outerDur = numberField(*outer, "dur");
  const double innerTs = numberField(*inner, "ts");
  const double innerDur = numberField(*inner, "dur");
  EXPECT_LT(outerTs, innerTs);
  EXPECT_GT(outerTs + outerDur, innerTs + innerDur);
  EXPECT_GT(innerDur, 0.0);

  // The span argument survives export.
  const obs::json::Value* args = inner->find("args");
  ASSERT_NE(args, nullptr);
  const obs::json::Value* k = args->find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->number, 7.0);

  // Both spans ran on the same thread and both events carry pid/tid.
  EXPECT_EQ(numberField(*outer, "tid"), numberField(*inner, "tid"));
  EXPECT_EQ(numberField(*outer, "pid"), 1.0);
}

TEST(TraceTest, RingBufferWraparoundDropsOldestAndCounts) {
  constexpr std::uint64_t kEmitted = 100;
  constexpr std::uint64_t kCapacity = 16;  // the documented minimum clamp

  trace::TraceSession session(trace::TraceSession::Options{kCapacity});
  // A fresh thread adopts a ring at the *session's* capacity (pre-existing
  // threads keep the capacity they were created with), so the wraparound
  // path is exercised deterministically.
  std::thread emitter([] {
    for (std::uint64_t i = 0; i < kEmitted; ++i) {
      trace::completeEvent("trace_test.wrap", trace::detail::nowNs() - 1000,
                           1000, "i", i);
    }
  });
  emitter.join();
  session.stop();

  EXPECT_EQ(session.droppedEvents(), kEmitted - kCapacity);

  obs::json::Value root;
  const auto events = parseTrace(session.exportJson(), &root);
  EXPECT_EQ(root.find("droppedEvents")->number,
            static_cast<double>(kEmitted - kCapacity));

  // Exactly the newest kCapacity survive: argValues kEmitted-kCapacity ..
  // kEmitted-1, nothing older.
  std::vector<double> kept;
  for (const auto& e : events) {
    if (eventName(e) != "trace_test.wrap") continue;
    const obs::json::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    kept.push_back(args->find("i")->number);
  }
  ASSERT_EQ(kept.size(), kCapacity);
  std::sort(kept.begin(), kept.end());
  for (std::uint64_t j = 0; j < kCapacity; ++j) {
    EXPECT_EQ(kept[j], static_cast<double>(kEmitted - kCapacity + j));
  }
}

TEST(TraceTest, CrossThreadMergeIsTimestampOrderedWithNamedTracks) {
  trace::TraceSession session;
  auto worker = [](const char* threadName, const char* spanName) {
    trace::setCurrentThreadName(threadName);
    for (int i = 0; i < 8; ++i) {
      trace::Span s(spanName);
      spinFor(std::chrono::microseconds(50));
    }
  };
  std::thread t1(worker, "trace-test-alpha", "trace_test.alpha");
  std::thread t2(worker, "trace-test-beta", "trace_test.beta");
  t1.join();
  t2.join();

  obs::json::Value root;
  const auto events = parseTrace(session.exportJson(), &root);

  // Both threads' spans made it into one merged stream, ordered by start
  // timestamp, on distinct tid tracks.
  double lastTs = -1.0;
  double alphaTid = -1.0;
  double betaTid = -1.0;
  int alphaCount = 0;
  int betaCount = 0;
  std::vector<std::string> threadNames;
  for (const auto& e : events) {
    if (eventPhase(e) == "M") {
      if (eventName(e) == "thread_name") {
        threadNames.push_back(e.find("args")->find("name")->str);
      }
      continue;  // metadata records carry no timestamp
    }
    const double ts = numberField(e, "ts");
    EXPECT_GE(ts, lastTs) << "merged events out of timestamp order";
    lastTs = ts;
    if (eventName(e) == "trace_test.alpha") {
      ++alphaCount;
      alphaTid = numberField(e, "tid");
    } else if (eventName(e) == "trace_test.beta") {
      ++betaCount;
      betaTid = numberField(e, "tid");
    }
  }
  EXPECT_EQ(alphaCount, 8);
  EXPECT_EQ(betaCount, 8);
  EXPECT_NE(alphaTid, betaTid);
  EXPECT_NE(std::find(threadNames.begin(), threadNames.end(),
                      "trace-test-alpha"),
            threadNames.end());
  EXPECT_NE(std::find(threadNames.begin(), threadNames.end(),
                      "trace-test-beta"),
            threadNames.end());
}

TEST(TraceTest, EventShapesMatchChromeTraceFormat) {
  trace::TraceSession session;
  trace::counterSample("trace_test.counter", 42);
  trace::instant("trace_test.marker");
  trace::asyncBegin("trace_test.async", 0xabcd);
  spinFor(std::chrono::microseconds(50));
  trace::asyncEnd("trace_test.async", 0xabcd);

  obs::json::Value root;
  const auto events = parseTrace(session.exportJson(), &root);

  const obs::json::Value* process = findEvent(events, "process_name");
  ASSERT_NE(process, nullptr);
  EXPECT_EQ(eventPhase(*process), "M");
  EXPECT_EQ(process->find("args")->find("name")->str, "prox");

  const obs::json::Value* counter = findEvent(events, "trace_test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(eventPhase(*counter), "C");
  EXPECT_EQ(counter->find("args")->find("value")->number, 42.0);

  const obs::json::Value* marker = findEvent(events, "trace_test.marker");
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(eventPhase(*marker), "i");
  ASSERT_NE(marker->find("s"), nullptr);
  EXPECT_EQ(marker->find("s")->str, "t");

  // Async begin/end pair: matching category and id, begin before end.
  const obs::json::Value* begin = nullptr;
  const obs::json::Value* end = nullptr;
  for (const auto& e : events) {
    if (eventName(e) != "trace_test.async") continue;
    if (eventPhase(e) == "b") begin = &e;
    if (eventPhase(e) == "e") end = &e;
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->find("cat")->str, "async");
  EXPECT_EQ(begin->find("id")->str, end->find("id")->str);
  EXPECT_LT(numberField(*begin, "ts"), numberField(*end, "ts"));
}

TEST(TraceTest, SecondConcurrentSessionThrows) {
  trace::TraceSession first;
  EXPECT_THROW(trace::TraceSession second, std::runtime_error);
  // The first session survives the failed construction.
  EXPECT_TRUE(trace::active());
}

TEST(TraceTest, NewSessionClearsEventsFromThePreviousOne) {
  {
    trace::TraceSession first;
    trace::instant("trace_test.stale");
    obs::json::Value root;
    const auto events = parseTrace(first.exportJson(), &root);
    EXPECT_NE(findEvent(events, "trace_test.stale"), nullptr);
  }
  trace::TraceSession second;
  obs::json::Value root;
  const auto events = parseTrace(second.exportJson(), &root);
  EXPECT_EQ(findEvent(events, "trace_test.stale"), nullptr);
  EXPECT_EQ(second.droppedEvents(), 0u);
}

TEST(TraceTest, RecordingOutsideASessionIsDropped) {
  ASSERT_FALSE(trace::active());
  // All record paths reduce to one relaxed load and emit nothing.
  trace::completeEvent("trace_test.orphan", 1, 1);
  trace::instant("trace_test.orphan");
  trace::counterSample("trace_test.orphan", 1);
  { trace::Span s("trace_test.orphan"); }

  trace::TraceSession session;
  obs::json::Value root;
  const auto events = parseTrace(session.exportJson(), &root);
  EXPECT_EQ(findEvent(events, "trace_test.orphan"), nullptr);
}

// --- histogram round trip through the schema-v2 report ----------------------

TEST(TraceTest, HistogramRoundTripsThroughReportSchemaV2) {
#if PROX_ENABLE_STATS
  obs::Histogram& h = obs::histogram("trace_test.rt_hist");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);

  const std::string text = obs::toJson();
  const obs::Report parsed = obs::parseJson(text);
  EXPECT_EQ(parsed.schemaVersion, 4);

  const obs::HistogramSample* s = parsed.histogramNamed("trace_test.rt_hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 100u);
  EXPECT_EQ(s->sum, 5050u);
  EXPECT_EQ(s->min, 1u);
  EXPECT_EQ(s->max, 100u);
  // Quantiles come back as the serialized derived fields; bucket midpoints
  // keep them within the bucketing scheme's 12.5% relative error.
  EXPECT_NEAR(s->p50, 50.0, 50.0 * 0.15);
  EXPECT_NEAR(s->p90, 90.0, 90.0 * 0.15);
  EXPECT_NEAR(s->p99, 99.0, 99.0 * 0.15);

  // The sparse bucket list reconstructs count and sum bounds: every entry is
  // (index, occupancy) with indices strictly increasing.
  ASSERT_FALSE(s->buckets.empty());
  std::uint64_t total = 0;
  std::uint32_t lastIndex = 0;
  bool firstEntry = true;
  for (const auto& [index, occupancy] : s->buckets) {
    EXPECT_TRUE(firstEntry || index > lastIndex);
    firstEntry = false;
    lastIndex = index;
    EXPECT_GT(occupancy, 0u);
    total += occupancy;
  }
  EXPECT_EQ(total, 100u);
#else
  // Disabled build: the report still serializes and parses as the current
  // schema, with the histogram section present but empty.
  const obs::Report parsed = obs::parseJson(obs::toJson());
  EXPECT_EQ(parsed.schemaVersion, 4);
  EXPECT_EQ(parsed.histogramNamed("trace_test.rt_hist"), nullptr);
#endif
}

TEST(TraceTest, V1ReportsStillParseWithoutHistograms) {
  const std::string v1 = R"({
    "enabled": true,
    "counters": {"legacy.counter": 7},
    "timers": {
      "legacy.timer": {"count": 2, "total_s": 0.5, "min_s": 0.2,
                       "max_s": 0.3, "mean_s": 0.25}
    }
  })";
  const obs::Report parsed = obs::parseJson(v1);
  EXPECT_EQ(parsed.schemaVersion, 1);
  EXPECT_EQ(parsed.counterValue("legacy.counter"), 7u);
  EXPECT_TRUE(parsed.histograms.empty());
  ASSERT_EQ(parsed.timers.size(), 1u);
  EXPECT_EQ(parsed.timers[0].count, 2u);
}

TEST(TraceTest, V2ReportsStillParseWithoutLabels) {
  const std::string v2 = R"({
    "schema_version": 2,
    "enabled": true,
    "counters": {"legacy.counter": 7},
    "timers": {},
    "histograms": {}
  })";
  const obs::Report parsed = obs::parseJson(v2);
  EXPECT_EQ(parsed.schemaVersion, 2);
  EXPECT_TRUE(parsed.labels.empty());
  EXPECT_EQ(parsed.counterValue("legacy.counter"), 7u);
}

TEST(TraceTest, LabelsRoundTripThroughReportSchemaV3) {
  obs::setLabel("trace_test.label", "some value");
  const obs::Report parsed = obs::parseJson(obs::toJson());
  EXPECT_EQ(parsed.schemaVersion, 4);
  bool found = false;
  for (const auto& [name, value] : parsed.labels) {
    if (name == "trace_test.label") {
      found = true;
      EXPECT_EQ(value, "some value");
    }
  }
  EXPECT_TRUE(found);

  // Labels are ambient process facts: a stats reset leaves them in place so
  // a post-run report still records e.g. which SIMD path was dispatched.
  obs::resetAll();
  bool foundAfterReset = false;
  for (const auto& [name, value] : obs::snapshot().labels) {
    if (name == "trace_test.label") foundAfterReset = true;
  }
  EXPECT_TRUE(foundAfterReset);
}

TEST(TraceTest, ProvenanceStampsRoundTripThroughReportSchemaV4) {
  obs::Report r = obs::snapshot();
  r.gitSha = "0123456789abcdef0123456789abcdef01234567";
  r.runTimestamp = "2026-01-02T03:04:05Z";
  std::ostringstream os;
  obs::writeJson(r, os);
  const obs::Report parsed = obs::parseJson(os.str());
  EXPECT_EQ(parsed.schemaVersion, 4);
  EXPECT_EQ(parsed.gitSha, r.gitSha);
  EXPECT_EQ(parsed.runTimestamp, r.runTimestamp);

  // Unstamped reports omit the fields entirely (older readers reject unknown
  // keys, so absence -- not empty strings -- is the compatibility story).
  obs::Report bare = obs::snapshot();
  std::ostringstream os2;
  obs::writeJson(bare, os2);
  EXPECT_EQ(os2.str().find("git_sha"), std::string::npos);
  EXPECT_EQ(os2.str().find("run_timestamp"), std::string::npos);
  const obs::Report reparsed = obs::parseJson(os2.str());
  EXPECT_TRUE(reparsed.gitSha.empty());
  EXPECT_TRUE(reparsed.runTimestamp.empty());
}

TEST(TraceTest, TraceJsonParsesWithTheReportJsonParser) {
  // The satellite contract: the exported trace is plain JSON that the
  // library's own parser accepts end to end, including escapes and nested
  // structures -- no reliance on an external validator.
  trace::TraceSession session;
  trace::setCurrentThreadName("name with \"quotes\" and\ttabs");
  trace::instant("trace_test.escaped\nname");
  const std::string text = session.exportJson();
  EXPECT_NO_THROW({
    const obs::json::Value root = obs::json::parse(text);
    EXPECT_TRUE(root.is(obs::json::Value::Kind::Object));
  });
}
