// Unit tests for the durability layer (src/support/): CRC-32 vectors, the
// atomic artifact writer's commit/abandon contract, the append-only journal's
// crash contract (torn tails, corrupt headers, fingerprint checks), and the
// cooperative-cancellation token/scope/signal machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/durable_io.hpp"
#include "support/journal.hpp"

namespace {

namespace fs = std::filesystem;
using namespace prox;
using support::CancelToken;
using support::DiagnosticError;
using support::Journal;
using support::StatusCode;

/// A per-test scratch directory removed on destruction, so abandoned temp
/// files from a failed atomic write would be caught by the entry counts.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("prox_durable_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
  std::size_t entryCount() const {
    std::size_t n = 0;
    for (auto it = fs::directory_iterator(path);
         it != fs::directory_iterator(); ++it) {
      ++n;
    }
    return n;
  }
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// -- CRC-32 ------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The standard check value for CRC-32/IEEE (zlib-compatible).
  EXPECT_EQ(support::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(support::crc32(""), 0x00000000u);
  EXPECT_EQ(support::crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string text = "proxjournal incremental crc check";
  std::uint32_t crc = support::kCrc32Init;
  for (char c : text) crc = support::crc32Update(crc, &c, 1);
  EXPECT_EQ(support::crc32Final(crc), support::crc32(text));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string text = "sensitive payload";
  const std::uint32_t before = support::crc32(text);
  text[5] ^= 0x01;
  EXPECT_NE(support::crc32(text), before);
}

// -- AtomicFileWriter --------------------------------------------------------

TEST(AtomicFileWriter, CommitWritesContentAndLeavesNoTempFile) {
  TempDir dir;
  const std::string target = dir.file("artifact.txt");
  {
    support::AtomicFileWriter w(target);
    w.stream() << "hello\nworld\n";
    EXPECT_FALSE(w.committed());
    w.commit();
    EXPECT_TRUE(w.committed());
  }
  EXPECT_EQ(slurp(target), "hello\nworld\n");
  EXPECT_EQ(dir.entryCount(), 1u);  // only the artifact, no stray temp file
}

TEST(AtomicFileWriter, AbandonedWriterLeavesPreviousArtifactUntouched) {
  TempDir dir;
  const std::string target = dir.file("artifact.txt");
  support::writeFileAtomic(target,
                           [](std::ostream& os) { os << "version one\n"; });
  {
    support::AtomicFileWriter w(target);
    w.stream() << "version two, never committed\n";
    // no commit(): destructor must discard the temp file
  }
  EXPECT_EQ(slurp(target), "version one\n");
  EXPECT_EQ(dir.entryCount(), 1u);
}

TEST(AtomicFileWriter, CommitReplacesExistingArtifactWhole) {
  TempDir dir;
  const std::string target = dir.file("artifact.txt");
  support::writeFileAtomic(target, [](std::ostream& os) {
    os << "a much longer first version with plenty of bytes\n";
  });
  support::writeFileAtomic(target, [](std::ostream& os) { os << "short\n"; });
  // A truncate-in-place bug would leave tail bytes of the longer version.
  EXPECT_EQ(slurp(target), "short\n");
}

TEST(AtomicFileWriter, MissingDirectoryIsTypedIoError) {
  TempDir dir;
  const std::string target = dir.file("no/such/subdir/artifact.txt");
  try {
    support::writeFileAtomic(target, [](std::ostream& os) { os << "x\n"; });
    FAIL() << "expected DiagnosticError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::IoError);
  }
}

TEST(AtomicFileWriter, FillExceptionWritesNothing) {
  TempDir dir;
  const std::string target = dir.file("artifact.txt");
  EXPECT_THROW(support::writeFileAtomic(
                   target,
                   [](std::ostream&) { throw std::runtime_error("mid-fill"); }),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_EQ(dir.entryCount(), 0u);
}

// -- Journal -----------------------------------------------------------------

TEST(JournalTest, DoubleBitsRoundTripLosslessly) {
  for (double v : {0.0, -0.0, 1.0, -3.14159e-12, 1e300,
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min()}) {
    EXPECT_EQ(support::doubleToBits(support::bitsFromDouble(
                  support::doubleToBits(v))),
              support::doubleToBits(v));
  }
  // NaN payload bits survive too (== on the doubles themselves would fail).
  const std::uint64_t nanBits =
      support::doubleToBits(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(support::doubleToBits(support::bitsFromDouble(nanBits)), nanBits);
}

TEST(JournalTest, FreshAppendLoadRoundTrip) {
  TempDir dir;
  const std::string path = dir.file("run.journal");
  {
    Journal j;
    j.openFresh(path, "fp-roundtrip");
    j.append("dual:0:1:r", 0, {support::doubleToBits(1.5)});
    j.append("dual:0:1:r", 7,
             {support::doubleToBits(std::numeric_limits<double>::quiet_NaN())});
    j.append("single", 2,
             {support::doubleToBits(100e-15), support::doubleToBits(1.0),
              support::doubleToBits(5.0)});
    j.close();
  }
  const auto contents = Journal::load(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->fingerprint, "fp-roundtrip");
  EXPECT_FALSE(contents->truncatedTail);
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0].scope, "dual:0:1:r");
  EXPECT_EQ(contents->records[0].index, 0u);
  EXPECT_EQ(contents->records[0].words,
            std::vector<std::uint64_t>{support::doubleToBits(1.5)});
  EXPECT_EQ(contents->records[1].index, 7u);
  EXPECT_TRUE(std::isnan(support::bitsFromDouble(contents->records[1].words[0])));
  EXPECT_EQ(contents->records[2].scope, "single");
  ASSERT_EQ(contents->records[2].words.size(), 3u);
}

TEST(JournalTest, MissingAndEmptyFilesLoadAsNoJournal) {
  TempDir dir;
  EXPECT_FALSE(Journal::load(dir.file("never-written")).has_value());
  std::ofstream(dir.file("empty")).close();
  EXPECT_FALSE(Journal::load(dir.file("empty")).has_value());
}

TEST(JournalTest, CorruptHeaderIsTypedParseError) {
  TempDir dir;
  const std::string path = dir.file("bad.journal");
  std::ofstream(path) << "this is not a journal header\n";
  try {
    Journal::load(path);
    FAIL() << "expected DiagnosticError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::ParseError);
  }
}

TEST(JournalTest, TornTailIsDroppedNotFatal) {
  TempDir dir;
  const std::string path = dir.file("torn.journal");
  {
    Journal j;
    j.openFresh(path, "fp-torn");
    j.append("s", 0, {1});
    j.append("s", 1, {2});
    j.append("s", 2, {3});
    j.close();
  }
  const auto cleanSize = fs::file_size(path);
  {
    // Simulate a crash mid-write(2): a partial record with no CRC/newline.
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << "p s 0000000000000003 0001 00000000000000";
  }
  const auto contents = Journal::load(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 3u);
  EXPECT_TRUE(contents->truncatedTail);
  EXPECT_EQ(contents->validBytes, cleanSize);
}

TEST(JournalTest, CorruptMiddleRecordDropsEverythingAfterIt) {
  TempDir dir;
  const std::string path = dir.file("flip.journal");
  {
    Journal j;
    j.openFresh(path, "fp-flip");
    j.append("s", 0, {0x1111});
    j.append("s", 1, {0x2222});
    j.append("s", 2, {0x3333});
    j.close();
  }
  std::string raw = slurp(path);
  const auto pos = raw.find("2222");
  ASSERT_NE(pos, std::string::npos);
  raw[pos] = '9';  // bit rot inside record 1's payload
  std::ofstream(path, std::ios::binary | std::ios::trunc) << raw;

  const auto contents = Journal::load(path);
  ASSERT_TRUE(contents.has_value());
  // Validity is a prefix property: record 0 survives, 1 fails its CRC, and 2
  // -- though intact on disk -- is past the first invalid line.
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].words, std::vector<std::uint64_t>{0x1111});
  EXPECT_TRUE(contents->truncatedTail);
}

TEST(JournalTest, ResumeTruncatesTornTailAndAppendsCleanly) {
  TempDir dir;
  const std::string path = dir.file("resume.journal");
  {
    Journal j;
    j.openFresh(path, "fp-resume");
    j.append("s", 0, {10});
    j.append("s", 1, {11});
    j.close();
  }
  {
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << "p s torn-garbage";
  }
  Journal j;
  const auto replay = j.openResume(path, "fp-resume");
  ASSERT_EQ(replay.size(), 2u);
  j.append("s", 2, {12});
  j.close();

  const auto contents = Journal::load(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_FALSE(contents->truncatedTail);  // the torn bytes are gone for good
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[2].index, 2u);
  EXPECT_EQ(contents->records[2].words, std::vector<std::uint64_t>{12});
}

TEST(JournalTest, ResumeFingerprintMismatchIsTypedParseError) {
  TempDir dir;
  const std::string path = dir.file("foreign.journal");
  {
    Journal j;
    j.openFresh(path, "fp-original-cell");
    j.append("s", 0, {1});
    j.close();
  }
  Journal j;
  try {
    j.openResume(path, "fp-different-cell");
    FAIL() << "expected DiagnosticError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::ParseError);
  }
}

TEST(JournalTest, ResumeOnMissingFileStartsFresh) {
  TempDir dir;
  const std::string path = dir.file("new.journal");
  Journal j;
  const auto replay = j.openResume(path, "fp-new");
  EXPECT_TRUE(replay.empty());
  j.append("s", 0, {42});
  j.close();
  const auto contents = Journal::load(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->fingerprint, "fp-new");
  ASSERT_EQ(contents->records.size(), 1u);
}

TEST(JournalTest, AppendIsDurableAfterSyncWithoutClose) {
  TempDir dir;
  const std::string path = dir.file("sync.journal");
  Journal j;
  j.openFresh(path, "fp-sync");
  j.append("s", 0, {7});
  j.sync();
  // Read while the writer still holds the file open (the crash viewpoint).
  const auto contents = Journal::load(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->records.size(), 1u);
  j.close();
}

// -- CancelToken -------------------------------------------------------------

TEST(CancelTokenTest, StartsClearAndLatchesOnCancel) {
  CancelToken token;
  EXPECT_FALSE(token.cancelRequested());
  EXPECT_EQ(token.reason(), StatusCode::Ok);
  token.cancel();
  EXPECT_TRUE(token.cancelRequested());
  EXPECT_EQ(token.reason(), StatusCode::Cancelled);
  EXPECT_EQ(token.signalNumber(), 0);
  token.reset();
  EXPECT_FALSE(token.cancelRequested());
  EXPECT_EQ(token.reason(), StatusCode::Ok);
}

TEST(CancelTokenTest, SignalNumberIsRecorded) {
  CancelToken token;
  token.cancel(SIGINT);
  EXPECT_EQ(token.signalNumber(), SIGINT);
  EXPECT_EQ(token.reason(), StatusCode::Cancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineLatchesAsDeadlineExceeded) {
  CancelToken token;
  token.setTimeout(0.0);  // already expired at the first poll
  EXPECT_TRUE(token.cancelRequested());
  EXPECT_EQ(token.reason(), StatusCode::DeadlineExceeded);
  // Latched: the reason stays stable across later polls.
  EXPECT_TRUE(token.cancelRequested());
  EXPECT_EQ(token.reason(), StatusCode::DeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotTripEarly) {
  CancelToken token;
  token.setTimeout(3600.0);
  EXPECT_FALSE(token.cancelRequested());
}

TEST(CancelTokenTest, ThrowIfCancelledCarriesTypedDiagnostic) {
  CancelToken token;
  token.cancel(SIGTERM);
  try {
    token.throwIfCancelled("test.site");
    FAIL() << "expected DiagnosticError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::Cancelled);
    EXPECT_EQ(e.diagnostic().site, "test.site");
  }
}

TEST(CancelScopeTest, PollObservesInstalledTokenAndRestoresOnExit) {
  EXPECT_EQ(support::currentCancelToken(), nullptr);
  EXPECT_NO_THROW(support::pollCancellation("test.poll"));  // no token: no-op

  CancelToken token;
  token.cancel();
  {
    support::CancelScope scope(&token);
    EXPECT_EQ(support::currentCancelToken(), &token);
    EXPECT_THROW(support::pollCancellation("test.poll"), DiagnosticError);
    {
      support::CancelScope nullScope(nullptr);  // null install is a no-op
      EXPECT_EQ(support::currentCancelToken(), &token);
    }
  }
  EXPECT_EQ(support::currentCancelToken(), nullptr);
  EXPECT_NO_THROW(support::pollCancellation("test.poll"));
}

TEST(SignalCancelScopeTest, RoutesSignalIntoToken) {
  CancelToken token;
  {
    support::SignalCancelScope scope(&token);
    ::raise(SIGTERM);  // handled by the scope: stores into the token, returns
    EXPECT_TRUE(token.cancelRequested());
    EXPECT_EQ(token.reason(), StatusCode::Cancelled);
    EXPECT_EQ(token.signalNumber(), SIGTERM);
  }
}

TEST(SignalCancelScopeTest, NestedInstallIsRejected) {
  CancelToken a, b;
  support::SignalCancelScope outer(&a);
  EXPECT_THROW(support::SignalCancelScope inner(&b), DiagnosticError);
}

}  // namespace
