// Cell generator and fixture tests: topology, naming, pin conventions, and
// fixture reuse.

#include <gtest/gtest.h>

#include <cmath>

#include "cells/fixture.hpp"
#include "spice/op.hpp"
#include "waveform/pwl.hpp"

namespace {

using namespace prox::cells;
using prox::spice::Circuit;
using prox::spice::kGround;

TEST(CellSpec, NonControllingLevels) {
  CellSpec nand;
  nand.type = GateType::Nand;
  EXPECT_DOUBLE_EQ(nand.nonControllingLevel(), 5.0);
  CellSpec nor;
  nor.type = GateType::Nor;
  EXPECT_DOUBLE_EQ(nor.nonControllingLevel(), 0.0);
}

TEST(CellSpec, OutputEdgeInverts) {
  CellSpec s;
  s.type = GateType::Nand;
  EXPECT_EQ(s.outputEdgeFor(prox::wave::Edge::Rising), prox::wave::Edge::Falling);
  EXPECT_EQ(s.outputEdgeFor(prox::wave::Edge::Falling), prox::wave::Edge::Rising);
}

TEST(CellSpec, GateTypeNames) {
  EXPECT_EQ(gateTypeName(GateType::Inverter, 1), "INV");
  EXPECT_EQ(gateTypeName(GateType::Nand, 3), "NAND3");
  EXPECT_EQ(gateTypeName(GateType::Nor, 2), "NOR2");
}

TEST(BuildCell, InverterStructure) {
  Circuit ckt;
  CellSpec s;
  s.type = GateType::Inverter;
  s.fanin = 1;
  const auto nets = buildCell(ckt, s, "u1");
  EXPECT_EQ(nets.inputs.size(), 1u);
  EXPECT_TRUE(nets.internals.empty());
  EXPECT_NE(nets.vddSource, nullptr);
  EXPECT_NE(nets.load, nullptr);
  EXPECT_EQ(nets.nmosByInput.size(), 1u);
}

TEST(BuildCell, NandStackInternals) {
  Circuit ckt;
  CellSpec s;
  s.type = GateType::Nand;
  s.fanin = 4;
  const auto nets = buildCell(ckt, s, "u1");
  EXPECT_EQ(nets.inputs.size(), 4u);
  // n-1 internal nodes in the series stack.
  EXPECT_EQ(nets.internals.size(), 3u);
  EXPECT_EQ(nets.nmosByInput.size(), 4u);
}

TEST(BuildCell, InverterFaninMismatchThrows) {
  Circuit ckt;
  CellSpec s;
  s.type = GateType::Inverter;
  s.fanin = 2;
  EXPECT_THROW(buildCell(ckt, s, "u1"), std::invalid_argument);
}

TEST(BuildCell, BadFaninThrows) {
  Circuit ckt;
  CellSpec s;
  s.type = GateType::Nand;
  s.fanin = 0;
  EXPECT_THROW(buildCell(ckt, s, "u1"), std::invalid_argument);
}

TEST(BuildCell, TwoCellsCoexistWithPrefixes) {
  Circuit ckt;
  CellSpec s;
  s.type = GateType::Inverter;
  s.fanin = 1;
  const auto a = buildCell(ckt, s, "u1");
  const auto b = buildCell(ckt, s, "u2");
  EXPECT_NE(a.out, b.out);
  EXPECT_NE(a.inputs[0], b.inputs[0]);
}

TEST(Fixture, DefaultsToNonControlling) {
  CellSpec s;
  s.type = GateType::Nand;
  s.fanin = 2;
  CellFixture fix(s);
  // All inputs at Vdd: NAND output is low from the very first timepoint.
  const auto out = fix.runOutput(1e-9);
  EXPECT_LT(out.value(0.0), 0.05);
  EXPECT_LT(out.maxValue(), 0.1);
}

TEST(Fixture, ReusableAcrossStimuli) {
  CellSpec s;
  s.type = GateType::Nand;
  s.fanin = 2;
  CellFixture fix(s);

  fix.setInput(0, prox::wave::risingRamp(0.5e-9, 0.2e-9, 5.0));
  const auto out1 = fix.runOutput(4e-9);
  EXPECT_NEAR(out1.value(4e-9), 0.0, 0.05);  // output fell

  fix.setAllNonControlling();
  fix.setInput(1, prox::wave::fallingRamp(0.5e-9, 0.2e-9, 5.0));
  const auto out2 = fix.runOutput(4e-9);
  EXPECT_NEAR(out2.value(0.0), 0.0, 0.05);   // starts low (all inputs high)
  EXPECT_NEAR(out2.value(4e-9), 5.0, 0.05);  // rises after the falling input
}

TEST(Fixture, BadInputIndexThrows) {
  CellSpec s;
  s.type = GateType::Nand;
  s.fanin = 2;
  CellFixture fix(s);
  EXPECT_THROW(fix.setInputConstant(2, 0.0), std::out_of_range);
  EXPECT_THROW(fix.setInputConstant(-1, 0.0), std::out_of_range);
}

TEST(Fixture, StackPositionAffectsDelay) {
  // Input 0 (nearest the output) and the bottom input see different
  // single-input delays -- the asymmetry the dominance ordering uses.
  CellSpec s;
  s.type = GateType::Nand;
  s.fanin = 3;
  CellFixture fix(s);

  double cross[2] = {0.0, 0.0};
  const int pins[2] = {0, 2};
  for (int i = 0; i < 2; ++i) {
    fix.setAllNonControlling();
    // Rising input needs the pin to start low.
    fix.setInput(pins[i], prox::wave::risingRamp(0.5e-9, 0.3e-9, 5.0));
    const auto out = fix.runOutput(4e-9);
    const auto t = out.crossing(2.5, prox::wave::Edge::Falling);
    ASSERT_TRUE(t.has_value());
    cross[i] = *t;
  }
  EXPECT_NE(cross[0], cross[1]);
  EXPECT_GT(std::fabs(cross[0] - cross[1]), 1e-12);
}

TEST(Technology, Generic5vDefaults) {
  const Technology t = Technology::generic5v();
  EXPECT_DOUBLE_EQ(t.vdd, 5.0);
  EXPECT_TRUE(t.nmos.nmos);
  EXPECT_FALSE(t.pmos.nmos);
  EXPECT_LT(t.pmos.vt0, 0.0);
  EXPECT_GT(t.nmos.gamma, 0.0);  // body effect enabled
  EXPECT_GT(t.gateCap(4e-6, 0.8e-6), 0.0);
}

}  // namespace
