// Device-level tests: resistor and capacitor stamps, voltage sources,
// verified through tiny circuits with analytic solutions.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/capacitor.hpp"
#include "spice/isource.hpp"
#include "spice/op.hpp"
#include "spice/resistor.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"
#include "waveform/pwl.hpp"

namespace {

using namespace prox::spice;

TEST(Resistor, DividerOperatingPoint) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("v1", in, kGround, 6.0);
  ckt.add<Resistor>("r1", in, mid, 1000.0);
  ckt.add<Resistor>("r2", mid, kGround, 2000.0);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  // The solver's gmin shunt (1e-12 S) perturbs the ideal divider by a few nV.
  EXPECT_NEAR(ckt.nodeVoltage(*x, mid), 4.0, 1e-6);
}

TEST(Resistor, BranchCurrentHelper) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("v1", in, kGround, 5.0);
  auto& r = ckt.add<Resistor>("r1", in, kGround, 1000.0);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(r.current(ckt, *x), 5e-3, 1e-9);
}

TEST(Resistor, RejectsNonPositiveValue) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Resistor>("r", ckt.node("a"), kGround, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.add<Resistor>("r2", ckt.node("a"), kGround, -5.0),
               std::invalid_argument);
}

TEST(VoltageSource, BranchCurrentThroughLoad) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  auto& v = ckt.add<VoltageSource>("v1", in, kGround, 10.0);
  ckt.add<Resistor>("r1", in, kGround, 100.0);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  // 100 mA flows out of the + terminal through the resistor and back: the
  // MNA branch current (through the source, + to -) is -0.1 A.
  EXPECT_NEAR(v.branchCurrent(*x), -0.1, 1e-9);
}

TEST(VoltageSource, PwlFollowsWaveformInTransient) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  prox::wave::Waveform w;
  w.append(0.0, 0.0);
  w.append(1e-9, 2.0);
  w.append(2e-9, 2.0);
  ckt.add<VoltageSource>("v1", in, kGround, w);
  ckt.add<Resistor>("r1", in, kGround, 1000.0);
  TranOptions opt;
  opt.tstop = 2e-9;
  const TranResult res = transient(ckt, opt);
  const auto node = res.node(in);
  EXPECT_NEAR(node.value(0.5e-9), 1.0, 1e-6);
  EXPECT_NEAR(node.value(2e-9), 2.0, 1e-6);
}

TEST(VoltageSource, EmptyPwlThrows) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<VoltageSource>("v", ckt.node("a"), kGround,
                                      prox::wave::Waveform{}),
               std::invalid_argument);
}

TEST(Capacitor, RejectsNegativeValue) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Capacitor>("c", ckt.node("a"), kGround, -1e-12),
               std::invalid_argument);
}

TEST(Capacitor, OpenCircuitInDc) {
  // Node behind a capacitor floats in DC; gmin pulls it to ground.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("v1", in, kGround, 5.0);
  ckt.add<Capacitor>("c1", in, out, 1e-12);
  ckt.add<Resistor>("r1", out, kGround, 1000.0);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(ckt.nodeVoltage(*x, out), 0.0, 1e-6);
}

TEST(Capacitor, RcStepResponseMatchesAnalytic) {
  // R = 1 kOhm, C = 1 pF, tau = 1 ns; v(t) = 1 - exp(-t/tau).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  prox::wave::Waveform step;
  step.append(0.0, 0.0);
  step.append(1e-12, 1.0);
  ckt.add<VoltageSource>("v1", in, kGround, step);
  ckt.add<Resistor>("r1", in, out, 1000.0);
  ckt.add<Capacitor>("c1", out, kGround, 1e-12);
  TranOptions opt;
  opt.tstop = 5e-9;
  opt.dvMax = 0.01;
  const TranResult res = transient(ckt, opt);
  const auto w = res.node(out);
  for (double t : {0.5e-9, 1e-9, 2e-9, 3e-9}) {
    const double expect = 1.0 - std::exp(-t / 1e-9);
    EXPECT_NEAR(w.value(t), expect, 2e-3) << "at t=" << t;
  }
}

TEST(Capacitor, RcDischargeMatchesAnalytic) {
  // Start charged at 3 V (DC op with source at 3), source steps to 0.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  prox::wave::Waveform fall;
  fall.append(0.0, 3.0);
  fall.append(1e-12, 0.0);
  ckt.add<VoltageSource>("v1", in, kGround, fall);
  ckt.add<Resistor>("r1", in, out, 2000.0);
  ckt.add<Capacitor>("c1", out, kGround, 1e-12);  // tau = 2 ns
  TranOptions opt;
  opt.tstop = 8e-9;
  opt.dvMax = 0.02;
  const TranResult res = transient(ckt, opt);
  const auto w = res.node(out);
  for (double t : {1e-9, 2e-9, 4e-9}) {
    const double expect = 3.0 * std::exp(-t / 2e-9);
    EXPECT_NEAR(w.value(t), expect, 6e-3) << "at t=" << t;
  }
}

TEST(Capacitor, CoupledDividerTransient) {
  // Capacitive divider: fast step couples through proportionally.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  prox::wave::Waveform step;
  step.append(0.0, 0.0);
  step.append(1e-12, 2.0);
  ckt.add<VoltageSource>("v1", in, kGround, step);
  ckt.add<Capacitor>("c1", in, mid, 3e-12);
  ckt.add<Capacitor>("c2", mid, kGround, 1e-12);
  TranOptions opt;
  opt.tstop = 0.2e-9;
  const TranResult res = transient(ckt, opt);
  // Immediately after the step the divider gives 2 * 3/(3+1) = 1.5 V (gmin
  // discharge is negligible at this timescale).
  EXPECT_NEAR(res.node(mid).value(0.1e-9), 1.5, 0.02);
}

TEST(CurrentSource, DcIntoResistor) {
  // 1 mA out of the + terminal through the external path: with np grounded
  // and nn at the resistor, the resistor node is pushed positive.
  Circuit ckt;
  const NodeId out = ckt.node("out");
  ckt.add<CurrentSource>("i1", kGround, out, 1e-3);
  ckt.add<Resistor>("r1", out, kGround, 1000.0);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(ckt.nodeVoltage(*x, out), 1.0, 1e-6);
}

TEST(CurrentSource, PolarityConvention) {
  // Current leaves np: with np at the resistor node the voltage goes
  // negative.
  Circuit ckt;
  const NodeId out = ckt.node("out");
  ckt.add<CurrentSource>("i1", out, kGround, 1e-3);
  ckt.add<Resistor>("r1", out, kGround, 1000.0);
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(ckt.nodeVoltage(*x, out), -1.0, 1e-6);
}

TEST(CurrentSource, PwlRampChargesCapacitorQuadratically) {
  // i(t) = (1 mA/ns) * t into C = 1 pF: v(t) = t^2 * (1e6/2) / 1e-12.
  Circuit ckt;
  const NodeId out = ckt.node("out");
  prox::wave::Waveform ramp;
  ramp.append(0.0, 0.0);
  ramp.append(1e-9, 1e-3);
  ckt.add<CurrentSource>("i1", kGround, out, ramp);
  ckt.add<Capacitor>("c1", out, kGround, 1e-12);
  TranOptions opt;
  opt.tstop = 1e-9;
  opt.dvMax = 0.01;
  const auto res = transient(ckt, opt);
  const auto w = res.node(out);
  // v(t) = integral i/C = (1e6 * t^2 / 2) / 1e-12 -> at 1 ns: 0.5 V.
  EXPECT_NEAR(w.value(1e-9), 0.5, 0.01);
  EXPECT_NEAR(w.value(0.5e-9), 0.125, 0.01);
}

TEST(CurrentSource, EmptyPwlThrows) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<CurrentSource>("i", ckt.node("a"), kGround,
                                      prox::wave::Waveform{}),
               std::invalid_argument);
}

TEST(Circuit, NodeNamesAndAliases) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
  const NodeId a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);
  EXPECT_NE(ckt.node("b"), a);
  EXPECT_TRUE(ckt.findNode("a").has_value());
  EXPECT_FALSE(ckt.findNode("zzz").has_value());
  EXPECT_EQ(ckt.nodeName(a), "a");
}

TEST(Transient, RejectsNonPositiveStop) {
  Circuit ckt;
  ckt.add<VoltageSource>("v", ckt.node("a"), kGround, 1.0);
  TranOptions opt;
  opt.tstop = 0.0;
  EXPECT_THROW(transient(ckt, opt), std::invalid_argument);
}

TEST(Transient, LandsOnPwlBreakpoints) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  prox::wave::Waveform w;
  w.append(0.0, 0.0);
  w.append(1.000001e-9, 5.0);
  ckt.add<VoltageSource>("v1", in, kGround, w);
  ckt.add<Resistor>("r1", in, kGround, 1000.0);
  TranOptions opt;
  opt.tstop = 2e-9;
  const TranResult res = transient(ckt, opt);
  // A recorded timepoint must hit the breakpoint exactly.
  bool found = false;
  for (double t : res.times()) {
    if (std::fabs(t - 1.000001e-9) < 1e-21) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
