// End-to-end integration tests: the Table 5-1 methodology in miniature
// (random configurations, model vs full transistor-level simulation), plus
// cross-module consistency checks.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "characterize/serialize.hpp"
#include "sta/timing_graph.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

TEST(Integration, OracleModeErrorsStaySmall) {
  // The paper's validation loop: HSPICE-as-dual-input-macromodel, compared
  // against the full 3-input simulation.  With the oracle the only error
  // sources are the compositional algorithm itself and the correction term,
  // so errors should sit in the single-digit-percent band (Table 5-1).
  const auto& cg = testutil::nand3Model();
  model::GateSimulator sim(cg.gate);
  model::OracleDualInputModel oracle(sim, *cg.singles);
  const auto corr = characterize::characterizeStepCorrection(
      sim, *cg.singles, oracle, testutil::fastConfig().stepTau);
  const model::ProximityCalculator calc(cg.gate.spec.type, *cg.singles, oracle,
                                        corr);

  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> tauDist(50e-12, 2000e-12);
  std::uniform_real_distribution<double> sepDist(-500e-12, 500e-12);

  double sumAbs = 0.0;
  int count = 0;
  for (int cfg = 0; cfg < 12; ++cfg) {
    const Edge e = cfg % 2 == 0 ? Edge::Rising : Edge::Falling;
    std::vector<InputEvent> evs;
    for (int p = 0; p < 3; ++p) {
      evs.push_back({p, e, p == 0 ? 0.0 : sepDist(rng), tauDist(rng)});
    }
    const auto full = sim.simulate(evs, 0);
    ASSERT_TRUE(full.outputRefTime.has_value()) << "cfg " << cfg;
    const auto r = calc.compute(evs);
    const double err =
        (r.outputRefTime - *full.outputRefTime) / *full.delay * 100.0;
    EXPECT_LT(std::fabs(err), 20.0) << "cfg " << cfg;
    sumAbs += std::fabs(err);
    ++count;
  }
  EXPECT_LT(sumAbs / count, 6.0);  // mean |error| in percent
}

TEST(Integration, TransitionTimePredictionsReasonable) {
  const auto& cg = testutil::nand3Model();
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 500e-12},
                              {1, Edge::Falling, 100e-12, 300e-12}};
  const auto full = sim.simulate(evs, 0);
  ASSERT_TRUE(full.transitionTime.has_value());
  const auto r = calc.compute(evs);
  EXPECT_NEAR(r.transitionTime, *full.transitionTime,
              0.35 * *full.transitionTime);
}

TEST(Integration, ProximityBeatsClassicOnAverage) {
  // The reason the model exists: against the full simulation, the proximity
  // calculation must be more accurate than classic single-input STA when
  // inputs are temporally close.
  const auto& cg = testutil::nand3Model();
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();

  std::mt19937 rng(99);
  std::uniform_real_distribution<double> tauDist(100e-12, 1200e-12);
  std::uniform_real_distribution<double> sepDist(-150e-12, 150e-12);

  double errProx = 0.0;
  double errClassic = 0.0;
  for (int cfg = 0; cfg < 8; ++cfg) {
    const Edge e = cfg % 2 == 0 ? Edge::Rising : Edge::Falling;
    std::vector<InputEvent> evs;
    for (int p = 0; p < 3; ++p) {
      evs.push_back({p, e, p == 0 ? 0.0 : sepDist(rng), tauDist(rng)});
    }
    const auto full = sim.simulate(evs, 0);
    ASSERT_TRUE(full.outputRefTime.has_value());
    const auto rp = calc.compute(evs);
    const auto rc = calc.computeClassic(evs);
    errProx += std::fabs(rp.outputRefTime - *full.outputRefTime);
    errClassic += std::fabs(rc.outputRefTime - *full.outputRefTime);
  }
  EXPECT_LT(errProx, errClassic);
}

TEST(Integration, SerializedModelDrivesSta) {
  // Full tool flow: characterize -> save -> load -> timing-analyze.
  const auto& cg = testutil::nand2Model();
  std::stringstream ss;
  characterize::saveGateModel(cg, ss);
  const auto loaded = characterize::loadGateModel(ss);

  sta::Netlist nl;
  nl.addPrimaryInput("a");
  nl.addPrimaryInput("b");
  nl.addInstance("u1", loaded, {"a", "b"}, "y");
  sta::TimingAnalyzer ta(nl, sta::DelayMode::Proximity);
  ta.setInputArrival("a", {0.0, 300e-12, Edge::Rising});
  ta.setInputArrival("b", {30e-12, 300e-12, Edge::Rising});
  ta.run();
  const auto y = ta.arrival("y");
  ASSERT_TRUE(y.has_value());
  EXPECT_GT(y->time, 0.0);
  EXPECT_EQ(y->edge, Edge::Falling);
}

TEST(Integration, NorGateEndToEnd) {
  // The whole flow on a NOR2: thresholds, characterization, and proximity
  // prediction vs simulation in both directions (NOR mirrors the NAND's
  // series/parallel roles, so rising pairs speed up and falling pairs slow
  // down).
  const auto cg = characterize::characterizeGate(testutil::norSpec(2),
                                                 testutil::fastConfig());
  model::GateSimulator sim(cg.gate);
  const auto calc = cg.calculator();

  // Rising pair: parallel NMOS -> faster than the dominant input alone.
  {
    std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 400e-12},
                                {1, Edge::Rising, 0.0, 150e-12}};
    const auto r = calc.compute(evs);
    const double alone = cg.singles->at(r.dominantPin, Edge::Rising)
                             .delay(r.dominantPin == 0 ? 400e-12 : 150e-12);
    EXPECT_LT(r.delay, alone);
    const auto full = sim.simulate(evs, 0);
    ASSERT_TRUE(full.outputRefTime.has_value());
    EXPECT_NEAR(r.outputRefTime, *full.outputRefTime, 0.15 * *full.delay);
  }
  // Falling pair: series PMOS stack -> slower at zero separation.
  {
    std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 400e-12},
                                {1, Edge::Falling, 0.0, 400e-12}};
    const auto full = sim.simulate(evs, 0);
    const auto single = sim.simulateSingle({0, Edge::Falling, 0.0, 400e-12});
    ASSERT_TRUE(full.delay && single.delay);
    EXPECT_GT(*full.delay, *single.delay);
    const auto r = calc.compute(evs);
    ASSERT_TRUE(full.outputRefTime.has_value());
    EXPECT_NEAR(r.outputRefTime, *full.outputRefTime, 0.15 * *full.delay);
  }
}

TEST(Integration, DominanceDiscontinuityExists) {
  // Figure 3-3's discontinuity: when the dominant input changes, the delay
  // reference changes and the reported delay jumps.
  const auto& cg = testutil::nand2Model();
  const auto calc = cg.calculator();
  const InputEvent a{0, Edge::Falling, 0.0, 500e-12};
  const double tauB = 1000e-12;
  const double crossover = model::dominanceCrossover(
      a, {1, Edge::Falling, 0.0, tauB}, *cg.singles);

  auto delayAt = [&](double s) {
    std::vector<InputEvent> evs{a, {1, Edge::Falling, s, tauB}};
    const auto r = calc.compute(evs);
    return std::pair<double, int>(r.delay, r.dominantPin);
  };
  const auto before = delayAt(crossover - 20e-12);
  const auto after = delayAt(crossover + 20e-12);
  EXPECT_NE(before.second, after.second);  // dominant input flips
}

}  // namespace
