// Tests for the observability registry: counter monotonicity, timer
// accumulation, enable/disable semantics, concurrent increments, report
// snapshots and the JSON round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/scoped_timer.hpp"

namespace obs = prox::obs;

namespace {

// Every test leaves the registry enabled; a disabled registry would silently
// zero the instrumentation of tests that run later in this binary.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::setEnabled(true); }
};

TEST_F(ObsTest, CounterStartsAtZeroAndIsMonotonic) {
  obs::Counter& c = obs::counter("test.monotonic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  std::uint64_t prev = 0;
  for (int i = 1; i <= 100; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    EXPECT_GT(c.value(), prev);
    prev = c.value();
  }
  EXPECT_EQ(c.value(), 5050u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.stable");
  obs::Counter& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  obs::Timer& t1 = obs::timer("test.stable_timer");
  obs::Timer& t2 = obs::timer("test.stable_timer");
  EXPECT_EQ(&t1, &t2);
  // Creating unrelated instruments must not invalidate earlier references.
  for (int i = 0; i < 64; ++i) {
    obs::counter("test.stable_churn." + std::to_string(i));
  }
  obs::Counter& c = obs::counter("test.stable");
  EXPECT_EQ(&a, &c);
}

TEST_F(ObsTest, TimerAccumulatesCountTotalMinMax) {
  obs::Timer& t = obs::timer("test.timer_accum");
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.totalSeconds(), 0.0);
  t.record(2.0);
  t.record(0.5);
  t.record(1.0);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_DOUBLE_EQ(t.totalSeconds(), 3.5);
  EXPECT_DOUBLE_EQ(t.minSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(t.maxSeconds(), 2.0);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.totalSeconds(), 0.0);
}

TEST_F(ObsTest, DisableStopsRecordingAndPreservesValues) {
  obs::Counter& c = obs::counter("test.disable");
  obs::Timer& t = obs::timer("test.disable_timer");
  c.reset();
  t.reset();
  c.add(3);
  t.record(1.0);

  obs::setEnabled(false);
  EXPECT_FALSE(obs::enabled());
  c.add(100);
  t.record(100.0);
  EXPECT_EQ(c.value(), 3u) << "disabled counter must not move";
  EXPECT_EQ(t.count(), 1u) << "disabled timer must not move";

  obs::setEnabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 4u) << "re-enabling resumes from the preserved value";
}

TEST_F(ObsTest, ScopedTimerChargesEnclosingScope) {
  obs::Timer& t = obs::timer("test.scoped");
  t.reset();
  {
    obs::ScopedTimer st(t);
    // Busy-wait just long enough to observe a strictly positive duration.
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::microseconds(50)) {
    }
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GT(t.totalSeconds(), 0.0);
}

TEST_F(ObsTest, ScopedTimerRecordsNothingWhenDisabled) {
  obs::Timer& t = obs::timer("test.scoped_disabled");
  t.reset();
  obs::setEnabled(false);
  { obs::ScopedTimer st(t); }
  obs::setEnabled(true);
  EXPECT_EQ(t.count(), 0u);
}

TEST_F(ObsTest, ConcurrentIncrementsAreExact) {
  obs::Counter& c = obs::counter("test.concurrent");
  obs::Timer& t = obs::timer("test.concurrent_timer");
  c.reset();
  t.reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        t.record(1e-3);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(t.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_NEAR(t.totalSeconds(), kThreads * kIters * 1e-3, 1e-6);
  EXPECT_DOUBLE_EQ(t.minSeconds(), 1e-3);
  EXPECT_DOUBLE_EQ(t.maxSeconds(), 1e-3);
}

TEST_F(ObsTest, ConcurrentRegistryLookupsAreSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < 200; ++i) {
        // Half the names are shared across threads, half are private.
        obs::counter("test.lookup.shared." + std::to_string(i)).add(1);
        obs::counter("test.lookup.t" + std::to_string(w)).add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(obs::counter("test.lookup.shared.0").value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST_F(ObsTest, SnapshotContainsInstrumentsSortedByName) {
  obs::counter("test.snap.b").reset();
  obs::counter("test.snap.a").add(7);
  const obs::Report r = obs::snapshot();
  EXPECT_TRUE(std::is_sorted(
      r.counters.begin(), r.counters.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
  EXPECT_EQ(r.counterValue("test.snap.a"), 7u + 0u);
  EXPECT_GE(r.counterSumWithPrefix("test.snap."), 7u);
}

TEST_F(ObsTest, JsonReportRoundTrips) {
  obs::counter("test.json.count").reset();
  obs::counter("test.json.count").add(42);
  obs::Timer& t = obs::timer("test.json.timer");
  t.reset();
  t.record(0.25);
  t.record(0.75);

  const obs::Report before = obs::snapshot();
  std::ostringstream os;
  obs::writeJson(before, os);
  const obs::Report after = obs::parseJson(os.str());

  EXPECT_EQ(after.enabled, before.enabled);
  ASSERT_EQ(after.counters.size(), before.counters.size());
  for (std::size_t i = 0; i < before.counters.size(); ++i) {
    EXPECT_EQ(after.counters[i].name, before.counters[i].name);
    EXPECT_EQ(after.counters[i].value, before.counters[i].value);
  }
  ASSERT_EQ(after.timers.size(), before.timers.size());
  for (std::size_t i = 0; i < before.timers.size(); ++i) {
    EXPECT_EQ(after.timers[i].name, before.timers[i].name);
    EXPECT_EQ(after.timers[i].count, before.timers[i].count);
    EXPECT_DOUBLE_EQ(after.timers[i].totalSeconds,
                     before.timers[i].totalSeconds);
    EXPECT_DOUBLE_EQ(after.timers[i].minSeconds, before.timers[i].minSeconds);
    EXPECT_DOUBLE_EQ(after.timers[i].maxSeconds, before.timers[i].maxSeconds);
  }

  EXPECT_EQ(after.counterValue("test.json.count"), 42u);
}

TEST_F(ObsTest, ParseJsonRejectsMalformedInput) {
  EXPECT_THROW(obs::parseJson("{"), std::runtime_error);
  EXPECT_THROW(obs::parseJson("[]"), std::runtime_error);
  EXPECT_THROW(obs::parseJson("{\"bogus\": 1}"), std::runtime_error);
  EXPECT_THROW(obs::parseJson("{\"counters\": {\"a\": }}"),
               std::runtime_error);
}

TEST_F(ObsTest, EmptyTimerSerializesZeroStats) {
  obs::timer("test.json.empty_timer").reset();
  const std::string json = obs::toJson();
  const obs::Report r = obs::parseJson(json);
  for (const obs::TimerSample& t : r.timers) {
    if (t.name != "test.json.empty_timer") continue;
    EXPECT_EQ(t.count, 0u);
    EXPECT_EQ(t.totalSeconds, 0.0);
    EXPECT_EQ(t.minSeconds, 0.0);
    EXPECT_EQ(t.maxSeconds, 0.0);
    return;
  }
  FAIL() << "empty timer missing from report";
}

TEST_F(ObsTest, ResetAllZeroesEverythingButKeepsReferences) {
  obs::Counter& c = obs::counter("test.resetall");
  c.add(5);
  obs::Timer& t = obs::timer("test.resetall_timer");
  t.record(1.0);
  obs::resetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.count(), 0u);
  c.add(2);
  EXPECT_EQ(obs::counter("test.resetall").value(), 2u);
}

// PROX_OBS_* macros: recording honours the build flag; with stats compiled
// in they must hit the named instruments exactly once per expansion.
TEST_F(ObsTest, MacrosChargeNamedInstruments) {
#if PROX_ENABLE_STATS
  obs::counter("test.macro.count").reset();
  for (int i = 0; i < 3; ++i) PROX_OBS_COUNT("test.macro.count", 2);
  EXPECT_EQ(obs::counter("test.macro.count").value(), 6u);

  obs::timer("test.macro.timer").reset();
  PROX_OBS_RECORD("test.macro.timer", 0.125);
  EXPECT_EQ(obs::timer("test.macro.timer").count(), 1u);
  EXPECT_DOUBLE_EQ(obs::timer("test.macro.timer").totalSeconds(), 0.125);

  obs::timer("test.macro.scoped").reset();
  { PROX_OBS_SCOPED_TIMER("test.macro.scoped"); }
  EXPECT_EQ(obs::timer("test.macro.scoped").count(), 1u);
#else
  // Disabled builds: the macros must compile to no-ops.
  PROX_OBS_COUNT("test.macro.count", 2);
  PROX_OBS_RECORD("test.macro.timer", 0.125);
  PROX_OBS_SCOPED_TIMER("test.macro.scoped");
  EXPECT_EQ(obs::counter("test.macro.count").value(), 0u);
#endif
}

// -- histograms --------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketMathIsMonotoneAndBounded) {
  namespace d = obs::detail;
  // Values 0..7 land in exact unit buckets.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(d::histBucketIndex(v), v);
    EXPECT_EQ(d::histBucketLowerBound(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(d::histBucketWidth(static_cast<std::uint32_t>(v)), 1u);
  }
  // Index is monotone and every value lies inside its bucket's range; the
  // relative bucket width stays <= 12.5% (1/8) of the lower bound.
  std::uint32_t prev = 0;
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 3 + 1) {
    const std::uint32_t i = d::histBucketIndex(v);
    EXPECT_GE(i, prev);
    prev = i;
    const std::uint64_t lo = d::histBucketLowerBound(i);
    const std::uint64_t w = d::histBucketWidth(i);
    EXPECT_GE(v, lo);
    EXPECT_LT(v, lo + w);
    if (v >= 8) {
      EXPECT_LE(static_cast<double>(w), lo * 0.125 + 1e-9);
    }
  }
  // The top of the value range maps inside the table.
  EXPECT_LT(d::histBucketIndex(std::numeric_limits<std::uint64_t>::max()),
            d::kHistBucketCount);
}

TEST_F(ObsTest, HistogramRecordsCountSumMinMaxAndQuantiles) {
  obs::Histogram& h = obs::histogram("test.hist.basic");
  h.reset();
  EXPECT_EQ(h.data().count, 0u);
  EXPECT_EQ(h.data().quantile(0.5), 0.0);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const obs::HistogramData d = h.data();
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.sum, 5050u);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 100u);
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
  // Bucket midpoints bound quantile error by the 12.5% bucket width.
  EXPECT_NEAR(d.quantile(0.5), 50.0, 50.0 * 0.15);
  EXPECT_NEAR(d.quantile(0.9), 90.0, 90.0 * 0.15);
  EXPECT_NEAR(d.quantile(0.99), 99.0, 99.0 * 0.15);
  // Quantiles never escape the exact [min, max] envelope.
  EXPECT_GE(d.quantile(0.0), 1.0);
  EXPECT_LE(d.quantile(1.0), 100.0);
  h.reset();
  EXPECT_EQ(h.data().count, 0u);
}

TEST_F(ObsTest, HistogramConcurrentRecordsAreExact) {
  obs::Histogram& h = obs::histogram("test.hist.concurrent");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        h.record(static_cast<std::uint64_t>(w + 1));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::HistogramData d = h.data();
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(d.sum, static_cast<std::uint64_t>(kIters) * (1 + 2 + 3 + 4 + 5 +
                                                         6 + 7 + 8));
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 8u);
}

TEST_F(ObsTest, HistogramMacroChargesNamedInstrument) {
#if PROX_ENABLE_STATS
  obs::histogram("test.hist.macro").reset();
  for (int i = 0; i < 4; ++i) PROX_OBS_HIST("test.hist.macro", 16);
  EXPECT_EQ(obs::histogram("test.hist.macro").data().count, 4u);

  obs::histogram("test.hist.batch").reset();
  {
    PROX_OBS_BATCH(cells);
    PROX_OBS_HIST_IN(cells, "test.hist.batch", 7);
  }
  EXPECT_EQ(obs::histogram("test.hist.batch").data().count, 1u);

  obs::setEnabled(false);
  PROX_OBS_HIST("test.hist.macro", 1);
  obs::setEnabled(true);
  EXPECT_EQ(obs::histogram("test.hist.macro").data().count, 4u)
      << "disabled histogram must not move";
#else
  PROX_OBS_HIST("test.hist.macro", 16);
  EXPECT_EQ(obs::histogram("test.hist.macro").data().count, 0u);
#endif
}

// -- overflow fallback -------------------------------------------------------
// Instruments past the per-thread cell caps must fall back to the shared
// (mutex/RMW) path and still merge exactly across threads.  These tests spill
// the registry past every cap on purpose; instruments created later in this
// binary may take the fallback path too, which the design keeps correct.

TEST_F(ObsTest, CounterOverflowFallbackMergesAcrossThreads) {
  // Spill well past the cap so the probe counter is certainly cell-less.
  for (std::uint32_t i = 0; i < obs::detail::kMaxCounterCells; ++i) {
    obs::counter("test.overflow.fill." + std::to_string(i));
  }
  obs::Counter& c = obs::counter("test.overflow.probe");
  c.reset();
  c.add(3);
  EXPECT_EQ(c.value(), 3u) << "overflow counter must record immediately";
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), 3u + static_cast<std::uint64_t>(kThreads) * kIters);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, TimerOverflowFallbackMergesAcrossThreads) {
  for (std::uint32_t i = 0; i < obs::detail::kMaxTimerCells; ++i) {
    obs::timer("test.overflow.tfill." + std::to_string(i));
  }
  obs::Timer& t = obs::timer("test.overflow.tprobe");
  t.reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) t.record(1e-3 * (w + 1));
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(t.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(t.minSeconds(), 1e-3);
  EXPECT_DOUBLE_EQ(t.maxSeconds(), 8e-3);
}

TEST_F(ObsTest, HistogramOverflowFallbackMergesAcrossThreads) {
  for (std::uint32_t i = 0; i < obs::detail::kMaxHistogramCells; ++i) {
    obs::histogram("test.overflow.hfill." + std::to_string(i));
  }
  obs::Histogram& h = obs::histogram("test.overflow.hprobe");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        h.record(static_cast<std::uint64_t>(100 * (w + 1)));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::HistogramData d = h.data();
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(d.min, 100u);
  EXPECT_EQ(d.max, 800u);
  EXPECT_NEAR(d.quantile(0.5), 450.0, 450.0 * 0.15);
  h.reset();
  EXPECT_EQ(h.data().count, 0u);
}

TEST_F(ObsTest, BatchedMacrosChargeInstruments) {
#if PROX_ENABLE_STATS
  obs::counter("test.batch.count").reset();
  obs::timer("test.batch.timer").reset();
  {
    PROX_OBS_BATCH(cells);
    PROX_OBS_COUNT_IN(cells, "test.batch.count", 3);
    PROX_OBS_COUNT_IN(cells, "test.batch.count", 0);  // zero add is a no-op
    PROX_OBS_RECORD_IN(cells, "test.batch.timer", 0.25);
  }
  EXPECT_EQ(obs::counter("test.batch.count").value(), 3u);
  EXPECT_EQ(obs::timer("test.batch.timer").count(), 1u);
  EXPECT_DOUBLE_EQ(obs::timer("test.batch.timer").totalSeconds(), 0.25);

  // Disabled: batchCells() returns null and batched sites record nothing.
  obs::setEnabled(false);
  {
    PROX_OBS_BATCH(cells);
    EXPECT_EQ(cells, nullptr);
    PROX_OBS_COUNT_IN(cells, "test.batch.count", 5);
    PROX_OBS_RECORD_IN(cells, "test.batch.timer", 1.0);
  }
  obs::setEnabled(true);
  EXPECT_EQ(obs::counter("test.batch.count").value(), 3u);
  EXPECT_EQ(obs::timer("test.batch.timer").count(), 1u);
#else
  PROX_OBS_BATCH(cells);
  PROX_OBS_COUNT_IN(cells, "test.batch.count", 3);
  PROX_OBS_RECORD_IN(cells, "test.batch.timer", 0.25);
  EXPECT_EQ(obs::counter("test.batch.count").value(), 0u);
#endif
}

}  // namespace
