// Self-test for the shared test utilities, in particular the
// single-evaluation tolerance assertions added alongside the parallel
// characterization work: the macros must evaluate each argument expression
// exactly once (so side-effecting arguments behave), compare with the
// documented semantics, and reject NaN/Inf.

#include <gtest/gtest.h>
#include <gtest/gtest-spi.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "test_util.hpp"

namespace {

using namespace prox;

// -- single evaluation -------------------------------------------------------

TEST(ToleranceAssertions, AbsNearEvaluatesEachArgumentOnce) {
  int actualEvals = 0;
  int expectedEvals = 0;
  int tolEvals = 0;
  PROX_EXPECT_ABS_NEAR((++actualEvals, 1.0), (++expectedEvals, 1.05),
                       (++tolEvals, 0.1));
  EXPECT_EQ(actualEvals, 1);
  EXPECT_EQ(expectedEvals, 1);
  EXPECT_EQ(tolEvals, 1);
}

TEST(ToleranceAssertions, RelNearEvaluatesEachArgumentOnce) {
  int actualEvals = 0;
  int expectedEvals = 0;
  int tolEvals = 0;
  PROX_EXPECT_REL_NEAR((++actualEvals, 100.0), (++expectedEvals, 101.0),
                       (++tolEvals, 0.05));
  EXPECT_EQ(actualEvals, 1);
  EXPECT_EQ(expectedEvals, 1);
  EXPECT_EQ(tolEvals, 1);
}

int gFailurePathEvals = 0;

TEST(ToleranceAssertions, ArgumentsEvaluatedOnceEvenOnFailure) {
  gFailurePathEvals = 0;
  EXPECT_NONFATAL_FAILURE(
      PROX_EXPECT_ABS_NEAR((++gFailurePathEvals, 1.0), 2.0, 0.1), "exceeds");
  EXPECT_EQ(gFailurePathEvals, 1);
}

// -- comparison semantics ----------------------------------------------------

TEST(ToleranceAssertions, AbsNearPassesInsideAndAtTolerance) {
  PROX_EXPECT_ABS_NEAR(1.0, 1.0, 0.0);   // exact equality, zero tolerance
  PROX_EXPECT_ABS_NEAR(1.0, 1.1, 0.1001);
  PROX_EXPECT_ABS_NEAR(-3.0, -3.05, 0.06);
}

TEST(ToleranceAssertions, AbsNearFailsOutsideTolerance) {
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_ABS_NEAR(1.0, 2.0, 0.5), "exceeds");
}

TEST(ToleranceAssertions, RelNearScalesByExpected) {
  PROX_EXPECT_REL_NEAR(1.0e9, 1.02e9, 0.05);   // 2% off, 5% budget
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_REL_NEAR(1.0e9, 1.2e9, 0.05),
                          "exceeds");
  // Tiny absolute differences pass when the expected value is large...
  PROX_EXPECT_REL_NEAR(1.0e9 + 1.0, 1.0e9, 1e-6);
  // ...but the same absolute difference fails against a small expected value.
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_REL_NEAR(1.0 + 1.0, 1.0, 1e-6),
                          "exceeds");
}

TEST(ToleranceAssertions, RelNearZeroExpectedActsLikeAbsolute) {
  // The 1e-300 scale guard: expected == 0 does not demand bit equality but
  // still rejects any humanly-visible difference.
  PROX_EXPECT_REL_NEAR(0.0, 0.0, 1e-12);
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_REL_NEAR(1e-15, 0.0, 1e-12), "exceeds");
}

TEST(ToleranceAssertions, NonFiniteValuesAlwaysFail) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_ABS_NEAR(nan, 1.0, 1e9), "exceeds");
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_ABS_NEAR(1.0, nan, 1e9), "exceeds");
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_ABS_NEAR(inf, 1.0, 1e9), "exceeds");
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_REL_NEAR(inf, inf, 1e9), "exceeds");
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_REL_NEAR(nan, nan, 1e9), "exceeds");
}

TEST(ToleranceAssertions, AssertVariantIsFatal) {
  EXPECT_FATAL_FAILURE(PROX_ASSERT_ABS_NEAR(1.0, 2.0, 0.1), "exceeds");
  EXPECT_FATAL_FAILURE(PROX_ASSERT_REL_NEAR(1.0, 2.0, 0.1), "exceeds");
}

TEST(ToleranceAssertions, FailureMessageNamesTheExpressions) {
  const double measured = 3.0;
  EXPECT_NONFATAL_FAILURE(PROX_EXPECT_ABS_NEAR(measured, 4.0, 0.1),
                          "measured");
}

// -- envThreads --------------------------------------------------------------

TEST(EnvThreads, ParsesPositiveAndRejectsJunk) {
  // Serialize around the environment mutation; gtest runs tests in one
  // thread per binary so this is belt-and-braces documentation.
  const char* saved = std::getenv("PROX_THREADS");

  ::setenv("PROX_THREADS", "8", 1);
  EXPECT_EQ(testutil::envThreads(1), 8);
  ::setenv("PROX_THREADS", "0", 1);
  EXPECT_EQ(testutil::envThreads(3), 3);
  ::setenv("PROX_THREADS", "-4", 1);
  EXPECT_EQ(testutil::envThreads(3), 3);
  ::setenv("PROX_THREADS", "junk", 1);
  EXPECT_EQ(testutil::envThreads(2), 2);
  ::unsetenv("PROX_THREADS");
  EXPECT_EQ(testutil::envThreads(5), 5);

  if (saved != nullptr) {
    ::setenv("PROX_THREADS", saved, 1);
  } else {
    ::unsetenv("PROX_THREADS");
  }
}

}  // namespace
