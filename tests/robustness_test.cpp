// Cross-module robustness tests: solver options, analysis edge cases,
// measurement corner cases, and API misuse that must fail loudly.

#include <gtest/gtest.h>

#include <cmath>

#include "cells/fixture.hpp"
#include "model/glitch.hpp"
#include "spice/dcsweep.hpp"
#include "spice/netlist.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"
#include "test_util.hpp"
#include "waveform/measure.hpp"

namespace {

using namespace prox;
using namespace prox::spice;
using wave::Edge;

TEST(Newton, IterationBudgetRespected) {
  // A CMOS inverter at mid-rail from a cold start with a tiny budget: the
  // solver must report non-convergence rather than loop.
  Circuit ckt;
  const auto nets = cells::buildCell(ckt, testutil::invSpec(), "x0");
  ckt.add<VoltageSource>("vin", nets.inputs[0], kGround, 2.5);
  ckt.finalize();
  linalg::Vector x(static_cast<std::size_t>(ckt.unknownCount()), 0.0);
  NewtonOptions opt;
  opt.maxIterations = 1;
  const auto st = solveNewton(ckt, x, StampContext{}, opt);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.iterations, 1);
}

TEST(Newton, DampingLimitsPerIterationMove) {
  // With a 0.1 V damping limit, the first iteration from zero cannot move
  // any node by more than 0.1 V.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("v", a, kGround, 5.0);
  ckt.add<Resistor>("r", a, kGround, 1e3);
  ckt.finalize();
  linalg::Vector x(static_cast<std::size_t>(ckt.unknownCount()), 0.0);
  NewtonOptions opt;
  opt.maxIterations = 1;
  opt.maxVoltageStep = 0.1;
  solveNewton(ckt, x, StampContext{}, opt);
  EXPECT_LE(std::fabs(x[0]), 0.1 + 1e-12);
}

TEST(Op, TimeParameterSelectsPwlValue) {
  // The same circuit solved at two different times sees different source
  // values (used by the transient's t=0 initial condition).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  wave::Waveform w;
  w.append(0.0, 1.0);
  w.append(1e-9, 3.0);
  ckt.add<VoltageSource>("v", a, kGround, w);
  ckt.add<Resistor>("r", a, kGround, 1e3);
  OpOptions opt;
  opt.time = 0.0;
  const auto x0 = operatingPoint(ckt, opt);
  opt.time = 1e-9;
  const auto x1 = operatingPoint(ckt, opt);
  ASSERT_TRUE(x0 && x1);
  EXPECT_NEAR(ckt.nodeVoltage(*x0, a), 1.0, 1e-6);
  EXPECT_NEAR(ckt.nodeVoltage(*x1, a), 3.0, 1e-6);
}

TEST(VoltageSource, RetargetBetweenDcAndPwl) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& v = ckt.add<VoltageSource>("v", a, kGround, 2.0);
  EXPECT_DOUBLE_EQ(v.valueAt(5.0), 2.0);
  wave::Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 4.0);
  v.setWaveform(w);
  EXPECT_DOUBLE_EQ(v.valueAt(0.5), 2.0);
  v.setDc(1.0);
  EXPECT_DOUBLE_EQ(v.valueAt(0.5), 1.0);
  EXPECT_THROW(v.setWaveform(wave::Waveform{}), std::invalid_argument);
}

TEST(DcSweep, StepLargerThanRangeYieldsSinglePoint) {
  Circuit ckt;
  const auto nets = cells::buildCell(ckt, testutil::invSpec(), "x0");
  auto& vin = ckt.add<VoltageSource>("vin", nets.inputs[0], kGround, 0.0);
  const auto sweep = dcSweep(ckt, vin, 0.0, 1.0, 5.0);
  EXPECT_EQ(sweep.sweepValues.size(), 1u);
  EXPECT_DOUBLE_EQ(sweep.sweepValues[0], 0.0);
}

TEST(Tran, ResultNodeLookupByNameAndErrors) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("v", a, kGround, 1.0);
  ckt.add<Resistor>("r", a, kGround, 1e3);
  TranOptions opt;
  opt.tstop = 1e-10;
  const auto res = transient(ckt, opt);
  EXPECT_NEAR(res.node("a").value(1e-10), 1.0, 1e-6);
  EXPECT_THROW(res.node("nonexistent"), std::invalid_argument);
}

TEST(GateSim, ReferenceIndexSelectsMeasurementAnchor) {
  // Same stimulus, two reference choices: delays differ by the separation.
  model::GateSimulator sim(testutil::nand2Gate());
  const double sep = 80e-12;
  std::vector<model::InputEvent> evs{{0, Edge::Falling, 0.0, 300e-12},
                                     {1, Edge::Falling, sep, 300e-12}};
  const auto r0 = sim.simulate(evs, 0);
  const auto r1 = sim.simulate(evs, 1);
  ASSERT_TRUE(r0.delay && r1.delay);
  EXPECT_NEAR(*r0.delay - *r1.delay, sep, 2e-12);
  EXPECT_THROW(sim.simulate(evs, 5), std::invalid_argument);
  EXPECT_THROW(sim.simulate({}, 0), std::invalid_argument);
}

TEST(GateSim, NegativeEventTimesHandledBySelfShifting) {
  // Events far in negative time: the simulator shifts internally and maps
  // results back, so the answer matches the same events at positive times.
  model::GateSimulator sim(testutil::nand2Gate());
  const auto early = sim.simulate({{0, Edge::Rising, -5e-9, 200e-12}}, 0);
  const auto late = sim.simulate({{0, Edge::Rising, 2e-9, 200e-12}}, 0);
  ASSERT_TRUE(early.delay && late.delay);
  EXPECT_NEAR(*early.delay, *late.delay, 2e-12);
}

TEST(Measure, ZeroSwingOutputYieldsNoTransition) {
  const wave::Thresholds th{1.0, 4.0};
  const auto flat = wave::constant(2.0);
  EXPECT_FALSE(wave::transitionTime(flat, Edge::Rising, th).has_value());
  EXPECT_FALSE(wave::outputRefTime(flat, Edge::Falling, th).has_value());
}

TEST(Fixture, NorDefaultsToGroundedInputs) {
  cells::CellFixture fix(testutil::norSpec(2));
  // Non-controlling for a NOR is 0: output rests high.
  const auto out = fix.runOutput(1e-9);
  EXPECT_GT(out.minValue(), 4.9);
}

TEST(Characterize, SingleTauGridStillWorks) {
  // A degenerate 1-point tau grid: interpolation collapses to a constant.
  model::GateSimulator sim(testutil::nand2Gate());
  const auto m = model::SingleInputModel::characterize(sim, 0, Edge::Rising,
                                                       {300e-12});
  EXPECT_DOUBLE_EQ(m.delay(100e-12), m.delay(900e-12));
  EXPECT_GT(m.delay(300e-12), 0.0);
}

TEST(Characterize, EmptyTauGridThrows) {
  model::GateSimulator sim(testutil::nand2Gate());
  EXPECT_THROW(model::SingleInputModel::characterize(sim, 0, Edge::Rising, {}),
               std::invalid_argument);
}

TEST(Circuit, BreakpointsSortedAndDeduplicated) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  wave::Waveform w1;
  w1.append(0.0, 0.0);
  w1.append(2e-9, 1.0);
  wave::Waveform w2;
  w2.append(0.0, 0.0);
  w2.append(1e-9, 1.0);
  w2.append(2e-9, 1.0);  // duplicate breakpoint with w1
  ckt.add<VoltageSource>("v1", a, kGround, w1);
  ckt.add<VoltageSource>("v2", b, kGround, w2);
  const auto bps = ckt.breakpoints();
  ASSERT_EQ(bps.size(), 3u);  // 0, 1n, 2n -- deduplicated
  EXPECT_TRUE(std::is_sorted(bps.begin(), bps.end()));
}

TEST(Resistor, SetResistanceRevalidates) {
  Circuit ckt;
  auto& r = ckt.add<Resistor>("r", ckt.node("a"), kGround, 1e3);
  r.setResistance(2e3);
  EXPECT_DOUBLE_EQ(r.resistance(), 2e3);
  EXPECT_THROW(r.setResistance(0.0), std::invalid_argument);
}

TEST(Matrix, ResizeZeroesContent) {
  linalg::Matrix m(2, 2);
  m(0, 0) = 7.0;
  m.resize(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(GlitchModel, WorksOnSubmicronTechnology) {
  // Section 6 machinery on the alpha-power process.
  cells::CellSpec spec = testutil::nandSpec(2);
  spec.tech = cells::Technology::submicron3v();
  spec.wn = 3e-6;
  spec.wp = 4e-6;
  spec.loadCap = 60e-15;
  model::Gate g = model::makeGate(spec, 0.02);
  model::GateSimulator sim(g);
  std::vector<double> seps;
  for (double s = -500e-12; s <= 700.1e-12; s += 100e-12) seps.push_back(s);
  const auto gm = model::GlitchModel::characterize(sim, 0, 400e-12, 1,
                                                   100e-12, seps);
  const auto sMin = gm.minimumValidSeparation(g.thresholds.vil);
  ASSERT_TRUE(sMin.has_value());
  EXPECT_GT(gm.extremeVoltage(*sMin - 200e-12), g.thresholds.vil);
  EXPECT_LT(gm.extremeVoltage(*sMin + 200e-12), g.thresholds.vil);
}

TEST(Sta, ClassicSemanticsMatchMinMaxPropagation) {
  // Classic mode = standard STA: min(t + Delta) for parallel-conduction
  // directions, max(t + Delta) for series-completion directions.
  const auto& cell = testutil::nand2Model();
  const auto calc = cell.calculator();

  std::vector<model::InputEvent> falling{{0, Edge::Falling, 0.0, 300e-12},
                                         {1, Edge::Falling, 50e-12, 300e-12}};
  const auto rf = calc.computeClassic(falling);
  const double c0 = model::predictedCrossing(falling[0], *cell.singles);
  const double c1 = model::predictedCrossing(falling[1], *cell.singles);
  EXPECT_NEAR(rf.outputRefTime, std::min(c0, c1), 1e-15);

  std::vector<model::InputEvent> rising{{0, Edge::Rising, 0.0, 300e-12},
                                        {1, Edge::Rising, 50e-12, 300e-12}};
  const auto rr = calc.computeClassic(rising);
  const double d0 = model::predictedCrossing(rising[0], *cell.singles);
  const double d1 = model::predictedCrossing(rising[1], *cell.singles);
  EXPECT_NEAR(rr.outputRefTime, std::max(d0, d1), 1e-15);
}

}  // namespace
