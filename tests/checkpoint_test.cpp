// Crash-safe characterization tests: the checkpoint/resume machinery must
// reproduce a byte-identical .prox artifact no matter where a run died or
// how many threads the resume uses.  The crash itself is real -- a child
// process is SIGKILLed mid-sweep via the task-keyed ProcessCrash fault --
// so the journal's torn-tail tolerance and the atomic artifact writer are
// exercised exactly as an operator's `kill -9` would.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "characterize/checkpoint.hpp"
#include "characterize/serialize.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"
#include "support/journal.hpp"
#include "test_util.hpp"

namespace {

namespace fs = std::filesystem;
using namespace prox;
using characterize::CheckpointSession;
using characterize::configFingerprint;
using support::DiagnosticError;
using support::StatusCode;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("prox_checkpoint_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
  /// Directory entry count: a crashed atomic write must not leave temp files.
  std::size_t entryCount() const {
    std::size_t n = 0;
    for (auto it = fs::directory_iterator(path);
         it != fs::directory_iterator(); ++it) {
      ++n;
    }
    return n;
  }
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// The .prox text for @p gate -- the byte-identity currency of these tests.
std::string modelText(const characterize::CharacterizedGate& gate) {
  std::ostringstream os;
  characterize::saveGateModel(gate, os);
  return os.str();
}

/// The uninterrupted-run reference, characterized serially exactly once.
const std::string& referenceText() {
  static const std::string text = [] {
    auto cfg = testutil::fastConfig();
    cfg.threads = 1;
    return modelText(characterize::characterizeGate(testutil::nandSpec(2),
                                                    cfg));
  }();
  return text;
}

// -- fingerprint -------------------------------------------------------------

TEST(ConfigFingerprint, IgnoresExecutionOnlyFields) {
  const auto spec = testutil::nandSpec(2);
  auto a = testutil::fastConfig();
  auto b = testutil::fastConfig();
  a.threads = 1;
  b.threads = 8;
  support::CancelToken token;
  b.cancel = &token;
  EXPECT_EQ(configFingerprint(spec, a), configFingerprint(spec, b));
}

TEST(ConfigFingerprint, TracksEveryResultAffectingInput) {
  const auto spec = testutil::nandSpec(2);
  const auto base = testutil::fastConfig();
  const std::string fp = configFingerprint(spec, base);

  auto widerGrid = base;
  widerGrid.tauGrid.push_back(3e-9);
  EXPECT_NE(configFingerprint(spec, widerGrid), fp);

  auto otherCell = spec;
  otherCell.fanin = 3;
  EXPECT_NE(configFingerprint(otherCell, base), fp);

  auto otherLoad = spec;
  otherLoad.loadCap *= 2.0;
  EXPECT_NE(configFingerprint(otherLoad, base), fp);
}

// -- replay ------------------------------------------------------------------

TEST(CheckpointResume, FullReplayReproducesTheArtifactWithoutRecompute) {
  TempDir dir;
  const auto spec = testutil::nandSpec(2);
  auto cfg = testutil::fastConfig();
  cfg.threads = 1;
  const std::string fp = configFingerprint(spec, cfg);

  std::string firstText;
  {
    CheckpointSession fresh(dir.file("run.ckpt"), fp, /*resume=*/false);
    cfg.checkpoint = &fresh;
    firstText = modelText(characterize::characterizeGate(spec, cfg));
    fresh.flush();
  }
  EXPECT_EQ(firstText, referenceText());  // journaling must not perturb

  CheckpointSession again(dir.file("run.ckpt"), fp, /*resume=*/true);
  EXPECT_TRUE(again.resumed());
  EXPECT_GT(again.loadedRecords(), 0u);
  cfg.checkpoint = &again;
  const std::string secondText =
      modelText(characterize::characterizeGate(spec, cfg));
  EXPECT_EQ(secondText, referenceText());
  // Every journaled point was served from the replay map.
  EXPECT_EQ(again.replayCount(), again.loadedRecords());
}

TEST(CheckpointResume, ForeignJournalIsRejected) {
  TempDir dir;
  const auto spec = testutil::nandSpec(2);
  auto cfg = testutil::fastConfig();
  {
    CheckpointSession fresh(dir.file("run.ckpt"),
                            configFingerprint(spec, cfg), /*resume=*/false);
    fresh.record("single", 0, {1, 2, 3});
    fresh.flush();
  }
  auto otherCfg = cfg;
  otherCfg.tauGrid.push_back(9e-9);
  try {
    CheckpointSession resumed(dir.file("run.ckpt"),
                              configFingerprint(spec, otherCfg),
                              /*resume=*/true);
    FAIL() << "expected DiagnosticError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::ParseError);
  }
}

// -- cancellation ------------------------------------------------------------

TEST(CheckpointResume, CancelledRunLeavesValidResumableJournal) {
  TempDir dir;
  const auto spec = testutil::nandSpec(2);
  auto cfg = testutil::fastConfig();
  cfg.threads = 1;
  const std::string fp = configFingerprint(spec, cfg);

  {
    support::CancelToken token;
    token.setTimeout(0.0);  // the --timeout watchdog, already expired
    support::CancelScope mainScope(&token);
    CheckpointSession session(dir.file("run.ckpt"), fp, /*resume=*/false);
    cfg.checkpoint = &session;
    cfg.cancel = &token;
    try {
      characterize::characterizeGate(spec, cfg);
      FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
      EXPECT_EQ(e.code(), StatusCode::DeadlineExceeded);
    }
    session.flush();  // what the tools do on the unwind path
  }

  // The journal is partial but valid: loadable, right identity.
  const auto contents = support::Journal::load(dir.file("run.ckpt"));
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->fingerprint, fp);

  // And a resume (no deadline this time) completes to the reference bytes.
  CheckpointSession resumed(dir.file("run.ckpt"), fp, /*resume=*/true);
  cfg.checkpoint = &resumed;
  cfg.cancel = nullptr;
  EXPECT_EQ(modelText(characterize::characterizeGate(spec, cfg)),
            referenceText());
}

// -- bounded journal loading -------------------------------------------------

/// A journal line is payload + space + 8-hex CRC-32 of the payload.
std::string journalLine(const std::string& payload) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", support::crc32(payload));
  return payload + ' ' + crc + '\n';
}

TEST(JournalBounds, HugeRecordCountIsDroppedBeforeAllocation) {
  // A CRC-valid record whose length field declares 2^32-1 words: the count
  // exceeds what could ever fit on a capped line, so it is rejected by
  // arithmetic as a torn tail -- never handed to vector::resize.
  std::istringstream is(
      journalLine("proxjournal 1 deadbeef") +
      journalLine("p dual 0000000000000000 00000000ffffffff 0123"));
  const auto contents = support::Journal::loadStream(is, "<test>");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->fingerprint, "deadbeef");
  EXPECT_TRUE(contents->truncatedTail);
  EXPECT_TRUE(contents->records.empty());
}

TEST(JournalBounds, OverlongLineIsDroppedAsTornTail) {
  // Past the 1 MiB line cap the rest of the stream is damage by definition;
  // the loader must keep everything before it and drop the rest unbuffered.
  std::string text = journalLine("proxjournal 1 cafe") +
                     journalLine("p dual 0000000000000001 0000000000000001 "
                                 "00000000000000ff");
  text += std::string((1u << 20) + 64, 'x');  // no newline, no CRC
  std::istringstream is(text);
  const auto contents = support::Journal::loadStream(is, "<test>");
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].words.size(), 1u);
  EXPECT_EQ(contents->records[0].words[0], 0xffu);
  EXPECT_TRUE(contents->truncatedTail);
}

TEST(JournalBounds, RecordBudgetIsEnforcedAtLoad) {
  std::string text = journalLine("proxjournal 1 feed");
  for (int i = 0; i < 4; ++i) {
    char payload[80];
    std::snprintf(payload, sizeof(payload),
                  "p dual %016x 0000000000000000", i);
    text += journalLine(payload);
  }
  support::ResourceBudget budget;
  budget.maxRecords = 2;
  support::BudgetTracker tracker(budget);
  support::BudgetScope scope(&tracker);
  std::istringstream is(text);
  try {
    support::Journal::loadStream(is, "<test>");
    FAIL() << "expected DiagnosticError(ResourceExhausted)";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.code(), StatusCode::ResourceExhausted);
  }
}

// -- kill -9 mid-sweep -------------------------------------------------------

#if PROX_ENABLE_FAULT_INJECTION

/// Forks a child that characterizes into @p journalPath with a ProcessCrash
/// armed at parallel task @p crashTask; asserts the child died by SIGKILL.
void runCrashingChild(const std::string& journalPath, long long crashTask,
                      int threads) {
  const auto spec = testutil::nandSpec(2);
  auto cfg = testutil::fastConfig();
  cfg.threads = threads;
  const std::string fp = configFingerprint(spec, cfg);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: no gtest assertions, no exit() (would flush parent-inherited
    // state); _exit on any path the crash fault fails to reach.
    try {
      CheckpointSession session(journalPath, fp, /*resume=*/false);
      cfg.checkpoint = &session;
      support::FaultPlan::arm({.site = "par.task",
                               .kind = support::FaultKind::ProcessCrash,
                               .taskIndex = crashTask});
      characterize::characterizeGate(spec, cfg);
    } catch (...) {
    }
    ::_exit(42);  // reaching here means the crash never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally with status "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

// The --stats / --trace artifact contract under `kill -9`: the tools write
// both files through writeFileAtomic *after* the flow finishes, so a run
// killed mid-sweep must leave any previous artifacts byte-intact, no torn
// replacements, and no stray temp files -- absent-or-complete, never partial.
// This is the same child-process SIGKILL as the resume test above, with the
// tool epilogue (stats dump, trace export) spelled out after the crash point.
TEST(CheckpointResume, KilledRunLeavesStatsAndTraceArtifactsWholeOrAbsent) {
  TempDir dir;
  const std::string statsPath = dir.file("run.stats.json");
  const std::string tracePath = dir.file("run.trace.json");
  const std::string prevStats = "{\"schema_version\": 2, \"previous\": true}\n";
  const std::string prevTrace = "{\"traceEvents\": []}\n";
  support::writeFileAtomic(statsPath,
                           [&](std::ostream& os) { os << prevStats; });
  support::writeFileAtomic(tracePath,
                           [&](std::ostream& os) { os << prevTrace; });

  const auto spec = testutil::nandSpec(2);
  auto cfg = testutil::fastConfig();
  cfg.threads = 1;
  const std::string fp = configFingerprint(spec, cfg);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: the characterize_cell flow with --stats/--trace/--checkpoint,
    // crashed mid-sweep.  No gtest assertions, _exit on any survival path.
    try {
      prox::obs::trace::TraceSession session;
      CheckpointSession ckpt(dir.file("run.ckpt"), fp, /*resume=*/false);
      cfg.checkpoint = &ckpt;
      support::FaultPlan::arm({.site = "par.task",
                               .kind = support::FaultKind::ProcessCrash,
                               .taskIndex = 25});
      characterize::characterizeGate(spec, cfg);
      // Tool epilogue -- never reached; the crash fires first.
      support::writeFileAtomic(statsPath,
                               [](std::ostream& os) { obs::writeJson(os); });
      support::writeFileAtomic(tracePath, [&](std::ostream& os) {
        session.exportJson(os);
      });
    } catch (...) {
    }
    ::_exit(42);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The previous artifacts are byte-identical, not truncated or replaced.
  EXPECT_EQ(slurp(statsPath), prevStats);
  EXPECT_EQ(slurp(tracePath), prevTrace);
  // Exactly stats + trace + journal: no orphaned atomic-writer temp files.
  EXPECT_EQ(dir.entryCount(), 3u);

  // And the journal the crash left behind still resumes to the reference.
  CheckpointSession resumed(dir.file("run.ckpt"), fp, /*resume=*/true);
  EXPECT_GT(resumed.loadedRecords(), 0u);
  cfg.checkpoint = &resumed;
  EXPECT_EQ(modelText(characterize::characterizeGate(spec, cfg)),
            referenceText());
}

TEST(CheckpointResume, KilledRunResumesToByteIdenticalArtifact) {
  TempDir dir;
  const auto spec = testutil::nandSpec(2);

  // Two independent crashed runs (forked before any pool threads exist in
  // this process), resumed at different thread counts.
  runCrashingChild(dir.file("serial.ckpt"), /*crashTask=*/25, /*threads=*/1);
  runCrashingChild(dir.file("parallel.ckpt"), /*crashTask=*/40, /*threads=*/1);

  // The reference is characterized here, after the forks.
  const std::string& ref = referenceText();

  {
    auto cfg = testutil::fastConfig();
    cfg.threads = 1;
    CheckpointSession resumed(dir.file("serial.ckpt"),
                              configFingerprint(spec, cfg), /*resume=*/true);
    EXPECT_GT(resumed.loadedRecords(), 0u);  // the crash landed mid-sweep
    cfg.checkpoint = &resumed;
    EXPECT_EQ(modelText(characterize::characterizeGate(spec, cfg)), ref);
  }
  {
    auto cfg = testutil::fastConfig();
    cfg.threads = testutil::envThreads(8);
    CheckpointSession resumed(dir.file("parallel.ckpt"),
                              configFingerprint(spec, cfg), /*resume=*/true);
    EXPECT_GT(resumed.loadedRecords(), 0u);
    cfg.checkpoint = &resumed;
    EXPECT_EQ(modelText(characterize::characterizeGate(spec, cfg)), ref);
  }
}

#endif  // PROX_ENABLE_FAULT_INJECTION

}  // namespace
