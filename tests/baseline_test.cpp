// Collapsed-inverter baseline tests (references [8]/[13] reproduction).

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/collapse.hpp"
#include "test_util.hpp"

namespace {

using namespace prox;
using model::InputEvent;
using wave::Edge;

TEST(Collapse, ValidatesInput) {
  baseline::CollapsedInverterModel m(testutil::nand2Gate());
  EXPECT_THROW(m.compute({}), std::invalid_argument);
  EXPECT_THROW(m.compute({{0, Edge::Rising, 0.0, 1e-10}}, 5),
               std::invalid_argument);
  std::vector<InputEvent> mixed{{0, Edge::Rising, 0.0, 1e-10},
                                {1, Edge::Falling, 0.0, 1e-10}};
  EXPECT_THROW(m.compute(mixed), std::invalid_argument);
}

TEST(Collapse, ProducesCommittedOutput) {
  baseline::CollapsedInverterModel m(testutil::nand2Gate());
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 300e-12},
                              {1, Edge::Rising, 50e-12, 300e-12}};
  const auto r = m.compute(evs);
  ASSERT_TRUE(r.outputRefTime.has_value());
  ASSERT_TRUE(r.delay.has_value());
  ASSERT_TRUE(r.transitionTime.has_value());
  EXPECT_GT(*r.delay, 0.0);
}

TEST(Collapse, EquivalentWaveformIsPointwiseMin) {
  // For a NAND the equivalent input tracks the later (smaller) of two rising
  // ramps at every time point.
  baseline::CollapsedInverterModel m(testutil::nand2Gate());
  std::vector<InputEvent> evs{{0, Edge::Rising, 0.0, 200e-12},
                              {1, Edge::Rising, 150e-12, 200e-12}};
  const auto r = m.compute(evs);
  const auto& th = testutil::nand2Gate().thresholds;
  const double vdd = testutil::nand2Gate().spec.tech.vdd;
  const auto wa = model::makeInputWave(evs[0], vdd, th);
  const auto wb = model::makeInputWave(evs[1], vdd, th);
  for (double t : {-100e-12, 0.0, 100e-12, 250e-12, 400e-12}) {
    EXPECT_NEAR(r.equivalentInput.value(t),
                std::min(wa.value(t), wb.value(t)), 1e-9);
  }
}

TEST(Collapse, SingleEventStillWorks) {
  baseline::CollapsedInverterModel m(testutil::nand2Gate());
  const auto r = m.compute({{0, Edge::Rising, 0.0, 300e-12}});
  ASSERT_TRUE(r.delay.has_value());
  EXPECT_GT(*r.delay, 0.0);
}

TEST(Collapse, BaselineMissesStackAsymmetry) {
  // The collapse cannot distinguish which pin switches: pin 0 and pin 1
  // events with identical timing give identical answers, unlike the real
  // gate.  This is exactly the weakness Section 1 calls out.
  baseline::CollapsedInverterModel m(testutil::nand3Gate());
  const auto r0 = m.compute({{0, Edge::Rising, 0.0, 300e-12}});
  const auto r2 = m.compute({{2, Edge::Rising, 0.0, 300e-12}});
  ASSERT_TRUE(r0.delay && r2.delay);
  EXPECT_NEAR(*r0.delay, *r2.delay, 1e-15);

  model::GateSimulator sim(testutil::nand3Gate());
  const auto s0 = sim.simulateSingle({0, Edge::Rising, 0.0, 300e-12});
  const auto s2 = sim.simulateSingle({2, Edge::Rising, 0.0, 300e-12});
  ASSERT_TRUE(s0.delay && s2.delay);
  EXPECT_GT(std::fabs(*s0.delay - *s2.delay), 1e-12);
}

TEST(Collapse, NorVariantUsesPointwiseMax) {
  model::Gate nor = model::makeGate(testutil::norSpec(2), 0.02);
  baseline::CollapsedInverterModel m(nor);
  std::vector<InputEvent> evs{{0, Edge::Falling, 0.0, 200e-12},
                              {1, Edge::Falling, 150e-12, 200e-12}};
  const auto r = m.compute(evs);
  const auto wa = model::makeInputWave(evs[0], nor.spec.tech.vdd, nor.thresholds);
  const auto wb = model::makeInputWave(evs[1], nor.spec.tech.vdd, nor.thresholds);
  for (double t : {0.0, 100e-12, 300e-12}) {
    EXPECT_NEAR(r.equivalentInput.value(t),
                std::max(wa.value(t), wb.value(t)), 1e-9);
  }
  ASSERT_TRUE(r.delay.has_value());
  EXPECT_GT(*r.delay, 0.0);
}

TEST(Collapse, ReusableAcrossCalls) {
  baseline::CollapsedInverterModel m(testutil::nand2Gate());
  const auto r1 = m.compute({{0, Edge::Rising, 0.0, 300e-12}});
  const auto r2 = m.compute({{0, Edge::Rising, 0.0, 300e-12}});
  ASSERT_TRUE(r1.delay && r2.delay);
  EXPECT_NEAR(*r1.delay, *r2.delay, 1e-15);
}

}  // namespace
