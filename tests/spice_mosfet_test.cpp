// MOSFET level-1 model tests: region equations, body effect, drain-source
// symmetry, PMOS mirroring, and circuit-level sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/resistor.hpp"
#include "spice/vsource.hpp"

namespace {

using namespace prox::spice;

MosfetParams nmosParams() {
  MosfetParams p;
  p.nmos = true;
  p.w = 4e-6;
  p.l = 0.8e-6;
  p.kp = 60e-6;
  p.vt0 = 0.8;
  p.lambda = 0.0;  // clean square-law for the analytic checks
  p.gamma = 0.0;
  return p;
}

TEST(Level1, CutoffBelowThreshold) {
  const auto op = evalLevel1(nmosParams(), 0.5, 2.0, 0.0);
  EXPECT_EQ(op.region, MosfetOperatingPoint::Region::Cutoff);
  EXPECT_EQ(op.id, 0.0);
  EXPECT_EQ(op.gm, 0.0);
}

TEST(Level1, SaturationSquareLaw) {
  const MosfetParams p = nmosParams();
  const double vgs = 2.0;
  const auto op = evalLevel1(p, vgs, 3.0, 0.0);
  EXPECT_EQ(op.region, MosfetOperatingPoint::Region::Saturation);
  const double beta = p.kp * p.w / p.l;
  EXPECT_NEAR(op.id, 0.5 * beta * (vgs - p.vt0) * (vgs - p.vt0), 1e-12);
  EXPECT_NEAR(op.gm, beta * (vgs - p.vt0), 1e-12);
  EXPECT_NEAR(op.gds, 0.0, 1e-15);  // lambda = 0
}

TEST(Level1, TriodeEquation) {
  const MosfetParams p = nmosParams();
  const double vgs = 3.0;
  const double vds = 0.5;  // well below vov = 2.2
  const auto op = evalLevel1(p, vgs, vds, 0.0);
  EXPECT_EQ(op.region, MosfetOperatingPoint::Region::Triode);
  const double beta = p.kp * p.w / p.l;
  EXPECT_NEAR(op.id, beta * ((vgs - p.vt0) * vds - 0.5 * vds * vds), 1e-12);
  EXPECT_NEAR(op.gds, beta * (vgs - p.vt0 - vds), 1e-12);
}

TEST(Level1, ContinuousAcrossSaturationBoundary) {
  const MosfetParams p = nmosParams();
  const double vgs = 2.0;
  const double vov = vgs - p.vt0;
  const auto below = evalLevel1(p, vgs, vov - 1e-9, 0.0);
  const auto above = evalLevel1(p, vgs, vov + 1e-9, 0.0);
  EXPECT_NEAR(below.id, above.id, 1e-9);
  EXPECT_NEAR(below.gm, above.gm, 1e-6);
}

TEST(Level1, LambdaIncreasesSaturationCurrent) {
  MosfetParams p = nmosParams();
  p.lambda = 0.05;
  const auto lo = evalLevel1(p, 2.0, 1.5, 0.0);
  const auto hi = evalLevel1(p, 2.0, 4.0, 0.0);
  EXPECT_GT(hi.id, lo.id);
  EXPECT_GT(hi.gds, 0.0);
}

TEST(Level1, BodyEffectRaisesThreshold) {
  MosfetParams p = nmosParams();
  p.gamma = 0.4;
  p.phi = 0.65;
  // Same vgs: with the source above the body (vbs < 0) the current drops.
  const auto noBias = evalLevel1(p, 1.5, 3.0, 0.0);
  const auto revBias = evalLevel1(p, 1.5, 3.0, -1.5);
  EXPECT_GT(noBias.id, revBias.id);
  EXPECT_GT(revBias.gmb, 0.0);
}

TEST(Level1, GmbZeroWithoutGamma) {
  const auto op = evalLevel1(nmosParams(), 2.0, 3.0, -1.0);
  EXPECT_EQ(op.gmb, 0.0);
}

TEST(Mosfet, DrainCurrentSignAndSymmetry) {
  // NMOS with terminals reversed must carry the mirrored current.
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("vd", d, kGround, 2.0);
  ckt.add<VoltageSource>("vg", g, kGround, 2.0);
  auto& m1 = ckt.add<Mosfet>("m1", d, g, kGround, kGround, nmosParams());
  // Same device wired with drain and source exchanged.
  auto& m2 = ckt.add<Mosfet>("m2", kGround, g, d, kGround, nmosParams());
  ckt.finalize();
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  const double i1 = m1.drainCurrent(ckt, *x);
  const double i2 = m2.drainCurrent(ckt, *x);
  EXPECT_GT(i1, 1e-6);
  EXPECT_NEAR(i1, -i2, 1e-9);
}

TEST(Mosfet, NmosCommonSourceAmplifierOp) {
  // Vdd = 5, Rd = 10k, vgs = 1.5: id = 0.5*beta*0.49; vout = 5 - id*Rd.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId out = ckt.node("out");
  const NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("vdd", vdd, kGround, 5.0);
  ckt.add<VoltageSource>("vg", g, kGround, 1.5);
  ckt.add<Resistor>("rd", vdd, out, 10e3);
  ckt.add<Mosfet>("m1", out, g, kGround, kGround, nmosParams());
  const auto x = operatingPoint(ckt);
  ASSERT_TRUE(x.has_value());
  const double beta = 60e-6 * 4e-6 / 0.8e-6;
  const double id = 0.5 * beta * 0.7 * 0.7;
  EXPECT_NEAR(ckt.nodeVoltage(*x, out), 5.0 - id * 10e3, 0.05);
}

TEST(Mosfet, PmosSourceFollowerPullsUp) {
  // PMOS with gate at 0 and source at vdd conducts; with gate at vdd it cuts
  // off and the output leaks to ground through a resistor.
  MosfetParams pp;
  pp.nmos = false;
  pp.w = 8e-6;
  pp.l = 0.8e-6;
  pp.kp = 25e-6;
  pp.vt0 = -0.9;
  pp.lambda = 0.0;
  pp.gamma = 0.0;

  for (double vgate : {0.0, 5.0}) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId out = ckt.node("out");
    const NodeId g = ckt.node("g");
    ckt.add<VoltageSource>("vdd", vdd, kGround, 5.0);
    ckt.add<VoltageSource>("vg", g, kGround, vgate);
    ckt.add<Mosfet>("m1", out, g, vdd, vdd, pp);
    ckt.add<Resistor>("rl", out, kGround, 100e3);
    const auto x = operatingPoint(ckt);
    ASSERT_TRUE(x.has_value());
    const double vout = ckt.nodeVoltage(*x, out);
    if (vgate == 0.0) {
      EXPECT_GT(vout, 4.5);  // strongly pulled up
    } else {
      EXPECT_LT(vout, 0.5);  // cut off, resistor wins
    }
  }
}

TEST(Mosfet, StrengthKMatchesPaperDefinition) {
  Circuit ckt;
  auto& m = ckt.add<Mosfet>("m", ckt.node("d"), ckt.node("g"), kGround,
                            kGround, nmosParams());
  // K = 0.5 * mu Cox * W/L = 0.5 * 60u * 5 = 150u.
  EXPECT_NEAR(m.strengthK(), 150e-6, 1e-12);
}

// Parameterized sweep: current is monotone non-decreasing in vgs for every
// vds, a property the Newton solver relies on for convergence.
class MosfetMonotoneSweep : public ::testing::TestWithParam<double> {};

TEST_P(MosfetMonotoneSweep, CurrentMonotoneInVgs) {
  const double vds = GetParam();
  MosfetParams p = nmosParams();
  p.lambda = 0.02;
  p.gamma = 0.4;
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 5.0; vgs += 0.1) {
    const auto op = evalLevel1(p, vgs, vds, -0.5);
    EXPECT_GE(op.id, prev - 1e-15) << "vgs=" << vgs << " vds=" << vds;
    EXPECT_GE(op.gm, 0.0);
    EXPECT_GE(op.gds, 0.0);
    prev = op.id;
  }
}

INSTANTIATE_TEST_SUITE_P(VdsGrid, MosfetMonotoneSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0, 2.0, 3.5, 5.0));

// ---------------------------------------------------------------------------
// Alpha-power-law model (Sakurai-Newton, the paper's reference [14]).

MosfetParams alphaParams() {
  MosfetParams p;
  p.nmos = true;
  p.equation = MosEquation::AlphaPower;
  p.w = 2e-6;
  p.l = 0.35e-6;
  p.vt0 = 0.55;
  p.lambda = 0.0;
  p.gamma = 0.0;
  p.alpha = 1.3;
  p.pc = 55e-6;
  p.pv = 0.9;
  return p;
}

TEST(AlphaPower, CutoffBelowThreshold) {
  const auto op = evalAlphaPower(alphaParams(), 0.4, 1.0, 0.0);
  EXPECT_EQ(op.region, MosfetOperatingPoint::Region::Cutoff);
  EXPECT_EQ(op.id, 0.0);
}

TEST(AlphaPower, SaturationFollowsPowerLaw) {
  const MosfetParams p = alphaParams();
  const double vgs = 2.0;
  const double vov = vgs - p.vt0;
  const auto op = evalAlphaPower(p, vgs, 3.0, 0.0);
  EXPECT_EQ(op.region, MosfetOperatingPoint::Region::Saturation);
  EXPECT_NEAR(op.id, (p.w / p.l) * p.pc * std::pow(vov, p.alpha), 1e-12);
  // gm = alpha * id / vov.
  EXPECT_NEAR(op.gm, p.alpha * op.id / vov, 1e-9);
}

TEST(AlphaPower, ContinuousAcrossVd0) {
  const MosfetParams p = alphaParams();
  const double vgs = 2.0;
  const double vd0 = p.pv * std::pow(vgs - p.vt0, 0.5 * p.alpha);
  const auto below = evalAlphaPower(p, vgs, vd0 - 1e-9, 0.0);
  const auto above = evalAlphaPower(p, vgs, vd0 + 1e-9, 0.0);
  EXPECT_NEAR(below.id, above.id, 1e-9);
  EXPECT_NEAR(below.gm, above.gm, 1e-6);
  EXPECT_NEAR(below.gds, above.gds, 1e-5);
}

TEST(AlphaPower, TriodeReachesZeroAtOrigin) {
  const auto op = evalAlphaPower(alphaParams(), 2.0, 0.0, 0.0);
  EXPECT_EQ(op.region, MosfetOperatingPoint::Region::Triode);
  EXPECT_NEAR(op.id, 0.0, 1e-15);
  EXPECT_GT(op.gds, 0.0);  // finite channel conductance at the origin
}

TEST(AlphaPower, VelocitySaturationWeakensGateDependence) {
  // Compared across vgs, an alpha = 1.3 device's saturation current grows
  // slower than square law: I(2*vov)/I(vov) = 2^alpha < 4.
  const MosfetParams p = alphaParams();
  const double i1 = evalAlphaPower(p, p.vt0 + 1.0, 3.0, 0.0).id;
  const double i2 = evalAlphaPower(p, p.vt0 + 2.0, 3.0, 0.0).id;
  EXPECT_NEAR(i2 / i1, std::pow(2.0, p.alpha), 1e-9);
}

TEST(AlphaPower, BodyEffectRaisesThreshold) {
  MosfetParams p = alphaParams();
  p.gamma = 0.3;
  p.phi = 0.6;
  const auto noBias = evalAlphaPower(p, 1.2, 2.0, 0.0);
  const auto revBias = evalAlphaPower(p, 1.2, 2.0, -1.0);
  EXPECT_GT(noBias.id, revBias.id);
  EXPECT_GT(revBias.gmb, 0.0);
}

TEST(AlphaPower, DispatchThroughEvalMosfet) {
  const MosfetParams p = alphaParams();
  const auto a = evalMosfet(p, 2.0, 1.5, 0.0);
  const auto b = evalAlphaPower(p, 2.0, 1.5, 0.0);
  EXPECT_EQ(a.id, b.id);
  MosfetParams q = nmosParams();
  EXPECT_EQ(evalMosfet(q, 2.0, 1.5, 0.0).id, evalLevel1(q, 2.0, 1.5, 0.0).id);
}

class AlphaMonotoneSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaMonotoneSweep, CurrentMonotoneInVgs) {
  const double vds = GetParam();
  MosfetParams p = alphaParams();
  p.lambda = 0.04;
  p.gamma = 0.3;
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 3.3; vgs += 0.05) {
    const auto op = evalAlphaPower(p, vgs, vds, -0.3);
    EXPECT_GE(op.id, prev - 1e-15) << "vgs=" << vgs;
    EXPECT_GE(op.gm, 0.0);
    EXPECT_GE(op.gds, -1e-15);
    prev = op.id;
  }
}

INSTANTIATE_TEST_SUITE_P(VdsGrid, AlphaMonotoneSweep,
                         ::testing::Values(0.05, 0.3, 0.8, 1.5, 2.5, 3.3));

}  // namespace
