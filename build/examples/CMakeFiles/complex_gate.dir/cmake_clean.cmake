file(REMOVE_RECURSE
  "CMakeFiles/complex_gate.dir/complex_gate.cpp.o"
  "CMakeFiles/complex_gate.dir/complex_gate.cpp.o.d"
  "complex_gate"
  "complex_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
