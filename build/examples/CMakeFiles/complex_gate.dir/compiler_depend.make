# Empty compiler generated dependencies file for complex_gate.
# This may be replaced when dependencies are built.
