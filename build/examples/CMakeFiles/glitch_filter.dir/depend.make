# Empty dependencies file for glitch_filter.
# This may be replaced when dependencies are built.
