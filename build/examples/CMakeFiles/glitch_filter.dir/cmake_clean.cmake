file(REMOVE_RECURSE
  "CMakeFiles/glitch_filter.dir/glitch_filter.cpp.o"
  "CMakeFiles/glitch_filter.dir/glitch_filter.cpp.o.d"
  "glitch_filter"
  "glitch_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glitch_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
