file(REMOVE_RECURSE
  "CMakeFiles/characterize_cell.dir/characterize_cell.cpp.o"
  "CMakeFiles/characterize_cell.dir/characterize_cell.cpp.o.d"
  "characterize_cell"
  "characterize_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
