# Empty compiler generated dependencies file for characterize_cell.
# This may be replaced when dependencies are built.
