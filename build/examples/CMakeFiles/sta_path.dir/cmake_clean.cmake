file(REMOVE_RECURSE
  "CMakeFiles/sta_path.dir/sta_path.cpp.o"
  "CMakeFiles/sta_path.dir/sta_path.cpp.o.d"
  "sta_path"
  "sta_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sta_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
