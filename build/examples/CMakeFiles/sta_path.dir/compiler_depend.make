# Empty compiler generated dependencies file for sta_path.
# This may be replaced when dependencies are built.
