# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/waveform_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/combine_test[1]_include.cmake")
include("/root/repo/build/tests/spice_device_test[1]_include.cmake")
include("/root/repo/build/tests/spice_mosfet_test[1]_include.cmake")
include("/root/repo/build/tests/spice_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/spice_netlist_test[1]_include.cmake")
include("/root/repo/build/tests/cells_test[1]_include.cmake")
include("/root/repo/build/tests/vtc_test[1]_include.cmake")
include("/root/repo/build/tests/model_single_test[1]_include.cmake")
include("/root/repo/build/tests/model_dual_test[1]_include.cmake")
include("/root/repo/build/tests/model_proximity_test[1]_include.cmake")
include("/root/repo/build/tests/model_glitch_test[1]_include.cmake")
include("/root/repo/build/tests/characterize_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pull_network_test[1]_include.cmake")
include("/root/repo/build/tests/technology_test[1]_include.cmake")
include("/root/repo/build/tests/flat_sim_test[1]_include.cmake")
include("/root/repo/build/tests/complex_model_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
