file(REMOVE_RECURSE
  "CMakeFiles/spice_analysis_test.dir/spice_analysis_test.cpp.o"
  "CMakeFiles/spice_analysis_test.dir/spice_analysis_test.cpp.o.d"
  "spice_analysis_test"
  "spice_analysis_test.pdb"
  "spice_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
