# Empty compiler generated dependencies file for spice_analysis_test.
# This may be replaced when dependencies are built.
