# Empty compiler generated dependencies file for complex_model_test.
# This may be replaced when dependencies are built.
