file(REMOVE_RECURSE
  "CMakeFiles/complex_model_test.dir/complex_model_test.cpp.o"
  "CMakeFiles/complex_model_test.dir/complex_model_test.cpp.o.d"
  "complex_model_test"
  "complex_model_test.pdb"
  "complex_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
