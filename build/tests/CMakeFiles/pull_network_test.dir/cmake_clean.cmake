file(REMOVE_RECURSE
  "CMakeFiles/pull_network_test.dir/pull_network_test.cpp.o"
  "CMakeFiles/pull_network_test.dir/pull_network_test.cpp.o.d"
  "pull_network_test"
  "pull_network_test.pdb"
  "pull_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pull_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
