# Empty compiler generated dependencies file for pull_network_test.
# This may be replaced when dependencies are built.
