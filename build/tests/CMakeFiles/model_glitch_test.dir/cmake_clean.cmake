file(REMOVE_RECURSE
  "CMakeFiles/model_glitch_test.dir/model_glitch_test.cpp.o"
  "CMakeFiles/model_glitch_test.dir/model_glitch_test.cpp.o.d"
  "model_glitch_test"
  "model_glitch_test.pdb"
  "model_glitch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_glitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
