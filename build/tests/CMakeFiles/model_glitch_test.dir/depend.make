# Empty dependencies file for model_glitch_test.
# This may be replaced when dependencies are built.
