# Empty dependencies file for model_proximity_test.
# This may be replaced when dependencies are built.
