file(REMOVE_RECURSE
  "CMakeFiles/model_proximity_test.dir/model_proximity_test.cpp.o"
  "CMakeFiles/model_proximity_test.dir/model_proximity_test.cpp.o.d"
  "model_proximity_test"
  "model_proximity_test.pdb"
  "model_proximity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_proximity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
