file(REMOVE_RECURSE
  "CMakeFiles/model_single_test.dir/model_single_test.cpp.o"
  "CMakeFiles/model_single_test.dir/model_single_test.cpp.o.d"
  "model_single_test"
  "model_single_test.pdb"
  "model_single_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_single_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
