# Empty compiler generated dependencies file for model_single_test.
# This may be replaced when dependencies are built.
