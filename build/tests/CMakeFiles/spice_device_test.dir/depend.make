# Empty dependencies file for spice_device_test.
# This may be replaced when dependencies are built.
