file(REMOVE_RECURSE
  "CMakeFiles/spice_device_test.dir/spice_device_test.cpp.o"
  "CMakeFiles/spice_device_test.dir/spice_device_test.cpp.o.d"
  "spice_device_test"
  "spice_device_test.pdb"
  "spice_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
