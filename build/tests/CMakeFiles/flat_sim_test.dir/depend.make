# Empty dependencies file for flat_sim_test.
# This may be replaced when dependencies are built.
