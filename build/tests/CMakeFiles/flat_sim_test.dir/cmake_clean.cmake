file(REMOVE_RECURSE
  "CMakeFiles/flat_sim_test.dir/flat_sim_test.cpp.o"
  "CMakeFiles/flat_sim_test.dir/flat_sim_test.cpp.o.d"
  "flat_sim_test"
  "flat_sim_test.pdb"
  "flat_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
