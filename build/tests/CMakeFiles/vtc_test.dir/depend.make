# Empty dependencies file for vtc_test.
# This may be replaced when dependencies are built.
