file(REMOVE_RECURSE
  "CMakeFiles/vtc_test.dir/vtc_test.cpp.o"
  "CMakeFiles/vtc_test.dir/vtc_test.cpp.o.d"
  "vtc_test"
  "vtc_test.pdb"
  "vtc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
