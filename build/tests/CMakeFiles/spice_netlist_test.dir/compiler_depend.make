# Empty compiler generated dependencies file for spice_netlist_test.
# This may be replaced when dependencies are built.
