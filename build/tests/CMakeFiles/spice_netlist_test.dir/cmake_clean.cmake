file(REMOVE_RECURSE
  "CMakeFiles/spice_netlist_test.dir/spice_netlist_test.cpp.o"
  "CMakeFiles/spice_netlist_test.dir/spice_netlist_test.cpp.o.d"
  "spice_netlist_test"
  "spice_netlist_test.pdb"
  "spice_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
