# Empty dependencies file for model_dual_test.
# This may be replaced when dependencies are built.
