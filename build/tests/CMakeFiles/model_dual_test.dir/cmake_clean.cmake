file(REMOVE_RECURSE
  "CMakeFiles/model_dual_test.dir/model_dual_test.cpp.o"
  "CMakeFiles/model_dual_test.dir/model_dual_test.cpp.o.d"
  "model_dual_test"
  "model_dual_test.pdb"
  "model_dual_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_dual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
