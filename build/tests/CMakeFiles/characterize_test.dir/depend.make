# Empty dependencies file for characterize_test.
# This may be replaced when dependencies are built.
