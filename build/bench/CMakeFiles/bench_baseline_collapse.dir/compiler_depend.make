# Empty compiler generated dependencies file for bench_baseline_collapse.
# This may be replaced when dependencies are built.
