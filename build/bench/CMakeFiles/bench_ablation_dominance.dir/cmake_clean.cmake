file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dominance.dir/bench_ablation_dominance.cpp.o"
  "CMakeFiles/bench_ablation_dominance.dir/bench_ablation_dominance.cpp.o.d"
  "bench_ablation_dominance"
  "bench_ablation_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
