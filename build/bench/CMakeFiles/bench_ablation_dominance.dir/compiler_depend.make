# Empty compiler generated dependencies file for bench_ablation_dominance.
# This may be replaced when dependencies are built.
