file(REMOVE_RECURSE
  "CMakeFiles/bench_complex_gate.dir/bench_complex_gate.cpp.o"
  "CMakeFiles/bench_complex_gate.dir/bench_complex_gate.cpp.o.d"
  "bench_complex_gate"
  "bench_complex_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complex_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
