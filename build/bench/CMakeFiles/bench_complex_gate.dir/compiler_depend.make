# Empty compiler generated dependencies file for bench_complex_gate.
# This may be replaced when dependencies are built.
