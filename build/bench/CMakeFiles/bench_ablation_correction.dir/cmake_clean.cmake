file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_correction.dir/bench_ablation_correction.cpp.o"
  "CMakeFiles/bench_ablation_correction.dir/bench_ablation_correction.cpp.o.d"
  "bench_ablation_correction"
  "bench_ablation_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
