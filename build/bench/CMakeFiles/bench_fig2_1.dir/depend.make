# Empty dependencies file for bench_fig2_1.
# This may be replaced when dependencies are built.
