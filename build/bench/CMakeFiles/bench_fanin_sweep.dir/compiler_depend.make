# Empty compiler generated dependencies file for bench_fanin_sweep.
# This may be replaced when dependencies are built.
