file(REMOVE_RECURSE
  "CMakeFiles/bench_fanin_sweep.dir/bench_fanin_sweep.cpp.o"
  "CMakeFiles/bench_fanin_sweep.dir/bench_fanin_sweep.cpp.o.d"
  "bench_fanin_sweep"
  "bench_fanin_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanin_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
