# Empty dependencies file for bench_technology.
# This may be replaced when dependencies are built.
