file(REMOVE_RECURSE
  "CMakeFiles/bench_technology.dir/bench_technology.cpp.o"
  "CMakeFiles/bench_technology.dir/bench_technology.cpp.o.d"
  "bench_technology"
  "bench_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
