file(REMOVE_RECURSE
  "CMakeFiles/prox_characterize.dir/characterize/characterize.cpp.o"
  "CMakeFiles/prox_characterize.dir/characterize/characterize.cpp.o.d"
  "CMakeFiles/prox_characterize.dir/characterize/serialize.cpp.o"
  "CMakeFiles/prox_characterize.dir/characterize/serialize.cpp.o.d"
  "libprox_characterize.a"
  "libprox_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
