# Empty compiler generated dependencies file for prox_characterize.
# This may be replaced when dependencies are built.
