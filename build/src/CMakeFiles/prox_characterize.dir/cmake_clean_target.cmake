file(REMOVE_RECURSE
  "libprox_characterize.a"
)
