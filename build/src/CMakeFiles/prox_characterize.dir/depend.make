# Empty dependencies file for prox_characterize.
# This may be replaced when dependencies are built.
