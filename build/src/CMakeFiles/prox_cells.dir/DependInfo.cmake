
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/cell.cpp" "src/CMakeFiles/prox_cells.dir/cells/cell.cpp.o" "gcc" "src/CMakeFiles/prox_cells.dir/cells/cell.cpp.o.d"
  "/root/repo/src/cells/complex_fixture.cpp" "src/CMakeFiles/prox_cells.dir/cells/complex_fixture.cpp.o" "gcc" "src/CMakeFiles/prox_cells.dir/cells/complex_fixture.cpp.o.d"
  "/root/repo/src/cells/fixture.cpp" "src/CMakeFiles/prox_cells.dir/cells/fixture.cpp.o" "gcc" "src/CMakeFiles/prox_cells.dir/cells/fixture.cpp.o.d"
  "/root/repo/src/cells/pull_network.cpp" "src/CMakeFiles/prox_cells.dir/cells/pull_network.cpp.o" "gcc" "src/CMakeFiles/prox_cells.dir/cells/pull_network.cpp.o.d"
  "/root/repo/src/cells/technology.cpp" "src/CMakeFiles/prox_cells.dir/cells/technology.cpp.o" "gcc" "src/CMakeFiles/prox_cells.dir/cells/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prox_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
