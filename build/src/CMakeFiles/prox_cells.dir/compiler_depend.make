# Empty compiler generated dependencies file for prox_cells.
# This may be replaced when dependencies are built.
