file(REMOVE_RECURSE
  "libprox_cells.a"
)
