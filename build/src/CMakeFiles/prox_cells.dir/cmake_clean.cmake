file(REMOVE_RECURSE
  "CMakeFiles/prox_cells.dir/cells/cell.cpp.o"
  "CMakeFiles/prox_cells.dir/cells/cell.cpp.o.d"
  "CMakeFiles/prox_cells.dir/cells/complex_fixture.cpp.o"
  "CMakeFiles/prox_cells.dir/cells/complex_fixture.cpp.o.d"
  "CMakeFiles/prox_cells.dir/cells/fixture.cpp.o"
  "CMakeFiles/prox_cells.dir/cells/fixture.cpp.o.d"
  "CMakeFiles/prox_cells.dir/cells/pull_network.cpp.o"
  "CMakeFiles/prox_cells.dir/cells/pull_network.cpp.o.d"
  "CMakeFiles/prox_cells.dir/cells/technology.cpp.o"
  "CMakeFiles/prox_cells.dir/cells/technology.cpp.o.d"
  "libprox_cells.a"
  "libprox_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
