file(REMOVE_RECURSE
  "CMakeFiles/prox_vtc.dir/vtc/complex.cpp.o"
  "CMakeFiles/prox_vtc.dir/vtc/complex.cpp.o.d"
  "CMakeFiles/prox_vtc.dir/vtc/thresholds.cpp.o"
  "CMakeFiles/prox_vtc.dir/vtc/thresholds.cpp.o.d"
  "CMakeFiles/prox_vtc.dir/vtc/vtc.cpp.o"
  "CMakeFiles/prox_vtc.dir/vtc/vtc.cpp.o.d"
  "libprox_vtc.a"
  "libprox_vtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_vtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
