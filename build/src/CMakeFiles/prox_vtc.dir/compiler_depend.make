# Empty compiler generated dependencies file for prox_vtc.
# This may be replaced when dependencies are built.
