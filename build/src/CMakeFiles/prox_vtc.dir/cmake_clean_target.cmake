file(REMOVE_RECURSE
  "libprox_vtc.a"
)
