file(REMOVE_RECURSE
  "CMakeFiles/prox_waveform.dir/waveform/combine.cpp.o"
  "CMakeFiles/prox_waveform.dir/waveform/combine.cpp.o.d"
  "CMakeFiles/prox_waveform.dir/waveform/measure.cpp.o"
  "CMakeFiles/prox_waveform.dir/waveform/measure.cpp.o.d"
  "CMakeFiles/prox_waveform.dir/waveform/pwl.cpp.o"
  "CMakeFiles/prox_waveform.dir/waveform/pwl.cpp.o.d"
  "CMakeFiles/prox_waveform.dir/waveform/waveform.cpp.o"
  "CMakeFiles/prox_waveform.dir/waveform/waveform.cpp.o.d"
  "libprox_waveform.a"
  "libprox_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
