
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/waveform/combine.cpp" "src/CMakeFiles/prox_waveform.dir/waveform/combine.cpp.o" "gcc" "src/CMakeFiles/prox_waveform.dir/waveform/combine.cpp.o.d"
  "/root/repo/src/waveform/measure.cpp" "src/CMakeFiles/prox_waveform.dir/waveform/measure.cpp.o" "gcc" "src/CMakeFiles/prox_waveform.dir/waveform/measure.cpp.o.d"
  "/root/repo/src/waveform/pwl.cpp" "src/CMakeFiles/prox_waveform.dir/waveform/pwl.cpp.o" "gcc" "src/CMakeFiles/prox_waveform.dir/waveform/pwl.cpp.o.d"
  "/root/repo/src/waveform/waveform.cpp" "src/CMakeFiles/prox_waveform.dir/waveform/waveform.cpp.o" "gcc" "src/CMakeFiles/prox_waveform.dir/waveform/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
