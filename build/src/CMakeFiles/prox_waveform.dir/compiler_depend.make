# Empty compiler generated dependencies file for prox_waveform.
# This may be replaced when dependencies are built.
