file(REMOVE_RECURSE
  "libprox_waveform.a"
)
