file(REMOVE_RECURSE
  "CMakeFiles/prox_model.dir/model/dominance.cpp.o"
  "CMakeFiles/prox_model.dir/model/dominance.cpp.o.d"
  "CMakeFiles/prox_model.dir/model/dual_input.cpp.o"
  "CMakeFiles/prox_model.dir/model/dual_input.cpp.o.d"
  "CMakeFiles/prox_model.dir/model/gate_sim.cpp.o"
  "CMakeFiles/prox_model.dir/model/gate_sim.cpp.o.d"
  "CMakeFiles/prox_model.dir/model/glitch.cpp.o"
  "CMakeFiles/prox_model.dir/model/glitch.cpp.o.d"
  "CMakeFiles/prox_model.dir/model/proximity.cpp.o"
  "CMakeFiles/prox_model.dir/model/proximity.cpp.o.d"
  "CMakeFiles/prox_model.dir/model/single_input.cpp.o"
  "CMakeFiles/prox_model.dir/model/single_input.cpp.o.d"
  "CMakeFiles/prox_model.dir/model/stimulus.cpp.o"
  "CMakeFiles/prox_model.dir/model/stimulus.cpp.o.d"
  "libprox_model.a"
  "libprox_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
