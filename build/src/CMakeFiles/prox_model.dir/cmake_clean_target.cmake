file(REMOVE_RECURSE
  "libprox_model.a"
)
