# Empty compiler generated dependencies file for prox_model.
# This may be replaced when dependencies are built.
