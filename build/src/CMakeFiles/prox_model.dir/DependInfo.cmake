
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/dominance.cpp" "src/CMakeFiles/prox_model.dir/model/dominance.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/dominance.cpp.o.d"
  "/root/repo/src/model/dual_input.cpp" "src/CMakeFiles/prox_model.dir/model/dual_input.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/dual_input.cpp.o.d"
  "/root/repo/src/model/gate_sim.cpp" "src/CMakeFiles/prox_model.dir/model/gate_sim.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/gate_sim.cpp.o.d"
  "/root/repo/src/model/glitch.cpp" "src/CMakeFiles/prox_model.dir/model/glitch.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/glitch.cpp.o.d"
  "/root/repo/src/model/proximity.cpp" "src/CMakeFiles/prox_model.dir/model/proximity.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/proximity.cpp.o.d"
  "/root/repo/src/model/single_input.cpp" "src/CMakeFiles/prox_model.dir/model/single_input.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/single_input.cpp.o.d"
  "/root/repo/src/model/stimulus.cpp" "src/CMakeFiles/prox_model.dir/model/stimulus.cpp.o" "gcc" "src/CMakeFiles/prox_model.dir/model/stimulus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prox_vtc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
