# Empty compiler generated dependencies file for prox_sta.
# This may be replaced when dependencies are built.
