file(REMOVE_RECURSE
  "libprox_sta.a"
)
