file(REMOVE_RECURSE
  "CMakeFiles/prox_sta.dir/sta/delay_calc.cpp.o"
  "CMakeFiles/prox_sta.dir/sta/delay_calc.cpp.o.d"
  "CMakeFiles/prox_sta.dir/sta/flat_sim.cpp.o"
  "CMakeFiles/prox_sta.dir/sta/flat_sim.cpp.o.d"
  "CMakeFiles/prox_sta.dir/sta/netlist.cpp.o"
  "CMakeFiles/prox_sta.dir/sta/netlist.cpp.o.d"
  "CMakeFiles/prox_sta.dir/sta/timing_graph.cpp.o"
  "CMakeFiles/prox_sta.dir/sta/timing_graph.cpp.o.d"
  "libprox_sta.a"
  "libprox_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
