file(REMOVE_RECURSE
  "libprox_spice.a"
)
