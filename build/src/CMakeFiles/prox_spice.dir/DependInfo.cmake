
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/capacitor.cpp" "src/CMakeFiles/prox_spice.dir/spice/capacitor.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/capacitor.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/CMakeFiles/prox_spice.dir/spice/circuit.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/circuit.cpp.o.d"
  "/root/repo/src/spice/dcsweep.cpp" "src/CMakeFiles/prox_spice.dir/spice/dcsweep.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/dcsweep.cpp.o.d"
  "/root/repo/src/spice/isource.cpp" "src/CMakeFiles/prox_spice.dir/spice/isource.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/isource.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/CMakeFiles/prox_spice.dir/spice/mosfet.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/mosfet.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/CMakeFiles/prox_spice.dir/spice/netlist.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/newton.cpp" "src/CMakeFiles/prox_spice.dir/spice/newton.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/newton.cpp.o.d"
  "/root/repo/src/spice/op.cpp" "src/CMakeFiles/prox_spice.dir/spice/op.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/op.cpp.o.d"
  "/root/repo/src/spice/resistor.cpp" "src/CMakeFiles/prox_spice.dir/spice/resistor.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/resistor.cpp.o.d"
  "/root/repo/src/spice/tran.cpp" "src/CMakeFiles/prox_spice.dir/spice/tran.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/tran.cpp.o.d"
  "/root/repo/src/spice/vsource.cpp" "src/CMakeFiles/prox_spice.dir/spice/vsource.cpp.o" "gcc" "src/CMakeFiles/prox_spice.dir/spice/vsource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prox_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
