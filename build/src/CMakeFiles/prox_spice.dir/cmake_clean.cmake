file(REMOVE_RECURSE
  "CMakeFiles/prox_spice.dir/spice/capacitor.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/capacitor.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/circuit.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/circuit.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/dcsweep.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/dcsweep.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/isource.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/isource.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/mosfet.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/mosfet.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/netlist.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/netlist.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/newton.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/newton.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/op.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/op.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/resistor.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/resistor.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/tran.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/tran.cpp.o.d"
  "CMakeFiles/prox_spice.dir/spice/vsource.cpp.o"
  "CMakeFiles/prox_spice.dir/spice/vsource.cpp.o.d"
  "libprox_spice.a"
  "libprox_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
