# Empty dependencies file for prox_spice.
# This may be replaced when dependencies are built.
