file(REMOVE_RECURSE
  "CMakeFiles/prox_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/prox_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/prox_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/prox_linalg.dir/linalg/matrix.cpp.o.d"
  "libprox_linalg.a"
  "libprox_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
