# Empty dependencies file for prox_linalg.
# This may be replaced when dependencies are built.
