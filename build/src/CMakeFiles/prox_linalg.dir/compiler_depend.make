# Empty compiler generated dependencies file for prox_linalg.
# This may be replaced when dependencies are built.
