file(REMOVE_RECURSE
  "libprox_linalg.a"
)
