
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/collapse.cpp" "src/CMakeFiles/prox_baseline.dir/baseline/collapse.cpp.o" "gcc" "src/CMakeFiles/prox_baseline.dir/baseline/collapse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prox_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_vtc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prox_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
