# Empty dependencies file for prox_baseline.
# This may be replaced when dependencies are built.
