file(REMOVE_RECURSE
  "libprox_baseline.a"
)
