file(REMOVE_RECURSE
  "CMakeFiles/prox_baseline.dir/baseline/collapse.cpp.o"
  "CMakeFiles/prox_baseline.dir/baseline/collapse.cpp.o.d"
  "libprox_baseline.a"
  "libprox_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prox_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
