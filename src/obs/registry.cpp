#include "obs/registry.hpp"

namespace prox::obs {

namespace detail {
constinit std::atomic<bool> gEnabled{true};
}  // namespace detail

// --- per-thread cache lifetime --------------------------------------------

namespace detail {
thread_local constinit ThreadCache* tlsCache = nullptr;
}  // namespace detail

namespace {
// Trivially-destructible flag: stays readable through the whole thread
// teardown sequence, unlike an object with a destructor.
thread_local bool tlsRetired = false;
}  // namespace

/// Folds the thread's cells into the registry when the thread exits.  Any
/// instrument use after this runs takes the shared fallback path (tlsCache
/// is null and tlsRetired blocks re-adoption).
struct ThreadCacheReaper {
  ~ThreadCacheReaper() {
    detail::ThreadCache* cache = detail::tlsCache;
    detail::tlsCache = nullptr;
    tlsRetired = true;
    if (cache != nullptr) {
      Registry::instance().retireThreadCache(cache);
    }
  }
};

namespace {
thread_local ThreadCacheReaper tlsReaper;
}  // namespace

namespace detail {

ThreadCache* ensureThreadCache() noexcept {
  if (tlsRetired) return nullptr;
  // Touch the reaper so its destructor is registered before the cache is
  // handed out (thread_locals are lazily constructed on first odr-use).
  (void)tlsReaper;
  tlsCache = Registry::instance().adoptThreadCache();
  return tlsCache;
}

}  // namespace detail

// --- Counter / Timer merged views -----------------------------------------

std::uint64_t Counter::value() const noexcept {
  return Registry::instance().mergedCounter(*this);
}

void Counter::reset() noexcept { Registry::instance().resetCounter(*this); }

Timer::Stats Timer::stats() const noexcept {
  return Registry::instance().mergedTimer(*this);
}

void Timer::reset() noexcept { Registry::instance().resetTimer(*this); }

void Timer::recordShared(double seconds) noexcept {
  // Cold path (instrument id beyond the cell cap, or thread teardown);
  // reuse the registry mutex rather than a per-timer lock.
  Registry& reg = Registry::instance();
  std::lock_guard<std::recursive_mutex> lock(reg.mu_);
  retired_.merge(1, seconds, seconds, seconds);
}

// --- Registry --------------------------------------------------------------

// Leaked on purpose: instrumented code may run during static destruction
// (e.g. a cached fixture tearing down a simulator), so the registry must
// outlive every other static.
Registry& Registry::instance() {
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto id = static_cast<std::uint32_t>(counters_.size());
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(id)))
             .first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    auto id = static_cast<std::uint32_t>(timers_.size());
    it = timers_
             .emplace(std::string(name), std::unique_ptr<Timer>(new Timer(id)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto id = static_cast<std::uint32_t>(histograms_.size());
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(id)))
             .first;
  }
  return *it->second;
}

void Registry::setLabel(std::string_view name, std::string_view value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = labels_.find(name);
  if (it == labels_.end()) {
    labels_.emplace(std::string(name), std::string(value));
  } else {
    it->second.assign(value);
  }
}

std::map<std::string, std::string> Registry::labels() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return {labels_.begin(), labels_.end()};
}

void Registry::visit(
    const std::function<void(const std::string&, const Counter&)>& onCounter,
    const std::function<void(const std::string&, const Timer&)>& onTimer,
    const std::function<void(const std::string&, const Histogram&)>&
        onHistogram) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& [name, c] : counters_) onCounter(name, *c);
  for (const auto& [name, t] : timers_) onTimer(name, *t);
  if (onHistogram) {
    for (const auto& [name, h] : histograms_) onHistogram(name, *h);
  }
}

void Registry::resetAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [name, c] : counters_) resetCounter(*c);
  for (auto& [name, t] : timers_) resetTimer(*t);
  for (auto& [name, h] : histograms_) resetHistogram(*h);
}

detail::ThreadCache* Registry::adoptThreadCache() {
  auto cache = std::make_unique<detail::ThreadCache>();
  detail::ThreadCache* raw = cache.get();
  std::lock_guard<std::recursive_mutex> lock(mu_);
  caches_.push_back(std::move(cache));
  return raw;
}

void Registry::retireThreadCache(detail::ThreadCache* cache) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  retireCacheLocked(cache);
  for (auto it = caches_.begin(); it != caches_.end(); ++it) {
    if (it->get() == cache) {
      caches_.erase(it);
      break;
    }
  }
}

/// Adds @p cache's cells into every instrument's retired tally.
void Registry::retireCacheLocked(detail::ThreadCache* cache) {
  for (const auto& [name, c] : counters_) {
    if (c->id_ >= detail::kMaxCounterCells) continue;
    std::uint64_t v =
        cache->counters[c->id_].value.load(std::memory_order_relaxed);
    if (v != 0) c->retired_.fetch_add(v, std::memory_order_relaxed);
  }
  for (const auto& [name, t] : timers_) {
    if (t->id_ >= detail::kMaxTimerCells) continue;
    const detail::TimerCell& cell = cache->timers[t->id_];
    std::uint64_t cnt = cell.count.load(std::memory_order_relaxed);
    if (cnt != 0) {
      t->retired_.merge(cnt, cell.total.load(std::memory_order_relaxed),
                        cell.min.load(std::memory_order_relaxed),
                        cell.max.load(std::memory_order_relaxed));
    }
  }
  for (const auto& [name, h] : histograms_) {
    if (h->id_ >= detail::kMaxHistogramCells) continue;
    const detail::HistogramCell& cell = cache->histograms[h->id_];
    if (cell.count.load(std::memory_order_relaxed) == 0) continue;
    HistogramData d;
    d.count = cell.count.load(std::memory_order_relaxed);
    d.sum = cell.sum.load(std::memory_order_relaxed);
    d.min = cell.min.load(std::memory_order_relaxed);
    d.max = cell.max.load(std::memory_order_relaxed);
    d.buckets.resize(detail::kHistBucketCount);
    for (std::uint32_t i = 0; i < detail::kHistBucketCount; ++i) {
      d.buckets[i] = cell.buckets[i].load(std::memory_order_relaxed);
    }
    h->retired_.merge(d);
  }
}

std::uint64_t Registry::mergedCounter(const Counter& c) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::uint64_t total = c.retired_.load(std::memory_order_relaxed);
  if (c.id_ < detail::kMaxCounterCells) {
    for (const auto& cache : caches_) {
      total += cache->counters[c.id_].value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

Timer::Stats Registry::mergedTimer(const Timer& t) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Timer::Stats s = t.retired_;
  if (t.id_ < detail::kMaxTimerCells) {
    for (const auto& cache : caches_) {
      const detail::TimerCell& cell = cache->timers[t.id_];
      std::uint64_t cnt = cell.count.load(std::memory_order_relaxed);
      if (cnt != 0) {
        s.merge(cnt, cell.total.load(std::memory_order_relaxed),
                cell.min.load(std::memory_order_relaxed),
                cell.max.load(std::memory_order_relaxed));
      }
    }
  }
  return s;
}

HistogramData Registry::mergedHistogram(const Histogram& h) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  HistogramData out = h.retired_;
  if (h.id_ < detail::kMaxHistogramCells) {
    for (const auto& cache : caches_) {
      const detail::HistogramCell& cell = cache->histograms[h.id_];
      if (cell.count.load(std::memory_order_relaxed) == 0) continue;
      if (out.buckets.empty()) out.buckets.assign(detail::kHistBucketCount, 0);
      out.count += cell.count.load(std::memory_order_relaxed);
      out.sum += cell.sum.load(std::memory_order_relaxed);
      const std::uint64_t lo = cell.min.load(std::memory_order_relaxed);
      const std::uint64_t hi = cell.max.load(std::memory_order_relaxed);
      if (lo < out.min) out.min = lo;
      if (hi > out.max) out.max = hi;
      for (std::uint32_t i = 0; i < detail::kHistBucketCount; ++i) {
        out.buckets[i] += cell.buckets[i].load(std::memory_order_relaxed);
      }
    }
  }
  return out;
}

void Registry::resetCounter(Counter& c) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  c.retired_.store(0, std::memory_order_relaxed);
  if (c.id_ < detail::kMaxCounterCells) {
    for (auto& cache : caches_) {
      cache->counters[c.id_].value.store(0, std::memory_order_relaxed);
    }
  }
}

void Registry::resetTimer(Timer& t) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  t.retired_ = Timer::Stats{};
  if (t.id_ < detail::kMaxTimerCells) {
    for (auto& cache : caches_) {
      detail::TimerCell& cell = cache->timers[t.id_];
      cell.count.store(0, std::memory_order_relaxed);
      cell.total.store(0.0, std::memory_order_relaxed);
      cell.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      cell.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
  }
}

void Registry::resetHistogram(Histogram& h) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  h.retired_ = HistogramData{};
  if (h.id_ < detail::kMaxHistogramCells) {
    for (auto& cache : caches_) {
      detail::HistogramCell& cell = cache->histograms[h.id_];
      for (std::uint32_t i = 0; i < detail::kHistBucketCount; ++i) {
        cell.buckets[i].store(0, std::memory_order_relaxed);
      }
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum.store(0, std::memory_order_relaxed);
      cell.min.store(std::numeric_limits<std::uint64_t>::max(),
                     std::memory_order_relaxed);
      cell.max.store(0, std::memory_order_relaxed);
    }
  }
}

// --- free functions ---------------------------------------------------------

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Timer& timer(std::string_view name) {
  return Registry::instance().timer(name);
}

void setLabel(std::string_view name, std::string_view value) {
  Registry::instance().setLabel(name, value);
}

void resetAll() { Registry::instance().resetAll(); }

}  // namespace prox::obs
