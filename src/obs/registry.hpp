#pragma once
// Process-wide observability registry: named monotonic counters and
// histogram-style timers, shared by every library layer.
//
// Design constraints (and how they are met):
//   * Hot-path increments must not perturb sub-microsecond code -> each
//     thread records into its own cache of single-writer atomic cells
//     (plain relaxed load/store, no lock-prefixed RMW, no contention).
//     Readers merge the per-thread cells plus a retired-threads tally under
//     the registry mutex; a thread's cells are folded into the tally when
//     the thread exits.
//   * Near-zero overhead when disabled -> every record path first reads a
//     single process-global relaxed atomic<bool>; a disabled registry costs
//     one predictable branch per site.
//   * Stable references -> instruments are heap-allocated once and never
//     freed, so call sites may cache `Counter&`/`Timer&` in function-local
//     statics.  resetAll() zeroes values but never invalidates references.
//
// Instrumented library code should use the PROX_OBS_* macros below, which
// compile to nothing when the build is configured with -DPROX_ENABLE_STATS=0
// (CMake option PROX_ENABLE_STATS).

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace prox::obs {

namespace detail {
// constinit: guarantees constant initialization, so cross-TU accesses are
// direct loads instead of calls through an initialization-guard wrapper.
extern constinit std::atomic<bool> gEnabled;
}  // namespace detail

/// True when recording is enabled (the default).  A single relaxed load.
inline bool enabled() noexcept {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// Globally enables/disables all counters and timers.  Disabling does not
/// clear accumulated values.
inline void setEnabled(bool on) noexcept {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

namespace detail {

/// Instruments beyond these caps skip the per-thread cache and fall back to
/// shared atomic RMWs (correct, merely slower).  Generous for this codebase:
/// the full test suite plus benches create well under a hundred instruments.
inline constexpr std::uint32_t kMaxCounterCells = 1024;
inline constexpr std::uint32_t kMaxTimerCells = 256;

/// Single-writer accumulation cell: only the owning thread stores, so the
/// increment is a relaxed load + store pair (no lock prefix); readers on
/// other threads see values through relaxed loads.
struct CounterCell {
  std::atomic<std::uint64_t> value{0};

  void add(std::uint64_t n) noexcept {
    value.store(value.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
  }
};

struct TimerCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> total{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};

  void record(double seconds) noexcept {
    count.store(count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    total.store(total.load(std::memory_order_relaxed) + seconds,
                std::memory_order_relaxed);
    if (seconds < min.load(std::memory_order_relaxed)) {
      min.store(seconds, std::memory_order_relaxed);
    }
    if (seconds > max.load(std::memory_order_relaxed)) {
      max.store(seconds, std::memory_order_relaxed);
    }
  }
};

/// Fixed-size per-thread cell block (stable addresses: concurrent readers
/// never race with reallocation).
struct ThreadCache {
  CounterCell counters[kMaxCounterCells];
  TimerCell timers[kMaxTimerCells];
  HistogramCell histograms[kMaxHistogramCells];
};

/// This thread's cache pointer.  Null before first use and again after the
/// thread's cells have been retired (late records from other thread_local
/// destructors then take the shared fallback path).  constinit keeps the
/// access a direct TLS load (no wrapper call) from every TU.
extern thread_local constinit ThreadCache* tlsCache;

/// Slow path: allocates and registers this thread's cache.  Returns null
/// when the thread is past retirement (process/thread teardown).
ThreadCache* ensureThreadCache() noexcept;

inline ThreadCache* currentThreadCache() noexcept {
  ThreadCache* tc = tlsCache;
  return tc != nullptr ? tc : ensureThreadCache();
}

}  // namespace detail

/// Fetches the calling thread's cell block, or null when stats are disabled
/// (or the thread is past teardown).  Hot regions with several instrument
/// updates should fetch this once and use Counter::addTo/Timer::recordTo
/// (see PROX_OBS_BATCH below) instead of paying the enabled-check plus
/// thread-local lookup at every site.
inline detail::ThreadCache* batchCells() noexcept {
  return enabled() ? detail::currentThreadCache() : nullptr;
}

/// Monotonic event counter.  add() is wait-free; value() merges all threads.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    detail::ThreadCache* tc = id_ < detail::kMaxCounterCells
                                  ? detail::currentThreadCache()
                                  : nullptr;
    if (tc != nullptr) {
      tc->counters[id_].add(n);
    } else {
      retired_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Batched add: @p tc is the caller's obs::batchCells() result (which
  /// already performed the enabled check).  Zero increments return
  /// immediately, so "usually zero" tallies cost one predictable branch.
  void addTo(detail::ThreadCache* tc, std::uint64_t n) noexcept {
    if (n == 0) return;
    if (tc != nullptr && id_ < detail::kMaxCounterCells) {
      tc->counters[id_].add(n);
    } else if (enabled()) {
      // Disabled (drop) vs. thread teardown / id beyond cap (shared tally).
      retired_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Merged value across live threads and the retired tally.  Exact once
  /// writer threads have exited (thread exit folds their cells in) or
  /// quiesced; concurrently-recording threads may contribute late.
  std::uint64_t value() const noexcept;

  /// Zeroes the counter in every thread's cache.  Racy against concurrent
  /// add() by design (increments in flight may survive the reset).
  void reset() noexcept;

 private:
  friend class Registry;
  explicit Counter(std::uint32_t id) : id_(id) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::uint32_t id_;
  /// Tally of cells from exited threads, plus the fallback target when the
  /// per-thread cache is unavailable (id beyond cap, thread teardown).
  std::atomic<std::uint64_t> retired_{0};
};

/// Histogram-style accumulator of real-valued samples (wall-clock seconds
/// from ScopedTimer, or any physical quantity such as an applied correction).
/// Tracks count, sum, min and max; mean is derived at report time.
class Timer {
 public:
  void record(double seconds) noexcept {
    if (!enabled()) return;
    detail::ThreadCache* tc = id_ < detail::kMaxTimerCells
                                  ? detail::currentThreadCache()
                                  : nullptr;
    if (tc != nullptr) {
      tc->timers[id_].record(seconds);
    } else {
      recordShared(seconds);
    }
  }

  /// Batched record: @p tc is the caller's obs::batchCells() result.
  void recordTo(detail::ThreadCache* tc, double seconds) noexcept {
    if (tc != nullptr && id_ < detail::kMaxTimerCells) {
      tc->timers[id_].record(seconds);
    } else if (enabled()) {
      recordShared(seconds);
    }
  }

  std::uint64_t count() const noexcept { return stats().count; }
  double totalSeconds() const noexcept { return stats().total; }
  /// +infinity until the first sample.
  double minSeconds() const noexcept { return stats().min; }
  /// -infinity until the first sample.
  double maxSeconds() const noexcept { return stats().max; }

  struct Stats {
    std::uint64_t count = 0;
    double total = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    void merge(std::uint64_t c, double t, double lo, double hi) noexcept {
      count += c;
      total += t;
      if (lo < min) min = lo;
      if (hi > max) max = hi;
    }
  };

  /// Merged stats across live threads and the retired tally (same
  /// exactness caveats as Counter::value()).
  Stats stats() const noexcept;

  /// Zeroes the timer in every thread's cache (racy like Counter::reset).
  void reset() noexcept;

 private:
  friend class Registry;
  explicit Timer(std::uint32_t id) : id_(id) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void recordShared(double seconds) noexcept;

  const std::uint32_t id_;
  /// Merged samples from exited threads + shared fallback, guarded by the
  /// registry mutex (cold path only).
  Stats retired_;
};

/// The process-wide instrument table.  Lookup by name takes a mutex; the
/// returned references are valid for the lifetime of the process.
class Registry {
 public:
  static Registry& instance();

  /// Returns the counter named @p name, creating it on first use.
  Counter& counter(std::string_view name);

  /// Returns the timer named @p name, creating it on first use.
  Timer& timer(std::string_view name);

  /// Returns the histogram named @p name, creating it on first use.
  Histogram& histogram(std::string_view name);

  /// Sets (or replaces) a free-form string label, e.g. which SIMD dispatch
  /// path is live.  Labels describe ambient process facts rather than event
  /// tallies, so resetAll() leaves them in place.
  void setLabel(std::string_view name, std::string_view value);

  /// Snapshot of every label in name order.
  std::map<std::string, std::string> labels() const;

  /// Enumerates every instrument in name order under the registry lock.
  /// Intended for snapshotting (obs::snapshot()), not for hot paths.  The
  /// histogram callback may be empty (older callers predate histograms).
  void visit(
      const std::function<void(const std::string&, const Counter&)>& onCounter,
      const std::function<void(const std::string&, const Timer&)>& onTimer,
      const std::function<void(const std::string&, const Histogram&)>&
          onHistogram = {}) const;

  /// Zeroes every instrument (references stay valid).
  void resetAll();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  friend class Counter;
  friend class Timer;
  friend class Histogram;
  friend detail::ThreadCache* detail::ensureThreadCache() noexcept;
  friend struct ThreadCacheReaper;

  detail::ThreadCache* adoptThreadCache();
  void retireThreadCache(detail::ThreadCache* cache);
  void retireCacheLocked(detail::ThreadCache* cache);

  std::uint64_t mergedCounter(const Counter& c) const;
  Timer::Stats mergedTimer(const Timer& t) const;
  HistogramData mergedHistogram(const Histogram& h) const;
  void resetCounter(Counter& c);
  void resetTimer(Timer& t);
  void resetHistogram(Histogram& h);

  // Recursive: visit() holds the lock while its callbacks read merged
  // values, which lock again.
  mutable std::recursive_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> labels_;
  std::vector<std::unique_ptr<detail::ThreadCache>> caches_;
};

/// Convenience shorthands for Registry::instance().counter()/timer()/
/// histogram()/setLabel().
Counter& counter(std::string_view name);
Timer& timer(std::string_view name);
Histogram& histogram(std::string_view name);
void setLabel(std::string_view name, std::string_view value);

/// Zeroes every instrument in the process registry.
void resetAll();

}  // namespace prox::obs

// ---------------------------------------------------------------------------
// Instrumentation macros.  PROX_ENABLE_STATS is defined (0 or 1) by the
// build; when undefined (e.g. external consumers of the headers) stats
// default to on.  Each macro caches the instrument reference in a
// function-local static, so steady-state cost is one relaxed load (the
// enable flag) plus a thread-local cell update.
#ifndef PROX_ENABLE_STATS
#define PROX_ENABLE_STATS 1
#endif

#if PROX_ENABLE_STATS
/// Adds @p n to the counter named @p name (a string literal).
#define PROX_OBS_COUNT(name, n)                                      \
  do {                                                               \
    static ::prox::obs::Counter& proxObsCounter_ =                   \
        ::prox::obs::counter(name);                                  \
    proxObsCounter_.add(static_cast<std::uint64_t>(n));              \
  } while (0)
/// Records @p seconds into the timer named @p name (a string literal).
#define PROX_OBS_RECORD(name, seconds)                               \
  do {                                                               \
    static ::prox::obs::Timer& proxObsTimer_ =                       \
        ::prox::obs::timer(name);                                    \
    proxObsTimer_.record(seconds);                                   \
  } while (0)
/// Declares @p var as this thread's cell block for batched updates.  Use in
/// hot regions with several instrument sites: the enabled check and
/// thread-local lookup are paid once, and each PROX_OBS_*_IN site below is a
/// bounds-checked indexed store.
#define PROX_OBS_BATCH(var) \
  ::prox::obs::detail::ThreadCache* const var = ::prox::obs::batchCells()
/// Adds @p n to the counter named @p name through the PROX_OBS_BATCH var.
#define PROX_OBS_COUNT_IN(cells, name, n)                            \
  do {                                                               \
    static ::prox::obs::Counter& proxObsCounter_ =                   \
        ::prox::obs::counter(name);                                  \
    proxObsCounter_.addTo(cells, static_cast<std::uint64_t>(n));     \
  } while (0)
/// Records @p seconds into the timer @p name through the PROX_OBS_BATCH var.
#define PROX_OBS_RECORD_IN(cells, name, seconds)                     \
  do {                                                               \
    static ::prox::obs::Timer& proxObsTimer_ =                       \
        ::prox::obs::timer(name);                                    \
    proxObsTimer_.recordTo(cells, seconds);                          \
  } while (0)
/// Records @p value (uint64-convertible) into the histogram named @p name.
#define PROX_OBS_HIST(name, value)                                   \
  do {                                                               \
    static ::prox::obs::Histogram& proxObsHist_ =                    \
        ::prox::obs::histogram(name);                                \
    proxObsHist_.record(static_cast<std::uint64_t>(value));          \
  } while (0)
/// Records @p value into the histogram @p name through the PROX_OBS_BATCH
/// var.
#define PROX_OBS_HIST_IN(cells, name, value)                         \
  do {                                                               \
    static ::prox::obs::Histogram& proxObsHist_ =                    \
        ::prox::obs::histogram(name);                                \
    proxObsHist_.recordTo(cells, static_cast<std::uint64_t>(value)); \
  } while (0)
#else
#define PROX_OBS_COUNT(name, n) \
  do {                          \
  } while (0)
#define PROX_OBS_RECORD(name, seconds) \
  do {                                 \
  } while (0)
#define PROX_OBS_BATCH(var) \
  do {                      \
  } while (0)
#define PROX_OBS_COUNT_IN(cells, name, n) \
  do {                                    \
  } while (0)
#define PROX_OBS_RECORD_IN(cells, name, seconds) \
  do {                                           \
  } while (0)
#define PROX_OBS_HIST(name, value) \
  do {                             \
  } while (0)
#define PROX_OBS_HIST_IN(cells, name, value) \
  do {                                       \
  } while (0)
#endif
