#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"

namespace prox::obs::trace {

namespace detail {
constinit std::atomic<bool> gTracing{false};

std::uint64_t nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace detail

namespace {

/// One ring slot.  All fields are atomics (relaxed) so the exporter may read
/// while the owning thread writes; the per-slot seqlock detects mid-overwrite
/// reads, which are skipped rather than torn.
struct Slot {
  std::atomic<std::uint32_t> seq{0};  // odd while being written
  std::atomic<char> phase{0};         // 0 = never written
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> argName{nullptr};
  std::atomic<std::uint64_t> start{0};
  std::atomic<std::uint64_t> dur{0};
  std::atomic<std::uint64_t> id{0};
  std::atomic<std::uint64_t> argValue{0};
};

/// A decoded event, safe to hold after the slot may be overwritten.
struct PlainEvent {
  std::uint64_t start = 0;
  std::uint64_t dur = 0;
  std::uint64_t id = 0;
  std::uint64_t argValue = 0;
  const char* name = nullptr;
  const char* argName = nullptr;
  std::uint32_t tid = 0;
  char phase = 0;
};

/// Per-thread ring buffer: only the owning thread writes slots and head.
class Buffer {
 public:
  Buffer(std::size_t capacity, std::uint32_t tid)
      : slots_(new Slot[capacity]), cap_(capacity), tid_(tid) {}

  void emit(char phase, const char* name, std::uint64_t start,
            std::uint64_t dur, std::uint64_t id, const char* argName,
            std::uint64_t argValue) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h % cap_];
    const std::uint32_t seq0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.phase.store(phase, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.argName.store(argName, std::memory_order_relaxed);
    s.start.store(start, std::memory_order_relaxed);
    s.dur.store(dur, std::memory_order_relaxed);
    s.id.store(id, std::memory_order_relaxed);
    s.argValue.store(argValue, std::memory_order_relaxed);
    s.seq.store(seq0 + 2, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  void drain(std::vector<PlainEvent>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, cap_);
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots_[i % cap_];
      const std::uint32_t seq0 = s.seq.load(std::memory_order_acquire);
      if ((seq0 & 1u) != 0) continue;  // mid-write
      PlainEvent e;
      e.phase = s.phase.load(std::memory_order_relaxed);
      e.name = s.name.load(std::memory_order_relaxed);
      e.argName = s.argName.load(std::memory_order_relaxed);
      e.start = s.start.load(std::memory_order_relaxed);
      e.dur = s.dur.load(std::memory_order_relaxed);
      e.id = s.id.load(std::memory_order_relaxed);
      e.argValue = s.argValue.load(std::memory_order_relaxed);
      e.tid = tid_;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq0) continue;  // torn
      if (e.phase == 0 || e.name == nullptr) continue;
      out.push_back(e);
    }
  }

  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return h > cap_ ? h - cap_ : 0;
  }

  void clear() noexcept {
    // Only called while no session is active (writers are disarmed).
    head_.store(0, std::memory_order_relaxed);
  }

  std::uint32_t tid() const noexcept { return tid_; }
  void setThreadName(const char* interned) noexcept {
    threadName_.store(interned, std::memory_order_relaxed);
  }
  const char* threadName() const noexcept {
    return threadName_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<Slot[]> slots_;
  std::size_t cap_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<const char*> threadName_{nullptr};
  std::uint32_t tid_;
};

thread_local constinit Buffer* tlsBuffer = nullptr;

/// Thread name announced before this thread ever emitted (i.e. before it has
/// a buffer).  Kept out of the buffer so threads that are never traced do
/// not allocate a ring just to carry a label.
std::string& pendingThreadName() {
  static thread_local std::string name;
  return name;
}

/// Process-wide buffer table.  Leaked like the registry: traced code may run
/// during static destruction.  Buffers are never removed (an exiting thread's
/// events stay exportable); new threads get fresh buffers at the capacity of
/// the session that was active when they first emitted.
class Collector {
 public:
  static Collector& instance() {
    static Collector* c = new Collector();
    return *c;
  }

  Buffer* adoptBuffer() {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>(
        capacity_, static_cast<std::uint32_t>(buffers_.size() + 1)));
    return buffers_.back().get();
  }

  const char* intern(std::string s) {
    std::lock_guard<std::mutex> lock(mu_);
    interned_.push_back(std::move(s));
    return interned_.back().c_str();
  }

  void beginSession(std::size_t capacity, std::uint64_t t0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessionActive_) {
      throw std::runtime_error(
          "obs::trace: a TraceSession is already active");
    }
    sessionActive_ = true;
    capacity_ = capacity;
    t0_ = t0;
    for (auto& b : buffers_) b->clear();
  }

  void endSession() noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    sessionActive_ = false;
  }

  std::uint64_t t0() const noexcept { return t0_; }

  std::uint64_t droppedTotal() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& b : buffers_) total += b->dropped();
    return total;
  }

  void collect(std::vector<PlainEvent>& events,
               std::vector<std::pair<std::uint32_t, const char*>>& names)
      const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      b->drain(events);
      if (b->threadName() != nullptr) {
        names.emplace_back(b->tid(), b->threadName());
      }
    }
  }

 private:
  Collector() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::deque<std::string> interned_;  // stable addresses
  std::size_t capacity_ = 8192;
  std::uint64_t t0_ = 0;
  bool sessionActive_ = false;
};

Buffer* currentBuffer() {
  Buffer* b = tlsBuffer;
  if (b == nullptr) {
    Collector& c = Collector::instance();
    b = c.adoptBuffer();
    tlsBuffer = b;
    std::string& pending = pendingThreadName();
    if (!pending.empty()) {
      b->setThreadName(c.intern(pending));
      pending.clear();
    }
  }
  return b;
}

void jsonEscape(const char* s, std::ostream& os) {
  for (; *s != '\0'; ++s) {
    const char ch = *s;
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void writeMicros(std::uint64_t ns, std::ostream& os) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

namespace detail {

void emit(char phase, const char* name, std::uint64_t startNs,
          std::uint64_t durNs, std::uint64_t id, const char* argName,
          std::uint64_t argValue) noexcept {
  currentBuffer()->emit(phase, name, startNs, durNs, id, argName, argValue);
}

}  // namespace detail

void completeEvent(const char* name, std::uint64_t startNs, std::uint64_t durNs,
                   const char* argName, std::uint64_t argValue) noexcept {
  if (!active()) return;
  detail::emit('X', name, startNs, durNs, 0, argName, argValue);
}

void asyncBegin(const char* name, std::uint64_t id) noexcept {
  if (!active()) return;
  detail::emit('b', name, detail::nowNs(), 0, id, nullptr, 0);
}

void asyncEnd(const char* name, std::uint64_t id) noexcept {
  if (!active()) return;
  detail::emit('e', name, detail::nowNs(), 0, id, nullptr, 0);
}

void counterSample(const char* name, std::uint64_t value) noexcept {
  if (!active()) return;
  detail::emit('C', name, detail::nowNs(), 0, 0, "value", value);
}

void instant(const char* name) noexcept {
  if (!active()) return;
  detail::emit('i', name, detail::nowNs(), 0, 0, nullptr, 0);
}

void attachCounterSnapshot(const char* traceName,
                           std::string_view counterName) noexcept {
  if (!active()) return;
  counterSample(traceName, obs::counter(counterName).value());
}

void setCurrentThreadName(std::string name) noexcept {
  // Sticky (survives session boundaries): pool workers name themselves once
  // at startup, possibly before any session starts.  Don't allocate a ring
  // for an untraced thread just to hold its label -- park the name until the
  // thread first emits.
  if (tlsBuffer == nullptr && !active()) {
    pendingThreadName() = std::move(name);
    return;
  }
  Collector& c = Collector::instance();
  currentBuffer()->setThreadName(c.intern(std::move(name)));
}

TraceSession::TraceSession() : TraceSession(Options{}) {}

TraceSession::TraceSession(Options opts) {
  Collector::instance().beginSession(std::max<std::size_t>(opts.bufferCapacity,
                                                           16),
                                     detail::nowNs());
  detail::gTracing.store(true, std::memory_order_relaxed);
}

TraceSession::~TraceSession() {
  stop();
  Collector::instance().endSession();
}

void TraceSession::stop() noexcept {
  detail::gTracing.store(false, std::memory_order_relaxed);
}

std::uint64_t TraceSession::droppedEvents() const noexcept {
  return Collector::instance().droppedTotal();
}

void TraceSession::exportJson(std::ostream& os) {
  stop();
  Collector& coll = Collector::instance();

  std::vector<PlainEvent> events;
  std::vector<std::pair<std::uint32_t, const char*>> threadNames;
  coll.collect(events, threadNames);
  std::stable_sort(events.begin(), events.end(),
                   [](const PlainEvent& a, const PlainEvent& b) {
                     return a.start < b.start;
                   });

  const std::uint64_t t0 = coll.t0();
  os << "{\n  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"droppedEvents\": " << coll.droppedTotal() << ",\n";
  os << "  \"traceEvents\": [\n";
  os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"prox\"}}";
  for (const auto& [tid, name] : threadNames) {
    os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << tid << ", \"args\": {\"name\": \"";
    jsonEscape(name, os);
    os << "\"}}";
  }
  for (const PlainEvent& e : events) {
    os << ",\n    {\"name\": \"";
    jsonEscape(e.name, os);
    os << "\", \"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": ";
    // Events from a buffer that predates the session cannot occur (rings are
    // cleared at session start), so start >= t0 always holds.
    writeMicros(e.start >= t0 ? e.start - t0 : 0, os);
    switch (e.phase) {
      case 'X':
        os << ", \"dur\": ";
        writeMicros(e.dur, os);
        break;
      case 'b':
      case 'e': {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(e.id));
        os << ", \"cat\": \"async\", \"id\": \"" << buf << "\"";
        break;
      }
      case 'i':
        os << ", \"s\": \"t\"";
        break;
      default:
        break;
    }
    if (e.argName != nullptr) {
      os << ", \"args\": {\"";
      jsonEscape(e.argName, os);
      os << "\": " << e.argValue << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

std::string TraceSession::exportJson() {
  std::ostringstream os;
  exportJson(os);
  return os.str();
}

}  // namespace prox::obs::trace
