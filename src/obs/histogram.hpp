#pragma once
// Log2-bucketed HDR-style histograms for the observability registry.
//
// A Histogram records non-negative 64-bit samples (nanoseconds, iteration
// counts, queue depths) into fixed buckets whose relative width is bounded:
// values 0..7 get exact unit buckets, and every octave [2^e, 2^(e+1)) above
// that is split into 8 linear sub-buckets, so any bucket spans at most 12.5%
// of its value.  Quantiles (p50/p90/p99) are derived from bucket midpoints at
// report time; count/sum/min/max are tracked exactly alongside.
//
// Recording follows the registry's single-writer cell discipline (see
// registry.hpp): each thread owns a block of HistogramCells and updates them
// with relaxed load+store pairs -- no lock-prefixed RMW on the hot path.
// Instruments past kMaxHistogramCells (or records during thread teardown)
// fall back to a mutex-guarded shared tally, which is correct, merely slower.

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#if defined(_MSC_VER)
#include <intrin.h>
#endif

namespace prox::obs {

class Registry;

namespace detail {

struct ThreadCache;

/// Histogram instruments beyond this cap take the shared fallback path.
inline constexpr std::uint32_t kMaxHistogramCells = 32;

inline constexpr std::uint32_t kHistSubBits = 3;
inline constexpr std::uint32_t kHistSubCount = 1u << kHistSubBits;  // 8
/// 8 exact unit buckets + 61 octaves x 8 sub-buckets = 496.
inline constexpr std::uint32_t kHistBucketCount =
    kHistSubCount * (64 - kHistSubBits + 1);

inline int histLog2Floor(std::uint64_t v) noexcept {
#if defined(_MSC_VER)
  unsigned long idx;
  _BitScanReverse64(&idx, v);
  return static_cast<int>(idx);
#else
  return 63 - __builtin_clzll(v);
#endif
}

/// Bucket index for @p v.  Monotone in v; 0..kHistBucketCount-1.
inline std::uint32_t histBucketIndex(std::uint64_t v) noexcept {
  if (v < kHistSubCount) return static_cast<std::uint32_t>(v);
  const int e = histLog2Floor(v);  // >= kHistSubBits
  return static_cast<std::uint32_t>(
      (e - 2) * static_cast<int>(kHistSubCount) +
      static_cast<int>((v >> (e - kHistSubBits)) & (kHistSubCount - 1)));
}

/// Inclusive lower bound of bucket @p i.
inline std::uint64_t histBucketLowerBound(std::uint32_t i) noexcept {
  if (i < kHistSubCount) return i;
  const std::uint32_t e = i / kHistSubCount + 2;
  const std::uint32_t sub = i & (kHistSubCount - 1);
  return static_cast<std::uint64_t>(kHistSubCount + sub) << (e - kHistSubBits);
}

/// Width of bucket @p i (number of distinct values it covers).
inline std::uint64_t histBucketWidth(std::uint32_t i) noexcept {
  if (i < kHistSubCount) return 1;
  return std::uint64_t{1} << (i / kHistSubCount + 2 - kHistSubBits);
}

/// Per-thread single-writer bucket block (same relaxed load+store discipline
/// as CounterCell/TimerCell in registry.hpp).
struct HistogramCell {
  std::atomic<std::uint64_t> buckets[kHistBucketCount] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t v) noexcept {
    std::atomic<std::uint64_t>& b = buckets[histBucketIndex(v)];
    b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    count.store(count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    sum.store(sum.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
    if (v < min.load(std::memory_order_relaxed)) {
      min.store(v, std::memory_order_relaxed);
    }
    if (v > max.load(std::memory_order_relaxed)) {
      max.store(v, std::memory_order_relaxed);
    }
  }
};

}  // namespace detail

/// Merged histogram contents: exact count/sum/min/max plus the bucket
/// occupancy quantiles are derived from.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  /// Dense bucket counts; empty when count == 0 (never partially sized).
  std::vector<std::uint64_t> buckets;

  void merge(const HistogramData& other);
  void mergeSample(std::uint32_t bucket, std::uint64_t n, std::uint64_t sampleSum,
                   std::uint64_t lo, std::uint64_t hi);

  double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  /// Value at quantile @p q in [0, 1], interpolated from bucket midpoints and
  /// clamped to the exact [min, max] envelope.  0 when empty.
  double quantile(double q) const noexcept;
};

/// Distribution instrument (log2/sub-bucketed).  record() is wait-free on the
/// per-thread path; data() merges all threads plus the retired tally.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  /// Batched record: @p tc is the caller's obs::batchCells() result (which
  /// already performed the enabled check).
  void recordTo(detail::ThreadCache* tc, std::uint64_t value) noexcept;

  /// Merged data across live threads and the retired tally (same exactness
  /// caveats as Counter::value()).
  HistogramData data() const noexcept;

  /// Zeroes the histogram in every thread's cache (racy like Counter::reset).
  void reset() noexcept;

 private:
  friend class Registry;
  explicit Histogram(std::uint32_t id) : id_(id) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void recordShared(std::uint64_t value) noexcept;

  const std::uint32_t id_;
  /// Merged samples from exited threads + shared fallback, guarded by the
  /// registry mutex (cold path only).
  HistogramData retired_;
};

}  // namespace prox::obs
