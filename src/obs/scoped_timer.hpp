#pragma once
// RAII wall-clock timer charging its lifetime into a registry Timer.
//
// Usage (hot paths should go through the macro so the timer compiles out
// with PROX_ENABLE_STATS=0):
//
//   void simulate(...) {
//     PROX_OBS_SCOPED_TIMER("model.gate_sim.seconds");
//     ...
//   }
//
// When stats are disabled at runtime the constructor skips the clock read,
// so a disarmed scope costs one relaxed load at entry and one at exit.

#include <chrono>

#include "obs/registry.hpp"

namespace prox::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (!armed_ || !enabled()) return;
    const auto stop = std::chrono::steady_clock::now();
    timer_.record(std::chrono::duration<double>(stop - start_).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace prox::obs

#if PROX_ENABLE_STATS
#define PROX_OBS_SCOPED_TIMER_CAT2(a, b) a##b
#define PROX_OBS_SCOPED_TIMER_CAT(a, b) PROX_OBS_SCOPED_TIMER_CAT2(a, b)
/// Times the enclosing scope into the timer named @p name (string literal).
#define PROX_OBS_SCOPED_TIMER(name)                              \
  static ::prox::obs::Timer& PROX_OBS_SCOPED_TIMER_CAT(          \
      proxObsScopedTimerRef_, __LINE__) = ::prox::obs::timer(name); \
  ::prox::obs::ScopedTimer PROX_OBS_SCOPED_TIMER_CAT(            \
      proxObsScopedTimer_, __LINE__)(                            \
      PROX_OBS_SCOPED_TIMER_CAT(proxObsScopedTimerRef_, __LINE__))
#else
#define PROX_OBS_SCOPED_TIMER(name) \
  do {                              \
  } while (0)
#endif
