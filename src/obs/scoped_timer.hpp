#pragma once
// RAII wall-clock timer charging its lifetime into a registry Timer.
//
// Usage (hot paths should go through the macro so the timer compiles out
// with PROX_ENABLE_STATS=0):
//
//   void simulate(...) {
//     PROX_OBS_SCOPED_TIMER("model.gate_sim.seconds");
//     ...
//   }
//
// When stats are disabled at runtime the constructor skips the clock read,
// so a disarmed scope costs one relaxed load at entry and one at exit.

#include <chrono>

#include "obs/registry.hpp"

namespace prox::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (!armed_ || !enabled()) return;
    const auto stop = std::chrono::steady_clock::now();
    timer_.record(std::chrono::duration<double>(stop - start_).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII nanosecond-latency sampler charging its lifetime into a registry
/// Histogram.  @p armed lets hot call sites subsample (time only every Nth
/// call): a disarmed scope skips both clock reads.
class ScopedHistogramNs {
 public:
  explicit ScopedHistogramNs(Histogram& hist, bool armed = true) noexcept
      : hist_(hist), armed_(armed && enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedHistogramNs() {
    if (!armed_ || !enabled()) return;
    const auto stop = std::chrono::steady_clock::now();
    hist_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start_)
            .count()));
  }

  ScopedHistogramNs(const ScopedHistogramNs&) = delete;
  ScopedHistogramNs& operator=(const ScopedHistogramNs&) = delete;

 private:
  Histogram& hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace prox::obs

#if PROX_ENABLE_STATS
#define PROX_OBS_SCOPED_TIMER_CAT2(a, b) a##b
#define PROX_OBS_SCOPED_TIMER_CAT(a, b) PROX_OBS_SCOPED_TIMER_CAT2(a, b)
/// Times the enclosing scope into the timer named @p name (string literal).
#define PROX_OBS_SCOPED_TIMER(name)                              \
  static ::prox::obs::Timer& PROX_OBS_SCOPED_TIMER_CAT(          \
      proxObsScopedTimerRef_, __LINE__) = ::prox::obs::timer(name); \
  ::prox::obs::ScopedTimer PROX_OBS_SCOPED_TIMER_CAT(            \
      proxObsScopedTimer_, __LINE__)(                            \
      PROX_OBS_SCOPED_TIMER_CAT(proxObsScopedTimerRef_, __LINE__))
/// Times the enclosing scope in nanoseconds into the histogram named
/// @p name (string literal).
#define PROX_OBS_SCOPED_HIST_NS(name)                            \
  static ::prox::obs::Histogram& PROX_OBS_SCOPED_TIMER_CAT(      \
      proxObsScopedHistRef_, __LINE__) =                         \
      ::prox::obs::histogram(name);                              \
  ::prox::obs::ScopedHistogramNs PROX_OBS_SCOPED_TIMER_CAT(      \
      proxObsScopedHist_, __LINE__)(                             \
      PROX_OBS_SCOPED_TIMER_CAT(proxObsScopedHistRef_, __LINE__))
/// Sampled variant for hot paths: only every 2^everyLog2-th call through
/// this site (per thread) pays the clock reads.  The histogram still sees an
/// unbiased latency sample; pair it with a counter when exact call counts
/// matter.
#define PROX_OBS_SCOPED_HIST_NS_SAMPLED(name, everyLog2)         \
  static ::prox::obs::Histogram& PROX_OBS_SCOPED_TIMER_CAT(      \
      proxObsScopedHistRef_, __LINE__) =                         \
      ::prox::obs::histogram(name);                              \
  static thread_local std::uint32_t PROX_OBS_SCOPED_TIMER_CAT(   \
      proxObsScopedHistTick_, __LINE__) = 0;                     \
  ::prox::obs::ScopedHistogramNs PROX_OBS_SCOPED_TIMER_CAT(      \
      proxObsScopedHist_, __LINE__)(                             \
      PROX_OBS_SCOPED_TIMER_CAT(proxObsScopedHistRef_, __LINE__), \
      (PROX_OBS_SCOPED_TIMER_CAT(proxObsScopedHistTick_,         \
                                 __LINE__)++ &                   \
       ((1u << (everyLog2)) - 1u)) == 0u)
#else
#define PROX_OBS_SCOPED_TIMER(name) \
  do {                              \
  } while (0)
#define PROX_OBS_SCOPED_HIST_NS(name) \
  do {                                \
  } while (0)
#define PROX_OBS_SCOPED_HIST_NS_SAMPLED(name, everyLog2) \
  do {                                                   \
  } while (0)
#endif
