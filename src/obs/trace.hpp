#pragma once
// Hierarchical tracing: spans, async begin/end pairs, counter samples and
// instant markers recorded into per-thread lock-free ring buffers, exported
// as Chrome trace-event / Perfetto-compatible JSON.
//
// Recording discipline mirrors the registry (registry.hpp): each thread owns
// a ring buffer whose slots only it writes.  Slot fields are relaxed atomics
// guarded by a per-slot sequence number (seqlock), so the exporter may read
// concurrently -- a slot caught mid-overwrite is simply skipped.  Rings drop
// the *oldest* events on wraparound and count what they dropped.
//
// When no TraceSession is active every record path is one relaxed load of a
// process-global flag; with PROX_ENABLE_STATS=0 the PROX_OBS_SPAN / PROX_OBS_
// TRACE_* macros compile to nothing.
//
// Span names passed through the hot-path API must be string literals (or
// otherwise outlive the session); dynamic names (thread names) are interned.
//
// File layering note: obs sits below support, so writing the exported JSON
// through support::AtomicFileWriter happens in the tools
// (examples/*, bench/*): `writeFileAtomic(path, [&](auto& os) {
// session.exportJson(os); })`.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace prox::obs::trace {

namespace detail {
extern constinit std::atomic<bool> gTracing;

/// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t nowNs() noexcept;

void emit(char phase, const char* name, std::uint64_t startNs,
          std::uint64_t durNs, std::uint64_t id, const char* argName,
          std::uint64_t argValue) noexcept;
}  // namespace detail

/// True while a TraceSession is recording.  A single relaxed load.
inline bool active() noexcept {
  return detail::gTracing.load(std::memory_order_relaxed);
}

/// Emits a completed span [startNs, startNs+durNs) on the calling thread.
void completeEvent(const char* name, std::uint64_t startNs, std::uint64_t durNs,
                   const char* argName = nullptr,
                   std::uint64_t argValue = 0) noexcept;

/// Async (non-scoped) work: begin/end pairs matched by (name, id) across
/// threads.  Use for work that starts on one thread and finishes on another.
void asyncBegin(const char* name, std::uint64_t id) noexcept;
void asyncEnd(const char* name, std::uint64_t id) noexcept;

/// Emits a counter sample (rendered as a track in Perfetto).
void counterSample(const char* name, std::uint64_t value) noexcept;

/// Emits an instant marker.
void instant(const char* name) noexcept;

/// Reads the merged registry counter @p counterName and attaches its current
/// value as a counter sample named @p traceName (a string literal).  Cold
/// path: takes the registry lock; intended for heartbeats / phase edges, not
/// inner loops.
void attachCounterSnapshot(const char* traceName,
                           std::string_view counterName) noexcept;

/// Names the calling thread's track in the exported trace (interned copy).
void setCurrentThreadName(std::string name) noexcept;

/// RAII span: records a complete event covering its lifetime.  Disarmed
/// construction (no active session) costs one relaxed load.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(name), start_(active() ? detail::nowNs() : 0) {}
  Span(const char* name, const char* argName, std::uint64_t argValue) noexcept
      : name_(name), argName_(argName), argValue_(argValue),
        start_(active() ? detail::nowNs() : 0) {}

  ~Span() {
    if (start_ != 0 && active()) {
      completeEvent(name_, start_, detail::nowNs() - start_, argName_,
                    argValue_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* argName_ = nullptr;
  std::uint64_t argValue_ = 0;
  std::uint64_t start_;  // 0 = disarmed
};

/// One recording window.  At most one session may be active at a time
/// (enforced: a second concurrent session throws).  Construction clears all
/// ring buffers and enables recording; stop() (or destruction) disables it.
/// exportJson() stops the session, merges every thread's ring in timestamp
/// order and writes Chrome trace JSON ({"traceEvents": [...], ...}).
class TraceSession {
 public:
  struct Options {
    /// Events retained per thread; older events beyond this are dropped
    /// (counted in droppedEvents()).
    std::size_t bufferCapacity = 8192;
  };

  TraceSession();
  explicit TraceSession(Options opts);
  ~TraceSession();

  /// Stops recording (idempotent).  Already-buffered events remain
  /// exportable.
  void stop() noexcept;

  /// Stops, merges and serializes.  May be called more than once.
  void exportJson(std::ostream& os);
  std::string exportJson();

  /// Events lost to ring wraparound, summed over all threads.
  std::uint64_t droppedEvents() const noexcept;

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
};

}  // namespace prox::obs::trace

// ---------------------------------------------------------------------------
// Tracing macros (compiled out under PROX_ENABLE_STATS=0, like the registry
// macros in registry.hpp).
#ifndef PROX_ENABLE_STATS
#define PROX_ENABLE_STATS 1
#endif

#if PROX_ENABLE_STATS
#define PROX_OBS_TRACE_CAT2(a, b) a##b
#define PROX_OBS_TRACE_CAT(a, b) PROX_OBS_TRACE_CAT2(a, b)
/// Spans the enclosing scope under @p name (a string literal).
#define PROX_OBS_SPAN(name) \
  ::prox::obs::trace::Span PROX_OBS_TRACE_CAT(proxObsSpan_, __LINE__)(name)
/// Span with one uint64 argument, e.g. PROX_OBS_SPAN_ARG("char.point",
/// "index", i).
#define PROX_OBS_SPAN_ARG(name, argName, argValue)                   \
  ::prox::obs::trace::Span PROX_OBS_TRACE_CAT(proxObsSpan_,          \
                                              __LINE__)(             \
      name, argName, static_cast<std::uint64_t>(argValue))
#define PROX_OBS_ASYNC_BEGIN(name, id) \
  ::prox::obs::trace::asyncBegin(name, static_cast<std::uint64_t>(id))
#define PROX_OBS_ASYNC_END(name, id) \
  ::prox::obs::trace::asyncEnd(name, static_cast<std::uint64_t>(id))
#define PROX_OBS_TRACE_COUNTER(name, value) \
  ::prox::obs::trace::counterSample(name, static_cast<std::uint64_t>(value))
#define PROX_OBS_TRACE_INSTANT(name) ::prox::obs::trace::instant(name)
#define PROX_OBS_THREAD_NAME(name) \
  ::prox::obs::trace::setCurrentThreadName(name)
#else
#define PROX_OBS_SPAN(name) \
  do {                      \
  } while (0)
// The value operands are referenced unevaluated so locals computed only to
// feed a trace site don't become -Wunused-variable in the compiled-out build.
#define PROX_OBS_SPAN_ARG(name, argName, argValue)   \
  do {                                               \
    static_cast<void>(sizeof((argValue), 0));        \
  } while (0)
#define PROX_OBS_ASYNC_BEGIN(name, id)               \
  do {                                               \
    static_cast<void>(sizeof((id), 0));              \
  } while (0)
#define PROX_OBS_ASYNC_END(name, id)                 \
  do {                                               \
    static_cast<void>(sizeof((id), 0));              \
  } while (0)
#define PROX_OBS_TRACE_COUNTER(name, value)          \
  do {                                               \
    static_cast<void>(sizeof((value), 0));           \
  } while (0)
#define PROX_OBS_TRACE_INSTANT(name) \
  do {                               \
  } while (0)
#define PROX_OBS_THREAD_NAME(name) \
  do {                             \
  } while (0)
#endif
