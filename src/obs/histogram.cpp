#include "obs/histogram.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace prox::obs {

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  if (buckets.empty()) buckets.assign(detail::kHistBucketCount, 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

void HistogramData::mergeSample(std::uint32_t bucket, std::uint64_t n,
                                std::uint64_t sampleSum, std::uint64_t lo,
                                std::uint64_t hi) {
  if (n == 0) return;
  count += n;
  sum += sampleSum;
  min = std::min(min, lo);
  max = std::max(max, hi);
  if (buckets.empty()) buckets.assign(detail::kHistBucketCount, 0);
  if (bucket < buckets.size()) buckets[bucket] += n;
}

double HistogramData::quantile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const std::uint64_t lo = detail::histBucketLowerBound(i);
      const std::uint64_t w = detail::histBucketWidth(i);
      const double mid =
          static_cast<double>(lo) + static_cast<double>(w - 1) / 2.0;
      // The bucket estimate can overshoot the exact envelope; clamp so small
      // histograms report sane tails (e.g. a single sample reports itself).
      return std::clamp(mid, static_cast<double>(min),
                        static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!enabled()) return;
  detail::ThreadCache* tc = id_ < detail::kMaxHistogramCells
                                ? detail::currentThreadCache()
                                : nullptr;
  if (tc != nullptr) {
    tc->histograms[id_].record(value);
  } else {
    recordShared(value);
  }
}

void Histogram::recordTo(detail::ThreadCache* tc, std::uint64_t value) noexcept {
  if (tc != nullptr && id_ < detail::kMaxHistogramCells) {
    tc->histograms[id_].record(value);
  } else if (enabled()) {
    recordShared(value);
  }
}

HistogramData Histogram::data() const noexcept {
  return Registry::instance().mergedHistogram(*this);
}

void Histogram::reset() noexcept { Registry::instance().resetHistogram(*this); }

void Histogram::recordShared(std::uint64_t value) noexcept {
  Registry& reg = Registry::instance();
  std::lock_guard<std::recursive_mutex> lock(reg.mu_);
  retired_.mergeSample(detail::histBucketIndex(value), 1, value, value, value);
}

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace prox::obs
