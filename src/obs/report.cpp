#include "obs/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/registry.hpp"

namespace prox::obs {

std::uint64_t Report::counterValue(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::uint64_t Report::counterSumWithPrefix(const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (const CounterSample& c : counters) {
    if (c.name.compare(0, prefix.size(), prefix) == 0) sum += c.value;
  }
  return sum;
}

Report snapshot() {
  Report r;
  r.enabled = enabled();
  Registry::instance().visit(
      [&](const std::string& name, const Counter& c) {
        r.counters.push_back({name, c.value()});
      },
      [&](const std::string& name, const Timer& t) {
        TimerSample s;
        s.name = name;
        s.count = t.count();
        s.totalSeconds = t.totalSeconds();
        s.minSeconds = s.count > 0 ? t.minSeconds() : 0.0;
        s.maxSeconds = s.count > 0 ? t.maxSeconds() : 0.0;
        r.timers.push_back(std::move(s));
      });
  return r;
}

namespace {

void jsonEscape(const std::string& s, std::ostream& os) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void writeDouble(double v, std::ostream& os) {
  if (!std::isfinite(v)) {
    os << 0;  // empty-timer sentinels (±inf) serialize as 0
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void writeJson(const Report& report, std::ostream& os) {
  os << "{\n  \"enabled\": " << (report.enabled ? "true" : "false") << ",\n";
  if (!report.buildType.empty()) {
    os << "  \"build_type\": \"";
    jsonEscape(report.buildType, os);
    os << "\",\n";
  }
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"";
    jsonEscape(report.counters[i].name, os);
    os << "\": " << report.counters[i].value;
  }
  os << (report.counters.empty() ? "},\n" : "\n  },\n");
  os << "  \"timers\": {";
  for (std::size_t i = 0; i < report.timers.size(); ++i) {
    const TimerSample& t = report.timers[i];
    const double mean = t.count > 0 ? t.totalSeconds / t.count : 0.0;
    os << (i == 0 ? "\n" : ",\n") << "    \"";
    jsonEscape(t.name, os);
    os << "\": { \"count\": " << t.count << ", \"total_s\": ";
    writeDouble(t.totalSeconds, os);
    os << ", \"min_s\": ";
    writeDouble(t.count > 0 ? t.minSeconds : 0.0, os);
    os << ", \"max_s\": ";
    writeDouble(t.count > 0 ? t.maxSeconds : 0.0, os);
    os << ", \"mean_s\": ";
    writeDouble(mean, os);
    os << " }";
  }
  os << (report.timers.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

void writeJson(std::ostream& os) { writeJson(snapshot(), os); }

void writeJsonFile(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("obs::writeJsonFile: cannot open " + path);
  }
  writeJson(os);
}

std::string toJson() {
  std::ostringstream os;
  writeJson(snapshot(), os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON parser for the report schema (round-trip support for tests
// and downstream tooling).  Handles objects, numbers, booleans and strings;
// arrays/null are rejected because the schema never produces them.

namespace {

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Report parse() {
    Report r;
    skipWs();
    expect('{');
    bool first = true;
    while (!peekIs('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parseString();
      expect(':');
      if (key == "enabled") {
        r.enabled = parseBool();
      } else if (key == "build_type") {
        r.buildType = parseString();
      } else if (key == "counters") {
        parseCounters(r);
      } else if (key == "timers") {
        parseTimers(r);
      } else {
        fail("unknown top-level key: " + key);
      }
    }
    expect('}');
    skipWs();
    if (pos_ != text_.size()) fail("trailing content");
    return r;
  }

 private:
  void parseCounters(Report& r) {
    expect('{');
    bool first = true;
    while (!peekIs('}')) {
      if (!first) expect(',');
      first = false;
      CounterSample c;
      c.name = parseString();
      expect(':');
      c.value = static_cast<std::uint64_t>(parseNumber());
      r.counters.push_back(std::move(c));
    }
    expect('}');
  }

  void parseTimers(Report& r) {
    expect('{');
    bool first = true;
    while (!peekIs('}')) {
      if (!first) expect(',');
      first = false;
      TimerSample t;
      t.name = parseString();
      expect(':');
      expect('{');
      bool firstField = true;
      while (!peekIs('}')) {
        if (!firstField) expect(',');
        firstField = false;
        const std::string field = parseString();
        expect(':');
        const double v = parseNumber();
        if (field == "count") {
          t.count = static_cast<std::uint64_t>(v);
        } else if (field == "total_s") {
          t.totalSeconds = v;
        } else if (field == "min_s") {
          t.minSeconds = v;
        } else if (field == "max_s") {
          t.maxSeconds = v;
        } else if (field == "mean_s") {
          // derived; ignored on input
        } else {
          fail("unknown timer field: " + field);
        }
      }
      expect('}');
      r.timers.push_back(std::move(t));
    }
    expect('}');
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool peekIs(char c) {
    skipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += ch;
      }
    }
    expect('"');
    return out;
  }

  bool parseBool() {
    skipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;
  }

  double parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("obs::parseJson: " + what + " at offset " +
                             std::to_string(pos_));
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

Report parseJson(const std::string& text) { return Parser(text).parse(); }

Report parseJson(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseJson(buf.str());
}

}  // namespace prox::obs
