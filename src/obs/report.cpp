#include "obs/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "support/bounded.hpp"

namespace prox::obs {

std::uint64_t Report::counterValue(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::uint64_t Report::counterSumWithPrefix(const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (const CounterSample& c : counters) {
    if (c.name.compare(0, prefix.size(), prefix) == 0) sum += c.value;
  }
  return sum;
}

const HistogramSample* Report::histogramNamed(const std::string& name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Report snapshot() {
  Report r;
  r.enabled = enabled();
  for (const auto& [name, value] : Registry::instance().labels()) {
    r.labels.emplace_back(name, value);
  }
  Registry::instance().visit(
      [&](const std::string& name, const Counter& c) {
        r.counters.push_back({name, c.value()});
      },
      [&](const std::string& name, const Timer& t) {
        TimerSample s;
        s.name = name;
        s.count = t.count();
        s.totalSeconds = t.totalSeconds();
        s.minSeconds = s.count > 0 ? t.minSeconds() : 0.0;
        s.maxSeconds = s.count > 0 ? t.maxSeconds() : 0.0;
        r.timers.push_back(std::move(s));
      },
      [&](const std::string& name, const Histogram& h) {
        const HistogramData d = h.data();
        HistogramSample s;
        s.name = name;
        s.count = d.count;
        s.sum = d.sum;
        s.min = d.count > 0 ? d.min : 0;
        s.max = d.max;
        s.p50 = d.quantile(0.50);
        s.p90 = d.quantile(0.90);
        s.p99 = d.quantile(0.99);
        for (std::uint32_t i = 0; i < d.buckets.size(); ++i) {
          if (d.buckets[i] != 0) s.buckets.emplace_back(i, d.buckets[i]);
        }
        r.histograms.push_back(std::move(s));
      });
  return r;
}

namespace {

void jsonEscape(const std::string& s, std::ostream& os) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void writeDouble(double v, std::ostream& os) {
  if (!std::isfinite(v)) {
    os << 0;  // empty-timer sentinels (±inf) serialize as 0
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void writeJson(const Report& report, std::ostream& os) {
  os << "{\n  \"schema_version\": " << report.schemaVersion << ",\n";
  os << "  \"enabled\": " << (report.enabled ? "true" : "false") << ",\n";
  if (!report.buildType.empty()) {
    os << "  \"build_type\": \"";
    jsonEscape(report.buildType, os);
    os << "\",\n";
  }
  if (!report.gitSha.empty()) {
    os << "  \"git_sha\": \"";
    jsonEscape(report.gitSha, os);
    os << "\",\n";
  }
  if (!report.runTimestamp.empty()) {
    os << "  \"run_timestamp\": \"";
    jsonEscape(report.runTimestamp, os);
    os << "\",\n";
  }
  if (!report.labels.empty()) {
    os << "  \"labels\": {";
    for (std::size_t i = 0; i < report.labels.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    \"";
      jsonEscape(report.labels[i].first, os);
      os << "\": \"";
      jsonEscape(report.labels[i].second, os);
      os << "\"";
    }
    os << "\n  },\n";
  }
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"";
    jsonEscape(report.counters[i].name, os);
    os << "\": " << report.counters[i].value;
  }
  os << (report.counters.empty() ? "},\n" : "\n  },\n");
  os << "  \"timers\": {";
  for (std::size_t i = 0; i < report.timers.size(); ++i) {
    const TimerSample& t = report.timers[i];
    const double mean = t.count > 0 ? t.totalSeconds / t.count : 0.0;
    os << (i == 0 ? "\n" : ",\n") << "    \"";
    jsonEscape(t.name, os);
    os << "\": { \"count\": " << t.count << ", \"total_s\": ";
    writeDouble(t.totalSeconds, os);
    os << ", \"min_s\": ";
    writeDouble(t.count > 0 ? t.minSeconds : 0.0, os);
    os << ", \"max_s\": ";
    writeDouble(t.count > 0 ? t.maxSeconds : 0.0, os);
    os << ", \"mean_s\": ";
    writeDouble(mean, os);
    os << " }";
  }
  os << (report.timers.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < report.histograms.size(); ++i) {
    const HistogramSample& h = report.histograms[i];
    const double mean =
        h.count > 0 ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                    : 0.0;
    os << (i == 0 ? "\n" : ",\n") << "    \"";
    jsonEscape(h.name, os);
    os << "\": { \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max << ", \"mean\": ";
    writeDouble(mean, os);
    os << ", \"p50\": ";
    writeDouble(h.p50, os);
    os << ", \"p90\": ";
    writeDouble(h.p90, os);
    os << ", \"p99\": ";
    writeDouble(h.p99, os);
    os << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b == 0 ? "" : ", ") << "[" << h.buckets[b].first << ", "
         << h.buckets[b].second << "]";
    }
    os << "] }";
  }
  os << (report.histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

void writeJson(std::ostream& os) { writeJson(snapshot(), os); }

std::string toJson() {
  std::ostringstream os;
  writeJson(snapshot(), os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Generic JSON parser (obs::json) and the report schema mapping on top of it.

namespace json {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const support::ReaderLimits& limits)
      : text_(text), limits_(limits) {}

  Value parseDocument() {
    if (text_.size() > limits_.maxInputBytes) {
      support::failResource(kSite,
                            "JSON input exceeds the " +
                                std::to_string(limits_.maxInputBytes) +
                                "-byte reader cap");
    }
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  static constexpr const char* kSite = "obs.json";

  Value parseValue() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    // Every value consumes at least one input byte, so the DOM node count is
    // bounded by the (already capped) input size; the depth guard below is
    // what stops "[[[[..." from exhausting the call stack.
    if (++depth_ > limits_.maxNestingDepth) {
      support::failResource(kSite,
                            "JSON nesting deeper than " +
                                std::to_string(limits_.maxNestingDepth) +
                                " levels",
                            line());
    }
    const char c = text_[pos_];
    Value v;
    switch (c) {
      case '{': {
        v.kind = Value::Kind::Object;
        ++pos_;
        bool first = true;
        while (!peekIs('}')) {
          if (!first) expect(',');
          first = false;
          std::string key = parseString();
          expect(':');
          v.object.emplace_back(std::move(key), parseValue());
        }
        expect('}');
        break;
      }
      case '[': {
        v.kind = Value::Kind::Array;
        ++pos_;
        bool first = true;
        while (!peekIs(']')) {
          if (!first) expect(',');
          first = false;
          v.array.push_back(parseValue());
        }
        expect(']');
        break;
      }
      case '"':
        v.kind = Value::Kind::String;
        v.str = parseString();
        break;
      case 't':
      case 'f':
        v.kind = Value::Kind::Bool;
        v.boolean = parseBool();
        break;
      case 'n':
        if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
        pos_ += 4;
        v.kind = Value::Kind::Null;
        break;
      default:
        v.kind = Value::Kind::Number;
        v.number = parseNumber();
        break;
    }
    --depth_;
    return v;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool peekIs(char c) {
    skipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (pos_ - start > limits_.maxTokenBytes) {
        support::failResource(kSite,
                              "string longer than the " +
                                  std::to_string(limits_.maxTokenBytes) +
                                  "-byte token cap",
                              line());
      }
      char ch = text_[pos_++];
      if (ch == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              unsigned d;
              if (h >= '0' && h <= '9') d = static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') d = static_cast<unsigned>(h - 'a') + 10;
              else if (h >= 'A' && h <= 'F') d = static_cast<unsigned>(h - 'A') + 10;
              else fail("bad \\u escape");
              code = (code << 4) | d;
            }
            pos_ += 4;
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += ch;
      }
    }
    expect('"');
    return out;
  }

  bool parseBool() {
    skipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;
  }

  double parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    // Checked conversion: "1e999" is a typed rejection, not an uncaught
    // std::out_of_range (and never a silent inf).
    return support::parseDoubleChecked(
        std::string_view(text_).substr(start, pos_ - start), kSite, "number",
        line());
  }

  /// 1-based line of the current cursor, for diagnostics only (computed on
  /// the failure path, so scanning is free in the common case).
  int line() const {
    int ln = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++ln;
    }
    return ln;
  }

  /// Column of the current cursor on its line (1-based).
  std::size_t column() const {
    std::size_t lineStart = 0;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') lineStart = i + 1;
    }
    return pos_ - lineStart + 1;
  }

  [[noreturn]] void fail(const std::string& what) {
    support::failParse(kSite,
                       what + " at offset " + std::to_string(pos_) +
                           " (column " + std::to_string(column()) + ")",
                       line());
  }

  const std::string& text_;
  const support::ReaderLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) {
  return Parser(text, support::ReaderLimits{}).parseDocument();
}

Value parse(const std::string& text, const support::ReaderLimits& limits) {
  return Parser(text, limits).parseDocument();
}

}  // namespace json

namespace {

[[noreturn]] void reportFail(const std::string& what) {
  support::failParse("obs.report", what);
}

std::uint64_t asUint(const json::Value& v, const char* what) {
  if (!v.is(json::Value::Kind::Number)) {
    reportFail(std::string("expected number for ") + what);
  }
  // Guard the float->uint64 cast: a negative or oversized number would be
  // undefined behavior, not a clamp.
  if (!(v.number >= 0.0) || v.number >= 1.8446744073709552e19) {
    reportFail(std::string("number out of uint64 range for ") + what);
  }
  return static_cast<std::uint64_t>(v.number);
}

double asDouble(const json::Value& v, const char* what) {
  if (!v.is(json::Value::Kind::Number)) {
    reportFail(std::string("expected number for ") + what);
  }
  return v.number;
}

HistogramSample parseHistogramSample(const std::string& name,
                                     const json::Value& v) {
  if (!v.is(json::Value::Kind::Object)) {
    reportFail("histogram entry must be an object");
  }
  HistogramSample h;
  h.name = name;
  for (const auto& [field, fv] : v.object) {
    if (field == "count") {
      h.count = asUint(fv, "count");
    } else if (field == "sum") {
      h.sum = asUint(fv, "sum");
    } else if (field == "min") {
      h.min = asUint(fv, "min");
    } else if (field == "max") {
      h.max = asUint(fv, "max");
    } else if (field == "p50") {
      h.p50 = asDouble(fv, "p50");
    } else if (field == "p90") {
      h.p90 = asDouble(fv, "p90");
    } else if (field == "p99") {
      h.p99 = asDouble(fv, "p99");
    } else if (field == "mean") {
      // derived; ignored on input
    } else if (field == "buckets") {
      if (!fv.is(json::Value::Kind::Array)) {
        reportFail("buckets must be an array");
      }
      for (const json::Value& pair : fv.array) {
        if (!pair.is(json::Value::Kind::Array) || pair.array.size() != 2) {
          reportFail("bucket entry must be [index, count]");
        }
        h.buckets.emplace_back(
            static_cast<std::uint32_t>(asUint(pair.array[0], "bucket index")),
            asUint(pair.array[1], "bucket count"));
      }
    } else {
      reportFail("unknown histogram field: " + field);
    }
  }
  return h;
}

}  // namespace

Report parseJson(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (!doc.is(json::Value::Kind::Object)) {
    reportFail("report must be a JSON object");
  }
  Report r;
  r.schemaVersion = 1;  // pre-versioned files carry no schema_version key
  for (const auto& [key, v] : doc.object) {
    if (key == "schema_version") {
      r.schemaVersion = static_cast<int>(asUint(v, "schema_version"));
    } else if (key == "enabled") {
      if (!v.is(json::Value::Kind::Bool)) reportFail("expected boolean");
      r.enabled = v.boolean;
    } else if (key == "build_type") {
      if (!v.is(json::Value::Kind::String)) reportFail("expected string");
      r.buildType = v.str;
    } else if (key == "git_sha") {
      if (!v.is(json::Value::Kind::String)) reportFail("expected string");
      r.gitSha = v.str;
    } else if (key == "run_timestamp") {
      if (!v.is(json::Value::Kind::String)) reportFail("expected string");
      r.runTimestamp = v.str;
    } else if (key == "labels") {
      if (!v.is(json::Value::Kind::Object)) {
        reportFail("labels must be an object");
      }
      for (const auto& [name, lv] : v.object) {
        if (!lv.is(json::Value::Kind::String)) {
          reportFail("label value must be a string");
        }
        r.labels.emplace_back(name, lv.str);
      }
    } else if (key == "counters") {
      if (!v.is(json::Value::Kind::Object)) {
        reportFail("counters must be an object");
      }
      for (const auto& [name, cv] : v.object) {
        r.counters.push_back({name, asUint(cv, "counter value")});
      }
    } else if (key == "timers") {
      if (!v.is(json::Value::Kind::Object)) {
        reportFail("timers must be an object");
      }
      for (const auto& [name, tv] : v.object) {
        if (!tv.is(json::Value::Kind::Object)) {
          reportFail("timer entry must be an object");
        }
        TimerSample t;
        t.name = name;
        for (const auto& [field, fv] : tv.object) {
          if (field == "count") {
            t.count = asUint(fv, "count");
          } else if (field == "total_s") {
            t.totalSeconds = asDouble(fv, "total_s");
          } else if (field == "min_s") {
            t.minSeconds = asDouble(fv, "min_s");
          } else if (field == "max_s") {
            t.maxSeconds = asDouble(fv, "max_s");
          } else if (field == "mean_s") {
            // derived; ignored on input
          } else {
            reportFail("unknown timer field: " + field);
          }
        }
        r.timers.push_back(std::move(t));
      }
    } else if (key == "histograms") {
      if (!v.is(json::Value::Kind::Object)) {
        reportFail("histograms must be an object");
      }
      for (const auto& [name, hv] : v.object) {
        r.histograms.push_back(parseHistogramSample(name, hv));
      }
    } else {
      reportFail("unknown top-level key: " + key);
    }
  }
  return r;
}

Report parseJson(std::istream& is) {
  return parseJson(support::readStreamBounded(
      is, support::ReaderLimits{}.maxInputBytes, "obs.report"));
}

}  // namespace prox::obs
