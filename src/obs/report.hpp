#pragma once
// Snapshot and JSON serialization of the observability registry.
//
// The JSON schema (versioned; consumed by BENCH_*.json tooling):
//   {
//     "schema_version": 4,
//     "enabled": true,
//     "build_type": "release",          // optional; omitted when unset
//     "git_sha": "abc1234...",          // optional; omitted when unset
//     "run_timestamp": "2026-01-02T03:04:05Z",  // optional ISO-8601 UTC
//     "labels": { "<name>": "<value>", ... },   // optional; omitted when empty
//     "counters": { "<name>": <uint64>, ... },
//     "timers": {
//       "<name>": { "count": <uint64>, "total_s": <double>,
//                   "min_s": <double>, "max_s": <double>,
//                   "mean_s": <double> },
//       ...
//     },
//     "histograms": {
//       "<name>": { "count": <uint64>, "sum": <uint64>,
//                   "min": <uint64>, "max": <uint64>, "mean": <double>,
//                   "p50": <double>, "p90": <double>, "p99": <double>,
//                   "buckets": [[<index>, <count>], ...] },   // sparse
//       ...
//     }
//   }
// Timers with zero samples serialize min_s/max_s/mean_s as 0; empty
// histograms serialize all-zero scalars and an empty bucket list.  Bucket
// indices follow obs/histogram.hpp (8 exact unit buckets, then 8 linear
// sub-buckets per octave); mean/p50/p90/p99 are derived fields, recomputable
// from count/sum/buckets.
//
// Version history: v1 (PR 1) had no schema_version key and no histograms;
// v2 (PR 3) added histograms and the version key; v3 (PR 9) added the
// optional labels section (small string facts such as simd.dispatch.path);
// v4 (PR 10) added the optional git_sha / run_timestamp provenance stamps so
// perf trajectories can be assembled across commits.  parseJson accepts all
// four and reports the version it read.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prox::support {
struct ReaderLimits;
}  // namespace prox::support

namespace prox::obs {

// --- minimal generic JSON ---------------------------------------------------
// A tiny DOM parser, shared by the report reader below and by tests that
// validate other JSON artifacts this library emits (e.g. exported traces).
namespace json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is(Kind k) const noexcept { return kind == k; }
  /// Object member lookup; null when absent or not an object.
  const Value* find(std::string_view key) const noexcept;
};

/// Parses one complete JSON document (objects, arrays, strings, numbers,
/// booleans, null).  Bounded: input size, string length, and nesting depth
/// are capped (support::ReaderLimits defaults, or the explicit overload's
/// limits), so hostile input cannot overflow the stack or balloon memory.
/// Throws support::DiagnosticError (ParseError with line context, or
/// ResourceExhausted for cap hits) -- which derives from std::runtime_error,
/// so legacy catch sites keep working.
Value parse(const std::string& text);
Value parse(const std::string& text, const support::ReaderLimits& limits);

}  // namespace json

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct TimerSample {
  std::string name;
  std::uint64_t count = 0;
  double totalSeconds = 0.0;
  double minSeconds = 0.0;
  double maxSeconds = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when empty
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Sparse occupancy: (bucket index, count) pairs in index order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
};

/// Point-in-time copy of every instrument, sorted by name.
struct Report {
  /// Serialization schema (see header comment).  snapshot() produces the
  /// current version; parseJson() reports the version it read.
  int schemaVersion = 4;
  bool enabled = true;
  /// Optional build-flavor tag ("release"/"debug") set by bench binaries so
  /// stats files self-describe whether their timings are comparable.  Empty
  /// means the field is omitted from the JSON.
  std::string buildType;
  /// Optional provenance stamps (PR-to-PR perf trajectories need to know
  /// which commit and when a run happened).  Empty means omitted.
  std::string gitSha;
  std::string runTimestamp;  ///< ISO-8601 UTC, e.g. "2026-01-02T03:04:05Z"
  /// Small string facts from the registry (e.g. simd.dispatch.path), sorted
  /// by name.  Omitted from the JSON when empty.
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<CounterSample> counters;
  std::vector<TimerSample> timers;
  std::vector<HistogramSample> histograms;

  /// Value of the counter named @p name, or 0 if absent.
  std::uint64_t counterValue(const std::string& name) const;

  /// Sum of all counters whose name starts with @p prefix.
  std::uint64_t counterSumWithPrefix(const std::string& prefix) const;

  /// The histogram named @p name, or null if absent.
  const HistogramSample* histogramNamed(const std::string& name) const;
};

/// Snapshots the process registry.
Report snapshot();

/// Serializes @p report as pretty-printed JSON.
void writeJson(const Report& report, std::ostream& os);

/// Snapshot + serialize in one step.
void writeJson(std::ostream& os);

/// Snapshot + serialize to a string.
std::string toJson();

/// Parses a report previously produced by writeJson.  Accepts any JSON
/// matching the schema above (current or v1; field order within objects is
/// free).  Throws support::DiagnosticError (a std::runtime_error) on
/// malformed or cap-exceeding input.
Report parseJson(std::istream& is);
Report parseJson(const std::string& text);

}  // namespace prox::obs
