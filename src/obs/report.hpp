#pragma once
// Snapshot and JSON serialization of the observability registry.
//
// The JSON schema (stable; consumed by BENCH_*.json tooling):
//   {
//     "enabled": true,
//     "build_type": "release",          // optional; omitted when unset
//     "counters": { "<name>": <uint64>, ... },
//     "timers": {
//       "<name>": { "count": <uint64>, "total_s": <double>,
//                   "min_s": <double>, "max_s": <double>,
//                   "mean_s": <double> },
//       ...
//     }
//   }
// Timers with zero samples serialize min_s/max_s/mean_s as 0.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace prox::obs {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct TimerSample {
  std::string name;
  std::uint64_t count = 0;
  double totalSeconds = 0.0;
  double minSeconds = 0.0;
  double maxSeconds = 0.0;
};

/// Point-in-time copy of every instrument, sorted by name.
struct Report {
  bool enabled = true;
  /// Optional build-flavor tag ("release"/"debug") set by bench binaries so
  /// stats files self-describe whether their timings are comparable.  Empty
  /// means the field is omitted from the JSON.
  std::string buildType;
  std::vector<CounterSample> counters;
  std::vector<TimerSample> timers;

  /// Value of the counter named @p name, or 0 if absent.
  std::uint64_t counterValue(const std::string& name) const;

  /// Sum of all counters whose name starts with @p prefix.
  std::uint64_t counterSumWithPrefix(const std::string& prefix) const;
};

/// Snapshots the process registry.
Report snapshot();

/// Serializes @p report as pretty-printed JSON.
void writeJson(const Report& report, std::ostream& os);

/// Snapshot + serialize in one step.
void writeJson(std::ostream& os);

/// Snapshot + serialize to @p path; throws std::runtime_error if the file
/// cannot be opened.
void writeJsonFile(const std::string& path);

/// Snapshot + serialize to a string.
std::string toJson();

/// Parses a report previously produced by writeJson.  Accepts any JSON
/// matching the schema above (field order within objects is free).  Throws
/// std::runtime_error on malformed input.
Report parseJson(std::istream& is);
Report parseJson(const std::string& text);

}  // namespace prox::obs
