#pragma once
// Work-stealing thread pool shared by the characterization sweeps and the
// levelized STA delay calculator.
//
// Design constraints (and how they are met):
//   * Deterministic results regardless of thread count -> the pool never
//     decides *where* a result goes, only *when* a task runs; callers
//     (par::parallelFor) pre-size result slots and key every task by its
//     loop index, so placement and reduction order are fixed at submit time.
//   * No idle convoys -> each worker owns a deque (push/pop at the back);
//     an out-of-work worker steals from the front of a sibling's deque, so
//     an uneven task mix (one slow transient among hundreds of fast ones)
//     rebalances without a central queue bottleneck.
//   * Nested parallelism must not deadlock -> a worker thread that reaches
//     another parallel region runs it inline (see parallelFor's guard);
//     ThreadPool::onWorkerThread() exposes the check.
//
// The process-global pool is created lazily on first parallel use and grown
// on demand up to kMaxThreads; serial call paths (threads == 1, the library
// default) never touch it.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prox::par {

/// Hard cap on pool size; requests beyond it are clamped.
inline constexpr int kMaxThreads = 64;

/// The process-default worker count: the setDefaultThreadCount() override if
/// one was installed, else the PROX_THREADS environment variable, else
/// std::thread::hardware_concurrency() (at least 1).
int defaultThreadCount();

/// Installs a process-wide default (CLI --threads plumbs through this).
/// @p threads <= 0 removes the override.
void setDefaultThreadCount(int threads);

class ThreadPool {
 public:
  /// Starts @p threads workers (clamped to [1, kMaxThreads]).
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks submitted but not yet run are
  /// executed before the workers exit, so joining is always clean.
  ~ThreadPool();

  int threadCount() const noexcept;

  /// Grows the pool to at least @p threads workers (clamped to kMaxThreads).
  void ensureWorkers(int threads);

  /// Enqueues @p task onto the least-recently-fed worker deque.  Tasks must
  /// not throw (parallelFor catches at the task boundary before submitting).
  void submit(std::function<void()> task);

  /// True when the calling thread is a worker of *any* ThreadPool -- the
  /// nested-parallelism guard used by parallelFor to run inline instead of
  /// submitting (a worker blocking on its own pool's queue would deadlock).
  static bool onWorkerThread() noexcept;

  /// The lazily-created process-global pool, grown to at least @p threads.
  static ThreadPool& global(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void workerLoop(int self);
  bool runOneTask(int self);

  // Fixed-capacity slot array so workers can scan victims without racing a
  // reallocation; [0, workerCount_) entries are live.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<int> workerCount_{0};
  std::atomic<std::uint64_t> nextQueue_{0};  // round-robin submit cursor
  std::atomic<std::size_t> pending_{0};      // tasks enqueued, not yet taken

  std::mutex mu_;  // guards cv_ sleep/wake and worker creation
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace prox::par
