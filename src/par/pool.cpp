#include "par/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace prox::par {
namespace {

std::atomic<int> g_defaultOverride{0};

// Set while the calling thread is inside ThreadPool::workerLoop.
thread_local bool t_onWorker = false;

int envThreadCount() {
  const char* env = std::getenv("PROX_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || parsed <= 0) return 0;
  return static_cast<int>(std::min<long>(parsed, kMaxThreads));
}

int clampThreads(int threads) {
  return std::clamp(threads, 1, kMaxThreads);
}

}  // namespace

int defaultThreadCount() {
  const int override = g_defaultOverride.load(std::memory_order_relaxed);
  if (override > 0) return clampThreads(override);
  const int env = envThreadCount();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return clampThreads(hw == 0 ? 1 : static_cast<int>(hw));
}

void setDefaultThreadCount(int threads) {
  g_defaultOverride.store(threads > 0 ? clampThreads(threads) : 0,
                          std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads) {
  queues_.resize(kMaxThreads);
  workers_.reserve(kMaxThreads);
  ensureWorkers(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

int ThreadPool::threadCount() const noexcept {
  return workerCount_.load(std::memory_order_acquire);
}

void ThreadPool::ensureWorkers(int threads) {
  threads = clampThreads(threads);
  std::lock_guard<std::mutex> lock(mu_);
  int count = workerCount_.load(std::memory_order_acquire);
  while (count < threads) {
    if (queues_[static_cast<std::size_t>(count)] == nullptr) {
      queues_[static_cast<std::size_t>(count)] =
          std::make_unique<WorkerQueue>();
    }
    const int self = count;
    // Publish the queue before the worker (or a thief) can reach it.
    workerCount_.store(count + 1, std::memory_order_release);
    workers_.emplace_back([this, self] { workerLoop(self); });
    ++count;
    PROX_OBS_COUNT("par.pool.workers_started", 1);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  const int count = workerCount_.load(std::memory_order_acquire);
  const auto slot = static_cast<std::size_t>(
      nextQueue_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint64_t>(count));
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  const std::size_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  PROX_OBS_COUNT("par.pool.tasks_submitted", 1);
  PROX_OBS_TRACE_COUNTER("par.pool.queue_depth", depth);
  cv_.notify_one();
}

bool ThreadPool::onWorkerThread() noexcept { return t_onWorker; }

ThreadPool& ThreadPool::global(int threads) {
  // Leaked deliberately: worker threads may still be parked in cv_.wait at
  // process exit, and joining them from a static destructor races other
  // teardown.  The OS reclaims everything.
  static ThreadPool* pool = new ThreadPool(threads);
  pool->ensureWorkers(threads);
  return *pool;
}

bool ThreadPool::runOneTask(int self) {
  std::function<void()> task;
  const int count = workerCount_.load(std::memory_order_acquire);
  // Own queue first (LIFO back: cache-warm, recently pushed)...
  {
    auto& q = *queues_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  // ...then steal from siblings (FIFO front: oldest, likely largest work).
  if (!task) {
    for (int i = 1; i < count && !task; ++i) {
      const auto victim = static_cast<std::size_t>((self + i) % count);
      auto& q = *queues_[victim];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
        PROX_OBS_COUNT("par.pool.tasks_stolen", 1);
      }
    }
  }
  if (!task) return false;
  const std::size_t depth = pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  PROX_OBS_TRACE_COUNTER("par.pool.queue_depth", depth);
  {
    PROX_OBS_SPAN("par.task");
    task();
  }
  PROX_OBS_COUNT("par.pool.tasks_run", 1);
  return true;
}

void ThreadPool::workerLoop(int self) {
  t_onWorker = true;
  PROX_OBS_THREAD_NAME("pool-worker-" + std::to_string(self));
  for (;;) {
    if (runOneTask(self)) continue;
    // The idle span brackets the cv wait so a trace shows each worker's
    // utilization gaps next to its par.task spans.
    PROX_OBS_SPAN("par.pool.idle");
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stopping_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_ && pending_.load(std::memory_order_acquire) == 0) break;
  }
  // Final drain so ~ThreadPool leaves no submitted task unexecuted.  The
  // obs thread-cache reaper folds this thread's counters into the retired
  // tally when the thread exits; no explicit flush is required.
  while (runOneTask(self)) {
  }
}

}  // namespace prox::par
