#pragma once
// Deterministic parallel loop over an index range.
//
// The determinism contract (DESIGN.md §5): parallelFor(n, fn) produces
// results that are bit-identical to `for (i = 0; i < n; ++i) fn(i)`
// regardless of thread count, because
//   * fn(i) writes only to slot i of caller-pre-sized storage -- placement
//     is decided by the index, never by which worker ran the task;
//   * every invocation runs under support::TaskScope(i), so fault-injection
//     plans keyed by task index fire in the same task at any thread count;
//   * exceptions are captured per task and the *lowest-index* failure is
//     re-raised (its original type preserved via exception_ptr), matching
//     the first throw a serial loop would surface;
//   * with threads <= 1 (the library default) the loop body runs inline on
//     the calling thread -- the legacy serial path, no pool involvement.
//
// Nested parallelism: a call made from inside a pool worker runs inline
// serially instead of submitting (a worker blocking on completion of tasks
// that only it could run would deadlock the pool).

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "par/pool.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"
#include "support/fault_injection.hpp"

namespace prox::par {

struct ParallelOptions {
  /// Worker count: 1 = serial inline (legacy path), 0 = defaultThreadCount().
  int threads = 0;
  /// Indices handed to a worker per grab.  1 (the default) gives the best
  /// load balance for uneven tasks like characterization transients.
  std::size_t chunk = 1;
  /// Stop issuing new indices after the first failure (matching a serial
  /// loop's abort-on-throw).  In-flight tasks still finish; which higher
  /// indices ran before the stop is timing-dependent, so use this only on
  /// paths whose partial results are discarded on failure.
  bool failFast = false;
  /// Cooperative cancellation: when set, the loop stops issuing new indices
  /// once the token trips, installs the token as every task's thread-local
  /// CancelScope (so poll points deep inside the task observe it), and --
  /// after in-flight tasks drain -- parallelFor/parallelForCollect throw the
  /// token's typed DiagnosticError (Cancelled / DeadlineExceeded).
  /// Cancellation outranks collected task failures: a cancelled run's
  /// partial results are discarded by callers, so its failures are moot.
  const support::CancelToken* cancel = nullptr;
};

/// One failed loop iteration: the index it ran as, the original exception
/// (type preserved), and a typed rendering for diagnostic logs.
struct TaskFailure {
  std::size_t index = 0;
  std::exception_ptr exception;
  support::Diagnostic diagnostic;
};

namespace detail {

inline support::Diagnostic describeFailure(std::size_t index,
                                           const std::exception_ptr& ep) {
  support::Diagnostic diag;
  diag.site = "par.parallel_for";
  diag.pin = -1;
  try {
    std::rethrow_exception(ep);
  } catch (const support::DiagnosticError& e) {
    diag = e.diagnostic();
  } catch (const std::exception& e) {
    diag = support::makeDiagnostic(support::StatusCode::Internal, e.what())
               .withSite("par.parallel_for");
  } catch (...) {
    diag = support::makeDiagnostic(support::StatusCode::Internal,
                                   "non-std exception from parallel task")
               .withSite("par.parallel_for");
  }
  diag.message += " (task " + std::to_string(index) + ")";
  return diag;
}

/// The ProcessCrash fault site: a task-keyed plan armed against "par.task"
/// kills the process (as SIGKILL would) the moment the matching task index
/// starts, at any thread count -- the deterministic stand-in for an
/// operator's `kill -9` in checkpoint/resume tests and the CI kill-resume
/// job.  Inline in the task wrapper so every parallel region is covered.
inline void maybeCrashAtTask() {
  if (PROX_FAULT_POINT("par.task", ProcessCrash)) {
    support::crashProcessForFaultInjection();
  }
}

}  // namespace detail

/// Runs fn(i) for i in [0, n), possibly in parallel, and returns every
/// failure sorted by index (empty on full success).  fn must confine its
/// writes to per-index storage; it may throw.  When opt.cancel trips, the
/// loop stops issuing indices, drains in-flight tasks, then throws the
/// token's typed DiagnosticError (Cancelled / DeadlineExceeded).
template <typename Fn>
std::vector<TaskFailure> parallelForCollect(std::size_t n, Fn&& fn,
                                            const ParallelOptions& opt = {}) {
  std::vector<TaskFailure> failures;
  if (n == 0) return failures;

  int threads = opt.threads == 0 ? defaultThreadCount() : opt.threads;
  // Serial inline path: threads <= 1, trivially small ranges, or a nested
  // call from a pool worker (submitting would risk deadlock).
  if (threads <= 1 || n == 1 || ThreadPool::onWorkerThread()) {
    support::CancelScope cancelScope(opt.cancel);
    for (std::size_t i = 0; i < n; ++i) {
      if (opt.cancel != nullptr && opt.cancel->cancelRequested()) break;
      support::TaskScope scope(static_cast<long long>(i));
      detail::maybeCrashAtTask();
      try {
        fn(i);
      } catch (...) {
        failures.push_back(
            {i, std::current_exception(),
             detail::describeFailure(i, std::current_exception())});
        if (opt.failFast) break;
      }
    }
    if (opt.cancel != nullptr) {
      opt.cancel->throwIfCancelled("par.parallel_for");
    }
    return failures;
  }

  threads = std::min<int>(threads, kMaxThreads);
  const std::size_t chunk = std::max<std::size_t>(opt.chunk, 1);

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<int> active{0};
    std::atomic<bool> stop{false};
    std::mutex mu;  // guards failures and done signalling
    std::condition_variable done;
    std::vector<TaskFailure> failures;
  };
  auto shared = std::make_shared<Shared>();

  const bool failFast = opt.failFast;
  const support::CancelToken* const cancel = opt.cancel;
  auto runner = [shared, n, chunk, failFast, cancel, &fn]() {
    support::CancelScope cancelScope(cancel);
    for (;;) {
      if (failFast && shared->stop.load(std::memory_order_acquire)) break;
      if (cancel != nullptr && cancel->cancelRequested()) break;
      const std::size_t begin =
          shared->next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        support::TaskScope scope(static_cast<long long>(i));
        detail::maybeCrashAtTask();
        try {
          fn(i);
        } catch (...) {
          shared->stop.store(true, std::memory_order_release);
          std::lock_guard<std::mutex> lock(shared->mu);
          shared->failures.push_back(
              {i, std::current_exception(),
               detail::describeFailure(i, std::current_exception())});
        }
      }
    }
    if (shared->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->done.notify_all();
    }
  };

  ThreadPool& pool = ThreadPool::global(threads);
  // One runner per thread: the caller participates, so even a pool saturated
  // by other work cannot stall this loop (the caller's runner drains it).
  const int helpers = threads - 1;
  shared->active.store(helpers + 1, std::memory_order_release);
  for (int t = 0; t < helpers; ++t) pool.submit(runner);
  runner();
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->done.wait(lock, [&shared] {
      return shared->active.load(std::memory_order_acquire) == 0;
    });
  }

  // Cancellation is reported only after every in-flight task has drained,
  // so the caller's per-index storage is quiescent when the throw unwinds.
  if (cancel != nullptr) cancel->throwIfCancelled("par.parallel_for");

  failures = std::move(shared->failures);
  // Failure order must not depend on the interleaving.
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return failures;
}

/// parallelForCollect, but re-raises the lowest-index failure with its
/// original exception type -- the same exception a serial `for` loop over
/// fn(0..n) would have surfaced first.
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, const ParallelOptions& opt = {}) {
  auto failures = parallelForCollect(n, std::forward<Fn>(fn), opt);
  if (!failures.empty()) std::rethrow_exception(failures.front().exception);
}

}  // namespace prox::par
