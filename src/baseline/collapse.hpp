#pragma once
// The prior-art baseline the paper compares against (references [8] Jun et
// al. and [13] Nabavi-Lishi & Rumin): collapse the multi-input gate into an
// equivalent inverter by series-parallel strength reduction and drive it
// with an equivalent input waveform derived from the switching inputs.
//
// Reduction (for a NAND-n):
//   * the n series NMOS collapse to one device of strength K/n
//     (equivalently width wn/n),
//   * the n parallel PMOS collapse to one device of strength n*K
//     (width n*wp),
//   * the equivalent input waveform is the pointwise MINIMUM of the
//     switching inputs' waveforms (the series stack conducts when every
//     input is high, i.e. when the minimum is high).
// A NOR-n mirrors this (pointwise MAXIMUM, wp/n, n*wn).
//
// The paper's Section 1 critique -- this transformation ignores which inputs
// actually switch, internal-node state, and the interplay between loading
// and input slopes -- is what the bench 'bench_baseline_collapse' quantifies.

#include <optional>
#include <vector>

#include "cells/fixture.hpp"
#include "model/gate_sim.hpp"

namespace prox::baseline {

struct CollapseResult {
  wave::Waveform equivalentInput;
  wave::Waveform out;
  std::optional<double> outputRefTime;   ///< absolute output crossing [s]
  std::optional<double> delay;           ///< wrt the earliest event's tRef
  std::optional<double> transitionTime;
};

class CollapsedInverterModel {
 public:
  /// @p gate supplies the cell geometry and the Section 2 thresholds used
  /// for measurement (so the comparison with the proximity model is
  /// apples-to-apples).
  explicit CollapsedInverterModel(model::Gate gate);

  /// Evaluates the baseline for same-direction events.  Delay is measured
  /// from the *reference* event (index 0 after sorting by tRef is NOT
  /// assumed: pass refIdx explicitly).
  CollapseResult compute(const std::vector<model::InputEvent>& events,
                         std::size_t refIdx = 0);

 private:
  model::Gate gate_;
  cells::CellFixture inverter_;
};

}  // namespace prox::baseline
