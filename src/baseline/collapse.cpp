#include "baseline/collapse.hpp"

#include <algorithm>
#include <stdexcept>

#include "waveform/combine.hpp"

namespace prox::baseline {

namespace {

/// Equivalent-inverter cell spec per the series-parallel reduction.
cells::CellSpec collapsedSpec(const cells::CellSpec& s) {
  cells::CellSpec inv = s;
  inv.type = cells::GateType::Inverter;
  inv.fanin = 1;
  const int n = s.fanin;
  if (s.type == cells::GateType::Nand) {
    inv.wn = s.wn / n;        // series stack
    inv.wp = s.wp * n;        // parallel bank
  } else if (s.type == cells::GateType::Nor) {
    inv.wn = s.wn * n;
    inv.wp = s.wp / n;
  }
  return inv;
}

}  // namespace

CollapsedInverterModel::CollapsedInverterModel(model::Gate gate)
    : gate_(std::move(gate)), inverter_(collapsedSpec(gate_.spec)) {}

CollapseResult CollapsedInverterModel::compute(
    const std::vector<model::InputEvent>& events, std::size_t refIdx) {
  if (events.empty()) {
    throw std::invalid_argument("CollapsedInverterModel: no events");
  }
  if (refIdx >= events.size()) {
    throw std::invalid_argument("CollapsedInverterModel: refIdx out of range");
  }
  for (const auto& ev : events) {
    if (ev.edge != events.front().edge) {
      throw std::invalid_argument(
          "CollapsedInverterModel: mixed directions unsupported");
    }
  }

  const double vdd = gate_.spec.tech.vdd;
  const wave::Thresholds& th = gate_.thresholds;

  // Shift all events into positive time for the simulation window.
  double minStart = 1e30;
  double maxEnd = -1e30;
  double maxTau = 0.0;
  for (const auto& ev : events) {
    const double t0 = model::rampStart(ev, vdd, th);
    minStart = std::min(minStart, t0);
    maxEnd = std::max(maxEnd, t0 + ev.tau);
    maxTau = std::max(maxTau, ev.tau);
  }
  const double margin = std::max(0.25e-9, 0.25 * maxTau);
  const double shift = margin - minStart;

  std::vector<wave::Waveform> inputs;
  for (const auto& ev : events) {
    model::InputEvent sh = ev;
    sh.tRef += shift;
    inputs.push_back(model::makeInputWave(sh, vdd, th));
  }

  // Equivalent waveform: min for NAND-like conduction, max for NOR.
  CollapseResult res;
  res.equivalentInput = gate_.spec.type == cells::GateType::Nor
                            ? wave::pointwiseMax(inputs)
                            : wave::pointwiseMin(inputs);

  inverter_.setInput(0, res.equivalentInput);
  const double tstop = (maxEnd + shift) + std::max(3e-9, 2.0 * maxTau);
  res.out = inverter_.runOutput(tstop).shifted(-shift);
  res.equivalentInput = res.equivalentInput.shifted(-shift);

  const wave::Edge outEdge = gate_.spec.outputEdgeFor(events[refIdx].edge);
  if (auto tOut = wave::outputRefTime(res.out, outEdge, th,
                                      res.out.startTime())) {
    res.outputRefTime = tOut;
    res.delay = *tOut - events[refIdx].tRef;
  }
  res.transitionTime = wave::transitionTime(res.out, outEdge, th);
  return res;
}

}  // namespace prox::baseline
