#include "fleet/orchestrator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/diagnostic.hpp"

namespace prox::fleet {

namespace {

constexpr const char* kSite = "fleet.orchestrator";

// Worker output kept per attempt for the "last diagnostic" record.  Only the
// tail matters -- the final error line -- so older bytes are dropped.
constexpr std::size_t kMaxTailBytes = 8192;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

[[noreturn]] void failInternal(const std::string& msg) {
  const int err = errno;
  std::string full = msg;
  if (err != 0) full += std::string(" (") + std::strerror(err) + ")";
  throw support::DiagnosticError(
      support::makeDiagnostic(support::StatusCode::Internal, full)
          .withSite(kSite));
}

/// The last non-empty line of @p tail, whitespace-trimmed -- the worker's
/// own final diagnostic, recorded verbatim into the fleet report.
std::string lastLine(const std::string& tail) {
  std::size_t end = tail.size();
  while (end > 0) {
    std::size_t begin = tail.find_last_of('\n', end - 1);
    const std::size_t lineStart = begin == std::string::npos ? 0 : begin + 1;
    std::string line = tail.substr(lineStart, end - lineStart);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ')) {
      line.pop_back();
    }
    if (!line.empty()) return line;
    if (lineStart == 0) break;
    end = lineStart - 1;
  }
  return {};
}

/// Everything the supervisor tracks about one shard while the fleet runs.
struct ShardRuntime {
  const ShardSpec* spec = nullptr;
  ShardState state = ShardState::Pending;
  int attempts = 0;  ///< processes launched so far
  bool resumedFromJournal = false;
  Clock::time_point nextLaunch = Clock::time_point::min();
  Clock::time_point firstLaunch;
  // Live process bookkeeping (state == Running):
  pid_t pid = -1;
  int pipeFd = -1;
  Clock::time_point startTime;
  Clock::time_point lastOutput;
  bool termSent = false;
  Clock::time_point termTime;
  std::string killReason;  ///< "deadline" / "heartbeat" when we killed it
  std::string tail;
  // Terminal facts:
  int lastExitCode = -1;
  int lastSignal = 0;
  std::string lastDiagnostic;
  double elapsedSeconds = 0.0;
};

void appendTail(ShardRuntime& rt, const char* data, std::size_t n) {
  rt.tail.append(data, n);
  if (rt.tail.size() > kMaxTailBytes) {
    rt.tail.erase(0, rt.tail.size() - kMaxTailBytes);
  }
}

void launchShard(ShardRuntime& rt, std::size_t shardIndex,
                 const FleetOptions& options) {
  const std::vector<std::string> argv = rt.spec->command(rt.attempts);
  if (argv.empty()) failInternal("shard command returned empty argv");

  int fds[2];
  if (::pipe(fds) != 0) failInternal("pipe failed");

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    failInternal("fork failed");
  }
  if (pid == 0) {
    // Child: stdout+stderr onto the supervision pipe (both heartbeat and
    // diagnostics travel the same channel), then exec the worker.
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // exec failed: the conventional shell code, visible as the exit status.
    std::fprintf(stderr, "fleet worker exec failed: %s: %s\n", cargv[0],
                 std::strerror(errno));
    ::_exit(127);
  }

  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);

  if (rt.attempts == 0) rt.firstLaunch = Clock::now();
  ++rt.attempts;
  rt.state = ShardState::Running;
  rt.pid = pid;
  rt.pipeFd = fds[0];
  rt.startTime = Clock::now();
  rt.lastOutput = rt.startTime;
  rt.termSent = false;
  rt.killReason.clear();
  rt.tail.clear();
  if (rt.attempts > 1 || rt.resumedFromJournal) {
    // A retry (or a fleet-level --resume) replays the shard's journal.
    PROX_OBS_COUNT("fleet.shard.resumed", 1);
  }
  PROX_OBS_ASYNC_BEGIN("fleet.shard", shardIndex * 1000 +
                                          static_cast<std::size_t>(rt.attempts));
  (void)options;
}

/// Reaps an exited worker and walks the shard down the ladder:
/// success -> Done; failure -> Retrying with backoff, or Quarantined once
/// maxRetries is exhausted.
void finishAttempt(ShardRuntime& rt, std::size_t shardIndex, int wstatus,
                   const FleetOptions& options) {
  ::close(rt.pipeFd);
  rt.pipeFd = -1;
  rt.pid = -1;
  PROX_OBS_ASYNC_END("fleet.shard", shardIndex * 1000 +
                                        static_cast<std::size_t>(rt.attempts));

  if (WIFEXITED(wstatus)) {
    rt.lastExitCode = WEXITSTATUS(wstatus);
    rt.lastSignal = 0;
  } else if (WIFSIGNALED(wstatus)) {
    rt.lastExitCode = -1;
    rt.lastSignal = WTERMSIG(wstatus);
  }
  rt.lastDiagnostic = lastLine(rt.tail);
  if (!rt.killReason.empty()) {
    rt.lastDiagnostic = "killed by supervisor (" + rt.killReason + ")" +
                        (rt.lastDiagnostic.empty()
                             ? std::string()
                             : "; last output: " + rt.lastDiagnostic);
  }

  bool ok = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  if (ok && rt.spec->validateArtifact) {
    std::string reason;
    try {
      ok = rt.spec->validateArtifact(&reason);
    } catch (const std::exception& e) {
      ok = false;
      reason = e.what();
    }
    if (!ok) {
      PROX_OBS_COUNT("fleet.shard.invalid_artifacts", 1);
      rt.lastDiagnostic = "artifact validation failed" +
                          (reason.empty() ? std::string() : ": " + reason);
    }
  }

  if (ok) {
    rt.state = ShardState::Done;
    rt.elapsedSeconds = secondsSince(rt.firstLaunch);
    return;
  }
  const int retriesSoFar = rt.attempts - 1;
  if (retriesSoFar >= options.maxRetries) {
    rt.state = ShardState::Quarantined;
    rt.elapsedSeconds = secondsSince(rt.firstLaunch);
    PROX_OBS_COUNT("fleet.shard.quarantined", 1);
    return;
  }
  rt.state = ShardState::Retrying;
  const double delay = retryBackoffSeconds(rt.attempts, options);
  rt.nextLaunch =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(delay));
  PROX_OBS_COUNT("fleet.shard.retries", 1);
}

/// SIGTERM first (the workers' SignalCancelScope flushes the checkpoint and
/// exits 6), SIGKILL once the grace period runs out.
void enforceLiveness(ShardRuntime& rt, const FleetOptions& options) {
  if (rt.state != ShardState::Running) return;
  if (rt.termSent) {
    if (secondsSince(rt.termTime) >= options.killGraceSeconds) {
      ::kill(rt.pid, SIGKILL);
    }
    return;
  }
  const char* reason = nullptr;
  if (options.shardDeadlineSeconds > 0.0 &&
      secondsSince(rt.startTime) >= options.shardDeadlineSeconds) {
    reason = "deadline";
  } else if (options.heartbeatTimeoutSeconds > 0.0 &&
             secondsSince(rt.lastOutput) >= options.heartbeatTimeoutSeconds) {
    reason = "heartbeat";
  }
  if (reason != nullptr) {
    rt.killReason = reason;
    rt.termSent = true;
    rt.termTime = Clock::now();
    ::kill(rt.pid, SIGTERM);
    PROX_OBS_COUNT(reason[0] == 'd' ? "fleet.shard.deadline_kills"
                                    : "fleet.shard.heartbeat_kills",
                   1);
  }
}

void drainPipe(ShardRuntime& rt, bool echo) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(rt.pipeFd, buf, sizeof(buf));
    if (n > 0) {
      rt.lastOutput = Clock::now();
      appendTail(rt, buf, static_cast<std::size_t>(n));
      if (echo) {
        std::fwrite(buf, 1, static_cast<std::size_t>(n), stderr);
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (drained) or EOF/error; EOF is detected via waitpid
  }
}

void terminateAll(std::vector<ShardRuntime>& shards,
                  const FleetOptions& options) {
  for (ShardRuntime& rt : shards) {
    if (rt.state == ShardState::Running) ::kill(rt.pid, SIGTERM);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::max(0.1, options.killGraceSeconds)));
  while (true) {
    bool anyLive = false;
    for (ShardRuntime& rt : shards) {
      if (rt.state != ShardState::Running) continue;
      int wstatus = 0;
      const pid_t r = ::waitpid(rt.pid, &wstatus, WNOHANG);
      if (r == rt.pid) {
        drainPipe(rt, options.echoWorkerOutput);
        ::close(rt.pipeFd);
        rt.pipeFd = -1;
        rt.pid = -1;
        // Cancellation is not a shard failure; leave the shard Pending so a
        // later --resume picks it up from its journal.
        rt.state = ShardState::Pending;
      } else {
        anyLive = true;
      }
    }
    if (!anyLive) return;
    if (Clock::now() >= deadline) {
      for (ShardRuntime& rt : shards) {
        if (rt.state == ShardState::Running) ::kill(rt.pid, SIGKILL);
      }
    }
    ::usleep(20 * 1000);
  }
}

}  // namespace

const char* shardStateName(ShardState state) noexcept {
  switch (state) {
    case ShardState::Pending: return "pending";
    case ShardState::Running: return "running";
    case ShardState::Retrying: return "retrying";
    case ShardState::Quarantined: return "quarantined";
    case ShardState::Done: return "done";
  }
  return "unknown";
}

double retryBackoffSeconds(int attempt, const FleetOptions& options) {
  const double raw =
      options.backoffBaseSeconds * std::ldexp(1.0, std::max(0, attempt - 1));
  return std::min(raw, options.backoffMaxSeconds);
}

std::size_t FleetReport::countIn(ShardState state) const {
  std::size_t n = 0;
  for (const ShardResult& s : shards) {
    if (s.state == state) ++n;
  }
  return n;
}

void FleetReport::writeJson(std::ostream& os) const {
  os << "{\n  \"schema_version\": 1,\n";
  os << "  \"elapsed_s\": " << elapsedSeconds << ",\n";
  os << "  \"done\": " << countIn(ShardState::Done)
     << ",\n  \"quarantined\": " << countIn(ShardState::Quarantined)
     << ",\n  \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardResult& s = shards[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    { \"name\": \"" << s.name << "\", \"state\": \""
       << shardStateName(s.state) << "\", \"attempts\": " << s.attempts
       << ", \"exit_code\": " << s.lastExitCode
       << ", \"signal\": " << s.lastSignal << ", \"resumed\": "
       << (s.resumedFromJournal ? "true" : "false")
       << ", \"elapsed_s\": " << s.elapsedSeconds
       << ", \"last_diagnostic\": \"";
    // Minimal JSON escaping; diagnostics are our own tool's output lines.
    for (char c : s.lastDiagnostic) {
      if (c == '"' || c == '\\') os << '\\' << c;
      else if (static_cast<unsigned char>(c) < 0x20) os << ' ';
      else os << c;
    }
    os << "\" }";
  }
  os << (shards.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

FleetReport runFleet(const std::vector<ShardSpec>& shards,
                     const FleetOptions& options) {
  const Clock::time_point fleetStart = Clock::now();
  std::vector<ShardRuntime> rts(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    rts[i].spec = &shards[i];
    rts[i].resumedFromJournal = shards[i].resumesFromJournal;
  }

  const int maxParallel = std::max(1, options.maxParallel);
  while (true) {
    // Whole-fleet cancellation: stop the workers (gracefully: their own
    // signal scopes flush checkpoints), then surface the typed error.
    if (options.cancel != nullptr && options.cancel->cancelRequested()) {
      terminateAll(rts, options);
      throw support::DiagnosticError(options.cancel->diagnostic(kSite));
    }

    // Reap exited workers before launching: a freed slot is reusable in the
    // same iteration.
    for (std::size_t i = 0; i < rts.size(); ++i) {
      ShardRuntime& rt = rts[i];
      if (rt.state != ShardState::Running) continue;
      int wstatus = 0;
      const pid_t r = ::waitpid(rt.pid, &wstatus, WNOHANG);
      if (r == rt.pid) {
        drainPipe(rt, options.echoWorkerOutput);
        finishAttempt(rt, i, wstatus, options);
      }
    }

    // Liveness enforcement on whatever is still running.
    for (ShardRuntime& rt : rts) enforceLiveness(rt, options);

    // Launch eligible shards into free slots.
    int running = 0;
    for (const ShardRuntime& rt : rts) {
      if (rt.state == ShardState::Running) ++running;
    }
    for (std::size_t i = 0; i < rts.size() && running < maxParallel; ++i) {
      ShardRuntime& rt = rts[i];
      const bool eligible =
          (rt.state == ShardState::Pending ||
           rt.state == ShardState::Retrying) &&
          Clock::now() >= rt.nextLaunch;
      if (!eligible) continue;
      launchShard(rt, i, options);
      ++running;
    }

    // Exit condition: nothing running and nothing left to launch.
    bool allTerminal = true;
    for (const ShardRuntime& rt : rts) {
      if (rt.state != ShardState::Done &&
          rt.state != ShardState::Quarantined) {
        allTerminal = false;
        break;
      }
    }
    if (allTerminal) break;

    // Sleep on worker output (the heartbeat channel) with a bounded tick so
    // deadlines, backoff expiries and cancellation are checked promptly.
    std::vector<struct pollfd> fds;
    fds.reserve(rts.size());
    for (ShardRuntime& rt : rts) {
      if (rt.state == ShardState::Running && rt.pipeFd >= 0) {
        fds.push_back({rt.pipeFd, POLLIN, 0});
      }
    }
    const int timeoutMs = 50;
    if (!fds.empty()) {
      const int r = ::poll(fds.data(), fds.size(), timeoutMs);
      if (r < 0 && errno != EINTR) failInternal("poll failed");
      if (r > 0) {
        std::size_t fi = 0;
        for (ShardRuntime& rt : rts) {
          if (rt.state != ShardState::Running || rt.pipeFd < 0) continue;
          if (fds[fi].revents != 0) {
            drainPipe(rt, options.echoWorkerOutput);
          }
          ++fi;
        }
      }
    } else {
      ::usleep(timeoutMs * 1000);
    }
  }

  FleetReport report;
  report.elapsedSeconds = secondsSince(fleetStart);
  report.shards.reserve(rts.size());
  for (const ShardRuntime& rt : rts) {
    ShardResult s;
    s.name = rt.spec->name;
    s.state = rt.state;
    s.attempts = rt.attempts;
    s.lastExitCode = rt.lastExitCode;
    s.lastSignal = rt.lastSignal;
    s.resumedFromJournal = rt.resumedFromJournal || rt.attempts > 1;
    s.lastDiagnostic = rt.lastDiagnostic;
    s.elapsedSeconds = rt.elapsedSeconds;
    report.shards.push_back(std::move(s));
  }
  return report;
}

}  // namespace prox::fleet
