#include "fleet/bundle.hpp"

#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

#include "obs/registry.hpp"
#include "support/bounded.hpp"
#include "support/durable_io.hpp"
#include "support/journal.hpp"

namespace prox::fleet {

namespace {

constexpr const char* kSite = "fleet.bundle";
constexpr const char* kMagic = "proxbundle";
constexpr int kVersion = 1;

// Manifest lines are machine-written and short; anything longer is damage.
constexpr std::size_t kMaxManifestLineBytes = 4096;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

bool parseHex(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream is(line);
  std::string w;
  while (is >> w) fields.push_back(std::move(w));
  return fields;
}

/// CRC-validated manifest line: the last field is the CRC-32 (8 hex digits)
/// of everything before it (separator included in neither).
bool checkLine(const std::string& line, std::vector<std::string>* fields) {
  const std::size_t lastSpace = line.find_last_of(' ');
  if (lastSpace == std::string::npos || lastSpace + 9 != line.size()) {
    return false;
  }
  std::uint64_t want = 0;
  if (!parseHex(line.substr(lastSpace + 1), &want)) return false;
  if (support::crc32(std::string_view(line).substr(0, lastSpace)) !=
      static_cast<std::uint32_t>(want)) {
    return false;
  }
  *fields = splitFields(line.substr(0, lastSpace));
  return true;
}

void appendCrcLine(std::string& out, const std::string& payload) {
  out += payload;
  out += ' ';
  out += hex32(support::crc32(payload));
  out += '\n';
}

/// Whitespace-free diagnostic token: spaces and control bytes become '_' so
/// a free-text reason can never break the line grammar.
std::string sanitizeReason(const std::string& reason) {
  if (reason.empty()) return "-";
  std::string out = reason;
  for (char& c : out) {
    if (static_cast<unsigned char>(c) <= ' ') c = '_';
  }
  if (out.size() > 256) out.resize(256);
  return out;
}

bool statusFromName(const std::string& name, BundleCornerStatus* out) {
  if (name == "ok") *out = BundleCornerStatus::Ok;
  else if (name == "quarantined") *out = BundleCornerStatus::Quarantined;
  else if (name == "missing") *out = BundleCornerStatus::Missing;
  else return false;
  return true;
}

[[noreturn]] void failStructural(const std::string& msg) {
  throw support::DiagnosticError(
      support::makeDiagnostic(support::StatusCode::StructuralError, msg)
          .withSite(kSite));
}

}  // namespace

const char* bundleCornerStatusName(BundleCornerStatus status) noexcept {
  switch (status) {
    case BundleCornerStatus::Ok: return "ok";
    case BundleCornerStatus::Quarantined: return "quarantined";
    case BundleCornerStatus::Missing: return "missing";
  }
  return "unknown";
}

const BundleEntry* Bundle::find(const std::string& name) const {
  for (const BundleEntry& e : entries) {
    if (e.corner.name == name) return &e;
  }
  return nullptr;
}

std::size_t Bundle::okCount() const {
  std::size_t n = 0;
  for (const BundleEntry& e : entries) {
    if (e.status == BundleCornerStatus::Ok) ++n;
  }
  return n;
}

void writeBundle(const std::string& path,
                 const std::vector<BundleWriteEntry>& entries) {
  // Embed artifacts first so an unreadable one fails before the temp file
  // exists.  Sections concatenate in manifest order -- deterministic given
  // a deterministic corner list.
  std::vector<std::string> sections(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].status == BundleCornerStatus::Ok) {
      sections[i] = support::readFileBounded(
          entries[i].proxPath, support::ReaderLimits{}.maxInputBytes, kSite);
    }
  }

  std::string out;
  appendCrcLine(out, std::string(kMagic) + ' ' + std::to_string(kVersion) +
                         ' ' + std::to_string(entries.size()));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BundleWriteEntry& e = entries[i];
    std::string payload = "corner ";
    payload += e.corner.name;
    payload += ' ';
    payload += hex64(support::doubleToBits(e.corner.vddScale));
    payload += ' ';
    payload += hex64(support::doubleToBits(e.corner.vtShift));
    payload += ' ';
    payload += hex64(support::doubleToBits(e.corner.kpScale));
    payload += ' ';
    payload += hex64(support::doubleToBits(e.corner.gammaScale));
    payload += ' ';
    payload += bundleCornerStatusName(e.status);
    payload += ' ';
    payload += hex64(sections[i].size());
    payload += ' ';
    payload += hex32(support::crc32(sections[i]));
    payload += ' ';
    payload += sanitizeReason(e.reason);
    appendCrcLine(out, payload);
  }
  appendCrcLine(out, "endmanifest");
  for (const std::string& s : sections) out += s;

  support::writeFileAtomic(path, [&](std::ostream& os) { os << out; });
  PROX_OBS_COUNT("fleet.bundle.written", 1);
}

Bundle parseBundle(const std::string& text, const std::string& pathForDiag) {
  if (text.size() > support::ReaderLimits{}.maxInputBytes) {
    support::failResource(kSite, "bundle too large: " + pathForDiag);
  }
  support::AllocationBudget budget(kSite, text.size());

  std::istringstream is(text);
  support::BoundedLine line;
  int lineNo = 0;
  std::size_t offset = 0;  // byte offset just past the last consumed line

  auto nextLine = [&]() -> std::vector<std::string> {
    if (!support::getlineBounded(is, kMaxManifestLineBytes, &line) ||
        !line.sawNewline || line.overlong) {
      support::failParse(kSite, "truncated bundle manifest: " + pathForDiag,
                         lineNo);
    }
    ++lineNo;
    offset += line.text.size() + 1;
    std::vector<std::string> fields;
    if (!checkLine(line.text, &fields)) {
      support::failParse(kSite, "corrupt bundle manifest line: " + pathForDiag,
                         lineNo);
    }
    return fields;
  };

  const std::vector<std::string> header = nextLine();
  if (header.size() != 3 || header[0] != kMagic ||
      header[1] != std::to_string(kVersion)) {
    support::failParse(kSite, "bad bundle header: " + pathForDiag, lineNo);
  }
  const std::uint64_t declared = support::parseCountChecked(
      header[2], cells::kMaxCorners, kSite, "corner count", lineNo);
  if (declared == 0) {
    support::failParse(kSite, "bundle declares zero corners: " + pathForDiag,
                       lineNo);
  }

  Bundle bundle;
  std::set<std::string> names;
  std::vector<std::uint64_t> sectionLens;
  std::vector<std::uint32_t> sectionCrcs;
  budget.chargeItems(declared, sizeof(BundleEntry) + 64, "bundle manifest",
                     lineNo);
  for (std::uint64_t i = 0; i < declared; ++i) {
    const std::vector<std::string> f = nextLine();
    if (f.size() != 10 || f[0] != "corner") {
      support::failParse(kSite, "bad manifest entry: " + pathForDiag, lineNo);
    }
    BundleEntry e;
    e.corner.name = f[1];
    if (e.corner.name.empty() ||
        e.corner.name.size() > cells::kMaxCornerNameBytes) {
      support::failParse(kSite, "bad corner name: " + pathForDiag, lineNo);
    }
    if (!names.insert(e.corner.name).second) {
      support::failParse(kSite,
                         "duplicate corner \"" + e.corner.name + "\": " +
                             pathForDiag,
                         lineNo);
    }
    std::uint64_t vdd = 0, vt = 0, kp = 0, gamma = 0, len = 0, crc = 0;
    if (!parseHex(f[2], &vdd) || !parseHex(f[3], &vt) || !parseHex(f[4], &kp) ||
        !parseHex(f[5], &gamma) || !parseHex(f[7], &len) ||
        !parseHex(f[8], &crc)) {
      support::failParse(kSite, "bad manifest numbers: " + pathForDiag, lineNo);
    }
    e.corner.vddScale = support::bitsFromDouble(vdd);
    e.corner.vtShift = support::bitsFromDouble(vt);
    e.corner.kpScale = support::bitsFromDouble(kp);
    e.corner.gammaScale = support::bitsFromDouble(gamma);
    if (!statusFromName(f[6], &e.status)) {
      support::failParse(kSite, "bad corner status \"" + f[6] + "\": " +
                                    pathForDiag,
                         lineNo);
    }
    if (f[9] != "-") e.reason = f[9];
    if (e.status != BundleCornerStatus::Ok && len != 0) {
      support::failParse(kSite,
                         "non-ok corner with a section: " + pathForDiag,
                         lineNo);
    }
    sectionLens.push_back(len);
    sectionCrcs.push_back(static_cast<std::uint32_t>(crc));
    bundle.entries.push_back(std::move(e));
  }
  const std::vector<std::string> trailer = nextLine();
  if (trailer.size() != 1 || trailer[0] != "endmanifest") {
    support::failParse(kSite, "bad manifest trailer: " + pathForDiag, lineNo);
  }

  // Declared section lengths must tile the remaining bytes exactly -- a
  // length field cannot point past EOF or leave trailing garbage.
  std::uint64_t total = 0;
  for (std::uint64_t len : sectionLens) {
    if (len > text.size() - offset || total > text.size() - offset - len) {
      support::failParse(kSite, "section length past end of file: " +
                                    pathForDiag);
    }
    total += len;
  }
  if (offset + total != text.size()) {
    support::failParse(kSite, "trailing bytes after last section: " +
                                  pathForDiag);
  }

  for (std::size_t i = 0; i < bundle.entries.size(); ++i) {
    BundleEntry& e = bundle.entries[i];
    const std::uint64_t len = sectionLens[i];
    if (e.status != BundleCornerStatus::Ok) continue;
    budget.charge(static_cast<std::size_t>(len), "bundle section");
    const std::string_view section(text.data() + offset,
                                   static_cast<std::size_t>(len));
    offset += static_cast<std::size_t>(len);
    if (support::crc32(section) != sectionCrcs[i]) {
      support::failParse(kSite, "section CRC mismatch for corner \"" +
                                    e.corner.name + "\": " + pathForDiag);
    }
    std::istringstream ss{std::string(section)};
    e.gate = characterize::loadGateModel(ss);
  }
  PROX_OBS_COUNT("fleet.bundle.loaded", 1);
  return bundle;
}

Bundle loadBundleFile(const std::string& path) {
  return parseBundle(
      support::readFileBounded(path, support::ReaderLimits{}.maxInputBytes,
                               kSite),
      path);
}

CornerSelection selectCorner(const Bundle& bundle, const std::string& name,
                             MissingCornerPolicy policy,
                             support::DiagnosticLog* log) {
  CornerSelection sel;
  sel.requested = name;
  const BundleEntry* entry = bundle.find(name);
  if (entry == nullptr) {
    failStructural("corner \"" + name +
                   "\" is not in the bundle manifest (a typo is not a hole "
                   "-- degrade mode only covers corners the fleet knew "
                   "about)");
  }
  if (entry->status == BundleCornerStatus::Ok) {
    sel.entry = entry;
    return sel;
  }
  if (policy == MissingCornerPolicy::Reject) {
    failStructural("corner \"" + name + "\" is " +
                   bundleCornerStatusName(entry->status) +
                   (entry->reason.empty() ? std::string()
                                          : " (" + entry->reason + ")") +
                   "; rerun the fleet or pass --corner-policy=degrade");
  }
  // Degrade: nearest characterized corner by parameter distance; ties break
  // by manifest order.
  const BundleEntry* best = nullptr;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const BundleEntry& cand : bundle.entries) {
    if (cand.status != BundleCornerStatus::Ok) continue;
    const double d = cells::cornerDistance(entry->corner, cand.corner);
    if (d < bestDist) {
      bestDist = d;
      best = &cand;
    }
  }
  if (best == nullptr) {
    failStructural("corner \"" + name +
                   "\" cannot degrade: the bundle holds no characterized "
                   "corner at all");
  }
  PROX_OBS_COUNT("fleet.bundle.nearest_fallbacks", 1);
  if (log != nullptr) {
    log->record(support::makeDiagnostic(
                    support::StatusCode::StructuralError,
                    "corner \"" + name + "\" is " +
                        bundleCornerStatusName(entry->status) +
                        "; degraded to nearest characterized corner \"" +
                        best->corner.name + "\"")
                    .withSeverity(support::Severity::Warning)
                    .withSite(kSite));
  }
  sel.entry = best;
  sel.degraded = true;
  return sel;
}

}  // namespace prox::fleet
