#pragma once
// Supervised multi-process fleet orchestration.
//
// The fleet runs one worker process per shard (a (corner, cell) work unit)
// and supervises every rung of the failure ladder:
//
//   pending -> running -> done                        (the happy path)
//                  \-> retrying -> running -> ...     (crash / timeout /
//                                                      nonzero exit /
//                                                      invalid artifact,
//                                                      exponential backoff)
//                          \-> quarantined            (maxRetries exhausted)
//
// Liveness is judged two ways: a per-shard wall-clock deadline, and a
// heartbeat window fed by the worker's output (workers run with --progress,
// so a healthy long sweep keeps writing).  A shard that trips either is
// SIGTERMed -- the workers' SignalCancelScope turns that into a graceful
// exit 6 with a flushed checkpoint -- and SIGKILLed only after a grace
// period.  Because every worker journals through the PR 5 checkpoint layer,
// a retry (or a whole-fleet --resume) replays the journal and recomputes
// only what is missing, so interrupted fleets converge to byte-identical
// artifacts.
//
// The orchestrator never throws for shard failures (they are data, recorded
// in the FleetReport); it throws DiagnosticError only for its own faults
// (fork/pipe failure) and for cancellation of the whole fleet.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/cancel.hpp"

namespace prox::fleet {

enum class ShardState { Pending, Running, Retrying, Quarantined, Done };

const char* shardStateName(ShardState state) noexcept;

/// One unit of supervised work.
struct ShardSpec {
  std::string name;  ///< stable identifier (the corner name)
  /// argv for attempt @p attempt (0-based).  argv[0] is the executable
  /// path.  Later attempts typically add --resume so the worker replays its
  /// journal instead of starting over.
  std::function<std::vector<std::string>(int attempt)> command;
  /// Optional post-exit artifact validation; return false (or throw) to
  /// count the attempt as failed -- a worker that exits 0 after writing a
  /// corrupt artifact must be retried, not trusted.  Null skips validation.
  std::function<bool(std::string* reason)> validateArtifact;
  /// True when a prior run's journal exists for this shard, so even the
  /// first attempt is a resume (counts toward fleet.shard.resumed).
  bool resumesFromJournal = false;
};

struct FleetOptions {
  int maxParallel = 4;        ///< concurrently running workers
  int maxRetries = 2;         ///< retries after the first failure
  double backoffBaseSeconds = 0.25;  ///< first retry delay
  double backoffMaxSeconds = 8.0;    ///< cap: base * 2^(attempt-1) <= max
  double shardDeadlineSeconds = 0.0;      ///< 0 = no per-shard deadline
  double heartbeatTimeoutSeconds = 0.0;   ///< 0 = no liveness window
  double killGraceSeconds = 2.0;  ///< SIGTERM -> SIGKILL escalation delay
  support::CancelToken* cancel = nullptr;  ///< whole-fleet cancellation
  bool echoWorkerOutput = true;  ///< forward worker output to our stderr
};

/// Terminal record of one shard.
struct ShardResult {
  std::string name;
  ShardState state = ShardState::Pending;
  int attempts = 0;       ///< processes launched (1 = no retries)
  int lastExitCode = -1;  ///< exit code of the final attempt; -1 if signaled
  int lastSignal = 0;     ///< terminating signal of the final attempt, or 0
  bool resumedFromJournal = false;  ///< launched with a prior journal present
  std::string lastDiagnostic;  ///< last non-empty output line of the final
                               ///< attempt (the worker's own diagnostic)
  double elapsedSeconds = 0.0;  ///< wall clock across all attempts
};

struct FleetReport {
  std::vector<ShardResult> shards;
  double elapsedSeconds = 0.0;

  std::size_t countIn(ShardState state) const;
  bool allDone() const { return countIn(ShardState::Done) == shards.size(); }

  /// Machine-readable JSON (parseable by obs::json): schema, per-shard
  /// state / attempts / exit code / signal / last diagnostic, and totals.
  void writeJson(std::ostream& os) const;
};

/// Runs @p shards under @p options until every shard is Done or
/// Quarantined.  Instrumented: fleet.shard.retries / fleet.shard.quarantined
/// / fleet.shard.resumed counters and one fleet.shard async span per shard
/// attempt.  Throws DiagnosticError(Cancelled/DeadlineExceeded) when
/// @p options.cancel trips (workers are SIGTERMed and reaped first).
FleetReport runFleet(const std::vector<ShardSpec>& shards,
                     const FleetOptions& options);

/// The backoff delay before retry attempt @p attempt (1-based retry count):
/// min(base * 2^(attempt-1), max).  Exposed for tests and the DESIGN.md
/// contract.
double retryBackoffSeconds(int attempt, const FleetOptions& options);

}  // namespace prox::fleet
