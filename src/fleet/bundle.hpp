#pragma once
// Multi-corner model bundle: the artifact a corner-sweep fleet assembles.
//
// A bundle is a single file holding one characterized `.prox` model per
// completed corner plus a manifest that names every corner the fleet was
// asked for -- including the ones that never completed (quarantined after
// repeated worker failures, or missing because the fleet stopped early).
// Downstream consumers (sta_path, netlist_sim) therefore always know the
// difference between "this corner was characterized" and "this corner is a
// hole", and apply an explicit degrade-or-reject policy instead of crashing
// or silently serving the wrong model.
//
// Layout (text; doubles as IEEE-754 hex bit patterns, so byte-identical
// worker artifacts yield a byte-identical bundle):
//
//   proxbundle 1 <ncorners> <crc8>
//   corner <name> <vdd16> <vt16> <kp16> <gamma16> <status> <len16> <crc8-of-
//     section> <reason> <crc8-of-line>
//   ...
//   endmanifest <crc8>
//   <per-corner .prox sections concatenated in manifest order>
//
// Every manifest line carries a CRC-32 of its payload (journal-style); each
// section additionally carries the byte length and CRC recorded in its
// manifest entry, and each section is itself a complete `.prox` package with
// its own internal CRC trailer.  status is ok | quarantined | missing;
// <reason> is a whitespace-free token ("-" when empty).
//
// Bundles cross a trust boundary (copied between machines, hand-inspected),
// so the reader follows the DESIGN.md section 7 rules: bounded input,
// declared-length validation before slicing, allocation budgeting, typed
// DiagnosticError on any malformation.

#include <optional>
#include <string>
#include <vector>

#include "cells/corner.hpp"
#include "characterize/serialize.hpp"

namespace prox::fleet {

enum class BundleCornerStatus { Ok, Quarantined, Missing };

const char* bundleCornerStatusName(BundleCornerStatus status) noexcept;

/// What a consumer does when the corner it asked for has no model.
/// Mirrors sta::DelayCalcOptions::structural: Reject turns the hole into a
/// typed StructuralError (tools map it to exit 8); Degrade serves the
/// nearest characterized corner and counts the substitution.
enum class MissingCornerPolicy { Reject, Degrade };

/// One manifest entry, plus the loaded model for ok corners.
struct BundleEntry {
  cells::Corner corner;
  BundleCornerStatus status = BundleCornerStatus::Missing;
  std::string reason;  ///< machine-readable token; empty when none
  std::optional<characterize::CharacterizedGate> gate;  ///< ok corners only
};

struct Bundle {
  std::vector<BundleEntry> entries;

  /// The entry named @p name, or null when the manifest does not list it.
  const BundleEntry* find(const std::string& name) const;

  std::size_t okCount() const;
};

/// Input to writeBundle: the manifest facts plus, for ok corners, the path
/// of the worker-produced `.prox` artifact to embed.
struct BundleWriteEntry {
  cells::Corner corner;
  BundleCornerStatus status = BundleCornerStatus::Missing;
  std::string reason;
  std::string proxPath;  ///< read + embedded when status == Ok
};

/// Assembles and atomically writes the bundle (temp + fsync + rename; a
/// crash mid-write leaves the previous file or none).  Throws
/// DiagnosticError(IoError) when an artifact cannot be read.
void writeBundle(const std::string& path,
                 const std::vector<BundleWriteEntry>& entries);

/// Parses a bundle from @p text (@p pathForDiag labels diagnostics),
/// validating manifest line CRCs, declared section lengths and section
/// CRCs, and loading each ok corner's model.  Throws typed DiagnosticError
/// (ParseError / ResourceExhausted) on malformation; a quarantined or
/// missing corner is *not* an error here -- holes are data, policy is
/// applied at selectCorner time.
Bundle parseBundle(const std::string& text, const std::string& pathForDiag);

/// readFileBounded + parseBundle.
Bundle loadBundleFile(const std::string& path);

/// Result of resolving a requested corner against a bundle.
struct CornerSelection {
  const BundleEntry* entry = nullptr;  ///< the entry actually served
  bool degraded = false;  ///< true when a nearest-corner substitution happened
  std::string requested;  ///< the name that was asked for
};

/// Resolves @p name against @p bundle under @p policy.  A characterized
/// corner is served directly.  A quarantined/missing corner either throws
/// DiagnosticError(StructuralError) (Reject) or degrades to the nearest
/// characterized corner by cells::cornerDistance, bumping the
/// fleet.bundle.nearest_fallbacks counter and recording a Warning into
/// @p log when provided (Degrade).  A name the manifest does not list at
/// all, or a bundle with no characterized corner to degrade to, is always
/// StructuralError -- there is nothing defensible to serve.
CornerSelection selectCorner(const Bundle& bundle, const std::string& name,
                             MissingCornerPolicy policy,
                             support::DiagnosticLog* log = nullptr);

}  // namespace prox::fleet
