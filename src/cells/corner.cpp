#include "cells/corner.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "support/bounded.hpp"

namespace prox::cells {

namespace {

constexpr const char* kSite = "cells.corners";
constexpr const char* kMagic = "proxcorners";
constexpr int kVersion = 1;

// Range guards: a corner is a perturbation, not an arbitrary re-process.
// Values outside these windows are almost certainly typos (or hostile), and
// letting e.g. vdd x100 through would send the characterizer off to simulate
// nonsense for hours before failing numerically.
constexpr double kMinScale = 0.25;
constexpr double kMaxScale = 4.0;
constexpr double kMaxVtShiftVolts = 2.0;

bool validName(const std::string& name) {
  if (name.empty() || name.size() > kMaxCornerNameBytes) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

double scaleValue(const std::string& token, const char* what, int line) {
  const double v = support::parseFiniteDoubleChecked(token, kSite, what, line);
  if (v < kMinScale || v > kMaxScale) {
    support::failParse(kSite,
                       std::string(what) + " " + token + " outside [" +
                           std::to_string(kMinScale) + ", " +
                           std::to_string(kMaxScale) + "]",
                       line);
  }
  return v;
}

}  // namespace

Technology applyCorner(const Technology& base, const Corner& corner) {
  Technology t = base;
  t.vdd *= corner.vddScale;
  t.nmos.vt0 += corner.vtShift;
  t.pmos.vt0 -= corner.vtShift;
  t.nmos.kp *= corner.kpScale;
  t.pmos.kp *= corner.kpScale;
  t.nmos.gamma *= corner.gammaScale;
  t.pmos.gamma *= corner.gammaScale;
  return t;
}

std::vector<Corner> defaultCorners() {
  return {
      {.name = "tt", .vddScale = 1.00, .vtShift = 0.00, .kpScale = 1.00,
       .gammaScale = 1.00},
      {.name = "ss", .vddScale = 1.00, .vtShift = 0.10, .kpScale = 0.85,
       .gammaScale = 1.10},
      {.name = "ff", .vddScale = 1.00, .vtShift = -0.10, .kpScale = 1.15,
       .gammaScale = 0.90},
      {.name = "sl", .vddScale = 0.90, .vtShift = 0.10, .kpScale = 0.85,
       .gammaScale = 1.10},
      {.name = "fh", .vddScale = 1.10, .vtShift = -0.10, .kpScale = 1.15,
       .gammaScale = 0.90},
  };
}

double cornerDistance(const Corner& a, const Corner& b) {
  const double dv = a.vddScale - b.vddScale;
  const double dt = a.vtShift - b.vtShift;
  const double dk = a.kpScale - b.kpScale;
  const double dg = a.gammaScale - b.gammaScale;
  return std::sqrt(dv * dv + dt * dt + dk * dk + dg * dg);
}

std::vector<Corner> parseCornersFile(const std::string& text,
                                     const std::string& pathForDiag) {
  if (text.size() > support::ReaderLimits{}.maxInputBytes) {
    support::failResource(kSite, "corners file too large: " + pathForDiag);
  }
  std::istringstream is(text);
  std::vector<Corner> corners;
  std::set<std::string> names;
  support::BoundedLine line;
  bool sawHeader = false;
  int lineNo = 0;
  while (support::getlineBounded(is, kMaxCornerNameBytes + 128, &line)) {
    ++lineNo;
    if (line.overlong) {
      support::failParse(kSite, "overlong line in " + pathForDiag, lineNo);
    }
    std::istringstream ls(line.text);
    std::string word;
    std::vector<std::string> tokens;
    while (ls >> word) {
      if (word[0] == '#') break;
      tokens.push_back(std::move(word));
    }
    if (tokens.empty()) continue;
    if (!sawHeader) {
      if (tokens.size() != 2 || tokens[0] != kMagic ||
          tokens[1] != std::to_string(kVersion)) {
        support::failParse(
            kSite, "bad corners header (want \"proxcorners 1\"): " +
                       pathForDiag,
            lineNo);
      }
      sawHeader = true;
      continue;
    }
    if (tokens.size() != 10 || tokens[0] != "corner" || tokens[2] != "vdd" ||
        tokens[4] != "vt" || tokens[6] != "kp" || tokens[8] != "gamma") {
      support::failParse(kSite,
                         "bad corner line (want \"corner NAME vdd S vt V kp "
                         "S gamma S\"): " +
                             pathForDiag,
                         lineNo);
    }
    Corner c;
    c.name = tokens[1];
    if (!validName(c.name)) {
      support::failParse(kSite, "bad corner name: " + pathForDiag, lineNo);
    }
    if (!names.insert(c.name).second) {
      support::failParse(kSite, "duplicate corner \"" + c.name + "\": " +
                                    pathForDiag,
                         lineNo);
    }
    c.vddScale = scaleValue(tokens[3], "vdd scale", lineNo);
    c.vtShift =
        support::parseFiniteDoubleChecked(tokens[5], kSite, "vt shift", lineNo);
    if (std::fabs(c.vtShift) > kMaxVtShiftVolts) {
      support::failParse(kSite, "vt shift " + tokens[5] + " outside +-" +
                                    std::to_string(kMaxVtShiftVolts) + " V",
                         lineNo);
    }
    c.kpScale = scaleValue(tokens[7], "kp scale", lineNo);
    c.gammaScale = scaleValue(tokens[9], "gamma scale", lineNo);
    if (corners.size() >= kMaxCorners) {
      support::failResource(kSite,
                            "more than " + std::to_string(kMaxCorners) +
                                " corners: " + pathForDiag,
                            lineNo);
    }
    corners.push_back(std::move(c));
  }
  if (!sawHeader) {
    support::failParse(kSite, "missing corners header: " + pathForDiag);
  }
  if (corners.empty()) {
    support::failParse(kSite, "corners file defines no corners: " +
                                  pathForDiag);
  }
  return corners;
}

std::vector<Corner> loadCornersFile(const std::string& path) {
  return parseCornersFile(
      support::readFileBounded(path, support::ReaderLimits{}.maxInputBytes,
                               kSite),
      path);
}

}  // namespace prox::cells
