#include "cells/complex_fixture.hpp"

#include <stdexcept>

#include "waveform/pwl.hpp"

namespace prox::cells {

ComplexCellFixture::ComplexCellFixture(ComplexCellSpec spec)
    : spec_(std::move(spec)) {
  nets_ = buildComplexCell(ckt_, spec_, "x0");
  for (int k = 0; k < static_cast<int>(nets_.inputs.size()); ++k) {
    drivers_.push_back(&ckt_.add<spice::VoltageSource>(
        "vin" + std::to_string(k), nets_.inputs[static_cast<std::size_t>(k)],
        spice::kGround, wave::constant(0.0)));
  }
}

void ComplexCellFixture::setInput(int k, wave::Waveform w) {
  if (k < 0 || k >= inputCount()) {
    throw std::out_of_range("ComplexCellFixture::setInput: bad input index");
  }
  drivers_[static_cast<std::size_t>(k)]->setWaveform(std::move(w));
}

void ComplexCellFixture::setInputConstant(int k, double v) {
  setInput(k, wave::constant(v));
}

void ComplexCellFixture::setLevels(const std::vector<bool>& levels) {
  if (static_cast<int>(levels.size()) != inputCount()) {
    throw std::invalid_argument("ComplexCellFixture::setLevels: size mismatch");
  }
  for (int k = 0; k < inputCount(); ++k) {
    setInputConstant(k, levels[static_cast<std::size_t>(k)] ? spec_.tech.vdd
                                                            : 0.0);
  }
}

spice::TranResult ComplexCellFixture::run(double tstop, double dvMax) const {
  spice::TranOptions opt;
  opt.tstop = tstop;
  opt.dvMax = dvMax;
  opt.hmax = tstop / 200.0;
  // Same chord widening + persistent workspace as CellFixture::run (see the
  // note there).
  opt.newton.chordDtRelTol = 0.5;
  opt.workspace = &ws_;
  return spice::transient(ckt_, opt);
}

wave::Waveform ComplexCellFixture::runOutput(double tstop, double dvMax) const {
  return run(tstop, dvMax).node(nets_.out);
}

}  // namespace prox::cells
