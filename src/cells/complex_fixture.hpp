#pragma once
// Stimulus fixture for complex (AOI/OAI) gates, mirroring CellFixture.
// Stable pins are driven to explicit logic levels (complex gates have no
// single "non-controlling" value -- sensitization is per-scenario).

#include <vector>

#include "cells/pull_network.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"

namespace prox::cells {

class ComplexCellFixture {
 public:
  explicit ComplexCellFixture(ComplexCellSpec spec);

  const ComplexCellSpec& spec() const { return spec_; }
  const CellNets& nets() const { return nets_; }
  int inputCount() const { return static_cast<int>(nets_.inputs.size()); }

  /// Drives input @p k with an arbitrary waveform.
  void setInput(int k, wave::Waveform w);

  /// Holds input @p k at a constant voltage.
  void setInputConstant(int k, double v);

  /// Holds every input at the given logic levels (true = Vdd).
  void setLevels(const std::vector<bool>& levels);

  spice::TranResult run(double tstop, double dvMax = 0.05) const;
  wave::Waveform runOutput(double tstop, double dvMax = 0.05) const;

 private:
  ComplexCellSpec spec_;
  mutable spice::Circuit ckt_;
  CellNets nets_;
  std::vector<spice::VoltageSource*> drivers_;
  // Solver workspace carried across run() calls: adjacent sweep points reuse
  // the symbolic LU analysis and all buffers (numerics reset per run).
  mutable spice::NewtonWorkspace ws_;
};

}  // namespace prox::cells
