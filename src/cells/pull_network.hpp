#pragma once
// General series-parallel pull networks: the building block for complex
// static CMOS gates (AOI/OAI families).  The paper develops its model on
// NAND/NOR examples but the methodology -- per-subset VTCs, dominance,
// dual-input composition -- only needs an inverting gate with a monotone
// pull network; this module supplies arbitrary such gates.
//
// A PullExpr describes the *pulldown* conduction function f over the input
// pins: the NMOS network realizes f between the output and ground, and the
// PMOS network realizes the structural dual (series <-> parallel) between
// Vdd and the output, giving out = NOT f(inputs).

#include <optional>
#include <string>
#include <vector>

#include "cells/cell.hpp"

namespace prox::cells {

class PullExpr {
 public:
  enum class Kind { Input, Series, Parallel };

  /// Leaf: the transistor gated by input @p pin.
  static PullExpr input(int pin);
  /// Conducts when every child conducts.
  static PullExpr series(std::vector<PullExpr> children);
  /// Conducts when any child conducts.
  static PullExpr parallel(std::vector<PullExpr> children);

  Kind kind() const { return kind_; }
  int pin() const { return pin_; }
  const std::vector<PullExpr>& children() const { return children_; }

  /// Largest pin index referenced (-1 for an empty expression).
  int maxPin() const;

  /// Number of transistors in the network.
  int transistorCount() const;

  /// Structural dual: series <-> parallel with the same leaves.
  PullExpr dual() const;

  /// Conduction for a given set of "transistor on" flags per pin.
  bool conducts(const std::vector<bool>& pinOn) const;

  /// Human-readable form, e.g. "(a.b)+c".
  std::string toString() const;

  /// Parses the toString() format back into an expression: pins are letters
  /// 'a'..'z' (pin = letter - 'a'), '.' is series, '+' is parallel, with
  /// parentheses for grouping; '.' binds tighter than '+'.  Throws
  /// std::invalid_argument on malformed input.
  static PullExpr parse(const std::string& text);

 private:
  PullExpr(Kind kind, int pin, std::vector<PullExpr> children)
      : kind_(kind), pin_(pin), children_(std::move(children)) {}

  Kind kind_;
  int pin_;
  std::vector<PullExpr> children_;
};

/// A complex inverting CMOS gate specification.
struct ComplexCellSpec {
  PullExpr pulldown = PullExpr::input(0);  ///< f: the NMOS conduction function
  Technology tech = Technology::generic5v();
  double wn = 6e-6;
  double wp = 8e-6;
  double loadCap = 100e-15;

  int pinCount() const { return pulldown.maxPin() + 1; }

  /// Logic output for the given input levels (true = high).
  bool outputFor(const std::vector<bool>& inputsHigh) const {
    return !pulldown.conducts(inputsHigh);
  }

  /// Stable levels for the *other* pins such that toggling every pin in
  /// @p subset together toggles the output (the condition for that subset's
  /// VTC to exist).  Pins in @p subset get placeholder `false` entries in
  /// the returned vector.  nullopt when no assignment sensitizes the subset.
  std::optional<std::vector<bool>> sensitizingAssignment(
      const std::vector<int>& subset) const;
};

/// Emits the transistor-level complex gate into @p ckt.  Same contract as
/// buildCell(): input pins are left undriven, the supply source and load
/// capacitor are created, parasitics attached.
CellNets buildComplexCell(spice::Circuit& ckt, const ComplexCellSpec& spec,
                          const std::string& prefix = "x0");

/// Standard complex cells.  Pin order: a=0, b=1, c=2, d=3.
ComplexCellSpec aoi21(Technology tech = Technology::generic5v());  // !((a.b)+c)
ComplexCellSpec oai21(Technology tech = Technology::generic5v());  // !((a+b).c)
ComplexCellSpec aoi22(Technology tech = Technology::generic5v());  // !((a.b)+(c.d))

}  // namespace prox::cells
