#include "cells/pull_network.hpp"

#include <algorithm>
#include <stdexcept>

namespace prox::cells {

PullExpr PullExpr::input(int pin) {
  if (pin < 0) throw std::invalid_argument("PullExpr::input: negative pin");
  return PullExpr(Kind::Input, pin, {});
}

PullExpr PullExpr::series(std::vector<PullExpr> children) {
  if (children.empty()) {
    throw std::invalid_argument("PullExpr::series: no children");
  }
  return PullExpr(Kind::Series, -1, std::move(children));
}

PullExpr PullExpr::parallel(std::vector<PullExpr> children) {
  if (children.empty()) {
    throw std::invalid_argument("PullExpr::parallel: no children");
  }
  return PullExpr(Kind::Parallel, -1, std::move(children));
}

int PullExpr::maxPin() const {
  if (kind_ == Kind::Input) return pin_;
  int m = -1;
  for (const PullExpr& c : children_) m = std::max(m, c.maxPin());
  return m;
}

int PullExpr::transistorCount() const {
  if (kind_ == Kind::Input) return 1;
  int n = 0;
  for (const PullExpr& c : children_) n += c.transistorCount();
  return n;
}

PullExpr PullExpr::dual() const {
  if (kind_ == Kind::Input) return *this;
  std::vector<PullExpr> duals;
  duals.reserve(children_.size());
  for (const PullExpr& c : children_) duals.push_back(c.dual());
  return PullExpr(kind_ == Kind::Series ? Kind::Parallel : Kind::Series, -1,
                  std::move(duals));
}

bool PullExpr::conducts(const std::vector<bool>& pinOn) const {
  switch (kind_) {
    case Kind::Input:
      return pin_ < static_cast<int>(pinOn.size()) &&
             pinOn[static_cast<std::size_t>(pin_)];
    case Kind::Series:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const PullExpr& c) { return c.conducts(pinOn); });
    case Kind::Parallel:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const PullExpr& c) { return c.conducts(pinOn); });
  }
  return false;
}

std::string PullExpr::toString() const {
  if (kind_ == Kind::Input) {
    return std::string(1, static_cast<char>('a' + pin_));
  }
  const char* sep = kind_ == Kind::Series ? "." : "+";
  std::string out = "(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i].toString();
  }
  out += ")";
  return out;
}

namespace {

// Recursive-descent parser for the toString() grammar:
//   expr   := term ('+' term)*
//   term   := factor ('.' factor)*
//   factor := pin | '(' expr ')'
struct Parser {
  const std::string& s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("PullExpr::parse: " + msg + " at position " +
                                std::to_string(pos) + " in '" + s + "'");
  }

  char peek() const { return pos < s.size() ? s[pos] : '\0'; }
  void skipSpace() {
    while (pos < s.size() && s[pos] == ' ') ++pos;
  }

  PullExpr factor() {
    skipSpace();
    const char c = peek();
    if (c == '(') {
      ++pos;
      PullExpr e = expr();
      skipSpace();
      if (peek() != ')') fail("expected ')'");
      ++pos;
      return e;
    }
    if (c >= 'a' && c <= 'z') {
      ++pos;
      return PullExpr::input(c - 'a');
    }
    fail("expected pin letter or '('");
  }

  PullExpr term() {
    std::vector<PullExpr> parts{factor()};
    skipSpace();
    while (peek() == '.') {
      ++pos;
      parts.push_back(factor());
      skipSpace();
    }
    return parts.size() == 1 ? parts[0] : PullExpr::series(std::move(parts));
  }

  PullExpr expr() {
    std::vector<PullExpr> parts{term()};
    skipSpace();
    while (peek() == '+') {
      ++pos;
      parts.push_back(term());
      skipSpace();
    }
    return parts.size() == 1 ? parts[0] : PullExpr::parallel(std::move(parts));
  }
};

}  // namespace

PullExpr PullExpr::parse(const std::string& text) {
  Parser p{text};
  PullExpr e = p.expr();
  p.skipSpace();
  if (p.pos != text.size()) p.fail("trailing characters");
  return e;
}

std::optional<std::vector<bool>> ComplexCellSpec::sensitizingAssignment(
    const std::vector<int>& subset) const {
  const int n = pinCount();
  for (int pin : subset) {
    if (pin < 0 || pin >= n) {
      throw std::invalid_argument("sensitizingAssignment: pin out of range");
    }
  }
  // Brute force over the other pins' levels: the subset is sensitized when
  // driving all its pins low vs high produces different outputs.  Complex
  // cells have a handful of pins, so 2^n enumeration is immaterial.
  std::vector<int> others;
  for (int p = 0; p < n; ++p) {
    if (std::find(subset.begin(), subset.end(), p) == subset.end()) {
      others.push_back(p);
    }
  }
  for (unsigned mask = 0; mask < (1u << others.size()); ++mask) {
    std::vector<bool> levels(static_cast<std::size_t>(n), false);
    for (std::size_t i = 0; i < others.size(); ++i) {
      levels[static_cast<std::size_t>(others[i])] = (mask >> i) & 1u;
    }
    std::vector<bool> low = levels;
    std::vector<bool> high = levels;
    for (int p : subset) {
      low[static_cast<std::size_t>(p)] = false;
      high[static_cast<std::size_t>(p)] = true;
    }
    if (outputFor(low) != outputFor(high)) return levels;
  }
  return std::nullopt;
}

namespace {

/// Recursively emits one transistor network for @p expr between @p top and
/// @p bottom.  @p params is the per-device template (NMOS or PMOS); @p body
/// the body node; @p counter provides unique device/internal-node names.
void emitNetwork(spice::Circuit& ckt, const PullExpr& expr,
                 const std::vector<spice::NodeId>& inputs, spice::NodeId top,
                 spice::NodeId bottom, const spice::MosfetParams& params,
                 spice::NodeId body, const Technology& tech, double width,
                 const std::string& prefix, int* counter,
                 std::vector<spice::NodeId>* internals) {
  switch (expr.kind()) {
    case PullExpr::Kind::Input: {
      const std::string name = prefix + ".m" + std::to_string((*counter)++);
      ckt.add<spice::Mosfet>(name, top,
                             inputs[static_cast<std::size_t>(expr.pin())],
                             bottom, body, params);
      const double cov = tech.overlapCapPerWidth * width;
      const double cj = tech.junctionCapPerWidth * width;
      if (cov > 0.0) {
        ckt.add<spice::Capacitor>(name + ".cgd",
                                  inputs[static_cast<std::size_t>(expr.pin())],
                                  top, cov);
        ckt.add<spice::Capacitor>(name + ".cgs",
                                  inputs[static_cast<std::size_t>(expr.pin())],
                                  bottom, cov);
      }
      if (cj > 0.0) {
        if (top != spice::kGround) {
          ckt.add<spice::Capacitor>(name + ".cjd", top, spice::kGround, cj);
        }
        if (bottom != spice::kGround) {
          ckt.add<spice::Capacitor>(name + ".cjs", bottom, spice::kGround, cj);
        }
      }
      return;
    }
    case PullExpr::Kind::Series: {
      spice::NodeId upper = top;
      const auto& kids = expr.children();
      for (std::size_t i = 0; i < kids.size(); ++i) {
        const spice::NodeId lower =
            i + 1 == kids.size()
                ? bottom
                : ckt.node(prefix + ".n" + std::to_string((*counter)++));
        if (i + 1 != kids.size()) internals->push_back(lower);
        emitNetwork(ckt, kids[i], inputs, upper, lower, params, body, tech,
                    width, prefix, counter, internals);
        upper = lower;
      }
      return;
    }
    case PullExpr::Kind::Parallel: {
      for (const PullExpr& kid : expr.children()) {
        emitNetwork(ckt, kid, inputs, top, bottom, params, body, tech, width,
                    prefix, counter, internals);
      }
      return;
    }
  }
}

}  // namespace

CellNets buildComplexCell(spice::Circuit& ckt, const ComplexCellSpec& spec,
                          const std::string& prefix) {
  const int n = spec.pinCount();
  if (n < 1) throw std::invalid_argument("buildComplexCell: no inputs");

  CellNets nets;
  nets.vdd = ckt.node(prefix + ".vdd");
  nets.out = ckt.node(prefix + ".out");
  nets.vddSource = &ckt.add<spice::VoltageSource>(prefix + ".vvdd", nets.vdd,
                                                  spice::kGround, spec.tech.vdd);
  nets.load = &ckt.add<spice::Capacitor>(prefix + ".cload", nets.out,
                                         spice::kGround, spec.loadCap);
  for (int k = 0; k < n; ++k) {
    nets.inputs.push_back(ckt.node(prefix + ".in" + std::to_string(k)));
  }

  spice::MosfetParams nP = spec.tech.nmos;
  nP.w = spec.wn;
  spice::MosfetParams pP = spec.tech.pmos;
  pP.w = spec.wp;

  int counter = 0;
  // NMOS network: f between out and ground.
  emitNetwork(ckt, spec.pulldown, nets.inputs, nets.out, spice::kGround, nP,
              spice::kGround, spec.tech, spec.wn, prefix + ".pd", &counter,
              &nets.internals);
  // PMOS network: the dual between Vdd and out.
  counter = 0;
  emitNetwork(ckt, spec.pulldown.dual(), nets.inputs, nets.vdd, nets.out, pP,
              nets.vdd, spec.tech, spec.wp, prefix + ".pu", &counter,
              &nets.internals);
  return nets;
}

ComplexCellSpec aoi21(Technology tech) {
  ComplexCellSpec s;
  s.pulldown = PullExpr::parallel(
      {PullExpr::series({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::input(2)});
  s.tech = tech;
  return s;
}

ComplexCellSpec oai21(Technology tech) {
  ComplexCellSpec s;
  s.pulldown = PullExpr::series(
      {PullExpr::parallel({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::input(2)});
  s.tech = tech;
  return s;
}

ComplexCellSpec aoi22(Technology tech) {
  ComplexCellSpec s;
  s.pulldown = PullExpr::parallel(
      {PullExpr::series({PullExpr::input(0), PullExpr::input(1)}),
       PullExpr::series({PullExpr::input(2), PullExpr::input(3)})});
  s.tech = tech;
  return s;
}

}  // namespace prox::cells
