#include "cells/cell.hpp"

#include <stdexcept>

namespace prox::cells {

namespace {

/// Adds overlap (gate-drain, gate-source) coupling caps for one transistor
/// plus a junction cap contribution at its drain and source nodes.
void addParasitics(spice::Circuit& ckt, const std::string& name,
                   const Technology& tech, double w, spice::NodeId d,
                   spice::NodeId g, spice::NodeId s) {
  const double cov = tech.overlapCapPerWidth * w;
  const double cj = tech.junctionCapPerWidth * w;
  if (cov > 0.0) {
    ckt.add<spice::Capacitor>(name + ".cgd", g, d, cov);
    ckt.add<spice::Capacitor>(name + ".cgs", g, s, cov);
  }
  if (cj > 0.0) {
    if (d != spice::kGround) ckt.add<spice::Capacitor>(name + ".cjd", d, spice::kGround, cj);
    if (s != spice::kGround) ckt.add<spice::Capacitor>(name + ".cjs", s, spice::kGround, cj);
  }
}

}  // namespace

std::string gateTypeName(GateType type, int fanin) {
  switch (type) {
    case GateType::Inverter: return "INV";
    case GateType::Nand: return "NAND" + std::to_string(fanin);
    case GateType::Nor: return "NOR" + std::to_string(fanin);
    case GateType::Complex: return "COMPLEX" + std::to_string(fanin);
  }
  return "?";
}

double CellSpec::nonControllingLevel() const {
  return type == GateType::Nor ? 0.0 : tech.vdd;
}

wave::Edge CellSpec::outputEdgeFor(wave::Edge inputEdge) const {
  // Inverter, NAND and NOR all invert the switching input's direction.
  return wave::opposite(inputEdge);
}

CellNets buildCell(spice::Circuit& ckt, const CellSpec& spec,
                   const std::string& prefix) {
  if (spec.type == GateType::Complex) {
    throw std::invalid_argument(
        "buildCell: use buildComplexCell for complex gates");
  }
  const int n = spec.type == GateType::Inverter ? 1 : spec.fanin;
  if (n < 1) throw std::invalid_argument("buildCell: fanin must be >= 1");
  if (spec.type == GateType::Inverter && spec.fanin != 1) {
    throw std::invalid_argument("buildCell: inverter has exactly one input");
  }

  CellNets nets;
  nets.vdd = ckt.node(prefix + ".vdd");
  nets.out = ckt.node(prefix + ".out");
  nets.vddSource = &ckt.add<spice::VoltageSource>(prefix + ".vvdd", nets.vdd,
                                                  spice::kGround, spec.tech.vdd);
  nets.load = &ckt.add<spice::Capacitor>(prefix + ".cload", nets.out,
                                         spice::kGround, spec.loadCap);

  for (int k = 0; k < n; ++k) {
    nets.inputs.push_back(ckt.node(prefix + ".in" + std::to_string(k)));
  }

  spice::MosfetParams nP = spec.tech.nmos;
  nP.w = spec.wn;
  spice::MosfetParams pP = spec.tech.pmos;
  pP.w = spec.wp;

  const bool nandLike = spec.type != GateType::Nor;  // series NMOS, parallel PMOS

  if (spec.type == GateType::Inverter) {
    auto& mn = ckt.add<spice::Mosfet>(prefix + ".mn0", nets.out, nets.inputs[0],
                                      spice::kGround, spice::kGround, nP);
    auto& mp = ckt.add<spice::Mosfet>(prefix + ".mp0", nets.out, nets.inputs[0],
                                      nets.vdd, nets.vdd, pP);
    nets.nmosByInput.push_back(&mn);
    addParasitics(ckt, prefix + ".mn0", spec.tech, spec.wn, nets.out,
                  nets.inputs[0], spice::kGround);
    addParasitics(ckt, prefix + ".mp0", spec.tech, spec.wp, nets.out,
                  nets.inputs[0], nets.vdd);
    (void)mp;
    return nets;
  }

  // Series stack (NMOS for NAND, PMOS for NOR): input 0 nearest the output.
  {
    const spice::NodeId rail = nandLike ? spice::kGround : nets.vdd;
    const spice::MosfetParams& sp = nandLike ? nP : pP;
    const double w = nandLike ? spec.wn : spec.wp;
    spice::NodeId upper = nets.out;
    for (int k = 0; k < n; ++k) {
      const spice::NodeId lower =
          k == n - 1 ? rail
                     : ckt.node(prefix + ".s" + std::to_string(k));
      if (k != n - 1) nets.internals.push_back(lower);
      const std::string mname =
          prefix + (nandLike ? ".mn" : ".mp") + std::to_string(k);
      // Drain is the node nearer the output for NMOS; for the PMOS stack the
      // source is nearer Vdd.  The device is symmetric, so wire drain=upper.
      auto& m = ckt.add<spice::Mosfet>(mname, upper, nets.inputs[k], lower,
                                       nandLike ? spice::kGround : nets.vdd, sp);
      if (nandLike) nets.nmosByInput.push_back(&m);
      addParasitics(ckt, mname, spec.tech, w, upper, nets.inputs[k], lower);
      upper = lower;
    }
  }

  // Parallel bank (PMOS for NAND, NMOS for NOR).
  {
    const spice::NodeId rail = nandLike ? nets.vdd : spice::kGround;
    const spice::MosfetParams& pp = nandLike ? pP : nP;
    const double w = nandLike ? spec.wp : spec.wn;
    for (int k = 0; k < n; ++k) {
      const std::string mname =
          prefix + (nandLike ? ".mp" : ".mn") + std::to_string(k);
      auto& m = ckt.add<spice::Mosfet>(mname, nets.out, nets.inputs[k], rail,
                                       rail, pp);
      if (!nandLike) nets.nmosByInput.push_back(&m);
      addParasitics(ckt, mname, spec.tech, w, nets.out, nets.inputs[k], rail);
    }
  }

  return nets;
}

}  // namespace prox::cells
