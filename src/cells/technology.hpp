#pragma once
// Process technology description.  The paper characterizes a 5 V, ~0.8 um
// CMOS process with HSPICE; the exact foundry parameters are not published,
// so we define a representative generic process of the same era.  Every
// threshold and macromodel in this library is *re-characterized* from the
// simulator for whatever Technology is plugged in, exactly as the paper's
// flow prescribes, so the specific constants only set the absolute time
// scale, not the phenomena.

#include "spice/mosfet.hpp"

namespace prox::cells {

struct Technology {
  double vdd = 5.0;  ///< supply voltage [V]

  spice::MosfetParams nmos;  ///< template NMOS (W set per cell)
  spice::MosfetParams pmos;  ///< template PMOS (W set per cell)

  double coxPerArea = 2.3e-3;       ///< gate-oxide capacitance [F/m^2]
  double overlapCapPerWidth = 0.2e-9;  ///< gate-drain/source overlap [F/m]
  double junctionCapPerWidth = 0.5e-9; ///< drain/source junction [F/m]

  /// Generic 5 V / 0.8 um CMOS process (defaults above), with body effect
  /// enabled so series stacks show the threshold shifts the proximity model
  /// reacts to.
  static Technology generic5v();

  /// A 3.3 V submicron-flavoured process using the alpha-power-law device
  /// equations (velocity saturation, alpha ~ 1.3).  Demonstrates the paper's
  /// claim that the modeling approach "is not limited to CMOS [level-1]
  /// technology alone": the whole characterization flow re-runs unchanged.
  static Technology submicron3v();

  /// Gate capacitance of a W x L transistor [F].
  double gateCap(double w, double l) const { return coxPerArea * w * l; }
};

}  // namespace prox::cells
