#pragma once
// PVT corner specifications over a Technology.
//
// A Corner is a small, named perturbation of a base process: supply scale,
// threshold-magnitude shift, transconductance (K') scale and body-effect
// (gamma) scale.  Characterizing the same cell under each corner of a set
// yields the multi-corner model bundle the fleet layer assembles; STA then
// picks (or degrades to) the corner closest to its operating point.
//
// The perturbations are *relative* to whatever base Technology is plugged in
// (generic5v, submicron3v, ...), so one corners file serves every process:
//   vdd   -- multiplies Technology::vdd            (1.0 = nominal)
//   vt    -- adds to |vt0| of both devices [V]     (0.0 = nominal; slow > 0)
//   kp    -- multiplies kp of both devices         (1.0 = nominal; slow < 1)
//   gamma -- multiplies gamma of both devices      (1.0 = nominal)
//
// Corners files cross a trust boundary (hand-edited text), so the parser
// follows the DESIGN.md section 7 rules: bounded input size, capped corner
// count, overflow-checked numeric conversions, typed DiagnosticError on any
// malformation -- never a crash or an unbounded allocation.
//
// Grammar (line-oriented; '#' starts a comment; blank lines ignored):
//   proxcorners 1
//   corner <name> vdd <scale> vt <shift_v> kp <scale> gamma <scale>
// Corner names are unique, [A-Za-z0-9_.-]+, at most 64 bytes.

#include <string>
#include <vector>

#include "cells/technology.hpp"

namespace prox::cells {

struct Corner {
  std::string name;        ///< unique identifier ("tt", "ss", ...)
  double vddScale = 1.0;   ///< multiplies Technology::vdd
  double vtShift = 0.0;    ///< adds to |vt0| of both devices [V]
  double kpScale = 1.0;    ///< multiplies kp of both devices
  double gammaScale = 1.0; ///< multiplies gamma of both devices
};

/// The base technology perturbed by @p corner.  vtShift moves the threshold
/// *magnitude*: nmos.vt0 += shift, pmos.vt0 -= shift (PMOS vt0 is negative),
/// so a positive shift slows both networks.
Technology applyCorner(const Technology& base, const Corner& corner);

/// The default five-corner set: tt (typical), ss (slow/slow), ff (fast/fast),
/// and the two supply corners sl (slow, low Vdd) / fh (fast, high Vdd).  A
/// deliberate spread, not foundry data: the paper's flow re-characterizes
/// from the simulator for whatever parameters are plugged in.
std::vector<Corner> defaultCorners();

/// Normalized distance between two corners over (vddScale, vtShift, kpScale,
/// gammaScale) -- the metric the bundle loader minimizes when degrading a
/// missing corner to the nearest characterized one.  vtShift is weighted in
/// volts-per-supply-ish units (x1) against the dimensionless scales; exact
/// weights only matter for ties, and ties break by corner order.
double cornerDistance(const Corner& a, const Corner& b);

/// Caps enforced by the corners-file parser.
inline constexpr std::size_t kMaxCorners = 256;
inline constexpr std::size_t kMaxCornerNameBytes = 64;

/// Parses a corners file (grammar above) from @p text; @p pathForDiag labels
/// diagnostics.  Throws support::DiagnosticError (ParseError /
/// ResourceExhausted) per the trust-boundary rules; the returned set is
/// non-empty with unique names and finite, range-checked values.
std::vector<Corner> parseCornersFile(const std::string& text,
                                     const std::string& pathForDiag);

/// readFileBounded + parseCornersFile.
std::vector<Corner> loadCornersFile(const std::string& path);

}  // namespace prox::cells
