#pragma once
// A characterization fixture: one cell, one ideal PWL driver per input, the
// supply, and the output load.  This mirrors the paper's experimental setup
// ("piecewise-linear inputs were used ... to precisely control the
// separations and rise times", Section 5).
//
// The fixture is reusable: change the stimulus and re-run; the transient
// analysis re-derives its initial condition from the new t=0 operating point.

#include <vector>

#include "cells/cell.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"

namespace prox::cells {

class CellFixture {
 public:
  explicit CellFixture(CellSpec spec);

  const CellSpec& spec() const { return spec_; }
  const CellNets& nets() const { return nets_; }
  spice::Circuit& circuit() { return ckt_; }

  int inputCount() const { return static_cast<int>(nets_.inputs.size()); }

  /// Drives input @p k with an arbitrary waveform.
  void setInput(int k, wave::Waveform w);

  /// Holds input @p k at a constant level.
  void setInputConstant(int k, double v);

  /// Holds every input at the gate's non-controlling level.
  void setAllNonControlling();

  /// Runs a transient to @p tstop and returns the full result.
  /// @p dvMax tightens/loosens sampling density (volts per step).
  spice::TranResult run(double tstop, double dvMax = 0.05) const;

  /// Convenience: runs and returns just the output waveform.
  wave::Waveform runOutput(double tstop, double dvMax = 0.05) const;

 private:
  CellSpec spec_;
  mutable spice::Circuit ckt_;
  CellNets nets_;
  std::vector<spice::VoltageSource*> drivers_;
  // Solver workspace carried across run() calls: adjacent sweep points reuse
  // the symbolic LU analysis and all buffers (numerics reset per run).
  mutable spice::NewtonWorkspace ws_;
};

}  // namespace prox::cells
