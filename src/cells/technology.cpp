#include "cells/technology.hpp"

namespace prox::cells {

Technology Technology::generic5v() {
  Technology t;
  t.vdd = 5.0;

  t.nmos.nmos = true;
  t.nmos.kp = 60e-6;
  t.nmos.vt0 = 0.8;
  t.nmos.lambda = 0.02;
  t.nmos.gamma = 0.40;
  t.nmos.phi = 0.65;
  t.nmos.l = 0.8e-6;
  t.nmos.w = 4e-6;

  t.pmos.nmos = false;
  t.pmos.kp = 25e-6;
  t.pmos.vt0 = -0.9;
  t.pmos.lambda = 0.04;
  t.pmos.gamma = 0.45;
  t.pmos.phi = 0.65;
  t.pmos.l = 0.8e-6;
  t.pmos.w = 8e-6;

  return t;
}

Technology Technology::submicron3v() {
  Technology t;
  t.vdd = 3.3;

  t.nmos.nmos = true;
  t.nmos.equation = spice::MosEquation::AlphaPower;
  t.nmos.kp = 120e-6;  // used only for the normalized-coordinate strength
  t.nmos.vt0 = 0.55;
  t.nmos.lambda = 0.04;
  t.nmos.gamma = 0.30;
  t.nmos.phi = 0.60;
  t.nmos.l = 0.35e-6;
  t.nmos.w = 2e-6;
  t.nmos.alpha = 1.3;
  t.nmos.pc = 55e-6;
  t.nmos.pv = 0.9;

  t.pmos.nmos = false;
  t.pmos.equation = spice::MosEquation::AlphaPower;
  t.pmos.kp = 45e-6;
  t.pmos.vt0 = -0.6;
  t.pmos.lambda = 0.06;
  t.pmos.gamma = 0.35;
  t.pmos.phi = 0.60;
  t.pmos.l = 0.35e-6;
  t.pmos.w = 4e-6;
  t.pmos.alpha = 1.4;
  t.pmos.pc = 22e-6;
  t.pmos.pv = 0.8;

  t.coxPerArea = 4.5e-3;          // thinner oxide
  t.overlapCapPerWidth = 0.25e-9;
  t.junctionCapPerWidth = 0.6e-9;
  return t;
}

}  // namespace prox::cells
