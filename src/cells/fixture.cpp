#include "cells/fixture.hpp"

#include <stdexcept>

#include "waveform/pwl.hpp"

namespace prox::cells {

CellFixture::CellFixture(CellSpec spec) : spec_(spec) {
  nets_ = buildCell(ckt_, spec_, "x0");
  const double nc = spec_.nonControllingLevel();
  for (int k = 0; k < static_cast<int>(nets_.inputs.size()); ++k) {
    drivers_.push_back(&ckt_.add<spice::VoltageSource>(
        "vin" + std::to_string(k), nets_.inputs[k], spice::kGround,
        wave::constant(nc)));
  }
}

void CellFixture::setInput(int k, wave::Waveform w) {
  if (k < 0 || k >= inputCount()) {
    throw std::out_of_range("CellFixture::setInput: bad input index");
  }
  drivers_[static_cast<std::size_t>(k)]->setWaveform(std::move(w));
}

void CellFixture::setInputConstant(int k, double v) {
  setInput(k, wave::constant(v));
}

void CellFixture::setAllNonControlling() {
  for (int k = 0; k < inputCount(); ++k) {
    setInputConstant(k, spec_.nonControllingLevel());
  }
}

spice::TranResult CellFixture::run(double tstop, double dvMax) const {
  spice::TranOptions opt;
  opt.tstop = tstop;
  opt.dvMax = dvMax;
  opt.hmax = tstop / 200.0;
  // Chord widening: the adaptive stepper rarely repeats a dt exactly, so
  // let the same-Jacobian fast path tolerate a 50% dt drift (the iterate
  // guard still applies).  Together with the persistent workspace this
  // keeps the sweep's hot loop free of symbolic analysis and allocation.
  opt.newton.chordDtRelTol = 0.5;
  opt.workspace = &ws_;
  return spice::transient(ckt_, opt);
}

wave::Waveform CellFixture::runOutput(double tstop, double dvMax) const {
  return run(tstop, dvMax).node(nets_.out);
}

}  // namespace prox::cells
