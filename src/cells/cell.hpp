#pragma once
// Parameterized CMOS cell generators: inverter, NAND-n, NOR-n for arbitrary
// fan-in.  The generators emit transistor-level circuits (level-1 MOSFETs plus
// overlap and junction parasitics) into a spice::Circuit.
//
// Input-index convention for series stacks:
//   * NAND-n: input 0 drives the NMOS *closest to the output*; input n-1
//     drives the NMOS closest to ground.
//   * NOR-n: input 0 drives the PMOS *closest to the output*; input n-1
//     drives the PMOS closest to Vdd.
// Stack position matters: the bottom transistors see body-effect threshold
// shifts and their single-input delays differ, which is exactly the
// per-input asymmetry the paper's dominance ordering accounts for.

#include <string>
#include <vector>

#include "cells/technology.hpp"
#include "spice/capacitor.hpp"
#include "spice/circuit.hpp"
#include "spice/mosfet.hpp"
#include "spice/vsource.hpp"
#include "waveform/waveform.hpp"

namespace prox::cells {

enum class GateType {
  Inverter,
  Nand,
  Nor,
  Complex,  ///< series-parallel AOI/OAI gate (see cells/pull_network.hpp)
};

/// Human-readable cell name, e.g. "NAND3".
std::string gateTypeName(GateType type, int fanin);

/// Specification of a cell instance to generate.
struct CellSpec {
  GateType type = GateType::Nand;
  int fanin = 2;                 ///< 1 for inverter
  Technology tech = Technology::generic5v();
  double wn = 6e-6;              ///< NMOS width [m]
  double wp = 8e-6;              ///< PMOS width [m]
  double loadCap = 100e-15;      ///< lumped output load [F]

  /// The input level at which a stable input does not control the output
  /// (Vdd for NAND/inverter contexts, 0 for NOR).
  double nonControllingLevel() const;

  /// The output edge caused by inputs moving with edge @p inputEdge toward /
  /// away from the controlling value (all our gates invert).
  wave::Edge outputEdgeFor(wave::Edge inputEdge) const;
};

/// Handle to the generated transistor netlist.
struct CellNets {
  spice::NodeId vdd = spice::kGround;
  spice::NodeId out = spice::kGround;
  std::vector<spice::NodeId> inputs;      ///< one node per input pin
  std::vector<spice::NodeId> internals;   ///< series-stack internal nodes
  std::vector<spice::Mosfet*> nmosByInput;  ///< pulldown device of input k
  spice::VoltageSource* vddSource = nullptr;
  spice::Capacitor* load = nullptr;
};

/// Emits the transistors, parasitics, supply source and load capacitor for
/// @p spec into @p ckt.  Input pins are left undriven (callers attach PWL
/// sources or other gates).  @p prefix namespaces the node/device names so
/// multiple cells can coexist in one circuit.
CellNets buildCell(spice::Circuit& ckt, const CellSpec& spec,
                   const std::string& prefix = "x0");

}  // namespace prox::cells
