#include "waveform/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace prox::wave {

Edge opposite(Edge e) { return e == Edge::Rising ? Edge::Falling : Edge::Rising; }

Waveform::Waveform(std::vector<Sample> samples) : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (!(samples_[i].t > samples_[i - 1].t)) {
      throw std::invalid_argument("Waveform: sample times must strictly increase");
    }
  }
}

void Waveform::append(double t, double v) {
  if (!samples_.empty()) {
    const double last = samples_.back().t;
    if (t < last) {
      throw std::invalid_argument("Waveform::append: time moved backwards");
    }
    if (t == last) {
      samples_.back().v = v;  // collapse duplicate time points
      return;
    }
  }
  samples_.push_back({t, v});
}

double Waveform::startTime() const {
  if (samples_.empty()) throw std::runtime_error("Waveform: empty");
  return samples_.front().t;
}

double Waveform::endTime() const {
  if (samples_.empty()) throw std::runtime_error("Waveform: empty");
  return samples_.back().t;
}

double Waveform::value(double t) const {
  if (samples_.empty()) throw std::runtime_error("Waveform::value: empty");
  if (t <= samples_.front().t) return samples_.front().v;
  if (t >= samples_.back().t) return samples_.back().v;
  // Binary search for the segment containing t.
  auto it = std::upper_bound(samples_.begin(), samples_.end(), t,
                             [](double tt, const Sample& s) { return tt < s.t; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  const double f = (t - lo.t) / (hi.t - lo.t);
  return lo.v + f * (hi.v - lo.v);
}

namespace {

// Returns the crossing time of `level` inside segment [a, b] when moving in
// direction `edge`, or nullopt when the segment does not cross it that way.
// A crossing requires the level to be strictly inside the segment's value
// span in the requested direction (touching counts when leaving the level).
std::optional<double> segmentCrossing(const Sample& a, const Sample& b,
                                      double level, Edge edge) {
  const bool rising = edge == Edge::Rising;
  if (rising) {
    if (a.v < level && b.v >= level) {
      const double f = (level - a.v) / (b.v - a.v);
      return a.t + f * (b.t - a.t);
    }
  } else {
    if (a.v > level && b.v <= level) {
      const double f = (level - a.v) / (b.v - a.v);
      return a.t + f * (b.t - a.t);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> Waveform::crossing(double level, Edge edge,
                                         double tFrom) const {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    if (b.t < tFrom) continue;
    if (auto tc = segmentCrossing(a, b, level, edge); tc && *tc >= tFrom) {
      return tc;
    }
  }
  return std::nullopt;
}

std::optional<double> Waveform::crossing(double level, Edge edge) const {
  if (samples_.empty()) return std::nullopt;
  return crossing(level, edge, samples_.front().t);
}

std::optional<double> Waveform::lastCrossing(double level, Edge edge) const {
  std::optional<double> found;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (auto tc = segmentCrossing(samples_[i - 1], samples_[i], level, edge)) {
      found = tc;
    }
  }
  return found;
}

std::vector<double> Waveform::allCrossings(double level, Edge edge) const {
  std::vector<double> out;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (auto tc = segmentCrossing(samples_[i - 1], samples_[i], level, edge)) {
      out.push_back(*tc);
    }
  }
  return out;
}

double Waveform::minValue() const {
  if (samples_.empty()) throw std::runtime_error("Waveform::minValue: empty");
  double m = samples_.front().v;
  for (const Sample& s : samples_) m = std::min(m, s.v);
  return m;
}

double Waveform::maxValue() const {
  if (samples_.empty()) throw std::runtime_error("Waveform::maxValue: empty");
  double m = samples_.front().v;
  for (const Sample& s : samples_) m = std::max(m, s.v);
  return m;
}

double Waveform::minValue(double t0, double t1) const {
  double m = value(t0);
  m = std::min(m, value(t1));
  for (const Sample& s : samples_) {
    if (s.t > t0 && s.t < t1) m = std::min(m, s.v);
  }
  return m;
}

double Waveform::maxValue(double t0, double t1) const {
  double m = value(t0);
  m = std::max(m, value(t1));
  for (const Sample& s : samples_) {
    if (s.t > t0 && s.t < t1) m = std::max(m, s.v);
  }
  return m;
}

Waveform Waveform::shifted(double dt) const {
  std::vector<Sample> s = samples_;
  for (Sample& x : s) x.t += dt;
  return Waveform(std::move(s));
}

std::ostream& operator<<(std::ostream& os, const Waveform& w) {
  os << "Waveform[" << w.size() << " pts";
  if (!w.empty()) {
    os << ", t=" << w.startTime() << ".." << w.endTime();
  }
  os << "]";
  return os;
}

}  // namespace prox::wave
