#include "waveform/pwl.hpp"

#include <algorithm>
#include <stdexcept>

namespace prox::wave {

namespace {
constexpr double kMinRamp = 1e-15;  // 1 fs: stand-in slope for ideal steps
}

Waveform ramp(double tStart, double tau, double v0, double v1) {
  if (tau < 0.0) throw std::invalid_argument("pwl::ramp: negative tau");
  const double dur = std::max(tau, kMinRamp);
  Waveform w;
  w.append(tStart, v0);
  w.append(tStart + dur, v1);
  return w;
}

Waveform risingRamp(double tStart, double tau, double vdd) {
  return ramp(tStart, tau, 0.0, vdd);
}

Waveform fallingRamp(double tStart, double tau, double vdd) {
  return ramp(tStart, tau, vdd, 0.0);
}

Waveform constant(double v) {
  Waveform w;
  w.append(0.0, v);
  return w;
}

Waveform pulse(double tStart, double tauRise, double width, double tauFall,
               double vBase, double vPulse) {
  if (tauRise < 0.0 || tauFall < 0.0 || width < 0.0) {
    throw std::invalid_argument("pwl::pulse: negative duration");
  }
  const double r = std::max(tauRise, kMinRamp);
  const double f = std::max(tauFall, kMinRamp);
  Waveform w;
  w.append(tStart, vBase);
  w.append(tStart + r, vPulse);
  w.append(tStart + r + std::max(width, kMinRamp), vPulse);
  w.append(tStart + r + std::max(width, kMinRamp) + f, vBase);
  return w;
}

}  // namespace prox::wave
