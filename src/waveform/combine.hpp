#pragma once
// Pointwise combination of PWL waveforms.  Used by the collapsed-inverter
// baseline: the conduction condition of a series stack follows the pointwise
// minimum of its gate voltages (all inputs high <=> min high), a parallel
// bank follows the maximum.

#include <vector>

#include "waveform/waveform.hpp"

namespace prox::wave {

/// Exact pointwise minimum of the given waveforms (clamped outside each
/// waveform's sampled range).  The result contains every input breakpoint
/// plus every pairwise segment crossing, so it is exact for PWL inputs.
Waveform pointwiseMin(const std::vector<Waveform>& ws);

/// Exact pointwise maximum.
Waveform pointwiseMax(const std::vector<Waveform>& ws);

}  // namespace prox::wave
