#pragma once
// Builders for the piecewise-linear stimulus waveforms used throughout the
// paper's experiments: full-swing ramps with controlled start time and
// transition time, steps, and pulses.
//
// Convention (matches Section 5 of the paper): the *transition time* tau of a
// PWL input is the full-swing ramp duration, i.e. the signal moves linearly
// from one rail to the other over exactly tau seconds starting at tStart.

#include "waveform/waveform.hpp"

namespace prox::wave {

/// A full-swing ramp from @p v0 to @p v1 starting at @p tStart and lasting
/// @p tau seconds.  The waveform holds v0 before tStart and v1 afterwards.
/// tau == 0 produces an (almost) ideal step with a 1 fs ramp so that the
/// representation stays strictly monotone in time.
Waveform ramp(double tStart, double tau, double v0, double v1);

/// Rising rail-to-rail ramp 0 -> vdd.
Waveform risingRamp(double tStart, double tau, double vdd);

/// Falling rail-to-rail ramp vdd -> 0.
Waveform fallingRamp(double tStart, double tau, double vdd);

/// A constant waveform at @p v (a single sample at t = 0; evaluation clamps).
Waveform constant(double v);

/// A pulse: starts at @p vBase, ramps to @p vPulse over @p tauRise beginning
/// at @p tStart, holds for @p width, then ramps back over @p tauFall.
Waveform pulse(double tStart, double tauRise, double width, double tauFall,
               double vBase, double vPulse);

}  // namespace prox::wave
