#pragma once
// Piecewise-linear waveforms: the common currency between the circuit
// simulator (which produces sampled node voltages) and the proximity model
// (which measures threshold crossings, transition times and separations).

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <vector>

namespace prox::wave {

/// One (time, value) sample of a waveform.
struct Sample {
  double t = 0.0;
  double v = 0.0;
};

/// Direction of a signal transition or a threshold crossing.
enum class Edge { Rising, Falling };

/// Returns the other edge direction.
Edge opposite(Edge e);

/// A waveform represented by samples connected with straight segments.
///
/// Invariant: sample times are strictly increasing (enforced by append()).
/// Evaluation outside the sampled range clamps to the first/last value, which
/// matches the physical picture of signals holding their rails before/after
/// the recorded window.
class Waveform {
 public:
  Waveform() = default;

  /// Constructs from a pre-built sample list; times must be strictly
  /// increasing or std::invalid_argument is thrown.
  explicit Waveform(std::vector<Sample> samples);

  /// Appends a sample; @p t must exceed the last recorded time (samples at
  /// identical times are collapsed to the most recent value).
  void append(double t, double v);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<Sample>& samples() const { return samples_; }

  double startTime() const;
  double endTime() const;

  /// Linear interpolation at time @p t (clamped outside the range).
  double value(double t) const;

  /// First time at/after @p tFrom where the waveform crosses @p level moving
  /// in direction @p edge.  Crossing times are located by inverse linear
  /// interpolation within the bracketing segment, so accuracy is limited only
  /// by the PWL representation, not by sample spacing.
  std::optional<double> crossing(double level, Edge edge, double tFrom) const;

  /// Convenience overload: searches from the beginning of the waveform.
  std::optional<double> crossing(double level, Edge edge) const;

  /// Last crossing of @p level in direction @p edge, or nullopt.
  std::optional<double> lastCrossing(double level, Edge edge) const;

  /// All crossings of @p level in direction @p edge, in time order.
  std::vector<double> allCrossings(double level, Edge edge) const;

  /// Global extrema over the sampled window.
  double minValue() const;
  double maxValue() const;
  /// Extrema restricted to [t0, t1].
  double minValue(double t0, double t1) const;
  double maxValue(double t0, double t1) const;

  /// Returns a copy shifted in time by @p dt (t -> t + dt).
  Waveform shifted(double dt) const;

 private:
  std::vector<Sample> samples_;
};

std::ostream& operator<<(std::ostream& os, const Waveform& w);

}  // namespace prox::wave
