#pragma once
// Measurement utilities implementing the paper's delay conventions (Section 2).
//
// Delay is measured from the time the *reference input* crosses its input
// threshold to the time the output crosses the output threshold:
//   - rising input:  input threshold V_il, and the output (falling) is
//     measured at V_il as well once it has committed downward; the paper pairs
//     V_il (input) with ... V_il/V_ih on the output according to direction.
//   - The robust multi-input rule of Section 2 fixes a single (V_il, V_ih)
//     pair per gate: minimum V_il and maximum V_ih over all VTCs.
//
// Conventions used throughout this library (and by the benches):
//   * input reference time  = crossing of V_il for rising inputs,
//                             crossing of V_ih for falling inputs
//     (this is also how separations s_ij are measured, per Section 3);
//   * output reference time = crossing of V_ih for rising outputs,
//                             crossing of V_il for falling outputs
//     (the output must complete its excursion past the far threshold, which is
//     exactly what makes the Section 2 choice yield strictly positive delays);
//   * output transition time = time between the V_il and V_ih crossings of the
//     output ("these two thresholds also provide a logical choice for
//     measuring input and output transition times").

#include <optional>

#include "waveform/waveform.hpp"

namespace prox::wave {

/// The per-gate measurement thresholds chosen by the Section 2 rule.
struct Thresholds {
  double vil = 0.0;  ///< minimum V_il over all VTCs of the gate
  double vih = 0.0;  ///< maximum V_ih over all VTCs of the gate
};

/// Reference time of an input transition: V_il crossing for rising inputs,
/// V_ih crossing for falling inputs (Section 3's separation convention).
std::optional<double> inputRefTime(const Waveform& in, Edge inputEdge,
                                   const Thresholds& th);

/// Reference time of an output transition: the *far* threshold in the
/// direction of travel (V_ih rising, V_il falling), searched from @p tFrom.
std::optional<double> outputRefTime(const Waveform& out, Edge outputEdge,
                                    const Thresholds& th, double tFrom = 0.0);

/// Propagation delay from the reference input crossing to the output crossing.
/// Returns nullopt when either waveform never crosses its threshold.
std::optional<double> propagationDelay(const Waveform& in, Edge inputEdge,
                                       const Waveform& out, Edge outputEdge,
                                       const Thresholds& th);

/// Output transition time: |t(V_ih) - t(V_il)| measured on the last monotone
/// excursion of the output in direction @p outputEdge.
std::optional<double> transitionTime(const Waveform& out, Edge outputEdge,
                                     const Thresholds& th);

/// Temporal separation s_ij between two input transitions, measured from input
/// i to input j at the Section 3 reference levels.  Positive when j switches
/// after i.
std::optional<double> separation(const Waveform& xi, Edge ei,
                                 const Waveform& xj, Edge ej,
                                 const Thresholds& th);

}  // namespace prox::wave
