#include "waveform/combine.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace prox::wave {

namespace {

Waveform pointwiseExtreme(const std::vector<Waveform>& ws, bool wantMin) {
  if (ws.empty()) throw std::invalid_argument("pointwiseExtreme: no waveforms");
  for (const Waveform& w : ws) {
    if (w.empty()) throw std::invalid_argument("pointwiseExtreme: empty input");
  }

  // Candidate times: every breakpoint of every waveform ...
  std::set<double> times;
  for (const Waveform& w : ws) {
    for (const Sample& s : w.samples()) times.insert(s.t);
  }
  // ... plus every pairwise crossing within shared segments (between two
  // consecutive candidate times both waveforms are linear, so the winner can
  // only change at a crossing).
  std::vector<double> base(times.begin(), times.end());
  for (std::size_t i = 0; i < ws.size(); ++i) {
    for (std::size_t j = i + 1; j < ws.size(); ++j) {
      for (std::size_t k = 1; k < base.size(); ++k) {
        const double t0 = base[k - 1];
        const double t1 = base[k];
        const double a0 = ws[i].value(t0);
        const double a1 = ws[i].value(t1);
        const double b0 = ws[j].value(t0);
        const double b1 = ws[j].value(t1);
        const double d0 = a0 - b0;
        const double d1 = a1 - b1;
        if ((d0 > 0.0 && d1 < 0.0) || (d0 < 0.0 && d1 > 0.0)) {
          const double f = d0 / (d0 - d1);
          times.insert(t0 + f * (t1 - t0));
        }
      }
    }
  }

  Waveform out;
  for (double t : times) {
    double v = ws[0].value(t);
    for (std::size_t i = 1; i < ws.size(); ++i) {
      const double vi = ws[i].value(t);
      v = wantMin ? std::min(v, vi) : std::max(v, vi);
    }
    out.append(t, v);
  }
  return out;
}

}  // namespace

Waveform pointwiseMin(const std::vector<Waveform>& ws) {
  return pointwiseExtreme(ws, true);
}

Waveform pointwiseMax(const std::vector<Waveform>& ws) {
  return pointwiseExtreme(ws, false);
}

}  // namespace prox::wave
