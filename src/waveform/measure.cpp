#include "waveform/measure.hpp"

#include <cmath>

namespace prox::wave {

std::optional<double> inputRefTime(const Waveform& in, Edge inputEdge,
                                   const Thresholds& th) {
  const double level = inputEdge == Edge::Rising ? th.vil : th.vih;
  return in.crossing(level, inputEdge);
}

std::optional<double> outputRefTime(const Waveform& out, Edge outputEdge,
                                    const Thresholds& th, double tFrom) {
  const double level = outputEdge == Edge::Rising ? th.vih : th.vil;
  // Use the *last* crossing at/after tFrom: with multiple switching inputs the
  // output can dip below a threshold and recover (partial glitches); the delay
  // of interest is to the final committed crossing.
  std::optional<double> found;
  for (double t : out.allCrossings(level, outputEdge)) {
    if (t >= tFrom) found = t;
  }
  return found;
}

std::optional<double> propagationDelay(const Waveform& in, Edge inputEdge,
                                       const Waveform& out, Edge outputEdge,
                                       const Thresholds& th) {
  const auto tin = inputRefTime(in, inputEdge, th);
  if (!tin) return std::nullopt;
  const auto tout = outputRefTime(out, outputEdge, th);
  if (!tout) return std::nullopt;
  return *tout - *tin;
}

std::optional<double> transitionTime(const Waveform& out, Edge outputEdge,
                                     const Thresholds& th) {
  // Anchor on the final committed crossing of the far threshold, then walk
  // back to the latest crossing of the near threshold before it.
  const double farLevel = outputEdge == Edge::Rising ? th.vih : th.vil;
  const double nearLevel = outputEdge == Edge::Rising ? th.vil : th.vih;
  const auto tFar = out.lastCrossing(farLevel, outputEdge);
  if (!tFar) return std::nullopt;
  std::optional<double> tNear;
  for (double t : out.allCrossings(nearLevel, outputEdge)) {
    if (t <= *tFar) tNear = t;
  }
  if (!tNear) return std::nullopt;
  return *tFar - *tNear;
}

std::optional<double> separation(const Waveform& xi, Edge ei,
                                 const Waveform& xj, Edge ej,
                                 const Thresholds& th) {
  const auto ti = inputRefTime(xi, ei, th);
  const auto tj = inputRefTime(xj, ej, th);
  if (!ti || !tj) return std::nullopt;
  return *tj - *ti;
}

}  // namespace prox::wave
