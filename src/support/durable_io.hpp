#pragma once
// Durable artifact I/O: crash-safe file emission for every deployable
// artifact the tools write (.prox model packages, stats JSON, bench
// reports).
//
// The failure mode this closes: a SIGKILL / OOM / power cut in the middle
// of an `std::ofstream f(path)` write leaves a torn file *under the final
// name*, which downstream tooling then trusts.  AtomicFileWriter never
// exposes a partial artifact: content goes to a same-directory temp file,
// is fsync'd, and only then renamed over the destination (rename(2) is
// atomic within a filesystem); the directory entry is fsync'd last so the
// rename itself survives a crash.  An abandoned writer (exception unwind,
// early return) unlinks its temp file and leaves any previous artifact
// untouched.
//
// The same header provides the CRC-32 (IEEE 802.3, reflected) used to stamp
// journal records and .prox model files so torn or bit-flipped artifacts are
// rejected at load time instead of silently poisoning downstream STA.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace prox::support {

/// Incrementally updates a CRC-32 (IEEE, reflected; same polynomial as zlib)
/// over @p data.  Seed with kCrc32Init and finalize with crc32Final.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                          std::size_t len) noexcept;
inline std::uint32_t crc32Final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of @p text (zlib-compatible: crc32("123456789") ==
/// 0xCBF43926).
std::uint32_t crc32(std::string_view text) noexcept;

/// Atomic whole-file writer: stream into a temp file next to @p path, then
/// commit() to fsync + rename it into place.  Without commit() the
/// destructor discards the temp file, so the destination is only ever the
/// previous complete artifact or the new complete artifact -- never a torn
/// mixture.  Not thread-safe; one writer per artifact.
class AtomicFileWriter {
 public:
  /// Prepares the temp file name; nothing touches the filesystem until
  /// commit().  Content accumulates in memory (artifacts here are KB-to-MB
  /// text files), which keeps the failure surface to a single commit step.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  /// The stream to write artifact content into.
  std::ostream& stream() { return body_; }

  /// Writes the accumulated content to the temp file, fsyncs it, renames it
  /// over the destination and fsyncs the containing directory.  Throws
  /// DiagnosticError (IoError) on any failure, leaving the destination
  /// untouched and the temp file removed.  At most one commit per writer.
  void commit();

  bool committed() const noexcept { return committed_; }

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

 private:
  std::string path_;
  std::string tmpPath_;
  std::ostringstream body_;
  bool committed_ = false;
};

/// Convenience wrapper: runs @p fill against an in-memory stream, then
/// commits the result atomically to @p path.  Throws DiagnosticError
/// (IoError) if the commit fails; @p fill's exceptions propagate before
/// anything is written.
void writeFileAtomic(const std::string& path,
                     const std::function<void(std::ostream&)>& fill);

}  // namespace prox::support
