#include "support/bounded.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>

namespace prox::support {

namespace {

/// The checked parsers work on a NUL-terminated copy so strtod/strtoll can
/// run without touching bytes past the token.  Tokens longer than any
/// representable number are malformed by construction; rejecting them first
/// also bounds the copy.
constexpr std::size_t kMaxNumericTokenBytes = 512;

bool copyToken(std::string_view token, char* buf, std::size_t bufSize) {
  if (token.empty() || token.size() >= bufSize) return false;
  for (std::size_t i = 0; i < token.size(); ++i) buf[i] = token[i];
  buf[token.size()] = '\0';
  return true;
}

}  // namespace

void failParse(const char* site, const std::string& message, int line) {
  Diagnostic d = makeDiagnostic(StatusCode::ParseError, message).withSite(site);
  if (line >= 0) d.withLine(line);
  throw DiagnosticError(std::move(d));
}

void failResource(const char* site, const std::string& message, int line) {
  Diagnostic d =
      makeDiagnostic(StatusCode::ResourceExhausted, message).withSite(site);
  if (line >= 0) d.withLine(line);
  throw DiagnosticError(std::move(d));
}

AllocationBudget::AllocationBudget(const char* site, std::size_t inputBytes,
                                   const ReaderLimits& limits)
    : site_(site) {
  // Saturating cap computation: a huge inputBytes must not wrap into a tiny
  // budget.
  const std::size_t maxSz = std::numeric_limits<std::size_t>::max();
  if (limits.allocFactor != 0 && inputBytes > maxSz / limits.allocFactor) {
    cap_ = maxSz;
  } else {
    const std::size_t scaled = limits.allocFactor * inputBytes;
    cap_ = scaled > maxSz - limits.allocFloor ? maxSz
                                              : scaled + limits.allocFloor;
  }
}

void AllocationBudget::charge(std::size_t bytes, const char* what, int line) {
  if (bytes > cap_ - charged_) {  // charged_ <= cap_ invariant: no underflow
    failResource(site_,
                 std::string("allocation budget exceeded reading ") + what +
                     " (declared sizes need > " + std::to_string(cap_) +
                     " bytes for a " + std::to_string(cap()) +
                     "-byte budget derived from the input size)",
                 line);
  }
  charged_ += bytes;
}

void AllocationBudget::chargeItems(std::size_t n, std::size_t itemBytes,
                                   const char* what, int line) {
  if (itemBytes != 0 && n > std::numeric_limits<std::size_t>::max() / itemBytes) {
    failResource(site_,
                 std::string("allocation size overflow reading ") + what, line);
  }
  charge(n * itemBytes, what, line);
}

std::string readStreamBounded(std::istream& is, std::size_t maxBytes,
                              const char* site) {
  std::string out;
  char buf[64 << 10];
  while (is) {
    is.read(buf, sizeof(buf));
    const std::size_t got = static_cast<std::size_t>(is.gcount());
    if (got == 0) break;
    if (got > maxBytes - out.size()) {
      failResource(site, "input exceeds the " + std::to_string(maxBytes) +
                             "-byte reader cap");
    }
    out.append(buf, got);
  }
  return out;
}

std::string readFileBounded(const std::string& path, std::size_t maxBytes,
                            const char* site) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw DiagnosticError(
        makeDiagnostic(StatusCode::IoError, "cannot open " + path)
            .withSite(site));
  }
  return readStreamBounded(f, maxBytes, site);
}

bool getlineBounded(std::istream& is, std::size_t maxBytes, BoundedLine* out) {
  out->text.clear();
  out->sawNewline = false;
  out->overlong = false;
  int c = is.get();
  if (c == std::char_traits<char>::eof()) return false;
  while (c != std::char_traits<char>::eof() && c != '\n') {
    if (out->text.size() >= maxBytes) {
      // Cap hit: drain the rest of the line unbuffered so the caller can
      // continue at the next record boundary.
      out->overlong = true;
      while (c != std::char_traits<char>::eof() && c != '\n') c = is.get();
      break;
    }
    out->text.push_back(static_cast<char>(c));
    c = is.get();
  }
  out->sawNewline = (c == '\n');
  return true;
}

double parseDoubleChecked(std::string_view token, const char* site,
                          const char* what, int line) {
  char buf[kMaxNumericTokenBytes];
  if (!copyToken(token, buf, sizeof(buf))) {
    failParse(site,
              std::string(token.empty() ? "empty number in "
                                        : "oversized number token in ") +
                  what,
              line);
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + token.size() || end == buf) {
    failParse(site, "malformed number '" + std::string(token) + "' in " + what,
              line);
  }
  if (errno == ERANGE) {
    // Overflow (±HUGE_VAL) and underflow-to-zero both report ERANGE; either
    // way the token does not round-trip and silently using the clamped
    // value would corrupt downstream arithmetic.
    failParse(site, "number out of range '" + std::string(token) + "' in " +
                        what,
              line);
  }
  if (std::isnan(v)) {
    failParse(site, "NaN is not a valid value in " + std::string(what), line);
  }
  return v;
}

double parseFiniteDoubleChecked(std::string_view token, const char* site,
                                const char* what, int line) {
  const double v = parseDoubleChecked(token, site, what, line);
  if (!std::isfinite(v)) {
    failParse(site, "non-finite value '" + std::string(token) + "' in " + what,
              line);
  }
  return v;
}

long long parseIntChecked(std::string_view token, const char* site,
                          const char* what, int line, long long minValue,
                          long long maxValue) {
  char buf[kMaxNumericTokenBytes];
  if (!copyToken(token, buf, sizeof(buf))) {
    failParse(site,
              std::string(token.empty() ? "empty integer in "
                                        : "oversized integer token in ") +
                  what,
              line);
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + token.size() || end == buf || errno == ERANGE) {
    failParse(site,
              "malformed integer '" + std::string(token) + "' in " + what,
              line);
  }
  if (v < minValue || v > maxValue) {
    failParse(site,
              "integer '" + std::string(token) + "' out of range in " + what,
              line);
  }
  return v;
}

std::size_t parseCountChecked(std::string_view token, std::size_t cap,
                              const char* site, const char* what, int line) {
  const long long upper =
      cap > static_cast<std::size_t>(std::numeric_limits<long long>::max())
          ? std::numeric_limits<long long>::max()
          : static_cast<long long>(cap);
  const long long v = parseIntChecked(token, site, what, line, 0, upper);
  return static_cast<std::size_t>(v);
}

}  // namespace prox::support
