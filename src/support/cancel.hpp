#pragma once
// Cooperative cancellation: a CancelToken that long-running engines poll at
// bounded intervals, with deadline (--timeout watchdog) and POSIX-signal
// (SIGINT/SIGTERM) support.
//
// Design constraints (and how they are met):
//   * Signal handlers may only touch async-signal-safe state -> a token
//     cancels through plain lock-free atomic stores; the handler never
//     allocates, locks, or logs.
//   * Poll points sit inside sub-microsecond loops (one per transient
//     timestep, one per Newton iteration) -> pollCancellation() is a
//     thread-local pointer load plus a null check when no token is
//     installed; the deadline clock is only read when a deadline exists.
//   * Deep engine loops must not grow token parameters through every
//     signature -> the active token is installed per-thread with a
//     CancelScope (par::parallelFor installs the loop's token around each
//     task, so worker threads observe the same token as the caller).
//
// Cancellation surfaces as a typed DiagnosticError: StatusCode::Cancelled
// for an explicit cancel/signal, StatusCode::DeadlineExceeded for a tripped
// deadline.  Engines treat it like any other typed failure -- unwind,
// leaving journals/checkpoints flushed by their owners -- so a Ctrl-C run
// exits with a partial-but-valid checkpoint instead of a torn artifact.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "support/diagnostic.hpp"

namespace prox::support {

class CancelToken {
 public:
  CancelToken() = default;

  /// Requests cancellation.  Safe from any thread and from signal handlers
  /// (single lock-free atomic store).  @p signal records the POSIX signal
  /// number for diagnostics; 0 means a programmatic cancel.
  void cancel(int signal = 0) noexcept {
    signal_.store(signal, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  /// Arms the deadline watchdog @p seconds from now.  seconds <= 0 cancels
  /// immediately.  Not async-signal-safe (reads the clock); call from
  /// ordinary code before the work starts.
  void setTimeout(double seconds) noexcept {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(seconds * 1e9);
    deadlineNs_.store(ns, std::memory_order_relaxed);
  }

  /// True once cancel() was called or the deadline passed.  The deadline
  /// check latches into the cancelled flag so later polls take the cheap
  /// path and reason() stays stable.
  bool cancelRequested() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const std::int64_t dl = deadlineNs_.load(std::memory_order_relaxed);
    if (dl == kNoDeadline) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() <
        dl) {
      return false;
    }
    deadlineHit_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
    return true;
  }

  /// Why the token tripped: Cancelled (explicit / signal) or
  /// DeadlineExceeded.  Ok when not cancelled.
  StatusCode reason() const noexcept {
    if (!cancelled_.load(std::memory_order_acquire)) return StatusCode::Ok;
    return deadlineHit_.load(std::memory_order_relaxed)
               ? StatusCode::DeadlineExceeded
               : StatusCode::Cancelled;
  }

  /// The POSIX signal that triggered cancellation, or 0.
  int signalNumber() const noexcept {
    return signal_.load(std::memory_order_relaxed);
  }

  /// Builds the typed diagnostic describing the cancellation.
  Diagnostic diagnostic(const char* site) const;

  /// Throws DiagnosticError(Cancelled/DeadlineExceeded) when tripped.
  void throwIfCancelled(const char* site) const {
    if (cancelRequested()) throw DiagnosticError(diagnostic(site));
  }

  /// Re-arms the token for reuse in tests.  Not safe concurrently with
  /// cancel()/polls.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadlineHit_.store(false, std::memory_order_relaxed);
    signal_.store(0, std::memory_order_relaxed);
    deadlineNs_.store(kNoDeadline, std::memory_order_relaxed);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  // cancelled_ is mutable because the deadline check latches it from the
  // logically-const cancelRequested() poll.
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadlineHit_{false};
  std::atomic<int> signal_{0};
  std::atomic<std::int64_t> deadlineNs_{kNoDeadline};
};

namespace detail {
/// The token the current thread's engine loops poll; null when cancellation
/// is not in use (the fast path).  constinit keeps the access a direct TLS
/// load from every poll site.
extern thread_local constinit const CancelToken* tlsCancelToken;
}  // namespace detail

/// Installs @p token as the calling thread's active cancellation token for
/// the scope's lifetime (nests; restores the previous token on exit).
/// Accepts null (no-op scope), so call sites can install unconditionally.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token) noexcept
      : previous_(detail::tlsCancelToken) {
    if (token != nullptr) detail::tlsCancelToken = token;
  }
  ~CancelScope() { detail::tlsCancelToken = previous_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

/// The token installed on this thread, or null.
inline const CancelToken* currentCancelToken() noexcept {
  return detail::tlsCancelToken;
}

/// The poll point engine loops call (transient stepper per step, Newton per
/// iteration, DC sweep per point, parallelFor per task).  One thread-local
/// load + null check when cancellation is not in use; throws the token's
/// typed DiagnosticError once tripped.
inline void pollCancellation(const char* site) {
  const CancelToken* token = detail::tlsCancelToken;
  if (token != nullptr && token->cancelRequested()) {
    throw DiagnosticError(token->diagnostic(site));
  }
}

/// Routes SIGINT and SIGTERM to @p token for the scope's lifetime, restoring
/// the previous handlers on exit.  The handler performs only async-signal-
/// safe work (atomic stores into the token).  A second signal while the
/// first is still unwinding restores default disposition and re-raises, so
/// a hung teardown can still be interrupted.  At most one scope may be
/// active per process (enforced; nested installs throw).
class SignalCancelScope {
 public:
  explicit SignalCancelScope(CancelToken* token);
  ~SignalCancelScope();
  SignalCancelScope(const SignalCancelScope&) = delete;
  SignalCancelScope& operator=(const SignalCancelScope&) = delete;
};

}  // namespace prox::support
