#pragma once
// Append-only, CRC-checked journal for crash-safe incremental computation.
//
// A journal is a text file of self-validating records.  Every line carries a
// CRC-32 of its payload, so a reader can distinguish "complete record" from
// "the torn tail of a crashed write" without any out-of-band bookkeeping:
//
//   proxjournal 1 <fingerprint> <crc8>        -- header (version, run identity)
//   p <scope> <index> <n> <w1>..<wn> <crc8>   -- record: n 64-bit words (hex)
//
// Payload words are raw IEEE-754 bit patterns (or integers) rendered as hex,
// so replaying a journaled double is bit-exact -- the property the
// checkpoint/resume machinery needs to reproduce byte-identical artifacts.
//
// Crash contract:
//   * append() writes each record with a single write(2) and fsyncs every
//     Options::fsyncEveryN appends (and on close/sync), so a SIGKILL loses at
//     most the records since the last sync -- which a resume simply
//     recomputes.
//   * load() accepts a journal with a torn or corrupt tail: it returns every
//     record up to the first invalid line plus the byte offset where
//     validity ended, and never throws for tail damage.  A corrupt *header*
//     (or fingerprint mismatch at resume) is a typed ParseError: replaying
//     someone else's journal must fail loudly, not quietly mis-resume.
//   * openResume() truncates the file back to the last valid record before
//     appending, so one crash cannot poison records written after resume.
//
// Thread-safe: append() may be called concurrently from sweep workers.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace prox::support {

struct JournalRecord {
  std::string scope;        ///< whitespace-free record namespace
  std::uint64_t index = 0;  ///< deterministic task index within the scope
  std::vector<std::uint64_t> words;  ///< payload (e.g. double bit patterns)
};

/// Result of reading a journal from disk.
struct JournalContents {
  std::string fingerprint;  ///< run identity from the header
  std::vector<JournalRecord> records;
  std::uint64_t validBytes = 0;  ///< file offset where valid records end
  bool truncatedTail = false;    ///< bytes past validBytes were dropped
};

/// Bit-pattern helpers for journaling doubles losslessly.
std::uint64_t doubleToBits(double v) noexcept;
double bitsFromDouble(std::uint64_t bits) noexcept;

class Journal {
 public:
  /// Durability knobs, set before (or between) open calls.
  struct Options {
    /// fsync cadence: 1 = every record (safest, slowest); N loses at most
    /// the last N-1 records to a crash.  Sweep points cost milliseconds
    /// each, so the default keeps sync overhead well under 1%.  Values < 1
    /// are clamped to 1 at append time.
    int fsyncEveryN = 32;
  };

  Journal() = default;
  explicit Journal(const Options& options) : options_(options) {}
  ~Journal();

  /// Reads @p path, validating record CRCs.  Returns nullopt when the file
  /// does not exist.  Throws DiagnosticError(ParseError) when the header is
  /// missing/corrupt (an empty file reads as a missing journal).  Tail
  /// damage (torn last line, trailing garbage) is tolerated per the crash
  /// contract above.  Bounded: a line longer than the per-record cap or a
  /// record whose declared word count could not fit on a capped line is
  /// treated as corruption (truncated tail), never buffered or allocated;
  /// accepted records are charged against any active support::ResourceBudget
  /// (DiagnosticError(ResourceExhausted) when exceeded).
  static std::optional<JournalContents> load(const std::string& path);

  /// load() over an already-open stream; @p pathForDiag labels diagnostics.
  /// Exposed so corruption harnesses (and fuzzers) can drive the loader
  /// without a filesystem round-trip.  Returns nullopt for an empty stream.
  static std::optional<JournalContents> loadStream(
      std::istream& is, const std::string& pathForDiag);

  /// Creates/truncates @p path and writes a fresh header.  Throws
  /// DiagnosticError(IoError) when the file cannot be created.
  void openFresh(const std::string& path, const std::string& fingerprint);

  /// Opens @p path for resume: loads its valid records (returned), verifies
  /// the header fingerprint equals @p fingerprint (typed ParseError when it
  /// does not -- resuming under a different cell/config must not silently
  /// replay foreign results), truncates any torn tail, and positions for
  /// append.  When the file does not exist, behaves as openFresh and
  /// returns an empty record set.
  std::vector<JournalRecord> openResume(const std::string& path,
                                        const std::string& fingerprint);

  /// Appends one record.  Thread-safe; fsyncs every options().fsyncEveryN
  /// appends.  Throws DiagnosticError(IoError) on write failure.
  void append(const std::string& scope, std::uint64_t index,
              const std::vector<std::uint64_t>& words);

  /// Flushes appended records to disk (fsync).
  void sync();

  /// Syncs and closes.  Further appends are an error.
  void close();

  bool isOpen() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

  const Options& options() const noexcept { return options_; }
  /// Replaces the durability options; takes effect on the next append.
  void setOptions(const Options& options) { options_ = options; }

  /// Records appended since the last fsync -- the crash-loss window right
  /// now.  Lock-free snapshot for progress heartbeats ("checkpoint lag");
  /// may be momentarily stale relative to a concurrent append.
  int unsynced() const noexcept {
    return unsynced_.load(std::memory_order_relaxed);
  }

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

 private:
  void writeLine(const std::string& payload);

  std::mutex mu_;
  std::string path_;
  Options options_;
  int fd_ = -1;
  std::atomic<int> unsynced_{0};
};

}  // namespace prox::support
