#include "support/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/registry.hpp"
#include "support/bounded.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"
#include "support/durable_io.hpp"

namespace prox::support {

namespace {

constexpr const char* kMagic = "proxjournal";
constexpr int kVersion = 1;

// Journal lines are machine-written: "p <scope> <16hex> <16hex>" plus 17
// bytes per payload word plus the CRC.  Real records are a few hundred
// bytes; 1 MiB of headroom means any longer line is corruption, and it is
// dropped as a torn tail without ever being buffered.  The word-count cap
// follows from the line cap: a count that could not fit on a capped line is
// rejected by arithmetic before any allocation (a corrupt length field must
// not drive a multi-GB resize on its way to CRC rejection).
constexpr std::size_t kMaxLineBytes = 1u << 20;
constexpr std::uint64_t kMaxWordsPerRecord = kMaxLineBytes / 17;

[[noreturn]] void failIo(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string msg = what + ": " + path;
  if (err != 0) msg += std::string(" (") + std::strerror(err) + ")";
  throw DiagnosticError(
      makeDiagnostic(StatusCode::IoError, msg).withSite("support.journal"));
}

[[noreturn]] void failParse(const std::string& msg, const std::string& path) {
  throw DiagnosticError(
      makeDiagnostic(StatusCode::ParseError, msg + ": " + path)
          .withSite("support.journal"));
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

bool parseHex(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

/// Splits @p line on single spaces.  Journal lines are machine-written, so
/// any deviation (double space, tabs) is corruption and yields a token that
/// fails validation downstream.
std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t sp = line.find(' ', start);
    if (sp == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, sp - start));
    start = sp + 1;
  }
  return fields;
}

/// Validates one journal line: the last field must be the CRC-32 (8 hex
/// digits) of everything before it.  Returns the payload fields.
bool checkLine(const std::string& line, std::vector<std::string>* fields) {
  const std::size_t lastSpace = line.find_last_of(' ');
  if (lastSpace == std::string::npos || lastSpace + 9 != line.size()) {
    return false;
  }
  std::uint64_t want = 0;
  if (!parseHex(line.substr(lastSpace + 1), &want)) return false;
  if (crc32(std::string_view(line).substr(0, lastSpace)) !=
      static_cast<std::uint32_t>(want)) {
    return false;
  }
  *fields = splitFields(line.substr(0, lastSpace));
  return true;
}

std::string headerPayload(const std::string& fingerprint) {
  std::ostringstream os;
  os << kMagic << ' ' << kVersion << ' ' << fingerprint;
  return os.str();
}

}  // namespace

std::uint64_t doubleToBits(double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bitsFromDouble(std::uint64_t bits) noexcept {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

std::optional<JournalContents> Journal::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return loadStream(is, path);
}

std::optional<JournalContents> Journal::loadStream(
    std::istream& is, const std::string& path) {
  JournalContents out;
  BoundedLine line;
  bool sawHeader = false;
  std::uint64_t offset = 0;
  while (getlineBounded(is, kMaxLineBytes, &line)) {
    // A final line without a '\n' (EOF before the delimiter) is a torn
    // write; a line past the cap is corruption dressed as data.  Either way
    // everything from here on is dropped.
    const std::uint64_t lineBytes = line.text.size() + 1;
    std::vector<std::string> fields;
    if (!line.sawNewline || line.overlong || !checkLine(line.text, &fields)) {
      out.truncatedTail = true;
      break;
    }
    if (!sawHeader) {
      if (fields.size() != 3 || fields[0] != kMagic ||
          fields[1] != std::to_string(kVersion)) {
        failParse("bad journal header", path);
      }
      out.fingerprint = fields[2];
      sawHeader = true;
    } else if (fields.size() >= 4 && fields[0] == "p") {
      JournalRecord rec;
      rec.scope = fields[1];
      std::uint64_t count = 0;
      if (!parseHex(fields[2], &rec.index) || !parseHex(fields[3], &count) ||
          count > kMaxWordsPerRecord || fields.size() != 4 + count) {
        out.truncatedTail = true;
        break;
      }
      budgetChargeRecords(1, "support.journal");
      rec.words.resize(count);
      bool ok = true;
      for (std::uint64_t i = 0; i < count; ++i) {
        ok = ok && parseHex(fields[4 + i], &rec.words[i]);
      }
      if (!ok) {
        out.truncatedTail = true;
        break;
      }
      out.records.push_back(std::move(rec));
    } else {
      // Unknown record tag: a CRC-valid line written by a future version.
      // Skipping it keeps old binaries able to resume what they understand.
      PROX_OBS_COUNT("support.journal.unknown_records", 1);
    }
    offset += lineBytes;
    out.validBytes = offset;
  }
  if (!sawHeader) {
    if (out.validBytes == 0 && !out.truncatedTail) return std::nullopt;
    failParse("bad journal header", path);
  }
  if (out.truncatedTail) {
    PROX_OBS_COUNT("support.journal.torn_tails_dropped", 1);
  }
  return out;
}

void Journal::openFresh(const std::string& path,
                        const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) failIo("Journal: cannot create", path);
  writeLine(headerPayload(fingerprint));
  PROX_OBS_COUNT("support.journal.opened_fresh", 1);
}

std::vector<JournalRecord> Journal::openResume(const std::string& path,
                                               const std::string& fingerprint) {
  auto contents = load(path);
  if (!contents) {
    openFresh(path, fingerprint);
    return {};
  }
  if (contents->fingerprint != fingerprint) {
    failParse("journal fingerprint mismatch (different cell or "
              "characterization config): have " +
                  contents->fingerprint + ", want " + fingerprint,
              path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) failIo("Journal: cannot open for resume", path);
  // Drop the torn tail so appended records start on a clean line boundary.
  if (::ftruncate(fd_, static_cast<off_t>(contents->validBytes)) != 0) {
    failIo("Journal: truncate failed", path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) failIo("Journal: seek failed", path);
  PROX_OBS_COUNT("support.journal.opened_resume", 1);
  return std::move(contents->records);
}

void Journal::append(const std::string& scope, std::uint64_t index,
                     const std::vector<std::uint64_t>& words) {
  std::ostringstream os;
  os << "p " << scope << ' ' << hex64(index) << ' ' << hex64(words.size());
  for (std::uint64_t w : words) os << ' ' << hex64(w);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    throw DiagnosticError(
        makeDiagnostic(StatusCode::Internal, "Journal: append while closed")
            .withSite("support.journal"));
  }
  writeLine(os.str());
  PROX_OBS_COUNT("support.journal.records_appended", 1);
  if (++unsynced_ >= std::max(1, options_.fsyncEveryN)) {
    ::fsync(fd_);
    unsynced_ = 0;
  }
}

void Journal::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    unsynced_ = 0;
  }
}

void Journal::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::writeLine(const std::string& payload) {
  std::string line = payload;
  line += ' ';
  line += hex32(crc32(payload));
  line += '\n';
  // One write(2) per record: on most filesystems a small append either
  // lands entirely or becomes the torn tail load() drops -- never an
  // interleaving of two records (mu_ serializes writers within the
  // process, O_APPEND-like positioning is ours alone).
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      failIo("Journal: write failed", path_);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace prox::support
