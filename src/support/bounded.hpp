#pragma once
// Bounded-ingestion primitives shared by every parser that consumes bytes
// from outside the process (SPICE decks, .prox models, checkpoint journals,
// stats/trace JSON).
//
// Threat model: any input file may be truncated, bit-flipped, hand-edited,
// or adversarially constructed.  The parsers built on this layer guarantee
// that malformed input produces a typed DiagnosticError carrying context
// (site, line, what was being read) -- never a crash, an uncaught
// std::out_of_range from a conversion helper, an unbounded allocation, or a
// hang.  Three mechanisms enforce that:
//
//   * Size caps (ReaderLimits): the raw input, individual tokens/lines, and
//     recursion depth are all bounded before any per-element work happens.
//   * Allocation budgets (AllocationBudget): parsed data structures may not
//     claim more memory than a multiple of the input size.  A 200-byte file
//     that declares a 16M-point table is rejected by arithmetic on the
//     declared counts, before the allocation is attempted.
//   * Overflow-checked conversions: parseDoubleChecked / parseIntChecked /
//     parseCountChecked convert a *whole* token or fail; out-of-range
//     magnitudes and exponents are typed rejections, not silent inf/0
//     round-trips.
//
// This header sits at the very bottom of the dependency stack (below obs),
// so the obs::json parser itself can be built on it; call sites that want
// rejection counters bump them in their own catch/fail paths.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "support/diagnostic.hpp"

namespace prox::support {

/// Caps applied while ingesting untrusted bytes.  The defaults are generous
/// for every legitimate artifact this repo produces (the largest .prox
/// models are a few MB; journals grow a line per sweep point) while keeping
/// worst-case memory use on garbage input in the tens of MB.
struct ReaderLimits {
  /// Raw input size cap; readStreamBounded / readFileBounded reject longer
  /// streams with ResourceExhausted before buffering them.
  std::size_t maxInputBytes = 256u << 20;  // 256 MiB
  /// Longest single token (a number, a tag, a pull-network expression) or
  /// machine-written line (a journal record).
  std::size_t maxTokenBytes = 1u << 20;  // 1 MiB
  /// Deepest recursion a recursive-descent grammar may reach (JSON arrays /
  /// objects); prevents stack overflow on "[[[[..." bombs.
  std::size_t maxNestingDepth = 96;
  /// Allocation cap derived from input size:
  ///   cap = allocFactor * inputBytes + allocFloor.
  /// A parsed double occupies 8 bytes but costs at least 2 input bytes
  /// (digit + separator), so factor 16 leaves a wide margin for legitimate
  /// encodings while bounding amplification.
  std::size_t allocFactor = 16;
  std::size_t allocFloor = 1u << 20;  // 1 MiB: headroom for tiny inputs
};

/// Tracks bytes claimed by parsed data structures against a cap derived from
/// the input size (see ReaderLimits::allocFactor).  Parsers charge *declared*
/// sizes before resizing vectors, so a malicious count field is rejected by
/// integer arithmetic instead of honoured by the allocator.
class AllocationBudget {
 public:
  /// @p site names the owning parser for diagnostics ("spice.netlist", ...).
  AllocationBudget(const char* site, std::size_t inputBytes,
                   const ReaderLimits& limits = {});

  /// Claims @p bytes; throws DiagnosticError(ResourceExhausted) when the
  /// running total would exceed the cap.  @p what and @p line feed the
  /// diagnostic ("dual table ratio", line 42).
  void charge(std::size_t bytes, const char* what, int line = -1);

  /// charge() for @p n items of @p itemBytes each, with overflow-checked
  /// multiplication (n * itemBytes may not wrap).
  void chargeItems(std::size_t n, std::size_t itemBytes, const char* what,
                   int line = -1);

  std::size_t charged() const noexcept { return charged_; }
  std::size_t cap() const noexcept { return cap_; }

 private:
  const char* site_;
  std::size_t cap_;
  std::size_t charged_ = 0;
};

/// Reads the whole of @p is into a string, rejecting streams longer than
/// @p maxBytes with DiagnosticError(ResourceExhausted) before the oversized
/// tail is buffered.
std::string readStreamBounded(std::istream& is, std::size_t maxBytes,
                              const char* site);

/// Opens and reads @p path (IoError when it cannot be opened), applying the
/// same size cap as readStreamBounded.
std::string readFileBounded(const std::string& path, std::size_t maxBytes,
                            const char* site);

/// Result of one getlineBounded() call.
struct BoundedLine {
  std::string text;        ///< line content, '\n' stripped (maybe truncated)
  bool sawNewline = false; ///< false: EOF ended the line (torn tail)
  bool overlong = false;   ///< true: cap hit; the rest of the line was
                           ///< consumed (not buffered) up to the next '\n'
};

/// getline with a byte cap: reads at most @p maxBytes into line.text, then
/// skips (without buffering) to the next newline/EOF so the caller can keep
/// scanning.  Returns false when the stream is exhausted before any byte of
/// a new line.  An overlong line is the bounded analog of a corrupt record:
/// callers treat it as damage, never as data.
bool getlineBounded(std::istream& is, std::size_t maxBytes, BoundedLine* out);

// --- Overflow-checked whole-token conversions -------------------------------
// All of these parse the complete token (trailing characters are an error),
// throw DiagnosticError(ParseError) with @p site / @p what / @p line context
// on any malformation, and never let the underlying conversion's ERANGE /
// invalid-argument states escape as silent values or foreign exception
// types.

/// Finite-or-infinite double; rejects empty/partial tokens and out-of-range
/// magnitudes (|x| would round to inf or a nonzero mantissa would round to
/// 0).  NaN tokens are rejected.
double parseDoubleChecked(std::string_view token, const char* site,
                          const char* what, int line = -1);

/// parseDoubleChecked + finiteness requirement.
double parseFiniteDoubleChecked(std::string_view token, const char* site,
                                const char* what, int line = -1);

/// Whole-token signed integer in [minValue, maxValue].
long long parseIntChecked(std::string_view token, const char* site,
                          const char* what, int line = -1,
                          long long minValue = INT64_MIN,
                          long long maxValue = INT64_MAX);

/// Non-negative element count bounded by @p cap -- the standard guard for
/// "N items follow" headers.
std::size_t parseCountChecked(std::string_view token, std::size_t cap,
                              const char* site, const char* what,
                              int line = -1);

/// Throws the canonical typed parse failure used by the checked parsers;
/// exposed so parsers built on this layer report identically-shaped
/// diagnostics for their own grammar errors.
[[noreturn]] void failParse(const char* site, const std::string& message,
                            int line = -1);

/// Throws the canonical typed resource-cap failure (ResourceExhausted).
[[noreturn]] void failResource(const char* site, const std::string& message,
                               int line = -1);

}  // namespace prox::support
