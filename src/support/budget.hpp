#pragma once
// Resource governance for ingestion and analysis: hard ceilings on memory
// and object counts that turn runaway inputs into typed failures with a
// dedicated exit code instead of OOM kills.
//
// A ResourceBudget describes the limits; a BudgetTracker enforces them with
// atomic running totals; a BudgetScope installs the tracker thread-locally
// (mirroring support/cancel.hpp's CancelScope) so deep parser and engine
// loops can charge against the active budget without threading a parameter
// through every signature.  The parse *deadline* deliberately rides the
// existing CancelToken plumbing (ResourceBudget::cancel): every loop that
// already polls cancellation gets deadline enforcement for free.
//
// Enforcement sites (all no-ops when no budget is installed -- one
// thread-local load + null check):
//   * budgetChargeNodes()   -- SPICE devices/nodes, STA instances
//   * budgetChargeTables()  -- .prox model tables
//   * budgetChargeRecords() -- journal records
//   * budgetCheckRss()      -- coarse checkpoints (per level / per table);
//                              reads /proc/self/statm, throttled internally
//
// A tripped limit throws DiagnosticError(ResourceExhausted) and bumps
// support.budget.exceeded (plus a per-limit counter), so budget exhaustion
// is visible in --stats; the tools map the code to exit 7.

#include <atomic>
#include <cstddef>

#include "support/cancel.hpp"
#include "support/diagnostic.hpp"

namespace prox::support {

/// Limits; 0 means unlimited.  Plain data so tools can fill it from flags.
struct ResourceBudget {
  std::size_t maxRssBytes = 0;  ///< process resident set ceiling
  std::size_t maxNodes = 0;     ///< circuit nodes + devices / STA instances
  std::size_t maxTables = 0;    ///< characterized model tables loaded
  std::size_t maxRecords = 0;   ///< journal records accepted at load
  /// Parse/analysis deadline: arm a timeout on this token (setTimeout) and
  /// every existing pollCancellation site enforces it; no separate clock.
  CancelToken* cancel = nullptr;
};

/// Enforces a ResourceBudget with thread-safe running totals.
class BudgetTracker {
 public:
  explicit BudgetTracker(const ResourceBudget& limits) : limits_(limits) {}

  /// Each charge adds to the running total and throws
  /// DiagnosticError(ResourceExhausted) when the corresponding limit is
  /// exceeded.  @p site names the caller for the diagnostic.
  void chargeNodes(std::size_t n, const char* site);
  void chargeTables(std::size_t n, const char* site);
  void chargeRecords(std::size_t n, const char* site);

  /// Compares current RSS against maxRssBytes.  Reading /proc costs a
  /// syscall, so only every kRssCheckStride-th call samples (the first call
  /// always does); call freely from per-level / per-table loops.
  void checkRss(const char* site);

  std::size_t nodes() const noexcept {
    return nodes_.load(std::memory_order_relaxed);
  }
  std::size_t tables() const noexcept {
    return tables_.load(std::memory_order_relaxed);
  }
  std::size_t records() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }
  const ResourceBudget& limits() const noexcept { return limits_; }

  BudgetTracker(const BudgetTracker&) = delete;
  BudgetTracker& operator=(const BudgetTracker&) = delete;

 private:
  static constexpr unsigned kRssCheckStride = 16;

  ResourceBudget limits_;
  std::atomic<std::size_t> nodes_{0};
  std::atomic<std::size_t> tables_{0};
  std::atomic<std::size_t> records_{0};
  std::atomic<unsigned> rssTick_{0};
};

/// Current process resident set size in bytes (Linux /proc/self/statm);
/// 0 when unavailable.  Exposed for tests and tooling.
std::size_t currentRssBytes() noexcept;

namespace detail {
extern thread_local constinit BudgetTracker* tlsBudgetTracker;
}  // namespace detail

/// Installs @p tracker as the calling thread's active budget for the scope's
/// lifetime (nests; restores the previous tracker on exit).  Accepts null so
/// call sites can install unconditionally.
class BudgetScope {
 public:
  explicit BudgetScope(BudgetTracker* tracker) noexcept
      : previous_(detail::tlsBudgetTracker) {
    if (tracker != nullptr) detail::tlsBudgetTracker = tracker;
  }
  ~BudgetScope() { detail::tlsBudgetTracker = previous_; }
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  BudgetTracker* previous_;
};

/// The tracker installed on this thread, or null.
inline BudgetTracker* currentBudget() noexcept {
  return detail::tlsBudgetTracker;
}

// Free poll points: one TLS load + null check when no budget is active.
inline void budgetChargeNodes(std::size_t n, const char* site) {
  if (BudgetTracker* b = detail::tlsBudgetTracker) b->chargeNodes(n, site);
}
inline void budgetChargeTables(std::size_t n, const char* site) {
  if (BudgetTracker* b = detail::tlsBudgetTracker) b->chargeTables(n, site);
}
inline void budgetChargeRecords(std::size_t n, const char* site) {
  if (BudgetTracker* b = detail::tlsBudgetTracker) b->chargeRecords(n, site);
}
inline void budgetCheckRss(const char* site) {
  if (BudgetTracker* b = detail::tlsBudgetTracker) b->checkRss(site);
}

}  // namespace prox::support
