#include "support/durable_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/registry.hpp"
#include "support/diagnostic.hpp"

namespace prox::support {

namespace {

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
// generated once at first use.
const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void failIo(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string msg = what + ": " + path;
  if (err != 0) msg += std::string(" (") + std::strerror(err) + ")";
  throw DiagnosticError(makeDiagnostic(StatusCode::IoError, msg)
                            .withSite("support.durable_io"));
}

/// fsyncs the directory containing @p path so a crash after commit cannot
/// lose the rename itself.  Best effort: some filesystems refuse directory
/// fsync; the data fsync above already happened.
void syncParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                          std::size_t len) noexcept {
  const auto& table = crcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32(std::string_view text) noexcept {
  return crc32Final(crc32Update(kCrc32Init, text.data(), text.size()));
}

AtomicFileWriter::AtomicFileWriter(std::string path) : path_(std::move(path)) {
  // Same directory as the destination so the final rename never crosses a
  // filesystem boundary (cross-device rename is not atomic).  The pid keeps
  // concurrent processes writing the same artifact from clobbering each
  // other's temp file.
  tmpPath_ = path_ + ".tmp." + std::to_string(::getpid());
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    // Abandoned (exception unwind / early return): the destination is left
    // exactly as it was.  The temp file only exists if commit() failed
    // mid-way, but unlink unconditionally is harmless.
    ::unlink(tmpPath_.c_str());
    PROX_OBS_COUNT("support.durable.aborted_writes", 1);
  }
}

void AtomicFileWriter::commit() {
  if (committed_) {
    throw DiagnosticError(
        makeDiagnostic(StatusCode::Internal,
                       "AtomicFileWriter: double commit of " + path_)
            .withSite("support.durable_io"));
  }
  const std::string body = body_.str();
  const int fd = ::open(tmpPath_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) failIo("AtomicFileWriter: cannot create temp file", tmpPath_);
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmpPath_.c_str());
      failIo("AtomicFileWriter: write failed", tmpPath_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmpPath_.c_str());
    failIo("AtomicFileWriter: fsync failed", tmpPath_);
  }
  if (::close(fd) != 0) {
    ::unlink(tmpPath_.c_str());
    failIo("AtomicFileWriter: close failed", tmpPath_);
  }
  if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
    ::unlink(tmpPath_.c_str());
    failIo("AtomicFileWriter: rename failed", path_);
  }
  syncParentDir(path_);
  committed_ = true;
  PROX_OBS_COUNT("support.durable.atomic_writes", 1);
}

void writeFileAtomic(const std::string& path,
                     const std::function<void(std::ostream&)>& fill) {
  AtomicFileWriter writer(path);
  fill(writer.stream());
  writer.commit();
}

}  // namespace prox::support
