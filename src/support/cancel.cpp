#include "support/cancel.hpp"

#include <csignal>
#include <cstring>

#include "obs/registry.hpp"

namespace prox::support {

namespace detail {
thread_local constinit const CancelToken* tlsCancelToken = nullptr;
}  // namespace detail

Diagnostic CancelToken::diagnostic(const char* site) const {
  const StatusCode code = reason();
  std::string msg;
  if (code == StatusCode::DeadlineExceeded) {
    msg = "run cancelled: deadline exceeded (--timeout watchdog)";
    PROX_OBS_COUNT("support.cancel.deadline_trips", 1);
  } else {
    const int sig = signalNumber();
    if (sig != 0) {
      msg = std::string("run cancelled by signal ") + std::to_string(sig) +
            " (" + strsignal(sig) + ")";
    } else {
      msg = "run cancelled";
    }
    PROX_OBS_COUNT("support.cancel.cancellations", 1);
  }
  return makeDiagnostic(code == StatusCode::Ok ? StatusCode::Cancelled : code,
                        std::move(msg))
      .withSite(site);
}

namespace {

// The token the installed signal handler targets.  A raw atomic pointer:
// signal handlers may only perform lock-free atomic accesses.
std::atomic<CancelToken*> gSignalToken{nullptr};

struct sigaction gPrevInt;
struct sigaction gPrevTerm;

extern "C" void proxCancelSignalHandler(int sig) {
  CancelToken* token = gSignalToken.load(std::memory_order_acquire);
  if (token == nullptr) return;
  // Escalate only on a second *signal*.  cancelRequested() would also be
  // true when a deadline has already latched the token -- and a supervisor's
  // first SIGTERM arriving after a deadline trip must still unwind
  // gracefully (exit 6, stats written), not die with the default
  // disposition.  SIGINT and SIGTERM share the counter: either delivered
  // twice, or one of each, means the operator wants a hard exit.
  if (token->signalNumber() != 0) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  token->cancel(sig);
}

}  // namespace

SignalCancelScope::SignalCancelScope(CancelToken* token) {
  CancelToken* expected = nullptr;
  if (!gSignalToken.compare_exchange_strong(expected, token,
                                            std::memory_order_acq_rel)) {
    throw DiagnosticError(
        makeDiagnostic(StatusCode::Internal,
                       "SignalCancelScope: a scope is already installed")
            .withSite("support.cancel"));
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = proxCancelSignalHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a blocking read in a tool front end should come back
  // with EINTR so the cancellation is observed promptly.
  ::sigaction(SIGINT, &sa, &gPrevInt);
  ::sigaction(SIGTERM, &sa, &gPrevTerm);
}

SignalCancelScope::~SignalCancelScope() {
  ::sigaction(SIGINT, &gPrevInt, nullptr);
  ::sigaction(SIGTERM, &gPrevTerm, nullptr);
  gSignalToken.store(nullptr, std::memory_order_release);
}

}  // namespace prox::support
