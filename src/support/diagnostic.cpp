#include "support/diagnostic.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace prox::support {

const char* statusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::SingularMatrix: return "singular-matrix";
    case StatusCode::NewtonNonConverge: return "newton-nonconverge";
    case StatusCode::NonFiniteSolution: return "non-finite-solution";
    case StatusCode::TimestepUnderflow: return "timestep-underflow";
    case StatusCode::InitialOpFailed: return "initial-op-failed";
    case StatusCode::SimulationFailed: return "simulation-failed";
    case StatusCode::TableOutOfRange: return "table-out-of-range";
    case StatusCode::TableMissing: return "table-missing";
    case StatusCode::ParseError: return "parse-error";
    case StatusCode::IoError: return "io-error";
    case StatusCode::ResourceExhausted: return "resource-exhausted";
    case StatusCode::StructuralError: return "structural-error";
    case StatusCode::Cancelled: return "cancelled";
    case StatusCode::DeadlineExceeded: return "deadline-exceeded";
    case StatusCode::Internal: return "internal";
  }
  return "unknown";
}

const char* severityName(Severity severity) noexcept {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::toString() const {
  std::ostringstream os;
  if (!site.empty()) os << site << ": ";
  if (line >= 0) os << "line " << line << ": ";
  os << message;
  os << " [" << statusCodeName(code) << ", " << severityName(severity) << ']';
  bool openedContext = false;
  auto context = [&]() -> std::ostringstream& {
    os << (openedContext ? ", " : " (");
    openedContext = true;
    return os;
  };
  if (!gate.empty()) context() << "gate " << gate;
  if (pin >= 0) context() << "pin " << pin;
  if (tau >= 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "tau %.4g s", tau);
    context() << buf;
  }
  if (sepSet) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "sep %.4g s", sep);
    context() << buf;
  }
  if (openedContext) os << ')';
  return os.str();
}

Diagnostic makeDiagnostic(StatusCode code, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::Error;
  d.message = std::move(message);
  return d;
}

}  // namespace prox::support
