#pragma once
// Typed diagnostics for the fault-tolerance layer.
//
// Every recoverable failure in the numeric core (singular Jacobian, Newton
// non-convergence, timestep underflow, out-of-grid or missing table lookups,
// parse errors, ...) is described by a StatusCode plus structured context
// (site, gate, pin, sweep point, source line) instead of a bare
// std::runtime_error string.  Throwing paths use DiagnosticError, which
// derives from std::runtime_error so existing catch sites keep working while
// new code can switch on diagnostic().code.  Non-throwing paths (the
// characterization healing loop, solver status structs) pass Diagnostic /
// StatusCode values directly.

#include <stdexcept>
#include <string>
#include <vector>

namespace prox::support {

/// What went wrong.  Ok is the zero value so a default Status is success.
enum class StatusCode {
  Ok = 0,
  // Numeric core.
  SingularMatrix,     ///< LU pivot below tolerance (possibly fault-injected)
  NewtonNonConverge,  ///< iteration budget exhausted without convergence
  NonFiniteSolution,  ///< NaN/Inf appeared in the solution vector
  TimestepUnderflow,  ///< transient step halved below hmin
  InitialOpFailed,    ///< no DC operating point at t = 0
  SimulationFailed,   ///< a transistor-level transient could not complete
  // Model / table layer.
  TableOutOfRange,    ///< query clamped to the characterized grid boundary
  TableMissing,       ///< no table installed for the requested (pin, edge)
  // Front ends.
  ParseError,         ///< malformed netlist or .prox model file
  IoError,            ///< file could not be opened / read / written
  ResourceExhausted,  ///< reader cap / allocation budget / ResourceBudget hit
  StructuralError,    ///< invalid netlist structure (cycle, multi-driver, ...)
  // Cooperative cancellation (support/cancel.hpp).
  Cancelled,          ///< explicit cancel or SIGINT/SIGTERM
  DeadlineExceeded,   ///< --timeout watchdog deadline passed
  Internal,           ///< invariant violation; always a bug
};

/// How bad it is.  Degraded-but-completed work reports Warning; aborted work
/// reports Error; Fatal marks states the process cannot continue from.
enum class Severity { Info = 0, Warning, Error, Fatal };

const char* statusCodeName(StatusCode code) noexcept;
const char* severityName(Severity severity) noexcept;

/// A typed diagnostic: code, severity, human-readable message, and whatever
/// structured context the reporting site could attach.  Unset context fields
/// keep their sentinel (-1 for indices/lines, NaN for physical quantities,
/// empty for strings).
struct Diagnostic {
  StatusCode code = StatusCode::Ok;
  Severity severity = Severity::Error;
  std::string message;

  std::string site;  ///< reporting subsystem, e.g. "spice.tran"
  std::string gate;  ///< cell / instance name when applicable
  int pin = -1;      ///< input pin index
  int line = -1;     ///< 1-based source line (netlist / .prox parsers)
  double tau = -1.0; ///< sweep-point transition time [s]
  double sep = -1.0; ///< sweep-point separation [s] (may legitimately be < 0;
                     ///< sepSet distinguishes "unset" from a negative value)
  bool sepSet = false;

  bool ok() const noexcept { return code == StatusCode::Ok; }

  /// "site: message [code, severity] (context...)" single-line rendering.
  std::string toString() const;

  // Fluent context builders, so reporting sites stay one expression.
  Diagnostic& withSite(std::string s) { site = std::move(s); return *this; }
  Diagnostic& withGate(std::string g) { gate = std::move(g); return *this; }
  Diagnostic& withPin(int p) { pin = p; return *this; }
  Diagnostic& withLine(int l) { line = l; return *this; }
  Diagnostic& withSweepPoint(double tauS, double sepS) {
    tau = tauS;
    sep = sepS;
    sepSet = true;
    return *this;
  }
  Diagnostic& withSeverity(Severity s) { severity = s; return *this; }
};

/// Builds an Error-severity diagnostic in one call.
Diagnostic makeDiagnostic(StatusCode code, std::string message);

/// Exception carrying a Diagnostic.  Derives from std::runtime_error (what()
/// is the rendered diagnostic) so legacy `catch (const std::runtime_error&)`
/// sites continue to work unchanged.
class DiagnosticError : public std::runtime_error {
 public:
  explicit DiagnosticError(Diagnostic diag)
      : std::runtime_error(diag.toString()), diag_(std::move(diag)) {}

  const Diagnostic& diagnostic() const noexcept { return diag_; }
  StatusCode code() const noexcept { return diag_.code; }
  Severity severity() const noexcept { return diag_.severity; }

 private:
  Diagnostic diag_;
};

/// Success-or-diagnostic result for non-throwing call paths.
class Status {
 public:
  Status() = default;  // success
  /*implicit*/ Status(Diagnostic diag) : diag_(std::move(diag)) {}

  static Status success() { return Status(); }
  static Status failure(StatusCode code, std::string message) {
    return Status(makeDiagnostic(code, std::move(message)));
  }

  bool ok() const noexcept { return diag_.ok(); }
  explicit operator bool() const noexcept { return ok(); }
  StatusCode code() const noexcept { return diag_.code; }
  const Diagnostic& diagnostic() const noexcept { return diag_; }
  std::string toString() const { return ok() ? "ok" : diag_.toString(); }

 private:
  Diagnostic diag_;
};

/// Accumulates diagnostics from a multi-point operation (a characterization
/// sweep, a parse) together with the worst severity seen.
class DiagnosticLog {
 public:
  void record(Diagnostic diag) {
    if (!diag.ok() && diag.severity > worst_) worst_ = diag.severity;
    entries_.push_back(std::move(diag));
  }

  const std::vector<Diagnostic>& entries() const noexcept { return entries_; }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  Severity worstSeverity() const noexcept { return worst_; }
  void clear() {
    entries_.clear();
    worst_ = Severity::Info;
  }

 private:
  std::vector<Diagnostic> entries_;
  Severity worst_ = Severity::Info;
};

}  // namespace prox::support
