#include "support/fault_injection.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace prox::support {

const char* faultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::SingularLu: return "singular-lu";
    case FaultKind::NewtonNonConverge: return "newton-nonconverge";
    case FaultKind::NanResidual: return "nan-residual";
    case FaultKind::SimulationFailure: return "simulation-failure";
    case FaultKind::ProcessCrash: return "process-crash";
    case FaultKind::WorkerHang: return "worker-hang";
    case FaultKind::CorruptArtifact: return "corrupt-artifact";
  }
  return "unknown";
}

void crashProcessForFaultInjection() noexcept {
  ::raise(SIGKILL);
  std::_Exit(137);
}

namespace {

// constinit so the fast path (a relaxed load) never goes through an
// initialization guard.
constinit std::atomic<bool> gArmed{false};

constinit thread_local long long tTaskIndex = -1;

std::mutex& planMutex() {
  static std::mutex mu;
  return mu;
}

struct PlanState {
  FaultSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

PlanState& planState() {
  static PlanState state;
  return state;
}

}  // namespace

void FaultPlan::arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(planMutex());
  PlanState& st = planState();
  st.spec = std::move(spec);
  st.hits = 0;
  st.fired = 0;
  gArmed.store(true, std::memory_order_release);
}

void FaultPlan::disarm() {
  std::lock_guard<std::mutex> lock(planMutex());
  gArmed.store(false, std::memory_order_release);
}

bool FaultPlan::armed() noexcept {
  return gArmed.load(std::memory_order_acquire);
}

std::uint64_t FaultPlan::hits() {
  std::lock_guard<std::mutex> lock(planMutex());
  return planState().hits;
}

std::uint64_t FaultPlan::fired() {
  std::lock_guard<std::mutex> lock(planMutex());
  return planState().fired;
}

TaskScope::TaskScope(long long index) noexcept : previous_(tTaskIndex) {
  tTaskIndex = index;
}

TaskScope::~TaskScope() { tTaskIndex = previous_; }

long long TaskScope::current() noexcept { return tTaskIndex; }

bool FaultPlan::shouldFire(const char* site, FaultKind kind) noexcept {
  if (!gArmed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(planMutex());
  if (!gArmed.load(std::memory_order_relaxed)) return false;
  PlanState& st = planState();
  if (st.spec.kind != kind || st.spec.site.compare(site) != 0) return false;
  // Task-keyed plans neither fire nor count hits outside their task, so the
  // hit tally (and thus triggerHit) is task-local and order-independent.
  if (st.spec.taskIndex >= 0 && tTaskIndex != st.spec.taskIndex) return false;
  ++st.hits;
  const bool fire = st.hits >= st.spec.triggerHit &&
                    st.hits < st.spec.triggerHit + st.spec.count;
  if (fire) ++st.fired;
  return fire;
}

}  // namespace prox::support
