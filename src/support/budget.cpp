#include "support/budget.hpp"

#include <unistd.h>

#include <cstdio>
#include <string>

#include "obs/registry.hpp"

namespace prox::support {

namespace detail {
thread_local constinit BudgetTracker* tlsBudgetTracker = nullptr;
}  // namespace detail

namespace {

[[noreturn]] void failBudget(const char* site, const char* which,
                             std::size_t used, std::size_t limit) {
  PROX_OBS_COUNT("support.budget.exceeded", 1);
  throw DiagnosticError(
      makeDiagnostic(StatusCode::ResourceExhausted,
                     std::string("resource budget exceeded: ") + which + " " +
                         std::to_string(used) + " > limit " +
                         std::to_string(limit))
          .withSite(site));
}

}  // namespace

std::size_t currentRssBytes() noexcept {
  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long sizePages = 0, residentPages = 0;
  const int got = std::fscanf(f, "%llu %llu", &sizePages, &residentPages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(residentPages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
}

void BudgetTracker::chargeNodes(std::size_t n, const char* site) {
  const std::size_t total =
      nodes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.maxNodes != 0 && total > limits_.maxNodes) {
    PROX_OBS_COUNT("support.budget.nodes_exceeded", 1);
    failBudget(site, "nodes", total, limits_.maxNodes);
  }
}

void BudgetTracker::chargeTables(std::size_t n, const char* site) {
  const std::size_t total =
      tables_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.maxTables != 0 && total > limits_.maxTables) {
    PROX_OBS_COUNT("support.budget.tables_exceeded", 1);
    failBudget(site, "tables", total, limits_.maxTables);
  }
}

void BudgetTracker::chargeRecords(std::size_t n, const char* site) {
  const std::size_t total =
      records_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.maxRecords != 0 && total > limits_.maxRecords) {
    PROX_OBS_COUNT("support.budget.records_exceeded", 1);
    failBudget(site, "records", total, limits_.maxRecords);
  }
}

void BudgetTracker::checkRss(const char* site) {
  if (limits_.maxRssBytes == 0) return;
  const unsigned tick = rssTick_.fetch_add(1, std::memory_order_relaxed);
  if (tick % kRssCheckStride != 0) return;
  PROX_OBS_COUNT("support.budget.rss_checks", 1);
  const std::size_t rss = currentRssBytes();
  if (rss > limits_.maxRssBytes) {
    PROX_OBS_COUNT("support.budget.rss_exceeded", 1);
    failBudget(site, "resident memory [bytes]", rss, limits_.maxRssBytes);
  }
}

}  // namespace prox::support
