#pragma once
// Deterministic fault-injection harness.
//
// Tests arm a FaultPlan against a *named site* (a stable string like
// "spice.newton" or "linalg.lu.factor"); instrumented production code asks
// `PROX_FAULT_POINT(site, Kind)` whether the fault should fire at this hit.
// The plan fires on hits [triggerHit, triggerHit + count) of the matching
// site and never again, so every recovery path (solver ladder rungs,
// characterization healing, STA degraded mode) can be exercised by a
// reproducible schedule instead of hoped-for natural failures.
//
// Compiled in under PROX_ENABLE_FAULT_INJECTION (CMake option, default ON;
// OFF compiles PROX_FAULT_POINT to a constant false).  When no plan is armed
// the check is a single relaxed atomic load, so instrumented hot paths pay
// one predictable branch.

#include <atomic>
#include <cstdint>
#include <string>

namespace prox::support {

enum class FaultKind {
  SingularLu,         ///< LuFactorization::factor reports numerical singularity
  NewtonNonConverge,  ///< solveNewton returns without convergence
  NanResidual,        ///< a NaN is planted in the Newton residual vector
  SimulationFailure,  ///< GateSimulator::simulate throws SimulationFailed
  ProcessCrash,       ///< the process dies by SIGKILL at the site (crash test)
  WorkerHang,         ///< a fleet worker stops making progress (hang test)
  CorruptArtifact,    ///< a fleet worker damages its output artifact's bytes
};

const char* faultKindName(FaultKind kind) noexcept;

/// The ProcessCrash fault's action: kills the process exactly as an external
/// `kill -9` would -- no unwinding, no atexit, no stream flushing -- so
/// checkpoint/resume tests exercise the true SIGKILL crash surface.  The
/// _Exit fallback (exit code 137 = 128 + SIGKILL) only runs if raise fails.
[[noreturn]] void crashProcessForFaultInjection() noexcept;

struct FaultSpec {
  std::string site;                ///< exact site name to match
  FaultKind kind = FaultKind::NewtonNonConverge;
  std::uint64_t triggerHit = 1;    ///< 1-based matching hit at which to start
  std::uint64_t count = 1;         ///< consecutive matching hits that fire
  /// When >= 0, the plan only matches hits made from inside the parallel
  /// task with this index (see TaskScope).  Keying by task index instead of
  /// global hit order makes injected faults land on the same sweep point
  /// regardless of thread count or execution interleaving.
  long long taskIndex = -1;
};

/// RAII marker: "the calling thread is executing parallel task @p index".
/// par::parallelFor wraps every task body in one, so a FaultSpec with
/// taskIndex >= 0 fires deterministically in that task no matter which
/// worker runs it or when.  Nests (restores the previous index on exit);
/// outside any task current() is -1.
class TaskScope {
 public:
  explicit TaskScope(long long index) noexcept;
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  /// The innermost task index on this thread, or -1 outside any task.
  static long long current() noexcept;

 private:
  long long previous_;
};

/// Process-global, single-plan harness.  Tests arm/disarm around the code
/// under test; production code only ever calls shouldFire (via the macro).
/// Thread-safe; the armed flag is checked lock-free.
class FaultPlan {
 public:
  /// Arms @p spec, resetting the hit and fired tallies.
  static void arm(FaultSpec spec);

  /// Disarms any armed plan (tallies survive until the next arm()).
  static void disarm();

  static bool armed() noexcept;

  /// Hits observed at the armed plan's (site, kind) since arm().
  static std::uint64_t hits();

  /// Number of times the armed plan actually fired since arm().
  static std::uint64_t fired();

  /// Called by instrumented sites.  Counts a hit when (site, kind) matches
  /// the armed plan and reports whether this hit falls inside the firing
  /// window.  Never throws; returns false when nothing is armed.
  static bool shouldFire(const char* site, FaultKind kind) noexcept;

  /// RAII arm/disarm for tests.
  class Scope {
   public:
    explicit Scope(FaultSpec spec) { arm(std::move(spec)); }
    ~Scope() { disarm(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

}  // namespace prox::support

#ifndef PROX_ENABLE_FAULT_INJECTION
#define PROX_ENABLE_FAULT_INJECTION 0
#endif

#if PROX_ENABLE_FAULT_INJECTION
/// True when the armed fault plan fires at this hit of @p site.  @p kind is
/// the bare FaultKind enumerator name.
#define PROX_FAULT_POINT(site, kind)             \
  (::prox::support::FaultPlan::shouldFire(       \
      site, ::prox::support::FaultKind::kind))
#else
#define PROX_FAULT_POINT(site, kind) (false)
#endif
