#include "vtc/thresholds.hpp"

#include <stdexcept>

namespace prox::vtc {

ThresholdReport chooseThresholds(std::vector<VtcCurve> curves) {
  if (curves.empty()) {
    throw std::invalid_argument("chooseThresholds: no curves");
  }
  ThresholdReport rep;
  rep.curves = std::move(curves);
  rep.chosen.vil = rep.curves[0].points.vil;
  rep.chosen.vih = rep.curves[0].points.vih;
  for (std::size_t i = 1; i < rep.curves.size(); ++i) {
    if (rep.curves[i].points.vil < rep.chosen.vil) {
      rep.chosen.vil = rep.curves[i].points.vil;
      rep.vilCurveIndex = i;
    }
    if (rep.curves[i].points.vih > rep.chosen.vih) {
      rep.chosen.vih = rep.curves[i].points.vih;
      rep.vihCurveIndex = i;
    }
  }
  return rep;
}

ThresholdReport chooseThresholds(const cells::CellSpec& spec, double step) {
  return chooseThresholds(extractAllVtcs(spec, step));
}

}  // namespace prox::vtc
