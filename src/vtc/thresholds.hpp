#pragma once
// The paper's Section 2 threshold-selection rule.
//
// Measuring delay with thresholds taken from any single VTC can yield
// negative delays once input separations grow (the output starts behaving
// like a different VTC's).  Taking the *minimum V_il* and *maximum V_ih*
// over all 2^n - 1 VTCs guarantees V_il < V_m < V_ih for the V_m of every
// curve, hence strictly positive delays for any combination of transition
// times and separations.

#include "vtc/vtc.hpp"

namespace prox::vtc {

/// Full threshold analysis of a gate.
struct ThresholdReport {
  std::vector<VtcCurve> curves;   ///< all 2^n - 1 VTCs
  wave::Thresholds chosen;        ///< min V_il / max V_ih over the family
  std::size_t vilCurveIndex = 0;  ///< which curve supplied the chosen V_il
  std::size_t vihCurveIndex = 0;  ///< which curve supplied the chosen V_ih
};

/// Extracts every VTC of the gate and applies the min-V_il / max-V_ih rule.
ThresholdReport chooseThresholds(const cells::CellSpec& spec,
                                 double step = 0.01);

/// Applies the rule to an already-extracted family of curves.
ThresholdReport chooseThresholds(std::vector<VtcCurve> curves);

}  // namespace prox::vtc
