#include "vtc/complex.hpp"

#include <algorithm>
#include <stdexcept>

#include "spice/dcsweep.hpp"

namespace prox::vtc {

ComplexVtcCurve extractComplexVtc(const cells::ComplexCellSpec& spec,
                                  const std::vector<int>& subset,
                                  const std::vector<bool>& stableLevels,
                                  double step) {
  if (subset.empty()) {
    throw std::invalid_argument("extractComplexVtc: empty subset");
  }
  const int n = spec.pinCount();
  if (static_cast<int>(stableLevels.size()) != n) {
    throw std::invalid_argument("extractComplexVtc: stableLevels size mismatch");
  }

  spice::Circuit ckt;
  const cells::CellNets nets = cells::buildComplexCell(ckt, spec, "x0");

  const spice::NodeId sweepNode = ckt.node("sweep");
  auto& vsweep =
      ckt.add<spice::VoltageSource>("vsweep", sweepNode, spice::kGround, 0.0);
  for (int k = 0; k < n; ++k) {
    const bool isSwitching =
        std::find(subset.begin(), subset.end(), k) != subset.end();
    if (isSwitching) {
      ckt.add<spice::VoltageSource>("vtie" + std::to_string(k), sweepNode,
                                    nets.inputs[static_cast<std::size_t>(k)],
                                    0.0);
    } else {
      ckt.add<spice::VoltageSource>(
          "vst" + std::to_string(k), nets.inputs[static_cast<std::size_t>(k)],
          spice::kGround,
          stableLevels[static_cast<std::size_t>(k)] ? spec.tech.vdd : 0.0);
    }
  }

  const auto sweep = spice::dcSweep(ckt, vsweep, 0.0, spec.tech.vdd, step);

  ComplexVtcCurve out;
  out.curve.switchingInputs = subset;
  out.curve.curve = sweep.nodeCurve(ckt, nets.out);
  out.curve.points = analyzeVtc(out.curve.curve);
  out.stableLevels = stableLevels;
  return out;
}

ComplexThresholdReport chooseComplexThresholds(
    const cells::ComplexCellSpec& spec, double step) {
  const int n = spec.pinCount();
  ComplexThresholdReport rep;
  bool first = true;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1u) subset.push_back(k);
    }
    const auto stable = spec.sensitizingAssignment(subset);
    if (!stable) {
      rep.skippedSubsets.push_back(subset);
      continue;
    }
    rep.curves.push_back(extractComplexVtc(spec, subset, *stable, step));
    const VtcPoints& pts = rep.curves.back().curve.points;
    if (first || pts.vil < rep.chosen.vil) {
      rep.chosen.vil = pts.vil;
      rep.vilCurveIndex = rep.curves.size() - 1;
    }
    if (first || pts.vih > rep.chosen.vih) {
      rep.chosen.vih = pts.vih;
      rep.vihCurveIndex = rep.curves.size() - 1;
    }
    first = false;
  }
  if (rep.curves.empty()) {
    throw std::runtime_error("chooseComplexThresholds: no sensitizable subset");
  }
  return rep;
}

}  // namespace prox::vtc
