#pragma once
// Voltage-transfer-curve extraction (paper Section 2).
//
// An n-input gate has 2^n - 1 distinct VTCs, one per non-empty subset of
// switching inputs (the rest held at the non-controlling level).  Each curve
// yields three characteristic voltages:
//   * V_il : lower unity-gain point (slope = -1 on the way down),
//   * V_ih : upper unity-gain point (slope = -1 returning),
//   * V_m  : switching threshold, where Vout = Vin.

#include <vector>

#include "cells/cell.hpp"
#include "waveform/measure.hpp"
#include "waveform/waveform.hpp"

namespace prox::vtc {

/// Characteristic voltages of one VTC.
struct VtcPoints {
  double vil = 0.0;
  double vih = 0.0;
  double vm = 0.0;
};

/// One extracted transfer curve.
struct VtcCurve {
  std::vector<int> switchingInputs;  ///< subset of pins swept together
  wave::Waveform curve;              ///< vin -> vout
  VtcPoints points;
};

/// Finds V_il / V_ih (unity-gain, slope = -1) and V_m (Vout = Vin) on a
/// monotonically falling transfer curve.  Throws std::runtime_error when the
/// curve has no unity-gain region (not a valid inverting VTC).
VtcPoints analyzeVtc(const wave::Waveform& curve);

/// Extracts the VTC for the given subset of switching inputs by DC-sweeping
/// them together from 0 to Vdd while the remaining inputs sit at the
/// non-controlling level.  @p step is the sweep increment in volts.
VtcCurve extractVtc(const cells::CellSpec& spec,
                    const std::vector<int>& switching, double step = 0.01);

/// Extracts all 2^n - 1 VTCs of the gate, ordered by subset bitmask
/// (so curves[0] is {input 0} alone and curves.back() is all inputs).
std::vector<VtcCurve> extractAllVtcs(const cells::CellSpec& spec,
                                     double step = 0.01);

}  // namespace prox::vtc
