#pragma once
// Section 2 threshold analysis generalized to complex (AOI/OAI) gates.
//
// For a complex gate a switching subset only has a VTC when the remaining
// inputs are held at levels that *sensitize* it (the output must actually
// toggle).  chooseComplexThresholds() enumerates all subsets, finds a
// sensitizing assignment for each (skipping subsets that have none), extracts
// the VTCs and applies the min-V_il / max-V_ih rule across the family --
// exactly the paper's recipe, generalized beyond NAND/NOR.

#include "cells/pull_network.hpp"
#include "vtc/thresholds.hpp"

namespace prox::vtc {

/// One complex-gate VTC: the curve plus the stable levels used.
struct ComplexVtcCurve {
  VtcCurve curve;                 ///< switchingInputs + curve + points
  std::vector<bool> stableLevels; ///< level per pin (entries for switching pins unused)
};

/// Extracts the VTC of @p subset with the other pins held at
/// @p stableLevels.  Throws std::runtime_error when the output does not
/// toggle (non-sensitizing assignment).
ComplexVtcCurve extractComplexVtc(const cells::ComplexCellSpec& spec,
                                  const std::vector<int>& subset,
                                  const std::vector<bool>& stableLevels,
                                  double step = 0.01);

struct ComplexThresholdReport {
  std::vector<ComplexVtcCurve> curves;
  wave::Thresholds chosen;
  std::size_t vilCurveIndex = 0;
  std::size_t vihCurveIndex = 0;
  /// Subsets with no sensitizing assignment (no VTC exists).
  std::vector<std::vector<int>> skippedSubsets;
};

/// Applies the Section 2 rule over every sensitizable subset of the gate.
ComplexThresholdReport chooseComplexThresholds(
    const cells::ComplexCellSpec& spec, double step = 0.01);

}  // namespace prox::vtc
