#include "vtc/vtc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "spice/dcsweep.hpp"
#include "spice/op.hpp"
#include "spice/vsource.hpp"

namespace prox::vtc {

namespace {

/// Linear interpolation of the sweep value where the numerically
/// differentiated slope crosses -1.
double interpolateUnityGain(const std::vector<double>& vin,
                            const std::vector<double>& slope, std::size_t i0,
                            std::size_t i1) {
  const double s0 = slope[i0];
  const double s1 = slope[i1];
  if (s1 == s0) return vin[i0];
  const double f = (-1.0 - s0) / (s1 - s0);
  return vin[i0] + f * (vin[i1] - vin[i0]);
}

}  // namespace

VtcPoints analyzeVtc(const wave::Waveform& curve) {
  const auto& s = curve.samples();
  if (s.size() < 5) throw std::runtime_error("analyzeVtc: curve too short");

  std::vector<double> vin(s.size());
  std::vector<double> vout(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    vin[i] = s[i].t;
    vout[i] = s[i].v;
  }

  // Central-difference slope (one-sided at the ends).
  std::vector<double> slope(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::size_t lo = i == 0 ? 0 : i - 1;
    const std::size_t hi = i + 1 == s.size() ? i : i + 1;
    slope[i] = (vout[hi] - vout[lo]) / (vin[hi] - vin[lo]);
  }

  VtcPoints pts;
  // V_il: first crossing of slope through -1 (from above, going steeper).
  bool foundIl = false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (slope[i - 1] > -1.0 && slope[i] <= -1.0) {
      pts.vil = interpolateUnityGain(vin, slope, i - 1, i);
      foundIl = true;
      break;
    }
  }
  // V_ih: last crossing of slope back through -1 (returning toward 0).
  bool foundIh = false;
  for (std::size_t i = s.size(); i-- > 1;) {
    if (slope[i] > -1.0 && slope[i - 1] <= -1.0) {
      pts.vih = interpolateUnityGain(vin, slope, i - 1, i);
      foundIh = true;
      break;
    }
  }
  if (!foundIl || !foundIh) {
    throw std::runtime_error("analyzeVtc: no unity-gain region found");
  }

  // V_m: Vout = Vin crossing (the curve falls through the identity line).
  bool foundVm = false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double d0 = vout[i - 1] - vin[i - 1];
    const double d1 = vout[i] - vin[i];
    if (d0 > 0.0 && d1 <= 0.0) {
      const double f = d0 / (d0 - d1);
      pts.vm = vin[i - 1] + f * (vin[i] - vin[i - 1]);
      foundVm = true;
      break;
    }
  }
  if (!foundVm) throw std::runtime_error("analyzeVtc: no Vout = Vin crossing");
  return pts;
}

VtcCurve extractVtc(const cells::CellSpec& spec,
                    const std::vector<int>& switching, double step) {
  if (switching.empty()) {
    throw std::invalid_argument("extractVtc: empty switching subset");
  }
  const int n = spec.type == cells::GateType::Inverter ? 1 : spec.fanin;
  for (int pin : switching) {
    if (pin < 0 || pin >= n) {
      throw std::invalid_argument("extractVtc: pin out of range");
    }
  }

  spice::Circuit ckt;
  const cells::CellNets nets = cells::buildCell(ckt, spec, "x0");

  // Switching inputs share one swept node; the rest get constant sources.
  const spice::NodeId sweepNode = ckt.node("sweep");
  auto& vsweep = ckt.add<spice::VoltageSource>("vsweep", sweepNode,
                                               spice::kGround, 0.0);
  const double nc = spec.nonControllingLevel();
  for (int k = 0; k < n; ++k) {
    const bool isSwitching =
        std::find(switching.begin(), switching.end(), k) != switching.end();
    if (isSwitching) {
      // Ideal short from the sweep node to the pin (a 0 V source).
      ckt.add<spice::VoltageSource>("vtie" + std::to_string(k), sweepNode,
                                    nets.inputs[static_cast<std::size_t>(k)], 0.0);
    } else {
      ckt.add<spice::VoltageSource>("vnc" + std::to_string(k),
                                    nets.inputs[static_cast<std::size_t>(k)],
                                    spice::kGround, nc);
    }
  }

  const auto sweep = spice::dcSweep(ckt, vsweep, 0.0, spec.tech.vdd, step);

  VtcCurve out;
  out.switchingInputs = switching;
  out.curve = sweep.nodeCurve(ckt, nets.out);
  out.points = analyzeVtc(out.curve);
  return out;
}

std::vector<VtcCurve> extractAllVtcs(const cells::CellSpec& spec, double step) {
  const int n = spec.type == cells::GateType::Inverter ? 1 : spec.fanin;
  std::vector<VtcCurve> curves;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1u) subset.push_back(k);
    }
    curves.push_back(extractVtc(spec, subset, step));
  }
  return curves;
}

}  // namespace prox::vtc
