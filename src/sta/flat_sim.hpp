#pragma once
// Flat transistor-level reference for the STA: builds ONE circuit containing
// every instance of a gate-level netlist, drives the primary inputs with the
// given arrival events, runs a single transient, and measures arrival time
// and slope on every net.  This is the ground truth the proximity-aware STA
// is judged against (and the thing STA exists to avoid computing).

#include <unordered_map>

#include "sta/timing_graph.hpp"
#include "waveform/waveform.hpp"

namespace prox::sta {

struct FlatSimResult {
  /// Measured arrival per net (absent when the net never switched).
  std::unordered_map<std::string, Arrival> arrivals;
  /// Full waveform per net, in the caller's time base.
  std::unordered_map<std::string, wave::Waveform> waves;
};

/// Simulates the whole netlist at transistor level.
///
/// Primary-input arrivals define full-swing ramps (the same convention the
/// STA uses); primary inputs without an arrival sit at the non-controlling
/// level of their first consumer.  Output edges are inferred by a proximity
/// TimingAnalyzer pass (direction only -- times come from the simulation).
/// @p settle is the extra simulated time after the last predicted event.
FlatSimResult simulateFlat(
    const Netlist& netlist,
    const std::unordered_map<std::string, Arrival>& inputArrivals,
    double settle = 3e-9);

}  // namespace prox::sta
