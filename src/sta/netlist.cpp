#include "sta/netlist.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/registry.hpp"

namespace prox::sta {

void Netlist::addPrimaryInput(const std::string& net) {
  if (isDriven(net)) {
    throw std::invalid_argument("Netlist: net already driven: " + net);
  }
  primaryInputs_.insert(net);
}

const Instance& Netlist::addInstance(const std::string& name,
                                     const characterize::CharacterizedGate& cell,
                                     std::vector<std::string> inputNets,
                                     const std::string& outputNet) {
  if (!instanceNames_.insert(name).second) {
    throw std::invalid_argument("Netlist: duplicate instance: " + name);
  }
  if (static_cast<int>(inputNets.size()) != cell.pinCount()) {
    throw std::invalid_argument("Netlist: pin count mismatch on " + name);
  }
  if (isDriven(outputNet)) {
    throw std::invalid_argument("Netlist: net multiply driven: " + outputNet);
  }
  Instance inst;
  inst.name = name;
  inst.cell = &cell;
  inst.inputNets = std::move(inputNets);
  inst.outputNet = outputNet;
  instances_.push_back(std::move(inst));
  driverOf_[outputNet] = instances_.size() - 1;
  return instances_.back();
}

bool Netlist::isDriven(const std::string& net) const {
  return primaryInputs_.count(net) != 0 || driverOf_.count(net) != 0;
}

std::vector<const Instance*> Netlist::topologicalOrder() const {
  // Kahn's algorithm over the instance graph.
  std::vector<std::size_t> remaining(instances_.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(instances_.size());

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (const std::string& net : instances_[i].inputNets) {
      if (primaryInputs_.count(net) != 0) continue;
      auto it = driverOf_.find(net);
      if (it == driverOf_.end()) {
        throw std::runtime_error("Netlist: undriven input net " + net +
                                 " on instance " + instances_[i].name);
      }
      consumers[it->second].push_back(i);
      ++remaining[i];
    }
  }

  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (remaining[i] == 0) ready.push(i);
  }
  std::vector<const Instance*> order;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    order.push_back(&instances_[i]);
    for (std::size_t c : consumers[i]) {
      if (--remaining[c] == 0) ready.push(c);
    }
  }
  if (order.size() != instances_.size()) {
    throw std::runtime_error("Netlist: combinational cycle detected");
  }
  PROX_OBS_COUNT("sta.graph.nodes_levelized", order.size());
  return order;
}

std::vector<std::vector<const Instance*>> Netlist::levels() const {
  // Frontier-by-frontier Kahn: each frontier is one level.  The setup
  // mirrors topologicalOrder() so both report identical structural errors.
  std::vector<std::size_t> remaining(instances_.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(instances_.size());

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (const std::string& net : instances_[i].inputNets) {
      if (primaryInputs_.count(net) != 0) continue;
      auto it = driverOf_.find(net);
      if (it == driverOf_.end()) {
        throw std::runtime_error("Netlist: undriven input net " + net +
                                 " on instance " + instances_[i].name);
      }
      consumers[it->second].push_back(i);
      ++remaining[i];
    }
  }

  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (remaining[i] == 0) frontier.push_back(i);
  }
  std::vector<std::vector<const Instance*>> levels;
  std::size_t placed = 0;
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    std::vector<const Instance*> level;
    level.reserve(frontier.size());
    for (std::size_t i : frontier) {
      level.push_back(&instances_[i]);
      ++placed;
      for (std::size_t c : consumers[i]) {
        if (--remaining[c] == 0) next.push_back(c);
      }
    }
    // Declaration order within a level keeps task indices (and thus the
    // deterministic fault-plan keying) independent of discovery order.
    std::sort(next.begin(), next.end());
    levels.push_back(std::move(level));
    frontier = std::move(next);
  }
  if (placed != instances_.size()) {
    throw std::runtime_error("Netlist: combinational cycle detected");
  }
  PROX_OBS_COUNT("sta.graph.nodes_levelized", placed);
  PROX_OBS_COUNT("sta.graph.levels", levels.size());
  return levels;
}

}  // namespace prox::sta
