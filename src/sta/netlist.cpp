#include "sta/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"

namespace prox::sta {

namespace {

constexpr const char* kSite = "sta.netlist";

[[noreturn]] void failStructural(const std::string& msg) {
  PROX_OBS_COUNT("sta.structural.rejects", 1);
  throw support::DiagnosticError(
      support::makeDiagnostic(support::StatusCode::StructuralError, msg)
          .withSite(kSite));
}

const char* issueCounter(StructuralIssue::Kind k) {
  switch (k) {
    case StructuralIssue::Kind::Cycle: return "sta.structural.cycles";
    case StructuralIssue::Kind::SelfLoop: return "sta.structural.self_loops";
    case StructuralIssue::Kind::MultiDriver:
      return "sta.structural.multi_drivers";
    case StructuralIssue::Kind::DanglingInput:
      return "sta.structural.dangling_inputs";
  }
  return "sta.structural.unknown";
}

}  // namespace

const char* structuralKindName(StructuralIssue::Kind k) {
  switch (k) {
    case StructuralIssue::Kind::Cycle: return "cycle";
    case StructuralIssue::Kind::SelfLoop: return "self-loop";
    case StructuralIssue::Kind::MultiDriver: return "multi-driver";
    case StructuralIssue::Kind::DanglingInput: return "dangling-input";
  }
  return "?";
}

void Netlist::addPrimaryInput(const std::string& net) {
  if (isDriven(net)) {
    throw std::invalid_argument("Netlist: net already driven: " + net);
  }
  primaryInputs_.insert(net);
}

const Instance& Netlist::addInstance(const std::string& name,
                                     const characterize::CharacterizedGate& cell,
                                     std::vector<std::string> inputNets,
                                     const std::string& outputNet) {
  if (isDriven(outputNet)) {
    throw std::invalid_argument("Netlist: net multiply driven: " + outputNet);
  }
  return addInstanceLenient(name, cell, std::move(inputNets), outputNet);
}

const Instance& Netlist::addInstanceLenient(
    const std::string& name, const characterize::CharacterizedGate& cell,
    std::vector<std::string> inputNets, const std::string& outputNet) {
  if (!instanceNames_.insert(name).second) {
    throw std::invalid_argument("Netlist: duplicate instance: " + name);
  }
  if (static_cast<int>(inputNets.size()) != cell.pinCount()) {
    throw std::invalid_argument("Netlist: pin count mismatch on " + name);
  }
  support::budgetChargeNodes(1, kSite);
  Instance inst;
  inst.name = name;
  inst.cell = &cell;
  inst.inputNets = std::move(inputNets);
  inst.outputNet = outputNet;
  instances_.push_back(std::move(inst));
  if (isDriven(outputNet)) {
    // Untrusted input: the first driver keeps the net; this one is recorded
    // for validate()/levelize() to report.
    extraDrivers_.emplace_back(outputNet, instances_.size() - 1);
  } else {
    driverOf_[outputNet] = instances_.size() - 1;
  }
  return instances_.back();
}

bool Netlist::isDriven(const std::string& net) const {
  return primaryInputs_.count(net) != 0 || driverOf_.count(net) != 0;
}

LevelizeResult Netlist::levelize(StructuralPolicy policy) const {
  LevelizeResult out;
  const std::size_t n = instances_.size();
  const bool reject = policy == StructuralPolicy::Reject;

  std::vector<char> degraded(n, 0);
  const auto report = [&](StructuralIssue issue,
                          const std::size_t* degradeIdx) {
    PROX_OBS_COUNT(issueCounter(issue.kind), 1);
    if (reject) {
      failStructural("Netlist: " + issue.message);
    }
    if (degradeIdx != nullptr) degraded[*degradeIdx] = 1;
    out.issues.push_back(std::move(issue));
  };

  // Multiply-driven nets recorded at lenient construction.
  for (const auto& [net, loser] : extraDrivers_) {
    StructuralIssue issue;
    issue.kind = StructuralIssue::Kind::MultiDriver;
    issue.message = "net multiply driven: " + net + " (instance " +
                    instances_[loser].name + " loses to " +
                    (driverOf_.count(net) != 0
                         ? instances_[driverOf_.at(net)].name
                         : std::string("primary input")) +
                    ")";
    issue.instances.push_back(instances_[loser].name);
    report(std::move(issue), &loser);
  }

  // Dependency edges.  deps[] mirrors consumers[] so cycle extraction can
  // walk predecessors; dangling inputs either reject or become no-event
  // nets (the consumer is marked degraded).
  std::vector<std::size_t> remaining(n, 0);
  std::vector<std::vector<std::size_t>> consumers(n);
  std::vector<std::vector<std::size_t>> deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& net : instances_[i].inputNets) {
      if (primaryInputs_.count(net) != 0) continue;
      auto it = driverOf_.find(net);
      if (it == driverOf_.end()) {
        StructuralIssue issue;
        issue.kind = StructuralIssue::Kind::DanglingInput;
        issue.message = "undriven input net " + net + " on instance " +
                        instances_[i].name;
        issue.instances.push_back(instances_[i].name);
        report(std::move(issue), &i);
        continue;
      }
      consumers[it->second].push_back(i);
      deps[i].push_back(it->second);
      ++remaining[i];
    }
  }

  // Frontier-by-frontier Kahn: each frontier is one level.  When the
  // frontier drains with instances still unplaced, those instances sit on or
  // behind a cycle; Degrade breaks the cycle at its lowest-numbered member
  // (a deterministic choice) and resumes, so the loop always terminates with
  // every instance placed exactly once.
  std::vector<char> placedMark(n, 0);
  std::size_t placed = 0;
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining[i] == 0) frontier.push_back(i);
  }
  while (true) {
    while (!frontier.empty()) {
      std::vector<std::size_t> next;
      std::vector<const Instance*> level;
      level.reserve(frontier.size());
      for (std::size_t i : frontier) {
        level.push_back(&instances_[i]);
        placedMark[i] = 1;
        ++placed;
        for (std::size_t c : consumers[i]) {
          if (remaining[c] > 0 && --remaining[c] == 0 && placedMark[c] == 0) {
            next.push_back(c);
          }
        }
      }
      // Declaration order within a level keeps task indices (and thus the
      // deterministic fault-plan keying) independent of discovery order.
      std::sort(next.begin(), next.end());
      out.levels.push_back(std::move(level));
      frontier = std::move(next);
    }
    if (placed == n) break;

    // Stuck: extract one cycle by walking unplaced predecessors from the
    // lowest-numbered unplaced instance.  Every unplaced instance has an
    // unplaced dependency, so the walk must revisit a node.
    std::size_t start = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (placedMark[i] == 0) {
        start = i;
        break;
      }
    }
    std::vector<std::size_t> path;
    std::vector<std::size_t> posInPath(n, n);
    std::size_t cur = start;
    while (posInPath[cur] == n) {
      posInPath[cur] = path.size();
      path.push_back(cur);
      std::size_t nextDep = n;
      for (std::size_t d : deps[cur]) {
        if (placedMark[d] == 0) {
          nextDep = d;
          break;
        }
      }
      cur = nextDep;
    }
    // path[posInPath[cur]..] is the cycle in predecessor order; reverse it
    // so the message reads in signal-flow (driver -> consumer) order.
    std::vector<std::size_t> cycle(path.begin() + posInPath[cur], path.end());
    std::reverse(cycle.begin(), cycle.end());

    StructuralIssue issue;
    issue.kind = cycle.size() == 1 ? StructuralIssue::Kind::SelfLoop
                                   : StructuralIssue::Kind::Cycle;
    for (std::size_t i : cycle) issue.instances.push_back(instances_[i].name);
    std::string pathText;
    for (const std::string& name : issue.instances) {
      pathText += name;
      pathText += " -> ";
    }
    pathText += issue.instances.front();
    issue.message = std::string(cycle.size() == 1 ? "self-loop"
                                                  : "combinational cycle") +
                    " detected: " + pathText;

    const std::size_t breaker =
        *std::min_element(cycle.begin(), cycle.end());
    report(std::move(issue), &breaker);
    PROX_OBS_COUNT("sta.structural.loop_breaks", 1);
    remaining[breaker] = 0;
    frontier.assign(1, breaker);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (degraded[i] != 0) out.degradedInstances.push_back(instances_[i].name);
  }
  PROX_OBS_COUNT("sta.graph.nodes_levelized", placed);
  PROX_OBS_COUNT("sta.graph.levels", out.levels.size());
  return out;
}

std::vector<StructuralIssue> Netlist::validate() const {
  return levelize(StructuralPolicy::Degrade).issues;
}

std::vector<const Instance*> Netlist::topologicalOrder() const {
  LevelizeResult r = levelize(StructuralPolicy::Reject);
  std::vector<const Instance*> order;
  order.reserve(instances_.size());
  for (const auto& level : r.levels) {
    order.insert(order.end(), level.begin(), level.end());
  }
  return order;
}

std::vector<std::vector<const Instance*>> Netlist::levels() const {
  return levelize(StructuralPolicy::Reject).levels;
}

}  // namespace prox::sta
