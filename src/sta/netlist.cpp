#include "sta/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"

namespace prox::sta {

namespace {

constexpr const char* kSite = "sta.netlist";

[[noreturn]] void failStructural(const std::string& msg) {
  PROX_OBS_COUNT("sta.structural.rejects", 1);
  throw support::DiagnosticError(
      support::makeDiagnostic(support::StatusCode::StructuralError, msg)
          .withSite(kSite));
}

const char* issueCounter(StructuralIssue::Kind k) {
  switch (k) {
    case StructuralIssue::Kind::Cycle: return "sta.structural.cycles";
    case StructuralIssue::Kind::SelfLoop: return "sta.structural.self_loops";
    case StructuralIssue::Kind::MultiDriver:
      return "sta.structural.multi_drivers";
    case StructuralIssue::Kind::DanglingInput:
      return "sta.structural.dangling_inputs";
  }
  return "sta.structural.unknown";
}

}  // namespace

const char* structuralKindName(StructuralIssue::Kind k) {
  switch (k) {
    case StructuralIssue::Kind::Cycle: return "cycle";
    case StructuralIssue::Kind::SelfLoop: return "self-loop";
    case StructuralIssue::Kind::MultiDriver: return "multi-driver";
    case StructuralIssue::Kind::DanglingInput: return "dangling-input";
  }
  return "?";
}

NetId Netlist::internNet(const std::string& name) {
  const auto [it, inserted] = netIndex_.try_emplace(name, NetId());
  if (inserted) {
    if (netNames_.size() >= kInvalidIdValue) {
      throw std::length_error("Netlist: net count overflows 32-bit IDs");
    }
    it->second = NetId(netNames_.size());
    netNames_.push_back(name);
    netDriver_.emplace_back();
    netIsPi_.push_back(0);
  }
  return it->second;
}

NetId Netlist::addPrimaryInput(const std::string& net) {
  if (isDriven(net)) {
    throw std::invalid_argument("Netlist: net already driven: " + net);
  }
  const NetId id = internNet(net);
  netIsPi_[id.value] = 1;
  primaryInputs_.push_back(id);
  return id;
}

NodeId Netlist::addInstance(const std::string& name,
                            const characterize::CharacterizedGate& cell,
                            const std::vector<std::string>& inputNets,
                            const std::string& outputNet) {
  if (isDriven(outputNet)) {
    throw std::invalid_argument("Netlist: net multiply driven: " + outputNet);
  }
  return addInstanceImpl(name, cell, inputNets, outputNet, false);
}

NodeId Netlist::addInstanceLenient(const std::string& name,
                                   const characterize::CharacterizedGate& cell,
                                   const std::vector<std::string>& inputNets,
                                   const std::string& outputNet) {
  return addInstanceImpl(name, cell, inputNets, outputNet, true);
}

NodeId Netlist::addInstanceImpl(const std::string& name,
                                const characterize::CharacterizedGate& cell,
                                const std::vector<std::string>& inputNets,
                                const std::string& outputNet, bool /*lenient*/) {
  if (nodeCount() >= kInvalidIdValue) {
    throw std::length_error("Netlist: node count overflows 32-bit IDs");
  }
  const auto [it, inserted] = nodeIndex_.try_emplace(name, NodeId());
  if (!inserted) {
    throw std::invalid_argument("Netlist: duplicate instance: " + name);
  }
  if (static_cast<int>(inputNets.size()) != cell.pinCount()) {
    nodeIndex_.erase(it);
    throw std::invalid_argument("Netlist: pin count mismatch on " + name);
  }
  support::budgetChargeNodes(1, kSite);

  const NodeId node(nodeCount());
  it->second = node;
  nodeNames_.push_back(name);
  nodeCells_.push_back(&cell);
  for (const std::string& net : inputNets) {
    pinNets_.push_back(internNet(net));
    arcNode_.push_back(node);
  }
  pinFirst_.push_back(static_cast<std::uint32_t>(pinNets_.size()));

  const NetId out = internNet(outputNet);
  nodeOutput_.push_back(out);
  if (netIsPi_[out.value] != 0 || netDriver_[out.value].valid()) {
    // Untrusted input: the first driver keeps the net; this one is recorded
    // for validate()/levelize() to report.
    extraDrivers_.emplace_back(out, node);
  } else {
    netDriver_[out.value] = node;
  }
  return node;
}

NetId Netlist::findNet(const std::string& name) const {
  const auto it = netIndex_.find(name);
  return it == netIndex_.end() ? NetId() : it->second;
}

NodeId Netlist::findNode(const std::string& name) const {
  const auto it = nodeIndex_.find(name);
  return it == nodeIndex_.end() ? NodeId() : it->second;
}

bool Netlist::isDriven(const std::string& net) const {
  const NetId id = findNet(net);
  if (!id.valid()) return false;
  return netIsPi_[id.value] != 0 || netDriver_[id.value].valid();
}

LevelizeResult Netlist::levelize(StructuralPolicy policy) const {
  LevelizeResult out;
  const std::size_t n = nodeCount();
  const bool reject = policy == StructuralPolicy::Reject;

  std::vector<char> degraded(n, 0);
  const auto report = [&](StructuralIssue issue, const NodeId* degradeIdx) {
    PROX_OBS_COUNT(issueCounter(issue.kind), 1);
    if (reject) {
      failStructural("Netlist: " + issue.message);
    }
    if (degradeIdx != nullptr) degraded[degradeIdx->value] = 1;
    out.issues.push_back(std::move(issue));
  };

  // Multiply-driven nets recorded at lenient construction.
  for (const auto& [net, loser] : extraDrivers_) {
    StructuralIssue issue;
    issue.kind = StructuralIssue::Kind::MultiDriver;
    issue.message = "net multiply driven: " + netNames_[net.value] +
                    " (instance " + nodeNames_[loser.value] + " loses to " +
                    (netDriver_[net.value].valid()
                         ? nodeNames_[netDriver_[net.value].value]
                         : std::string("primary input")) +
                    ")";
    issue.instances.push_back(nodeNames_[loser.value]);
    report(std::move(issue), &loser);
  }

  // Dependency edges, straight off the pin CSR (ID-only).  deps[] mirrors
  // consumers[] so cycle extraction can walk predecessors; dangling inputs
  // either reject or become no-event nets (the consumer is marked degraded).
  std::vector<std::uint32_t> remaining(n, 0);
  std::vector<std::vector<std::uint32_t>> consumers(n);
  std::vector<std::vector<std::uint32_t>> deps(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const NetId net : nodeInputs(NodeId(i))) {
      if (netIsPi_[net.value] != 0) continue;
      const NodeId driver = netDriver_[net.value];
      if (!driver.valid()) {
        StructuralIssue issue;
        issue.kind = StructuralIssue::Kind::DanglingInput;
        issue.message = "undriven input net " + netNames_[net.value] +
                        " on instance " + nodeNames_[i];
        issue.instances.push_back(nodeNames_[i]);
        const NodeId self(i);
        report(std::move(issue), &self);
        continue;
      }
      consumers[driver.value].push_back(i);
      deps[i].push_back(driver.value);
      ++remaining[i];
    }
  }

  // Frontier-by-frontier Kahn: each frontier is one level.  When the
  // frontier drains with nodes still unplaced, those nodes sit on or behind
  // a cycle; Degrade breaks the cycle at its lowest-numbered member (a
  // deterministic choice) and resumes, so the loop always terminates with
  // every node placed exactly once.
  std::vector<char> placedMark(n, 0);
  std::size_t placed = 0;
  out.order.reserve(n);
  std::vector<std::uint32_t> frontier;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (remaining[i] == 0) frontier.push_back(i);
  }
  while (true) {
    while (!frontier.empty()) {
      std::vector<std::uint32_t> next;
      for (const std::uint32_t i : frontier) {
        out.order.push_back(NodeId(i));
        placedMark[i] = 1;
        ++placed;
        for (const std::uint32_t c : consumers[i]) {
          if (remaining[c] > 0 && --remaining[c] == 0 && placedMark[c] == 0) {
            next.push_back(c);
          }
        }
      }
      // Declaration order within a level keeps task indices (and thus the
      // deterministic fault-plan keying) independent of discovery order.
      std::sort(next.begin(), next.end());
      out.levelFirst.push_back(static_cast<std::uint32_t>(out.order.size()));
      frontier = std::move(next);
    }
    if (placed == n) break;

    // Stuck: extract one cycle by walking unplaced predecessors from the
    // lowest-numbered unplaced node.  Every unplaced node has an unplaced
    // dependency, so the walk must revisit a node.
    std::uint32_t start = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (placedMark[i] == 0) {
        start = i;
        break;
      }
    }
    std::vector<std::uint32_t> path;
    std::vector<std::uint32_t> posInPath(n, static_cast<std::uint32_t>(n));
    std::uint32_t cur = start;
    while (posInPath[cur] == n) {
      posInPath[cur] = static_cast<std::uint32_t>(path.size());
      path.push_back(cur);
      for (const std::uint32_t d : deps[cur]) {
        if (placedMark[d] == 0) {
          cur = d;
          break;
        }
      }
    }
    // path[posInPath[cur]..] is the cycle in predecessor order; reverse it
    // so the message reads in signal-flow (driver -> consumer) order.
    std::vector<std::uint32_t> cycle(path.begin() + posInPath[cur], path.end());
    std::reverse(cycle.begin(), cycle.end());

    StructuralIssue issue;
    issue.kind = cycle.size() == 1 ? StructuralIssue::Kind::SelfLoop
                                   : StructuralIssue::Kind::Cycle;
    for (const std::uint32_t i : cycle) issue.instances.push_back(nodeNames_[i]);
    std::string pathText;
    for (const std::string& name : issue.instances) {
      pathText += name;
      pathText += " -> ";
    }
    pathText += issue.instances.front();
    issue.message = std::string(cycle.size() == 1 ? "self-loop"
                                                  : "combinational cycle") +
                    " detected: " + pathText;

    const NodeId breaker(*std::min_element(cycle.begin(), cycle.end()));
    report(std::move(issue), &breaker);
    PROX_OBS_COUNT("sta.structural.loop_breaks", 1);
    remaining[breaker.value] = 0;
    frontier.assign(1, breaker.value);
  }

  // levelFirst currently holds each level's end offset; prepend the start.
  out.levelFirst.insert(out.levelFirst.begin(), 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (degraded[i] != 0) {
      out.degradedNodes.push_back(NodeId(i));
      out.degradedInstances.push_back(nodeNames_[i]);
    }
  }
  PROX_OBS_COUNT("sta.graph.nodes_levelized", placed);
  PROX_OBS_COUNT("sta.graph.levels", out.levelCount());
  return out;
}

std::vector<StructuralIssue> Netlist::validate() const {
  return levelize(StructuralPolicy::Degrade).issues;
}

std::vector<NodeId> Netlist::topologicalOrder() const {
  return levelize(StructuralPolicy::Reject).order;
}

}  // namespace prox::sta
