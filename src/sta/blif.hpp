#pragma once
// BLIF netlist frontend: parses the combinational subset of Berkeley Logic
// Interchange Format (.model / .inputs / .outputs / .names / .latch / .end)
// into a sta::Netlist, resolving each .names cover to a characterized cell
// through a GateLibrary.
//
// Trust boundary: BLIF files arrive from outside the process, so the reader
// is built on the bounded-ingestion layer (support/bounded.hpp).  Any
// malformed, truncated, oversized, or adversarial input produces a typed
// support::DiagnosticError (ParseError / ResourceExhausted / IoError /
// TableMissing) carrying the offending line -- never a crash, a hang, or an
// unbounded allocation (see fuzz/fuzz_blif.cpp).
//
// Supported subset (DESIGN.md section 10 has the grammar):
//   * .names covers that denote the characterized inverting cells:
//       - INV:   "0 1" or "1 0" over one input;
//       - NAND:  one all-'1' row with output '0', or the k-row on-set form
//                (each row exactly one '0', rest '-', output '1');
//       - NOR:   one all-'0' row with output '1', or the k-row off-set form
//                (each row exactly one '1', rest '-', output '0').
//     Anything else (buffers, AND/OR, general covers) is a typed rejection:
//     this frontend feeds a *timing* engine whose cells are characterized
//     at transistor level, not a logic optimizer.
//   * Zero-input .names (constants) become no-event pseudo-primary-inputs.
//   * .latch output nets become pseudo-primary-inputs (the classic STA cut
//     at register boundaries); the latch itself is not timed.
//   * Multiply-driven nets are recorded as StructuralIssues (the Netlist's
//     lenient path), so the caller's StructuralPolicy decides reject/degrade.

#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sta/netlist.hpp"
#include "support/bounded.hpp"

namespace prox::sta {

/// Cell registry keyed by (gate type, fanin).  Cells are either borrowed
/// (add: caller keeps ownership alive) or owned (adopt / factory misses).
/// The optional factory makes the library lazily self-populating: find()
/// consults it on a miss and adopts whatever it returns, so a front end can
/// install quick characterization (or the analytic models) once and serve
/// any fanin the input demands.
class GateLibrary {
 public:
  /// Called on a find() miss; return std::nullopt to leave the cell missing.
  using Factory = std::function<std::optional<characterize::CharacterizedGate>(
      cells::GateType type, int fanin)>;

  GateLibrary() = default;
  GateLibrary(GateLibrary&&) = default;
  GateLibrary& operator=(GateLibrary&&) = default;

  /// Registers @p cell (not owned; must outlive the library) under its
  /// spec's (type, fanin).  Replaces any previous entry for that key.
  void add(const characterize::CharacterizedGate& cell);

  /// Takes ownership of @p cell and registers it.  Returns the stable
  /// stored reference.
  const characterize::CharacterizedGate& adopt(
      characterize::CharacterizedGate cell);

  void setFactory(Factory factory) { factory_ = std::move(factory); }

  /// The cell for (type, fanin), consulting the factory on a miss (the
  /// factory's product is adopted, so repeated lookups are cheap).  Returns
  /// nullptr when the cell is not available.
  const characterize::CharacterizedGate* find(cells::GateType type,
                                              int fanin) const;

  /// find() that throws DiagnosticError(TableMissing) naming the cell when
  /// it is unavailable.  @p line feeds the diagnostic (-1: no line).
  const characterize::CharacterizedGate& require(cells::GateType type,
                                                 int fanin,
                                                 int line = -1) const;

  std::size_t size() const { return cells_.size(); }

 private:
  // mutable: find() is logically const but memoizes factory products.
  mutable std::map<std::pair<int, int>, const characterize::CharacterizedGate*>
      cells_;
  mutable std::deque<characterize::CharacterizedGate> owned_;
  Factory factory_;
};

/// A self-populating library of analytic cells (characterize/analytic.hpp):
/// INV plus NAND/NOR of any fanin in [2, maxFanin], built on demand.
/// Deterministic and simulation-free -- the standard library for tests,
/// benchmarks, and fuzzing.
GateLibrary analyticLibrary(int maxFanin = 64);

struct BlifOptions {
  /// Byte/token caps for the bounded reader; the allocation budget for
  /// parsed structures derives from the input size through these limits.
  support::ReaderLimits limits;
  /// Cover-width cap, enforced before any library lookup so a hostile
  /// ".names a b c ... z" header is rejected by arithmetic, not honoured by
  /// characterization.
  std::size_t maxFanin = 64;
  /// false rejects .latch cards instead of cutting them into pseudo-PIs.
  bool allowLatches = true;
};

/// What the reader ingested, for reporting.
struct BlifSummary {
  std::string modelName;
  std::vector<std::string> inputs;   ///< declared .inputs, in order
  std::vector<std::string> outputs;  ///< declared .outputs, in order
  std::size_t gates = 0;             ///< .names mapped to library cells
  std::size_t latches = 0;           ///< .latch cards cut into pseudo-PIs
  std::size_t constants = 0;         ///< zero-input .names
};

/// Parses BLIF from @p is into @p netlist (which must be empty).  Throws
/// support::DiagnosticError on malformed input, resource-cap violations, or
/// a cover with no matching library cell.  Multiply-driven nets are recorded
/// leniently for levelize()/validate() to judge.
BlifSummary readBlif(std::istream& is, const GateLibrary& library,
                     Netlist* netlist, const BlifOptions& options = {});

/// readBlif over an in-memory buffer.
BlifSummary readBlifString(std::string_view text, const GateLibrary& library,
                           Netlist* netlist, const BlifOptions& options = {});

/// readBlif over a file ("-" reads stdin).  IoError when unreadable.
BlifSummary readBlifFile(const std::string& path, const GateLibrary& library,
                         Netlist* netlist, const BlifOptions& options = {});

}  // namespace prox::sta
