#pragma once
// Gate-level netlist for the demonstration STA, stored as a flat graph
// arena: instances and nets are dense typed IDs (sta/ids.hpp) over
// contiguous struct-of-arrays storage, input pins live in one CSR array,
// and names are interned exactly once at construction.  The traversal hot
// path (levelization, arc evaluation) never touches a string or a hash map;
// string lookups exist only at the API boundary (findNet / findNode) for
// front ends and reports.
//
// Structural trust boundary: netlists arriving from outside the process are
// validated *before* timing analysis.  validate() names every structural
// defect (combinational cycles with the offending path spelled out,
// multiply-driven nets, dangling instance inputs, self-loops); levelize()
// either rejects a defective graph with a typed DiagnosticError
// (StructuralPolicy::Reject) or degrades deterministically -- breaking each
// loop at its lowest-numbered instance and treating dangling inputs as
// no-event nets -- so levelization can never infinite-loop or mis-level
// (StructuralPolicy::Degrade).

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "characterize/characterize.hpp"
#include "sta/ids.hpp"

namespace prox::sta {

/// How levelization responds to structural defects (see DelayCalcOptions).
enum class StructuralPolicy {
  Reject,   ///< throw DiagnosticError(StructuralError) naming the defect
  Degrade,  ///< warn-and-continue: break loops, skip dangling deps, tally
};

/// One named structural defect found by validate()/levelize().
struct StructuralIssue {
  enum class Kind { Cycle, SelfLoop, MultiDriver, DanglingInput };
  Kind kind = Kind::Cycle;
  /// Human-readable description; for cycles this names the offending path
  /// ("u1 -> u2 -> u3 -> u1").
  std::string message;
  /// Instances involved (cycle members in path order; the extra driver for
  /// MultiDriver; the consumer for DanglingInput).
  std::vector<std::string> instances;
};

const char* structuralKindName(StructuralIssue::Kind k);

/// levelize() output: a level-major CSR schedule plus everything that had to
/// be degraded to produce it.  With StructuralPolicy::Reject, issues is
/// always empty (defects throw instead).
struct LevelizeResult {
  /// All nodes, level-major; level L occupies order[levelFirst[L] ..
  /// levelFirst[L+1]).  Nodes within a level are in declaration (NodeId)
  /// order, so the schedule is deterministic.
  std::vector<NodeId> order;
  std::vector<std::uint32_t> levelFirst;  ///< size levelCount() + 1
  std::vector<StructuralIssue> issues;
  /// Nodes whose dependencies were forcibly cut (loop breaks, dangling
  /// inputs): their arrival times are estimates, not analysis.
  /// degradedInstances carries the same set as names for reporting.
  std::vector<NodeId> degradedNodes;
  std::vector<std::string> degradedInstances;

  std::size_t levelCount() const {
    return levelFirst.empty() ? 0 : levelFirst.size() - 1;
  }
  std::span<const NodeId> level(LevelId l) const {
    return std::span<const NodeId>(order.data() + levelFirst[l.value],
                                   levelFirst[l.value + 1] -
                                       levelFirst[l.value]);
  }
};

class Netlist {
 public:
  /// Declares a primary input net.  Throws std::invalid_argument when the
  /// net is already driven.
  NetId addPrimaryInput(const std::string& net);

  /// Adds a cell instance.  Throws std::invalid_argument on pin-count
  /// mismatch, duplicate instance name, or multiply-driven output net.
  NodeId addInstance(const std::string& name,
                     const characterize::CharacterizedGate& cell,
                     const std::vector<std::string>& inputNets,
                     const std::string& outputNet);

  /// addInstance for *untrusted* graph construction: a multiply-driven
  /// output net is recorded as a StructuralIssue for validate() instead of
  /// throwing (the first driver keeps the net).  Duplicate instance names
  /// and pin-count mismatches still throw std::invalid_argument -- those are
  /// caller bugs, not input properties.
  NodeId addInstanceLenient(const std::string& name,
                            const characterize::CharacterizedGate& cell,
                            const std::vector<std::string>& inputNets,
                            const std::string& outputNet);

  // --- Arena accessors (hot path: all O(1), no strings) ---------------------

  std::size_t nodeCount() const { return nodeCells_.size(); }
  std::size_t netCount() const { return netNames_.size(); }
  /// Total instance input pins; ArcId indexes this flat space.
  std::size_t arcCount() const { return pinNets_.size(); }

  const std::string& nodeName(NodeId n) const { return nodeNames_[n.value]; }
  const characterize::CharacterizedGate& nodeCell(NodeId n) const {
    return *nodeCells_[n.value];
  }
  NetId nodeOutput(NodeId n) const { return nodeOutput_[n.value]; }
  /// The node's input nets in pin order (a slice of the pin CSR).
  std::span<const NetId> nodeInputs(NodeId n) const {
    return std::span<const NetId>(pinNets_.data() + pinFirst_[n.value],
                                  pinFirst_[n.value + 1] - pinFirst_[n.value]);
  }
  ArcId nodeFirstArc(NodeId n) const { return ArcId(pinFirst_[n.value]); }
  NetId arcNet(ArcId a) const { return pinNets_[a.value]; }
  NodeId arcNode(ArcId a) const { return arcNode_[a.value]; }

  const std::string& netName(NetId n) const { return netNames_[n.value]; }
  /// Driving node of @p net; invalid when the net is a primary input or
  /// undriven.
  NodeId netDriver(NetId n) const { return netDriver_[n.value]; }
  bool netIsPrimaryInput(NetId n) const { return netIsPi_[n.value] != 0; }
  /// Primary-input nets in declaration order.
  const std::vector<NetId>& primaryInputs() const { return primaryInputs_; }

  // --- String boundary (cold path) ------------------------------------------

  /// The net / instance named @p name; invalid ID when unknown.
  NetId findNet(const std::string& name) const;
  NodeId findNode(const std::string& name) const;

  /// True when @p net is driven by an instance or declared a primary input.
  bool isDriven(const std::string& net) const;

  // --- Structure ------------------------------------------------------------

  /// Full structural audit: every cycle (path named), multiply-driven net,
  /// dangling instance input, and self-loop, without throwing.  Empty means
  /// the graph is a well-formed combinational netlist.
  std::vector<StructuralIssue> validate() const;

  /// Nodes grouped by dependency depth under @p policy.  Reject: any
  /// structural defect throws support::DiagnosticError (StructuralError, a
  /// std::runtime_error) naming the defect.  Degrade: defects are recorded
  /// in the result, dangling inputs are treated as no-event nets, and each
  /// cycle is broken at its lowest-numbered member so levelization always
  /// terminates with every node placed exactly once.  Level 0 consumes only
  /// primary inputs; level L consumes at least one level-(L-1) output and
  /// nothing deeper; nodes within a level are independent of each other (the
  /// parallel STA evaluates a level concurrently) and appear in declaration
  /// order, so the schedule is deterministic.
  LevelizeResult levelize(StructuralPolicy policy) const;

  /// Nodes in topological order (inputs before consumers).  Throws
  /// support::DiagnosticError (StructuralError, a std::runtime_error) when
  /// the netlist has a combinational cycle or an undriven instance input.
  std::vector<NodeId> topologicalOrder() const;

 private:
  /// Interns @p name, growing the per-net arrays.
  NetId internNet(const std::string& name);
  NodeId addInstanceImpl(const std::string& name,
                         const characterize::CharacterizedGate& cell,
                         const std::vector<std::string>& inputNets,
                         const std::string& outputNet, bool lenient);

  // Per-net arrays, indexed by NetId.
  std::vector<std::string> netNames_;
  std::vector<NodeId> netDriver_;
  std::vector<char> netIsPi_;
  std::unordered_map<std::string, NetId> netIndex_;  // build/boundary only
  std::vector<NetId> primaryInputs_;

  // Per-node arrays, indexed by NodeId.
  std::vector<std::string> nodeNames_;
  std::vector<const characterize::CharacterizedGate*> nodeCells_;
  std::vector<NetId> nodeOutput_;
  std::unordered_map<std::string, NodeId> nodeIndex_;  // build/boundary only

  // Pin CSR, indexed by ArcId: node n's pins are
  // pinNets_[pinFirst_[n] .. pinFirst_[n+1]).
  std::vector<std::uint32_t> pinFirst_ = {0};
  std::vector<NetId> pinNets_;
  std::vector<NodeId> arcNode_;

  /// (net, losing node) pairs recorded by addInstanceLenient.
  std::vector<std::pair<NetId, NodeId>> extraDrivers_;
};

}  // namespace prox::sta
