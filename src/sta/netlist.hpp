#pragma once
// Gate-level netlist for the demonstration STA.  Instances reference
// characterized cell models; nets are identified by name; the graph is
// expected to be combinational (acyclic, single driver per net).
//
// Structural trust boundary: netlists arriving from outside the process are
// validated *before* timing analysis.  validate() names every structural
// defect (combinational cycles with the offending path spelled out,
// multiply-driven nets, dangling instance inputs, self-loops); levelize()
// either rejects a defective graph with a typed DiagnosticError
// (StructuralPolicy::Reject) or degrades deterministically -- breaking each
// loop at its lowest-numbered instance and treating dangling inputs as
// no-event nets -- so Netlist::levels() can never infinite-loop or
// mis-level (StructuralPolicy::Degrade).

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "characterize/characterize.hpp"

namespace prox::sta {

struct Instance {
  std::string name;
  const characterize::CharacterizedGate* cell = nullptr;
  std::vector<std::string> inputNets;  ///< pin order matches the cell's pins
  std::string outputNet;
};

/// How levelization responds to structural defects (see DelayCalcOptions).
enum class StructuralPolicy {
  Reject,   ///< throw DiagnosticError(StructuralError) naming the defect
  Degrade,  ///< warn-and-continue: break loops, skip dangling deps, tally
};

/// One named structural defect found by validate()/levelize().
struct StructuralIssue {
  enum class Kind { Cycle, SelfLoop, MultiDriver, DanglingInput };
  Kind kind = Kind::Cycle;
  /// Human-readable description; for cycles this names the offending path
  /// ("u1 -> u2 -> u3 -> u1").
  std::string message;
  /// Instances involved (cycle members in path order; the extra driver for
  /// MultiDriver; the consumer for DanglingInput).
  std::vector<std::string> instances;
};

const char* structuralKindName(StructuralIssue::Kind k);

/// levelize() output: the levels plus everything that had to be degraded to
/// produce them.  With StructuralPolicy::Reject, issues is always empty
/// (defects throw instead).
struct LevelizeResult {
  std::vector<std::vector<const Instance*>> levels;
  std::vector<StructuralIssue> issues;
  /// Instances whose dependencies were forcibly cut (loop breaks, dangling
  /// inputs): their arrival times are estimates, not analysis.
  std::vector<std::string> degradedInstances;
};

class Netlist {
 public:
  /// Declares a primary input net.
  void addPrimaryInput(const std::string& net);

  /// Adds a cell instance.  Throws std::invalid_argument on pin-count
  /// mismatch, duplicate instance name, or multiply-driven output net.
  const Instance& addInstance(const std::string& name,
                              const characterize::CharacterizedGate& cell,
                              std::vector<std::string> inputNets,
                              const std::string& outputNet);

  /// addInstance for *untrusted* graph construction: a multiply-driven
  /// output net is recorded as a StructuralIssue for validate() instead of
  /// throwing (the first driver keeps the net).  Duplicate instance names
  /// and pin-count mismatches still throw std::invalid_argument -- those are
  /// caller bugs, not input properties.
  const Instance& addInstanceLenient(
      const std::string& name, const characterize::CharacterizedGate& cell,
      std::vector<std::string> inputNets, const std::string& outputNet);

  const std::vector<Instance>& instances() const { return instances_; }
  const std::unordered_set<std::string>& primaryInputs() const {
    return primaryInputs_;
  }

  /// True when @p net is driven by an instance or declared a primary input.
  bool isDriven(const std::string& net) const;

  /// Full structural audit: every cycle (path named), multiply-driven net,
  /// dangling instance input, and self-loop, without throwing.  Empty means
  /// the graph is a well-formed combinational netlist.
  std::vector<StructuralIssue> validate() const;

  /// Instances grouped by dependency depth under @p policy.  Reject: any
  /// structural defect throws support::DiagnosticError (StructuralError, a
  /// std::runtime_error) naming the defect.  Degrade: defects are recorded
  /// in the result, dangling inputs are treated as no-event nets, and each
  /// cycle is broken at its lowest-numbered member so levelization always
  /// terminates with every instance placed exactly once.
  LevelizeResult levelize(StructuralPolicy policy) const;

  /// Instances in topological order (inputs before consumers).  Throws
  /// support::DiagnosticError (StructuralError, a std::runtime_error) when
  /// the netlist has a combinational cycle or an undriven instance input.
  std::vector<const Instance*> topologicalOrder() const;

  /// levelize(StructuralPolicy::Reject).levels: level 0 consumes only
  /// primary inputs, level L consumes at least one level-(L-1) output and
  /// nothing deeper.  Instances within a level are independent of each other
  /// (the parallel STA evaluates a level concurrently) and appear in
  /// instance-declaration order, so the grouping is deterministic.  Same
  /// structural errors as topologicalOrder().
  std::vector<std::vector<const Instance*>> levels() const;

 private:
  std::vector<Instance> instances_;
  std::unordered_set<std::string> primaryInputs_;
  std::unordered_map<std::string, std::size_t> driverOf_;  // net -> instance
  std::unordered_set<std::string> instanceNames_;
  /// (net, losing instance) pairs recorded by addInstanceLenient.
  std::vector<std::pair<std::string, std::size_t>> extraDrivers_;
};

}  // namespace prox::sta
