#pragma once
// Gate-level netlist for the demonstration STA.  Instances reference
// characterized cell models; nets are identified by name; the graph must be
// combinational (acyclic, single driver per net).

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "characterize/characterize.hpp"

namespace prox::sta {

struct Instance {
  std::string name;
  const characterize::CharacterizedGate* cell = nullptr;
  std::vector<std::string> inputNets;  ///< pin order matches the cell's pins
  std::string outputNet;
};

class Netlist {
 public:
  /// Declares a primary input net.
  void addPrimaryInput(const std::string& net);

  /// Adds a cell instance.  Throws std::invalid_argument on pin-count
  /// mismatch, duplicate instance name, or multiply-driven output net.
  const Instance& addInstance(const std::string& name,
                              const characterize::CharacterizedGate& cell,
                              std::vector<std::string> inputNets,
                              const std::string& outputNet);

  const std::vector<Instance>& instances() const { return instances_; }
  const std::unordered_set<std::string>& primaryInputs() const {
    return primaryInputs_;
  }

  /// True when @p net is driven by an instance or declared a primary input.
  bool isDriven(const std::string& net) const;

  /// Instances in topological order (inputs before consumers).  Throws
  /// std::runtime_error when the netlist has a combinational cycle or an
  /// undriven instance input.
  std::vector<const Instance*> topologicalOrder() const;

  /// Instances grouped by dependency depth: level 0 consumes only primary
  /// inputs, level L consumes at least one level-(L-1) output and nothing
  /// deeper.  Instances within a level are independent of each other (the
  /// parallel STA evaluates a level concurrently) and appear in instance-
  /// declaration order, so the grouping is deterministic.  Same structural
  /// errors as topologicalOrder().
  std::vector<std::vector<const Instance*>> levels() const;

 private:
  std::vector<Instance> instances_;
  std::unordered_set<std::string> primaryInputs_;
  std::unordered_map<std::string, std::size_t> driverOf_;  // net -> instance
  std::unordered_set<std::string> instanceNames_;
};

}  // namespace prox::sta
