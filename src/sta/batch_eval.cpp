#include "sta/batch_eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "model/dominance.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace prox::sta {

namespace {

/// Per-arc composition state: the local variables of Algorithm
/// ProximityDelay (ProximityCalculator::compute), lifted into a struct so a
/// whole chunk of arcs can advance in lockstep rounds.
struct ArcState {
  // -- setup --
  std::vector<model::InputEvent> events;
  bool idle = false;
  bool fallback = false;  ///< re-run through scalar evaluateGate()
  bool done = false;      ///< composition finished cleanly

  const model::TabulatedDualInputModel* dual = nullptr;
  const model::SingleInputModelSet* singles = nullptr;

  // -- dominance --
  model::DominanceSense sense = model::DominanceSense::EarliestFirst;
  std::vector<std::size_t> order;
  bool reordered = false;

  // -- composition registers (names as in compute()) --
  model::InputEvent y1;
  double d1 = 0.0, t1 = 0.0;
  double dCum = 0.0, tCum = 0.0;
  double dBeforeLast = 0.0;
  double sLast = 0.0;
  std::size_t idx = 1;
  std::vector<int> processedPins, transitionOnlyPins;

  // -- the round's staged step --
  double sCur = 0.0;
  int yiPin = 0;
  bool stepHasDelay = false;

  // -- mirrors of the arc-scoped ClampStats --
  std::uint64_t clamped = 0;
  double maxClamp = 0.0;

  // -- deferred observability tallies (flushed only on success) --
  std::uint64_t windowExits = 0;
  std::uint64_t windowSkipped = 0;
  double correctionApplied = 0.0;
  bool correctionCounted = false;

  /// Returns the state to freshly-constructed semantics while keeping the
  /// inner vectors' capacity, so a reused scratch arc costs no allocations.
  void reset() {
    events.clear();
    idle = fallback = done = false;
    dual = nullptr;
    singles = nullptr;
    sense = model::DominanceSense::EarliestFirst;
    order.clear();
    reordered = false;
    y1 = {};
    d1 = t1 = 0.0;
    dCum = tCum = dBeforeLast = sLast = 0.0;
    idx = 1;
    processedPins.clear();
    transitionOnlyPins.clear();
    sCur = 0.0;
    yiPin = 0;
    stepHasDelay = false;
    clamped = 0;
    maxClamp = 0.0;
    windowExits = windowSkipped = 0;
    correctionApplied = 0.0;
    correctionCounted = false;
  }
};

/// One staged dual-input query: which arc it belongs to and whether it is
/// the step's delay query (false = transition query).
struct PendingQuery {
  std::uint32_t arc = 0;
  bool isDelay = false;
};

/// Reusable per-thread scratch: the STA inner loop calls evaluateGateBatch
/// once per 64-arc chunk, and a fresh std::vector<ArcState> (4 inner vectors
/// each) plus the per-round staging vectors made allocation churn the
/// dominant batching cost.  Reuse keeps every capacity across chunks.
struct EvalScratch {
  std::vector<ArcState> states;
  std::vector<const model::TabulatedDualInputModel*> models;
  std::vector<std::vector<model::DualQuery>> queries;
  std::vector<std::vector<PendingQuery>> meta;
  std::vector<model::DualResult> answers;

  std::vector<ArcState>& arcs(std::size_t n) {
    if (states.size() < n) states.resize(n);
    for (std::size_t i = 0; i < n; ++i) states[i].reset();
    return states;
  }
};

EvalScratch& evalScratch() {
  thread_local EvalScratch s;
  return s;
}

/// Mirror of ProximityCalculator's sense resolution (senseResolverFor).
model::DominanceSense resolveSense(const characterize::CharacterizedGate& cell,
                                   const std::vector<model::InputEvent>& events) {
  if (cell.gate.complex) {
    std::vector<int> pins;
    pins.reserve(events.size());
    for (const model::InputEvent& ev : events) pins.push_back(ev.pin);
    return model::complexDominanceSense(*cell.gate.complex, pins,
                                        events.front().edge);
  }
  return model::dominanceSense(cell.gate.spec.type, events.front().edge);
}

}  // namespace

void evaluateGateBatch(std::span<const BatchArc> arcs, DelayMode mode,
                       const DelayCalcOptions& opt,
                       std::span<BatchArcResult> results) {
  if (results.size() < arcs.size()) {
    throw std::invalid_argument("evaluateGateBatch: results span too small");
  }
  const std::size_t n = arcs.size();
  if (n == 0) return;

  if (mode != DelayMode::Proximity) {
    for (std::size_t i = 0; i < n; ++i) {
      results[i].arrival = evaluateGate(*arcs[i].cell, *arcs[i].pins, mode, opt,
                                        &results[i].quality);
    }
    return;
  }

  // The batched mirror always runs the default ProximityOptions -- exactly
  // what the scalar path's cell.calculator() constructs.
  const model::ProximityOptions options{};

  EvalScratch& scratch = evalScratch();
  std::vector<ArcState>& states = scratch.arcs(n);

  // --- setup: events, dominance order, dominant-input registers -----------
  for (std::size_t i = 0; i < n; ++i) {
    ArcState& a = states[i];
    const characterize::CharacterizedGate& cell = *arcs[i].cell;
    const std::vector<std::optional<Arrival>>& pins = *arcs[i].pins;
    if (static_cast<int>(pins.size()) != cell.pinCount()) {
      a.fallback = true;  // scalar throws invalid_argument (caller bug)
      continue;
    }
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (!pins[p]) continue;
      a.events.push_back({static_cast<int>(p), pins[p]->edge, pins[p]->time,
                          pins[p]->slope});
    }
    if (a.events.empty()) {
      a.idle = true;
      PROX_OBS_COUNT("sta.delay_calc.idle_gates", 1);
      continue;
    }
    bool mixed = false;
    for (const auto& ev : a.events) {
      if (ev.edge != a.events.front().edge) mixed = true;
    }
    if (mixed) {
      a.fallback = true;  // scalar throws invalid_argument (caller bug)
      continue;
    }
    a.dual = cell.dual.get();
    a.singles = cell.singles.get();
    try {
      a.sense = resolveSense(cell, a.events);
      if (options.orderByDominance) {
        a.order = model::dominanceOrder(a.events, *a.singles, a.sense);
#if PROX_ENABLE_STATS
        a.reordered = !std::is_sorted(
            a.order.begin(), a.order.end(), [&](std::size_t x, std::size_t y) {
              return a.sense == model::DominanceSense::EarliestFirst
                         ? a.events[x].tRef < a.events[y].tRef
                         : a.events[x].tRef > a.events[y].tRef;
            });
#endif
      } else {
        a.order.resize(a.events.size());
        for (std::size_t k = 0; k < a.order.size(); ++k) a.order[k] = k;
        std::stable_sort(a.order.begin(), a.order.end(),
                         [&](std::size_t x, std::size_t y) {
                           return a.events[x].tRef < a.events[y].tRef;
                         });
      }
      a.y1 = a.events[a.order[0]];
      const model::SingleInputModel& m1 = a.singles->at(a.y1.pin, a.y1.edge);
      a.d1 = m1.delay(a.y1.tau);
      a.t1 = m1.transition(a.y1.tau);
    } catch (...) {
      a.fallback = true;  // scalar degrades (or rethrows) identically
      continue;
    }
    a.dCum = a.d1;
    a.tCum = a.t1;
    a.dBeforeLast = a.d1;
    a.sLast = 0.0;
    a.processedPins.push_back(a.y1.pin);
  }

  // --- lockstep composition rounds ----------------------------------------
  // Per round each unfinished arc advances to its next step needing table
  // lookups (window-skips advance for free), staging one transition query
  // and -- inside the delay window -- one delay query.  Queries are grouped
  // by dual-table model and answered with one evaluateMany() per model.
  std::vector<const model::TabulatedDualInputModel*>& models = scratch.models;
  std::vector<std::vector<model::DualQuery>>& queries = scratch.queries;
  std::vector<std::vector<PendingQuery>>& meta = scratch.meta;
  std::vector<model::DualResult>& answers = scratch.answers;

  for (;;) {
    models.clear();
    // Clear the buckets in place: shrinking `queries` itself would free the
    // inner vectors' capacity, which is the whole point of the scratch.
    for (auto& qs : queries) qs.clear();
    for (auto& ms : meta) ms.clear();

    for (std::size_t i = 0; i < n; ++i) {
      ArcState& a = states[i];
      if (a.idle || a.fallback || a.done) continue;
      // Advance through lookup-free steps (window exits / skips).
      for (;;) {
        if (a.idx >= a.order.size()) {
          a.done = true;
          break;
        }
        const model::InputEvent& yi = a.events[a.order[a.idx]];
        const double s = yi.tRef - a.y1.tRef;  // s_{y1, yi}
        if (s < a.dCum) {
          a.sCur = s;
          a.yiPin = yi.pin;
          a.stepHasDelay = true;
        } else if (s < a.dCum + a.tCum) {
          a.sCur = s;
          a.yiPin = yi.pin;
          a.stepHasDelay = false;
        } else {
          if (a.sense == model::DominanceSense::EarliestFirst) {
            a.windowExits += 1;
            a.windowSkipped += a.order.size() - a.idx;
            a.done = true;
            break;
          }
          a.windowSkipped += 1;
          ++a.idx;
          continue;
        }
        // Stage this step's queries under the arc's model bucket.
        std::size_t b = 0;
        for (; b < models.size(); ++b) {
          if (models[b] == a.dual) break;
        }
        if (b == models.size()) {
          models.push_back(a.dual);
          if (queries.size() < models.size()) {
            queries.emplace_back();
            meta.emplace_back();
          }
        }
        const model::InputEvent& yiq = a.events[a.order[a.idx]];
        model::DualQuery qt;
        qt.refPin = a.y1.pin;
        qt.otherPin = yiq.pin;
        qt.edge = a.y1.edge;
        qt.tauRef = a.y1.tau;
        qt.tauOther = yiq.tau;
        qt.sep = a.sCur + (a.d1 + a.t1) - (a.dCum + a.tCum);
        qt.kind = model::DualKind::Transition;
        queries[b].push_back(qt);
        meta[b].push_back({static_cast<std::uint32_t>(i), false});
        if (a.stepHasDelay) {
          model::DualQuery qd = qt;
          qd.sep = a.sCur + a.d1 - a.dCum;
          qd.kind = model::DualKind::Delay;
          queries[b].push_back(qd);
          meta[b].push_back({static_cast<std::uint32_t>(i), true});
        }
        break;
      }
    }

    bool any = false;
    for (const auto& qs : queries) any = any || !qs.empty();
    if (!any) break;

    for (std::size_t b = 0; b < models.size(); ++b) {
      answers.assign(queries[b].size(), model::DualResult{});
      models[b]->evaluateMany(queries[b], answers);
      // Apply in staging order: an arc's transition result lands before its
      // delay result, reproducing foldTransition-then-delayRatio exactly.
      for (std::size_t k = 0; k < answers.size(); ++k) {
        ArcState& a = states[meta[b][k].arc];
        if (a.fallback) continue;
        const model::DualResult& r = answers[k];
        if (r.status != model::DualResult::Status::Ok) {
          a.fallback = true;  // scalar lookup would have thrown TableMissing
          continue;
        }
        if (r.clampDistance > 0.0) {
          a.clamped += 1;
          a.maxClamp = std::max(a.maxClamp, r.clampDistance);
        }
        if (!meta[b][k].isDelay) {
          if (options.transitionComposition ==
              model::TransitionComposition::Additive) {
            a.tCum += a.t1 * (r.value - 1.0);
          } else {
            a.tCum *= r.value;
          }
          if (!a.stepHasDelay) a.transitionOnlyPins.push_back(a.yiPin);
        } else {
          a.dBeforeLast = a.dCum;
          a.dCum += a.d1 * (r.value - 1.0);
          a.sLast = a.sCur;
          a.processedPins.push_back(a.yiPin);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      ArcState& a = states[i];
      if (a.idle || a.fallback || a.done) continue;
      ++a.idx;  // this round's input is folded in; move to the next
    }
  }

  // --- correction, trust check, finalize ----------------------------------
  PROX_OBS_BATCH(obsCells);
  std::uint64_t arcEvals = 0, switchingPins = 0, clampedArcs = 0;
  std::uint64_t computes = 0, inputsSeen = 0, reorders = 0;
  std::uint64_t windowExits = 0, windowSkipped = 0, correctionsApplied = 0;
  std::uint64_t inputsProcessed = 0, inputsTransitionOnly = 0;

  for (std::size_t i = 0; i < n; ++i) {
    ArcState& a = states[i];
    if (a.idle) {
      results[i].arrival = std::nullopt;
      results[i].quality = ArcQuality::Full;
      continue;
    }
    if (a.fallback) continue;

    const characterize::CharacterizedGate& cell = *arcs[i].cell;
    if (options.applyCorrection && a.processedPins.size() >= 2 &&
        !cell.correction.empty()) {
      const double sEff =
          a.sense == model::DominanceSense::EarliestFirst ? a.sLast : -a.sLast;
      const double weight =
          sEff <= 0.0
              ? 1.0
              : std::max(0.0, 1.0 - sEff / std::max(a.dBeforeLast, 1e-18));
      const double dc =
          cell.correction.delayFor(a.processedPins.size(), a.y1.edge) * weight;
      a.dCum += dc;
      if (options.applyTransitionCorrection) {
        a.tCum +=
            cell.correction.transitionFor(a.processedPins.size(), a.y1.edge) *
            weight;
      }
      a.correctionApplied = dc;
      a.correctionCounted = dc != 0.0;
    }

    // Scalar parity: evaluateGate inspects the arc-scoped ClampStats after
    // compute() and degrades past the trust distance.
    if (a.maxClamp > opt.maxClampDistance) {
      a.fallback = true;
      continue;
    }

    Arrival out;
    out.edge = cell.gate.spec.outputEdgeFor(a.events.front().edge);
    out.time = a.y1.tRef + a.dCum;                 // res.outputRefTime
    out.slope = std::max(a.tCum, 0.0);             // res.transitionTime
    results[i].arrival = out;
    results[i].quality = ArcQuality::Full;

    arcEvals += 1;
    switchingPins += a.events.size();
    if (a.clamped > 0) clampedArcs += 1;
    computes += 1;
    inputsSeen += a.events.size();
    if (a.reordered) reorders += 1;
    windowExits += a.windowExits;
    windowSkipped += a.windowSkipped;
    if (a.correctionCounted) {
      correctionsApplied += 1;
      PROX_OBS_RECORD_IN(obsCells, "model.proximity.correction_magnitude_s",
                         std::fabs(a.correctionApplied));
    }
    inputsProcessed += a.processedPins.size();
    inputsTransitionOnly += a.transitionOnlyPins.size();
  }

  PROX_OBS_COUNT_IN(obsCells, "sta.delay_calc.arc_evals", arcEvals);
  PROX_OBS_COUNT_IN(obsCells, "sta.delay_calc.switching_pins", switchingPins);
  PROX_OBS_COUNT_IN(obsCells, "sta.delay_calc.clamped_arcs", clampedArcs);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.computes", computes);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_seen", inputsSeen);
#if PROX_ENABLE_STATS
  if (obsCells != nullptr) {
    PROX_OBS_COUNT_IN(obsCells, "model.proximity.dominance_reorders", reorders);
  }
#endif
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.window_exits", windowExits);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_window_skipped",
                    windowSkipped);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.corrections_applied",
                    correctionsApplied);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_processed",
                    inputsProcessed);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_transition_only",
                    inputsTransitionOnly);

  // --- scalar fallback for anomalous arcs, in arc order --------------------
  // Exceptions (caller bugs, allowDegraded=false rethrows) escape from the
  // lowest-index arc first, matching a scalar loop over the same arcs.
  for (std::size_t i = 0; i < n; ++i) {
    if (!states[i].fallback) continue;
    results[i].arrival = evaluateGate(*arcs[i].cell, *arcs[i].pins, mode, opt,
                                      &results[i].quality);
  }
}

}  // namespace prox::sta
