#pragma once
// Typed indices for the STA graph arena.  Every entity the timing engine
// touches on its hot path -- gate instances (nodes), nets, instance input
// pins (arcs), and levelization levels -- is a dense 32-bit index into
// contiguous per-kind arrays owned by sta::Netlist.  The tag types make the
// four index spaces mutually unassignable at compile time while keeping the
// runtime representation a bare uint32_t.
//
// Strings (net and instance names) are interned exactly once, when an entity
// is added; everything after construction -- levelization, arc evaluation,
// arrival storage -- is ID-only (see DESIGN.md section 10).

#include <cstdint>
#include <functional>

namespace prox::sta {

inline constexpr std::uint32_t kInvalidIdValue = 0xFFFFFFFFu;

template <class Tag>
struct Id {
  std::uint32_t value = kInvalidIdValue;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}
  /// Narrowing construction from container sizes; the arena rejects graphs
  /// that would overflow 32 bits long before this could truncate.
  constexpr explicit Id(std::size_t v) : value(static_cast<std::uint32_t>(v)) {}

  constexpr bool valid() const { return value != kInvalidIdValue; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

/// A gate instance (one evaluated cell).
using NodeId = Id<struct NodeIdTag>;
/// A net (a primary input or an instance output).
using NetId = Id<struct NetIdTag>;
/// One instance input pin: ArcId indexes the flat pin array, so the arcs of
/// node n are the contiguous range [Netlist::nodeFirstArc(n),
/// nodeFirstArc(n) + nodeInputs(n).size()).
using ArcId = Id<struct ArcIdTag>;
/// One levelization level (see LevelizeResult::level()).
using LevelId = Id<struct LevelIdTag>;

}  // namespace prox::sta

template <class Tag>
struct std::hash<prox::sta::Id<Tag>> {
  std::size_t operator()(prox::sta::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
